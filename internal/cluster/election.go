// Failure detection and operator-free failover: the Detector each daemon
// runs gossips the placement table with its peers, watches the heartbeat
// watermark of every owner it follows, and — when an owner misses its
// deadline and fails a liveness probe — elects the most-caught-up replica
// of each orphaned community by publishing an epoch-bumped table. See
// DESIGN.md §12.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/service"
)

// DefaultDeadline is the missed-heartbeat deadline before an owner is
// suspected dead: six source heartbeat intervals, so a single delayed
// frame never triggers an election.
const DefaultDeadline = 6 * DefaultHeartbeat

// DetectorOpts configures NewDetector.
type DetectorOpts struct {
	// Router is this node's placement surface (required).
	Router *service.Router
	// Owner is the local community store (required).
	Owner *service.Owner
	// Followers maps followed node id → the follower replicating from it.
	// Nodes without an entry are gossiped with but never declared dead here.
	Followers map[string]*Follower
	// Deadline is how long an owner may miss heartbeats before this node
	// probes it and, on failure, runs an election; 0 means DefaultDeadline.
	Deadline time.Duration
	// Interval is the check cadence; 0 means Deadline/3.
	Interval time.Duration
	// Logf, when set, receives gossip/election diagnostics.
	Logf func(format string, args ...any)
}

// Detector is one node's failover plane. Run starts it; it needs no
// coordination service — every decision derives from the epoch-ordered
// placement table, peer /v1/status answers, and replication watermarks.
type Detector struct {
	rt        *service.Router
	owner     *service.Owner
	followers map[string]*Follower
	deadline  time.Duration
	interval  time.Duration
	logf      func(string, ...any)
	client    *http.Client

	// seen is the last proof of life per followed node: Run start, then
	// each heartbeat arrival. Guarded by Run's single goroutine.
	seen map[string]time.Time
}

// NewDetector returns a detector; call Run to start it.
func NewDetector(o DetectorOpts) (*Detector, error) {
	if o.Router == nil || o.Owner == nil {
		return nil, fmt.Errorf("cluster: NewDetector requires a Router and an Owner")
	}
	if o.Deadline <= 0 {
		o.Deadline = DefaultDeadline
	}
	if o.Interval <= 0 {
		o.Interval = o.Deadline / 3
	}
	return &Detector{
		rt:        o.Router,
		owner:     o.Owner,
		followers: o.Followers,
		deadline:  o.Deadline,
		interval:  o.Interval,
		logf:      o.Logf,
		client:    &http.Client{Timeout: 2 * time.Second},
		seen:      make(map[string]time.Time),
	}, nil
}

func (d *Detector) debugf(format string, args ...any) {
	if d.logf != nil {
		d.logf(format, args...)
	}
}

// Run gossips and detects until ctx is cancelled. It blocks; run it in a
// goroutine.
func (d *Detector) Run(ctx context.Context) {
	now := time.Now()
	for n := range d.followers {
		d.seen[n] = now
	}
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		d.Gossip(ctx)
		d.detect(ctx)
	}
}

// Gossip runs one placement anti-entropy round: pull every peer's table
// (installing any that supersedes ours), then push ours to peers still
// behind. A rejoining node converges to the cluster's epoch within one
// round — which is also how a stale owner learns it has been failed over.
func (d *Detector) Gossip(ctx context.Context) {
	self := d.rt.Self()
	for _, n := range d.rt.Nodes() {
		if n.ID == self || n.Addr == "" {
			continue
		}
		p, err := d.fetchPlacement(ctx, n.Addr)
		if err != nil {
			continue
		}
		if installed, err := d.rt.SetPlacement(p); err == nil && installed {
			d.debugf("cluster: adopted epoch %d from %s", p.Epoch, n.ID)
		}
		if cur := d.rt.Placement(); cur.Epoch > p.Epoch {
			d.pushPlacement(ctx, n.Addr, cur)
		}
	}
}

// detect checks every followed owner's heartbeat watermark and runs an
// election for those past the deadline that also fail a liveness probe.
func (d *Detector) detect(ctx context.Context) {
	for node, f := range d.followers {
		if hb := f.LastHeartbeat(); hb.After(d.seen[node]) {
			d.seen[node] = hb
		}
		if time.Since(d.seen[node]) < d.deadline {
			continue
		}
		if addr, ok := d.rt.Addr(node); ok && d.alive(ctx, addr) {
			// Replication is stalled but the node answers HTTP: not a death,
			// not ours to fail over.
			d.seen[node] = time.Now()
			continue
		}
		d.failover(ctx, node)
	}
}

// alive probes a peer's liveness endpoint.
func (d *Detector) alive(ctx context.Context, addr string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// failover elects a new owner for every community the dead node held, by
// publishing a table (epoch+1) that assigns each to its most-caught-up
// replica — highest applied sequence across the surviving peers' status
// answers, node id breaking ties. Every survivor detecting the death runs
// the same election; identical data yields identical tables (idempotent
// republication), and divergent ones converge by fingerprint order, the
// loser refencing through its table watcher.
func (d *Detector) failover(ctx context.Context, dead string) {
	cur := d.rt.Placement()
	orphans := map[string]uint64{} // community → best seq seen so far
	winner := map[string]string{}  // community → node holding it
	self := d.rt.Self()
	for _, id := range d.owner.List() {
		if d.rt.Place(id) != dead {
			continue
		}
		c, ok := d.owner.Get(id)
		if !ok {
			continue
		}
		orphans[id] = c.Seq()
		winner[id] = self
	}
	if len(orphans) == 0 {
		return
	}
	// Let surviving peers outbid us per community.
	for _, n := range cur.Nodes {
		if n.ID == self || n.ID == dead || n.Addr == "" {
			continue
		}
		st, err := d.fetchStatus(ctx, n.Addr)
		if err != nil {
			continue
		}
		for _, cs := range st.Communities {
			best, ok := orphans[cs.ID]
			if !ok {
				continue
			}
			if cs.Seq > best || (cs.Seq == best && n.ID < winner[cs.ID]) {
				orphans[cs.ID] = cs.Seq
				winner[cs.ID] = n.ID
			}
		}
	}
	p := cur.Clone()
	p.Epoch++
	if p.Assign == nil {
		p.Assign = make(map[string]string)
	}
	ids := make([]string, 0, len(winner))
	for id := range winner {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p.Assign[id] = winner[id]
		d.debugf("cluster: failover: %s → %s at seq %d (epoch %d)", id, winner[id], orphans[id], p.Epoch)
	}
	installed, err := d.rt.SetPlacement(p)
	if err != nil || !installed {
		return // a competing table (ours or newer) won; conform to it
	}
	delete(d.seen, dead) // don't re-elect every tick while it stays down
	for _, n := range p.Nodes {
		if n.ID != self && n.ID != dead && n.Addr != "" {
			d.pushPlacement(ctx, n.Addr, p)
		}
	}
}

// peerStatus mirrors the fields of /v1/status the detector reads.
type peerStatus struct {
	Node        string `json:"node"`
	Epoch       uint64 `json:"epoch"`
	Communities []struct {
		ID   string `json:"id"`
		Role string `json:"role"`
		Seq  uint64 `json:"seq"`
	} `json:"communities"`
}

func (d *Detector) fetchStatus(ctx context.Context, addr string) (peerStatus, error) {
	var st peerStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/status", nil)
	if err != nil {
		return st, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("cluster: status from %s: HTTP %d", addr, resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func (d *Detector) fetchPlacement(ctx context.Context, addr string) (service.Placement, error) {
	var p service.Placement
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/placement", nil)
	if err != nil {
		return p, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return p, fmt.Errorf("cluster: placement from %s: HTTP %d", addr, resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&p)
	return p, err
}

func (d *Detector) pushPlacement(ctx context.Context, addr string, p service.Placement) {
	body, err := json.Marshal(p)
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/placement", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}
