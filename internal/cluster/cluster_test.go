package cluster

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// pair boots an owner node (with a Source as its journal) serving
// replication on a loopback listener, plus a follower node subscribed to
// it. Cleanup tears both down.
func pair(t *testing.T, ringSize int) (*service.Owner, *Source, *service.Owner, *Follower) {
	t.Helper()
	owner := service.New(service.Opts{})
	src, err := NewSource(SourceOpts{Owner: owner, RingSize: ringSize, Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	owner.SetJournal(src)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go src.Serve(ln)
	t.Cleanup(src.Close)

	replica := service.New(service.Opts{})
	fol, err := NewFollower(FollowerOpts{
		Owner:   replica,
		Node:    "b",
		Addr:    ln.Addr().String(),
		Backoff: 100 * time.Millisecond,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	donec := make(chan struct{})
	go func() { defer close(donec); fol.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-donec })
	return owner, src, replica, fol
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// seed creates a community on the owner and churns it a bit.
func seed(t *testing.T, owner *service.Owner, id string, families int) *service.Community {
	t.Helper()
	c, err := owner.Create(id, families, nil, "")
	if err != nil {
		t.Fatalf("create %s: %v", id, err)
	}
	for u := 1; u < families; u++ {
		if _, err := c.Marry(0, u); err != nil {
			t.Fatalf("marry: %v", err)
		}
	}
	if _, _, err := c.Divorce(0, 1); err != nil {
		t.Fatalf("divorce: %v", err)
	}
	return c
}

// assertMirror checks the replica answers window queries byte-identically
// to the owner and is fenced.
func assertMirror(t *testing.T, owner, replica *service.Owner, id string) {
	t.Helper()
	oc, ok := owner.Get(id)
	if !ok {
		t.Fatalf("owner lost community %s", id)
	}
	rc, ok := replica.Get(id)
	if !ok {
		t.Fatalf("replica has no community %s", id)
	}
	if !rc.Fenced() {
		t.Fatalf("replicated community %s is not fenced", id)
	}
	if oc.Seq() != rc.Seq() {
		t.Fatalf("seq mismatch for %s: owner %d, replica %d", id, oc.Seq(), rc.Seq())
	}
	ow, err := oc.Window(1, 200)
	if err != nil {
		t.Fatalf("owner window: %v", err)
	}
	rw, err := rc.Window(1, 200)
	if err != nil {
		t.Fatalf("replica window: %v", err)
	}
	ob, _ := json.Marshal(ow)
	rb, _ := json.Marshal(rw)
	if string(ob) != string(rb) {
		t.Fatalf("window mismatch for %s:\nowner   %s\nreplica %s", id, ob, rb)
	}
	for v := 0; v < oc.Families(); v++ {
		on, err := oc.NextHappy(v, 1)
		if err != nil {
			t.Fatalf("owner next: %v", err)
		}
		rn, err := rc.NextHappy(v, 1)
		if err != nil {
			t.Fatalf("replica next: %v", err)
		}
		if on != rn {
			t.Fatalf("next mismatch for %s family %d: owner %d, replica %d", id, v, on, rn)
		}
	}
}

// TestLiveReplication streams records logged after the follower subscribed.
func TestLiveReplication(t *testing.T) {
	owner, src, replica, fol := pair(t, 64)
	waitFor(t, "follower connect", fol.Connected)

	seed(t, owner, "alpha", 6)
	seed(t, owner, "beta", 4)
	want := src.Seq()
	waitFor(t, "replication to catch up", func() bool { return fol.Applied() >= want })

	assertMirror(t, owner, replica, "alpha")
	assertMirror(t, owner, replica, "beta")

	lag := fol.Lag()
	if len(lag) != 2 {
		t.Fatalf("lag map has %d entries, want 2: %v", len(lag), lag)
	}
	for id, l := range lag {
		if l != 0 {
			t.Fatalf("caught-up follower reports lag %d for %s", l, id)
		}
	}
}

// TestSnapshotCatchUp subscribes after the history has outrun the ring, so
// the follower must be caught up via per-community snapshots.
func TestSnapshotCatchUp(t *testing.T) {
	owner := service.New(service.Opts{})
	src, err := NewSource(SourceOpts{Owner: owner, RingSize: 4, Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	owner.SetJournal(src)
	seed(t, owner, "alpha", 8) // well past a 4-record ring
	seed(t, owner, "beta", 5)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go src.Serve(ln)
	defer src.Close()

	replica := service.New(service.Opts{})
	fol, err := NewFollower(FollowerOpts{Owner: replica, Node: "b", Addr: ln.Addr().String(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fol.Run(ctx)

	want := src.Seq()
	waitFor(t, "snapshot catch-up", func() bool { return fol.Applied() >= want })
	assertMirror(t, owner, replica, "alpha")
	assertMirror(t, owner, replica, "beta")

	// And the stream stays live after catch-up.
	c, _ := owner.Get("alpha")
	if _, err := c.Marry(2, 3); err != nil {
		t.Fatalf("marry: %v", err)
	}
	want = src.Seq()
	waitFor(t, "post-catch-up record", func() bool { return fol.Applied() >= want })
	assertMirror(t, owner, replica, "alpha")
}

// TestFollowerRejectsDirectWrites checks the fence: replicated communities
// refuse writes with the not_owner envelope code.
func TestFollowerRejectsDirectWrites(t *testing.T) {
	owner, src, replica, fol := pair(t, 64)
	seed(t, owner, "alpha", 4)
	want := src.Seq()
	waitFor(t, "replication", func() bool { return fol.Applied() >= want })

	rc, ok := replica.Get("alpha")
	if !ok {
		t.Fatal("replica has no community")
	}
	_, err := rc.Marry(1, 2)
	var se *service.Error
	if err == nil {
		t.Fatal("write on a fenced replica succeeded")
	}
	if !errorAs(err, &se) || se.Code != service.CodeNotOwner {
		t.Fatalf("fenced write error = %v, want code not_owner", err)
	}
	if _, err := rc.AddFamily(); err == nil {
		t.Fatal("AddFamily on a fenced replica succeeded")
	}
	if _, err := rc.ChurnBatch([]core.Edit{{Op: core.EditInsert, U: 1, V: 3}}, nil); err == nil {
		t.Fatal("ChurnBatch on a fenced replica succeeded")
	}
}

// TestPromotionStopsReplication: once a replica is unfenced (promoted), the
// old stream must not clobber its locally owned state.
func TestPromotionStopsReplication(t *testing.T) {
	owner, src, replica, fol := pair(t, 64)
	seed(t, owner, "alpha", 4)
	want := src.Seq()
	waitFor(t, "replication", func() bool { return fol.Applied() >= want })

	if !replica.Unfence("alpha") {
		t.Fatal("Unfence failed")
	}
	rc, _ := replica.Get("alpha")
	if _, err := rc.Marry(1, 2); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	promotedSeq := rc.Seq()

	// The old owner keeps writing; the promoted replica must ignore it.
	oc, _ := owner.Get("alpha")
	if _, err := oc.Marry(1, 3); err != nil {
		t.Fatalf("owner marry: %v", err)
	}
	want = src.Seq()
	waitFor(t, "stream to advance", func() bool { return fol.Applied() >= want })
	if rc.Seq() != promotedSeq {
		t.Fatalf("promoted community was clobbered by the stale stream: seq %d, want %d", rc.Seq(), promotedSeq)
	}
	if rc.Fenced() {
		t.Fatal("promoted community re-fenced by the stale stream")
	}
}

// TestDeleteReplicates propagates community deletion.
func TestDeleteReplicates(t *testing.T) {
	owner, src, replica, fol := pair(t, 64)
	seed(t, owner, "alpha", 4)
	want := src.Seq()
	waitFor(t, "replication", func() bool { return fol.Applied() >= want })
	if _, err := owner.Delete("alpha"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	want = src.Seq()
	waitFor(t, "delete to replicate", func() bool { return fol.Applied() >= want })
	if _, ok := replica.Get("alpha"); ok {
		t.Fatal("replica still has the deleted community")
	}
	if len(fol.Lag()) != 0 {
		t.Fatalf("lag map still tracks the deleted community: %v", fol.Lag())
	}
}

// TestFollowerReconnects kills the stream and checks the follower resumes
// from its applied watermark on a fresh listener.
func TestFollowerReconnects(t *testing.T) {
	owner := service.New(service.Opts{})
	src, err := NewSource(SourceOpts{Owner: owner, Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	owner.SetJournal(src)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go src.Serve(ln)

	replica := service.New(service.Opts{})
	fol, err := NewFollower(FollowerOpts{
		Owner: replica, Node: "b", Addr: ln.Addr().String(),
		Backoff: 100 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fol.Run(ctx)

	seed(t, owner, "alpha", 4)
	want := src.Seq()
	waitFor(t, "initial replication", func() bool { return fol.Applied() >= want })

	// Tear the transport down mid-stream, then bring a listener back on the
	// same address.
	addr := ln.Addr().String()
	src.Close()
	waitFor(t, "follower to notice the drop", func() bool { return !fol.Connected() })

	src2, err := NewSource(SourceOpts{Owner: owner, Start: src.Seq(), Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	owner.SetJournal(src2)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	go src2.Serve(ln2)
	defer src2.Close()

	c, _ := owner.Get("alpha")
	if _, err := c.Marry(1, 3); err != nil {
		t.Fatalf("marry: %v", err)
	}
	want = src2.Seq()
	waitFor(t, "replication after reconnect", func() bool { return fol.Applied() >= want })
	assertMirror(t, owner, replica, "alpha")
}

// TestAcceptFilter: a follower with an Accept filter only mirrors the
// communities it accepts.
func TestAcceptFilter(t *testing.T) {
	owner := service.New(service.Opts{})
	src, err := NewSource(SourceOpts{Owner: owner, Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	owner.SetJournal(src)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go src.Serve(ln)
	defer src.Close()

	replica := service.New(service.Opts{})
	fol, err := NewFollower(FollowerOpts{
		Owner: replica, Node: "b", Addr: ln.Addr().String(),
		Accept: func(id string) bool { return id == "alpha" },
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fol.Run(ctx)

	seed(t, owner, "alpha", 4)
	seed(t, owner, "beta", 4)
	want := src.Seq()
	waitFor(t, "replication", func() bool { return fol.Applied() >= want })
	if _, ok := replica.Get("alpha"); !ok {
		t.Fatal("accepted community not replicated")
	}
	if _, ok := replica.Get("beta"); ok {
		t.Fatal("filtered community was replicated")
	}
}

// errorAs is errors.As without importing errors in every assertion.
func errorAs(err error, target **service.Error) bool {
	for err != nil {
		if e, ok := err.(*service.Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
