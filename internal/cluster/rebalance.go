// Cluster rebalancing over the HTTP control plane: compute the target
// placement for a (possibly changed) membership, run one live handoff per
// moved community, and publish the final table. Shared by holidayctl
// (join, rebalance) and the benchmark driver (mid-run rotations).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/service"
)

// Move records one completed community handoff.
type Move struct {
	Community string        `json:"community"`
	From      string        `json:"from"`
	To        string        `json:"to"`
	CutSeq    uint64        `json:"cut_seq"`
	Pause     time.Duration `json:"-"`
	PauseUS   int64         `json:"pause_us"`
}

// Rebalancer drives placement changes against a running cluster.
type Rebalancer struct {
	// Client is the HTTP client used; nil means a 30s-timeout default
	// (handoffs stream snapshots and can take a while).
	Client *http.Client
	// Logf, when set, receives per-move progress.
	Logf func(format string, args ...any)
}

func (rb *Rebalancer) client() *http.Client {
	if rb.Client != nil {
		return rb.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (rb *Rebalancer) logf(format string, args ...any) {
	if rb.Logf != nil {
		rb.Logf(format, args...)
	}
}

// Rebalance moves the cluster reached through seedAddr onto the target
// membership: every community lands on its consistent-hash owner under the
// target node set, each move a live handoff, and the final table — every
// community explicitly assigned — is published to all members. It returns
// the moves performed and the table left in force.
//
// The epochs advance in three stages so no table ever strands a community:
// first a membership table that adds new nodes while pinning every
// community to its current owner (nothing moves when the ring changes),
// then one epoch per handoff, then — if nodes left — a shrunk membership
// table. Zero-move rebalances (a join with nothing hashing to the new
// node, or an already-balanced cluster) publish the membership tables and
// stop.
func (rb *Rebalancer) Rebalance(ctx context.Context, seedAddr string, target []service.Node) ([]Move, service.Placement, error) {
	cur, err := rb.FetchPlacement(ctx, seedAddr)
	if err != nil {
		return nil, service.Placement{}, err
	}
	if len(target) == 0 {
		return nil, service.Placement{}, fmt.Errorf("cluster: rebalance: empty target membership")
	}

	// Union membership: old and new nodes both present while data moves.
	union := append([]service.Node(nil), cur.Nodes...)
	for _, n := range target {
		found := false
		for _, o := range union {
			if o.ID == n.ID {
				found = true
				break
			}
		}
		if !found {
			union = append(union, n)
		}
	}

	// Owners as they stand, from every reachable member's status.
	owners, err := rb.currentOwners(ctx, cur)
	if err != nil {
		return nil, service.Placement{}, err
	}

	// Stage 1: grow membership with every community pinned in place.
	p := cur.Clone()
	p.Epoch++
	p.Nodes = union
	if p.Assign == nil {
		p.Assign = make(map[string]string)
	}
	for id, node := range owners {
		p.Assign[id] = node
	}
	if err := rb.publish(ctx, p); err != nil {
		return nil, service.Placement{}, err
	}

	// Stage 2: one live handoff per community the target ring places
	// elsewhere.
	targetRing, err := service.RouterFor(service.Placement{Epoch: p.Epoch, Nodes: target, Assign: map[string]string{}})
	if err != nil {
		return nil, service.Placement{}, err
	}
	ids := make([]string, 0, len(owners))
	for id := range owners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var moves []Move
	for _, id := range ids {
		from, to := owners[id], targetRing.Place(id)
		if to == from {
			continue
		}
		next := p.Clone()
		next.Epoch++
		next.Assign[id] = to
		fromAddr := nodeAddr(p.Nodes, from)
		if fromAddr == "" {
			return moves, p, fmt.Errorf("cluster: rebalance: owner %q of %q has no address", from, id)
		}
		mv, err := rb.handoff(ctx, fromAddr, id, next)
		if err != nil {
			return moves, p, fmt.Errorf("cluster: rebalance: move %q %s→%s: %w", id, from, to, err)
		}
		mv.From = from
		rb.logf("cluster: moved %q %s→%s at epoch %d (pause %v)", id, from, to, next.Epoch, mv.Pause)
		moves = append(moves, mv)
		p = next
		owners[id] = to
	}

	// Stage 3: shrink to the target membership if nodes left.
	if len(union) != len(target) {
		p = p.Clone()
		p.Epoch++
		p.Nodes = append([]service.Node(nil), target...)
		if err := p.Validate(); err != nil {
			return moves, p, fmt.Errorf("cluster: rebalance: shrink: %w", err)
		}
	}
	if err := rb.publish(ctx, p); err != nil {
		return moves, p, err
	}
	return moves, p, nil
}

// MoveCommunity hands one community from its current owner (reached at
// ownerAddr) to another member — the benchmark's rotation primitive. The
// published table is the owner's current one, epoch-bumped, with just this
// community reassigned.
func (rb *Rebalancer) MoveCommunity(ctx context.Context, ownerAddr, community, to string) (Move, error) {
	cur, err := rb.FetchPlacement(ctx, ownerAddr)
	if err != nil {
		return Move{}, err
	}
	p := cur.Clone()
	p.Epoch++
	if p.Assign == nil {
		p.Assign = make(map[string]string)
	}
	p.Assign[community] = to
	mv, err := rb.handoff(ctx, ownerAddr, community, p)
	if err != nil {
		return Move{}, err
	}
	if rt, rerr := service.RouterFor(cur); rerr == nil {
		mv.From = rt.Place(community)
	}
	// Best-effort fan-out so followers of either side learn without waiting
	// for gossip; the handoff already installed it on both ends.
	for _, n := range p.Nodes {
		if n.Addr != "" {
			rb.pushTable(ctx, n.Addr, p)
		}
	}
	return mv, nil
}

// FetchPlacement reads a member's installed table.
func (rb *Rebalancer) FetchPlacement(ctx context.Context, addr string) (service.Placement, error) {
	var p service.Placement
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/placement", nil)
	if err != nil {
		return p, err
	}
	resp, err := rb.client().Do(req)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return p, fmt.Errorf("cluster: placement from %s: HTTP %d", addr, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return p, err
	}
	return p, nil
}

// currentOwners maps every community to the node currently owning it, by
// asking each member which communities it serves unfenced.
func (rb *Rebalancer) currentOwners(ctx context.Context, p service.Placement) (map[string]string, error) {
	owners := make(map[string]string)
	for _, n := range p.Nodes {
		if n.Addr == "" {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.Addr+"/v1/status", nil)
		if err != nil {
			return nil, err
		}
		resp, err := rb.client().Do(req)
		if err != nil {
			return nil, fmt.Errorf("cluster: status from %s: %w", n.ID, err)
		}
		var st peerStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("cluster: status from %s: %w", n.ID, err)
		}
		for _, cs := range st.Communities {
			if cs.Role == "owner" {
				owners[cs.ID] = n.ID
			}
		}
	}
	return owners, nil
}

// handoff asks a community's owner to stream it to the node the table
// assigns it to.
func (rb *Rebalancer) handoff(ctx context.Context, ownerAddr, community string, table service.Placement) (Move, error) {
	body, err := json.Marshal(struct {
		Community string            `json:"community"`
		Table     service.Placement `json:"table"`
	}{community, table})
	if err != nil {
		return Move{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ownerAddr+"/v1/handoff", bytes.NewReader(body))
	if err != nil {
		return Move{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rb.client().Do(req)
	if err != nil {
		return Move{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Message string `json:"message"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return Move{}, fmt.Errorf("handoff refused (HTTP %d): %s", resp.StatusCode, e.Message)
	}
	var out struct {
		Node    string `json:"node"`
		CutSeq  uint64 `json:"cut_seq"`
		PauseUS int64  `json:"pause_us"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return Move{}, err
	}
	return Move{
		Community: community,
		To:        out.Node,
		CutSeq:    out.CutSeq,
		Pause:     time.Duration(out.PauseUS) * time.Microsecond,
		PauseUS:   out.PauseUS,
	}, nil
}

// publish posts a table to every addressable member; at least one install
// must succeed (gossip spreads it from there).
func (rb *Rebalancer) publish(ctx context.Context, p service.Placement) error {
	okOne := false
	var lastErr error
	for _, n := range p.Nodes {
		if n.Addr == "" {
			continue
		}
		if err := rb.pushTable(ctx, n.Addr, p); err != nil {
			lastErr = err
			continue
		}
		okOne = true
	}
	if !okOne {
		return fmt.Errorf("cluster: publish epoch %d reached no member: %w", p.Epoch, lastErr)
	}
	return nil
}

func (rb *Rebalancer) pushTable(ctx context.Context, addr string, p service.Placement) error {
	body, err := json.Marshal(p)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/placement", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rb.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: push table to %s: HTTP %d", addr, resp.StatusCode)
	}
	return nil
}

// nodeAddr finds a member's API address.
func nodeAddr(nodes []service.Node, id string) string {
	for _, n := range nodes {
		if n.ID == id {
			return n.Addr
		}
	}
	return ""
}
