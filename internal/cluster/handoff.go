// Live community handoff: the sending half (Handoff, run by the old owner)
// and the receiving half (Source.receiveHandoff, multiplexed onto the
// replication listener). See DESIGN.md §12 for the protocol.
package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/wire"
)

// DefaultHandoffTimeout bounds one handoff's dial, stream, and ack.
const DefaultHandoffTimeout = 15 * time.Second

// HandoffResult reports one completed handoff.
type HandoffResult struct {
	// CutSeq is the sequence the community was fenced at — its last record
	// in the old owner's journal; everything at or below it reached the new
	// owner before the ack.
	CutSeq uint64
	// Pause is the write-unavailability window the moved community saw: the
	// time from fencing on the old owner to the new owner's ack, after
	// which writes forward to the new owner. Reads were served throughout.
	Pause time.Duration
}

// Handoff streams one community from this node (its current owner) to the
// node the table assigns it to, then installs the table locally so
// subsequent writes forward. The protocol keeps the community writable
// while its snapshot is in flight: export at cut₁, offer, stream the
// (cut₁, cut₂] WAL tail accumulated meanwhile, and only fence for the
// final tail+ack round trip — the measured Pause. On any failure before
// the ack the fence is lifted and the old owner keeps serving at the old
// epoch; the receiver, never having seen the cut marker, keeps the state
// as a fenced replica at most.
//
// src supplies the WAL tail (nil forces the re-export fallback: a second,
// fenced snapshot instead of records). The table must assign community to
// a member with a replication listener.
func Handoff(o *service.Owner, src *Source, rt *service.Router, community string, table service.Placement, timeout time.Duration) (HandoffResult, error) {
	if timeout <= 0 {
		timeout = DefaultHandoffTimeout
	}
	if err := table.Validate(); err != nil {
		return HandoffResult{}, err
	}
	target := table.Assign[community]
	if target == "" {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: the offered table does not assign it", community)
	}
	if target == rt.Self() {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: table assigns it to this node", community)
	}
	var repl string
	for _, n := range table.Nodes {
		if n.ID == target {
			repl = n.Repl
		}
	}
	if repl == "" {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: node %q has no replication listener", community, target)
	}
	c, ok := o.Get(community)
	if !ok {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: not on this node", community)
	}
	if c.Fenced() {
		return HandoffResult{}, service.Errf(service.CodeNotOwner, "community %q is a replica on this node; its owner runs handoffs", community)
	}

	tableJSON, err := json.Marshal(table)
	if err != nil {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: encode table: %w", community, err)
	}
	// Export while still serving writes; the tail covers what lands after.
	st := c.Export()
	cut1 := st.Seq
	stateJSON, err := json.Marshal(st)
	if err != nil {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: encode state: %w", community, err)
	}

	deadline := time.Now().Add(timeout)
	conn, err := net.DialTimeout("tcp", repl, timeout)
	if err != nil {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: dial %s: %w", community, repl, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(wire.AppendHandoffOffer(nil, table.Epoch, community, tableJSON, stateJSON)); err != nil {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: send offer: %w", community, err)
	}

	// Fence: the write-unavailability window opens here. Everything the
	// community logged up to the fence is ≤ cut₂ and nothing more will be.
	o.Fence(community)
	pauseStart := time.Now()
	fenced := true
	defer func() {
		if fenced {
			o.Unfence(community)
		}
	}()
	cut2 := c.Seq()

	var tail []wire.RawRecord
	covered := false
	if src != nil {
		tail, covered = src.TailFor(community, cut1, cut2)
	}
	if covered {
		if len(tail) > 0 {
			if _, err := conn.Write(wire.AppendRecords(nil, tail)); err != nil {
				return HandoffResult{}, fmt.Errorf("cluster: handoff %q: send tail: %w", community, err)
			}
		}
	} else if cut2 != cut1 || src == nil {
		// The ring no longer covers the tail (or there is no ring): re-export
		// under the fence — the state is final now — and send it whole.
		st2 := c.Export()
		stateJSON, err = json.Marshal(st2)
		if err != nil {
			return HandoffResult{}, fmt.Errorf("cluster: handoff %q: encode fenced state: %w", community, err)
		}
		if _, err := conn.Write(wire.AppendSnapshot(nil, st2.Seq, stateJSON)); err != nil {
			return HandoffResult{}, fmt.Errorf("cluster: handoff %q: send fenced state: %w", community, err)
		}
	}
	// The cut marker: everything at or below cut₂ has been sent.
	if _, err := conn.Write(wire.AppendHeartbeat(nil, cut2)); err != nil {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: send cut: %w", community, err)
	}

	f, _, err := wire.ReadFrame(conn, nil)
	if err != nil {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: await ack: %w", community, err)
	}
	if f.Kind == wire.KindError {
		status, code, msg, _ := f.ErrorResp()
		return HandoffResult{}, service.Errf(service.CodeFromNum(code), "handoff %q refused by %s (status %d): %s", community, target, status, msg)
	}
	ackSeq, ackID, err := f.HandoffAck()
	if err != nil {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: %w", community, err)
	}
	if ackID != community || ackSeq < cut2 {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: ack names %q at seq %d, want ≥ %d", community, ackID, ackSeq, cut2)
	}

	// The new owner is live; flip this node's table so writes forward. The
	// community stays fenced — it is a replica now.
	fenced = false
	if _, err := rt.SetPlacement(table); err != nil {
		return HandoffResult{}, fmt.Errorf("cluster: handoff %q: install table: %w", community, err)
	}
	return HandoffResult{CutSeq: cut2, Pause: time.Since(pauseStart)}, nil
}

// receiveHandoff runs the receiving half of a handoff on an accepted
// connection whose first frame was the offer. It installs the offered
// state as a fenced replica, applies the streamed tail, and — once the cut
// marker arrives — takes ownership, installs the offered table, and acks.
func (s *Source) receiveHandoff(conn net.Conn, offer wire.Frame, buf []byte) {
	refuse := func(status int, code service.ErrCode, msg string) {
		_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		_, _ = conn.Write(wire.AppendError(nil, status, code.Num(), msg))
	}
	if s.router == nil {
		refuse(http.StatusNotImplemented, service.CodeUnavailable, "this node does not accept handoffs")
		return
	}
	epoch, id, tableJSON, stateJSON, err := offer.HandoffOffer()
	if err != nil {
		return
	}
	var table service.Placement
	if err := json.Unmarshal(tableJSON, &table); err != nil || table.Epoch != epoch {
		refuse(http.StatusBadRequest, service.CodeBadRequest, "handoff offer table is malformed")
		return
	}
	if table.Assign[id] != s.router.Self() {
		refuse(http.StatusBadRequest, service.CodeBadRequest, "offered table does not assign the community to this node")
		return
	}
	var st service.CommunityState
	if err := json.Unmarshal(stateJSON, &st); err != nil || st.ID != id {
		refuse(http.StatusBadRequest, service.CodeBadRequest, "handoff offer state is malformed")
		return
	}
	cur := s.router.Placement()
	supersedes := table.Supersedes(cur)
	if !supersedes && epoch < cur.Epoch {
		refuse(http.StatusMisdirectedRequest, service.CodeNotOwner,
			fmt.Sprintf("handoff epoch %d is stale; this node is at epoch %d", epoch, cur.Epoch))
		return
	}
	if c, ok := s.owner.Get(id); ok && !c.Fenced() && !supersedes {
		refuse(http.StatusConflict, service.CodeConflict,
			fmt.Sprintf("this node already owns %q at epoch %d", id, cur.Epoch))
		return
	}
	if err := s.installReplica(st); err != nil {
		refuse(http.StatusInternalServerError, service.CodeInternal, err.Error())
		return
	}

	// Stream phase: records (or a fenced re-export) until the cut marker.
	var cut uint64
	_ = conn.SetReadDeadline(time.Now().Add(DefaultHandoffTimeout))
	var recs []wire.RawRecord
stream:
	for {
		var fr wire.Frame
		fr, buf, err = wire.ReadFrame(conn, buf)
		if err != nil {
			return // sender died mid-handoff; the replica stays fenced
		}
		switch fr.Kind {
		case wire.KindRecords:
			recs, err = fr.Records(recs[:0])
			if err != nil {
				return
			}
			for _, r := range recs {
				var rec service.Record
				if err := json.Unmarshal(r.Data, &rec); err != nil || rec.ID != id {
					continue
				}
				if err := s.owner.Apply(r.Seq, rec); err != nil {
					refuse(http.StatusInternalServerError, service.CodeInternal, err.Error())
					return
				}
			}
		case wire.KindSnapshot:
			_, data, err := fr.Snapshot()
			if err != nil {
				return
			}
			var st2 service.CommunityState
			if err := json.Unmarshal(data, &st2); err != nil || st2.ID != id {
				return
			}
			if err := s.installReplica(st2); err != nil {
				refuse(http.StatusInternalServerError, service.CodeInternal, err.Error())
				return
			}
		case wire.KindHeartbeat:
			if cut, err = fr.Heartbeat(); err != nil {
				return
			}
			break stream
		default:
			return
		}
	}

	// The sender has fenced at cut and everything ≤ cut is applied: flip.
	s.owner.TakeOwnership(id)
	_, _ = s.router.SetPlacement(table)
	if s.onTakeover != nil {
		s.onTakeover(id)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	_, _ = conn.Write(wire.AppendHandoffAck(nil, cut, id))
}

// installReplica installs one exported community state as a fenced local
// replica, replacing an older one; states no newer than the local replica
// are kept as-is (the idempotent re-offer path).
func (s *Source) installReplica(st service.CommunityState) error {
	if c, ok := s.owner.Get(st.ID); ok {
		if c.Seq() >= st.Seq && c.Fenced() {
			return nil
		}
		s.owner.Fence(st.ID)
		if err := s.owner.Apply(^uint64(0), service.Record{Op: service.OpDelete, ID: st.ID}); err != nil {
			return fmt.Errorf("cluster: handoff replace %q: %w", st.ID, err)
		}
	}
	if _, err := s.owner.Restore(st); err != nil {
		return fmt.Errorf("cluster: handoff restore %q: %w", st.ID, err)
	}
	s.owner.Fence(st.ID)
	return nil
}
