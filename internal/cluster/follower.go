package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/wire"
)

// FollowerOpts configures NewFollower.
type FollowerOpts struct {
	// Owner is the local community store replicated records are applied to
	// (required). Communities the stream creates are fenced: they serve
	// reads but reject direct writes until promoted.
	Owner *service.Owner
	// Node is this node's id, sent with the subscription for the owner's
	// bookkeeping.
	Node string
	// Addr is the owner's replication listener ("host:port", required).
	Addr string
	// Accept filters which communities this follower replicates; nil
	// accepts all. Used by sharded deployments so a node only mirrors the
	// communities placed on the peer it follows.
	Accept func(id string) bool
	// Backoff caps the reconnect delay; 0 means 2s.
	Backoff time.Duration
	// Logf, when set, receives reconnect/replay diagnostics.
	Logf func(format string, args ...any)
}

// Follower maintains one replication subscription to an owner node: it
// dials, subscribes from the last sequence it has applied, replays
// snapshots and records into the local Owner, and reconnects with backoff
// when the stream drops. Safe for concurrent use with serving reads.
type Follower struct {
	owner   *service.Owner
	node    string
	addr    string
	accept  func(string) bool
	backoff time.Duration
	logf    func(string, ...any)

	mu        sync.Mutex
	applied   uint64
	sourceSeq uint64
	through   map[string]uint64 // per community: last seq its replica is current through
	lastBeat  time.Time
	connected bool
}

// NewFollower returns a follower; call Run to start replicating.
func NewFollower(o FollowerOpts) (*Follower, error) {
	if o.Owner == nil {
		return nil, fmt.Errorf("cluster: NewFollower requires an Owner")
	}
	if o.Addr == "" {
		return nil, fmt.Errorf("cluster: NewFollower requires the owner's address")
	}
	if o.Backoff <= 0 {
		o.Backoff = 2 * time.Second
	}
	return &Follower{
		owner:   o.Owner,
		node:    o.Node,
		addr:    o.Addr,
		accept:  o.Accept,
		backoff: o.Backoff,
		logf:    o.Logf,
		through: make(map[string]uint64),
	}, nil
}

// Applied returns the highest replicated sequence this follower has
// processed — the point a new subscription resumes from.
func (f *Follower) Applied() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Connected reports whether a subscription is currently live.
func (f *Follower) Connected() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.connected
}

// Lag reports, per replicated community, how many sequences its local
// replica trails the owner's stream: the owner's advertised sequence minus
// the last sequence the replica is known current through. A community's
// own watermark advances when one of its records or snapshots applies; the
// stream's total order then lifts every tracked community to the applied
// watermark (a record processed at seq S proves everything at or below S
// was already delivered and applied), so an idle community never inherits
// the lag of its busy stream-mates — the pre-epoch status page reported
// one aggregate number for every community.
func (f *Follower) Lag() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.through))
	for id, thru := range f.through {
		if f.applied > thru {
			thru = f.applied
		}
		var lag uint64
		if f.sourceSeq > thru {
			lag = f.sourceSeq - thru
		}
		out[id] = lag
	}
	return out
}

// LastHeartbeat returns when the owner's watermark heartbeat last arrived
// (zero before the first). The failure detector compares it against the
// missed-heartbeat deadline.
func (f *Follower) LastHeartbeat() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastBeat
}

// Run replicates until ctx is cancelled, reconnecting with capped
// exponential backoff. It blocks; run it in a goroutine.
func (f *Follower) Run(ctx context.Context) {
	delay := 50 * time.Millisecond
	for ctx.Err() == nil {
		start := time.Now()
		err := f.runOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		if err != nil && f.logf != nil {
			f.logf("cluster: follower of %s: %v", f.addr, err)
		}
		if err == nil || time.Since(start) > f.backoff {
			delay = 50 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
		if delay *= 2; delay > f.backoff {
			delay = f.backoff
		}
	}
}

// runOnce runs one subscription to completion (stream drop or ctx cancel).
func (f *Follower) runOnce(ctx context.Context) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", f.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Cancellation must unblock the frame reads below.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	_ = conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(wire.AppendSubscribe(nil, f.Applied(), f.node)); err != nil {
		return err
	}
	_ = conn.SetWriteDeadline(time.Time{})
	f.setConnected(true)
	defer f.setConnected(false)

	// Until the owner's catch-up heartbeat arrives, the stream may be
	// mid-snapshot-phase: state is applied (Apply/Restore are idempotent)
	// but the subscription watermark must not advance, or a drop mid-phase
	// would make the reconnect skip communities whose snapshots never
	// arrived.
	caughtUp := false
	var buf []byte
	var recs []wire.RawRecord
	for {
		var fr wire.Frame
		fr, buf, err = wire.ReadFrame(conn, buf)
		if err != nil {
			return err
		}
		switch fr.Kind {
		case wire.KindSnapshot:
			_, data, err := fr.Snapshot()
			if err != nil {
				return err
			}
			if err := f.applySnapshot(data); err != nil {
				return err
			}
		case wire.KindRecords:
			recs, err = fr.Records(recs[:0])
			if err != nil {
				return err
			}
			for _, r := range recs {
				if err := f.applyRecord(r.Seq, r.Data, caughtUp); err != nil {
					return err
				}
			}
		case wire.KindHeartbeat:
			seq, err := fr.Heartbeat()
			if err != nil {
				return err
			}
			// The owner only heartbeats sequences it has already streamed
			// to this subscriber (the first one marks catch-up complete),
			// so advancing the applied watermark past skipped or filtered
			// records is safe.
			caughtUp = true
			f.heartbeat(seq)
		default:
			return fmt.Errorf("cluster: unexpected %v frame on replication stream", fr.Kind)
		}
	}
}

func (f *Follower) setConnected(v bool) {
	f.mu.Lock()
	f.connected = v
	f.mu.Unlock()
}

// applySnapshot installs one community's exported state, replacing a stale
// local replica if the snapshot is newer. Communities this node owns
// outright (present and unfenced — e.g. after a promotion) are never
// clobbered by a stale stream.
func (f *Follower) applySnapshot(data []byte) error {
	var st service.CommunityState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("cluster: decode snapshot: %w", err)
	}
	if f.accept != nil && !f.accept(st.ID) {
		return nil
	}
	if c, ok := f.owner.Get(st.ID); ok {
		if !c.Fenced() {
			return nil // we own this community now; ignore the old stream
		}
		if c.Seq() >= st.Seq {
			f.track(st.ID, c.Seq())
			return nil
		}
		// Stale replica: drop it through the unlogged replay path, then
		// restore the snapshot below.
		if err := f.owner.Apply(st.Seq, service.Record{Op: service.OpDelete, ID: st.ID}); err != nil {
			return err
		}
	}
	if _, err := f.owner.Restore(st); err != nil {
		return fmt.Errorf("cluster: restore %q: %w", st.ID, err)
	}
	f.owner.Fence(st.ID)
	f.track(st.ID, st.Seq)
	return nil
}

// applyRecord replays one streamed record into the local store; advance
// moves the subscription watermark (live stream only — catch-up records
// wait for the owner's watermark heartbeat).
func (f *Follower) applyRecord(seq uint64, data []byte, advance bool) error {
	var rec service.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("cluster: decode record at seq %d: %w", seq, err)
	}
	replicate := f.accept == nil || f.accept(rec.ID)
	if replicate {
		if c, ok := f.owner.Get(rec.ID); ok && !c.Fenced() {
			replicate = false // locally owned (promoted); the stream is stale
		}
	}
	if replicate {
		if err := f.owner.Apply(seq, rec); err != nil {
			return fmt.Errorf("cluster: apply seq %d: %w", seq, err)
		}
		switch rec.Op {
		case service.OpCreate:
			f.owner.Fence(rec.ID)
			f.track(rec.ID, seq)
		case service.OpDelete:
			f.untrack(rec.ID)
		default:
			f.track(rec.ID, seq)
		}
	}
	if advance {
		f.advance(seq)
	}
	return nil
}

// advance moves the applied and source watermarks forward.
func (f *Follower) advance(seq uint64) {
	f.mu.Lock()
	if seq > f.applied {
		f.applied = seq
	}
	if seq > f.sourceSeq {
		f.sourceSeq = seq
	}
	f.mu.Unlock()
}

// heartbeat records the owner's watermark: the stream has delivered
// everything at or below seq, so every tracked community is current
// through it.
func (f *Follower) heartbeat(seq uint64) {
	f.advance(seq)
	f.mu.Lock()
	f.lastBeat = time.Now()
	for id, thru := range f.through {
		if seq > thru {
			f.through[id] = seq
		}
	}
	f.mu.Unlock()
}

// track marks a community replicated and current through seq.
func (f *Follower) track(id string, seq uint64) {
	f.mu.Lock()
	if thru, ok := f.through[id]; !ok || seq > thru {
		f.through[id] = seq
	}
	f.mu.Unlock()
}

func (f *Follower) untrack(id string) {
	f.mu.Lock()
	delete(f.through, id)
	f.mu.Unlock()
}
