package cluster

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/service"
)

// hNode is one in-process node for handoff tests: an owner whose journal is
// a Source serving the replication listener, plus that node's router.
type hNode struct {
	owner *service.Owner
	src   *Source
	rt    *service.Router
}

func listenTCP(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return ln
}

func bootHNode(t *testing.T, id string, nodes []service.Node, ln net.Listener) *hNode {
	t.Helper()
	owner := service.New(service.Opts{})
	rt, err := service.NewRouter(service.RouterOpts{Self: id, Nodes: nodes})
	if err != nil {
		t.Fatalf("NewRouter(%s): %v", id, err)
	}
	src, err := NewSource(SourceOpts{Owner: owner, Router: rt, Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewSource(%s): %v", id, err)
	}
	owner.SetJournal(src)
	go src.Serve(ln)
	t.Cleanup(src.Close)
	return &hNode{owner: owner, src: src, rt: rt}
}

// bootHandoffPair boots nodes a and b, both accepting handoffs.
func bootHandoffPair(t *testing.T) (a, b *hNode) {
	t.Helper()
	lnA, lnB := listenTCP(t), listenTCP(t)
	nodes := []service.Node{
		{ID: "a", Repl: lnA.Addr().String()},
		{ID: "b", Repl: lnB.Addr().String()},
	}
	return bootHNode(t, "a", nodes, lnA), bootHNode(t, "b", nodes, lnB)
}

func windowJSON(t *testing.T, o *service.Owner, id string) string {
	t.Helper()
	c, ok := o.Get(id)
	if !ok {
		t.Fatalf("community %q missing", id)
	}
	w, err := c.Window(1, 200)
	if err != nil {
		t.Fatalf("window: %v", err)
	}
	b, _ := json.Marshal(w)
	return string(b)
}

// TestHandoffEndToEnd moves a live community from a to b and checks the
// whole contract: byte-identical answers across the cut, ownership and
// fencing flipped on both ends, both routers at the new epoch, and the new
// owner writable while the old one refuses.
func TestHandoffEndToEnd(t *testing.T) {
	a, b := bootHandoffPair(t)
	c := seed(t, a.owner, "alpha", 6)
	want := windowJSON(t, a.owner, "alpha")
	wantSeq := c.Seq()

	table := a.rt.Placement()
	table.Epoch++
	table.Assign["alpha"] = "b"
	res, err := Handoff(a.owner, a.src, a.rt, "alpha", table, 0)
	if err != nil {
		t.Fatalf("Handoff: %v", err)
	}
	if res.CutSeq != wantSeq {
		t.Fatalf("cut seq = %d, want %d", res.CutSeq, wantSeq)
	}
	if res.Pause <= 0 {
		t.Fatalf("pause = %v, want > 0", res.Pause)
	}

	bc, ok := b.owner.Get("alpha")
	if !ok {
		t.Fatal("new owner has no community after the handoff")
	}
	if bc.Fenced() {
		t.Fatal("new owner's community is still fenced after the ack")
	}
	if got := windowJSON(t, b.owner, "alpha"); got != want {
		t.Fatalf("window diverged across the handoff:\nold %s\nnew %s", want, got)
	}
	if !c.Fenced() {
		t.Fatal("old owner's community is not fenced after the handoff")
	}
	if a.rt.Epoch() != table.Epoch || b.rt.Epoch() != table.Epoch {
		t.Fatalf("epochs not flipped: a=%d b=%d want %d", a.rt.Epoch(), b.rt.Epoch(), table.Epoch)
	}
	if a.rt.Place("alpha") != "b" || b.rt.Place("alpha") != "b" {
		t.Fatal("placement does not point at the new owner on both nodes")
	}

	// The new owner serves writes (TakeOwnership rebased its sequence into
	// the local journal space, so the write journals cleanly)...
	if _, err := bc.Marry(1, 2); err != nil {
		t.Fatalf("write on the new owner: %v", err)
	}
	// ...and the old copy fails closed.
	if _, err := c.Marry(1, 2); err == nil {
		t.Fatal("write on the old owner succeeded after the handoff")
	}
}

// TestHandoffRefusals covers the sender-side preconditions: absent
// community, fenced replica, self-assignment, unassigned table.
func TestHandoffRefusals(t *testing.T) {
	a, _ := bootHandoffPair(t)
	seed(t, a.owner, "alpha", 4)

	table := a.rt.Placement()
	table.Epoch++
	table.Assign["ghost"] = "b"
	if _, err := Handoff(a.owner, a.src, a.rt, "ghost", table, 0); err == nil {
		t.Fatal("handoff of an absent community succeeded")
	}
	if _, err := Handoff(a.owner, a.src, a.rt, "alpha", table, 0); err == nil {
		t.Fatal("handoff with a table that does not assign the community succeeded")
	}
	table.Assign["alpha"] = "a"
	if _, err := Handoff(a.owner, a.src, a.rt, "alpha", table, 0); err == nil {
		t.Fatal("handoff to self succeeded")
	}
	a.owner.Fence("alpha")
	table.Assign["alpha"] = "b"
	if _, err := Handoff(a.owner, a.src, a.rt, "alpha", table, 0); err == nil {
		t.Fatal("handoff of a fenced replica succeeded")
	}
}

// TestHandoffCrashMidway: the receiver dies before acking, so the old owner
// lifts its fence and keeps serving at the old epoch — the availability
// half of the protocol's failure contract.
func TestHandoffCrashMidway(t *testing.T) {
	lnA := listenTCP(t)
	lnZ := listenTCP(t)
	nodes := []service.Node{
		{ID: "a", Repl: lnA.Addr().String()},
		{ID: "z", Repl: lnZ.Addr().String()},
	}
	a := bootHNode(t, "a", nodes, lnA)
	// z accepts and slams the connection: a crash between offer and ack.
	go func() {
		for {
			conn, err := lnZ.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	t.Cleanup(func() { lnZ.Close() })

	c := seed(t, a.owner, "alpha", 5)
	before := a.rt.Epoch()
	table := a.rt.Placement()
	table.Epoch++
	table.Assign["alpha"] = "z"
	if _, err := Handoff(a.owner, a.src, a.rt, "alpha", table, 2*time.Second); err == nil {
		t.Fatal("handoff succeeded against a crashing receiver")
	}
	if c.Fenced() {
		t.Fatal("old owner left fenced after a failed handoff")
	}
	if a.rt.Epoch() != before {
		t.Fatalf("epoch advanced to %d despite the failed handoff", a.rt.Epoch())
	}
	if _, err := c.Marry(1, 2); err != nil {
		t.Fatalf("old owner refuses writes after a failed handoff: %v", err)
	}
}

// TestHandoffStaleEpochRefused: a receiver already at a higher epoch
// refuses the offer with not_owner and the sender keeps serving.
func TestHandoffStaleEpochRefused(t *testing.T) {
	a, b := bootHandoffPair(t)
	c := seed(t, a.owner, "alpha", 4)

	ahead := b.rt.Placement()
	ahead.Epoch = 10
	if ok, err := b.rt.SetPlacement(ahead); err != nil || !ok {
		t.Fatalf("install ahead table: %v %v", ok, err)
	}

	table := a.rt.Placement()
	table.Epoch++ // 1 — far behind b's 10
	table.Assign["alpha"] = "b"
	_, err := Handoff(a.owner, a.src, a.rt, "alpha", table, 2*time.Second)
	if err == nil {
		t.Fatal("stale-epoch handoff accepted")
	}
	var se *service.Error
	if !errorAs(err, &se) || se.Code != service.CodeNotOwner {
		t.Fatalf("stale-epoch refusal = %v, want code not_owner", err)
	}
	if c.Fenced() {
		t.Fatal("sender left fenced after a refused handoff")
	}
}

// TestDoubleSelfPromotionConverges: two replicas of a dead owner's
// community each elect themselves (neither can reach the other's status),
// publishing competing tables at the same epoch. Once the tables cross,
// both nodes converge on the fingerprint winner and the loser refences —
// exactly one owner survives.
func TestDoubleSelfPromotionConverges(t *testing.T) {
	nodes := []service.Node{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	mk := func(id string) (*service.Owner, *service.Router) {
		owner := service.New(service.Opts{})
		rt, err := service.NewRouter(service.RouterOpts{Self: id, Nodes: nodes})
		if err != nil {
			t.Fatalf("NewRouter(%s): %v", id, err)
		}
		// The handler registration wires the fence-reconciliation watcher —
		// the same path daemons run.
		service.NewHandler(service.HandlerOpts{Owner: owner, Router: rt, Node: id})
		return owner, rt
	}
	ownerB, rtB := mk("b")
	ownerC, rtC := mk("c")

	// Both replicas hold x, fenced, at the same sequence; the initial table
	// assigns it to the (dead) node a.
	base := service.Placement{Epoch: 1, Nodes: nodes, Assign: map[string]string{"x": "a"}}
	for _, rt := range []*service.Router{rtB, rtC} {
		if ok, err := rt.SetPlacement(base); err != nil || !ok {
			t.Fatalf("install base table: %v %v", ok, err)
		}
	}
	for _, o := range []*service.Owner{ownerB, ownerC} {
		if _, err := o.Create("x", 4, nil, ""); err != nil {
			t.Fatalf("create replica: %v", err)
		}
		o.Fence("x")
	}

	detB, err := NewDetector(DetectorOpts{Router: rtB, Owner: ownerB, Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	detC, err := NewDetector(DetectorOpts{Router: rtC, Owner: ownerC, Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}

	// Partitioned elections: peers have no addresses, so each node's
	// failover sees only itself and elects itself.
	ctx := context.Background()
	detB.failover(ctx, "a")
	detC.failover(ctx, "a")
	pb, pc := rtB.Placement(), rtC.Placement()
	if pb.Epoch != 2 || pc.Epoch != 2 {
		t.Fatalf("election epochs: b=%d c=%d, want 2 and 2", pb.Epoch, pc.Epoch)
	}
	if pb.Assign["x"] != "b" || pc.Assign["x"] != "c" {
		t.Fatalf("self-elections: b table assigns %q, c table assigns %q", pb.Assign["x"], pc.Assign["x"])
	}
	cb, _ := ownerB.Get("x")
	cc, _ := ownerC.Get("x")
	if cb.Fenced() || cc.Fenced() {
		t.Fatal("self-promotion did not unfence the local replica")
	}

	// The partition heals: the competing tables cross (gossip), and the
	// fingerprint order picks one winner on both nodes.
	rtB.SetPlacement(pc)
	rtC.SetPlacement(pb)
	fb, fc := rtB.Placement(), rtC.Placement()
	if fb.Fingerprint() != fc.Fingerprint() || fb.Epoch != fc.Epoch {
		t.Fatalf("tables did not converge:\nb: epoch %d %s\nc: epoch %d %s", fb.Epoch, fb.Fingerprint(), fc.Epoch, fc.Fingerprint())
	}
	winner := fb.Assign["x"]
	if winner != "b" && winner != "c" {
		t.Fatalf("converged winner %q is neither contender", winner)
	}
	if winner == "b" {
		if cb.Fenced() || !cc.Fenced() {
			t.Fatalf("winner b: fenced(b)=%v fenced(c)=%v, want false/true", cb.Fenced(), cc.Fenced())
		}
	} else {
		if cc.Fenced() || !cb.Fenced() {
			t.Fatalf("winner c: fenced(b)=%v fenced(c)=%v, want true/false", cb.Fenced(), cc.Fenced())
		}
	}
}

// TestZeroCommunityJoinKeepsOwnership: a membership-grow table with every
// community pinned (the rebalancer's stage-1 shape) moves nothing — and a
// table that does place the community elsewhere makes the old owner fail
// closed rather than split-brain.
func TestZeroCommunityJoinKeepsOwnership(t *testing.T) {
	nodes := []service.Node{{ID: "a"}, {ID: "b"}}
	owner := service.New(service.Opts{})
	rt, err := service.NewRouter(service.RouterOpts{Self: "a", Nodes: nodes})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	service.NewHandler(service.HandlerOpts{Owner: owner, Router: rt, Node: "a"})
	if _, err := owner.Create("x", 4, nil, ""); err != nil {
		t.Fatalf("create: %v", err)
	}
	c, _ := owner.Get("x")

	// The joiner arrives with x pinned in place: no flip, no fence.
	grown := rt.Placement()
	grown.Epoch++
	grown.Nodes = append(grown.Nodes, service.Node{ID: "d"})
	grown.Assign["x"] = "a"
	if ok, err := rt.SetPlacement(grown); err != nil || !ok {
		t.Fatalf("install grown table: %v %v", ok, err)
	}
	if c.Fenced() {
		t.Fatal("pinned join fenced the community")
	}
	if rt.Place("x") != "a" {
		t.Fatalf("pinned join moved placement to %s", rt.Place("x"))
	}

	// A table placing x on the joiner fences the old owner (fail closed);
	// ring- or assignment-derived placement never auto-promotes here.
	moved := rt.Placement()
	moved.Epoch++
	moved.Assign["x"] = "d"
	if ok, err := rt.SetPlacement(moved); err != nil || !ok {
		t.Fatalf("install moved table: %v %v", ok, err)
	}
	if !c.Fenced() {
		t.Fatal("old owner kept serving a community the table places elsewhere")
	}
}
