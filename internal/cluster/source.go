// Package cluster replicates a holidayd owner's write-ahead log to
// followers over the internal/wire binary framing, turning the per-record
// WAL sequences of internal/persist into a replication log.
//
// The owner side (Source) wraps the node's journal: every record a
// community logs is also stamped into an in-memory ring and fanned out to
// subscribed followers as Records frames on a raw TCP stream. A follower
// (Follower) subscribes from the last sequence it has applied; when the
// ring still covers that point the owner streams just the missing records,
// otherwise it first sends one Snapshot frame per community (the exported
// CommunityState, cutoff-stamped) and then the ring — replay through
// Registry.Apply is idempotent against the cutoffs, so the overlap is
// harmless. Heartbeat frames advertise the last sequence streamed to the
// subscriber, so an idle follower still learns it is caught up and can
// measure lag.
//
// Followers fence every community the stream hands them (service.Owner
// fencing): reads serve from the replica's frozen-schedule caches while
// direct writes fail closed with not_owner until a promotion lifts the
// fence.
package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/wire"
)

// DefaultRingSize is the records a Source retains for catch-up before a
// reconnecting follower is pushed onto the snapshot path.
const DefaultRingSize = 8192

// DefaultHeartbeat is the idle-stream heartbeat interval.
const DefaultHeartbeat = 500 * time.Millisecond

// subBuf is the per-subscriber record queue; a follower that falls this far
// behind the live stream is dropped and reconnects through catch-up.
const subBuf = 4096

// maxRecsPerFrame bounds the records one Records frame carries so a busy
// stream flushes in digestible chunks.
const maxRecsPerFrame = 256

// repRec is one replicated record: its journal sequence plus the marshaled
// service.Record (the same JSON object wal.jsonl stores on the owner).
type repRec struct {
	seq  uint64
	data []byte
}

// SourceOpts configures NewSource.
type SourceOpts struct {
	// Owner is the community store snapshots are exported from (required).
	Owner *service.Owner
	// Journal is the durable journal the source wraps — usually the
	// persist.WAL. Nil runs the source as the journal itself (in-memory
	// sequence assignment, no disk), the no-durability configuration.
	Journal service.Journal
	// Start seeds the sequence counter (Journal.Seq() after recovery) so
	// replication sequences line up with the WAL's.
	Start uint64
	// RingSize overrides the catch-up ring capacity; 0 means
	// DefaultRingSize.
	RingSize int
	// Heartbeat overrides the heartbeat interval; 0 means DefaultHeartbeat.
	Heartbeat time.Duration
	// Router, when set, lets this node accept live handoffs on the same
	// listener: an incoming HandoffOffer installs the offered placement
	// table and takes ownership of the handed-off community. Nil refuses
	// offers.
	Router *service.Router
	// OnTakeover, when set, runs after this node takes ownership of a
	// community through a handoff (holidayd persists a snapshot so the
	// restored-not-logged state survives a crash).
	OnTakeover func(id string)
}

// Source is the owner half of the replication stream. It implements
// service.Journal and service.BatchJournal: attach it (service.Opts.Journal)
// in place of the raw WAL and every logged record is both durable and
// replicated. Safe for concurrent use.
type Source struct {
	owner      *service.Owner
	inner      service.Journal
	heartbeat  time.Duration
	router     *service.Router
	onTakeover func(id string)

	mu    sync.Mutex
	seq   uint64
	ring  []repRec // circular buffer
	start int      // index of the oldest record
	count int
	subs  map[*subscriber]struct{}

	lnMu   sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// subscriber is one follower connection's send side.
type subscriber struct {
	ch   chan repRec
	drop chan struct{} // closed when the fan-out gives up on a slow follower
	once sync.Once
}

func (s *subscriber) dropNow() { s.once.Do(func() { close(s.drop) }) }

// NewSource wraps a journal (or stands in for one) as a replication source.
func NewSource(o SourceOpts) (*Source, error) {
	if o.Owner == nil {
		return nil, fmt.Errorf("cluster: NewSource requires an Owner")
	}
	if o.RingSize < 1 {
		o.RingSize = DefaultRingSize
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	return &Source{
		owner:      o.Owner,
		inner:      o.Journal,
		heartbeat:  o.Heartbeat,
		router:     o.Router,
		onTakeover: o.OnTakeover,
		seq:        o.Start,
		ring:       make([]repRec, o.RingSize),
		subs:       make(map[*subscriber]struct{}),
	}, nil
}

// Seq returns the last replicated sequence.
func (s *Source) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Log implements service.Journal: the record is logged to the wrapped
// journal (write-ahead durability first), then ringed and fanned out. The
// source mutex is held across the inner append so ring order always matches
// sequence order — taking it after would let concurrent appends fan out
// records out of order.
func (s *Source) Log(rec service.Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var seq uint64
	if s.inner != nil {
		var err error
		if seq, err = s.inner.Log(rec); err != nil {
			return 0, err
		}
	} else {
		seq = s.seq + 1
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("cluster: encode replication record: %w", err)
	}
	s.seq = seq
	s.pushLocked(repRec{seq: seq, data: data})
	return seq, nil
}

// LogBatch implements service.BatchJournal; the wrapped journal assigns
// consecutive sequences (the BatchJournal contract), which is what lets the
// batch fan out record-by-record.
func (s *Source) LogBatch(recs []service.Record) (uint64, error) {
	if len(recs) == 0 {
		return s.Seq(), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var last uint64
	if bj, ok := s.inner.(service.BatchJournal); ok {
		var err error
		if last, err = bj.LogBatch(recs); err != nil {
			return 0, err
		}
	} else if s.inner != nil {
		for _, rec := range recs {
			var err error
			if last, err = s.inner.Log(rec); err != nil {
				return 0, err
			}
		}
	} else {
		last = s.seq + uint64(len(recs))
	}
	first := last - uint64(len(recs)) + 1
	for i, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			return 0, fmt.Errorf("cluster: encode replication record: %w", err)
		}
		s.pushLocked(repRec{seq: first + uint64(i), data: data})
	}
	s.seq = last
	return last, nil
}

// pushLocked appends a record to the ring and fans it out; caller holds mu.
func (s *Source) pushLocked(r repRec) {
	if s.count == len(s.ring) {
		s.ring[s.start] = r
		s.start = (s.start + 1) % len(s.ring)
	} else {
		s.ring[(s.start+s.count)%len(s.ring)] = r
		s.count++
	}
	for sub := range s.subs {
		select {
		case sub.ch <- r:
		default:
			// The follower is not draining: drop it rather than stall the
			// write path; it reconnects through catch-up.
			delete(s.subs, sub)
			sub.dropNow()
		}
	}
}

// backlogLocked copies the ring records with sequence > fromSeq; caller
// holds mu. covered reports whether the ring (plus fromSeq itself) reaches
// back far enough — when false the subscriber needs the snapshot path
// first.
func (s *Source) backlogLocked(fromSeq uint64) (recs []repRec, covered bool) {
	if s.count == 0 {
		return nil, fromSeq >= s.seq
	}
	oldest := s.ring[s.start].seq
	covered = fromSeq+1 >= oldest
	for i := 0; i < s.count; i++ {
		r := s.ring[(s.start+i)%len(s.ring)]
		if r.seq > fromSeq {
			recs = append(recs, r)
		}
	}
	return recs, covered
}

// TailFor copies the ring records for one community with sequences in
// (after, through]. covered reports whether the ring reaches back far
// enough that no record in that range can have been evicted — when false
// the caller must fall back to a fresh snapshot.
func (s *Source) TailFor(community string, after, through uint64) (recs []wire.RawRecord, covered bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return nil, after >= s.seq
	}
	covered = after+1 >= s.ring[s.start].seq
	for i := 0; i < s.count; i++ {
		r := s.ring[(s.start+i)%len(s.ring)]
		if r.seq <= after || r.seq > through {
			continue
		}
		var rec struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(r.data, &rec) == nil && rec.ID == community {
			recs = append(recs, wire.RawRecord{Seq: r.seq, Data: r.data})
		}
	}
	return recs, covered
}

// Serve accepts follower subscriptions on l until Close. It blocks; run it
// in a goroutine.
func (s *Source) Serve(l net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		l.Close()
		return fmt.Errorf("cluster: source is closed")
	}
	s.ln = l
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.lnMu.Lock()
			closed := s.closed
			s.lnMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, disconnects subscribers, and waits for their
// goroutines. The wrapped journal is not closed — its lifecycle belongs to
// the caller.
func (s *Source) Close() {
	s.lnMu.Lock()
	s.closed = true
	ln := s.ln
	s.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.mu.Lock()
	for sub := range s.subs {
		delete(s.subs, sub)
		sub.dropNow()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// handle runs one peer connection. The first frame picks the protocol: a
// Subscribe opens a replication stream (catch up, then live records and
// heartbeats until the peer disconnects or falls too far behind); a
// HandoffOffer runs the receiving half of a live handoff.
func (s *Source) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, buf0, err := wire.ReadFrame(conn, nil)
	if err != nil {
		return
	}
	if f.Kind == wire.KindHandoffOffer {
		s.receiveHandoff(conn, f, buf0)
		return
	}
	fromSeq, _, err := f.Subscribe()
	if err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	// Register first, then compute the catch-up set: records logged from
	// here on buffer in sub.ch, the ring copy covers (fromSeq, watermark],
	// and community exports below reflect at least the watermark — between
	// the three every sequence reaches the follower at least once, and
	// Apply's idempotence absorbs the overlaps.
	sub := &subscriber{ch: make(chan repRec, subBuf), drop: make(chan struct{})}
	s.mu.Lock()
	backlog, covered := s.backlogLocked(fromSeq)
	watermark := s.seq
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, sub)
		s.mu.Unlock()
		sub.dropNow()
	}()

	// A half-closed or dying peer must not leak this goroutine: the read
	// side only ever returns when the connection drops (followers send
	// nothing after subscribing), and that drops the subscriber.
	go func() {
		var b [1]byte
		_, _ = conn.Read(b[:])
		sub.dropNow()
	}()

	var buf []byte
	write := func(frame []byte) bool {
		_ = conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		_, err := conn.Write(frame)
		return err == nil
	}

	if !covered {
		// Snapshot catch-up, one community per frame: a mega community's
		// state must not push a multi-community frame past wire.MaxFrame.
		for _, id := range s.owner.List() {
			c, ok := s.owner.Get(id)
			if !ok {
				continue
			}
			st := c.Export()
			data, err := json.Marshal(st)
			if err != nil {
				return
			}
			if !write(wire.AppendSnapshot(buf[:0], st.Seq, data)) {
				return
			}
		}
	}
	sent := fromSeq
	flush := func(recs []repRec) bool {
		for len(recs) > 0 {
			n := len(recs)
			if n > maxRecsPerFrame {
				n = maxRecsPerFrame
			}
			buf = buf[:0]
			raw := make([]wire.RawRecord, n)
			for i, r := range recs[:n] {
				raw[i] = wire.RawRecord{Seq: r.seq, Data: r.data}
			}
			if !write(wire.AppendRecords(buf, raw)) {
				return false
			}
			sent = recs[n-1].seq
			recs = recs[n:]
		}
		return true
	}
	if !flush(backlog) {
		return
	}
	// The catch-up watermark heartbeat: everything at or below it has been
	// sent (as records or inside snapshots), so the follower advances its
	// subscription point even when the ring alone could not prove it.
	if sent < watermark {
		sent = watermark
	}
	if !write(wire.AppendHeartbeat(buf[:0], sent)) {
		return
	}

	ticker := time.NewTicker(s.heartbeat)
	defer ticker.Stop()
	var pending []repRec
	for {
		pending = pending[:0]
		select {
		case r := <-sub.ch:
			pending = append(pending, r)
			// Drain whatever else is queued so a busy stream coalesces into
			// batched frames.
			for len(pending) < subBuf {
				select {
				case r := <-sub.ch:
					pending = append(pending, r)
				default:
					goto drained
				}
			}
		drained:
			if !flush(pending) {
				return
			}
		case <-ticker.C:
			// Heartbeats advertise the last sequence streamed to this
			// follower; records still queued in sub.ch are not claimed.
			if !write(wire.AppendHeartbeat(buf[:0], sent)) {
				return
			}
		case <-sub.drop:
			return
		}
	}
}
