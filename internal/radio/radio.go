// Package radio models the paper's motivating application (§1): scheduling
// cellular radio transmissions so that no two interfering radios broadcast
// in the same slot. Radios are points in the unit square; two radios
// interfere when they are within the interference radius — the in-law
// relation of the holiday gathering problem. A gathering schedule becomes a
// TDMA-like slot assignment: a radio "hosts" by transmitting.
//
// The package quantifies the paper's two selling points for perfectly
// periodic schedules: a radio can sleep between its slots (energy), and its
// transmission rate is governed by its local interference degree rather
// than the global maximum (fairness).
package radio

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Network is a set of radios with unit-disk interference.
type Network struct {
	G      *graph.Graph
	Points []graph.Point
	Radius float64
}

// NewNetwork scatters n radios uniformly in the unit square with the given
// interference radius.
func NewNetwork(n int, radius float64, seed uint64) *Network {
	g, pts := graph.UnitDisk(n, radius, seed)
	return &Network{G: g, Points: pts, Radius: radius}
}

// Report summarizes a simulated schedule over a slot horizon.
type Report struct {
	Scheduler     string
	Slots         int64
	Transmissions []int64   // per-radio successful transmissions
	AwakeSlots    []int64   // per-radio slots spent awake
	Throughput    []float64 // transmissions per slot
	// NormalizedShare is throughput divided by the fair share 1/(deg+1):
	// 1.0 means the radio got exactly the §1 landmark rate.
	NormalizedShare []float64
	// Fairness is Jain's index over NormalizedShare.
	Fairness float64
	// Collisions counts (slot, edge) pairs where both endpoints transmitted
	// — always 0 for a correct scheduler.
	Collisions int64
	// MeanAwakePerTx is the energy cost: average awake slots per successful
	// transmission across radios that transmitted at all.
	MeanAwakePerTx float64
}

// Run simulates the scheduler for the given number of slots. When the
// scheduler is Periodic, each radio is modeled as waking only for its own
// slots (periodic schedules are known in advance); otherwise every radio
// stays awake every slot, the energy penalty the paper attributes to
// non-periodic solutions.
func (nw *Network) Run(s core.Scheduler, slots int64) *Report {
	n := nw.G.N()
	rep := &Report{
		Scheduler:       s.Name(),
		Slots:           slots,
		Transmissions:   make([]int64, n),
		AwakeSlots:      make([]int64, n),
		Throughput:      make([]float64, n),
		NormalizedShare: make([]float64, n),
	}
	_, periodic := s.(core.Periodic)
	edges := nw.G.Edges()
	inTx := make([]bool, n)
	for t := int64(1); t <= slots; t++ {
		tx := s.Next()
		for _, v := range tx {
			inTx[v] = true
			rep.Transmissions[v]++
		}
		for _, e := range edges {
			if inTx[e.U] && inTx[e.V] {
				rep.Collisions++
			}
		}
		for _, v := range tx {
			inTx[v] = false
		}
		if !periodic {
			for v := 0; v < n; v++ {
				rep.AwakeSlots[v]++
			}
		} else {
			for _, v := range tx {
				rep.AwakeSlots[v]++
			}
		}
	}
	var awakeSum, txSum float64
	for v := 0; v < n; v++ {
		rep.Throughput[v] = float64(rep.Transmissions[v]) / float64(slots)
		rep.NormalizedShare[v] = rep.Throughput[v] * float64(nw.G.Degree(v)+1)
		awakeSum += float64(rep.AwakeSlots[v])
		txSum += float64(rep.Transmissions[v])
	}
	rep.Fairness = stats.JainFairness(rep.NormalizedShare)
	if txSum > 0 {
		rep.MeanAwakePerTx = awakeSum / txSum
	}
	return rep
}

// String renders a one-line summary for logs.
func (r *Report) String() string {
	return fmt.Sprintf("radio{%s slots=%d collisions=%d fairness=%.3f awake/tx=%.2f}",
		r.Scheduler, r.Slots, r.Collisions, r.Fairness, r.MeanAwakePerTx)
}
