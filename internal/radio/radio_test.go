package radio

import (
	"strings"
	"testing"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/prefixcode"
)

func testNetwork(t *testing.T) *Network {
	t.Helper()
	nw := NewNetwork(120, 0.12, 5)
	if nw.G.N() != 120 || len(nw.Points) != 120 {
		t.Fatal("network construction broken")
	}
	return nw
}

func TestRunDegreeBoundNoCollisions(t *testing.T) {
	nw := testNetwork(t)
	rep := nw.Run(core.NewDegreeBoundSequential(nw.G), 2000)
	if rep.Collisions != 0 {
		t.Fatalf("degree-bound schedule caused %d collisions", rep.Collisions)
	}
	// Periodic: radios sleep between slots, so awake == transmissions.
	for v := 0; v < nw.G.N(); v++ {
		if rep.AwakeSlots[v] != rep.Transmissions[v] {
			t.Fatalf("radio %d awake %d != tx %d under a periodic schedule",
				v, rep.AwakeSlots[v], rep.Transmissions[v])
		}
	}
	if rep.MeanAwakePerTx < 0.99 || rep.MeanAwakePerTx > 1.01 {
		t.Errorf("periodic energy cost %.3f, want 1.0", rep.MeanAwakePerTx)
	}
}

func TestRunPhasedGreedyStaysAwake(t *testing.T) {
	nw := testNetwork(t)
	col := coloring.Greedy(nw.G, coloring.IdentityOrder(nw.G.N()))
	pg, err := core.NewPhasedGreedy(nw.G, col)
	if err != nil {
		t.Fatal(err)
	}
	rep := nw.Run(pg, 500)
	if rep.Collisions != 0 {
		t.Fatalf("phased greedy caused %d collisions", rep.Collisions)
	}
	for v := 0; v < nw.G.N(); v++ {
		if rep.AwakeSlots[v] != 500 {
			t.Fatalf("radio %d awake %d slots under non-periodic schedule, want all 500", v, rep.AwakeSlots[v])
		}
	}
	if rep.MeanAwakePerTx <= 1.01 {
		t.Error("non-periodic schedules must pay an energy premium over 1 awake slot per tx")
	}
}

func TestThroughputMatchesPeriods(t *testing.T) {
	nw := testNetwork(t)
	db := core.NewDegreeBoundSequential(nw.G)
	slots := int64(4096)
	rep := nw.Run(db, slots)
	for v := 0; v < nw.G.N(); v++ {
		want := 1 / float64(db.Period(v))
		if diff := rep.Throughput[v] - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("radio %d throughput %.4f, want %.4f", v, rep.Throughput[v], want)
		}
	}
}

func TestFairnessOrdering(t *testing.T) {
	// Degree-bound normalizes shares to the local fair share, so its Jain
	// index must beat round-robin's on a degree-skewed network.
	nw := testNetwork(t)
	db := core.NewDegreeBoundSequential(nw.G)
	dbRep := nw.Run(db, 4096)

	col := coloring.Greedy(nw.G, coloring.IdentityOrder(nw.G.N()))
	rr, err := core.NewRoundRobin(nw.G, col)
	if err != nil {
		t.Fatal(err)
	}
	rrRep := nw.Run(rr, 4096)
	if dbRep.Fairness <= rrRep.Fairness {
		t.Errorf("degree-bound fairness %.3f should beat round-robin %.3f",
			dbRep.Fairness, rrRep.Fairness)
	}
}

func TestColorBoundOnRadioNetwork(t *testing.T) {
	nw := testNetwork(t)
	col := coloring.SmallestLast(nw.G)
	cb, err := core.NewColorBound(nw.G, col, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	rep := nw.Run(cb, 2000)
	if rep.Collisions != 0 {
		t.Fatalf("color-bound schedule caused %d collisions", rep.Collisions)
	}
}

func TestReportString(t *testing.T) {
	nw := NewNetwork(20, 0.2, 9)
	rep := nw.Run(core.NewDegreeBoundSequential(nw.G), 64)
	s := rep.String()
	if !strings.Contains(s, "degree-bound") || !strings.Contains(s, "collisions=0") {
		t.Errorf("summary %q missing fields", s)
	}
}
