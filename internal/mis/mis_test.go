package mis

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestExactKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K6", graph.Clique(6), 1},
		{"C5", graph.Cycle(5), 2},
		{"C6", graph.Cycle(6), 3},
		{"C9", graph.Cycle(9), 4},
		{"P7", graph.Path(7), 4},
		{"star10", graph.Star(10), 9},
		{"K34", graph.CompleteBipartite(3, 4), 4},
		{"grid3x3", graph.Grid(3, 3), 5},
		{"empty7", graph.Empty(7), 7},
		{"K222", graph.CompleteKPartite(2, 2, 2), 2},
	}
	for _, tc := range cases {
		got := Exact(tc.g)
		if len(got) != tc.want {
			t.Errorf("%s: MIS size = %d, want %d", tc.name, len(got), tc.want)
		}
		if !tc.g.IsIndependent(got) {
			t.Errorf("%s: returned set is not independent", tc.name)
		}
	}
}

func TestExactPetersen(t *testing.T) {
	// The Petersen graph: outer C5 0-4, inner pentagram 5-9, spokes.
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer cycle
		b.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.AddEdge(i, 5+i)         // spokes
	}
	g := b.Graph()
	got := Exact(g)
	if len(got) != 4 {
		t.Errorf("Petersen MIS = %d, want 4", len(got))
	}
	if !g.IsIndependent(got) {
		t.Error("set not independent")
	}
}

func TestGreedyValidAndBounded(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		g := graph.GNP(60, 0.1, seed)
		got := Greedy(g)
		if !g.IsIndependent(got) {
			t.Fatalf("seed %d: greedy set not independent", seed)
		}
		// Fair-share lower bound: Σ 1/(d+1) (Caro–Wei / the paper's §1
		// landmark).
		bound := 0.0
		for v := 0; v < g.N(); v++ {
			bound += 1 / float64(g.Degree(v)+1)
		}
		if float64(len(got)) < bound-1e-9 {
			t.Errorf("seed %d: greedy %d below Caro-Wei bound %.2f", seed, len(got), bound)
		}
	}
}

func TestGreedyAtMostExact(t *testing.T) {
	for _, seed := range []uint64{7, 8, 9} {
		g := graph.GNP(24, 0.25, seed)
		greedy, exact := Greedy(g), Exact(g)
		if len(greedy) > len(exact) {
			t.Errorf("seed %d: greedy %d beats exact %d (impossible)", seed, len(greedy), len(exact))
		}
	}
}

// Property: exact results are independent and at least as large as greedy.
func TestExactQuick(t *testing.T) {
	f := func(seed uint64) bool {
		n := 4 + int(seed%16)
		g := graph.GNP(n, 0.3, seed)
		exact := Exact(g)
		return g.IsIndependent(exact) && len(exact) >= len(Greedy(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Exhaustive cross-check on tiny graphs: branch and bound equals brute
// force over all subsets.
func TestExactMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		n := 3 + int(seed%8)
		g := graph.GNP(n, 0.35, seed+100)
		want := bruteForceMIS(g)
		if got := Size(g); got != want {
			t.Errorf("seed %d: exact %d != brute force %d", seed, got, want)
		}
	}
}

func bruteForceMIS(g *graph.Graph) int {
	n := g.N()
	best := 0
	for mask := 0; mask < 1<<uint(n); mask++ {
		var set []int
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				set = append(set, v)
			}
		}
		if len(set) > best && g.IsIndependent(set) {
			best = len(set)
		}
	}
	return best
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if !b.has(64) || b.has(63) {
		t.Error("bitset membership wrong")
	}
	if b.count() != 3 {
		t.Errorf("count = %d, want 3", b.count())
	}
	if b.firstSet() != 0 {
		t.Errorf("firstSet = %d, want 0", b.firstSet())
	}
	if nextSet(b, 0) != 64 || nextSet(b, 64) != 129 || nextSet(b, 129) != -1 {
		t.Error("nextSet traversal wrong")
	}
	b.clear(64)
	if b.has(64) {
		t.Error("clear failed")
	}
}
