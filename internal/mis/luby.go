package mis

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/localsim"
)

// Luby's randomized distributed maximal-independent-set algorithm — the
// second canonical LOCAL-model problem the paper's related work highlights
// (§1.3: "The problems of interest are especially those of coloring and
// maximal independent set"). Each phase, every undecided node draws a
// random value and joins the MIS when it holds a strict local minimum
// among undecided neighbors; neighbors of joiners drop out. Terminates in
// O(log n) phases with high probability.

type lubyState uint8

const (
	lubyUndecided lubyState = iota
	lubyIn
	lubyOut
)

type lubyMsg struct {
	kind  uint8 // 0: draw, 1: joined
	value uint64
}

type lubyNode struct {
	state lubyState
	draw  uint64
	// liveNeighbors counts neighbors still undecided (for the local-minimum
	// test we only compare against live draws received this phase).
}

func (l *lubyNode) Init(ctx *localsim.Context) {
	if ctx.Degree() == 0 {
		l.state = lubyIn
		ctx.Halt()
	}
}

func (l *lubyNode) Round(ctx *localsim.Context, inbox []localsim.Inbound) {
	if ctx.Round()%2 == 1 {
		// Draw phase: process join notifications from the previous phase,
		// then draw and broadcast.
		for _, m := range inbox {
			if m.Payload.(lubyMsg).kind == 1 {
				l.state = lubyOut
				ctx.Halt()
				return
			}
		}
		l.draw = ctx.Rand().Uint64()
		ctx.Broadcast(lubyMsg{0, l.draw})
		return
	}
	// Resolve phase: join when holding a strict minimum among the live
	// draws (ties broken by id via the pair ordering; collisions on 64-bit
	// draws are negligible but handled deterministically).
	min := true
	for _, m := range inbox {
		msg := m.Payload.(lubyMsg)
		if msg.kind != 0 {
			continue
		}
		if msg.value < l.draw || (msg.value == l.draw && m.From < ctx.ID()) {
			min = false
			break
		}
	}
	if min {
		l.state = lubyIn
		ctx.Broadcast(lubyMsg{1, 0})
		ctx.Halt()
	}
}

// LubyMIS computes a maximal independent set distributively, returning the
// set, the number of LOCAL rounds, and the messages sent.
func LubyMIS(g *graph.Graph, seed uint64) ([]int, int, int64, error) {
	nodes := make([]*lubyNode, g.N())
	net := localsim.New(g, func(v int) localsim.Algorithm {
		nodes[v] = &lubyNode{}
		return nodes[v]
	}, localsim.WithSeed(seed))
	maxRounds := 4*g.N() + 16
	rounds, done := net.Run(maxRounds)
	if !done {
		return nil, rounds, net.Messages(), fmt.Errorf("mis: luby did not converge in %d rounds", maxRounds)
	}
	var out []int
	for v, nd := range nodes {
		switch nd.state {
		case lubyIn:
			out = append(out, v)
		case lubyUndecided:
			return nil, rounds, net.Messages(), fmt.Errorf("mis: node %d halted undecided", v)
		}
	}
	return out, rounds, net.Messages(), nil
}

// IsMaximalIndependent reports whether set is independent and maximal: no
// further node could join.
func IsMaximalIndependent(g *graph.Graph, set []int) bool {
	if !g.IsIndependent(set) {
		return false
	}
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		blocked := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
	}
	return true
}
