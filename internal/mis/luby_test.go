package mis

import (
	"testing"

	"repro/internal/graph"
)

func TestLubyMISMaximalOnFamilies(t *testing.T) {
	families := map[string]*graph.Graph{
		"clique":   graph.Clique(20),
		"cycle":    graph.Cycle(101),
		"star":     graph.Star(30),
		"gnp":      graph.GNP(200, 0.05, 3),
		"tree":     graph.RandomTree(150, 4),
		"edgeless": graph.Empty(7),
		"grid":     graph.Grid(10, 10),
	}
	for name, g := range families {
		set, rounds, msgs, err := LubyMIS(g, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !IsMaximalIndependent(g, set) {
			t.Fatalf("%s: result is not a maximal independent set", name)
		}
		if g.M() > 0 && msgs == 0 {
			t.Errorf("%s: no messages recorded", name)
		}
		if rounds > 6*g.N() {
			t.Errorf("%s: %d rounds is absurd", name, rounds)
		}
	}
}

func TestLubyMISCliqueSize(t *testing.T) {
	set, _, _, err := LubyMIS(graph.Clique(15), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("MIS of a clique has size 1, got %d", len(set))
	}
}

func TestLubyMISRoundsLogarithmic(t *testing.T) {
	g := graph.GNP(1000, 0.01, 5)
	_, rounds, _, err := LubyMIS(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rounds > 100 {
		t.Errorf("luby took %d rounds on n=1000; expected O(log n)", rounds)
	}
}

func TestLubyMISDeterministicPerSeed(t *testing.T) {
	g := graph.GNP(100, 0.06, 7)
	a, _, _, _ := LubyMIS(g, 42)
	b, _, _, _ := LubyMIS(g, 42)
	if len(a) != len(b) {
		t.Fatal("same seed must give same MIS")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical MIS")
		}
	}
}

func TestIsMaximalIndependent(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	if !IsMaximalIndependent(g, []int{0, 2}) {
		t.Error("{0,2} is maximal in P4")
	}
	if IsMaximalIndependent(g, []int{0}) {
		t.Error("{0} is not maximal (2 or 3 could join)")
	}
	if IsMaximalIndependent(g, []int{0, 1}) {
		t.Error("{0,1} is not independent")
	}
	if !IsMaximalIndependent(g, []int{1, 3}) {
		t.Error("{1,3} is maximal in P4")
	}
}
