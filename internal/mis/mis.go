// Package mis implements maximum independent set computation for the
// paper's Appendix A: maximizing happiness in a single holiday is exactly
// MIS on the conflict graph (Observation A.1, MAXSNP-hard), so the package
// provides an exact exponential branch-and-bound solver for small instances
// and a min-degree greedy heuristic for larger ones. Experiment E10 uses
// both to chart the hardness gap and the fair-share discussion of A.2.
package mis

import (
	"math/bits"

	"repro/internal/graph"
)

// bitset is a fixed-width set of node ids backed by uint64 words.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) clone() bitset  { return append(bitset(nil), b...) }
func (b bitset) count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// andNot removes every member of o from b.
func (b bitset) andNot(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

// firstSet returns the smallest member, or -1 if empty.
func (b bitset) firstSet() int {
	for i, w := range b {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Exact returns a maximum independent set of g, found by branch and bound.
// Worst-case exponential; intended for n up to roughly 60 on the sparse
// conflict graphs of the experiments.
func Exact(g *graph.Graph) []int {
	n := g.N()
	nbr := make([]bitset, n)
	for v := 0; v < n; v++ {
		nbr[v] = newBitset(n)
		for _, u := range g.Neighbors(v) {
			nbr[v].set(u)
		}
	}
	avail := newBitset(n)
	for v := 0; v < n; v++ {
		avail.set(v)
	}
	var best []int
	var current []int

	var branch func(avail bitset)
	branch = func(avail bitset) {
		remaining := avail.count()
		if len(current)+remaining <= len(best) {
			return // bound: cannot beat the incumbent
		}
		if remaining == 0 {
			best = append(best[:0], current...)
			return
		}
		// Pick the available vertex with the most available neighbors: both
		// branches shrink fastest. Vertices with no available neighbors are
		// forced into the solution.
		pick, pickDeg := -1, -1
		for w := avail.firstSet(); w != -1; {
			d := 0
			for i := range nbr[w] {
				d += bits.OnesCount64(nbr[w][i] & avail[i])
			}
			if d == 0 {
				// Forced: taking w costs nothing.
				avail2 := avail.clone()
				avail2.clear(w)
				current = append(current, w)
				branch(avail2)
				current = current[:len(current)-1]
				return
			}
			if d > pickDeg {
				pick, pickDeg = w, d
			}
			w = nextSet(avail, w)
		}
		// Branch 1: include pick, dropping its closed neighborhood.
		inc := avail.clone()
		inc.clear(pick)
		inc.andNot(nbr[pick])
		current = append(current, pick)
		branch(inc)
		current = current[:len(current)-1]
		// Branch 2: exclude pick.
		exc := avail.clone()
		exc.clear(pick)
		branch(exc)
	}
	branch(avail)
	return best
}

// nextSet returns the smallest member of b strictly greater than i, or -1.
func nextSet(b bitset, i int) int {
	i++
	if i >= len(b)*64 {
		return -1
	}
	w := b[i/64] >> (uint(i) % 64)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for k := i/64 + 1; k < len(b); k++ {
		if b[k] != 0 {
			return k*64 + bits.TrailingZeros64(b[k])
		}
	}
	return -1
}

// Greedy returns the independent set produced by repeatedly taking a
// minimum-degree vertex of the residual graph and discarding its neighbors —
// the standard heuristic lower bound, guaranteed ≥ Σ 1/(deg(v)+1)
// (the paper's fair-share landmark from §1).
func Greedy(g *graph.Graph) []int {
	n := g.N()
	deg := g.Degrees()
	removed := make([]bool, n)
	var out []int
	for {
		pick, pickDeg := -1, n+1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < pickDeg {
				pick, pickDeg = v, deg[v]
			}
		}
		if pick == -1 {
			return out
		}
		out = append(out, pick)
		removed[pick] = true
		for _, u := range g.Neighbors(pick) {
			if !removed[u] {
				removed[u] = true
				for _, w := range g.Neighbors(u) {
					deg[w]--
				}
			}
		}
	}
}

// Size is a convenience wrapper returning |Exact(g)|.
func Size(g *graph.Graph) int { return len(Exact(g)) }
