package mis

import (
	"math/rand/v2"

	"repro/internal/graph"
)

// This file implements the Appendix A.2 coalitional game: the value of a
// coalition S of parents is v(S) = MIS(G[S]), the maximum happiness the
// members of S can collectively obtain if everyone else gives up. The
// appendix observes that the marginal contributions of the nodes along ANY
// order always sum to exactly MIS(G) — which is why approximating Shapley
// shares is as hard as approximating MIS itself.

// CoalitionValue returns v(S) = MIS(G[S]) for the coalition S (node ids).
func CoalitionValue(g *graph.Graph, coalition []int) int {
	sub, _ := g.InducedSubgraph(coalition)
	return len(Exact(sub))
}

// MarginalContributions returns, for the given arrival order of all nodes,
// each node's marginal contribution v(S ∪ {p}) − v(S) where S is the set of
// earlier arrivals. Exponential per prefix (each prefix solves an MIS);
// intended for the small instances of the A.2 experiments.
func MarginalContributions(g *graph.Graph, order []int) []int {
	out := make([]int, g.N())
	prefix := make([]int, 0, len(order))
	prev := 0
	for _, p := range order {
		prefix = append(prefix, p)
		cur := CoalitionValue(g, prefix)
		out[p] = cur - prev
		prev = cur
	}
	return out
}

// ShapleyEstimate Monte-Carlo-estimates the Shapley value of every node by
// averaging marginal contributions over random arrival orders.
func ShapleyEstimate(g *graph.Graph, samples int, seed uint64) []float64 {
	r := rand.New(rand.NewPCG(seed, 0x5a))
	sum := make([]float64, g.N())
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	for s := 0; s < samples; s++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for p, m := range MarginalContributions(g, order) {
			sum[p] += float64(m)
		}
	}
	for i := range sum {
		sum[i] /= float64(samples)
	}
	return sum
}
