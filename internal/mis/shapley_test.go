package mis

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func TestCoalitionValue(t *testing.T) {
	g := graph.Cycle(6)
	if v := CoalitionValue(g, []int{0, 1, 2, 3, 4, 5}); v != 3 {
		t.Errorf("v(all) = %d, want MIS(C6) = 3", v)
	}
	if v := CoalitionValue(g, []int{0, 2}); v != 2 {
		t.Errorf("v({0,2}) = %d, want 2 (independent pair)", v)
	}
	if v := CoalitionValue(g, []int{0, 1}); v != 1 {
		t.Errorf("v({0,1}) = %d, want 1 (adjacent pair)", v)
	}
	if v := CoalitionValue(g, nil); v != 0 {
		t.Errorf("v(∅) = %d, want 0", v)
	}
}

// Appendix A.2's key observation: the total marginal contribution along any
// arrival order equals MIS(G) exactly.
func TestMarginalContributionsSumToMIS(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(12, 0.3, uint64(trial))
		misSize := Size(g)
		order := make([]int, g.N())
		for i := range order {
			order[i] = i
		}
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0
		for _, m := range MarginalContributions(g, order) {
			total += m
		}
		if total != misSize {
			t.Fatalf("trial %d: marginal sum %d != MIS %d", trial, total, misSize)
		}
	}
}

func TestShapleySymmetryOnClique(t *testing.T) {
	// On K_n the game is symmetric with v(full) = 1, so every player's
	// Shapley value is exactly 1/n; the estimate must converge near it.
	g := graph.Clique(5)
	vals := ShapleyEstimate(g, 400, 9)
	sum := 0.0
	for v, x := range vals {
		if math.Abs(x-0.2) > 0.08 {
			t.Errorf("node %d Shapley estimate %.3f, want ≈ 0.2", v, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Shapley values sum to %.4f, want exactly MIS = 1 (efficiency)", sum)
	}
}

func TestShapleyEfficiencyAlwaysExact(t *testing.T) {
	// Efficiency holds per-sample (A.2), so the estimate's sum is exactly
	// the MIS size regardless of sample count.
	g := graph.GNP(10, 0.4, 77)
	vals := ShapleyEstimate(g, 7, 8)
	sum := 0.0
	for _, x := range vals {
		sum += x
	}
	if math.Abs(sum-float64(Size(g))) > 1e-9 {
		t.Errorf("sum %.4f != MIS %d", sum, Size(g))
	}
}

func TestShapleyStarCenterGetsLess(t *testing.T) {
	// On a star, leaves are valuable (MIS = all leaves) while the center
	// contributes almost nothing: its Shapley value must be far below a
	// leaf's.
	g := graph.Star(7)
	vals := ShapleyEstimate(g, 300, 10)
	leafMin := math.Inf(1)
	for v := 1; v < 7; v++ {
		if vals[v] < leafMin {
			leafMin = vals[v]
		}
	}
	if vals[0] >= leafMin {
		t.Errorf("center Shapley %.3f should be below every leaf (min %.3f)", vals[0], leafMin)
	}
}
