package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells, the common output format of every
// experiment in the harness. Build it with AddRow, then Render (aligned text)
// or WriteCSV.
type Table struct {
	Title   string
	Note    string // optional caption, e.g. the theorem being validated
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row, formatting each cell with %v (floats with %.4g).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned, human-readable text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string, for logs and tests.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("table render error: %v", err)
	}
	return b.String()
}

// WriteCSV writes the table (header + rows, no title) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
