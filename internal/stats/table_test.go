package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "node", "degree", "bound")
	tb.Note = "Theorem X"
	tb.AddRow(0, 3, 4.0)
	tb.AddRow(1, 10, 0.123456)
	out := tb.String()
	for _, want := range []string{"== demo ==", "Theorem X", "node", "degree", "bound", "0.1235"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + note + header + separator + 2 rows
	if len(lines) != 6 {
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x", 1)
	tb.AddRow("y", 2)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1\ny,2\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestTableAddRowFormats(t *testing.T) {
	tb := NewTable("t", "c")
	tb.AddRow(float32(2.5))
	tb.AddRow("plain")
	tb.AddRow(int64(9))
	if tb.Rows[0][0] != "2.5" || tb.Rows[1][0] != "plain" || tb.Rows[2][0] != "9" {
		t.Errorf("rows = %v", tb.Rows)
	}
}
