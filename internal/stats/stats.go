// Package stats provides the small statistics and table-rendering toolkit
// used by the experiment harness: numeric summaries, histograms, and aligned
// text / CSV tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a batch of float64 observations.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// SummarizeInts converts to float64 and summarizes.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// percentile returns the p-quantile (0 <= p <= 1) of a sorted slice using
// nearest-rank with linear interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentile returns the p-quantile of xs (not necessarily sorted).
func Percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentile(sorted, p)
}

// Histogram counts observations into equal-width buckets over [lo, hi].
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Outside int // observations below Lo or above Hi
}

// NewHistogram creates a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) x%d", lo, hi, buckets))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if x < h.Lo || x > h.Hi {
		h.Outside++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i == len(h.Counts) {
		i--
	}
	h.Counts[i]++
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// JainFairness computes Jain's fairness index (Σx)²/(n·Σx²) of the
// allocations xs: 1 means perfectly fair, 1/n means maximally unfair.
// Used by the radio application to compare schedules.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
