package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %v, want 3", s.Mean)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %v, want sqrt(2.5)", s.Stddev)
	}
	if s.P50 != 3 {
		t.Errorf("median = %v, want 3", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v, want zeros", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.P50 != 7 || s.P99 != 7 || s.Stddev != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4, 6})
	if s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Errorf("int summary = %+v", s)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	// Sorted {0, 10}: the 25% quantile interpolates to 2.5.
	got := Percentile([]float64{10, 0}, 0.25)
	if math.Abs(got-2.5) > 1e-12 {
		t.Errorf("P25 = %v, want 2.5", got)
	}
}

// Property: Min <= P50 <= Max and Min <= Mean <= Max for any input.
func TestSummaryOrderingQuick(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip pathological magnitudes whose sum overflows float64;
			// Summarize does not promise finite-arithmetic rescue there.
			if math.IsNaN(x) || math.Abs(x) > 1e300/float64(len(xs)+1) {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50+1e-9 && s.P50 <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 9.99, 10, -1, 11} {
		h.Add(x)
	}
	if h.Outside != 2 {
		t.Errorf("outside = %d, want 2", h.Outside)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d, want 5", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1 fall in [0,2)
		t.Errorf("bucket 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99 and the boundary value 10
		t.Errorf("bucket 4 = %d, want 2", h.Counts[4])
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram must panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestJainFairness(t *testing.T) {
	if f := JainFairness([]float64{1, 1, 1, 1}); math.Abs(f-1) > 1e-12 {
		t.Errorf("equal shares fairness = %v, want 1", f)
	}
	if f := JainFairness([]float64{1, 0, 0, 0}); math.Abs(f-0.25) > 1e-12 {
		t.Errorf("single-winner fairness = %v, want 0.25", f)
	}
	if f := JainFairness(nil); f != 1 {
		t.Errorf("empty fairness = %v, want 1", f)
	}
	if f := JainFairness([]float64{0, 0}); f != 1 {
		t.Errorf("all-zero fairness = %v, want 1", f)
	}
}
