// Package prefixcode implements the universal prefix-free integer codes the
// paper's color-bound scheduler is built on (§4.2, Appendix B): unary, Elias
// gamma, Elias delta, and Elias omega, together with the paper's length
// function ρ, the iterated-log product φ (Definition 4.1), Kraft-inequality
// and prefix-freeness checkers, and bit-string utilities.
package prefixcode

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// Bits is an append-only bit string. Bit 0 is the first (leftmost) bit of a
// codeword. The zero value is the empty string.
type Bits struct {
	words []uint64
	n     int
}

// Len returns the number of bits.
func (b Bits) Len() int { return b.n }

// Bit returns bit i (0 or 1). It panics if i is out of range.
func (b Bits) Bit(i int) int {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("prefixcode: bit index %d out of range [0,%d)", i, b.n))
	}
	return int(b.words[i/64]>>(uint(i)%64)) & 1
}

// Append adds one bit (0 or 1) to the end.
func (b *Bits) Append(bit int) {
	if bit != 0 && bit != 1 {
		panic(fmt.Sprintf("prefixcode: bit must be 0 or 1, got %d", bit))
	}
	if b.n%64 == 0 {
		b.words = append(b.words, 0)
	}
	if bit == 1 {
		b.words[b.n/64] |= 1 << (uint(b.n) % 64)
	}
	b.n++
}

// AppendBits appends all of o after b.
func (b *Bits) AppendBits(o Bits) {
	for i := 0; i < o.n; i++ {
		b.Append(o.Bit(i))
	}
}

// String renders the bits as a "0101" string, first bit leftmost.
func (b Bits) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		sb.WriteByte('0' + byte(b.Bit(i)))
	}
	return sb.String()
}

// Equal reports whether b and o have identical length and contents.
func (b Bits) Equal(o Bits) bool {
	if b.n != o.n {
		return false
	}
	for i := 0; i < b.n; i++ {
		if b.Bit(i) != o.Bit(i) {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether b is a prefix of o (every string is a prefix of
// itself).
func (b Bits) IsPrefixOf(o Bits) bool {
	if b.n > o.n {
		return false
	}
	for i := 0; i < b.n; i++ {
		if b.Bit(i) != o.Bit(i) {
			return false
		}
	}
	return true
}

// Value returns the little-endian integer whose bit j equals Bit(j). This is
// the residue x such that an integer t matches the codeword at its low bits
// iff t ≡ x (mod 2^Len). Panics if Len > 64.
func (b Bits) Value() uint64 {
	if b.n > 64 {
		panic(fmt.Sprintf("prefixcode: codeword of %d bits does not fit a uint64 residue", b.n))
	}
	var v uint64
	for i := 0; i < b.n; i++ {
		v |= uint64(b.Bit(i)) << uint(i)
	}
	return v
}

// Parse builds Bits from a "0101" string.
func Parse(s string) (Bits, error) {
	var b Bits
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			b.Append(0)
		case '1':
			b.Append(1)
		default:
			return Bits{}, fmt.Errorf("prefixcode: invalid bit character %q", s[i])
		}
	}
	return b, nil
}

// MustParse is Parse but panics on error; for tests and literals.
func MustParse(s string) Bits {
	b, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}

// BinaryMSB returns B(i): the binary representation of i with no leading
// zeros, most significant bit first. Panics for i < 1.
func BinaryMSB(i uint64) Bits {
	if i < 1 {
		panic("prefixcode: B(i) requires i >= 1")
	}
	var b Bits
	for k := bits.Len64(i) - 1; k >= 0; k-- {
		b.Append(int(i>>uint(k)) & 1)
	}
	return b
}

// ErrEndOfBits is returned by finite bit readers once exhausted.
var ErrEndOfBits = errors.New("prefixcode: end of bits")

// BitReader yields a stream of bits for decoding.
type BitReader interface {
	// ReadBit returns the next bit (0 or 1) or an error once the stream is
	// exhausted (infinite streams never err).
	ReadBit() (int, error)
}

// bitsReader reads a finite Bits value.
type bitsReader struct {
	b   Bits
	pos int
}

// NewBitsReader returns a reader over the finite bit string b.
func NewBitsReader(b Bits) BitReader { return &bitsReader{b: b} }

func (r *bitsReader) ReadBit() (int, error) {
	if r.pos >= r.b.Len() {
		return 0, ErrEndOfBits
	}
	bit := r.b.Bit(r.pos)
	r.pos++
	return bit, nil
}

// intReader streams the binary representation of t from the least
// significant bit upward, padded with an infinite run of zeros — exactly the
// paper's "binary representation of i from right to left (with an infinite
// sequence of 0's padded to it)".
type intReader struct {
	t   uint64
	pos uint
}

// NewIntReader returns the infinite LSB-first bit stream of t.
func NewIntReader(t uint64) BitReader { return &intReader{t: t} }

func (r *intReader) ReadBit() (int, error) {
	if r.pos >= 64 {
		return 0, nil
	}
	bit := int(r.t>>r.pos) & 1
	r.pos++
	return bit, nil
}
