package prefixcode

import "testing"

// FuzzRoundTrip checks encode/decode inversion and length consistency for
// every code on arbitrary inputs. Seeds cover the paper's worked examples.
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range []uint64{1, 2, 9, 15, 16, 255, 256, 65535, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, i uint64) {
		if i == 0 {
			i = 1
		}
		for _, c := range []Code{Gamma{}, Delta{}, Omega{}} {
			if err := RoundTrip(c, i); err != nil {
				t.Fatal(err)
			}
		}
		if i <= 1<<12 {
			if err := RoundTrip(Unary{}, i); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// FuzzHolidayDecode checks that decoding the LSB-first stream of any
// holiday number either identifies the unique matching color (its codeword
// equals the low bits) or reports a 64-bit range overflow.
func FuzzHolidayDecode(f *testing.F) {
	for _, seed := range []uint64{1, 2, 7, 127, 128, 1 << 20} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, holiday uint64) {
		if holiday == 0 {
			holiday = 1
		}
		for _, c := range []Code{Gamma{}, Delta{}, Omega{}} {
			color, err := c.Decode(NewIntReader(holiday))
			if err != nil {
				continue // matching color exceeds uint64: legitimate
			}
			enc := c.Encode(color)
			if enc.Len() > 63 {
				continue
			}
			period := uint64(1) << uint(enc.Len())
			if holiday%period != enc.Value() {
				t.Fatalf("%s: holiday %d decoded to color %d whose codeword does not match the low bits",
					c.Name(), holiday, color)
			}
		}
	})
}

// FuzzParseBits checks that Parse accepts exactly the strings over {0,1}
// and round-trips through String.
func FuzzParseBits(f *testing.F) {
	f.Add("0101")
	f.Add("")
	f.Add("1111111111111111111111111111111111111111111111111111111111111111111")
	f.Fuzz(func(t *testing.T, s string) {
		b, err := Parse(s)
		for _, ch := range []byte(s) {
			if ch != '0' && ch != '1' {
				if err == nil {
					t.Fatalf("Parse(%q) accepted a non-bit character", s)
				}
				return
			}
		}
		if err != nil {
			t.Fatalf("Parse(%q) rejected a valid bit string: %v", s, err)
		}
		if b.String() != s {
			t.Fatalf("round trip %q -> %q", s, b.String())
		}
	})
}
