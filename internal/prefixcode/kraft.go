package prefixcode

import (
	"fmt"
	"math"
	"sort"
)

// KraftSum returns Σ_{i=1}^{maxI} 2^{-Len(i)} for the code. A prefix-free
// code always satisfies KraftSum ≤ 1 (Kraft's inequality); the proof of
// Theorem 4.1 is exactly this inequality applied to scheduling periods.
func KraftSum(c Code, maxI uint64) float64 {
	sum := 0.0
	for i := uint64(1); i <= maxI; i++ {
		sum += math.Exp2(-float64(c.Len(i)))
	}
	return sum
}

// CheckPrefixFree verifies that no codeword of c for values 1..maxI is a
// prefix of another, returning a descriptive error for the first violation.
// This is the property that makes the §4 scheduler emit independent sets.
func CheckPrefixFree(c Code, maxI uint64) error {
	type cw struct {
		val uint64
		s   string
	}
	words := make([]cw, 0, maxI)
	for i := uint64(1); i <= maxI; i++ {
		words = append(words, cw{i, c.Encode(i).String()})
	}
	sort.Slice(words, func(a, b int) bool { return words[a].s < words[b].s })
	for k := 1; k < len(words); k++ {
		prev, cur := words[k-1], words[k]
		if len(prev.s) <= len(cur.s) && cur.s[:len(prev.s)] == prev.s {
			return fmt.Errorf("prefixcode: %s(%d)=%s is a prefix of %s(%d)=%s",
				c.Name(), prev.val, prev.s, c.Name(), cur.val, cur.s)
		}
	}
	return nil
}

// RoundTrip encodes i and decodes it back, returning an error on mismatch.
// Used by tests and the self-check harness.
func RoundTrip(c Code, i uint64) error {
	enc := c.Encode(i)
	got, err := c.Decode(NewBitsReader(enc))
	if err != nil {
		return fmt.Errorf("prefixcode: %s(%d) decode failed: %w", c.Name(), i, err)
	}
	if got != i {
		return fmt.Errorf("prefixcode: %s(%d) round-tripped to %d", c.Name(), i, got)
	}
	if enc.Len() != c.Len(i) {
		return fmt.Errorf("prefixcode: %s(%d) Len()=%d but encoding has %d bits",
			c.Name(), i, c.Len(i), enc.Len())
	}
	return nil
}
