package prefixcode_test

import (
	"fmt"

	"repro/internal/prefixcode"
)

// The Appendix B worked example: the Elias omega code of 9.
func ExampleOmega() {
	var omega prefixcode.Omega
	fmt.Println(omega.Encode(9))
	fmt.Println(omega.Len(9), "bits")
	// Output:
	// 1110010
	// 7 bits
}

// A node with color c hosts at holidays t whose low bits spell ω(c)
// LSB-first: t ≡ offset (mod 2^len).
func ExampleBits_Value() {
	var omega prefixcode.Omega
	enc := omega.Encode(2) // "100"
	period := 1 << enc.Len()
	fmt.Printf("color 2 hosts at t ≡ %d (mod %d)\n", enc.Value(), period)
	// Output:
	// color 2 hosts at t ≡ 1 (mod 8)
}

// φ is the iterated-log product of Definition 4.1, the Theorem 4.1 lower
// bound on any color-based period guarantee.
func ExamplePhi() {
	fmt.Println(prefixcode.Phi(16))              // 16 * 4 * 2 * 1
	fmt.Println(prefixcode.LogStar(65536))       // 65536 -> 16 -> 4 -> 2 -> 1
	fmt.Println(prefixcode.PeriodUpperBound(16)) // 2^(1+3) * 128
	// Output:
	// 128
	// 4
	// 2048
}
