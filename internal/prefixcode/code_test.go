package prefixcode

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

// paperOmegaTable is the worked example from Appendix B: the Elias omega
// codes of 1..15, spaces removed.
var paperOmegaTable = []string{
	1: "0", 2: "100", 3: "110",
	4: "101000", 5: "101010", 6: "101100", 7: "101110",
	8: "1110000", 9: "1110010", 10: "1110100", 11: "1110110",
	12: "1111000", 13: "1111010", 14: "1111100", 15: "1111110",
}

func TestOmegaMatchesPaperTable(t *testing.T) {
	for i := 1; i <= 15; i++ {
		got := Omega{}.Encode(uint64(i)).String()
		if got != paperOmegaTable[i] {
			t.Errorf("omega(%d) = %s, want %s (Appendix B)", i, got, paperOmegaTable[i])
		}
	}
}

func TestOmegaPaperWorkedExample9(t *testing.T) {
	// Appendix B example 2: re(9) = λ ∘ 11 ∘ 1001, omega = 1110010.
	if got := (Omega{}).Encode(9).String(); got != "1110010" {
		t.Fatalf("omega(9) = %s, want 1110010", got)
	}
}

func TestGammaKnownValues(t *testing.T) {
	cases := map[uint64]string{1: "1", 2: "010", 3: "011", 4: "00100", 9: "0001001"}
	for i, want := range cases {
		if got := (Gamma{}).Encode(i).String(); got != want {
			t.Errorf("gamma(%d) = %s, want %s", i, got, want)
		}
	}
}

func TestDeltaKnownValues(t *testing.T) {
	// delta(i) = gamma(|B(i)|) ++ B(i) minus leading 1.
	cases := map[uint64]string{1: "1", 2: "0100", 3: "0101", 4: "01100", 9: "00100001", 17: "001010001"}
	for i, want := range cases {
		if got := (Delta{}).Encode(i).String(); got != want {
			t.Errorf("delta(%d) = %s, want %s", i, got, want)
		}
	}
}

func TestUnaryKnownValues(t *testing.T) {
	cases := map[uint64]string{1: "0", 2: "10", 4: "1110"}
	for i, want := range cases {
		if got := (Unary{}).Encode(i).String(); got != want {
			t.Errorf("unary(%d) = %s, want %s", i, got, want)
		}
	}
}

func TestRoundTripAllCodesSmall(t *testing.T) {
	for _, c := range All() {
		limit := uint64(2000)
		if c.Name() == "unary" {
			limit = 300
		}
		for i := uint64(1); i <= limit; i++ {
			if err := RoundTrip(c, i); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRoundTripRandomLarge(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for _, c := range All() {
		if c.Name() == "unary" {
			continue // unary codewords of random uint64s are impractical
		}
		for k := 0; k < 500; k++ {
			i := r.Uint64()
			if i == 0 {
				i = 1
			}
			if err := RoundTrip(c, i); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Property: round trip holds for arbitrary values (quick-generated).
func TestRoundTripQuick(t *testing.T) {
	for _, c := range []Code{Gamma{}, Delta{}, Omega{}} {
		c := c
		f := func(i uint64) bool {
			if i == 0 {
				i = 1
			}
			return RoundTrip(c, i) == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestPrefixFreeAllCodes(t *testing.T) {
	for _, c := range All() {
		limit := uint64(4096)
		if c.Name() == "unary" {
			limit = 512
		}
		if err := CheckPrefixFree(c, limit); err != nil {
			t.Error(err)
		}
	}
}

func TestKraftInequality(t *testing.T) {
	for _, c := range All() {
		limit := uint64(1 << 14)
		if c.Name() == "unary" {
			limit = 60
		}
		if s := KraftSum(c, limit); s > 1+1e-9 {
			t.Errorf("%s: Kraft sum %.6f exceeds 1", c.Name(), s)
		}
	}
}

func TestCodeLengthOrdering(t *testing.T) {
	// delta and omega beat gamma, and gamma beats unary, for large values.
	// (Omega overtakes delta only beyond uint64 range — the paper itself
	// notes omega "is not the most practical code"; its advantage is the
	// asymptotic iterated-log length that Theorem 4.2 needs.)
	i := uint64(1 << 40)
	u, g, d, o := Unary{}.Len(i), Gamma{}.Len(i), Delta{}.Len(i), Omega{}.Len(i)
	if d >= g || o >= g {
		t.Errorf("expected delta(%d) and omega(%d) below gamma(%d)", d, o, g)
	}
	if g >= u {
		t.Errorf("gamma length %d must beat unary %d", g, u)
	}
}

func TestDecodeFromHolidayStream(t *testing.T) {
	// For every holiday t, decoding the LSB-first stream of t must yield the
	// unique color whose codeword matches t's low bits.
	for _, c := range All() {
		for tt := uint64(1); tt <= 300; tt++ {
			got, err := c.Decode(NewIntReader(tt))
			if err != nil {
				// Legitimate when the unique matching color exceeds uint64
				// (e.g. delta at t=128 matches the color with a 128-bit
				// binary representation). No graph color is that large, so
				// such holidays simply have no happy node.
				if strings.Contains(err.Error(), "64-bit range") {
					continue
				}
				t.Fatalf("%s: decode holiday %d: %v", c.Name(), tt, err)
			}
			enc := c.Encode(got)
			period := uint64(1) << uint(enc.Len())
			if enc.Len() > 63 {
				continue
			}
			if tt%period != enc.Value() {
				t.Fatalf("%s: holiday %d decoded to %d but t mod 2^%d = %d != residue %d",
					c.Name(), tt, got, enc.Len(), tt%period, enc.Value())
			}
		}
	}
}

func TestEncodeZeroPanics(t *testing.T) {
	for _, c := range All() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Encode(0) must panic", c.Name())
				}
			}()
			c.Encode(0)
		}()
	}
}

func TestDecodeTruncatedErrors(t *testing.T) {
	for _, c := range All() {
		enc := c.Encode(9)
		var truncated Bits
		for i := 0; i < enc.Len()-1; i++ {
			truncated.Append(enc.Bit(i))
		}
		if _, err := c.Decode(NewBitsReader(truncated)); err == nil {
			t.Errorf("%s: decoding truncated codeword must fail", c.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"unary", "gamma", "delta", "omega"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ByName("huffman"); err == nil {
		t.Error("unknown code name must error")
	}
}

func TestPhiKnownValues(t *testing.T) {
	if Phi(1) != 1 || Phi(0.5) != 1 {
		t.Error("phi(x<=1) = 1")
	}
	if got := Phi(2); got != 2 {
		t.Errorf("phi(2) = %v, want 2 (2 * phi(1))", got)
	}
	if got := Phi(4); got != 8 {
		t.Errorf("phi(4) = %v, want 8 (4 * 2 * 1)", got)
	}
	if got := Phi(16); got != 128 {
		t.Errorf("phi(16) = %v, want 128 (16 * 4 * 2)", got)
	}
	if got := Phi(65536); math.Abs(got-65536*16*4*2) > 1e-6 {
		t.Errorf("phi(65536) = %v, want %v", got, 65536.0*16*4*2)
	}
}

func TestLogStar(t *testing.T) {
	cases := map[float64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 16: 3, 17: 4, 65536: 4, 65537: 5}
	for x, want := range cases {
		if got := LogStar(x); got != want {
			t.Errorf("log*(%v) = %d, want %d", x, got, want)
		}
	}
}

func TestIterLog(t *testing.T) {
	if got := IterLog(256, 0); got != 256 {
		t.Errorf("log^(0) 256 = %v", got)
	}
	if got := IterLog(256, 1); got != 8 {
		t.Errorf("log^(1) 256 = %v, want 8", got)
	}
	if got := IterLog(256, 2); got != 3 {
		t.Errorf("log^(2) 256 = %v, want 3", got)
	}
}

func TestRhoMatchesOmegaLength(t *testing.T) {
	for i := uint64(1); i <= 5000; i++ {
		if Rho(i) != (Omega{}).Encode(i).Len() {
			t.Fatalf("rho(%d) = %d != |omega(%d)| = %d", i, Rho(i), i, Omega{}.Encode(i).Len())
		}
	}
}

// Theorem 4.2: the omega-schedule period 2^rho(c) is bounded by
// 2^{1+log* c} * phi(c).
func TestTheorem42PeriodBound(t *testing.T) {
	for c := uint64(1); c <= 1<<16; c++ {
		period := math.Exp2(float64(Rho(c)))
		bound := PeriodUpperBound(c)
		if period > bound*(1+1e-9) {
			t.Fatalf("Theorem 4.2 violated at c=%d: period 2^%d = %g > bound %g",
				c, Rho(c), period, bound)
		}
	}
}

func TestRhoUpperBound(t *testing.T) {
	for c := uint64(2); c <= 1<<16; c *= 3 {
		if float64(Rho(c)) > RhoUpperBound(c)+1e-9 {
			t.Errorf("rho(%d) = %d exceeds estimate %v", c, Rho(c), RhoUpperBound(c))
		}
	}
}

// Theorem 4.1 flavor: the Kraft sum over omega codeword lengths stays <= 1,
// i.e. periods 2^rho(c) satisfy the feasibility inequality sum 1/f(c) <= 1.
func TestOmegaPeriodsFeasible(t *testing.T) {
	sum := 0.0
	for c := uint64(1); c <= 1<<16; c++ {
		sum += math.Exp2(-float64(Rho(c)))
	}
	if sum > 1 {
		t.Errorf("sum of 2^-rho(c) = %v exceeds 1", sum)
	}
}
