package prefixcode

import (
	"math"
)

// Phi evaluates the paper's Definition 4.1:
//
//	φ(i) = 1            for i <= 1
//	φ(i) = i · φ(log i) for i > 1
//
// i.e. φ(i) = i · log i · log log i · … down to 1, with logs base 2. This is
// the Cauchy-condensation frontier of Theorem 4.1: any color-based schedule
// must have period f(c) ∈ Ω(φ(c)).
func Phi(x float64) float64 {
	product := 1.0
	for x > 1 {
		product *= x
		x = math.Log2(x)
	}
	return product
}

// LogStar returns log* x: the number of times log₂ must be iterated,
// starting from x, before the value drops to at most 1. LogStar(1) = 0,
// LogStar(2) = 1, LogStar(4) = 2, LogStar(16) = 3, LogStar(65536) = 4.
func LogStar(x float64) int {
	n := 0
	for x > 1 {
		x = math.Log2(x)
		n++
	}
	return n
}

// IterLog returns log^(k) x, the k-fold iterated base-2 logarithm
// (IterLog(x, 0) = x).
func IterLog(x float64, k int) float64 {
	for ; k > 0; k-- {
		x = math.Log2(x)
	}
	return x
}

// Rho returns ρ(i), the exact bit length of the Elias omega codeword of i
// (Properties 1.2 in Appendix B). The paper states the recursion as
// rb(i) = ⌈log i⌉ + rb(⌈log i⌉ − 1) with ⌈log i⌉ read as the bit count
// |B(i)| = ⌊log i⌋ + 1; with that reading the closed form coincides exactly
// with the codeword length, which is what this function computes.
func Rho(i uint64) int { return Omega{}.Len(i) }

// RhoUpperBound returns the Theorem 4.2 estimate
// 1 + log* c + Σ_{i=1}^{log* c} log^(i) c, which upper-bounds ρ(c).
func RhoUpperBound(c uint64) float64 {
	x := float64(c)
	ls := LogStar(x)
	sum := 1.0 + float64(ls)
	v := x
	for i := 1; i <= ls; i++ {
		v = math.Log2(v)
		sum += v
	}
	return sum
}

// PeriodUpperBound returns the Theorem 4.2 period bound
// 2^{1 + log* c} · φ(c) for a node colored c under the omega-code schedule.
// The realized period is exactly 2^ρ(c) and never exceeds this bound.
func PeriodUpperBound(c uint64) float64 {
	x := float64(c)
	return math.Exp2(1+float64(LogStar(x))) * Phi(x)
}
