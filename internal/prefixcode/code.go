package prefixcode

import (
	"fmt"
	"math/bits"
	"sort"
)

// Code is a prefix-free binary code over the positive integers. All four
// implementations in this package are complete or near-complete universal
// codes; the scheduler only relies on prefix-freeness (§4: two distinct
// colors can never both match the low bits of the same holiday number).
type Code interface {
	// Name identifies the code ("unary", "gamma", "delta", "omega").
	Name() string
	// Encode returns the codeword of i. Panics for i < 1.
	Encode(i uint64) Bits
	// Len returns len(Encode(i)) without materializing the codeword.
	Len(i uint64) int
	// Decode reads one codeword from r and returns its value. On an
	// infinite reader it always terminates for streams that are eventually
	// all zero (such as NewIntReader streams).
	Decode(r BitReader) (uint64, error)
}

// checkArg panics for out-of-domain encode arguments.
func checkArg(code string, i uint64) {
	if i < 1 {
		panic(fmt.Sprintf("prefixcode: %s code is defined for i >= 1, got %d", code, i))
	}
}

// Unary is the unary code: i is encoded as i-1 ones followed by a zero.
// Its length i is the worst possible universal code, included as the
// degenerate baseline for the E11 code ablation.
type Unary struct{}

// Name implements Code.
func (Unary) Name() string { return "unary" }

// Encode implements Code.
func (Unary) Encode(i uint64) Bits {
	checkArg("unary", i)
	var b Bits
	for k := uint64(1); k < i; k++ {
		b.Append(1)
	}
	b.Append(0)
	return b
}

// Len implements Code.
func (Unary) Len(i uint64) int {
	checkArg("unary", i)
	return int(i)
}

// Decode implements Code.
func (Unary) Decode(r BitReader) (uint64, error) {
	count := uint64(1)
	for {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if bit == 0 {
			return count, nil
		}
		count++
	}
}

// Gamma is the Elias gamma code: ⌊log i⌋ zeros followed by B(i).
// Length 2⌊log i⌋ + 1.
type Gamma struct{}

// Name implements Code.
func (Gamma) Name() string { return "gamma" }

// Encode implements Code.
func (Gamma) Encode(i uint64) Bits {
	checkArg("gamma", i)
	var b Bits
	for k := bits.Len64(i) - 1; k > 0; k-- {
		b.Append(0)
	}
	b.AppendBits(BinaryMSB(i))
	return b
}

// Len implements Code.
func (Gamma) Len(i uint64) int {
	checkArg("gamma", i)
	return 2*(bits.Len64(i)-1) + 1
}

// Decode implements Code.
func (Gamma) Decode(r BitReader) (uint64, error) {
	zeros := 0
	for {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if bit == 1 {
			break
		}
		zeros++
		if zeros > 64 {
			return 0, fmt.Errorf("prefixcode: gamma codeword exceeds 64-bit range")
		}
	}
	v := uint64(1)
	for k := 0; k < zeros; k++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(bit)
	}
	return v, nil
}

// Delta is the Elias delta code: gamma(|B(i)|) followed by B(i) without its
// leading 1. Length ⌊log i⌋ + 2⌊log(⌊log i⌋+1)⌋ + 1.
type Delta struct{}

// Name implements Code.
func (Delta) Name() string { return "delta" }

// Encode implements Code.
func (Delta) Encode(i uint64) Bits {
	checkArg("delta", i)
	nb := uint64(bits.Len64(i)) // |B(i)|
	b := Gamma{}.Encode(nb)
	for k := bits.Len64(i) - 2; k >= 0; k-- {
		b.Append(int(i>>uint(k)) & 1)
	}
	return b
}

// Len implements Code.
func (Delta) Len(i uint64) int {
	checkArg("delta", i)
	nb := bits.Len64(i)
	return Gamma{}.Len(uint64(nb)) + nb - 1
}

// Decode implements Code.
func (Delta) Decode(r BitReader) (uint64, error) {
	nb, err := Gamma{}.Decode(r)
	if err != nil {
		return 0, err
	}
	if nb > 64 {
		return 0, fmt.Errorf("prefixcode: delta codeword exceeds 64-bit range")
	}
	v := uint64(1)
	for k := uint64(1); k < nb; k++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(bit)
	}
	return v, nil
}

// Omega is the Elias omega code of Appendix B: re(1) = λ,
// re(i) = re(|B(i)|−1) ∘ B(i), and ω(i) = re(i) ∘ 0. It is the code the
// paper's Theorem 4.2 instantiates, with length ρ(i) within a factor
// 2^{1+log* i} of the lower-bound product φ(i).
type Omega struct{}

// Name implements Code.
func (Omega) Name() string { return "omega" }

// Encode implements Code.
func (Omega) Encode(i uint64) Bits {
	checkArg("omega", i)
	// Collect the group values along the recursion i -> |B(i)|-1, then emit
	// them outermost-first followed by the terminating 0.
	var groups []uint64
	for i > 1 {
		groups = append(groups, i)
		i = uint64(bits.Len64(i)) - 1
	}
	var b Bits
	for k := len(groups) - 1; k >= 0; k-- {
		b.AppendBits(BinaryMSB(groups[k]))
	}
	b.Append(0)
	return b
}

// Len implements Code. This is the exact codeword length; see Rho for the
// relationship to the paper's closed-form ρ.
func (Omega) Len(i uint64) int {
	checkArg("omega", i)
	n := 1 // terminating zero
	for i > 1 {
		nb := bits.Len64(i)
		n += nb
		i = uint64(nb) - 1
	}
	return n
}

// Decode implements Code.
func (Omega) Decode(r BitReader) (uint64, error) {
	v := uint64(1)
	for {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if bit == 0 {
			return v, nil
		}
		// The 1 just read is the most significant bit of a group of v+1
		// bits encoding the next value.
		if v >= 64 {
			return 0, fmt.Errorf("prefixcode: omega codeword exceeds 64-bit range")
		}
		next := uint64(1)
		for k := uint64(0); k < v; k++ {
			b2, err := r.ReadBit()
			if err != nil {
				return 0, err
			}
			next = next<<1 | uint64(b2)
		}
		v = next
	}
}

// All returns the four codes in ascending order of asymptotic efficiency.
func All() []Code {
	return []Code{Unary{}, Gamma{}, Delta{}, Omega{}}
}

// ByName returns the named code, or an error listing the valid names.
func ByName(name string) (Code, error) {
	for _, c := range All() {
		if c.Name() == name {
			return c, nil
		}
	}
	names := make([]string, 0, 4)
	for _, c := range All() {
		names = append(names, c.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("prefixcode: unknown code %q (valid: %v)", name, names)
}
