package prefixcode

import (
	"testing"
)

func TestBitsAppendAndString(t *testing.T) {
	var b Bits
	for _, bit := range []int{1, 0, 1, 1} {
		b.Append(bit)
	}
	if b.Len() != 4 {
		t.Fatalf("len = %d, want 4", b.Len())
	}
	if b.String() != "1011" {
		t.Fatalf("string = %q, want 1011", b.String())
	}
	if b.Bit(0) != 1 || b.Bit(1) != 0 || b.Bit(3) != 1 {
		t.Error("bit access wrong")
	}
}

func TestBitsCrossWordBoundary(t *testing.T) {
	var b Bits
	for i := 0; i < 130; i++ {
		b.Append(i % 2)
	}
	if b.Len() != 130 {
		t.Fatalf("len = %d, want 130", b.Len())
	}
	for i := 0; i < 130; i++ {
		if b.Bit(i) != i%2 {
			t.Fatalf("bit %d = %d, want %d", i, b.Bit(i), i%2)
		}
	}
}

func TestBitsAppendBits(t *testing.T) {
	a := MustParse("10")
	c := MustParse("011")
	a.AppendBits(c)
	if a.String() != "10011" {
		t.Fatalf("concat = %q, want 10011", a.String())
	}
}

func TestBitsEqualAndPrefix(t *testing.T) {
	a := MustParse("101")
	if !a.Equal(MustParse("101")) {
		t.Error("equal strings must compare equal")
	}
	if a.Equal(MustParse("1010")) || a.Equal(MustParse("100")) {
		t.Error("unequal strings must compare unequal")
	}
	if !MustParse("10").IsPrefixOf(a) {
		t.Error("10 is a prefix of 101")
	}
	if !a.IsPrefixOf(a) {
		t.Error("a string is a prefix of itself")
	}
	if MustParse("11").IsPrefixOf(a) {
		t.Error("11 is not a prefix of 101")
	}
	if MustParse("1011").IsPrefixOf(a) {
		t.Error("longer string is not a prefix")
	}
}

func TestBitsValue(t *testing.T) {
	// Little-endian: "101" means bit0=1, bit1=0, bit2=1 => 1 + 4 = 5.
	if v := MustParse("101").Value(); v != 5 {
		t.Errorf("value = %d, want 5", v)
	}
	if v := (Bits{}).Value(); v != 0 {
		t.Errorf("empty value = %d, want 0", v)
	}
}

func TestBitsValueTooLongPanics(t *testing.T) {
	var b Bits
	for i := 0; i < 65; i++ {
		b.Append(0)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Value on >64 bits must panic")
		}
	}()
	b.Value()
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse("01x"); err == nil {
		t.Fatal("Parse must reject non-bit characters")
	}
}

func TestAppendRejectsNonBit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append(2) must panic")
		}
	}()
	var b Bits
	b.Append(2)
}

func TestBitOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bit out of range must panic")
		}
	}()
	MustParse("1").Bit(1)
}

func TestBinaryMSB(t *testing.T) {
	cases := map[uint64]string{1: "1", 2: "10", 5: "101", 9: "1001", 16: "10000"}
	for i, want := range cases {
		if got := BinaryMSB(i).String(); got != want {
			t.Errorf("B(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestBinaryMSBZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("B(0) must panic")
		}
	}()
	BinaryMSB(0)
}

func TestBitsReaderExhaustion(t *testing.T) {
	r := NewBitsReader(MustParse("10"))
	if b, err := r.ReadBit(); err != nil || b != 1 {
		t.Fatalf("first bit = (%d,%v)", b, err)
	}
	if b, err := r.ReadBit(); err != nil || b != 0 {
		t.Fatalf("second bit = (%d,%v)", b, err)
	}
	if _, err := r.ReadBit(); err != ErrEndOfBits {
		t.Fatalf("expected ErrEndOfBits, got %v", err)
	}
}

func TestIntReaderStreamsLSBFirstWithPadding(t *testing.T) {
	// 6 = 110b: LSB-first stream is 0, 1, 1, then infinite zeros.
	r := NewIntReader(6)
	want := []int{0, 1, 1, 0, 0, 0, 0}
	for i, w := range want {
		b, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: unexpected error %v", i, err)
		}
		if b != w {
			t.Fatalf("bit %d = %d, want %d", i, b, w)
		}
	}
	// Far past 64 bits it must keep yielding zeros without error.
	for i := 0; i < 200; i++ {
		b, err := r.ReadBit()
		if err != nil || b != 0 {
			t.Fatalf("padding bit = (%d,%v), want (0,nil)", b, err)
		}
	}
}
