package graph

import "fmt"

// Dynamic is a mutable undirected simple graph supporting edge insertion and
// deletion, used for the paper's §6 dynamic setting (marriages and divorces
// arriving online). It is not safe for concurrent mutation.
type Dynamic struct {
	adj []map[int]bool
	m   int
}

// NewDynamic returns a dynamic graph with n isolated nodes.
func NewDynamic(n int) *Dynamic {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	return &Dynamic{adj: adj}
}

// DynamicFrom copies a static graph into a dynamic one.
func DynamicFrom(g *Graph) *Dynamic {
	d := NewDynamic(g.N())
	for _, e := range g.Edges() {
		d.AddEdge(e.U, e.V)
	}
	return d
}

// N returns the number of nodes.
func (d *Dynamic) N() int { return len(d.adj) }

// M returns the number of edges.
func (d *Dynamic) M() int { return d.m }

// Degree returns the current degree of v.
func (d *Dynamic) Degree(v int) int { return len(d.adj[v]) }

// Adjacent reports whether u and v currently share an edge.
func (d *Dynamic) Adjacent(u, v int) bool { return d.adj[u][v] }

// AddNode appends an isolated node and returns its id.
func (d *Dynamic) AddNode() int {
	d.adj = append(d.adj, make(map[int]bool))
	return len(d.adj) - 1
}

// AddEdge inserts the undirected edge {u, v}. It reports whether the edge was
// newly inserted (false if it already existed). Self-loops panic.
func (d *Dynamic) AddEdge(u, v int) bool {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if d.adj[u][v] {
		return false
	}
	d.adj[u][v] = true
	d.adj[v][u] = true
	d.m++
	return true
}

// RemoveEdge deletes the undirected edge {u, v}, reporting whether it was
// present.
func (d *Dynamic) RemoveEdge(u, v int) bool {
	if !d.adj[u][v] {
		return false
	}
	delete(d.adj[u], v)
	delete(d.adj[v], u)
	d.m--
	return true
}

// Neighbors returns a freshly allocated, unordered neighbor list of v.
func (d *Dynamic) Neighbors(v int) []int {
	out := make([]int, 0, len(d.adj[v]))
	for u := range d.adj[v] {
		out = append(out, u)
	}
	return out
}

// Snapshot freezes the current edge set into an immutable Graph.
func (d *Dynamic) Snapshot() *Graph {
	b := NewBuilder(len(d.adj))
	for u := range d.adj {
		for v := range d.adj[u] {
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Graph()
}
