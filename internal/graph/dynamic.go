package graph

import "fmt"

// Dynamic is a mutable undirected simple graph supporting edge insertion and
// deletion, used for the paper's §6 dynamic setting (marriages and divorces
// arriving online). It is not safe for concurrent mutation.
//
// Adjacency is stored as plain neighbor slices rather than per-node hash
// sets: conflict graphs are sparse (average degree stays small even in the
// mega scenarios), so a linear membership scan beats hashing while using a
// fraction of the memory — per-node hash sets cost hundreds of bytes per
// node at 10⁵–10⁶ nodes, which is what used to make million-node
// communities unloadable.
type Dynamic struct {
	adj [][]int
	m   int
}

// NewDynamic returns a dynamic graph with n isolated nodes.
func NewDynamic(n int) *Dynamic {
	return &Dynamic{adj: make([][]int, n)}
}

// DynamicFrom copies a static graph into a dynamic one.
func DynamicFrom(g *Graph) *Dynamic {
	d := &Dynamic{adj: make([][]int, g.N()), m: g.M()}
	for v := range d.adj {
		if ns := g.Neighbors(v); len(ns) > 0 {
			d.adj[v] = append([]int(nil), ns...)
		}
	}
	return d
}

// N returns the number of nodes.
func (d *Dynamic) N() int { return len(d.adj) }

// M returns the number of edges.
func (d *Dynamic) M() int { return d.m }

// Degree returns the current degree of v.
func (d *Dynamic) Degree(v int) int { return len(d.adj[v]) }

// Adjacent reports whether u and v currently share an edge.
func (d *Dynamic) Adjacent(u, v int) bool {
	// Scan the shorter list: checks during churn usually involve one
	// low-degree endpoint.
	a, b := d.adj[u], d.adj[v]
	if len(b) < len(a) {
		a, b = b, a
		u, v = v, u
	}
	for _, w := range a {
		if w == v {
			return true
		}
	}
	return false
}

// AddNode appends an isolated node and returns its id.
func (d *Dynamic) AddNode() int {
	d.adj = append(d.adj, nil)
	return len(d.adj) - 1
}

// AddEdge inserts the undirected edge {u, v}. It reports whether the edge was
// newly inserted (false if it already existed). Self-loops panic.
func (d *Dynamic) AddEdge(u, v int) bool {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if d.Adjacent(u, v) {
		return false
	}
	d.adj[u] = append(d.adj[u], v)
	d.adj[v] = append(d.adj[v], u)
	d.m++
	return true
}

// RemoveEdge deletes the undirected edge {u, v}, reporting whether it was
// present.
func (d *Dynamic) RemoveEdge(u, v int) bool {
	if !d.removeHalf(u, v) {
		return false
	}
	d.removeHalf(v, u)
	d.m--
	return true
}

// removeHalf deletes v from u's neighbor list by swap-remove, reporting
// whether it was present. Neighbor lists are unordered, so order need not be
// preserved.
func (d *Dynamic) removeHalf(u, v int) bool {
	a := d.adj[u]
	for i, w := range a {
		if w == v {
			a[i] = a[len(a)-1]
			d.adj[u] = a[:len(a)-1]
			return true
		}
	}
	return false
}

// Neighbors returns the unordered neighbor list of v. The returned slice is
// shared with the graph: it is valid only until the next mutation and must
// not be modified.
func (d *Dynamic) Neighbors(v int) []int { return d.adj[v] }

// Snapshot freezes the current edge set into an immutable Graph.
func (d *Dynamic) Snapshot() *Graph {
	b := NewBuilder(len(d.adj))
	for u := range d.adj {
		for _, v := range d.adj[u] {
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Graph()
}
