package graph

import (
	"math"
	"testing"
)

func TestClique(t *testing.T) {
	g := Clique(6)
	if g.M() != 15 {
		t.Fatalf("K6 has %d edges, want 15", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 5 {
			t.Errorf("K6 degree(%d) = %d, want 5", v, g.Degree(v))
		}
	}
}

func TestPathCycleStar(t *testing.T) {
	if p := Path(5); p.M() != 4 || p.MaxDegree() != 2 || p.MinDegree() != 1 {
		t.Errorf("path(5) wrong shape: %v", p)
	}
	if c := Cycle(5); c.M() != 5 || c.MaxDegree() != 2 || c.MinDegree() != 2 {
		t.Errorf("cycle(5) wrong shape: %v", c)
	}
	if s := Star(7); s.M() != 6 || s.Degree(0) != 6 {
		t.Errorf("star(7) wrong shape: %v", s)
	}
}

func TestCycleTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cycle(2) must panic")
		}
	}()
	Cycle(2)
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid N = %d, want 12", g.N())
	}
	// Edges: 3 rows * 3 horizontal + 2*4 vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Fatalf("grid M = %d, want 17", g.M())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("grid max degree = %d, want 4", g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Error("grid must be connected")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.M() != 12 {
		t.Fatalf("K(3,4) M = %d, want 12", g.M())
	}
	if _, ok := g.Bipartition(); !ok {
		t.Error("K(3,4) must be bipartite")
	}
}

func TestCompleteKPartite(t *testing.T) {
	g := CompleteKPartite(2, 2, 2)
	// K(2,2,2): each node adjacent to 4 others -> 6*4/2 = 12 edges.
	if g.M() != 12 {
		t.Fatalf("K(2,2,2) M = %d, want 12", g.M())
	}
	if g.Adjacent(0, 1) {
		t.Error("nodes in same part must not be adjacent")
	}
	if !g.Adjacent(0, 2) {
		t.Error("nodes in different parts must be adjacent")
	}
}

func TestGNPEdgeCases(t *testing.T) {
	if g := GNP(20, 0, 1); g.M() != 0 {
		t.Errorf("G(n,0) must be empty, got %d edges", g.M())
	}
	if g := GNP(20, 1, 1); g.M() != 190 {
		t.Errorf("G(20,1) must be complete (190 edges), got %d", g.M())
	}
}

func TestGNPDensity(t *testing.T) {
	n, p := 300, 0.1
	g := GNP(n, p, 42)
	mean := p * float64(n*(n-1)/2)
	sd := math.Sqrt(mean * (1 - p))
	if math.Abs(float64(g.M())-mean) > 6*sd {
		t.Errorf("G(%d,%v) has %d edges, expected about %.0f +- %.0f", n, p, g.M(), mean, 6*sd)
	}
}

func TestGNPDeterministic(t *testing.T) {
	a := GNP(50, 0.2, 7)
	b := GNP(50, 0.2, 7)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed must give same graph")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed must give identical edge lists")
		}
	}
	c := GNP(50, 0.2, 8)
	if c.M() == a.M() && len(ea) > 0 {
		same := true
		for i, e := range c.Edges() {
			if e != ea[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds should give different graphs")
		}
	}
}

func TestRandomTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100} {
		g := RandomTree(n, uint64(n))
		wantM := n - 1
		if n == 0 || n == 1 {
			wantM = 0
		}
		if g.M() != wantM {
			t.Errorf("tree(%d) M = %d, want %d", n, g.M(), wantM)
		}
		if !g.IsConnected() {
			t.Errorf("tree(%d) must be connected", n)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(50, 4, 3)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if z := RandomRegular(10, 0, 1); z.M() != 0 {
		t.Error("0-regular graph must be empty")
	}
}

func TestRandomRegularInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd n*d must panic")
		}
	}()
	RandomRegular(5, 3, 1)
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(200, 3, 11)
	if g.N() != 200 {
		t.Fatalf("N = %d, want 200", g.N())
	}
	// Initial clique K4 has 6 edges; each of the remaining 196 nodes adds
	// exactly 3 distinct edges.
	want := 6 + 196*3
	if g.M() != want {
		t.Fatalf("M = %d, want %d", g.M(), want)
	}
	if !g.IsConnected() {
		t.Error("preferential attachment graph must be connected")
	}
	if g.MinDegree() < 3 {
		t.Errorf("min degree = %d, want >= 3", g.MinDegree())
	}
}

func TestUnitDisk(t *testing.T) {
	g, pts := UnitDisk(150, 0.15, 5)
	if len(pts) != 150 || g.N() != 150 {
		t.Fatal("unit disk must return n points and n nodes")
	}
	// Cross-check against the brute-force O(n^2) construction.
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			within := pts[i].Dist(pts[j]) <= 0.15
			if within != g.Adjacent(i, j) {
				t.Fatalf("adjacency (%d,%d) = %v, want %v", i, j, g.Adjacent(i, j), within)
			}
		}
	}
}

func TestUnitDiskZeroRadius(t *testing.T) {
	g, _ := UnitDisk(10, 0, 1)
	if g.M() != 0 {
		t.Error("zero radius must give an empty graph")
	}
}

func TestRandomBipartite(t *testing.T) {
	g := RandomBipartite(20, 30, 0.3, 9)
	if _, ok := g.Bipartition(); !ok {
		t.Fatal("random bipartite graph must be bipartite")
	}
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			if g.Adjacent(u, v) {
				t.Fatal("no edges inside the left part")
			}
		}
	}
}
