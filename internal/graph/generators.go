package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// rng returns a deterministic generator for the given seed. All generators in
// this package are reproducible given (parameters, seed).
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
}

// Empty returns the graph with n nodes and no edges.
func Empty(n int) *Graph { return NewBuilder(n).Graph() }

// Clique returns the complete graph K_n.
func Clique(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Graph()
}

// Path returns the path 0-1-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v-1, v)
	}
	return b.Graph()
}

// Cycle returns the cycle C_n (requires n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v-1, v)
	}
	b.AddEdge(n-1, 0)
	return b.Graph()
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Graph()
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Graph()
}

// CompleteBipartite returns K_{a,b} with the first a nodes on one side.
func CompleteBipartite(a, b int) *Graph {
	bl := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bl.AddEdge(u, v)
		}
	}
	return bl.Graph()
}

// CompleteKPartite returns the complete multipartite graph with the given
// part sizes: every pair of nodes in different parts is joined.
func CompleteKPartite(sizes ...int) *Graph {
	total := 0
	starts := make([]int, len(sizes))
	for i, s := range sizes {
		starts[i] = total
		total += s
	}
	b := NewBuilder(total)
	for i := range sizes {
		for j := i + 1; j < len(sizes); j++ {
			for u := starts[i]; u < starts[i]+sizes[i]; u++ {
				for v := starts[j]; v < starts[j]+sizes[j]; v++ {
					b.AddEdge(u, v)
				}
			}
		}
	}
	return b.Graph()
}

// GNP returns an Erdős–Rényi G(n, p) random graph.
func GNP(n int, p float64, seed uint64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	if p <= 0 {
		return b.Graph()
	}
	if p >= 1 {
		return Clique(n)
	}
	// Geometric skipping over the linearized pair index: only present edges
	// are visited, so expected work is O(p * n^2) = O(m).
	logq := math.Log1p(-p)
	total := n * (n - 1) / 2
	u := 0          // current row
	rowEnd := n - 1 // first linear index beyond row u
	idx := -1
	for {
		skip := int(math.Floor(math.Log(1-r.Float64()) / logq))
		if skip < 0 {
			skip = 0
		}
		idx += 1 + skip
		if idx >= total {
			break
		}
		for idx >= rowEnd {
			u++
			rowEnd += n - 1 - u
		}
		v := u + 1 + (idx - (rowEnd - (n - 1 - u)))
		b.AddEdge(u, v)
	}
	return b.Graph()
}

// RandomBipartite returns a bipartite random graph on parts of size a and b
// where each cross pair is an edge independently with probability p.
func RandomBipartite(a, b int, p float64, seed uint64) *Graph {
	r := rng(seed)
	bl := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			if r.Float64() < p {
				bl.AddEdge(u, v)
			}
		}
	}
	return bl.Graph()
}

// RandomTree returns a uniformly random labeled tree on n nodes via a random
// Prüfer sequence.
func RandomTree(n int, seed uint64) *Graph {
	if n <= 1 {
		return Empty(n)
	}
	if n == 2 {
		return MustFromEdges(2, []Edge{{0, 1}})
	}
	r := rng(seed)
	prufer := make([]int, n-2)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for i := range prufer {
		prufer[i] = r.IntN(n)
		deg[prufer[i]]++
	}
	b := NewBuilder(n)
	// Standard Prüfer decoding with a scan pointer and a "current leaf".
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		b.AddEdge(leaf, v)
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	b.AddEdge(leaf, n-1)
	return b.Graph()
}

// RandomRegular returns a random d-regular graph on n nodes. It starts from
// a deterministic circulant d-regular graph and applies many random
// degree-preserving double-edge swaps (the standard switch-chain sampler,
// which unlike the raw pairing model never rejects). Requires n*d even and
// d < n.
func RandomRegular(n, d int, seed uint64) *Graph {
	if d >= n || n*d%2 != 0 {
		panic(fmt.Sprintf("graph: invalid regular parameters n=%d d=%d", n, d))
	}
	if d == 0 {
		return Empty(n)
	}
	// Circulant base: connect i to i±1, …, i±⌊d/2⌋; if d is odd (then n is
	// even) also to the antipode i+n/2.
	dyn := NewDynamic(n)
	for v := 0; v < n; v++ {
		for k := 1; k <= d/2; k++ {
			dyn.AddEdge(v, (v+k)%n)
		}
		if d%2 == 1 {
			dyn.AddEdge(v, (v+n/2)%n)
		}
	}
	r := rng(seed)
	edges := dyn.Snapshot().Edges()
	swaps := 20 * len(edges)
	for s := 0; s < swaps; s++ {
		i, j := r.IntN(len(edges)), r.IntN(len(edges))
		a, b := edges[i].U, edges[i].V
		c, e := edges[j].U, edges[j].V
		if r.IntN(2) == 1 {
			c, e = e, c
		}
		// Swap (a,b),(c,e) -> (a,c),(b,e) when it keeps the graph simple.
		if a == c || a == e || b == c || b == e {
			continue
		}
		if dyn.Adjacent(a, c) || dyn.Adjacent(b, e) {
			continue
		}
		dyn.RemoveEdge(a, b)
		dyn.RemoveEdge(c, e)
		dyn.AddEdge(a, c)
		dyn.AddEdge(b, e)
		edges[i] = Edge{U: a, V: c}.Canon()
		edges[j] = Edge{U: b, V: e}.Canon()
	}
	return dyn.Snapshot()
}

// PreferentialAttachment returns a Barabási–Albert style power-law graph:
// starting from a clique on m+1 nodes, each new node attaches to m distinct
// existing nodes chosen proportionally to their degree. The result has a
// heavy-tailed degree distribution, the workload the paper's locality goal
// (per-node rather than Δ bounds) is designed for.
// The generator is built for the mega benchmark scenarios: it assembles
// adjacency directly (every edge is unique by construction, so the Builder's
// dedup map would only burn memory at 10⁵–10⁶ nodes), dedups targets with a
// linear scan over at most m candidates, and preallocates the
// repeated-endpoint sampling list at its exact final size. It is also fully
// deterministic: an earlier version iterated the per-node target set as a
// map, which let Go's randomized map order change the sampling list — and
// therefore the generated graph — between runs of the same seed.
func PreferentialAttachment(n, m int, seed uint64) *Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("graph: invalid preferential attachment parameters n=%d m=%d", n, m))
	}
	r := rng(seed)
	total := m*(m+1)/2 + (n-m-1)*m
	adj := make([][]int, n)
	// Repeated-endpoint list: node v appears deg(v) times, so sampling a
	// uniform element samples proportionally to degree.
	chosenFrom := make([]int, 0, 2*total)
	// Seed clique on nodes 0..m. The loop order leaves every adjacency row
	// sorted ascending, matching the Graph contract.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
			chosenFrom = append(chosenFrom, u, v)
		}
	}
	targets := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		targets = targets[:0]
		for len(targets) < m {
			t := chosenFrom[r.IntN(len(chosenFrom))]
			dup := false
			for _, seen := range targets {
				if seen == t {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, t)
			}
		}
		sort.Ints(targets)
		// Each target t is < v and receives v exactly once (only round v
		// can add it), and v itself is new, so rows stay sorted and
		// duplicate-free without a membership check.
		for _, t := range targets {
			adj[t] = append(adj[t], v)
			chosenFrom = append(chosenFrom, v, t)
		}
		adj[v] = append(adj[v], targets...)
	}
	return &Graph{adj: adj, m: total}
}

// Point is a position in the unit square, used by the unit-disk generator
// and the radio application.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// UnitDisk places n points uniformly in the unit square and joins every pair
// within the given radius: the standard interference model for the paper's
// cellular-radio application. It returns the conflict graph and the points.
func UnitDisk(n int, radius float64, seed uint64) (*Graph, []Point) {
	r := rng(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64()}
	}
	b := NewBuilder(n)
	// Grid-bucket the points so the expected work is near-linear.
	cell := radius
	if cell <= 0 {
		return b.Graph(), pts
	}
	cols := int(1/cell) + 1
	buckets := make(map[[2]int][]int)
	key := func(p Point) [2]int {
		cx, cy := int(p.X/cell), int(p.Y/cell)
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= cols {
			cy = cols - 1
		}
		return [2]int{cx, cy}
	}
	for i, p := range pts {
		buckets[key(p)] = append(buckets[key(p)], i)
	}
	for i, p := range pts {
		k := key(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{k[0] + dx, k[1] + dy}] {
					if j > i && p.Dist(pts[j]) <= radius {
						b.AddEdge(i, j)
					}
				}
			}
		}
	}
	return b.Graph(), pts
}
