package graph

import "sort"

// IsConnected reports whether g is connected (true for graphs with at most
// one node).
func (g *Graph) IsConnected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == n
}

// Components returns the connected components of g, each as a sorted node
// list, ordered by smallest member.
func (g *Graph) Components() [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Bipartition attempts a 2-coloring by BFS. It returns side[v] in {0, 1} and
// ok=true when g is bipartite (the intro's intergroup-marriage special case),
// or ok=false otherwise.
func (g *Graph) Bipartition() (side []int, ok bool) {
	n := g.N()
	side = make([]int, n)
	for i := range side {
		side[i] = -1
	}
	for s := 0; s < n; s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if side[u] == -1 {
					side[u] = 1 - side[v]
					queue = append(queue, u)
				} else if side[u] == side[v] {
					return nil, false
				}
			}
		}
	}
	return side, true
}

// DegreeHistogram returns counts[d] = number of nodes with degree d, for
// d in [0, MaxDegree()].
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := range g.adj {
		counts[len(g.adj[v])]++
	}
	return counts
}

// InducedSubgraph returns the subgraph induced by the given nodes together
// with the mapping orig[i] = original id of new node i. Duplicate ids are
// collapsed; order of first appearance is preserved.
func (g *Graph) InducedSubgraph(nodes []int) (sub *Graph, orig []int) {
	remap := make(map[int]int, len(nodes))
	for _, v := range nodes {
		if _, ok := remap[v]; !ok {
			remap[v] = len(orig)
			orig = append(orig, v)
		}
	}
	b := NewBuilder(len(orig))
	for _, v := range orig {
		for _, u := range g.adj[v] {
			if ru, ok := remap[u]; ok && remap[v] < ru {
				b.AddEdge(remap[v], ru)
			}
		}
	}
	return b.Graph(), orig
}
