package graph

import (
	"testing"
)

func TestIsConnected(t *testing.T) {
	if !Cycle(5).IsConnected() {
		t.Error("cycle is connected")
	}
	g := MustFromEdges(4, []Edge{{0, 1}, {2, 3}})
	if g.IsConnected() {
		t.Error("two disjoint edges are not connected")
	}
	if !Empty(1).IsConnected() {
		t.Error("single node is connected")
	}
	if Empty(2).IsConnected() {
		t.Error("two isolated nodes are not connected")
	}
}

func TestComponents(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {4, 5}})
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestBipartition(t *testing.T) {
	side, ok := Cycle(6).Bipartition()
	if !ok {
		t.Fatal("even cycle is bipartite")
	}
	g := Cycle(6)
	for _, e := range g.Edges() {
		if side[e.U] == side[e.V] {
			t.Fatal("bipartition must separate every edge")
		}
	}
	if _, ok := Cycle(5).Bipartition(); ok {
		t.Error("odd cycle is not bipartite")
	}
	if _, ok := Clique(4).Bipartition(); ok {
		t.Error("K4 is not bipartite")
	}
	if _, ok := Empty(3).Bipartition(); !ok {
		t.Error("edgeless graph is bipartite")
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := Star(5).DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Errorf("star(5) histogram = %v, want 4 leaves and 1 center", h)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, orig := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("sub N = %d, want 4", sub.N())
	}
	// Edges among {0,1,2,4} in C6: 0-1, 1-2. Node 4 is isolated here.
	if sub.M() != 2 {
		t.Fatalf("sub M = %d, want 2", sub.M())
	}
	if orig[0] != 0 || orig[3] != 4 {
		t.Errorf("orig mapping = %v", orig)
	}
	// Duplicates collapse.
	sub2, orig2 := g.InducedSubgraph([]int{3, 3, 3})
	if sub2.N() != 1 || len(orig2) != 1 {
		t.Error("duplicate nodes must collapse in induced subgraph")
	}
}

func TestDynamicBasics(t *testing.T) {
	d := NewDynamic(4)
	if !d.AddEdge(0, 1) {
		t.Fatal("first insert returns true")
	}
	if d.AddEdge(1, 0) {
		t.Fatal("duplicate insert returns false")
	}
	if d.M() != 1 {
		t.Fatalf("M = %d, want 1", d.M())
	}
	if !d.Adjacent(0, 1) || !d.Adjacent(1, 0) {
		t.Error("adjacency must be symmetric")
	}
	if !d.RemoveEdge(0, 1) {
		t.Fatal("remove existing edge returns true")
	}
	if d.RemoveEdge(0, 1) {
		t.Fatal("remove missing edge returns false")
	}
	if d.M() != 0 {
		t.Fatalf("M = %d, want 0 after removal", d.M())
	}
}

func TestDynamicSnapshotAndFrom(t *testing.T) {
	g := Cycle(5)
	d := DynamicFrom(g)
	if d.M() != 5 {
		t.Fatalf("dynamic copy M = %d, want 5", d.M())
	}
	d.RemoveEdge(0, 1)
	s := d.Snapshot()
	if s.M() != 4 {
		t.Fatalf("snapshot M = %d, want 4", s.M())
	}
	if s.Adjacent(0, 1) {
		t.Error("snapshot must reflect removal")
	}
	if g.M() != 5 {
		t.Error("original graph must be untouched")
	}
}

func TestDynamicAddNode(t *testing.T) {
	d := NewDynamic(2)
	id := d.AddNode()
	if id != 2 || d.N() != 3 {
		t.Fatalf("AddNode gave id %d (N=%d), want 2 (N=3)", id, d.N())
	}
	d.AddEdge(2, 0)
	if d.Degree(2) != 1 {
		t.Error("new node must accept edges")
	}
}

func TestDynamicSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop must panic")
		}
	}()
	NewDynamic(3).AddEdge(1, 1)
}
