package graph

import "testing"

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec  string
		n, m  int
		skipM bool
	}{
		{"clique:n=5", 5, 10, false},
		{"cycle:n=7", 7, 7, false},
		{"path:n=4", 4, 3, false},
		{"star:n=9", 9, 8, false},
		{"empty:n=3", 3, 0, false},
		{"grid:r=3,c=4", 12, 17, false},
		{"tree:n=20", 20, 19, false},
		{"gnp:n=50,p=0.1", 50, 0, true},
		{"regular:n=16,d=4", 16, 32, false},
		{"powerlaw:n=30,m=2", 30, 0, true},
		{"bipartite:a=5,b=6,p=0.5", 11, 0, true},
		{"completebipartite:a=3,b=4", 7, 12, false},
		{"unitdisk:n=25,r=0.3", 25, 0, true},
	}
	for _, tc := range cases {
		g, err := ParseSpec(tc.spec, 7)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if g.N() != tc.n {
			t.Errorf("%s: n = %d, want %d", tc.spec, g.N(), tc.n)
		}
		if !tc.skipM && g.M() != tc.m {
			t.Errorf("%s: m = %d, want %d", tc.spec, g.M(), tc.m)
		}
	}
}

func TestParseSpecDefaults(t *testing.T) {
	g, err := ParseSpec("clique", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 32 {
		t.Errorf("default n = %d, want 32", g.N())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{"moon", "gnp:p", "gnp:n=abc", "grid:r=x,c=2", "gnp:p=zz"} {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("spec %q must error", spec)
		}
	}
}

func TestParseSpecSeedReproducible(t *testing.T) {
	a, _ := ParseSpec("gnp:n=40,p=0.2", 5)
	b, _ := ParseSpec("gnp:n=40,p=0.2", 5)
	if a.M() != b.M() {
		t.Error("same seed must give the same graph")
	}
}
