package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestBitsetBytesRoundTrip: AppendBytes → AppendBitsetBytes must reproduce
// the set exactly, and AppendIndices must list exactly the set elements in
// increasing order — the serialize/deserialize pair the binary wire format
// is built on.
func TestBitsetBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 63, 64, 65, 130, 1000} {
		b := NewBitset(n)
		var want []int
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				b.Set(i)
				want = append(want, i)
			}
		}
		data := b.AppendBytes([]byte{0xfe}) // survives a non-empty prefix
		if len(data) != 1+len(b)*8 {
			t.Fatalf("n=%d: serialized %d bytes, want %d", n, len(data), 1+len(b)*8)
		}
		back, err := AppendBitsetBytes(Bitset{1 << 9}[:0], data[1:]) // reused capacity
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(back, b) {
			t.Fatalf("n=%d: round trip changed the set:\n got %x\nwant %x", n, back, b)
		}
		got := back.AppendIndices(nil)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: AppendIndices = %v, want %v", n, got, want)
		}
	}
	if _, err := AppendBitsetBytes(nil, make([]byte, 7)); err == nil {
		t.Fatal("AppendBitsetBytes accepted a length not divisible by 8")
	}
}

// TestBitsetAppendIndicesReusesPrefix: appending after an existing prefix
// must preserve it (the decode path reuses buffers across rows).
func TestBitsetAppendIndicesReusesPrefix(t *testing.T) {
	b := NewBitset(70)
	b.Set(3)
	b.Set(69)
	got := b.AppendIndices([]int{-1})
	if !reflect.DeepEqual(got, []int{-1, 3, 69}) {
		t.Fatalf("AppendIndices with prefix = %v", got)
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count after Clear = %d, want 7", got)
	}
	b.Reset()
	if got := b.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
}

func TestBitsetIntersects(t *testing.T) {
	a, b := NewBitset(200), NewBitset(200)
	a.Set(77)
	b.Set(78)
	if a.Intersects(b) {
		t.Fatal("disjoint sets reported as intersecting")
	}
	b.Set(77)
	if !a.Intersects(b) {
		t.Fatal("intersecting sets reported as disjoint")
	}
}

func TestAdjacencyBitsMatchesGraph(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := GNP(150, 0.05, seed)
		bits := NewAdjacencyBits(g)
		if bits.N() != g.N() {
			t.Fatalf("seed %d: N = %d, want %d", seed, bits.N(), g.N())
		}
		for u := 0; u < g.N(); u++ {
			if got := bits.Row(u).Count(); got != g.Degree(u) {
				t.Fatalf("seed %d: row %d popcount %d, want degree %d", seed, u, got, g.Degree(u))
			}
			for v := 0; v < g.N(); v++ {
				if bits.Adjacent(u, v) != g.Adjacent(u, v) {
					t.Fatalf("seed %d: Adjacent(%d,%d) disagrees with graph", seed, u, v)
				}
			}
		}
	}
}

// TestAdjacencyBitsIndependenceAgrees is the satellite property test:
// bitset independence checks must agree with the adjacency-list check on
// random sets over random graphs, including duplicated ids and empty sets.
func TestAdjacencyBitsIndependenceAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 17, 64, 65, 200} {
		for _, p := range []float64{0.01, 0.1, 0.5} {
			g := GNP(n, p, uint64(n)+uint64(100*p))
			bits := NewAdjacencyBits(g)
			scratch := NewBitset(n)
			check := bits.Checker()
			for trial := 0; trial < 200; trial++ {
				set := make([]int, rng.Intn(n+1))
				for i := range set {
					set[i] = rng.Intn(n)
				}
				if trial%5 == 0 && len(set) > 0 { // force duplicates
					set = append(set, set[0])
				}
				want := g.IsIndependent(set)
				if got := bits.IsIndependent(set, scratch); got != want {
					t.Fatalf("n=%d p=%g set=%v: bits=%v list=%v", n, p, set, got, want)
				}
				if got := check(set); got != want {
					t.Fatalf("n=%d p=%g set=%v: Checker=%v list=%v", n, p, set, got, want)
				}
			}
		}
	}
}

func TestAdjacencyBitsEmptyGraph(t *testing.T) {
	g := MustFromEdges(0, nil)
	bits := NewAdjacencyBits(g)
	if !bits.IsIndependent(nil, NewBitset(0)) {
		t.Fatal("empty set on empty graph must be independent")
	}
}

func BenchmarkIsIndependentList(b *testing.B) {
	g := GNP(2048, 0.01, 3)
	set := halfHappySet(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.IsIndependent(set)
	}
}

func BenchmarkIsIndependentBits(b *testing.B) {
	g := GNP(2048, 0.01, 3)
	set := halfHappySet(g)
	bits := NewAdjacencyBits(g)
	scratch := NewBitset(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bits.IsIndependent(set, scratch)
	}
}

// halfHappySet greedily packs an independent set from the even nodes,
// approximating a realistic happy set for the independence benchmarks.
func halfHappySet(g *Graph) []int {
	in := make([]bool, g.N())
	var set []int
	for v := 0; v < g.N(); v += 2 {
		ok := true
		for _, u := range g.Neighbors(v) {
			if in[u] {
				ok = false
				break
			}
		}
		if ok {
			in[v] = true
			set = append(set, v)
		}
	}
	return set
}
