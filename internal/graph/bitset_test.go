package graph

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count after Clear = %d, want 7", got)
	}
	b.Reset()
	if got := b.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
}

func TestBitsetIntersects(t *testing.T) {
	a, b := NewBitset(200), NewBitset(200)
	a.Set(77)
	b.Set(78)
	if a.Intersects(b) {
		t.Fatal("disjoint sets reported as intersecting")
	}
	b.Set(77)
	if !a.Intersects(b) {
		t.Fatal("intersecting sets reported as disjoint")
	}
}

func TestAdjacencyBitsMatchesGraph(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := GNP(150, 0.05, seed)
		bits := NewAdjacencyBits(g)
		if bits.N() != g.N() {
			t.Fatalf("seed %d: N = %d, want %d", seed, bits.N(), g.N())
		}
		for u := 0; u < g.N(); u++ {
			if got := bits.Row(u).Count(); got != g.Degree(u) {
				t.Fatalf("seed %d: row %d popcount %d, want degree %d", seed, u, got, g.Degree(u))
			}
			for v := 0; v < g.N(); v++ {
				if bits.Adjacent(u, v) != g.Adjacent(u, v) {
					t.Fatalf("seed %d: Adjacent(%d,%d) disagrees with graph", seed, u, v)
				}
			}
		}
	}
}

// TestAdjacencyBitsIndependenceAgrees is the satellite property test:
// bitset independence checks must agree with the adjacency-list check on
// random sets over random graphs, including duplicated ids and empty sets.
func TestAdjacencyBitsIndependenceAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 17, 64, 65, 200} {
		for _, p := range []float64{0.01, 0.1, 0.5} {
			g := GNP(n, p, uint64(n)+uint64(100*p))
			bits := NewAdjacencyBits(g)
			scratch := NewBitset(n)
			check := bits.Checker()
			for trial := 0; trial < 200; trial++ {
				set := make([]int, rng.Intn(n+1))
				for i := range set {
					set[i] = rng.Intn(n)
				}
				if trial%5 == 0 && len(set) > 0 { // force duplicates
					set = append(set, set[0])
				}
				want := g.IsIndependent(set)
				if got := bits.IsIndependent(set, scratch); got != want {
					t.Fatalf("n=%d p=%g set=%v: bits=%v list=%v", n, p, set, got, want)
				}
				if got := check(set); got != want {
					t.Fatalf("n=%d p=%g set=%v: Checker=%v list=%v", n, p, set, got, want)
				}
			}
		}
	}
}

func TestAdjacencyBitsEmptyGraph(t *testing.T) {
	g := MustFromEdges(0, nil)
	bits := NewAdjacencyBits(g)
	if !bits.IsIndependent(nil, NewBitset(0)) {
		t.Fatal("empty set on empty graph must be independent")
	}
}

func BenchmarkIsIndependentList(b *testing.B) {
	g := GNP(2048, 0.01, 3)
	set := halfHappySet(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.IsIndependent(set)
	}
}

func BenchmarkIsIndependentBits(b *testing.B) {
	g := GNP(2048, 0.01, 3)
	set := halfHappySet(g)
	bits := NewAdjacencyBits(g)
	scratch := NewBitset(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bits.IsIndependent(set, scratch)
	}
}

// halfHappySet greedily packs an independent set from the even nodes,
// approximating a realistic happy set for the independence benchmarks.
func halfHappySet(g *Graph) []int {
	in := make([]bool, g.N())
	var set []int
	for v := 0; v < g.N(); v += 2 {
		ok := true
		for _, u := range g.Neighbors(v) {
			if in[u] {
				ok = false
				break
			}
		}
		if ok {
			in[v] = true
			set = append(set, v)
		}
	}
	return set
}
