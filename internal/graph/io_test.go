package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundtrip(t *testing.T) {
	g := GNP(40, 0.2, 13)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("roundtrip size mismatch: got (%d,%d), want (%d,%d)", got.N(), got.M(), g.N(), g.M())
	}
	ea, eb := g.Edges(), got.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d: got %v, want %v", i, eb[i], ea[i])
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n3 2\n0 1\n\n# another\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got (%d,%d), want (3,2)", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                // missing header
		"3 2\n0 1\n",      // wrong edge count
		"3 1\n0 9\n",      // out of range
		"3 1\nzero one\n", // malformed edge
		"three two\n",     // malformed header
		"3 1\n1 1\n",      // self loop
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "fam"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph fam {", "0 -- 1;", "2;"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
