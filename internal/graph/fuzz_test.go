package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the parser never panics and that every
// successfully parsed graph is well-formed and round-trips through
// WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("3 2\n0 1\n1 2\n")
	f.Add("# comment\n\n2 1\n0 1\n")
	f.Add("")
	f.Add("1 0\n")
	f.Add("3 1\n1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
			for _, u := range g.Neighbors(v) {
				if u == v {
					t.Fatal("parsed graph contains a self-loop")
				}
				if !g.Adjacent(u, v) {
					t.Fatal("asymmetric adjacency")
				}
			}
		}
		if sum != 2*g.M() {
			t.Fatalf("degree sum %d != 2m = %d", sum, 2*g.M())
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-parse of our own output failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatal("write/read round trip changed the graph")
		}
	})
}

// FuzzParseSpec checks the spec parser never panics and that produced
// graphs are well-formed.
func FuzzParseSpec(f *testing.F) {
	for _, s := range []string{
		"clique:n=5", "gnp:n=10,p=0.5", "grid:r=2,c=3", "star", "x",
		"regular:n=8,d=3", "cycle:n=0", "unitdisk:n=5,r=0.5", "tree:n=-1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		defer func() {
			// Generators panic on structurally invalid parameters (e.g.
			// cycle:n=1); the parser contract allows that for out-of-domain
			// values, so recover and skip.
			_ = recover()
		}()
		if len(spec) > 64 {
			return // keep generator sizes sane
		}
		// Skip specs with long digit runs: a 5+-digit n would make the
		// generators build enormous graphs inside the fuzzer.
		digits := 0
		for i := 0; i < len(spec); i++ {
			if spec[i] >= '0' && spec[i] <= '9' {
				digits++
				if digits > 4 {
					return
				}
			} else {
				digits = 0
			}
		}
		g, err := ParseSpec(spec, 3)
		if err != nil || g == nil {
			return
		}
		for v := 0; v < g.N(); v++ {
			for _, u := range g.Neighbors(v) {
				if u == v || !g.Adjacent(u, v) {
					t.Fatalf("spec %q produced a malformed graph", spec)
				}
			}
		}
	})
}
