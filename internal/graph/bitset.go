package graph

import (
	"fmt"
	"math/bits"
)

// Bitset is a fixed-capacity set of small non-negative integers packed 64
// per word. The zero-length Bitset is the empty set over an empty universe.
type Bitset []uint64

// NewBitset returns an empty Bitset able to hold integers in [0, n).
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Set adds i to the set. i must be within the capacity fixed at creation.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Test reports whether i is in the set.
func (b Bitset) Test(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// Reset removes every element, keeping the capacity.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of elements in the set.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// AppendBytes appends the set's words in little-endian byte order — the
// on-wire row layout of internal/wire. len(b)*8 bytes are appended.
func (b Bitset) AppendBytes(dst []byte) []byte {
	for _, w := range b {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// AppendBitsetBytes decodes little-endian words (as produced by
// AppendBytes) into dst, reusing its capacity. len(data) must be a multiple
// of 8.
func AppendBitsetBytes(dst Bitset, data []byte) (Bitset, error) {
	if len(data)%8 != 0 {
		return dst, fmt.Errorf("graph: bitset bytes length %d is not a multiple of 8", len(data))
	}
	for i := 0; i < len(data); i += 8 {
		w := uint64(data[i]) | uint64(data[i+1])<<8 | uint64(data[i+2])<<16 | uint64(data[i+3])<<24 |
			uint64(data[i+4])<<32 | uint64(data[i+5])<<40 | uint64(data[i+6])<<48 | uint64(data[i+7])<<56
		dst = append(dst, w)
	}
	return dst, nil
}

// AppendIndices appends the set's elements to dst in increasing order,
// reusing its capacity — the decode step from a packed happy-bitmap row back
// to the JSON []int representation.
func (b Bitset) AppendIndices(dst []int) []int {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Intersects reports whether b and other share any element. The shorter of
// the two word slices bounds the scan.
func (b Bitset) Intersects(other Bitset) bool {
	n := len(b)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if b[i]&other[i] != 0 {
			return true
		}
	}
	return false
}

// AdjacencyBits is a word-packed adjacency-matrix view of a Graph: one
// n-bit neighbor row per node, so adjacency queries are single word probes
// and independence checks are word-wide AND scans instead of per-edge list
// walks. It costs n²/8 bytes, which is why the analysis engine only builds
// it below a node-count threshold.
//
// AdjacencyBits is immutable after construction and safe for concurrent
// readers.
type AdjacencyBits struct {
	n     int
	words int      // words per row
	rows  []uint64 // n rows of `words` words each
}

// NewAdjacencyBits builds the packed adjacency rows of g.
func NewAdjacencyBits(g *Graph) *AdjacencyBits {
	n := g.N()
	words := (n + 63) / 64
	a := &AdjacencyBits{n: n, words: words, rows: make([]uint64, n*words)}
	for v := 0; v < n; v++ {
		row := a.Row(v)
		for _, u := range g.Neighbors(v) {
			row.Set(u)
		}
	}
	return a
}

// N returns the number of nodes.
func (a *AdjacencyBits) N() int { return a.n }

// Row returns node v's neighbor row as a Bitset. The row is shared with the
// structure and must not be modified.
func (a *AdjacencyBits) Row(v int) Bitset {
	return Bitset(a.rows[v*a.words : (v+1)*a.words])
}

// Adjacent reports whether nodes u and v share an edge.
func (a *AdjacencyBits) Adjacent(u, v int) bool {
	return a.Row(u).Test(v)
}

// IsIndependent reports whether set (a list of node ids, possibly with
// duplicates) induces no edge, using scratch as working space. scratch must
// have capacity for all n nodes (NewBitset(a.N())); it is reset on entry,
// so it may be reused across calls. The check is O(len(set)·n/64) word
// operations and agrees exactly with Graph.IsIndependent.
func (a *AdjacencyBits) IsIndependent(set []int, scratch Bitset) bool {
	scratch.Reset()
	for _, v := range set {
		scratch.Set(v)
	}
	for _, v := range set {
		if a.Row(v).Intersects(scratch) {
			return false
		}
	}
	return true
}

// Checker returns an independence-check closure with its own scratch
// buffer, interchangeable with Graph.IsIndependent. The closure reuses its
// scratch and therefore must not be shared across goroutines; make one per
// worker.
func (a *AdjacencyBits) Checker() func([]int) bool {
	scratch := NewBitset(a.n)
	return func(set []int) bool { return a.IsIndependent(set, scratch) }
}
