package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList writes g in a simple text format: a header line "n m"
// followed by one "u v" line per edge in canonical order.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Blank lines and
// lines starting with '#' are ignored.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var n, m int
	header := false
	b := (*Builder)(nil)
	edges := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !header {
			if _, err := fmt.Sscanf(line, "%d %d", &n, &m); err != nil {
				return nil, fmt.Errorf("graph: bad header %q: %w", line, err)
			}
			header = true
			b = NewBuilder(n)
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %q: %w", line, err)
		}
		if err := b.AddEdgeErr(u, v); err != nil {
			return nil, err
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !header {
		return nil, fmt.Errorf("graph: missing header line")
	}
	if edges != m {
		return nil, fmt.Errorf("graph: header declared %d edges, found %d", m, edges)
	}
	return b.Graph(), nil
}

// WriteDOT writes g in Graphviz DOT format for visualization.
func WriteDOT(w io.Writer, g *Graph, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(bw, "graph %s {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			if _, err := fmt.Fprintf(bw, "  %d;\n", v); err != nil {
				return err
			}
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
