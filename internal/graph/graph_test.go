package graph

import (
	"testing"
	"testing/quick"
)

func TestNewFromEdgesBasics(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {1, 0}})
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (duplicate edge must collapse)", g.M())
	}
	if !g.Adjacent(0, 1) || !g.Adjacent(1, 0) {
		t.Error("expected 0-1 adjacency in both directions")
	}
	if g.Adjacent(0, 2) {
		t.Error("0 and 2 must not be adjacent")
	}
	if d := g.Degree(1); d != 2 {
		t.Errorf("Degree(1) = %d, want 2", d)
	}
}

func TestNewFromEdgesRejectsSelfLoop(t *testing.T) {
	if _, err := NewFromEdges(3, []Edge{{1, 1}}); err == nil {
		t.Fatal("self-loop must be rejected")
	}
}

func TestNewFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := NewFromEdges(3, []Edge{{0, 3}}); err == nil {
		t.Fatal("out-of-range endpoint must be rejected")
	}
	if _, err := NewFromEdges(3, []Edge{{-1, 0}}); err == nil {
		t.Fatal("negative endpoint must be rejected")
	}
}

func TestNewFromEdgesNegativeN(t *testing.T) {
	if _, err := NewFromEdges(-1, nil); err == nil {
		t.Fatal("negative node count must be rejected")
	}
}

func TestBuilderGrows(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 2)
	g := b.Graph()
	if g.N() != 6 {
		t.Fatalf("N = %d, want 6 after adding edge (5,2)", g.N())
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestEdgesCanonicalSorted(t *testing.T) {
	g := MustFromEdges(4, []Edge{{3, 2}, {1, 0}, {2, 0}})
	es := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {2, 3}}
	if len(es) != len(want) {
		t.Fatalf("got %d edges, want %d", len(es), len(want))
	}
	for i := range want {
		if es[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestDegreesMaxMin(t *testing.T) {
	g := Star(5)
	if g.MaxDegree() != 4 {
		t.Errorf("star max degree = %d, want 4", g.MaxDegree())
	}
	if g.MinDegree() != 1 {
		t.Errorf("star min degree = %d, want 1", g.MinDegree())
	}
	d := g.Degrees()
	if d[0] != 4 {
		t.Errorf("center degree = %d, want 4", d[0])
	}
	for v := 1; v < 5; v++ {
		if d[v] != 1 {
			t.Errorf("leaf %d degree = %d, want 1", v, d[v])
		}
	}
}

func TestEmptyGraphProperties(t *testing.T) {
	g := Empty(0)
	if g.MaxDegree() != 0 || g.MinDegree() != 0 {
		t.Error("empty graph degrees must be 0")
	}
	if !g.IsConnected() {
		t.Error("empty graph is connected by convention")
	}
	if !g.IsIndependent(nil) {
		t.Error("empty set is independent")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Cycle(5)
	c := g.Clone()
	c.adj[0][0] = 99
	if g.adj[0][0] == 99 {
		t.Fatal("Clone must deep-copy adjacency")
	}
	if c.M() != g.M() || c.N() != g.N() {
		t.Fatal("Clone must preserve size")
	}
}

func TestIsIndependent(t *testing.T) {
	g := Cycle(6)
	if !g.IsIndependent([]int{0, 2, 4}) {
		t.Error("{0,2,4} is independent in C6")
	}
	if g.IsIndependent([]int{0, 1}) {
		t.Error("{0,1} is not independent in C6")
	}
	if !g.IsIndependent([]int{3, 3}) {
		t.Error("duplicates of one node remain independent")
	}
}

func TestEdgeCanon(t *testing.T) {
	if (Edge{5, 2}).Canon() != (Edge{2, 5}) {
		t.Error("Canon must order endpoints")
	}
	if (Edge{2, 5}).Canon() != (Edge{2, 5}) {
		t.Error("Canon must be identity on ordered edges")
	}
}

// Property: adjacency is symmetric and degree sums equal 2M on random graphs.
func TestGraphInvariantsQuick(t *testing.T) {
	check := func(seed uint64) bool {
		n := 2 + int(seed%40)
		g := GNP(n, 0.3, seed)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
			for _, u := range g.Neighbors(v) {
				if !g.Adjacent(u, v) || !g.Adjacent(v, u) {
					return false
				}
				if u == v {
					return false
				}
			}
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringSummary(t *testing.T) {
	got := Clique(3).String()
	want := "graph{n=3 m=3 Δ=2}"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
