package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a generator graph from a compact textual description of
// the form "family:key=value,key=value", e.g.
//
//	clique:n=8            cycle:n=12          path:n=9
//	star:n=16             grid:r=5,c=6        tree:n=50
//	gnp:n=100,p=0.05      regular:n=64,d=4    powerlaw:n=100,m=3
//	bipartite:a=10,b=10,p=0.2                 unitdisk:n=100,r=0.1
//
// The seed drives all randomized families. Used by cmd/holiday and
// cmd/graphgen.
func ParseSpec(spec string, seed uint64) (*Graph, error) {
	name, params := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, params = spec[:i], spec[i+1:]
	}
	kv := map[string]string{}
	if params != "" {
		for _, part := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(part, "=")
			if !ok {
				return nil, fmt.Errorf("graph: bad parameter %q in spec %q", part, spec)
			}
			kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	getInt := func(key string, def int) (int, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		return strconv.Atoi(s)
	}
	getFloat := func(key string, def float64) (float64, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		return strconv.ParseFloat(s, 64)
	}
	n, err := getInt("n", 32)
	if err != nil {
		return nil, err
	}
	switch name {
	case "clique":
		return Clique(n), nil
	case "cycle":
		return Cycle(n), nil
	case "path":
		return Path(n), nil
	case "star":
		return Star(n), nil
	case "empty":
		return Empty(n), nil
	case "grid":
		r, err := getInt("r", 8)
		if err != nil {
			return nil, err
		}
		c, err := getInt("c", 8)
		if err != nil {
			return nil, err
		}
		return Grid(r, c), nil
	case "tree":
		return RandomTree(n, seed), nil
	case "gnp":
		p, err := getFloat("p", 0.05)
		if err != nil {
			return nil, err
		}
		return GNP(n, p, seed), nil
	case "regular":
		d, err := getInt("d", 4)
		if err != nil {
			return nil, err
		}
		return RandomRegular(n, d, seed), nil
	case "powerlaw":
		m, err := getInt("m", 3)
		if err != nil {
			return nil, err
		}
		return PreferentialAttachment(n, m, seed), nil
	case "bipartite":
		a, err := getInt("a", 16)
		if err != nil {
			return nil, err
		}
		b, err := getInt("b", 16)
		if err != nil {
			return nil, err
		}
		p, err := getFloat("p", 0.2)
		if err != nil {
			return nil, err
		}
		return RandomBipartite(a, b, p, seed), nil
	case "completebipartite":
		a, err := getInt("a", 8)
		if err != nil {
			return nil, err
		}
		b, err := getInt("b", 8)
		if err != nil {
			return nil, err
		}
		return CompleteBipartite(a, b), nil
	case "unitdisk":
		r, err := getFloat("r", 0.1)
		if err != nil {
			return nil, err
		}
		g, _ := UnitDisk(n, r, seed)
		return g, nil
	default:
		return nil, fmt.Errorf("graph: unknown family %q (see ParseSpec doc for choices)", name)
	}
}
