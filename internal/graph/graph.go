// Package graph provides the conflict-graph substrate for the holiday
// gathering problem: an immutable adjacency-list graph, a mutable builder,
// a dynamic (edge insert/delete) variant, a zoo of generators used by the
// experiment harness, and structural property checks.
//
// Nodes are dense integers 0..N()-1. In the paper's terminology a node is a
// parent and an edge joins two parents whose children are married to each
// other (a "couple").
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected simple graph with nodes 0..n-1.
// Neighbor lists are sorted, deduplicated, and free of self-loops.
//
// The zero value is the empty graph with no nodes.
type Graph struct {
	adj [][]int
	m   int
}

// Edge is an undirected edge between two nodes. Canonical form has U < V.
type Edge struct {
	U, V int
}

// Canon returns e with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// NewFromEdges builds a graph with n nodes from the given edge list.
// Self-loops are rejected; duplicate edges (in either orientation) are
// collapsed. Endpoints must lie in [0, n).
func NewFromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdgeErr(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Graph(), nil
}

// MustFromEdges is NewFromEdges but panics on error. Intended for tests and
// examples with literal edge lists.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := NewFromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Adjacent reports whether nodes u and v share an edge.
func (g *Graph) Adjacent(u, v int) bool {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// Edges returns all edges in canonical (U < V) order, sorted
// lexicographically.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, Edge{u, v})
			}
		}
	}
	return es
}

// Degrees returns the degree sequence indexed by node.
func (g *Graph) Degrees() []int {
	d := make([]int, g.N())
	for v := range g.adj {
		d[v] = len(g.adj[v])
	}
	return d
}

// MaxDegree returns Δ(G), the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if len(g.adj[v]) > max {
			max = len(g.adj[v])
		}
	}
	return max
}

// MinDegree returns the minimum degree, or 0 for a graph with no nodes.
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := len(g.adj[0])
	for v := range g.adj {
		if len(g.adj[v]) < min {
			min = len(g.adj[v])
		}
	}
	return min
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	adj := make([][]int, len(g.adj))
	for v := range g.adj {
		adj[v] = append([]int(nil), g.adj[v]...)
	}
	return &Graph{adj: adj, m: g.m}
}

// IsIndependent reports whether set (a list of node ids, possibly with
// duplicates) induces no edge of g.
func (g *Graph) IsIndependent(set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for v := range in {
		for _, u := range g.adj[v] {
			if in[u] {
				return false
			}
		}
	}
	return true
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.N(), g.M(), g.MaxDegree())
}

// Builder accumulates edges and produces an immutable Graph. The node count
// grows automatically to cover every referenced endpoint.
type Builder struct {
	n     int
	edges map[Edge]bool
}

// NewBuilder returns a builder with an initial node count of n.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[Edge]bool)}
}

// AddEdge records the undirected edge {u, v}, growing the node count if
// needed. Self-loops panic; use AddEdgeErr for error-returning validation.
func (b *Builder) AddEdge(u, v int) {
	if err := b.addEdge(u, v, true); err != nil {
		panic(err)
	}
}

// AddEdgeErr records the undirected edge {u, v} without growing the node
// count; endpoints outside [0, n) and self-loops are errors.
func (b *Builder) AddEdgeErr(u, v int) error {
	return b.addEdge(u, v, false)
}

func (b *Builder) addEdge(u, v int, grow bool) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("graph: negative node id (%d, %d)", u, v)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if grow {
		if u >= b.n {
			b.n = u + 1
		}
		if v >= b.n {
			b.n = v + 1
		}
	} else if u >= b.n || v >= b.n {
		return fmt.Errorf("graph: edge (%d, %d) outside node range [0, %d)", u, v, b.n)
	}
	b.edges[Edge{u, v}.Canon()] = true
	return nil
}

// Grow ensures the builder covers at least n nodes.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// Graph freezes the builder into an immutable Graph.
func (b *Builder) Graph() *Graph {
	adj := make([][]int, b.n)
	for e := range b.edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for v := range adj {
		sort.Ints(adj[v])
	}
	return &Graph{adj: adj, m: len(b.edges)}
}
