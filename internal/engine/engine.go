// Package engine is the concurrent batch analysis subsystem: it runs
// schedulers over long horizons on large conflict graphs using every core
// and a word-packed bitset hot path, producing Reports byte-identical to
// the sequential core.Analyze.
//
// Two axes of parallelism cover the repo's workloads (DESIGN.md §4):
//
//   - Horizon sharding. A perfectly periodic scheduler (core.Periodic)
//     fixes each node's happy holidays in closed form, so a horizon splits
//     into contiguous shards that workers analyze independently; the
//     per-shard core.Partial statistics merge associatively back into one
//     Report. Stateful schedulers cannot be split this way and fall back
//     to a single-threaded pass (still bitset-accelerated).
//
//   - Batch fan-out. An experiment's many (graph, algorithm, seed) runs are
//     independent, so RunBatch spreads whole analyses across a worker pool.
//
// Independence checks use graph.AdjacencyBits — O(n/64) word AND scans per
// happy node instead of adjacency-list walks with a per-holiday hash map —
// whenever the graph is small enough that the n²/8-byte matrix is cheap.
package engine

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// DefaultBitsetNodeLimit is the largest node count for which Options zero
// value builds an AdjacencyBits matrix (n²/8 bytes: 8 MiB at the limit).
const DefaultBitsetNodeLimit = 1 << 13

// minShardedHorizon is the horizon below which sharding overhead outweighs
// the parallel win and Analyze stays sequential.
const minShardedHorizon = 256

// minBitsetHorizon is the horizon below which building the n²/8-byte
// adjacency matrix costs more than the independence checks it accelerates.
const minBitsetHorizon = 128

// Options configures the engine. The zero value means: one worker per
// GOMAXPROCS, bitset checks up to DefaultBitsetNodeLimit nodes.
type Options struct {
	// Workers is the number of concurrent workers; 0 means GOMAXPROCS.
	Workers int
	// BitsetNodeLimit is the largest graph (node count) for which the
	// engine builds a packed adjacency matrix for independence checks;
	// 0 means DefaultBitsetNodeLimit, negative disables bitsets entirely.
	BitsetNodeLimit int
}

// workers resolves the effective worker count (≥ 1).
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// checkerFactory returns a function minting per-worker independence checks
// for g: bitset-backed when the graph is within the configured limit and
// the horizon amortizes the matrix construction, otherwise the
// adjacency-list check shared by all workers.
func (o Options) checkerFactory(g *graph.Graph, horizon int64) func() func([]int) bool {
	limit := o.BitsetNodeLimit
	if limit == 0 {
		limit = DefaultBitsetNodeLimit
	}
	if limit < 0 || g.N() > limit || horizon < minBitsetHorizon {
		return func() func([]int) bool { return g.IsIndependent }
	}
	bits := graph.NewAdjacencyBits(g)
	return bits.Checker // one scratch buffer per worker
}

// Analyze produces the same Report as core.Analyze(s, g, horizon) using the
// engine's hot paths. Periodic schedulers are analyzed by horizon sharding
// across workers without ever calling Next (their schedule is reconstructed
// from Period/Offset, which the core.Periodic contract guarantees matches
// Next exactly); other schedulers run sequentially with bitset independence
// checks. In the sharded path s is left unadvanced.
func Analyze(s core.Scheduler, g *graph.Graph, horizon int64, opts Options) *core.Report {
	newChecker := opts.checkerFactory(g, horizon)
	w := opts.workers()
	if p, ok := s.(core.Periodic); ok && w > 1 && horizon >= minShardedHorizon {
		return analyzePeriodicSharded(p, g, horizon, w, newChecker)
	}
	return core.AnalyzeChecked(s, g, horizon, newChecker())
}

// analyzePeriodicSharded splits [1, horizon] into one contiguous shard per
// worker, rebuilds each shard's holiday-by-holiday happy sets from the
// periodic closed form, accumulates a core.Partial per shard concurrently,
// and merges the partials in order.
func analyzePeriodicSharded(p core.Periodic, g *graph.Graph, horizon int64, workers int,
	newChecker func() func([]int) bool) *core.Report {
	n := g.N()
	if int64(workers) > horizon {
		workers = int(horizon)
	}
	parts := make([]*core.Partial, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo := 1 + horizon*int64(i)/int64(workers)
		hi := horizon * int64(i+1) / int64(workers)
		part := core.NewPartial(n, lo, hi)
		parts[i] = part
		wg.Add(1)
		go func() {
			defer wg.Done()
			observeShard(p, n, part, newChecker())
		}()
	}
	wg.Wait()
	merged := parts[0]
	for _, part := range parts[1:] {
		if err := merged.Merge(part); err != nil {
			panic(err) // unreachable: shards are adjacent by construction
		}
	}
	rep, err := merged.Finalize(p.Name(), g)
	if err != nil {
		panic(err) // unreachable: merged covers [1, horizon]
	}
	return rep
}

// shardBlock is the number of holidays a shard worker buckets at a time,
// bounding its working memory regardless of horizon length.
const shardBlock = 4096

// observeShard replays the holidays in part's range: every node's happy
// holidays within [Lo, Hi] form an arithmetic progression (first hit of
// t ≡ Offset(v) mod Period(v), stepping by the period), which is bucketed
// per holiday and fed through the same Observe path as live simulation.
// The range is processed in shardBlock-sized blocks with one reused bucket
// array, keeping memory O(n + block) rather than O(happiness events).
func observeShard(p core.Periodic, n int, part *core.Partial, indep func([]int) bool) {
	lo, hi := part.Lo, part.Hi
	next := make([]int64, n)
	periods := make([]int64, n)
	for v := 0; v < n; v++ {
		period, offset := p.Period(v), p.Offset(v)
		periods[v] = period
		// Smallest t ≥ lo with t ≡ offset (mod period); lo ≥ 1 keeps t
		// positive, so offset 0 correctly lands on period, 2·period, ….
		next[v] = lo + ((offset-lo)%period+period)%period
	}
	blockLen := hi - lo + 1
	if blockLen > shardBlock {
		blockLen = shardBlock
	}
	happyAt := make([][]int, blockLen)
	for blo := lo; blo <= hi; blo += blockLen {
		bhi := blo + blockLen - 1
		if bhi > hi {
			bhi = hi
		}
		for i := range happyAt[:bhi-blo+1] {
			happyAt[i] = happyAt[i][:0]
		}
		for v := 0; v < n; v++ {
			t := next[v]
			for ; t <= bhi; t += periods[v] {
				happyAt[t-blo] = append(happyAt[t-blo], v)
			}
			next[v] = t
		}
		for t := blo; t <= bhi; t++ {
			part.Observe(t, happyAt[t-blo], indep)
		}
	}
}

// Job is one unit of batch analysis: construct a scheduler and analyze it
// over its graph for Horizon holidays.
type Job struct {
	// Graph is the conflict graph the scheduler runs on.
	Graph *graph.Graph
	// New constructs the job's scheduler; it is called inside the worker so
	// construction cost parallelizes too.
	New func() (core.Scheduler, error)
	// Horizon is the number of holidays to analyze.
	Horizon int64
}

// RunBatch analyzes every job across a pool of Options.Workers workers and
// returns the reports in job order. Within a job the analysis itself runs
// single-threaded (the batch is the parallel axis); the bitset hot path
// still applies per Options. The first scheduler-construction error aborts
// nothing — other jobs still run — but is returned, with nil at the failed
// job's slot.
func RunBatch(jobs []Job, opts Options) ([]*core.Report, error) {
	reports := make([]*core.Report, len(jobs))
	errs := make([]error, len(jobs))
	seq := opts
	seq.Workers = 1
	ForEach(len(jobs), opts.workers(), func(i int) {
		s, err := jobs[i].New()
		if err != nil {
			errs[i] = err
			return
		}
		reports[i] = Analyze(s, jobs[i].Graph, jobs[i].Horizon, seq)
	})
	for _, err := range errs {
		if err != nil {
			return reports, err
		}
	}
	return reports, nil
}

// ForEach runs fn(0), …, fn(n-1) across at most workers concurrent
// goroutines and waits for all of them. It is the engine's generic fan-out
// primitive, shared by RunBatch, the experiment harness, and cmd/bench.
func ForEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
