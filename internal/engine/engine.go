// Package engine is the concurrent batch analysis subsystem: it runs
// schedulers over long horizons on large conflict graphs using every core
// and a word-packed bitset hot path, producing Reports byte-identical to
// the sequential core.Analyze.
//
// Two axes of parallelism cover the repo's workloads (DESIGN.md §4):
//
//   - Horizon sharding. Every analysis goes through core.Schedule, the
//     random-access view of a scheduler's sequence. When the schedule is
//     random access (the perfectly periodic algorithms, closed form over
//     Period/Offset), a horizon splits into contiguous windows that workers
//     stream independently through Schedule.Window; the per-shard
//     core.Partial statistics merge associatively back into one Report.
//     Replay-cursor schedules cannot be split this way and stream a single
//     window sequentially (still bitset-accelerated).
//
//   - Batch fan-out. An experiment's many (graph, algorithm, seed) runs are
//     independent, so RunBatch spreads whole analyses across a worker pool.
//
// Independence checks use graph.AdjacencyBits — O(n/64) word AND scans per
// happy node instead of adjacency-list walks with a per-holiday hash map —
// whenever the graph is small enough that the n²/8-byte matrix is cheap.
package engine

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// DefaultBitsetNodeLimit is the largest node count for which Options zero
// value builds an AdjacencyBits matrix (n²/8 bytes: 8 MiB at the limit).
const DefaultBitsetNodeLimit = 1 << 13

// minShardedHorizon is the horizon below which sharding overhead outweighs
// the parallel win and Analyze stays sequential.
const minShardedHorizon = 256

// minBitsetHorizon is the horizon below which building the n²/8-byte
// adjacency matrix costs more than the independence checks it accelerates.
const minBitsetHorizon = 128

// Options configures the engine. The zero value means: one worker per
// GOMAXPROCS, bitset checks up to DefaultBitsetNodeLimit nodes.
type Options struct {
	// Workers is the number of concurrent workers; 0 means GOMAXPROCS.
	Workers int
	// BitsetNodeLimit is the largest graph (node count) for which the
	// engine builds a packed adjacency matrix for independence checks;
	// 0 means DefaultBitsetNodeLimit, negative disables bitsets entirely.
	BitsetNodeLimit int
}

// workers resolves the effective worker count (≥ 1).
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// checkerFactory returns a function minting per-worker independence checks
// for g: bitset-backed when the graph is within the configured limit and
// the horizon amortizes the matrix construction, otherwise the
// adjacency-list check shared by all workers.
func (o Options) checkerFactory(g *graph.Graph, horizon int64) func() func([]int) bool {
	limit := o.BitsetNodeLimit
	if limit == 0 {
		limit = DefaultBitsetNodeLimit
	}
	if limit < 0 || g.N() > limit || horizon < minBitsetHorizon {
		return func() func([]int) bool { return g.IsIndependent }
	}
	bits := graph.NewAdjacencyBits(g)
	return bits.Checker // one scratch buffer per worker
}

// Analyze produces the same Report as core.Analyze(s, g, horizon) using the
// engine's hot paths. The scheduler is adapted through core.ScheduleOf:
// perfectly periodic schedulers become closed-form random-access schedules
// (sharded across workers, s never advanced); stateful schedulers stream a
// single sequential window (advancing s, as core.Analyze would).
func Analyze(s core.Scheduler, g *graph.Graph, horizon int64, opts Options) *core.Report {
	return AnalyzeSchedule(core.ScheduleOf(s, g.N()), g, horizon, opts)
}

// AnalyzeSchedule analyzes a random-access or replay schedule over
// [1, horizon]. Random-access schedules are split into one contiguous
// window per worker, each streamed concurrently through Schedule.Window
// into a core.Partial and merged in order; other schedules stream one
// sequential window. Either way the Report is byte-identical to
// core.Analyze on the underlying scheduler.
func AnalyzeSchedule(sched core.Schedule, g *graph.Graph, horizon int64, opts Options) *core.Report {
	newChecker := opts.checkerFactory(g, horizon)
	if w := opts.workers(); sched.RandomAccess() && w > 1 && horizon >= minShardedHorizon {
		return analyzeSharded(sched, g, horizon, w, newChecker)
	}
	part := core.NewPartial(g.N(), 1, horizon)
	indep := newChecker()
	sched.Window(1, horizon, func(t int64, happy []int) {
		part.Observe(t, happy, indep)
	})
	rep, err := part.Finalize(sched.Name(), g)
	if err != nil {
		panic(err) // unreachable: the partial covers [1, horizon] over g's nodes
	}
	return rep
}

// analyzeSharded splits [1, horizon] into one contiguous window per worker,
// streams each window through Schedule.Window concurrently (safe because
// random-access schedules are immutable), accumulates a core.Partial per
// shard, and merges the partials in order.
func analyzeSharded(sched core.Schedule, g *graph.Graph, horizon int64, workers int,
	newChecker func() func([]int) bool) *core.Report {
	n := g.N()
	if int64(workers) > horizon {
		workers = int(horizon)
	}
	parts := make([]*core.Partial, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo := 1 + horizon*int64(i)/int64(workers)
		hi := horizon * int64(i+1) / int64(workers)
		part := core.NewPartial(n, lo, hi)
		parts[i] = part
		wg.Add(1)
		go func() {
			defer wg.Done()
			indep := newChecker()
			sched.Window(lo, hi, func(t int64, happy []int) {
				part.Observe(t, happy, indep)
			})
		}()
	}
	wg.Wait()
	merged := parts[0]
	for _, part := range parts[1:] {
		if err := merged.Merge(part); err != nil {
			panic(err) // unreachable: shards are adjacent by construction
		}
	}
	rep, err := merged.Finalize(sched.Name(), g)
	if err != nil {
		panic(err) // unreachable: merged covers [1, horizon]
	}
	return rep
}

// Job is one unit of batch analysis: construct a scheduler and analyze it
// over its graph for Horizon holidays.
type Job struct {
	// Graph is the conflict graph the scheduler runs on.
	Graph *graph.Graph
	// New constructs the job's scheduler; it is called inside the worker so
	// construction cost parallelizes too.
	New func() (core.Scheduler, error)
	// Horizon is the number of holidays to analyze.
	Horizon int64
}

// RunBatch analyzes every job across a pool of Options.Workers workers and
// returns the reports in job order. Within a job the analysis itself runs
// single-threaded (the batch is the parallel axis); the bitset hot path
// still applies per Options. The first scheduler-construction error aborts
// nothing — other jobs still run — but is returned, with nil at the failed
// job's slot.
func RunBatch(jobs []Job, opts Options) ([]*core.Report, error) {
	reports := make([]*core.Report, len(jobs))
	errs := make([]error, len(jobs))
	seq := opts
	seq.Workers = 1
	ForEach(len(jobs), opts.workers(), func(i int) {
		s, err := jobs[i].New()
		if err != nil {
			errs[i] = err
			return
		}
		reports[i] = Analyze(s, jobs[i].Graph, jobs[i].Horizon, seq)
	})
	for _, err := range errs {
		if err != nil {
			return reports, err
		}
	}
	return reports, nil
}

// ForEach runs fn(0), …, fn(n-1) across at most workers concurrent
// goroutines and waits for all of them. It is the engine's generic fan-out
// primitive, shared by RunBatch, the experiment harness, and cmd/bench.
func ForEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
