package engine

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// schedulerCase names a fresh-scheduler factory so equivalence tests can
// construct identical scheduler pairs for the sequential and parallel runs.
type schedulerCase struct {
	name string
	make func(g *graph.Graph, seed uint64) core.Scheduler
}

func schedulerCases() []schedulerCase {
	greedy := func(g *graph.Graph) coloring.Coloring {
		return coloring.Greedy(g, coloring.IdentityOrder(g.N()))
	}
	return []schedulerCase{
		{"degree-bound", func(g *graph.Graph, _ uint64) core.Scheduler {
			return core.NewDegreeBoundSequential(g)
		}},
		{"color-bound", func(g *graph.Graph, _ uint64) core.Scheduler {
			s, err := core.NewColorBound(g, greedy(g), prefixcode.Omega{})
			if err != nil {
				panic(err)
			}
			return s
		}},
		{"phased-greedy", func(g *graph.Graph, _ uint64) core.Scheduler {
			s, err := core.NewPhasedGreedy(g, greedy(g))
			if err != nil {
				panic(err)
			}
			return s
		}},
		{"first-grab", func(g *graph.Graph, seed uint64) core.Scheduler {
			return core.NewFirstGrab(g, seed)
		}},
	}
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":   graph.GNP(120, 0.05, 11),
		"cycle": graph.Cycle(97),
		"star":  graph.Star(33),
		"tree":  graph.RandomTree(80, 5),
	}
}

// TestAnalyzeMatchesSequential is the tentpole equivalence property: for
// every algorithm, graph, seed, and worker count, the engine's Report must
// be byte-identical to sequential core.Analyze.
func TestAnalyzeMatchesSequential(t *testing.T) {
	const horizon = 600 // above minShardedHorizon so sharding engages
	for gname, g := range testGraphs() {
		for _, sc := range schedulerCases() {
			for _, seed := range []uint64{1, 42} {
				want := core.Analyze(sc.make(g, seed), g, horizon)
				for _, workers := range []int{1, 2, 3, 7, 16} {
					for _, limit := range []int{0, -1} { // bitset on and off
						got := Analyze(sc.make(g, seed), g, horizon,
							Options{Workers: workers, BitsetNodeLimit: limit})
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s/%s seed=%d workers=%d limit=%d: reports differ\ngot  %+v\nwant %+v",
								gname, sc.name, seed, workers, limit, got, want)
						}
					}
				}
			}
		}
	}
}

// TestAnalyzeShortHorizon covers the horizons below the sharding threshold
// and the degenerate cases around it.
func TestAnalyzeShortHorizon(t *testing.T) {
	g := graph.GNP(60, 0.1, 3)
	for _, horizon := range []int64{1, 2, 63, 255, 256, 257} {
		want := core.Analyze(core.NewDegreeBoundSequential(g), g, horizon)
		got := Analyze(core.NewDegreeBoundSequential(g), g, horizon, Options{Workers: 8})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("horizon %d: reports differ", horizon)
		}
	}
}

// TestAnalyzeCrossesShardBlocks exercises shard windows beyond the
// schedule's internal bucketing block (core's windowBlock, 4096), so the
// block-wise bucket reuse in Schedule.Window covers multiple blocks per
// worker (including a final partial block) and must still be exact.
func TestAnalyzeCrossesShardBlocks(t *testing.T) {
	g := graph.GNP(64, 0.08, 17)
	const block = 4096
	const horizon = 2*block + 2*block/3 // ~1.3 blocks per shard at 2 workers
	want := core.Analyze(core.NewDegreeBoundSequential(g), g, horizon)
	for _, workers := range []int{1, 2, 5} {
		got := Analyze(core.NewDegreeBoundSequential(g), g, horizon, Options{Workers: workers})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: reports differ across shard blocks", workers)
		}
	}
}

// TestAnalyzeMoreWorkersThanHolidays pins the workers-clamp: 1000 workers
// over a 300-holiday horizon must still produce the sequential report.
func TestAnalyzeMoreWorkersThanHolidays(t *testing.T) {
	g := graph.Cycle(40)
	want := core.Analyze(core.NewDegreeBoundSequential(g), g, 300)
	got := Analyze(core.NewDegreeBoundSequential(g), g, 300, Options{Workers: 1000})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reports differ with workers > horizon")
	}
}

// TestAnalyzeLeavesPeriodicUnadvanced documents the sharded path's contract:
// the scheduler's Next state is untouched because the schedule is
// reconstructed from Period/Offset.
func TestAnalyzeLeavesPeriodicUnadvanced(t *testing.T) {
	g := graph.GNP(50, 0.1, 9)
	db := core.NewDegreeBoundSequential(g)
	Analyze(db, g, 512, Options{Workers: 4})
	if db.Holiday() != 0 {
		t.Fatalf("sharded analysis advanced the scheduler to holiday %d", db.Holiday())
	}
}

// TestAnalyzeScheduleMatchesSequential drives the schedule-first entry
// point directly: a closed-form schedule sharded across workers and a
// factory-backed replay schedule must both reproduce core.Analyze.
func TestAnalyzeScheduleMatchesSequential(t *testing.T) {
	g := graph.GNP(90, 0.07, 13)
	const horizon = core.DefaultReplayMemo + 200 // beyond the replay memo, forcing a factory rewind below
	mkPeriodic := func() core.Scheduler { return core.NewDegreeBoundSequential(g) }
	mkStateful := func() (core.Scheduler, error) {
		return core.NewPhasedGreedy(g, coloring.Greedy(g, coloring.IdentityOrder(g.N())))
	}

	want := core.Analyze(mkPeriodic(), g, horizon)
	for _, workers := range []int{1, 3, 8} {
		got := AnalyzeSchedule(core.ScheduleOf(mkPeriodic(), g.N()), g, horizon, Options{Workers: workers})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: periodic schedule report differs from sequential", workers)
		}
	}

	s, err := mkStateful()
	if err != nil {
		t.Fatal(err)
	}
	wantPG := core.Analyze(s, g, horizon)
	fresh, err := mkStateful()
	if err != nil {
		t.Fatal(err)
	}
	sched := core.NewReplaySchedule(fresh, mkStateful)
	got := AnalyzeSchedule(sched, g, horizon, Options{Workers: 8})
	if !reflect.DeepEqual(got, wantPG) {
		t.Fatal("replay schedule report differs from sequential")
	}
	// The same schedule can be analyzed again: the cursor rewinds through
	// the factory instead of silently continuing mid-sequence.
	if got := AnalyzeSchedule(sched, g, horizon/2, Options{Workers: 2}); got.Horizon != horizon/2 {
		t.Fatalf("re-analysis horizon = %d, want %d", got.Horizon, horizon/2)
	}
}

func TestRunBatch(t *testing.T) {
	graphs := testGraphs()
	var jobs []Job
	var want []*core.Report
	for _, g := range graphs {
		for _, sc := range schedulerCases() {
			g, sc := g, sc
			jobs = append(jobs, Job{
				Graph:   g,
				New:     func() (core.Scheduler, error) { return sc.make(g, 1), nil },
				Horizon: 200,
			})
			want = append(want, core.Analyze(sc.make(g, 1), g, 200))
		}
	}
	for _, workers := range []int{1, 4} {
		got, err := RunBatch(jobs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batch reports differ from sequential", workers)
		}
	}
}

func TestRunBatchError(t *testing.T) {
	g := graph.Cycle(10)
	jobs := []Job{
		{Graph: g, New: func() (core.Scheduler, error) { return nil, fmt.Errorf("boom") }, Horizon: 10},
		{Graph: g, New: func() (core.Scheduler, error) { return core.NewDegreeBoundSequential(g), nil }, Horizon: 10},
	}
	got, err := RunBatch(jobs, Options{Workers: 2})
	if err == nil {
		t.Fatal("want construction error")
	}
	if got[0] != nil {
		t.Fatal("failed job should have a nil report")
	}
	if got[1] == nil {
		t.Fatal("healthy job should still run when a sibling fails")
	}
}

func TestForEach(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 50} {
		var sum atomic.Int64
		ForEach(100, workers, func(i int) { sum.Add(int64(i)) })
		if got := sum.Load(); got != 4950 {
			t.Fatalf("workers=%d: sum = %d, want 4950", workers, got)
		}
	}
	ForEach(0, 4, func(i int) { t.Fatal("fn called for n=0") })
}

// TestPartialMergeRandomSplits drives core.Partial directly: any chain of
// contiguous shards must finalize to the sequential report.
func TestPartialMergeRandomSplits(t *testing.T) {
	g := graph.GNP(80, 0.08, 21)
	const horizon = 400
	want := core.Analyze(core.NewDegreeBoundSequential(g), g, horizon)
	for _, cuts := range [][]int64{{200}, {1}, {399}, {100, 200, 300}, {7, 8, 9, 350}} {
		bounds := append([]int64{0}, cuts...)
		bounds = append(bounds, horizon)
		db := core.NewDegreeBoundSequential(g)
		var merged *core.Partial
		for i := 0; i+1 < len(bounds); i++ {
			part := core.NewPartial(g.N(), bounds[i]+1, bounds[i+1])
			for t := bounds[i] + 1; t <= bounds[i+1]; t++ {
				part.Observe(t, db.Next(), g.IsIndependent)
			}
			if merged == nil {
				merged = part
			} else if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		got, err := merged.Finalize(db.Name(), g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cuts %v: merged report differs from sequential", cuts)
		}
	}
}

func TestPartialMergeRejectsGaps(t *testing.T) {
	a := core.NewPartial(5, 1, 10)
	b := core.NewPartial(5, 12, 20)
	if err := a.Merge(b); err == nil {
		t.Fatal("want error merging non-adjacent partials")
	}
	c := core.NewPartial(6, 11, 20)
	if err := a.Merge(c); err == nil {
		t.Fatal("want error merging partials over different node counts")
	}
	if _, err := core.NewPartial(5, 2, 10).Finalize("x", graph.Cycle(5)); err == nil {
		t.Fatal("want error finalizing partial not starting at holiday 1")
	}
}
