package service

import (
	"errors"
	"reflect"
	"testing"
)

// memJournal records every logged record in memory, optionally failing.
type memJournal struct {
	recs []Record
	seq  uint64
	fail error
}

func (j *memJournal) Log(rec Record) (uint64, error) {
	if j.fail != nil {
		return 0, j.fail
	}
	j.seq++
	j.recs = append(j.recs, rec)
	return j.seq, nil
}

// TestJournalReceivesEveryMutation: each of the five mutation kinds logs
// exactly one record, with the fields replay needs.
func TestJournalReceivesEveryMutation(t *testing.T) {
	reg := NewRegistry()
	j := &memJournal{}
	reg.SetJournal(j)

	c, err := reg.Create("c", 4, [][2]int{{0, 1}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddFamily(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Marry(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Divorce(0, 1); err != nil {
		t.Fatal(err)
	}
	if ok, err := reg.Delete("c"); !ok || err != nil {
		t.Fatal("delete failed")
	}

	want := []Record{
		{Op: OpCreate, ID: "c", N: 4, Edges: [][2]int{{0, 1}}, Code: "omega"},
		{Op: OpAddFamily, ID: "c"},
		{Op: OpMarry, ID: "c", U: 1, V: 2},
		{Op: OpDivorce, ID: "c", U: 0, V: 1},
		{Op: OpDelete, ID: "c"},
	}
	if !reflect.DeepEqual(j.recs, want) {
		t.Fatalf("journal saw:\n %+v\nwant:\n %+v", j.recs, want)
	}
}

// TestJournalFailureIsWriteAhead: when the journal rejects a record the
// mutation must not apply — an op the client saw fail cannot silently
// change the schedule.
func TestJournalFailureIsWriteAhead(t *testing.T) {
	reg := NewRegistry()
	j := &memJournal{}
	reg.SetJournal(j)
	// The divorce below must target a real marriage: no-op churn (divorcing
	// strangers, re-marrying spouses) never touches the journal at all.
	c, err := reg.Create("c", 4, [][2]int{{2, 3}}, "")
	if err != nil {
		t.Fatal(err)
	}
	before := c.Stats()

	j.fail = errors.New("disk full")
	if _, err := c.Marry(0, 1); err == nil {
		t.Fatal("Marry acked despite journal failure")
	}
	if _, err := c.AddFamily(); err == nil {
		t.Fatal("AddFamily acked despite journal failure")
	}
	if _, _, err := c.Divorce(2, 3); err == nil {
		t.Fatal("Divorce acked despite journal failure")
	}
	// No-op churn succeeds without consulting the (failing) journal.
	if removed, _, err := c.Divorce(0, 1); removed || err != nil {
		t.Fatalf("no-op divorce: removed=%v err=%v, want false,nil", removed, err)
	}
	if recolored, err := c.Marry(2, 3); recolored || err != nil {
		t.Fatalf("no-op marry: recolored=%v err=%v, want false,nil", recolored, err)
	}
	if ok, err := reg.Delete("c"); ok || err == nil {
		t.Fatal("Delete acked despite journal failure")
	}
	if _, err := reg.Create("d", 2, nil, ""); err == nil {
		t.Fatal("Create acked despite journal failure")
	}
	if got := c.Stats(); got != before {
		t.Fatalf("journal failure mutated state: %+v -> %+v", before, got)
	}
	if _, ok := reg.Get("d"); ok {
		t.Fatal("failed create registered the community anyway")
	}

	// Validation errors must not reach the journal at all.
	j.fail = nil
	n := len(j.recs)
	if _, err := c.Marry(0, 99); err == nil {
		t.Fatal("want validation error")
	}
	if len(j.recs) != n {
		t.Fatal("invalid op was journaled")
	}
}

// TestExportRestoreRoundTrip: a restored community answers identically and
// keeps the exported version, recolorings, and sequence.
func TestExportRestoreRoundTrip(t *testing.T) {
	reg := NewRegistry()
	j := &memJournal{}
	reg.SetJournal(j)
	c, err := reg.Create("c", 12, ringEdges(12), "gamma")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := c.Marry(i, (i+5)%12); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Export()
	if st.Seq == 0 {
		t.Fatal("export lost the journal sequence")
	}

	reg2 := NewRegistry()
	c2, err := reg2.Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := c.Stats(), c2.Stats()
	s1.CacheHits, s1.CacheMisses, s2.CacheHits, s2.CacheMisses = 0, 0, 0, 0
	if s1 != s2 {
		t.Fatalf("restored stats %+v, want %+v", s2, s1)
	}
	rows1, err := c.Window(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := c2.Window(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows1, rows2) {
		t.Fatal("restored community's window diverged")
	}
	for v := 0; v < 12; v++ {
		n1, err1 := c.NextHappy(v, 1)
		n2, err2 := c2.NextHappy(v, 1)
		if err1 != nil || err2 != nil || n1 != n2 {
			t.Fatalf("NextHappy(%d) diverged: %d,%v vs %d,%v", v, n1, err1, n2, err2)
		}
	}
}

// TestRestoreRejectsImproperColoring: a snapshot whose coloring conflicts
// with its edges must be refused — serving an improper coloring would break
// the independence guarantee silently.
func TestRestoreRejectsImproperColoring(t *testing.T) {
	st := CommunityState{
		ID:       "bad",
		Families: 2,
		Edges:    [][2]int{{0, 1}},
		Coloring: []int{1, 1}, // monochromatic edge
	}
	if _, err := NewRegistry().Restore(st); err == nil {
		t.Fatal("restore accepted an improper coloring")
	}
}

// TestApplySkipsReplayedRecords: Apply is idempotent under sequence
// filtering — a record at or below a community's sequence is a no-op.
func TestApplySkipsReplayedRecords(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.Restore(CommunityState{
		ID: "c", Families: 3, Edges: [][2]int{{0, 1}},
		Coloring: []int{1, 2, 1}, Seq: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stale records (≤ 10) must not apply.
	if err := reg.Apply(9, Record{Op: OpAddFamily, ID: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Apply(10, Record{Op: OpDelete, ID: "c"}); err != nil {
		t.Fatal(err)
	}
	if got := c.Families(); got != 3 {
		t.Fatalf("stale record applied: families = %d", got)
	}
	if _, ok := reg.Get("c"); !ok {
		t.Fatal("stale delete removed the community")
	}
	// A fresh record applies and advances the sequence.
	if err := reg.Apply(11, Record{Op: OpAddFamily, ID: "c"}); err != nil {
		t.Fatal(err)
	}
	if got := c.Families(); got != 4 {
		t.Fatalf("fresh record not applied: families = %d", got)
	}
	if got := c.Export().Seq; got != 11 {
		t.Fatalf("sequence = %d, want 11", got)
	}
	// Ops for unknown communities are skipped, not errors.
	if err := reg.Apply(12, Record{Op: OpMarry, ID: "ghost", U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	// Genuinely inconsistent records still error.
	if err := reg.Apply(13, Record{Op: OpMarry, ID: "c", U: 0, V: 99}); err == nil {
		t.Fatal("out-of-range replay accepted")
	}
}
