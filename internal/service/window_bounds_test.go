package service

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestWindowDefaultEndNearHorizon: a from near the servable horizon used to
// overflow the default to=from+51 computation into a negative number and
// report a baffling "window [..,..] is empty"; it must now either serve a
// capped window or reject from itself with a clear error.
func TestWindowDefaultEndNearHorizon(t *testing.T) {
	_, do := newTestServer(t)
	do("POST", "/communities", star9, http.StatusCreated, nil)

	// from beyond the horizon: a clear 400 naming the bound.
	var errResp Error
	path := fmt.Sprintf("/communities/demo/window?from=%d", core.MaxHoliday+1)
	do("GET", path, "", http.StatusBadRequest, &errResp)
	if errResp.Code != CodeBadRequest || !strings.Contains(errResp.Message, "beyond last servable holiday") {
		t.Fatalf("error = %+v, want a bad_request envelope naming the servable-horizon bound", errResp)
	}

	// from at the horizon with no explicit to: the default end caps at
	// MaxHoliday and serves the one remaining holiday.
	var wr struct {
		From     int64 `json:"from"`
		To       int64 `json:"to"`
		Holidays []struct {
			Holiday int64 `json:"holiday"`
		} `json:"holidays"`
	}
	path = fmt.Sprintf("/communities/demo/window?from=%d", core.MaxHoliday)
	do("GET", path, "", http.StatusOK, &wr)
	if wr.To != core.MaxHoliday || len(wr.Holidays) != 1 || wr.Holidays[0].Holiday != core.MaxHoliday {
		t.Fatalf("capped window = from %d to %d with %d rows, want the single holiday %d",
			wr.From, wr.To, len(wr.Holidays), core.MaxHoliday)
	}

	// A few holidays below the horizon: the default end still caps rather
	// than spilling past MaxHoliday.
	path = fmt.Sprintf("/communities/demo/window?from=%d", core.MaxHoliday-10)
	do("GET", path, "", http.StatusOK, &wr)
	if wr.To != core.MaxHoliday || len(wr.Holidays) != 11 {
		t.Fatalf("capped window has to %d and %d rows, want to %d and 11 rows", wr.To, len(wr.Holidays), core.MaxHoliday)
	}
}

// TestWindowPoolRetention: the response pool must refuse to retain rows
// beyond the row cap — and responses whose accumulated Happy backing
// arrays, spare slots included, would pin too much memory.
func TestWindowPoolRetention(t *testing.T) {
	small := &windowResponse{Holidays: make([]HolidayRow, 52)}
	for i := range small.Holidays {
		small.Holidays[i].Happy = make([]int, 8)
	}
	if !retainWindowResponse(small) {
		t.Error("typical one-year response was not pooled")
	}

	tooManyRows := &windowResponse{Holidays: make([]HolidayRow, windowPoolMaxRows+1)}
	if retainWindowResponse(tooManyRows) {
		t.Error("response beyond the row cap was pooled")
	}

	// 512 rows × a dense community's happy sets: under the row cap but far
	// over the total-Happy cap.
	dense := &windowResponse{Holidays: make([]HolidayRow, windowPoolMaxRows)}
	for i := range dense.Holidays {
		dense.Holidays[i].Happy = make([]int, 1024)
	}
	if retainWindowResponse(dense) {
		t.Error("dense response pinning every Happy array was pooled")
	}

	// Spare capacity beyond the last response's length counts too: those
	// slots keep their buffers for reuse.
	spare := &windowResponse{Holidays: make([]HolidayRow, windowPoolMaxRows)}
	for i := range spare.Holidays {
		spare.Holidays[i].Happy = make([]int, 1024)
	}
	spare.Holidays = spare.Holidays[:1] // shrink; buffers stay reachable via cap
	if retainWindowResponse(spare) {
		t.Error("spare slots' Happy buffers were not counted against the cap")
	}
}
