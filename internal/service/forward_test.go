package service

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
)

// clusterNode is one in-process daemon for forwarding tests: a real
// listener (the router must know final addresses before handlers exist).
type clusterNode struct {
	id    string
	owner *Owner
	url   string
}

// startCluster boots n HTTP nodes sharing one topology.
func startCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	nodes := make([]Node, n)
	cns := make([]*clusterNode, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		id := fmt.Sprintf("n%d", i)
		nodes[i] = Node{ID: id, Addr: "http://" + ln.Addr().String()}
		cns[i] = &clusterNode{id: id, owner: New(Opts{}), url: nodes[i].Addr}
	}
	for i, cn := range cns {
		rt, err := NewRouter(RouterOpts{Self: cn.id, Nodes: nodes})
		if err != nil {
			t.Fatalf("NewRouter: %v", err)
		}
		srv := &http.Server{Handler: NewHandler(HandlerOpts{Owner: cn.owner, Router: rt, Node: cn.id})}
		go srv.Serve(lns[i])
		t.Cleanup(func() { srv.Close() })
	}
	return cns
}

// pickPlacement returns a community id placed on want according to a
// client-side router over the same nodes.
func pickPlacement(t *testing.T, cns []*clusterNode, want string) string {
	t.Helper()
	nodes := make([]Node, len(cns))
	for i, cn := range cns {
		nodes[i] = Node{ID: cn.id, Addr: cn.url}
	}
	rt, err := NewRouter(RouterOpts{Nodes: nodes})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("comm-%d", i)
		if rt.Place(id) == want {
			return id
		}
	}
	t.Fatalf("no community hashes to %s", want)
	return ""
}

// TestForwardMisroutedWrite: a create sent to the wrong node lands on the
// placed owner via one server-side forward hop.
func TestForwardMisroutedWrite(t *testing.T) {
	cns := startCluster(t, 2)
	id := pickPlacement(t, cns, cns[1].id)

	body := fmt.Sprintf(`{"id":%q,"families":4}`, id)
	resp, err := http.Post(cns[0].url+"/v1/communities", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create via wrong node: status %d", resp.StatusCode)
	}
	if _, ok := cns[1].owner.Get(id); !ok {
		t.Fatal("community did not land on its placed owner")
	}
	if _, ok := cns[0].owner.Get(id); ok {
		t.Fatal("community also created on the forwarding node")
	}

	// Reads for a community absent locally forward too.
	wresp, err := http.Get(cns[0].url + "/v1/communities/" + id + "/window?from=1&to=10")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("window via wrong node: status %d", wresp.StatusCode)
	}
}

// TestForwardLoopGuard: an already-forwarded request that is still
// misplaced answers 421 not_owner instead of hopping again.
func TestForwardLoopGuard(t *testing.T) {
	cns := startCluster(t, 2)
	id := pickPlacement(t, cns, cns[1].id)

	req, _ := http.NewRequest("POST", cns[0].url+"/v1/communities/"+id+"/families", nil)
	req.Header.Set(forwardHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("status = %d, want 421", resp.StatusCode)
	}
	var e Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if e.Code != CodeNotOwner {
		t.Fatalf("code = %s, want not_owner", e.Code)
	}
}

// TestLegacyRoutesDeprecated: unversioned aliases still work and carry the
// Deprecation header; /v1 routes don't.
func TestLegacyRoutesDeprecated(t *testing.T) {
	cns := startCluster(t, 1)
	id := pickPlacement(t, cns, cns[0].id)
	body := fmt.Sprintf(`{"id":%q,"families":3}`, id)
	resp, err := http.Post(cns[0].url+"/communities", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("legacy create: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") == "" {
		t.Fatal("legacy route carries no Deprecation header")
	}
	v1, err := http.Get(cns[0].url + "/v1/communities/" + id + "/window?from=1&to=5")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	v1.Body.Close()
	if v1.StatusCode != http.StatusOK {
		t.Fatalf("/v1 window: status %d", v1.StatusCode)
	}
	if v1.Header.Get("Deprecation") != "" {
		t.Fatal("/v1 route carries a Deprecation header")
	}
}

// TestStatusEndpoint: /v1/status reports role and placement per community.
func TestStatusEndpoint(t *testing.T) {
	cns := startCluster(t, 2)
	id := pickPlacement(t, cns, cns[0].id)
	if _, err := cns[0].owner.Create(id, 3, nil, ""); err != nil {
		t.Fatalf("create: %v", err)
	}
	resp, err := http.Get(cns[0].url + "/v1/status")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		Node        string `json:"node"`
		Nodes       []Node `json:"nodes"`
		Communities []struct {
			ID     string `json:"id"`
			Role   string `json:"role"`
			Placed string `json:"placed"`
		} `json:"communities"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Node != cns[0].id || len(st.Nodes) != 2 {
		t.Fatalf("status header wrong: %+v", st)
	}
	if len(st.Communities) != 1 || st.Communities[0].Role != "owner" || st.Communities[0].Placed != cns[0].id {
		t.Fatalf("community status wrong: %+v", st.Communities)
	}
}

// TestPromoteEndpoint: /v1/promote unfences a replica and pins placement.
func TestPromoteEndpoint(t *testing.T) {
	cns := startCluster(t, 2)
	id := pickPlacement(t, cns, cns[1].id)
	// Hand node 0 a fenced replica of a community placed on node 1.
	c, err := cns[0].owner.Create(id, 3, nil, "")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	cns[0].owner.Fence(id)
	if _, err := c.Marry(0, 1); err == nil {
		t.Fatal("fenced replica accepted a write")
	}

	resp, err := http.Post(cns[0].url+"/v1/promote", "application/json",
		strings.NewReader(fmt.Sprintf(`{"community":%q}`, id)))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	if c.Fenced() {
		t.Fatal("community still fenced after promotion")
	}
	if _, err := c.Marry(0, 1); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	// And the promoting node now owns it for routing purposes.
	wresp, err := http.Post(cns[0].url+"/v1/communities/"+id+"/families", "application/json", nil)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK && wresp.StatusCode != http.StatusCreated {
		t.Fatalf("write via promoted node: status %d", wresp.StatusCode)
	}
}
