package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPlacementSupersedes pins the total order tables converge under:
// higher epoch always wins; same-epoch ties break on the smaller
// fingerprint; an identical table never supersedes (republication is
// idempotent).
func TestPlacementSupersedes(t *testing.T) {
	base := Placement{Epoch: 3, Nodes: testNodes("a", "b")}
	newer := Placement{Epoch: 4, Nodes: testNodes("a", "b")}
	if !newer.Supersedes(base) {
		t.Fatal("higher epoch does not supersede")
	}
	if base.Supersedes(newer) {
		t.Fatal("lower epoch supersedes")
	}
	if base.Supersedes(base) {
		t.Fatal("a table supersedes itself")
	}

	// Same epoch, different content: exactly one direction wins, and it's
	// the same direction every time (the fingerprint order).
	x := Placement{Epoch: 5, Nodes: testNodes("a", "b"), Assign: map[string]string{"c1": "a"}}
	y := Placement{Epoch: 5, Nodes: testNodes("a", "b"), Assign: map[string]string{"c1": "b"}}
	if x.Supersedes(y) == y.Supersedes(x) {
		t.Fatalf("same-epoch tie is not totally ordered: x>y=%v y>x=%v", x.Supersedes(y), y.Supersedes(x))
	}
	winner := x
	if y.Supersedes(x) {
		winner = y
	}
	for i := 0; i < 10; i++ {
		w2 := x
		if y.Supersedes(x) {
			w2 = y
		}
		if w2.Fingerprint() != winner.Fingerprint() {
			t.Fatal("tie-break is not deterministic")
		}
	}

	// Fingerprint ignores the epoch but covers membership and assignments.
	if x.Fingerprint() == y.Fingerprint() {
		t.Fatal("fingerprint blind to assignments")
	}
	xBumped := x.Clone()
	xBumped.Epoch = 9
	if xBumped.Fingerprint() != x.Fingerprint() {
		t.Fatal("fingerprint depends on the epoch")
	}
}

// TestPlacementCloneAndValidate: clones are independent, and Validate
// refuses structurally broken tables.
func TestPlacementCloneAndValidate(t *testing.T) {
	p := Placement{Epoch: 1, Nodes: testNodes("a", "b"), Assign: map[string]string{"c": "a"}}
	c := p.Clone()
	c.Assign["c"] = "b"
	c.Nodes[0].ID = "z"
	if p.Assign["c"] != "a" {
		t.Fatal("clone shares the assign map")
	}
	if p.Nodes[0].ID != "a" {
		t.Fatal("clone shares the node slice")
	}

	cases := []Placement{
		{},
		{Nodes: []Node{{ID: ""}}},
		{Nodes: testNodes("a", "a")},
		{Nodes: testNodes("a"), Assign: map[string]string{"c": "ghost"}},
	}
	for i, bad := range cases {
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: invalid table validated", i)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid table refused: %v", err)
	}
}

// TestRouterForEvaluatesTable: RouterFor serves exactly the given table —
// assignments included — so tooling can answer "who owns this" offline.
func TestRouterForEvaluatesTable(t *testing.T) {
	ring := mustRouter(t, RouterOpts{Nodes: testNodes("a", "b")})
	var onB string
	for _, k := range keys(100) {
		if ring.Place(k) == "b" {
			onB = k
			break
		}
	}
	rt, err := RouterFor(Placement{Epoch: 7, Nodes: testNodes("a", "b"), Assign: map[string]string{onB: "a"}})
	if err != nil {
		t.Fatalf("RouterFor: %v", err)
	}
	if got := rt.Place(onB); got != "a" {
		t.Fatalf("assignment ignored: Place(%q) = %s", onB, got)
	}
	if rt.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", rt.Epoch())
	}
	if _, err := RouterFor(Placement{}); err == nil {
		t.Fatal("RouterFor accepted an empty table")
	}
}

// TestSetPlacementEpochGate: installs are gated on Supersedes, watchers see
// every install, and a republished identical table is a quiet no-op.
func TestSetPlacementEpochGate(t *testing.T) {
	rt := mustRouter(t, RouterOpts{Nodes: testNodes("a", "b")})
	var saw []uint64
	var mu sync.Mutex
	rt.OnChange(func(p Placement) {
		mu.Lock()
		saw = append(saw, p.Epoch)
		mu.Unlock()
	})

	next := Placement{Epoch: 5, Nodes: testNodes("a", "b", "c"), Assign: map[string]string{"x": "c"}}
	if ok, err := rt.SetPlacement(next); err != nil || !ok {
		t.Fatalf("SetPlacement(epoch 5) = %v, %v", ok, err)
	}
	if rt.Epoch() != 5 || rt.Place("x") != "c" {
		t.Fatalf("table not installed: epoch %d, Place(x)=%s", rt.Epoch(), rt.Place("x"))
	}
	// Stale and identical tables are refused without error.
	if ok, _ := rt.SetPlacement(Placement{Epoch: 2, Nodes: testNodes("a")}); ok {
		t.Fatal("stale epoch installed")
	}
	if ok, _ := rt.SetPlacement(next); ok {
		t.Fatal("identical table re-installed")
	}
	if ok, err := rt.SetPlacement(Placement{Epoch: 0, Nodes: nil}); ok || err == nil {
		t.Fatal("invalid table installed or accepted")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(saw) != 1 || saw[0] != 5 {
		t.Fatalf("watcher calls = %v, want [5]", saw)
	}
}

// TestRouterConcurrentMutationStress hammers every mutator against every
// reader from many goroutines — run under -race this is the memory-safety
// proof for the placement plane (the bug class: Override rebuilding the
// ring while a Place walks it).
func TestRouterConcurrentMutationStress(t *testing.T) {
	rt := mustRouter(t, RouterOpts{Self: "a", Nodes: testNodes("a", "b", "c")})
	ks := keys(64)
	var stop atomic.Bool
	var wg sync.WaitGroup

	reader := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for !stop.Load() {
			k := ks[rng.Intn(len(ks))]
			owner := rt.Place(k)
			if owner == "" {
				t.Error("Place returned an empty owner")
				return
			}
			rt.IsLocal(k)
			rt.Overrides()
			rt.Epoch()
			rt.Addr(owner)
			rt.Placement()
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go reader(int64(i))
	}

	wg.Add(1)
	go func() { // override churn
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		targets := []string{"a", "b", "c"}
		for i := 0; !stop.Load(); i++ {
			_ = rt.Override(ks[rng.Intn(len(ks))], targets[rng.Intn(len(targets))])
		}
	}()
	wg.Add(1)
	go func() { // membership churn: d joins and leaves
		defer wg.Done()
		for !stop.Load() {
			_ = rt.AddNode(Node{ID: "d", Addr: "http://d.example:8080"})
			rt.RemoveNode("d")
		}
	}()
	wg.Add(1)
	go func() { // table publishes racing the mutators
		defer wg.Done()
		for !stop.Load() {
			p := rt.Placement()
			p.Epoch++
			if _, err := rt.SetPlacement(p); err != nil {
				t.Error("SetPlacement:", err)
				return
			}
		}
	}()

	for i := 0; i < 2000; i++ {
		rt.Place(ks[i%len(ks)])
	}
	stop.Store(true)
	wg.Wait()

	// The surviving table is still coherent: valid, and every placement
	// resolves to a member.
	p := rt.Placement()
	if err := p.Validate(); err != nil {
		t.Fatalf("post-stress table invalid: %v", err)
	}
	for _, k := range ks {
		owner := rt.Place(k)
		if _, ok := rt.Addr(owner); !ok {
			t.Fatalf("Place(%q) = %q, not a member", k, owner)
		}
	}
}

// TestShardedEquivalenceWithEpochChurn re-runs the sharded≡single property
// with the placement plane churning mid-stream: every few hundred ops a new
// epoch publishes (membership grows, shrinks, assignments pin) with every
// community explicitly pinned to its original owner — the stage-1 rebalance
// shape. Placement must not move (no data moved), and every answer must
// stay byte-identical to the single registry.
func TestShardedEquivalenceWithEpochChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rt := mustRouter(t, RouterOpts{Nodes: testNodes("a", "b", "c")})
	shards := map[string]*Owner{"a": New(Opts{}), "b": New(Opts{}), "c": New(Opts{})}
	single := New(Opts{})
	shardFor := func(id string) *Owner {
		o, ok := shards[rt.Place(id)]
		if !ok {
			t.Fatalf("community %q placed on %q, a node with no shard — churn moved placement", id, rt.Place(id))
		}
		return o
	}

	const nCommunities = 10
	ids := make([]string, nCommunities)
	pins := make(map[string]string, nCommunities)
	for i := range ids {
		ids[i] = fmt.Sprintf("community-%d", i)
		pins[ids[i]] = rt.Place(ids[i])
		n := 3 + rng.Intn(6)
		if _, err := shardFor(ids[i]).Create(ids[i], n, nil, ""); err != nil {
			t.Fatalf("sharded create: %v", err)
		}
		if _, err := single.Create(ids[i], n, nil, ""); err != nil {
			t.Fatalf("single create: %v", err)
		}
	}

	// The churn schedule: tables that grow and shrink membership but pin
	// every community where its data lives, exactly like the rebalancer's
	// membership stages.
	churn := []Placement{
		{Epoch: 10, Nodes: testNodes("a", "b", "c", "d"), Assign: pins},
		{Epoch: 11, Nodes: testNodes("a", "b", "c", "d", "e"), Assign: pins},
		{Epoch: 12, Nodes: testNodes("a", "b", "c"), Assign: pins},
	}
	churnAt := map[int]int{400: 0, 900: 1, 1400: 2}

	for step := 0; step < 2000; step++ {
		if ci, ok := churnAt[step]; ok {
			if ok, err := rt.SetPlacement(churn[ci]); err != nil || !ok {
				t.Fatalf("churn table %d not installed: %v %v", ci, ok, err)
			}
			for _, id := range ids {
				if got := rt.Place(id); got != pins[id] {
					t.Fatalf("epoch %d moved %q: %s -> %s with pins in force", churn[ci].Epoch, id, pins[id], got)
				}
			}
		}
		id := ids[rng.Intn(len(ids))]
		sc, _ := shardFor(id).Get(id)
		uc, _ := single.Get(id)
		n := sc.Families()
		u, v := rng.Intn(n), rng.Intn(n)
		if rng.Intn(2) == 0 {
			r1, err1 := sc.Marry(u, v)
			r2, err2 := uc.Marry(u, v)
			if (err1 == nil) != (err2 == nil) || r1 != r2 {
				t.Fatalf("Marry diverged at step %d", step)
			}
		} else {
			rm1, rc1, err1 := sc.Divorce(u, v)
			rm2, rc2, err2 := uc.Divorce(u, v)
			if (err1 == nil) != (err2 == nil) || rm1 != rm2 || rc1 != rc2 {
				t.Fatalf("Divorce diverged at step %d", step)
			}
		}
	}

	for _, id := range ids {
		sc, _ := shardFor(id).Get(id)
		uc, _ := single.Get(id)
		sw, err := sc.Window(1, 200)
		if err != nil {
			t.Fatalf("sharded window: %v", err)
		}
		uw, err := uc.Window(1, 200)
		if err != nil {
			t.Fatalf("single window: %v", err)
		}
		sb, _ := json.Marshal(sw)
		ub, _ := json.Marshal(uw)
		if string(sb) != string(ub) {
			t.Fatalf("window diverged for %s after epoch churn", id)
		}
	}
}
