package service

import (
	"fmt"
	"sort"
	"strings"
)

// Placement is the epoch-versioned placement table — the single source of
// truth for which node owns which community. It carries the cluster
// membership the consistent-hash ring is derived from plus explicit
// per-community assignments that take precedence over the ring (the
// residue of handoffs and promotions). Communities absent from Assign are
// placed by hashing over Nodes, so a fresh table with an empty Assign map
// reproduces pure ring placement.
//
// Tables are totally ordered: a higher Epoch always wins, and between two
// tables at the same epoch (a double self-promotion race) the one with the
// lexicographically smaller fingerprint wins, so every node converges on
// the same table without coordination.
type Placement struct {
	Epoch  uint64            `json:"epoch"`
	Nodes  []Node            `json:"nodes"`
	Assign map[string]string `json:"assign,omitempty"` // community id → node id
}

// Clone returns a deep copy safe to mutate.
func (p Placement) Clone() Placement {
	out := Placement{Epoch: p.Epoch, Nodes: append([]Node(nil), p.Nodes...)}
	if p.Assign != nil {
		out.Assign = make(map[string]string, len(p.Assign))
		for k, v := range p.Assign {
			out.Assign[k] = v
		}
	}
	return out
}

// Validate checks structural invariants: at least one node, unique
// non-empty node ids, and assignments that point at members.
func (p Placement) Validate() error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("service: placement epoch %d lists no nodes", p.Epoch)
	}
	members := make(map[string]bool, len(p.Nodes))
	for i, n := range p.Nodes {
		if n.ID == "" {
			return fmt.Errorf("service: placement epoch %d: node %d has an empty id", p.Epoch, i)
		}
		if members[n.ID] {
			return fmt.Errorf("service: placement epoch %d: duplicate node id %q", p.Epoch, n.ID)
		}
		members[n.ID] = true
	}
	for c, n := range p.Assign {
		if !members[n] {
			return fmt.Errorf("service: placement epoch %d assigns %q to non-member %q", p.Epoch, c, n)
		}
	}
	return nil
}

// Fingerprint is a canonical rendering of the table's content (membership
// and assignments, not the epoch) used to break same-epoch ties
// deterministically and to recognize an already-installed table.
func (p Placement) Fingerprint() string {
	var b strings.Builder
	ids := make([]string, 0, len(p.Nodes))
	for _, n := range p.Nodes {
		ids = append(ids, n.ID+"="+n.Addr+"/"+n.Repl)
	}
	sort.Strings(ids)
	b.WriteString(strings.Join(ids, ","))
	b.WriteByte('|')
	keys := make([]string, 0, len(p.Assign))
	for k := range p.Assign {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('>')
		b.WriteString(p.Assign[k])
		b.WriteByte(';')
	}
	return b.String()
}

// Supersedes reports whether p should replace cur: strictly higher epoch,
// or — for concurrently published tables at the same epoch — the smaller
// fingerprint. Equal epoch and equal fingerprint means the table is
// already current.
func (p Placement) Supersedes(cur Placement) bool {
	if p.Epoch != cur.Epoch {
		return p.Epoch > cur.Epoch
	}
	pf, cf := p.Fingerprint(), cur.Fingerprint()
	return pf != cf && pf < cf
}
