package service

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
)

// Node is one cluster member of a topology: its stable id (the consistent
// hash input), the base URL peers reach its HTTP API at, and the host:port
// its replication stream listens on (empty for nodes that don't replicate).
type Node struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	Repl string `json:"repl,omitempty"`
}

// Topology is the static cluster description of a nodes.json file.
type Topology struct {
	Nodes []Node `json:"nodes"`
}

// LoadTopology reads a nodes.json topology file.
func LoadTopology(path string) (Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, fmt.Errorf("service: topology: %w", err)
	}
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return Topology{}, fmt.Errorf("service: topology %s: %w", path, err)
	}
	if len(t.Nodes) == 0 {
		return Topology{}, fmt.Errorf("service: topology %s lists no nodes", path)
	}
	return t, nil
}

// DefaultVNodes is the virtual nodes each member contributes to the hash
// ring. 64 points per node keeps the expected placement imbalance of a
// small cluster within a few percent while the ring stays tiny.
const DefaultVNodes = 64

// Router is the placement surface of the cluster. It serves an
// epoch-versioned Placement table: cluster membership (from which the
// consistent-hash ring is derived) plus explicit per-community assignments
// that take precedence over the ring. Placement is a pure function of the
// installed table — every process holding the same table computes the same
// owner for every community, across restarts, with no coordination.
//
// Tables advance through SetPlacement (higher epoch wins; same-epoch ties
// break on the canonical fingerprint), so concurrent publishers — two
// replicas self-promoting after an owner death, an operator rebalance
// racing a failover — converge deterministically. Mutators like Override
// and AddNode are conveniences that bump the epoch by one.
//
// Daemons embed a Router to decide whether to serve, forward, or refuse;
// clients (holidayctl, the benchmark cluster driver) embed one with an
// empty Self to route requests themselves. Safe for concurrent use.
type Router struct {
	self   string
	vnodes int

	mu       sync.RWMutex
	p        Placement // current table; p.Nodes sorted by id
	ring     []ringPoint
	watchers []func(Placement)
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash uint64
	node string
}

// RouterOpts configures NewRouter.
type RouterOpts struct {
	// Self is this process's node id — empty for client-side routers that
	// only resolve placement. When set it must name a topology node.
	Self string
	// Nodes are the cluster members; at least one, ids unique.
	Nodes []Node
	// VNodes overrides the virtual nodes per member; 0 means DefaultVNodes.
	VNodes int
	// Epoch is the initial table's epoch; 0 for a fresh boot (any published
	// table supersedes it).
	Epoch uint64
}

// NewRouter builds a router over the given members.
func NewRouter(o RouterOpts) (*Router, error) {
	if o.VNodes < 1 {
		o.VNodes = DefaultVNodes
	}
	p := Placement{
		Epoch:  o.Epoch,
		Nodes:  append([]Node(nil), o.Nodes...),
		Assign: make(map[string]string),
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sort.Slice(p.Nodes, func(i, j int) bool { return p.Nodes[i].ID < p.Nodes[j].ID })
	rt := &Router{self: o.Self, vnodes: o.VNodes, p: p}
	if o.Self != "" && !rt.isMemberLocked(o.Self) {
		return nil, fmt.Errorf("service: router self %q is not in the topology", o.Self)
	}
	rt.ring = buildRing(nil, p.Nodes, o.VNodes)
	return rt, nil
}

// RouterFor returns a client-side router (empty Self) serving exactly the
// given table — how tooling evaluates a table's placement without joining
// the cluster.
func RouterFor(p Placement) (*Router, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rt, err := NewRouter(RouterOpts{Nodes: p.Nodes, Epoch: p.Epoch})
	if err != nil {
		return nil, err
	}
	for c, n := range p.Assign {
		rt.p.Assign[c] = n
	}
	return rt, nil
}

// isMemberLocked reports whether id names a member; caller holds mu (or the
// router is still private).
func (rt *Router) isMemberLocked(id string) bool {
	for _, n := range rt.p.Nodes {
		if n.ID == id {
			return true
		}
	}
	return false
}

// buildRing computes the vnode ring for a member list, reusing dst's
// backing array when possible.
func buildRing(dst []ringPoint, nodes []Node, vnodes int) []ringPoint {
	dst = dst[:0]
	for _, n := range nodes {
		h := fnvString(fnvOffset64, n.ID)
		h = fnvByte(h, '#')
		for i := 0; i < vnodes; i++ {
			dst = append(dst, ringPoint{hash: mix64(fnvString(h, strconv.Itoa(i))), node: n.ID})
		}
	}
	sort.Slice(dst, func(i, j int) bool {
		if dst[i].hash != dst[j].hash {
			return dst[i].hash < dst[j].hash
		}
		// Hash ties (vanishingly rare) break by node id so placement stays
		// deterministic regardless of member insertion order.
		return dst[i].node < dst[j].node
	})
	return dst
}

// FNV-1a, inlined so ring rebuilds and lookups never allocate a hasher.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// mix64 is the murmur3 finalizer. Raw FNV-1a hashes of strings sharing a
// prefix and differing only in a short suffix ("a#0" … "a#63", or
// "community-1" … "community-9") land numerically close together — the
// suffix bytes get too few multiplies to diffuse — which clumps vnodes on
// the ring and wrecks placement balance. The finalizer's avalanche
// decorrelates them.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Self returns this process's node id ("" for client-side routers).
func (rt *Router) Self() string { return rt.self }

// Nodes returns the members, sorted by id.
func (rt *Router) Nodes() []Node {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]Node(nil), rt.p.Nodes...)
}

// Epoch returns the installed table's epoch.
func (rt *Router) Epoch() uint64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.p.Epoch
}

// Placement returns a copy of the installed table.
func (rt *Router) Placement() Placement {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.p.Clone()
}

// SetPlacement installs a table if it supersedes the current one (higher
// epoch, or same epoch with a winning fingerprint). It returns whether the
// table was installed; an equal table reports false with no error, so
// republication is idempotent. Watchers registered with OnChange observe
// every install.
func (rt *Router) SetPlacement(p Placement) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	p = p.Clone()
	sort.Slice(p.Nodes, func(i, j int) bool { return p.Nodes[i].ID < p.Nodes[j].ID })
	if p.Assign == nil {
		p.Assign = make(map[string]string)
	}
	rt.mu.Lock()
	if !p.Supersedes(rt.p) {
		rt.mu.Unlock()
		return false, nil
	}
	rt.p = p
	rt.ring = buildRing(rt.ring, p.Nodes, rt.vnodes)
	watchers := append([]func(Placement){}, rt.watchers...)
	snap := p.Clone()
	rt.mu.Unlock()
	for _, w := range watchers {
		w(snap)
	}
	return true, nil
}

// OnChange registers a watcher called (outside the router's lock, with a
// private copy of the table) after every successful SetPlacement install.
func (rt *Router) OnChange(fn func(Placement)) {
	rt.mu.Lock()
	rt.watchers = append(rt.watchers, fn)
	rt.mu.Unlock()
}

// Place returns the node id owning a community: its table assignment if
// one exists, otherwise the first ring point at or after the community's
// hash.
func (rt *Router) Place(community string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if n, ok := rt.p.Assign[community]; ok {
		return n
	}
	h := mix64(fnvString(fnvOffset64, community))
	i := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= h })
	if i == len(rt.ring) {
		i = 0
	}
	return rt.ring[i].node
}

// IsLocal reports whether a community is placed on this node.
func (rt *Router) IsLocal(community string) bool { return rt.Place(community) == rt.self }

// Addr returns the base URL of a member node.
func (rt *Router) Addr(node string) (string, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for _, n := range rt.p.Nodes {
		if n.ID == node {
			return n.Addr, true
		}
	}
	return "", false
}

// ReplAddr returns the replication listener address of a member node.
func (rt *Router) ReplAddr(node string) (string, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for _, n := range rt.p.Nodes {
		if n.ID == node {
			return n.Repl, true
		}
	}
	return "", false
}

// Override pins a community to a node regardless of the ring by publishing
// a one-epoch bump of the current table — the break-glass promotion path
// after its hash-placed owner dies. The node must be a member.
func (rt *Router) Override(community, node string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.isMemberLocked(node) {
		return fmt.Errorf("service: override %q → %q: no such node", community, node)
	}
	rt.bumpLocked(func(p *Placement) { p.Assign[community] = node })
	return nil
}

// bumpLocked installs a mutated copy of the current table at epoch+1;
// caller holds mu. Watchers run after the caller releases the lock via
// notifyAsync — mutator-path installs are always strictly newer, so the
// deferred notification cannot reorder against a competing install.
func (rt *Router) bumpLocked(mutate func(*Placement)) {
	p := rt.p.Clone()
	if p.Assign == nil {
		p.Assign = make(map[string]string)
	}
	p.Epoch++
	mutate(&p)
	sort.Slice(p.Nodes, func(i, j int) bool { return p.Nodes[i].ID < p.Nodes[j].ID })
	rt.p = p
	rt.ring = buildRing(rt.ring, p.Nodes, rt.vnodes)
	if len(rt.watchers) > 0 {
		watchers := append([]func(Placement){}, rt.watchers...)
		snap := p.Clone()
		go func() {
			for _, w := range watchers {
				w(snap)
			}
		}()
	}
}

// Overrides returns a copy of the explicit assignments of the current
// table (the entries that shadow ring placement).
func (rt *Router) Overrides() map[string]string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]string, len(rt.p.Assign))
	for k, v := range rt.p.Assign {
		out[k] = v
	}
	return out
}

// AddNode joins a member to the ring at a new epoch; placement of
// communities hashing to other members is unchanged (the consistent-hash
// property the tests pin).
func (rt *Router) AddNode(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("service: AddNode: empty node id")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.isMemberLocked(n.ID) {
		return fmt.Errorf("service: AddNode: node %q already a member", n.ID)
	}
	rt.bumpLocked(func(p *Placement) { p.Nodes = append(p.Nodes, n) })
	return nil
}

// RemoveNode drops a member (and any assignments pointing at it) at a new
// epoch, reporting whether it was one. Communities it owned move to their
// next ring point.
func (rt *Router) RemoveNode(id string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.isMemberLocked(id) {
		return false
	}
	rt.bumpLocked(func(p *Placement) {
		for i, n := range p.Nodes {
			if n.ID == id {
				p.Nodes = append(p.Nodes[:i], p.Nodes[i+1:]...)
				break
			}
		}
		for c, o := range p.Assign {
			if o == id {
				delete(p.Assign, c)
			}
		}
	})
	return true
}
