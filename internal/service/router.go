package service

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
)

// Node is one cluster member of a topology: its stable id (the consistent
// hash input), the base URL peers reach its HTTP API at, and the host:port
// its replication stream listens on (empty for nodes that don't replicate).
type Node struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	Repl string `json:"repl,omitempty"`
}

// Topology is the static cluster description of a nodes.json file.
type Topology struct {
	Nodes []Node `json:"nodes"`
}

// LoadTopology reads a nodes.json topology file.
func LoadTopology(path string) (Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, fmt.Errorf("service: topology: %w", err)
	}
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return Topology{}, fmt.Errorf("service: topology %s: %w", path, err)
	}
	if len(t.Nodes) == 0 {
		return Topology{}, fmt.Errorf("service: topology %s lists no nodes", path)
	}
	return t, nil
}

// DefaultVNodes is the virtual nodes each member contributes to the hash
// ring. 64 points per node keeps the expected placement imbalance of a
// small cluster within a few percent while the ring stays tiny.
const DefaultVNodes = 64

// Router is the placement surface of the cluster: a consistent-hash ring
// mapping community ids to member nodes, plus explicit per-community
// overrides for promotions after a node death. Placement is a pure function
// of the member ids (and overrides) — every process loading the same
// topology computes the same owner for every community, across restarts,
// with no coordination.
//
// Daemons embed a Router to decide whether to serve, forward, or refuse;
// clients (holidayctl, the benchmark cluster driver) embed one with an
// empty Self to route requests themselves. Safe for concurrent use.
type Router struct {
	self   string
	vnodes int

	mu        sync.RWMutex
	nodes     []Node // sorted by ID
	ring      []ringPoint
	overrides map[string]string // community id → node id
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash uint64
	node string
}

// RouterOpts configures NewRouter.
type RouterOpts struct {
	// Self is this process's node id — empty for client-side routers that
	// only resolve placement. When set it must name a topology node.
	Self string
	// Nodes are the cluster members; at least one, ids unique.
	Nodes []Node
	// VNodes overrides the virtual nodes per member; 0 means DefaultVNodes.
	VNodes int
}

// NewRouter builds a router over the given members.
func NewRouter(o RouterOpts) (*Router, error) {
	if len(o.Nodes) == 0 {
		return nil, fmt.Errorf("service: router needs at least one node")
	}
	if o.VNodes < 1 {
		o.VNodes = DefaultVNodes
	}
	rt := &Router{
		self:      o.Self,
		vnodes:    o.VNodes,
		nodes:     append([]Node(nil), o.Nodes...),
		overrides: make(map[string]string),
	}
	sort.Slice(rt.nodes, func(i, j int) bool { return rt.nodes[i].ID < rt.nodes[j].ID })
	for i, n := range rt.nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("service: router node %d has an empty id", i)
		}
		if i > 0 && rt.nodes[i-1].ID == n.ID {
			return nil, fmt.Errorf("service: router has duplicate node id %q", n.ID)
		}
	}
	if o.Self != "" && !rt.isMemberLocked(o.Self) {
		return nil, fmt.Errorf("service: router self %q is not in the topology", o.Self)
	}
	rt.rebuildLocked()
	return rt, nil
}

// isMemberLocked reports whether id names a member; caller holds mu (or the
// router is still private).
func (rt *Router) isMemberLocked(id string) bool {
	for _, n := range rt.nodes {
		if n.ID == id {
			return true
		}
	}
	return false
}

// rebuildLocked recomputes the ring from the member list; caller holds mu.
func (rt *Router) rebuildLocked() {
	rt.ring = rt.ring[:0]
	for _, n := range rt.nodes {
		h := fnvString(fnvOffset64, n.ID)
		h = fnvByte(h, '#')
		for i := 0; i < rt.vnodes; i++ {
			rt.ring = append(rt.ring, ringPoint{hash: mix64(fnvString(h, strconv.Itoa(i))), node: n.ID})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool {
		if rt.ring[i].hash != rt.ring[j].hash {
			return rt.ring[i].hash < rt.ring[j].hash
		}
		// Hash ties (vanishingly rare) break by node id so placement stays
		// deterministic regardless of member insertion order.
		return rt.ring[i].node < rt.ring[j].node
	})
}

// FNV-1a, inlined so ring rebuilds and lookups never allocate a hasher.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// mix64 is the murmur3 finalizer. Raw FNV-1a hashes of strings sharing a
// prefix and differing only in a short suffix ("a#0" … "a#63", or
// "community-1" … "community-9") land numerically close together — the
// suffix bytes get too few multiplies to diffuse — which clumps vnodes on
// the ring and wrecks placement balance. The finalizer's avalanche
// decorrelates them.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Self returns this process's node id ("" for client-side routers).
func (rt *Router) Self() string { return rt.self }

// Nodes returns the members, sorted by id.
func (rt *Router) Nodes() []Node {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]Node(nil), rt.nodes...)
}

// Place returns the node id owning a community: its override if one was
// promoted, otherwise the first ring point at or after the community's
// hash.
func (rt *Router) Place(community string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if n, ok := rt.overrides[community]; ok {
		return n
	}
	h := mix64(fnvString(fnvOffset64, community))
	i := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= h })
	if i == len(rt.ring) {
		i = 0
	}
	return rt.ring[i].node
}

// IsLocal reports whether a community is placed on this node.
func (rt *Router) IsLocal(community string) bool { return rt.Place(community) == rt.self }

// Addr returns the base URL of a member node.
func (rt *Router) Addr(node string) (string, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for _, n := range rt.nodes {
		if n.ID == node {
			return n.Addr, true
		}
	}
	return "", false
}

// Override pins a community to a node regardless of the ring — the
// promotion path after its hash-placed owner dies. The node must be a
// member.
func (rt *Router) Override(community, node string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.isMemberLocked(node) {
		return fmt.Errorf("service: override %q → %q: no such node", community, node)
	}
	rt.overrides[community] = node
	return nil
}

// Overrides returns a copy of the promotion overrides.
func (rt *Router) Overrides() map[string]string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]string, len(rt.overrides))
	for k, v := range rt.overrides {
		out[k] = v
	}
	return out
}

// AddNode joins a member to the ring; placement of communities hashing to
// other members is unchanged (the consistent-hash property the tests pin).
func (rt *Router) AddNode(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("service: AddNode: empty node id")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.isMemberLocked(n.ID) {
		return fmt.Errorf("service: AddNode: node %q already a member", n.ID)
	}
	rt.nodes = append(rt.nodes, n)
	sort.Slice(rt.nodes, func(i, j int) bool { return rt.nodes[i].ID < rt.nodes[j].ID })
	rt.rebuildLocked()
	return nil
}

// RemoveNode drops a member (and any overrides pointing at it), reporting
// whether it was one. Communities it owned move to their next ring point.
func (rt *Router) RemoveNode(id string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, n := range rt.nodes {
		if n.ID == id {
			rt.nodes = append(rt.nodes[:i], rt.nodes[i+1:]...)
			for c, o := range rt.overrides {
				if o == id {
					delete(rt.overrides, c)
				}
			}
			rt.rebuildLocked()
			return true
		}
	}
	return false
}
