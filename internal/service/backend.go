package service

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/poly"
)

// Community kinds. A kind names the scheduling problem a community solves
// and the backend that maintains it under churn.
const (
	// KindClassic is the paper's Family Holiday Gathering problem: entities
	// are families, edges are in-law conflicts, and each holiday's happy set
	// is an independent set maintained by the §6 dynamic color-bound
	// scheduler. The empty kind means classic.
	KindClassic = "classic"
	// KindPoly is the Polyamorous Scheduling problem: demands sit on the
	// edges, each timeslot's output is a matching, and the schedule entities
	// are edge slots rather than families.
	KindPoly = "poly"
)

// backend is the per-kind scheduler a Community drives: the classic dynamic
// color-bound recolorer or the poly edge-layering scheduler. Both expose
// the same churn vocabulary (core.Edit/EditResult) and freeze to a
// core.Schedule, which is what lets the locking, journaling, caching, and
// both wire protocols above stay kind-agnostic. Callers hold the
// community's write lock for every mutating call and validate edits
// (validEdge) before applying them.
type backend interface {
	Kind() string
	// SchedulerName names the algorithm for stats and frozen schedules.
	SchedulerName() string
	// CodeName is the code the kind was created with: a prefix code name
	// for classic, a poly scheduler code for poly.
	CodeName() string
	N() int
	M() int
	// Repairs counts the kind's disruption events: recolorings for classic,
	// full relayerings for poly.
	Repairs() int64
	AddNode() int
	HasEdge(u, v int) bool
	// AddEdge inserts an edge; demand is resolved per kind (classic ignores
	// it, poly substitutes the community default for 0).
	AddEdge(u, v int, demand int64) (core.EditResult, error)
	RemoveEdge(u, v int) core.EditResult
	// ApplyBatch applies validated edits in order, filling out (same length)
	// with per-edit outcomes, byte-identical to one-at-a-time application.
	// The returned count is the batch's Repairs delta.
	ApplyBatch(edits []core.Edit, out []core.EditResult) (repairs int, err error)
	// Invalidates reports whether an edit's outcome requires dropping the
	// cached frozen schedule (and ticking the community version). Classic
	// schedules only change when somebody recolors; poly schedules include
	// the edge slots themselves, so every applied edit changes them.
	Invalidates(res core.EditResult) bool
	FrozenSchedule() (core.Schedule, error)
	// exportInto fills the kind-specific fields of a snapshot.
	exportInto(st *CommunityState)
}

// classicBackend adapts core.DynamicColorBound to the backend surface.
type classicBackend struct {
	dyn *core.DynamicColorBound
}

func (b *classicBackend) Kind() string          { return KindClassic }
func (b *classicBackend) SchedulerName() string { return b.dyn.Name() }
func (b *classicBackend) CodeName() string      { return b.dyn.Code().Name() }
func (b *classicBackend) N() int                { return b.dyn.N() }
func (b *classicBackend) M() int                { return b.dyn.M() }
func (b *classicBackend) Repairs() int64        { return b.dyn.Recolorings }
func (b *classicBackend) AddNode() int          { return b.dyn.AddNode() }
func (b *classicBackend) HasEdge(u, v int) bool { return b.dyn.HasEdge(u, v) }

func (b *classicBackend) AddEdge(u, v int, _ int64) (core.EditResult, error) {
	mBefore := b.dyn.M()
	recolored, err := b.dyn.AddEdge(u, v)
	if err != nil {
		return core.EditResult{}, err
	}
	return core.EditResult{Applied: b.dyn.M() != mBefore, Recolored: recolored}, nil
}

func (b *classicBackend) RemoveEdge(u, v int) core.EditResult {
	before := b.dyn.Recolorings
	removed := b.dyn.RemoveEdge(u, v)
	return core.EditResult{Applied: removed, Recolored: b.dyn.Recolorings > before}
}

func (b *classicBackend) ApplyBatch(edits []core.Edit, out []core.EditResult) (int, error) {
	return b.dyn.ApplyBatchResults(edits, out)
}

func (b *classicBackend) Invalidates(res core.EditResult) bool { return res.Recolored }

func (b *classicBackend) FrozenSchedule() (core.Schedule, error) { return b.dyn.FrozenSchedule() }

func (b *classicBackend) exportInto(st *CommunityState) {
	g := b.dyn.Graph()
	st.Families = g.N()
	st.Edges = make([][2]int, 0, g.M())
	for _, e := range g.Edges() {
		st.Edges = append(st.Edges, [2]int{e.U, e.V})
	}
	st.Code = b.dyn.Code().Name()
	st.Coloring = b.dyn.Coloring()
	st.Recolorings = b.dyn.Recolorings
}

// polyBackend adapts poly.Dyn. defaultDemand is the community-level demand
// substituted for edits that do not name one; it is fixed at creation and
// persisted, so WAL replay resolves demands identically.
type polyBackend struct {
	dyn           *poly.Dyn
	defaultDemand int64
}

func (b *polyBackend) Kind() string          { return KindPoly }
func (b *polyBackend) SchedulerName() string { return b.dyn.Name() }
func (b *polyBackend) CodeName() string      { return b.dyn.Code() }
func (b *polyBackend) N() int                { return b.dyn.N() }
func (b *polyBackend) M() int                { return b.dyn.M() }
func (b *polyBackend) Repairs() int64        { return b.dyn.Relayerings() }
func (b *polyBackend) AddNode() int          { return b.dyn.AddNode() }
func (b *polyBackend) HasEdge(u, v int) bool { return b.dyn.HasEdge(u, v) }

// demand resolves an edit's demand: 0 (and anything non-positive) takes the
// community default; anything else is clamped by the poly core.
func (b *polyBackend) demand(d int64) int64 {
	if d <= 0 {
		return b.defaultDemand
	}
	return poly.ClampDemand(d)
}

func (b *polyBackend) AddEdge(u, v int, demand int64) (core.EditResult, error) {
	applied, relayered := b.dyn.AddEdge(u, v, b.demand(demand))
	return core.EditResult{Applied: applied, Recolored: relayered}, nil
}

func (b *polyBackend) RemoveEdge(u, v int) core.EditResult {
	return core.EditResult{Applied: b.dyn.RemoveEdge(u, v)}
}

func (b *polyBackend) ApplyBatch(edits []core.Edit, out []core.EditResult) (int, error) {
	before := b.dyn.Relayerings()
	for i, e := range edits {
		switch e.Op {
		case core.EditInsert:
			res, _ := b.AddEdge(e.U, e.V, e.Demand)
			out[i] = res
		case core.EditDelete:
			out[i] = b.RemoveEdge(e.U, e.V)
		default:
			// Unreachable: the caller validated ops. Surface, don't swallow.
			return int(b.dyn.Relayerings() - before), fmt.Errorf("poly: batch edit %d has unknown op %d", i, e.Op)
		}
	}
	return int(b.dyn.Relayerings() - before), nil
}

// Invalidates: a poly schedule's entities are the edge slots, so any edit
// that changed the edge set changed the schedule — unlike classic, where an
// insert between differently colored families leaves every answer valid.
func (b *polyBackend) Invalidates(res core.EditResult) bool { return res.Applied }

func (b *polyBackend) FrozenSchedule() (core.Schedule, error) { return b.dyn.FrozenSchedule(), nil }

func (b *polyBackend) exportInto(st *CommunityState) {
	st.Kind = KindPoly
	st.Families = b.dyn.N()
	st.Code = b.dyn.Code()
	st.DefaultDemand = b.defaultDemand
	ps := b.dyn.Export()
	st.Poly = &ps
}

// PolyStats returns the poly-specific instance summary (density, max gap
// ratio, fairness) and whether the community is of the poly kind.
func (c *Community) PolyStats() (poly.Stats, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if pb, ok := c.be.(*polyBackend); ok {
		return pb.dyn.Stats(), true
	}
	return poly.Stats{}, false
}

// Kind returns the community's kind (KindClassic or KindPoly).
func (c *Community) Kind() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.be.Kind()
}
