package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

// binPost posts a raw frame batch to a binary endpoint and returns the
// status, body, and content type.
func binPost(t *testing.T, srv *httptest.Server, path string, body []byte) (int, []byte, string) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get("Content-Type")
}

// getRaw fetches a JSON endpoint and returns status and raw body bytes.
func getRaw(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// splitOne asserts the body is exactly one frame and returns it.
func splitOne(t *testing.T, body []byte) wire.Frame {
	t.Helper()
	f, rest, err := wire.Split(body)
	if err != nil {
		t.Fatalf("Split response: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d stray bytes after the response frame", len(rest))
	}
	return f
}

// TestBinaryWindowMatchesJSON is the HTTP-level differential proof: a
// decoded /v1/bin/window response, re-rendered as the JSON endpoint's
// payload, must be byte-identical to the JSON endpoint's actual body —
// across communities, codes, and window alignments (including windows with
// empty holidays, which must round-trip as "happy":[]).
func TestBinaryWindowMatchesJSON(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", star9, http.StatusCreated, nil)
	do("POST", "/communities", `{"id":"tri","families":3,"edges":[[0,1],[1,2],[0,2]]}`, http.StatusCreated, nil)
	do("POST", "/communities", `{"id":"gam","families":6,"edges":[[0,1],[2,3]],"code":"gamma"}`, http.StatusCreated, nil)

	windows := [][2]int64{{1, 1}, {1, 52}, {2, 5}, {7, 7}, {37, 211}, {63, 66}, {97, 160}}
	for _, id := range []string{"demo", "tri", "gam"} {
		for _, w := range windows {
			from, to := w[0], w[1]
			jsonStatus, jsonBody := getRaw(t, srv, fmt.Sprintf("/communities/%s/window?from=%d&to=%d", id, from, to))
			if jsonStatus != http.StatusOK {
				t.Fatalf("%s [%d,%d]: JSON status %d", id, from, to, jsonStatus)
			}
			binStatus, binBody, ct := binPost(t, srv, "/v1/bin/window", wire.AppendWindowReq(nil, id, from, to))
			if binStatus != http.StatusOK || ct != "application/octet-stream" {
				t.Fatalf("%s [%d,%d]: binary status %d, content type %q", id, from, to, binStatus, ct)
			}
			wr, err := splitOne(t, binBody).WindowResp()
			if err != nil {
				t.Fatalf("%s [%d,%d]: %v", id, from, to, err)
			}
			if int64(wr.Rows) != to-from+1 || wr.From != from {
				t.Fatalf("%s [%d,%d]: binary header from=%d rows=%d", id, from, to, wr.From, wr.Rows)
			}
			// Re-render the binary decode as the JSON payload. Happy starts
			// from a non-nil empty slice so empty holidays marshal "[]".
			rebuilt := windowResponse{Community: id, From: from, To: to}
			for i := 0; i < wr.Rows; i++ {
				rebuilt.Holidays = append(rebuilt.Holidays, HolidayRow{
					Holiday: wr.Holiday(i),
					Happy:   wr.AppendHappy([]int{}, i),
				})
			}
			want, err := json.Marshal(&rebuilt)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, '\n') // writeJSON streams via json.Encoder
			if !bytes.Equal(jsonBody, want) {
				t.Fatalf("%s [%d,%d]: JSON body and re-rendered binary decode differ:\n json %s\n bin  %s",
					id, from, to, jsonBody, want)
			}
		}
	}
}

// TestBinaryNextMatchesJSON: same differential proof for the next-happy
// query.
func TestBinaryNextMatchesJSON(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", star9, http.StatusCreated, nil)
	for v := 0; v < 9; v += 2 {
		for _, from := range []int64{1, 7, 1000, 1 << 40} {
			jsonStatus, jsonBody := getRaw(t, srv, fmt.Sprintf("/communities/demo/families/%d/next?from=%d", v, from))
			if jsonStatus != http.StatusOK {
				t.Fatalf("family %d from %d: JSON status %d", v, from, jsonStatus)
			}
			binStatus, binBody, _ := binPost(t, srv, "/v1/bin/next", wire.AppendNextReq(nil, "demo", v, from))
			if binStatus != http.StatusOK {
				t.Fatalf("family %d from %d: binary status %d", v, from, binStatus)
			}
			next, err := splitOne(t, binBody).NextResp()
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(&nextResponse{Community: "demo", Family: v, From: from, Next: next})
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, '\n')
			if !bytes.Equal(jsonBody, want) {
				t.Fatalf("family %d from %d: JSON body and re-rendered binary decode differ:\n json %s\n bin  %s",
					v, from, jsonBody, want)
			}
		}
	}
}

// TestBinaryBatch: a batch answers every frame in order, and a failing
// query in the middle becomes an Error frame in position without sinking
// the rest of the batch.
func TestBinaryBatch(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", star9, http.StatusCreated, nil)

	req := wire.AppendWindowReq(nil, "demo", 1, 4)
	req = wire.AppendWindowReq(req, "ghost", 1, 4) // unknown community
	req = wire.AppendWindowReq(req, "demo", 10, 12)
	status, body, _ := binPost(t, srv, "/v1/bin/window", req)
	if status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	f1, rest, err := wire.Split(body)
	if err != nil {
		t.Fatal(err)
	}
	f2, rest, err := wire.Split(rest)
	if err != nil {
		t.Fatal(err)
	}
	f3, rest, err := wire.Split(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d stray bytes after the batch", len(rest))
	}
	wr1, err := f1.WindowResp()
	if err != nil || wr1.From != 1 || wr1.Rows != 4 {
		t.Fatalf("frame 1 = %+v (%v)", wr1, err)
	}
	estatus, ecode, msg, err := f2.ErrorResp()
	if err != nil || estatus != http.StatusNotFound || ecode != CodeNotFound.Num() || !strings.Contains(msg, "ghost") {
		t.Fatalf("frame 2 = %d %q (%v), want a 404 naming the community", estatus, msg, err)
	}
	wr3, err := f3.WindowResp()
	if err != nil || wr3.From != 10 || wr3.Rows != 3 {
		t.Fatalf("frame 3 = %+v (%v)", wr3, err)
	}

	// Same shape on the next endpoint: an out-of-range family errors in
	// position.
	req = wire.AppendNextReq(nil, "demo", 1, 5)
	req = wire.AppendNextReq(req, "demo", 99, 5)
	status, body, _ = binPost(t, srv, "/v1/bin/next", req)
	if status != http.StatusOK {
		t.Fatalf("next batch status %d", status)
	}
	f1, rest, err = wire.Split(body)
	if err != nil {
		t.Fatal(err)
	}
	f2, rest, err = wire.Split(rest)
	if err != nil || len(rest) != 0 {
		t.Fatalf("next batch framing: %v (%d rest)", err, len(rest))
	}
	if next, err := f1.NextResp(); err != nil || next < 5 {
		t.Fatalf("frame 1 next = %d (%v)", next, err)
	}
	if estatus, _, _, err := f2.ErrorResp(); err != nil || estatus != http.StatusNotFound {
		t.Fatalf("frame 2 = %d (%v), want 404 for an unknown family", estatus, err)
	}
}

// TestBinaryErrorStatusesMirrorJSON: every per-query failure must carry the
// same status in its binary Error frame as the JSON endpoint returns for
// the equivalent request.
func TestBinaryErrorStatusesMirrorJSON(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", star9, http.StatusCreated, nil)

	cases := []struct {
		name     string
		jsonPath string
		frame    []byte
		endpoint string
	}{
		{"unknown community", "/communities/nope/window?from=1&to=2",
			wire.AppendWindowReq(nil, "nope", 1, 2), "/v1/bin/window"},
		{"from below 1", "/communities/demo/window?from=0&to=5",
			wire.AppendWindowReq(nil, "demo", 0, 5), "/v1/bin/window"},
		{"empty window", "/communities/demo/window?from=9&to=3",
			wire.AppendWindowReq(nil, "demo", 9, 3), "/v1/bin/window"},
		{"over max span", fmt.Sprintf("/communities/demo/window?from=1&to=%d", MaxWindow+2),
			wire.AppendWindowReq(nil, "demo", 1, int64(MaxWindow)+2), "/v1/bin/window"},
		{"past horizon", fmt.Sprintf("/communities/demo/window?from=%d&to=%d", core.MaxHoliday+1, core.MaxHoliday+2),
			wire.AppendWindowReq(nil, "demo", core.MaxHoliday+1, core.MaxHoliday+2), "/v1/bin/window"},
		{"unknown family", "/communities/demo/families/99/next?from=1",
			wire.AppendNextReq(nil, "demo", 99, 1), "/v1/bin/next"},
		{"next past horizon", fmt.Sprintf("/communities/demo/families/1/next?from=%d", core.MaxHoliday+1),
			wire.AppendNextReq(nil, "demo", 1, core.MaxHoliday+1), "/v1/bin/next"},
		{"next unknown community", "/communities/nope/families/1/next?from=1",
			wire.AppendNextReq(nil, "nope", 1, 1), "/v1/bin/next"},
	}
	for _, tc := range cases {
		jsonStatus, _ := getRaw(t, srv, tc.jsonPath)
		if jsonStatus == http.StatusOK {
			t.Fatalf("%s: JSON request unexpectedly succeeded", tc.name)
		}
		status, body, _ := binPost(t, srv, tc.endpoint, tc.frame)
		if status != http.StatusOK {
			t.Fatalf("%s: per-query failures answer in-band, got HTTP %d", tc.name, status)
		}
		estatus, _, msg, err := splitOne(t, body).ErrorResp()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if int(estatus) != jsonStatus {
			t.Fatalf("%s: binary error status %d, JSON endpoint returned %d (%q)", tc.name, estatus, jsonStatus, msg)
		}
	}
}

// TestBinaryProtocolViolations: framing-level problems fail the whole
// request with a JSON 400 — no per-frame correspondence exists to answer
// in-band.
func TestBinaryProtocolViolations(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create("demo", 9, [][2]int{{0, 1}}, ""); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerOpts(reg, HandlerOptions{MaxBinBatch: 2}))
	defer srv.Close()

	winReq := wire.AppendWindowReq(nil, "demo", 1, 4)
	cases := []struct {
		name     string
		endpoint string
		body     []byte
	}{
		{"empty batch", "/v1/bin/window", nil},
		{"garbage", "/v1/bin/window", []byte("GET / HTTP/1.0")},
		{"truncated frame", "/v1/bin/window", winReq[:len(winReq)-3]},
		{"wrong kind for window", "/v1/bin/window", wire.AppendNextReq(nil, "demo", 1, 1)},
		{"wrong kind for next", "/v1/bin/next", winReq},
		{"response kind", "/v1/bin/window", wire.AppendNextResp(nil, 9)},
		{"batch over cap", "/v1/bin/window",
			wire.AppendWindowReq(wire.AppendWindowReq(wire.AppendWindowReq(nil, "demo", 1, 2), "demo", 1, 2), "demo", 1, 2)},
		{"trailing garbage", "/v1/bin/window", append(append([]byte(nil), winReq...), 0xff)},
	}
	for _, tc := range cases {
		status, body, ct := binPost(t, srv, tc.endpoint, tc.body)
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, status)
		}
		if ct != "application/json" {
			t.Fatalf("%s: content type %q, want a JSON error body", tc.name, ct)
		}
		var e Error
		if err := json.Unmarshal(body, &e); err != nil || e.Code == "" || e.Message == "" {
			t.Fatalf("%s: body %q is not a {code, message} envelope (%v)", tc.name, body, err)
		}
	}

	// Wrong method: the binary endpoints are POST-only.
	resp, err := srv.Client().Get(srv.URL + "/v1/bin/window")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/bin/window: status %d, want 405", resp.StatusCode)
	}
}

// TestJSONWrongMethod: the JSON query endpoints reject writes and the churn
// endpoints reject reads — kept next to the binary method test so both
// protocols pin their method sets.
func TestJSONWrongMethod(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", star9, http.StatusCreated, nil)
	for _, tc := range [][2]string{
		{"POST", "/communities/demo/window?from=1&to=2"},
		{"DELETE", "/communities/demo/window"},
		{"POST", "/communities/demo/families/1/next"},
		{"GET", "/communities/demo/edges"},
		{"PUT", "/communities"},
	} {
		req, err := http.NewRequest(tc[0], srv.URL+tc[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", tc[0], tc[1], resp.StatusCode)
		}
	}
}

// TestServeBinWindowAllocs is the satellite regression test for the binary
// window path: steady-state serving must not allocate per row — the packed
// rows stream straight into the pooled response buffer, so the per-query
// allocation count is a small constant regardless of the window size.
func TestServeBinWindowAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	reg := New(Opts{})
	if _, err := reg.Create("c", 500, [][2]int{{0, 1}, {1, 2}, {3, 4}}, ""); err != nil {
		t.Fatal(err)
	}
	a := &apiHandler{HandlerOpts: HandlerOpts{Owner: reg}}
	for _, span := range []int64{52, 512} {
		frame := splitOne(t, wire.AppendWindowReq(nil, "c", 1, span))
		buf := make([]byte, 0, 1<<20)
		for i := 0; i < 4; i++ { // warm the core bitmap scratch pool
			buf = a.serveBinWindow(buf[:0], frame)
		}
		allocs := testing.AllocsPerRun(100, func() {
			buf = a.serveBinWindow(buf[:0], frame)
		})
		// The constant cost is the id string plus the emit closures and
		// their captured buffer cell; a per-row regression over 512 rows
		// would blow far past this bound.
		if allocs > 6 {
			t.Errorf("span %d: steady-state binary window allocates %.1f/op, want ≤ 6", span, allocs)
		}
		wr, err := frameFromBuf(t, buf).WindowResp()
		if err != nil || int64(wr.Rows) != span {
			t.Fatalf("span %d: response invalid after pooled serving: %+v (%v)", span, wr, err)
		}
	}
}

// frameFromBuf splits a single frame out of an in-process response buffer.
func frameFromBuf(t *testing.T, buf []byte) wire.Frame {
	t.Helper()
	f, rest, err := wire.Split(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("response buffer is not one frame: %v (%d rest)", err, len(rest))
	}
	return f
}

// TestBinBufRetention: the binary response pool must refuse buffers beyond
// binBufMax — the same retention policy as the JSON window pool — so one
// maximal batch cannot pin megabytes forever.
func TestBinBufRetention(t *testing.T) {
	if !retainBinBuf(make([]byte, 0, 1024)) {
		t.Error("small buffer refused by the pool")
	}
	if !retainBinBuf(make([]byte, 0, binBufMax)) {
		t.Error("buffer at the cap refused by the pool")
	}
	if retainBinBuf(make([]byte, 0, binBufMax+1)) {
		t.Error("oversized buffer retained; one maximal batch pins its allocation forever")
	}
	// putBinBuf of an oversized buffer must simply drop it.
	bp := new([]byte)
	putBinBuf(bp, make([]byte, 0, binBufMax+1))
}
