package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/wire"
)

// polyRing6 creates a 6-cycle poly community: six scheduled relationships
// with mixed explicit demands plus a community default for churned edges.
const polyRing6 = `{"id":"ring","kind":"poly","families":6,` +
	`"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]],` +
	`"demands":[8,8,16,16,32,0],"default_demand":16}`

// TestHTTPPolyLifecycle drives a poly community end to end over the JSON
// API: create with per-edge demands, serve windows and next-happy answers
// over edge slots, churn with and without explicit demands, and report the
// poly stats block.
func TestHTTPPolyLifecycle(t *testing.T) {
	_, do := newTestServer(t)

	var created Stats
	do("POST", "/communities", polyRing6, http.StatusCreated, &created)
	if created.Kind != KindPoly || created.Families != 6 || created.Marriages != 6 {
		t.Fatalf("created = %+v", created)
	}
	if created.Poly == nil {
		t.Fatal("poly stats block missing from create response")
	}
	if created.Poly.Edges != 6 || created.Poly.Layers < 1 {
		t.Fatalf("poly stats = %+v", created.Poly)
	}
	if !(created.Poly.MaxGapRatio > 0) || math.IsInf(created.Poly.MaxGapRatio, 0) {
		t.Fatalf("max gap ratio %v not finite positive", created.Poly.MaxGapRatio)
	}
	if created.Poly.MaxGapRatio > 1 {
		t.Fatalf("fresh create violates its own demands: max gap ratio %v", created.Poly.MaxGapRatio)
	}

	// The schedule's entities are edge slots: every served happy set must
	// stay within [0, edges), and each slot must fire within its demand.
	var win windowResponse
	do("GET", "/communities/ring/window?from=1&to=64", "", http.StatusOK, &win)
	if len(win.Holidays) != 64 {
		t.Fatalf("window rows = %d", len(win.Holidays))
	}
	ring := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}
	last := make(map[int]int64)
	for _, row := range win.Holidays {
		touched := make(map[int]bool)
		for _, s := range row.Happy {
			if s < 0 || s >= 6 {
				t.Fatalf("holiday %d: slot %d out of range", row.Holiday, s)
			}
			// Each holiday's firing slots must form a matching.
			for _, v := range ring[s] {
				if touched[v] {
					t.Fatalf("holiday %d is not a matching: family %d twice in %v", row.Holiday, v, row.Happy)
				}
				touched[v] = true
			}
			last[s] = row.Holiday
		}
	}
	// Demand 8 edges (slots 0 and 1) must each have fired in the first 8
	// holidays and at least 8 times in 64.
	for _, s := range []int{0, 1} {
		if last[s] == 0 {
			t.Fatalf("demand-8 slot %d never fired in 64 holidays", s)
		}
	}

	var next nextResponse
	do("GET", "/communities/ring/families/2/next?from=10", "", http.StatusOK, &next)
	if next.Next < 10 || next.Next > 10+32 {
		t.Fatalf("slot 2 (demand 16) next from 10 = %d", next.Next)
	}
	// Consistency with the window at that holiday.
	var at windowResponse
	do("GET", fmt.Sprintf("/communities/ring/window?from=%d&to=%d", next.Next, next.Next), "", http.StatusOK, &at)
	found := false
	for _, v := range at.Holidays[0].Happy {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("slot 2 not happy at its reported next holiday %d (%v)", next.Next, at.Holidays[0].Happy)
	}

	// Churn: a marry with an explicit demand, one with the default, a
	// divorce. For poly every applied edit invalidates the cache (the edge
	// slots themselves change), reflected in version ticks.
	var marry map[string]bool
	do("POST", "/communities/ring/edges", `{"u":0,"v":3,"demand":8}`, http.StatusOK, &marry)
	do("POST", "/communities/ring/edges", `{"u":1,"v":4}`, http.StatusOK, &marry)
	var div map[string]bool
	do("DELETE", "/communities/ring/edges?u=5&v=0", "", http.StatusOK, &div)
	if !div["removed"] {
		t.Fatal("divorce of a live poly edge reported removed=false")
	}

	var stats Stats
	do("GET", "/communities/ring", "", http.StatusOK, &stats)
	if stats.Marriages != 7 || stats.Poly == nil || stats.Poly.Edges != 7 {
		t.Fatalf("post-churn stats = %+v (poly %+v)", stats, stats.Poly)
	}
	if stats.Version != 3 {
		t.Fatalf("3 applied poly edits ticked version to %d, want 3", stats.Version)
	}
	if !(stats.Poly.MaxGapRatio > 0) || stats.Poly.MaxGapRatio > 1 {
		t.Fatalf("post-churn max gap ratio %v", stats.Poly.MaxGapRatio)
	}

	// Status reports the kind.
	var status statusResponse
	do("GET", "/v1/status", "", http.StatusOK, &status)
	found = false
	for _, st := range status.Communities {
		if st.ID == "ring" {
			found = true
			if st.Kind != KindPoly {
				t.Fatalf("status reports kind %q for a poly community", st.Kind)
			}
		}
	}
	if !found {
		t.Fatalf("status communities = %+v", status.Communities)
	}
}

// TestHTTPCreateKindErrors: the create endpoint's kind-dispatch failures
// must arrive as {code, message} envelopes, and nothing may be registered.
func TestHTTPCreateKindErrors(t *testing.T) {
	srv, do := newTestServer(t)

	check := func(body, wantFrag string) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/communities", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("create %s: status %d, want 400", body, resp.StatusCode)
		}
		var e Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("create %s: body is not an envelope: %v", body, err)
		}
		if e.Code != CodeBadRequest || !strings.Contains(e.Message, wantFrag) {
			t.Fatalf("create %s: envelope {%s, %q}, want code %s mentioning %q",
				body, e.Code, e.Message, CodeBadRequest, wantFrag)
		}
	}
	// The satellite fix: an unknown kind is a 400 envelope naming the kind,
	// not a silent classic create or a 500.
	check(`{"id":"x","families":4,"kind":"throuple"}`, `"throuple"`)
	// Classic creates must reject poly-only fields rather than ignore them.
	check(`{"id":"x","families":4,"demands":[8]}`, "demand")
	// Demands must align with edges.
	check(`{"id":"x","families":4,"kind":"poly","edges":[[0,1]],"demands":[8,8]}`, "demands")
	// Unknown poly scheduler code.
	check(`{"id":"x","families":4,"kind":"poly","code":"morse"}`, "morse")

	do("GET", "/communities/x", "", http.StatusNotFound, nil)
}

// TestHTTPPolyChurnErrors: the JSON batch endpoint's failure modes on a
// poly community — rejected batches are all-or-nothing against the edge
// set, per-edit demands ride the accepted ones.
func TestHTTPPolyChurnErrors(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", polyRing6, http.StatusCreated, nil)

	post := func(body string, wantStatus int, out any) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/communities/ring/churn", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("churn %q: status %d, want %d", body, resp.StatusCode, wantStatus)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	}
	post(`[{"op":"elope","u":0,"v":2}]`, http.StatusBadRequest, nil)
	post(`[{"op":"marry","u":0,"v":2},{"op":"marry","u":0,"v":99}]`, http.StatusBadRequest, nil)
	var stats Stats
	do("GET", "/communities/ring", "", http.StatusOK, &stats)
	if stats.Poly == nil || stats.Poly.Edges != 6 {
		t.Fatalf("rejected poly batch changed the edge set: %+v", stats.Poly)
	}

	// A valid batch with a per-op demand applies and keeps demands met.
	var ok churnResponse
	post(`[{"op":"marry","u":0,"v":2,"demand":8},{"op":"divorce","u":3,"v":4},{"op":"divorce","u":3,"v":4}]`,
		http.StatusOK, &ok)
	if len(ok.Results) != 3 || !ok.Results[0].Applied || !ok.Results[1].Applied || ok.Results[2].Applied {
		t.Fatalf("batch results = %+v", ok.Results)
	}
	if ok.Applied != 2 {
		t.Fatalf("batch applied = %d, want 2", ok.Applied)
	}
	do("GET", "/communities/ring", "", http.StatusOK, &stats)
	if stats.Poly.Edges != 6 || stats.Poly.MaxGapRatio > 1 {
		t.Fatalf("post-batch poly stats = %+v", stats.Poly)
	}
}

// TestBinaryChurnOnPoly: the binary churn endpoint against a poly community
// must answer per-edit exactly what the JSON batch answers on a twin
// (binary marries carry no demand, so the twin's JSON ops use the
// community default too), with in-position error frames for bad edits, and
// leave both twins serving byte-identical windows.
func TestBinaryChurnOnPoly(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", polyRing6, http.StatusCreated, nil)
	do("POST", "/communities", strings.Replace(polyRing6, `"ring"`, `"twin"`, 1), http.StatusCreated, nil)

	ops := [][3]any{
		{"marry", 0, 2}, {"divorce", 1, 2}, {"marry", 1, 3},
		{"marry", 0, 2}, // no-op: married in-batch
		{"divorce", 4, 5},
	}
	var jsonResp churnResponse
	do("POST", "/communities/twin/churn", churnBody(ops), http.StatusOK, &jsonResp)

	var frames []byte
	for _, op := range ops {
		kind := wire.ChurnInsert
		if op[0] == "divorce" {
			kind = wire.ChurnDelete
		}
		frames = wire.AppendChurnReq(frames, kind, "ring", op[1].(int), op[2].(int))
	}
	frames = wire.AppendChurnReq(frames, wire.ChurnInsert, "ring", 0, 99) // 400 in position
	status, body, _ := binPost(t, srv, "/v1/bin/churn", frames)
	if status != http.StatusOK {
		t.Fatalf("binary churn status %d", status)
	}
	for i := range ops {
		var f wire.Frame
		var err error
		f, body, err = wire.Split(body)
		if err != nil {
			t.Fatalf("response frame %d: %v", i, err)
		}
		applied, recolored, err := f.ChurnResp()
		if err != nil {
			t.Fatalf("response frame %d: %v", i, err)
		}
		if want := jsonResp.Results[i]; applied != want.Applied || recolored != want.Recolored {
			t.Fatalf("edit %d: binary (%v,%v), JSON %+v", i, applied, recolored, want)
		}
	}
	f, rest, err := wire.Split(body)
	if err != nil || len(rest) != 0 {
		t.Fatalf("trailing frame: %v (%d stray bytes)", err, len(rest))
	}
	estatus, _, _, err := f.ErrorResp()
	if err != nil || estatus != http.StatusBadRequest {
		t.Fatalf("out-of-range edit answered %d (%v), want an in-position 400 frame", estatus, err)
	}

	s1, b1 := getRaw(t, srv, "/communities/ring/window?from=1&to=64")
	s2, b2 := getRaw(t, srv, "/communities/twin/window?from=1&to=64")
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("window statuses %d, %d", s1, s2)
	}
	if string(b1) != strings.Replace(string(b2), `"twin"`, `"ring"`, 1) {
		t.Fatalf("binary and JSON poly churn schedules diverged:\n %s\n %s", b1, b2)
	}
}
