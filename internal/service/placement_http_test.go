package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// bootNode builds one cluster-aware handler over an httptest server and
// returns it with its router and owner.
func bootNode(t *testing.T, self string, opts HandlerOpts) (*httptest.Server, *Router, *Owner) {
	t.Helper()
	if opts.Owner == nil {
		opts.Owner = New(Opts{})
	}
	if opts.Router == nil {
		rt, err := NewRouter(RouterOpts{Self: self, Nodes: testNodes("a", "b")})
		if err != nil {
			t.Fatalf("NewRouter: %v", err)
		}
		opts.Router = rt
	}
	opts.Node = self
	srv := httptest.NewServer(NewHandler(opts))
	t.Cleanup(srv.Close)
	return srv, opts.Router, opts.Owner
}

// TestPlacementEndpoints: GET serves the installed table; POST installs a
// superseding one, refuses stale and malformed ones, and both report the
// epoch in force.
func TestPlacementEndpoints(t *testing.T) {
	srv, rt, _ := bootNode(t, "a", HandlerOpts{})

	resp, err := http.Get(srv.URL + "/v1/placement")
	if err != nil {
		t.Fatalf("get placement: %v", err)
	}
	var p Placement
	err = json.NewDecoder(resp.Body).Decode(&p)
	resp.Body.Close()
	if err != nil || p.Epoch != 0 || len(p.Nodes) != 2 {
		t.Fatalf("placement = %+v, %v", p, err)
	}

	post := func(body string) (installed bool, epoch uint64, status int) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/placement", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post placement: %v", err)
		}
		defer resp.Body.Close()
		var out struct {
			Installed bool   `json:"installed"`
			Epoch     uint64 `json:"epoch"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return out.Installed, out.Epoch, resp.StatusCode
	}

	next := Placement{Epoch: 3, Nodes: testNodes("a", "b", "c"), Assign: map[string]string{"x": "c"}}
	body, _ := json.Marshal(next)
	installed, epoch, status := post(string(body))
	if status != http.StatusOK || !installed || epoch != 3 {
		t.Fatalf("superseding table: installed=%v epoch=%d status=%d", installed, epoch, status)
	}
	if rt.Epoch() != 3 || rt.Place("x") != "c" {
		t.Fatalf("table not in force: epoch %d, Place(x)=%s", rt.Epoch(), rt.Place("x"))
	}
	// Stale republication: refused quietly, current epoch reported.
	stale, _ := json.Marshal(Placement{Epoch: 1, Nodes: testNodes("a")})
	installed, epoch, status = post(string(stale))
	if status != http.StatusOK || installed || epoch != 3 {
		t.Fatalf("stale table: installed=%v epoch=%d status=%d", installed, epoch, status)
	}
	// Structurally invalid: 400.
	if _, _, status = post(`{"epoch":9,"nodes":[]}`); status != http.StatusBadRequest {
		t.Fatalf("empty-membership table: status %d, want 400", status)
	}
	if _, _, status = post(`{nope`); status != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", status)
	}
}

// TestHandoffEndpoint: 501 without the daemon hook, 400 on bad requests,
// and the hook's result echoed on success.
func TestHandoffEndpoint(t *testing.T) {
	bare, _, _ := bootNode(t, "a", HandlerOpts{})
	table := Placement{Epoch: 2, Nodes: testNodes("a", "b"), Assign: map[string]string{"x": "b"}}
	body, _ := json.Marshal(map[string]any{"community": "x", "table": table})
	resp, err := http.Post(bare.URL+"/v1/handoff", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post handoff: %v", err)
	}
	resp.Body.Close()
	// The unavailable envelope code maps to 503 regardless of the handler's
	// nominal status — clients switch on the code, not the number.
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("handoff without a hook: status %d, want 503", resp.StatusCode)
	}

	srv, _, _ := bootNode(t, "a", HandlerOpts{
		Handoff: func(community string, p Placement) (uint64, time.Duration, error) {
			if community != "x" || p.Epoch != 2 {
				return 0, 0, fmt.Errorf("hook got community=%q epoch=%d", community, p.Epoch)
			}
			return 41, 1500 * time.Microsecond, nil
		},
	})
	resp, err = http.Post(srv.URL+"/v1/handoff", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post handoff: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff: status %d, want 200", resp.StatusCode)
	}
	var out struct {
		Community string `json:"community"`
		Node      string `json:"node"`
		Epoch     uint64 `json:"epoch"`
		CutSeq    uint64 `json:"cut_seq"`
		PauseUS   int64  `json:"pause_us"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Community != "x" || out.Node != "b" || out.Epoch != 2 || out.CutSeq != 41 || out.PauseUS != 1500 {
		t.Fatalf("handoff response = %+v", out)
	}

	// A request naming no community is a 400 before the hook runs.
	resp, err = http.Post(srv.URL+"/v1/handoff", "application/json", strings.NewReader(`{"table":{}}`))
	if err != nil {
		t.Fatalf("post handoff: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("community-less handoff: status %d, want 400", resp.StatusCode)
	}
}

// TestStaleEpochWriteRefused: a write stamped with an epoch ahead of this
// node's table gets 421 not_owner (the stale node must not take writes for
// communities it may have lost); reads and same-epoch writes still serve.
func TestStaleEpochWriteRefused(t *testing.T) {
	srv, rt, owner := bootNode(t, "a", HandlerOpts{})
	// Pin a community here so the write path reaches the epoch check
	// without a forwarding detour.
	if ok, err := rt.SetPlacement(Placement{Epoch: 2, Nodes: testNodes("a", "b"), Assign: map[string]string{"mine": "a"}}); err != nil || !ok {
		t.Fatalf("pin table: %v %v", ok, err)
	}
	if _, err := owner.Create("mine", 6, nil, ""); err != nil {
		t.Fatalf("create: %v", err)
	}

	doWrite := func(epoch string, v int) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/communities/mine/edges",
			strings.NewReader(fmt.Sprintf(`{"u":0,"v":%d}`, v)))
		req.Header.Set("Content-Type", "application/json")
		if epoch != "" {
			req.Header.Set("X-Holiday-Epoch", epoch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("marry: %v", err)
		}
		return resp
	}

	resp := doWrite("7", 1) // ahead of the local epoch 2
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("ahead-epoch write: status %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Holiday-Epoch"); got != "2" {
		t.Fatalf("refusal reports local epoch %q, want 2", got)
	}
	var e struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code != "not_owner" {
		t.Fatalf("refusal code = %q (%v), want not_owner", e.Code, err)
	}

	for i, epoch := range []string{"", "2", "1", "garbage"} {
		resp := doWrite(epoch, i+2)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("write with epoch header %q: status %d, want 200", epoch, resp.StatusCode)
		}
	}
	// Reads are never epoch-gated — a replica serving a reader with a newer
	// table is still byte-correct.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/communities/mine/window?from=1&to=10", nil)
	req.Header.Set("X-Holiday-Epoch", "7")
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("window: %v", err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("ahead-epoch read: status %d, want 200", rresp.StatusCode)
	}
}

// TestStatusPerCommunityLag: the Lag hook's per-community numbers surface
// on follower-role communities, epoch included.
func TestStatusPerCommunityLag(t *testing.T) {
	owner := New(Opts{})
	srv, rt, _ := bootNode(t, "a", HandlerOpts{
		Owner: owner,
		Lag: func() map[string]uint64 {
			return map[string]uint64{"theirs": 5, "mine": 99}
		},
	})
	if ok, err := rt.SetPlacement(Placement{Epoch: 4, Nodes: testNodes("a", "b"), Assign: map[string]string{"mine": "a", "theirs": "b"}}); err != nil || !ok {
		t.Fatalf("pin table: %v %v", ok, err)
	}
	if _, err := owner.Create("mine", 3, nil, ""); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := owner.Create("theirs", 3, nil, ""); err != nil {
		t.Fatalf("create: %v", err)
	}
	owner.Fence("theirs")

	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		Epoch       uint64 `json:"epoch"`
		Communities []struct {
			ID   string `json:"id"`
			Role string `json:"role"`
			Lag  uint64 `json:"lag"`
		} `json:"communities"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Epoch != 4 {
		t.Fatalf("status epoch = %d, want 4", st.Epoch)
	}
	byID := map[string]struct {
		role string
		lag  uint64
	}{}
	for _, c := range st.Communities {
		byID[c.ID] = struct {
			role string
			lag  uint64
		}{c.Role, c.Lag}
	}
	if got := byID["theirs"]; got.role != "follower" || got.lag != 5 {
		t.Fatalf("followed community status = %+v, want follower with lag 5", got)
	}
	// Owned communities never report lag, whatever the hook says.
	if got := byID["mine"]; got.role != "owner" || got.lag != 0 {
		t.Fatalf("owned community status = %+v, want owner with lag 0", got)
	}
}
