//go:build race

package service

// raceEnabled reports whether the race detector is active; sync.Pool
// deliberately drops items under it, so allocation-count assertions are
// meaningless there.
const raceEnabled = true
