package service

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/poly"
	"repro/internal/prefixcode"
)

// Op names one kind of state-changing operation in a journal record. The
// five ops are exactly the registry's mutation surface: everything else
// (window/next queries, stats) is derivable from them.
type Op string

const (
	// OpCreate registers a community (Families, Edges, Code).
	OpCreate Op = "create"
	// OpDelete unregisters a community.
	OpDelete Op = "delete"
	// OpAddFamily appends one isolated family to a community.
	OpAddFamily Op = "add_family"
	// OpMarry inserts the in-law edge (U, V).
	OpMarry Op = "marry"
	// OpDivorce removes the in-law edge (U, V).
	OpDivorce Op = "divorce"
)

// Record is one journaled mutation. Only the fields relevant to the op are
// set: Families/Edges/Code for OpCreate, U/V for OpMarry and OpDivorce.
// The poly-kind fields (Kind, Demands, DefaultDemand, Demand) are all
// omitempty and zero for classic communities, so classic WAL bytes are
// unchanged from every earlier schema.
type Record struct {
	Op    Op       `json:"op"`
	ID    string   `json:"id"`
	N     int      `json:"families,omitempty"`
	Edges [][2]int `json:"edges,omitempty"`
	Code  string   `json:"code,omitempty"`
	U     int      `json:"u"`
	V     int      `json:"v"`
	// Kind marks a poly-kind create; empty means classic.
	Kind string `json:"kind,omitempty"`
	// Demands are the resolved per-edge demands of a poly create, aligned
	// with Edges.
	Demands []int64 `json:"demands,omitempty"`
	// DefaultDemand is the poly community's resolved default demand,
	// stamped on the create so replay resolves demand-less edits
	// identically.
	DefaultDemand int64 `json:"default_demand,omitempty"`
	// Demand is the per-edge demand of a poly marry; 0 means the community
	// default.
	Demand int64 `json:"demand,omitempty"`
}

// Journal is the durability hook of the registry. When attached (see
// Registry.SetJournal), every mutation is logged — and must be accepted by
// the journal — before it is applied and acknowledged, write-ahead style.
// Log returns a sequence number that totally orders records; the registry
// remembers, per community, the sequence of the last record applied to it,
// which is how snapshot-plus-replay recovery (internal/persist) skips
// records already reflected in a snapshot.
//
// Implementations must be safe for concurrent Log calls: churn on distinct
// communities logs concurrently.
type Journal interface {
	Log(rec Record) (seq uint64, err error)
}

// BatchJournal is the optional fast path for batched churn: journals that
// implement it absorb a whole ChurnBatch flush as one append — consecutive
// sequences, one write, one group-commit round — returning the sequence of
// the last record. Journals that don't are fed record-by-record; semantics
// (and the on-disk format, for internal/persist) are identical either way.
type BatchJournal interface {
	Journal
	LogBatch(recs []Record) (last uint64, err error)
}

// SetJournal attaches (or, with nil, detaches) the owner's journal.
// Attach before accepting traffic: ops applied while no journal is attached
// are not logged and will not survive a restart. Restore and Apply never
// log — recovery replays through them without re-journaling.
//
// Deprecated: pass Opts.Journal to New instead; SetJournal remains for the
// one legitimate late-attach site (recovery replays a WAL into a bare
// owner, then attaches the same WAL for new writes).
func (r *Owner) SetJournal(j Journal) {
	r.journal.Store(&journalBox{j: j})
}

// journalBox wraps the interface so an atomic.Pointer can hold a nil
// journal distinctly from "never set".
type journalBox struct{ j Journal }

// getJournal returns the attached journal, or nil.
func (r *Owner) getJournal() Journal {
	if b := r.journal.Load(); b != nil {
		return b.j
	}
	return nil
}

// CommunityState is the full persistent state of one community: everything
// needed to reconstruct it answering byte-identically. Coloring is carried
// verbatim (not re-derived) because the greedy recoloring path is
// history-dependent; Seq is the journal sequence of the last record applied,
// the replay cut-point for recovery.
type CommunityState struct {
	ID          string   `json:"id"`
	Families    int      `json:"families"`
	Edges       [][2]int `json:"edges"`
	Code        string   `json:"code"`
	Coloring    []int    `json:"coloring"`
	Version     int64    `json:"version"`
	Recolorings int64    `json:"recolorings"`
	Seq         uint64   `json:"seq"`
	// Kind marks a poly-kind community; empty means classic, keeping
	// classic snapshot bytes unchanged.
	Kind string `json:"kind,omitempty"`
	// DefaultDemand is the poly community's default edge demand.
	DefaultDemand int64 `json:"default_demand,omitempty"`
	// Poly is the poly instance's exact state (slots, layers, demands);
	// nil for classic communities.
	Poly *poly.State `json:"poly,omitempty"`
}

// Export snapshots the community's persistent state under its read lock,
// consistent with respect to concurrent churn: a mutation is either fully
// included (state and Seq) or fully excluded.
func (c *Community) Export() CommunityState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := CommunityState{
		ID:      c.id,
		Version: c.version,
		Seq:     c.seq,
	}
	c.be.exportInto(&st)
	return st
}

// Restore registers a community reconstructed from exported state, adopting
// its exact coloring, version, and journal sequence. Nothing is logged:
// restore is the recovery path, not a new mutation. Errors on duplicate
// ids, unknown codes, and colorings that are not proper for the edge set.
func (r *Owner) Restore(st CommunityState) (*Community, error) {
	if st.ID == "" {
		return nil, fmt.Errorf("service: restore: empty community id")
	}
	if st.Families < 1 {
		return nil, fmt.Errorf("service: restore %q: %d families", st.ID, st.Families)
	}
	switch st.Kind {
	case "", KindClassic:
	case KindPoly:
		return r.restorePoly(st)
	default:
		return nil, fmt.Errorf("service: restore %q: unknown kind %q", st.ID, st.Kind)
	}
	codeName := st.Code
	if codeName == "" {
		codeName = "omega"
	}
	code, err := prefixcode.ByName(codeName)
	if err != nil {
		return nil, fmt.Errorf("service: restore %q: %w", st.ID, err)
	}
	b := graph.NewBuilder(st.Families)
	for _, e := range st.Edges {
		if err := validEdge(st.Families, e[0], e[1]); err != nil {
			return nil, fmt.Errorf("service: restore %q: %w", st.ID, err)
		}
		if err := b.AddEdgeErr(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("service: restore %q: %w", st.ID, err)
		}
	}
	dyn, err := core.RestoreDynamicColorBound(b.Graph(), code, st.Coloring, st.Recolorings)
	if err != nil {
		return nil, fmt.Errorf("service: restore %q: %w", st.ID, err)
	}
	return r.register(&Community{id: st.ID, reg: r, be: &classicBackend{dyn: dyn}, version: st.Version, seq: st.Seq})
}

// restorePoly reconstructs a poly-kind community from its exact exported
// instance state. poly.Restore validates every structural invariant (slot
// references, layer classes, matching-ness) before the community exists.
func (r *Owner) restorePoly(st CommunityState) (*Community, error) {
	if st.Poly == nil {
		return nil, fmt.Errorf("service: restore %q: poly kind with no poly state", st.ID)
	}
	if st.Poly.N != st.Families {
		return nil, fmt.Errorf("service: restore %q: %d families but poly state has %d nodes", st.ID, st.Families, st.Poly.N)
	}
	dyn, err := poly.Restore(*st.Poly)
	if err != nil {
		return nil, fmt.Errorf("service: restore %q: %w", st.ID, err)
	}
	be := &polyBackend{dyn: dyn, defaultDemand: poly.ClampDemand(st.DefaultDemand)}
	return r.register(&Community{id: st.ID, reg: r, be: be, version: st.Version, seq: st.Seq})
}

// register inserts a restored community, rejecting duplicates.
func (r *Owner) register(c *Community) (*Community, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.communities[c.id]; dup {
		return nil, fmt.Errorf("service: restore %q: community already exists", c.id)
	}
	r.communities[c.id] = c
	return c, nil
}

// Apply replays one journal record at its sequence number without
// re-logging it — the recovery path walking a WAL forward from a snapshot.
// Records already reflected in restored state (seq at or below the
// community's restored Seq) are skipped, so replay is idempotent: a crash
// between writing a snapshot and compacting the WAL re-replays old records
// harmlessly. Records for communities that no longer exist are skipped too
// (their delete is further down the log, or their create preceded an
// already-applied delete). Errors are reserved for genuinely inconsistent
// logs, e.g. a marry referencing a family outside the community.
func (r *Owner) Apply(seq uint64, rec Record) error {
	switch rec.Op {
	case OpCreate:
		r.mu.RLock()
		c, exists := r.communities[rec.ID]
		r.mu.RUnlock()
		if exists {
			if seq <= c.journalSeq() {
				return nil // already in the snapshot
			}
			return fmt.Errorf("service: replay create %q at seq %d: community already exists at seq %d", rec.ID, seq, c.journalSeq())
		}
		c, err := r.createUnlogged(rec)
		if err != nil {
			return fmt.Errorf("service: replay seq %d: %w", seq, err)
		}
		c.setJournalSeq(seq)
		return nil
	case OpDelete:
		r.mu.Lock()
		defer r.mu.Unlock()
		if c, ok := r.communities[rec.ID]; ok && seq > c.journalSeq() {
			delete(r.communities, rec.ID)
		}
		return nil
	case OpAddFamily, OpMarry, OpDivorce:
		c, ok := r.Get(rec.ID)
		if !ok {
			return nil
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		if seq <= c.seq {
			return nil
		}
		switch rec.Op {
		case OpAddFamily:
			c.be.AddNode()
			c.invalidateLocked()
		case OpMarry:
			if err := validEdge(c.be.N(), rec.U, rec.V); err != nil {
				return fmt.Errorf("service: replay marry in %q at seq %d: %w", rec.ID, seq, err)
			}
			res, err := c.be.AddEdge(rec.U, rec.V, rec.Demand)
			if err != nil {
				return fmt.Errorf("service: replay marry in %q at seq %d: %w", rec.ID, seq, err)
			}
			if c.be.Invalidates(res) {
				c.invalidateLocked()
			}
		case OpDivorce:
			if err := validEdge(c.be.N(), rec.U, rec.V); err != nil {
				return fmt.Errorf("service: replay divorce in %q at seq %d: %w", rec.ID, seq, err)
			}
			if res := c.be.RemoveEdge(rec.U, rec.V); c.be.Invalidates(res) {
				c.invalidateLocked()
			}
		}
		c.seq = seq
		return nil
	default:
		return fmt.Errorf("service: replay seq %d: unknown op %q", seq, rec.Op)
	}
}

// journalSeq reads the community's last-applied journal sequence.
func (c *Community) journalSeq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.seq
}

// setJournalSeq stamps a freshly replayed create.
func (c *Community) setJournalSeq(seq uint64) {
	c.mu.Lock()
	c.seq = seq
	c.mu.Unlock()
}
