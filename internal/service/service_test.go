package service

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// ringEdges returns the cycle edges over n families.
func ringEdges(n int) [][2]int {
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	return edges
}

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create("", 4, nil, ""); err == nil {
		t.Fatal("want error for empty id")
	}
	if _, err := reg.Create("c", 0, nil, ""); err == nil {
		t.Fatal("want error for zero families")
	}
	if _, err := reg.Create("c", 4, [][2]int{{0, 9}}, ""); err == nil {
		t.Fatal("want error for out-of-range edge")
	}
	if _, err := reg.Create("c", 4, nil, "no-such-code"); err == nil {
		t.Fatal("want error for unknown prefix code")
	}
	c, err := reg.Create("c", 6, ringEdges(6), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("c", 3, nil, ""); err == nil {
		t.Fatal("want error for duplicate id")
	}
	got, ok := reg.Get("c")
	if !ok || got != c {
		t.Fatal("Get did not return the created community")
	}
	if ids := reg.List(); len(ids) != 1 || ids[0] != "c" {
		t.Fatalf("List = %v, want [c]", ids)
	}
	if ok, err := reg.Delete("c"); !ok || err != nil {
		t.Fatalf("Delete = %v, %v, want true, nil", ok, err)
	}
	if ok, err := reg.Delete("c"); ok || err != nil {
		t.Fatalf("second Delete = %v, %v, want false, nil", ok, err)
	}
}

// TestWindowMatchesDynamicScheduler: the served window must equal the §6
// scheduler's own Next sequence at freeze time.
func TestWindowMatchesDynamicScheduler(t *testing.T) {
	const n = 20
	reg := NewRegistry()
	c, err := reg.Create("fam", n, ringEdges(n), "omega")
	if err != nil {
		t.Fatal(err)
	}
	// Reference: an identical standalone dynamic scheduler.
	b := graph.NewBuilder(n)
	for _, e := range ringEdges(n) {
		b.AddEdge(e[0], e[1])
	}
	ref, err := core.NewDynamicColorBound(b.Graph(), prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.Window(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 64 {
		t.Fatalf("got %d rows, want 64", len(rows))
	}
	for i, row := range rows {
		want := ref.Next()
		if row.Holiday != int64(i+1) {
			t.Fatalf("row %d has holiday %d", i, row.Holiday)
		}
		if fmt.Sprint(row.Happy) != fmt.Sprint(want) && !(len(row.Happy) == 0 && len(want) == 0) {
			t.Fatalf("holiday %d: happy %v, want %v", row.Holiday, row.Happy, want)
		}
	}
}

func TestWindowValidation(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.Create("v", 4, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	windows := [][2]int64{
		{0, 5},
		{5, 4},
		{1, MaxWindow + 1},
		// Near-MaxInt64 windows must be rejected, not overflow (they pass
		// the span check but wrap the closed-form arithmetic).
		{math.MaxInt64 - 10, math.MaxInt64},
		{core.MaxHoliday - 1, core.MaxHoliday + 2},
	}
	for _, w := range windows {
		if _, err := c.Window(w[0], w[1]); err == nil {
			t.Fatalf("window [%d,%d]: want error", w[0], w[1])
		}
	}
	if _, err := c.NextHappy(-1, 1); err == nil {
		t.Fatal("want error for negative family")
	}
	if _, err := c.NextHappy(4, 1); err == nil {
		t.Fatal("want error for out-of-range family")
	}
	if _, err := c.NextHappy(0, core.MaxHoliday+1); err == nil {
		t.Fatal("want error for holiday beyond MaxHoliday")
	}
	if next, err := c.NextHappy(0, core.MaxHoliday-64); err != nil || next < core.MaxHoliday-64 {
		t.Fatalf("boundary NextHappy = (%d, %v), want non-wrapped answer", next, err)
	}
}

// TestScheduleCache: repeated queries hit the cached frozen schedule;
// churn that recolors invalidates, churn that does not recolor keeps it.
func TestScheduleCache(t *testing.T) {
	reg := NewRegistry()
	// A path 0–1–2 plus isolated 3: colors are deterministic greedy.
	c, err := reg.Create("cache", 4, [][2]int{{0, 1}, {1, 2}}, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Window(1, 32); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.CacheMisses != 1 {
		t.Fatalf("5 identical queries froze %d schedules, want 1", st.CacheMisses)
	}
	if st.CacheHits != 4 {
		t.Fatalf("cache hits = %d, want 4", st.CacheHits)
	}

	// Families 2 and 3 share color 1 under the greedy init (colors are
	// [2,3,1,1]); marrying them forces a recoloring → invalidation.
	recolored, err := c.Marry(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !recolored {
		t.Fatal("expected marrying same-colored families to recolor")
	}
	if _, err := c.Window(1, 32); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().CacheMisses; got != 2 {
		t.Fatalf("post-recoloring misses = %d, want 2", got)
	}

	// Families 0 (color 2) and 2 (color 1) differ — no shared color, so
	// this marriage must NOT invalidate the cache.
	recolored, err = c.Marry(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if recolored {
		t.Fatal("differently colored marriage should not recolor")
	}
	if _, err := c.Window(1, 32); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().CacheMisses; got != 2 {
		t.Fatalf("cache was invalidated by a non-recoloring marriage: misses = %d", got)
	}

	// Adding a family changes the node set → invalidation.
	if _, err := c.AddFamily(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Window(1, 32); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().CacheMisses; got != 3 {
		t.Fatalf("post-AddFamily misses = %d, want 3", got)
	}
}

// TestFrozenScheduleConsistentUnderChurn: a schedule handed out before
// churn keeps answering from its snapshot.
func TestFrozenScheduleConsistentUnderChurn(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.Create("snap", 10, ringEdges(10), "")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := c.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	before := sched.HappySet(7)
	for i := 0; i < 8; i += 2 {
		if _, err := c.Marry(i, (i+5)%10); err != nil {
			t.Fatal(err)
		}
	}
	if got := sched.HappySet(7); fmt.Sprint(got) != fmt.Sprint(before) {
		t.Fatalf("frozen schedule changed under churn: %v → %v", before, got)
	}
}

// TestConcurrentQueriesAndChurn hammers one community with parallel window
// and next queries while marriages and divorces churn — the race detector
// is the assertion (the CI runs this package under -race).
func TestConcurrentQueriesAndChurn(t *testing.T) {
	const n = 64
	reg := NewRegistry()
	c, err := reg.Create("hammer", n, ringEdges(n), "")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				from := int64(1 + (i*37+w)%500)
				rows, err := c.Window(from, from+25)
				if err != nil {
					t.Error(err)
					return
				}
				if len(rows) != 26 {
					t.Errorf("got %d rows", len(rows))
					return
				}
				if _, err := c.NextHappy((w*13+i)%n, from); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				u := (i*7 + w) % n
				v := (u + 2 + i%5) % n
				if u == v {
					continue
				}
				if _, err := c.Marry(u, v); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := c.Divorce(u, v); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every happy set served must have been independent in its snapshot;
	// spot-check the final schedule against the final graph.
	sched, err := c.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	g := mustGraph(t, c)
	bad := 0
	sched.Window(1, 256, func(tt int64, happy []int) {
		if !g.IsIndependent(happy) {
			bad++
		}
	})
	if bad != 0 {
		t.Fatalf("%d holidays with dependent happy sets in final schedule", bad)
	}
}

// mustGraph snapshots the community's current conflict graph through a
// fresh window of stats — exposed only for tests via the dynamic core.
func mustGraph(t *testing.T, c *Community) *graph.Graph {
	t.Helper()
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.be.(*classicBackend).dyn.Graph()
}
