// Package service is the concurrent multi-community serving layer: a
// registry of independently evolving communities, each scheduled by the §6
// dynamic color-bound scheduler, answering random-access schedule queries
// (windows of holidays, a family's next happy holiday) from a cached
// frozen core.Schedule.
//
// The cache exploits the paper's headline property: the schedule is
// perfectly periodic, so a snapshot of the current coloring answers any
// window in closed form with no per-query scheduling work. Edge churn
// (marriages and divorces) routes through core.DynamicColorBound; the
// cached schedule is invalidated only when churn actually recolors a
// family or changes the family set — an insertion between differently
// colored families leaves every answer valid and keeps serving from cache.
//
// All types are safe for concurrent use: the registry and each community
// take RW locks, reads serve concurrently, and the frozen schedules handed
// out are immutable values, so in-flight queries keep a consistent snapshot
// even while churn rebuilds the cache underneath them.
package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/poly"
	"repro/internal/prefixcode"
)

// MaxWindow bounds the holidays a single Window query may span, keeping
// per-request work and response size proportional to one page.
const MaxWindow = 4096

// Owner is the per-community ownership surface: the concurrent store of
// communities this node is authoritative for, plus any replicas it follows.
// Attach a Journal (Opts.Journal or SetJournal) to make it durable: every
// mutation is then logged write-ahead, and internal/persist can snapshot
// and replay the store across restarts. Placement — which node should own
// which community — is the Router's job; an Owner only enforces its side of
// the split by fencing communities it merely replicates (see Fence).
type Owner struct {
	mu          sync.RWMutex
	communities map[string]*Community
	// journal is read on every mutation with a single atomic load, so the
	// no-durability configuration pays nothing and attaching never races
	// in-flight churn.
	journal atomic.Pointer[journalBox]
}

// Registry is the pre-cluster name of Owner.
//
// Deprecated: use Owner; the routing/ownership split gave the type its
// real name. The alias keeps existing callers compiling.
type Registry = Owner

// Opts configures New. The zero value is a valid standalone configuration.
type Opts struct {
	// Journal, when non-nil, is attached before the owner serves anything,
	// so no mutation can slip in unlogged between construction and a later
	// SetJournal. Recovery paths (Restore, Apply) never log, so attaching
	// at construction is safe even when a replay follows.
	Journal Journal
}

// New returns an empty owner configured by opts — the constructor that
// replaced the setter-accreted NewRegistry+SetJournal pair.
func New(opts Opts) *Owner {
	o := &Owner{communities: make(map[string]*Community)}
	if opts.Journal != nil {
		o.SetJournal(opts.Journal)
	}
	return o
}

// NewRegistry returns an empty registry.
//
// Deprecated: use New(Opts{}).
func NewRegistry() *Owner { return New(Opts{}) }

// Create registers a new community of n families with the given initial
// marriages, scheduled by the dynamic color-bound scheduler over the named
// prefix code ("" means omega, the paper's choice). Errors on duplicate
// ids, unknown codes, and invalid edges.
func (r *Owner) Create(id string, n int, edges [][2]int, codeName string) (*Community, error) {
	if n < 1 {
		return nil, fmt.Errorf("service: community %q needs at least one family, got %d", id, n)
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := validEdge(n, e[0], e[1]); err != nil {
			return nil, fmt.Errorf("service: community %q: %w", id, err)
		}
		if err := b.AddEdgeErr(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("service: community %q: %w", id, err)
		}
	}
	return r.CreateFromGraph(id, b.Graph(), codeName)
}

// CreateSpec is the kind-dispatching create request: everything POST
// /v1/communities accepts. The zero Kind means KindClassic, keeping every
// pre-poly caller and record byte-compatible.
type CreateSpec struct {
	ID       string
	Families int
	Edges    [][2]int
	// Code selects the scheduler within the kind: a prefix code name for
	// classic ("" = omega), a poly scheduler code for poly ("" = layering).
	Code string
	Kind string
	// Demands are per-edge demands for poly creates, aligned with Edges;
	// nil (or a 0 entry) takes DefaultDemand. Classic creates must leave
	// them empty.
	Demands []int64
	// DefaultDemand is the demand substituted for poly edits that do not
	// name one; 0 means poly.DefaultDemand. Fixed at creation.
	DefaultDemand int64
}

// CreateSpec registers a new community of the requested kind. Unknown kinds
// are rejected with the bad_request envelope — the error a client can
// branch on across both transports.
func (r *Owner) CreateSpec(spec CreateSpec) (*Community, error) {
	switch spec.Kind {
	case "", KindClassic:
		if len(spec.Demands) > 0 {
			return nil, Errf(CodeBadRequest, "community %q: classic communities take no edge demands", spec.ID)
		}
		if spec.DefaultDemand != 0 {
			return nil, Errf(CodeBadRequest, "community %q: classic communities take no default demand", spec.ID)
		}
		return r.Create(spec.ID, spec.Families, spec.Edges, spec.Code)
	case KindPoly:
		return r.createPoly(spec, true)
	default:
		return nil, Errf(CodeBadRequest, "community %q: unknown kind %q (want %q or %q)",
			spec.ID, spec.Kind, KindClassic, KindPoly)
	}
}

// createPoly builds and registers a poly community, journaling the create
// (with its resolved code, default demand, and per-edge demands, so replay
// reconstructs it byte-identically) unless logged is false.
func (r *Owner) createPoly(spec CreateSpec, logged bool) (*Community, error) {
	if spec.ID == "" {
		return nil, fmt.Errorf("service: empty community id")
	}
	if spec.Families < 1 {
		return nil, fmt.Errorf("service: community %q needs at least one family, got %d", spec.ID, spec.Families)
	}
	if len(spec.Demands) != 0 && len(spec.Demands) != len(spec.Edges) {
		return nil, Errf(CodeBadRequest, "community %q: %d demands for %d edges",
			spec.ID, len(spec.Demands), len(spec.Edges))
	}
	dyn, err := poly.New(spec.Families, spec.Code)
	if err != nil {
		return nil, fmt.Errorf("service: community %q: %w", spec.ID, err)
	}
	be := &polyBackend{dyn: dyn, defaultDemand: poly.ClampDemand(spec.DefaultDemand)}
	demands := make([]int64, len(spec.Edges))
	for i, e := range spec.Edges {
		if err := validEdge(spec.Families, e[0], e[1]); err != nil {
			return nil, fmt.Errorf("service: community %q: %w", spec.ID, err)
		}
		if dyn.HasEdge(e[0], e[1]) {
			return nil, fmt.Errorf("service: community %q: duplicate edge (%d,%d)", spec.ID, e[0], e[1])
		}
		var d int64
		if i < len(spec.Demands) {
			d = spec.Demands[i]
		}
		demands[i] = be.demand(d)
		dyn.AddEdge(e[0], e[1], demands[i])
	}
	c := &Community{id: spec.ID, reg: r, be: be}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.communities[spec.ID]; dup {
		return nil, fmt.Errorf("service: community %q already exists", spec.ID)
	}
	if logged {
		if j := r.getJournal(); j != nil {
			seq, err := j.Log(Record{Op: OpCreate, ID: spec.ID, N: spec.Families, Edges: spec.Edges,
				Code: dyn.Code(), Kind: KindPoly, Demands: demands, DefaultDemand: be.defaultDemand})
			if err != nil {
				return nil, fmt.Errorf("service: community %q: journal: %w", spec.ID, err)
			}
			c.seq = seq
		}
	}
	r.communities[spec.ID] = c
	return c, nil
}

// CreateFromGraph registers a new community over an existing conflict
// graph, avoiding the edge-list round trip of Create. The graph is not
// retained; the community evolves its own dynamic copy. With a journal
// attached, the creation is logged before the community becomes visible; a
// journal failure registers nothing.
func (r *Owner) CreateFromGraph(id string, g *graph.Graph, codeName string) (*Community, error) {
	c, err := r.newCommunity(id, g, codeName)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.communities[id]; dup {
		return nil, fmt.Errorf("service: community %q already exists", id)
	}
	// Logging inside r.mu is load-bearing, not incidental: the snapshot
	// cut-point argument (persist.Store.SaveSnapshot) relies on a create's
	// sequence assignment and map insertion being one critical section.
	// Under SyncAlways that puts an fsync under the registry lock, but
	// creates and deletes are rare next to churn, which only holds c.mu.
	if j := r.getJournal(); j != nil {
		edges := make([][2]int, 0, g.M())
		for _, e := range g.Edges() {
			edges = append(edges, [2]int{e.U, e.V})
		}
		seq, err := j.Log(Record{Op: OpCreate, ID: id, N: g.N(), Edges: edges, Code: c.be.CodeName()})
		if err != nil {
			return nil, fmt.Errorf("service: community %q: journal: %w", id, err)
		}
		c.seq = seq
	}
	r.communities[id] = c
	return c, nil
}

// newCommunity validates and builds a community without registering it.
func (r *Owner) newCommunity(id string, g *graph.Graph, codeName string) (*Community, error) {
	if id == "" {
		return nil, fmt.Errorf("service: empty community id")
	}
	if g.N() < 1 {
		return nil, fmt.Errorf("service: community %q needs at least one family", id)
	}
	if codeName == "" {
		codeName = "omega"
	}
	code, err := prefixcode.ByName(codeName)
	if err != nil {
		return nil, fmt.Errorf("service: community %q: %w", id, err)
	}
	dyn, err := core.NewDynamicColorBound(g, code)
	if err != nil {
		return nil, fmt.Errorf("service: community %q: %w", id, err)
	}
	return &Community{id: id, reg: r, be: &classicBackend{dyn: dyn}}, nil
}

// createUnlogged registers a community from a create record without
// touching the journal — the replay path for OpCreate records of any kind.
func (r *Owner) createUnlogged(rec Record) (*Community, error) {
	if rec.Kind == KindPoly {
		return r.createPoly(CreateSpec{
			ID: rec.ID, Families: rec.N, Edges: rec.Edges, Code: rec.Code,
			Kind: KindPoly, Demands: rec.Demands, DefaultDemand: rec.DefaultDemand,
		}, false)
	}
	id, n, edges := rec.ID, rec.N, rec.Edges
	if n < 1 {
		return nil, fmt.Errorf("service: community %q needs at least one family, got %d", id, n)
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := validEdge(n, e[0], e[1]); err != nil {
			return nil, fmt.Errorf("service: community %q: %w", id, err)
		}
		if err := b.AddEdgeErr(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("service: community %q: %w", id, err)
		}
	}
	c, err := r.newCommunity(id, b.Graph(), rec.Code)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.communities[id]; dup {
		return nil, fmt.Errorf("service: community %q already exists", id)
	}
	r.communities[id] = c
	return c, nil
}

// Get returns the community with the given id, if registered.
func (r *Owner) Get(id string) (*Community, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.communities[id]
	return c, ok
}

// Fence marks a community as followed rather than owned: direct writes are
// rejected with CodeNotOwner from the next acquisition of its lock, while
// reads and replication (Apply) continue. Reports whether the community
// exists. The cluster layer fences every community a follower replicates,
// so churn misrouted during a topology change fails closed instead of
// silently double-applying.
func (r *Owner) Fence(id string) bool { return r.setFenced(id, true) }

// Unfence lifts a fence — the promotion path when this node takes
// ownership. Reports whether the community exists.
func (r *Owner) Unfence(id string) bool { return r.setFenced(id, false) }

// TakeOwnership promotes a replica this node follows into a locally owned
// community: it lifts the fence and rebases the community's sequence into
// the local journal's space. A replica's seq is a position in its old
// owner's journal; left in place it can exceed every sequence the local
// journal will ever assign, so post-promotion writes would be skipped on
// WAL replay (seq <= cut-point) and silently lost across a restart.
// Already-owned communities are left untouched. Reports whether the
// community exists.
func (r *Owner) TakeOwnership(id string) bool {
	c, ok := r.Get(id)
	if !ok {
		return false
	}
	var base uint64
	if j := r.getJournal(); j != nil {
		if s, ok := j.(interface{ Seq() uint64 }); ok {
			base = s.Seq()
		}
	}
	c.mu.Lock()
	if c.fenced {
		c.fenced = false
		c.seq = base
	}
	c.mu.Unlock()
	return true
}

func (r *Owner) setFenced(id string, fenced bool) bool {
	c, ok := r.Get(id)
	if !ok {
		return false
	}
	c.mu.Lock()
	c.fenced = fenced
	c.mu.Unlock()
	return true
}

// Delete unregisters a community, reporting whether it existed. With a
// journal attached the deletion is logged first; a journal failure leaves
// the community registered and returns the error.
func (r *Owner) Delete(id string) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.communities[id]
	if !ok {
		return false, nil
	}
	// A fenced community is deleted by its owner's replicated delete record,
	// never directly: lock order r.mu → c.mu matches Apply's delete path.
	if c.Fenced() {
		return false, Errf(CodeNotOwner, "community %q is a replica on this node; its owner takes deletes", id)
	}
	if j := r.getJournal(); j != nil {
		if _, err := j.Log(Record{Op: OpDelete, ID: id}); err != nil {
			return false, fmt.Errorf("service: delete %q: journal: %w", id, err)
		}
	}
	delete(r.communities, id)
	return true, nil
}

// List returns the registered community ids, sorted.
func (r *Owner) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.communities))
	for id := range r.communities {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// validEdge checks an edge against the community size.
func validEdge(n, u, v int) error {
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("edge (%d,%d) outside families [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("self-marriage at family %d", u)
	}
	return nil
}

// Community is one conflict graph under churn plus its cached frozen
// schedule. Queries (Window, NextHappy, Schedule) serve concurrently under
// a read lock; churn takes the write lock and invalidates the cache only
// when the periodic assignment actually changed.
type Community struct {
	id  string
	reg *Registry // for the journal; nil only in zero values

	mu sync.RWMutex
	// be is the kind-specific scheduler (classic color-bound or poly
	// edge-layering); everything above it is kind-agnostic.
	be     backend
	cached core.Schedule // nil when invalidated; rebuilt lazily
	// version counts cache invalidations (recolorings or family-set
	// changes) — a cheap staleness signal for clients.
	version int64
	// seq is the journal sequence of the last record logged for (or
	// replayed into) this community; snapshots export it as the replay
	// cut-point. Guarded by mu like the state it versions.
	seq uint64
	// fenced marks a community this node merely replicates: direct writes
	// are rejected with CodeNotOwner while replication (Apply) still lands.
	// Guarded by mu so an ownership change cannot interleave with a write.
	fenced bool

	hits   atomic.Int64 // queries answered from the cached schedule
	misses atomic.Int64 // queries that had to freeze a new schedule
}

// ID returns the community's registry id.
func (c *Community) ID() string { return c.id }

// Seq returns the journal sequence of the last record logged for (or
// replayed into) this community — the read-your-writes token of the
// cluster API and the basis of follower lag.
func (c *Community) Seq() uint64 { return c.journalSeq() }

// Fenced reports whether direct writes are fenced off (this node follows
// the community rather than owning it).
func (c *Community) Fenced() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.fenced
}

// fencedErrLocked rejects writes on fenced communities; caller holds c.mu.
// Replication bypasses it by design: Apply edits the state directly at
// explicit sequence numbers and never calls the write methods.
func (c *Community) fencedErrLocked() error {
	if !c.fenced {
		return nil
	}
	return Errf(CodeNotOwner, "community %q is a replica on this node; its owner takes writes", c.id)
}

// Stats is a point-in-time summary of a community.
type Stats struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Families int    `json:"families"`
	// Marriages counts edges: in-law conflicts for classic, scheduled
	// relationships for poly.
	Marriages int    `json:"marriages"`
	Scheduler string `json:"scheduler"`
	Version   int64  `json:"version"`
	// Recolorings counts repair events: §6 recolorings for classic, full
	// relayering rebuilds for poly.
	Recolorings int64 `json:"recolorings"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Poly carries the poly-kind instance summary (density, max gap ratio,
	// fairness); nil for classic communities.
	Poly *poly.Stats `json:"poly,omitempty"`
}

// Stats snapshots the community's counters.
func (c *Community) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := Stats{
		ID:          c.id,
		Kind:        c.be.Kind(),
		Families:    c.be.N(),
		Marriages:   c.be.M(),
		Scheduler:   c.be.SchedulerName(),
		Version:     c.version,
		Recolorings: c.be.Repairs(),
		CacheHits:   c.hits.Load(),
		CacheMisses: c.misses.Load(),
	}
	if pb, ok := c.be.(*polyBackend); ok {
		ps := pb.dyn.Stats()
		st.Poly = &ps
	}
	return st
}

// Families returns the current number of families.
func (c *Community) Families() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.be.N()
}

// AddFamily appends a new isolated family and returns its id. The schedule
// gains a node, so the cache is invalidated. With a journal attached the
// record is logged first; on journal failure nothing is applied.
func (c *Community) AddFamily() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.fencedErrLocked(); err != nil {
		return 0, err
	}
	if err := c.logLocked(Record{Op: OpAddFamily, ID: c.id}); err != nil {
		return 0, err
	}
	id := c.be.AddNode()
	c.invalidateLocked()
	return id, nil
}

// Marry inserts an edge, routed through the kind's repair rule (§6 dynamic
// recoloring for classic, incremental layering for poly). The cached
// schedule survives unless the backend says the insertion changed it. With
// a journal attached the record is logged (write-ahead) after validation
// but before the insertion; on journal failure nothing is applied.
func (c *Community) Marry(u, v int) (recolored bool, err error) {
	return c.MarryDemand(u, v, 0)
}

// MarryDemand is Marry with an explicit per-edge demand for poly
// communities (0 means the community default; classic ignores it).
func (c *Community) MarryDemand(u, v int, demand int64) (recolored bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.fencedErrLocked(); err != nil {
		return false, err
	}
	if err := validEdge(c.be.N(), u, v); err != nil {
		return false, fmt.Errorf("service: community %q: %w", c.id, err)
	}
	// Re-marrying an existing couple changes nothing: answer without
	// journaling, so replay never carries records that did no work.
	if c.be.HasEdge(u, v) {
		return false, nil
	}
	if err := c.logLocked(Record{Op: OpMarry, ID: c.id, U: u, V: v, Demand: demand}); err != nil {
		return false, err
	}
	res, err := c.be.AddEdge(u, v, demand)
	if err != nil {
		return false, fmt.Errorf("service: community %q: %w", c.id, err)
	}
	if c.be.Invalidates(res) {
		c.invalidateLocked()
	}
	return res.Recolored, nil
}

// Divorce removes an edge (the kind's deletion path), reporting whether the
// edge existed and whether a repair (recoloring/relayering) ran. The cache
// survives deletions the backend says changed nothing it serves.
// Journaling mirrors Marry.
func (c *Community) Divorce(u, v int) (removed, recolored bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.fencedErrLocked(); err != nil {
		return false, false, err
	}
	if err := validEdge(c.be.N(), u, v); err != nil {
		return false, false, fmt.Errorf("service: community %q: %w", c.id, err)
	}
	// Divorcing a couple that never married is a no-op: don't journal it.
	// The WAL used to carry a divorce record for these, bloating replay
	// with records that change nothing.
	if !c.be.HasEdge(u, v) {
		return false, false, nil
	}
	if err := c.logLocked(Record{Op: OpDivorce, ID: c.id, U: u, V: v}); err != nil {
		return false, false, err
	}
	res := c.be.RemoveEdge(u, v)
	if c.be.Invalidates(res) {
		c.invalidateLocked()
	}
	return res.Applied, res.Recolored, nil
}

// logLocked write-ahead logs one of this community's mutation records and
// advances its journal sequence; the caller holds c.mu. Without a journal
// (or a registry) it is a no-op.
func (c *Community) logLocked(rec Record) error {
	if c.reg == nil {
		return nil
	}
	j := c.reg.getJournal()
	if j == nil {
		return nil
	}
	seq, err := j.Log(rec)
	if err != nil {
		return fmt.Errorf("service: community %q: journal: %w", c.id, err)
	}
	c.seq = seq
	return nil
}

// invalidateLocked drops the cached schedule; the caller holds c.mu.
func (c *Community) invalidateLocked() {
	c.cached = nil
	c.version++
}

// Schedule returns the community's frozen periodic schedule, rebuilding it
// only when churn invalidated the cache. The returned Schedule is an
// immutable value: callers may query it without locks, and it stays
// consistent even if the community recolors afterwards.
func (c *Community) Schedule() (core.Schedule, error) {
	c.mu.RLock()
	if s := c.cached; s != nil {
		c.mu.RUnlock()
		c.hits.Add(1)
		return s, nil
	}
	c.mu.RUnlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cached != nil { // another writer rebuilt while we waited
		c.hits.Add(1)
		return c.cached, nil
	}
	s, err := c.be.FrozenSchedule()
	if err != nil {
		return nil, fmt.Errorf("service: community %q: %w", c.id, err)
	}
	c.cached = s
	c.misses.Add(1)
	return s, nil
}

// HolidayRow is one holiday of a window response.
type HolidayRow struct {
	Holiday int64 `json:"holiday"`
	Happy   []int `json:"happy"`
}

// Window answers a closed-form window query [from, to] from the cached
// schedule. from must be ≥ 1, to ≥ from, and the span at most MaxWindow.
func (c *Community) Window(from, to int64) ([]HolidayRow, error) {
	return c.AppendWindow(nil, from, to)
}

// AppendWindow answers the same query as Window but appends into rows,
// reusing both its capacity and the Happy backing array of every row slot it
// overwrites. Callers that serve windows in a loop (the HTTP handler, the
// load generator) hand back the previous response's rows and steady-state
// queries allocate nothing. Rows beyond the returned length keep their
// buffers for the next reuse.
func (c *Community) AppendWindow(rows []HolidayRow, from, to int64) ([]HolidayRow, error) {
	if from < 1 {
		return rows, fmt.Errorf("service: window start %d < 1", from)
	}
	if to > core.MaxHoliday {
		return rows, fmt.Errorf("service: window end %d beyond last servable holiday %d", to, core.MaxHoliday)
	}
	if to < from {
		return rows, fmt.Errorf("service: window [%d,%d] is empty", from, to)
	}
	if span := to - from + 1; span > MaxWindow {
		return rows, fmt.Errorf("service: window spans %d holidays, max %d", span, MaxWindow)
	}
	sched, err := c.Schedule()
	if err != nil {
		return rows, err
	}
	sched.Window(from, to, func(t int64, happy []int) {
		n := len(rows)
		if cap(rows) > n {
			rows = rows[:n+1] // revive the spare slot, Happy buffer included
		} else {
			rows = append(rows, HolidayRow{})
		}
		r := &rows[n]
		r.Holiday = t
		r.Happy = append(r.Happy[:0], happy...)
		if r.Happy == nil {
			// A fresh slot on an empty holiday must still marshal "happy":[],
			// never null — the wire format does not depend on slot reuse.
			r.Happy = emptyHappy
		}
	})
	return rows, nil
}

// emptyHappy is the shared zero-length happy set of holidays nobody hosts;
// its zero capacity means a later reuse appends into a fresh buffer.
var emptyHappy = make([]int, 0)

// WindowBits answers the same window query as AppendWindow but as
// word-packed happy bitmaps — the binary wire representation. begin is
// called exactly once with the family count n (fixing the ⌈n/64⌉ row width)
// before the first row; visit then runs once per holiday in order with the
// packed row, which is only valid for the duration of the callback. The
// closed-form periodic snapshot emits rows directly (core.BitWindower), so
// no []int row is ever materialized on this path. On error neither callback
// has been invoked, so a partially emitted response cannot exist.
func (c *Community) WindowBits(from, to int64, begin func(n int), visit func(t int64, row graph.Bitset)) error {
	if from < 1 {
		return fmt.Errorf("service: window start %d < 1", from)
	}
	if to > core.MaxHoliday {
		return fmt.Errorf("service: window end %d beyond last servable holiday %d", to, core.MaxHoliday)
	}
	if to < from {
		return fmt.Errorf("service: window [%d,%d] is empty", from, to)
	}
	if span := to - from + 1; span > MaxWindow {
		return fmt.Errorf("service: window spans %d holidays, max %d", span, MaxWindow)
	}
	sched, err := c.Schedule()
	if err != nil {
		return err
	}
	n := 0
	if nc, ok := sched.(core.NodeCounter); ok {
		n = nc.Nodes()
	} else {
		n = c.Families()
	}
	begin(n)
	core.WindowBits(sched, n, from, to, visit)
	return nil
}

// NextHappy answers a family's next happy holiday at or after from
// (from < 1 is clamped to 1) from the cached schedule. The family id is
// bounds-checked against the frozen snapshot itself, so a cache hit costs a
// single lock acquisition rather than one for the family count and one for
// the schedule.
func (c *Community) NextHappy(v int, from int64) (int64, error) {
	if from > core.MaxHoliday {
		return 0, fmt.Errorf("service: holiday %d beyond last servable holiday %d", from, core.MaxHoliday)
	}
	sched, err := c.Schedule()
	if err != nil {
		return 0, err
	}
	n := 0
	if nc, ok := sched.(core.NodeCounter); ok {
		n = nc.Nodes()
	} else {
		n = c.Families()
	}
	if v < 0 || v >= n {
		return 0, fmt.Errorf("service: community %q has no family %d", c.id, v)
	}
	return sched.NextHappy(v, from), nil
}
