package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

func testNodes(ids ...string) []Node {
	ns := make([]Node, len(ids))
	for i, id := range ids {
		ns[i] = Node{ID: id, Addr: "http://" + id + ".example:8080"}
	}
	return ns
}

func mustRouter(t *testing.T, o RouterOpts) *Router {
	t.Helper()
	rt, err := NewRouter(o)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return rt
}

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("community-%d", i)
	}
	return ks
}

// TestRouterDeterministic: placement is a pure function of the member set —
// identical across construction order and across "restarts" (fresh routers).
func TestRouterDeterministic(t *testing.T) {
	a := mustRouter(t, RouterOpts{Nodes: testNodes("a", "b", "c")})
	b := mustRouter(t, RouterOpts{Nodes: testNodes("c", "a", "b")})
	c := mustRouter(t, RouterOpts{Nodes: testNodes("b", "c", "a")})
	for _, k := range keys(5000) {
		pa := a.Place(k)
		if pb := b.Place(k); pb != pa {
			t.Fatalf("placement differs by construction order: %q -> %s vs %s", k, pa, pb)
		}
		if pc := c.Place(k); pc != pa {
			t.Fatalf("placement differs across restart: %q -> %s vs %s", k, pa, pc)
		}
	}
}

// TestRouterBalance: no member owns a wildly disproportionate share.
func TestRouterBalance(t *testing.T) {
	rt := mustRouter(t, RouterOpts{Nodes: testNodes("a", "b", "c")})
	count := map[string]int{}
	ks := keys(30000)
	for _, k := range ks {
		count[rt.Place(k)]++
	}
	for id, n := range count {
		share := float64(n) / float64(len(ks))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys; want roughly a third", id, 100*share)
		}
	}
}

// TestRouterMinimalMovement pins the consistent-hashing contract: removing
// a member moves exactly the keys it owned, adding one moves only keys onto
// the new member, and the moved fraction stays near 1/n.
func TestRouterMinimalMovement(t *testing.T) {
	ks := keys(20000)
	full := mustRouter(t, RouterOpts{Nodes: testNodes("a", "b", "c", "d")})
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = full.Place(k)
	}

	// Removal: keys not owned by the removed node must not move.
	if !full.RemoveNode("c") {
		t.Fatal("RemoveNode(c) = false")
	}
	for _, k := range ks {
		after := full.Place(k)
		if before[k] != "c" && after != before[k] {
			t.Fatalf("key %q moved %s -> %s though %s is still a member", k, before[k], after, before[k])
		}
		if before[k] == "c" && after == "c" {
			t.Fatalf("key %q still placed on removed node", k)
		}
	}

	// Addition: only keys that land on the new node may move, and the
	// expected share is 1/n — assert it stays under twice that.
	grown := mustRouter(t, RouterOpts{Nodes: testNodes("a", "b", "c", "d", "e")})
	moved := 0
	for _, k := range ks {
		after := grown.Place(k)
		if after != before[k] {
			if after != "e" {
				t.Fatalf("key %q moved %s -> %s, not to the new node", k, before[k], after)
			}
			moved++
		}
	}
	if frac := float64(moved) / float64(len(ks)); frac > 2.0/5 {
		t.Fatalf("adding one of five nodes moved %.1f%% of keys; want ≈20%%", 100*frac)
	} else if moved == 0 {
		t.Fatal("adding a node moved nothing; the new node owns no keys")
	}
}

// TestRouterOverride: promotion overrides win over the ring and die with
// the node they point at.
func TestRouterOverride(t *testing.T) {
	rt := mustRouter(t, RouterOpts{Self: "a", Nodes: testNodes("a", "b")})
	var onB string
	for _, k := range keys(100) {
		if rt.Place(k) == "b" {
			onB = k
			break
		}
	}
	if onB == "" {
		t.Fatal("no key placed on b")
	}
	if err := rt.Override(onB, "a"); err != nil {
		t.Fatalf("Override: %v", err)
	}
	if got := rt.Place(onB); got != "a" {
		t.Fatalf("override ignored: Place(%q) = %s", onB, got)
	}
	if !rt.IsLocal(onB) {
		t.Fatal("IsLocal false for an overridden community")
	}
	if err := rt.Override("x", "ghost"); err == nil {
		t.Fatal("Override to a non-member succeeded")
	}
	if !rt.RemoveNode("a") {
		t.Fatal("RemoveNode(a) = false")
	}
	if got := rt.Place(onB); got != "b" {
		t.Fatalf("override survived its node's removal: Place(%q) = %s", onB, got)
	}
}

// TestRouterRejects covers constructor validation.
func TestRouterRejects(t *testing.T) {
	if _, err := NewRouter(RouterOpts{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := NewRouter(RouterOpts{Nodes: testNodes("a", "a")}); err == nil {
		t.Fatal("duplicate node ids accepted")
	}
	if _, err := NewRouter(RouterOpts{Nodes: []Node{{ID: ""}}}); err == nil {
		t.Fatal("empty node id accepted")
	}
	if _, err := NewRouter(RouterOpts{Self: "z", Nodes: testNodes("a")}); err == nil {
		t.Fatal("self outside the topology accepted")
	}
}

// TestShardedEquivalence is the property test of the routing split: a
// random op stream applied through a router over three owner shards answers
// every query byte-identically to the same stream applied to one
// single-process registry — sharding must be invisible to correctness.
func TestShardedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rt := mustRouter(t, RouterOpts{Nodes: testNodes("a", "b", "c")})
	shards := map[string]*Owner{"a": New(Opts{}), "b": New(Opts{}), "c": New(Opts{})}
	single := New(Opts{})
	shardFor := func(id string) *Owner { return shards[rt.Place(id)] }

	const nCommunities = 12
	ids := make([]string, nCommunities)
	for i := range ids {
		ids[i] = fmt.Sprintf("community-%d", i)
		n := 3 + rng.Intn(6)
		if _, err := shardFor(ids[i]).Create(ids[i], n, nil, ""); err != nil {
			t.Fatalf("sharded create: %v", err)
		}
		if _, err := single.Create(ids[i], n, nil, ""); err != nil {
			t.Fatalf("single create: %v", err)
		}
	}

	for step := 0; step < 2000; step++ {
		id := ids[rng.Intn(len(ids))]
		sc, _ := shardFor(id).Get(id)
		uc, _ := single.Get(id)
		n := sc.Families()
		switch op := rng.Intn(10); {
		case op == 0:
			sn, err1 := sc.AddFamily()
			un, err2 := uc.AddFamily()
			if (err1 == nil) != (err2 == nil) || sn != un {
				t.Fatalf("AddFamily diverged: (%v,%v) vs (%v,%v)", sn, err1, un, err2)
			}
		case op < 6:
			u, v := rng.Intn(n), rng.Intn(n)
			r1, err1 := sc.Marry(u, v)
			r2, err2 := uc.Marry(u, v)
			if (err1 == nil) != (err2 == nil) || r1 != r2 {
				t.Fatalf("Marry(%d,%d) diverged: (%v,%v) vs (%v,%v)", u, v, r1, err1, r2, err2)
			}
		default:
			u, v := rng.Intn(n), rng.Intn(n)
			rm1, rc1, err1 := sc.Divorce(u, v)
			rm2, rc2, err2 := uc.Divorce(u, v)
			if (err1 == nil) != (err2 == nil) || rm1 != rm2 || rc1 != rc2 {
				t.Fatalf("Divorce(%d,%d) diverged", u, v)
			}
		}
	}

	for _, id := range ids {
		sc, _ := shardFor(id).Get(id)
		uc, _ := single.Get(id)
		sw, err := sc.Window(1, 300)
		if err != nil {
			t.Fatalf("sharded window: %v", err)
		}
		uw, err := uc.Window(1, 300)
		if err != nil {
			t.Fatalf("single window: %v", err)
		}
		sb, _ := json.Marshal(sw)
		ub, _ := json.Marshal(uw)
		if string(sb) != string(ub) {
			t.Fatalf("window diverged for %s:\nsharded %s\nsingle  %s", id, sb, ub)
		}
		for v := 0; v < sc.Families(); v++ {
			sn, err1 := sc.NextHappy(v, 1)
			un, err2 := uc.NextHappy(v, 1)
			if err1 != nil || err2 != nil || sn != un {
				t.Fatalf("next diverged for %s family %d: (%v,%v) vs (%v,%v)", id, v, sn, err1, un, err2)
			}
		}
	}
}
