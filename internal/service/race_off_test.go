//go:build !race

package service

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
