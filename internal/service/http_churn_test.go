package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/wire"
)

// churnBody renders a JSON churn batch from (op, u, v) triples.
func churnBody(ops [][3]any) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, op := range ops {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"op":%q,"u":%d,"v":%d}`, op[0], op[1], op[2])
	}
	sb.WriteByte(']')
	return sb.String()
}

// TestHTTPChurnBatchMatchesSingles: the JSON batch endpoint must answer
// per-edit exactly what the single-op endpoints answer for the same sequence
// — the HTTP-level face of the batch ≡ sequential guarantee — and the
// resulting schedules must agree.
func TestHTTPChurnBatchMatchesSingles(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", star9, http.StatusCreated, nil)
	do("POST", "/communities", strings.Replace(star9, `"demo"`, `"twin"`, 1), http.StatusCreated, nil)

	ops := [][3]any{
		{"marry", 1, 2}, {"marry", 3, 4}, {"divorce", 0, 5},
		{"marry", 1, 2},                      // no-op: already married in-batch
		{"divorce", 1, 2}, {"divorce", 7, 8}, // second is a no-op
		{"marry", 5, 6}, {"marry", 2, 7},
	}
	var batch churnResponse
	do("POST", "/communities/demo/churn", churnBody(ops), http.StatusOK, &batch)
	if len(batch.Results) != len(ops) || batch.Community != "demo" {
		t.Fatalf("batch response = %+v", batch)
	}

	applied, recolorings := 0, 0
	for i, op := range ops {
		var single map[string]bool
		if op[0] == "marry" {
			do("POST", "/communities/twin/edges", fmt.Sprintf(`{"u":%d,"v":%d}`, op[1], op[2]), http.StatusOK, &single)
			single["removed"] = single["recolored"] // marry "applied" isn't reported; recolored implies applied
			if batch.Results[i].Recolored != single["recolored"] {
				t.Fatalf("edit %d %v: batch recolored=%v, single=%v", i, op, batch.Results[i].Recolored, single["recolored"])
			}
		} else {
			do("DELETE", fmt.Sprintf("/communities/twin/edges?u=%d&v=%d", op[1], op[2]), "", http.StatusOK, &single)
			if batch.Results[i].Applied != single["removed"] || batch.Results[i].Recolored != single["recolored"] {
				t.Fatalf("edit %d %v: batch %+v, single %v", i, op, batch.Results[i], single)
			}
		}
		if batch.Results[i].Applied {
			applied++
		}
		if batch.Results[i].Recolored {
			recolorings++
		}
	}
	if batch.Applied != applied || batch.Recolorings != recolorings {
		t.Fatalf("batch totals applied=%d recolorings=%d, per-edit say %d and %d",
			batch.Applied, batch.Recolorings, applied, recolorings)
	}

	// Both communities must now serve identical schedules.
	s1, b1 := getRaw(t, srv, "/communities/demo/window?from=1&to=64")
	s2, b2 := getRaw(t, srv, "/communities/twin/window?from=1&to=64")
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("window statuses %d, %d", s1, s2)
	}
	if string(b1) != strings.Replace(string(b2), `"twin"`, `"demo"`, 1) {
		t.Fatalf("batched and single-op schedules diverged:\n %s\n %s", b1, b2)
	}
}

// TestHTTPChurnValidation: the JSON batch endpoint's whole-request failures.
func TestHTTPChurnValidation(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create("demo", 4, nil, ""); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerOpts(reg, HandlerOptions{MaxBinBatch: 2}))
	defer srv.Close()
	do := func(body string, wantStatus int) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/communities/demo/churn", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("churn %q: status %d, want %d", body, resp.StatusCode, wantStatus)
		}
	}
	do(`not json`, http.StatusBadRequest)
	do(`{"op":"marry","u":0,"v":1}`, http.StatusBadRequest) // object, not array
	do(`[]`, http.StatusBadRequest)
	do(churnBody([][3]any{{"marry", 0, 1}, {"elope", 2, 3}}), http.StatusBadRequest)
	do(churnBody([][3]any{{"marry", 0, 99}}), http.StatusBadRequest)                                  // out of range
	do(churnBody([][3]any{{"marry", 0, 1}, {"marry", 1, 2}, {"marry", 2, 3}}), http.StatusBadRequest) // over cap
	// An invalid batch is all-or-nothing: the valid leading edit must not
	// have applied.
	if c, _ := reg.Get("demo"); c.Stats().Marriages != 0 {
		t.Fatal("a rejected batch applied its valid prefix")
	}
	do(churnBody([][3]any{{"marry", 0, 1}, {"divorce", 0, 1}}), http.StatusOK)
}

// TestBinaryChurnMatchesJSON is the differential proof for the binary churn
// endpoint: the same edit sequence posted as churn frames and as a JSON
// batch must report identical per-edit outcomes and leave twin communities
// serving identical schedules.
func TestBinaryChurnMatchesJSON(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", star9, http.StatusCreated, nil)
	do("POST", "/communities", strings.Replace(star9, `"demo"`, `"twin"`, 1), http.StatusCreated, nil)

	ops := [][3]any{
		{"marry", 1, 2}, {"marry", 3, 4}, {"divorce", 0, 1},
		{"marry", 1, 2}, {"divorce", 5, 6}, {"marry", 2, 7},
	}
	var jsonResp churnResponse
	do("POST", "/communities/twin/churn", churnBody(ops), http.StatusOK, &jsonResp)

	var frames []byte
	for _, op := range ops {
		kind := wire.ChurnInsert
		if op[0] == "divorce" {
			kind = wire.ChurnDelete
		}
		frames = wire.AppendChurnReq(frames, kind, "demo", op[1].(int), op[2].(int))
	}
	status, body, ct := binPost(t, srv, "/v1/bin/churn", frames)
	if status != http.StatusOK || ct != "application/octet-stream" {
		t.Fatalf("binary churn: status %d, content type %q", status, ct)
	}
	for i := range ops {
		var f wire.Frame
		var err error
		f, body, err = wire.Split(body)
		if err != nil {
			t.Fatalf("response frame %d: %v", i, err)
		}
		applied, recolored, err := f.ChurnResp()
		if err != nil {
			t.Fatalf("response frame %d: %v", i, err)
		}
		if want := jsonResp.Results[i]; applied != want.Applied || recolored != want.Recolored {
			t.Fatalf("edit %d: binary (%v,%v), JSON %+v", i, applied, recolored, want)
		}
	}
	if len(body) != 0 {
		t.Fatalf("%d stray bytes after the last response frame", len(body))
	}

	s1, b1 := getRaw(t, srv, "/communities/demo/window?from=1&to=64")
	s2, b2 := getRaw(t, srv, "/communities/twin/window?from=1&to=64")
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("window statuses %d, %d", s1, s2)
	}
	if string(b1) != strings.Replace(string(b2), `"twin"`, `"demo"`, 1) {
		t.Fatalf("binary and JSON churn schedules diverged:\n %s\n %s", b1, b2)
	}
}

// TestBinaryChurnGroupsAndErrors: a mixed batch touching two communities
// answers positionally, per-edit failures arrive as in-position Error
// frames with the JSON-equivalent status, and the valid edits still apply.
func TestBinaryChurnGroupsAndErrors(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", star9, http.StatusCreated, nil)
	do("POST", "/communities", `{"id":"tri","families":3,"edges":[[0,1]]}`, http.StatusCreated, nil)

	req := wire.AppendChurnReq(nil, wire.ChurnInsert, "demo", 1, 2)
	req = wire.AppendChurnReq(req, wire.ChurnInsert, "tri", 1, 2)
	req = wire.AppendChurnReq(req, wire.ChurnInsert, "ghost", 0, 1) // 404 in position
	req = wire.AppendChurnReq(req, wire.ChurnDelete, "demo", 0, 3)
	req = wire.AppendChurnReq(req, wire.ChurnInsert, "tri", 0, 99) // 400 in position
	req = wire.AppendChurnReq(req, 9, "demo", 0, 1)                // bad op byte: 400 in position
	req = wire.AppendChurnReq(req, wire.ChurnDelete, "tri", 0, 1)

	status, body, _ := binPost(t, srv, "/v1/bin/churn", req)
	if status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	wantErr := map[int]int{2: http.StatusNotFound, 4: http.StatusBadRequest, 5: http.StatusBadRequest}
	wantApplied := map[int]bool{0: true, 1: true, 3: true, 6: true}
	for i := 0; i < 7; i++ {
		var f wire.Frame
		var err error
		f, body, err = wire.Split(body)
		if err != nil {
			t.Fatalf("response frame %d: %v", i, err)
		}
		if wantStatus, isErr := wantErr[i]; isErr {
			estatus, _, msg, err := f.ErrorResp()
			if err != nil || estatus != wantStatus {
				t.Fatalf("frame %d = %d %q (%v), want status %d", i, estatus, msg, err, wantStatus)
			}
			continue
		}
		applied, _, err := f.ChurnResp()
		if err != nil || applied != wantApplied[i] {
			t.Fatalf("frame %d: applied=%v (%v), want %v", i, applied, err, wantApplied[i])
		}
	}
	if len(body) != 0 {
		t.Fatalf("%d stray bytes after the last response frame", len(body))
	}

	// The grouped flushes really applied: demo gained {1,2} and lost {0,3};
	// tri gained {1,2} and lost its seed edge {0,1}.
	var stats Stats
	do("GET", "/communities/demo", "", http.StatusOK, &stats)
	if stats.Marriages != 8 { // 8 spokes + 1 marry - 1 divorce
		t.Fatalf("demo has %d marriages, want 8", stats.Marriages)
	}
	do("GET", "/communities/tri", "", http.StatusOK, &stats)
	if stats.Marriages != 1 {
		t.Fatalf("tri has %d marriages, want 1", stats.Marriages)
	}
}

// TestBinaryChurnProtocolViolations: framing problems fail the whole request,
// like the other binary endpoints.
func TestBinaryChurnProtocolViolations(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create("demo", 4, nil, ""); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerOpts(reg, HandlerOptions{MaxBinBatch: 2}))
	defer srv.Close()

	good := wire.AppendChurnReq(nil, wire.ChurnInsert, "demo", 0, 1)
	cases := []struct {
		name string
		body []byte
	}{
		{"empty batch", nil},
		{"garbage", []byte("not frames")},
		{"truncated", good[:len(good)-2]},
		{"wrong kind", wire.AppendWindowReq(nil, "demo", 1, 2)},
		{"over cap", wire.AppendChurnReq(wire.AppendChurnReq(append([]byte(nil), good...), wire.ChurnInsert, "demo", 1, 2), wire.ChurnInsert, "demo", 2, 3)},
	}
	for _, tc := range cases {
		status, body, ct := binPost(t, srv, "/v1/bin/churn", tc.body)
		if status != http.StatusBadRequest || ct != "application/json" {
			t.Fatalf("%s: status %d content type %q, want a JSON 400", tc.name, status, ct)
		}
		var e Error
		if err := json.Unmarshal(body, &e); err != nil || e.Code == "" || e.Message == "" {
			t.Fatalf("%s: body %q is not a {code, message} envelope (%v)", tc.name, body, err)
		}
	}
	if c, _ := reg.Get("demo"); c.Stats().Marriages != 0 {
		t.Fatal("a rejected batch applied edits")
	}
}

// TestCoalescedSingleOpEndpoints: with HandlerOptions.Churn set, the
// single-op marry/divorce endpoints route through the coalescer and answer
// exactly what the direct path answers — including validation failures,
// which fail fast without joining a batch.
func TestCoalescedSingleOpEndpoints(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create("demo", 9, [][2]int{{0, 1}}, ""); err != nil {
		t.Fatal(err)
	}
	co := NewCoalescer(4, 0)
	defer co.Close()
	srv := httptest.NewServer(NewHandlerOpts(reg, HandlerOptions{Churn: co}))
	defer srv.Close()

	post := func(path, body string, wantStatus int, out any) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	}
	var marry map[string]bool
	post("/communities/demo/edges", `{"u":1,"v":2}`, http.StatusOK, &marry)
	post("/communities/demo/edges", `{"u":1,"v":2}`, http.StatusOK, &marry) // no-op re-marry
	post("/communities/demo/edges", `{"u":1,"v":99}`, http.StatusBadRequest, nil)

	req, err := http.NewRequest("DELETE", srv.URL+"/communities/demo/edges?u=1&v=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var div map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&div); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !div["removed"] {
		t.Fatalf("coalesced divorce: status %d, body %v", resp.StatusCode, div)
	}

	if c, _ := reg.Get("demo"); c.Stats().Marriages != 1 {
		t.Fatalf("marriages = %d, want the original edge only", c.Stats().Marriages)
	}
	if enq, _ := co.Stats(); enq != 3 { // two marries + one divorce; the 400 never enqueued
		t.Fatalf("coalescer accepted %d ops, want 3", enq)
	}
}
