package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wire"
)

// NewHandler exposes a registry over HTTP/JSON:
//
//	POST   /communities                          create {id, families, edges, code}
//	GET    /communities                          list ids
//	GET    /communities/{id}                     stats
//	DELETE /communities/{id}                     unregister
//	POST   /communities/{id}/families            append a family → {family}
//	POST   /communities/{id}/edges               marry {u, v} → {recolored}
//	DELETE /communities/{id}/edges?u=U&v=V       divorce → {removed, recolored}
//	POST   /communities/{id}/churn               batched churn [{op, u, v}, ...]
//	GET    /communities/{id}/window?from=F&to=T  schedule window
//	GET    /communities/{id}/families/{v}/next?from=F  next happy holiday
//	POST   /v1/bin/window                        batched binary windows
//	POST   /v1/bin/next                          batched binary next queries
//	POST   /v1/bin/churn                         batched binary churn
//	GET    /healthz                              liveness
//
// Window and next queries answer from the community's cached frozen
// schedule; churn endpoints route through the §6 dynamic recoloring. The
// /v1/bin endpoint family speaks the internal/wire binary format (DESIGN.md
// §9): the request body is a batch of length-prefixed frames, the response
// the matching frames in order, and window answers are word-packed happy
// bitmaps emitted straight from the closed-form periodic schedules. JSON
// endpoints stay for compatibility and answer identically.
func NewHandler(reg *Registry) http.Handler {
	return NewHandlerOpts(reg, HandlerOptions{})
}

// HandlerOptions tune NewHandlerOpts beyond the defaults.
type HandlerOptions struct {
	// MaxBinBatch caps the frames one /v1/bin request body may carry (and
	// the edits one JSON churn batch may carry); 0 means DefaultMaxBinBatch.
	// Batches beyond the cap fail with 400 before any query is served.
	MaxBinBatch int

	// Churn, when set, routes the single-op churn endpoints (marry and
	// divorce) through the coalescer, so independent concurrent writers
	// share write-lock acquisitions and journal group-commits. The batch
	// churn endpoints amortize within each request themselves and never
	// consult it.
	Churn *Coalescer
}

// DefaultMaxBinBatch is the frames-per-request cap of the binary endpoints
// when HandlerOptions does not override it.
const DefaultMaxBinBatch = 1024

// NewHandlerOpts is NewHandler with explicit options.
func NewHandlerOpts(reg *Registry, opts HandlerOptions) http.Handler {
	if opts.MaxBinBatch < 1 {
		opts.MaxBinBatch = DefaultMaxBinBatch
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/bin/window", binHandler(reg, opts, wire.KindWindowReq))
	mux.HandleFunc("POST /v1/bin/next", binHandler(reg, opts, wire.KindNextReq))
	mux.HandleFunc("POST /v1/bin/churn", churnBinHandler(reg, opts))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /communities", func(w http.ResponseWriter, r *http.Request) {
		var req createRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return
		}
		c, err := reg.Create(req.ID, req.Families, req.Edges, req.Code)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, c.Stats())
	})
	mux.HandleFunc("GET /communities", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"communities": reg.List()})
	})
	mux.HandleFunc("GET /communities/{id}", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		writeJSON(w, http.StatusOK, c.Stats())
	}))
	mux.HandleFunc("DELETE /communities/{id}", func(w http.ResponseWriter, r *http.Request) {
		ok, err := reg.Delete(r.PathValue("id"))
		if err != nil {
			// A journal failure means the deletion is not durable; the
			// community stays registered and the client must not believe
			// it gone.
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no community %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
	})
	mux.HandleFunc("POST /communities/{id}/families", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		fam, err := c.AddFamily()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]int{"family": fam})
	}))
	mux.HandleFunc("POST /communities/{id}/edges", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		var req edgeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return
		}
		var recolored bool
		var err error
		if opts.Churn != nil {
			var res core.EditResult
			res, err = opts.Churn.Churn(c, core.Edit{Op: core.EditInsert, U: req.U, V: req.V})
			recolored = res.Recolored
		} else {
			recolored, err = c.Marry(req.U, req.V)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"recolored": recolored})
	}))
	mux.HandleFunc("DELETE /communities/{id}/edges", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		u, errU := strconv.Atoi(r.URL.Query().Get("u"))
		v, errV := strconv.Atoi(r.URL.Query().Get("v"))
		if errU != nil || errV != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query params u and v must be integers"))
			return
		}
		var removed, recolored bool
		var err error
		if opts.Churn != nil {
			var res core.EditResult
			res, err = opts.Churn.Churn(c, core.Edit{Op: core.EditDelete, U: u, V: v})
			removed, recolored = res.Applied, res.Recolored
		} else {
			removed, recolored, err = c.Divorce(u, v)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"removed": removed, "recolored": recolored})
	}))
	mux.HandleFunc("POST /communities/{id}/churn", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		var reqs []churnOpRequest
		if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return
		}
		if len(reqs) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty churn batch"))
			return
		}
		if len(reqs) > opts.MaxBinBatch {
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch exceeds %d edits", opts.MaxBinBatch))
			return
		}
		edits := make([]core.Edit, len(reqs))
		for i, q := range reqs {
			switch q.Op {
			case "marry":
				edits[i] = core.Edit{Op: core.EditInsert, U: q.U, V: q.V}
			case "divorce":
				edits[i] = core.Edit{Op: core.EditDelete, U: q.U, V: q.V}
			default:
				writeError(w, http.StatusBadRequest, fmt.Errorf("edit %d: op %q is not \"marry\" or \"divorce\"", i, q.Op))
				return
			}
		}
		res := make([]core.EditResult, len(edits))
		recolorings, err := c.ChurnBatch(edits, res)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp := churnResponse{
			Community:   c.ID(),
			Recolorings: recolorings,
			Results:     make([]churnOpResult, len(res)),
		}
		for i, r := range res {
			if r.Applied {
				resp.Applied++
			}
			resp.Results[i] = churnOpResult{Applied: r.Applied, Recolored: r.Recolored}
		}
		writeJSON(w, http.StatusOK, resp)
	}))
	mux.HandleFunc("GET /communities/{id}/window", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		from, err := queryInt64(r, "from", 1)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Reject from beyond the servable horizon before deriving the
		// default end: from+51 overflows int64 for from near the maximum,
		// which used to surface as a baffling "window [..,..] is empty".
		if from > core.MaxHoliday {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("window start %d beyond last servable holiday %d", from, core.MaxHoliday))
			return
		}
		defTo := from + 51 // default: one year of weekly holidays
		if defTo > core.MaxHoliday {
			defTo = core.MaxHoliday
		}
		to, err := queryInt64(r, "to", defTo)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// The response rows (and their happy-set buffers) are pooled: the
		// window endpoint is the serving hot path and steady-state queries
		// should not allocate per row. AppendWindow overwrites the reused
		// slots, and writeJSON finishes encoding before the rows go back.
		wr := windowPool.Get().(*windowResponse)
		wr.Holidays, err = c.AppendWindow(wr.Holidays[:0], from, to)
		if err != nil {
			putWindowResponse(wr)
			writeError(w, http.StatusBadRequest, err)
			return
		}
		wr.Community, wr.From, wr.To = c.ID(), from, to
		writeJSON(w, http.StatusOK, wr)
		putWindowResponse(wr)
	}))
	mux.HandleFunc("GET /communities/{id}/families/{v}/next", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		v, err := strconv.Atoi(r.PathValue("v"))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("family id %q is not an integer", r.PathValue("v")))
			return
		}
		from, err := queryInt64(r, "from", 1)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		next, err := c.NextHappy(v, from)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, nextResponse{Community: c.ID(), Family: v, From: from, Next: next})
	}))
	return mux
}

// binHandler serves one binary endpoint: the request body is a batch of
// length-prefixed wire frames, all of the allowed kind, and the response
// body is the matching batch in order — per-query failures arrive as Error
// frames in position, so a batch with one bad query still answers the rest.
// Protocol violations (malformed framing, a frame of the wrong kind, an
// empty or over-long batch) fail the whole request with a JSON 400: the
// client spoke the protocol wrong and no per-frame correspondence exists.
func binHandler(reg *Registry, opts HandlerOptions, allowed wire.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxFrame))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read binary request body: %w", err))
			return
		}
		bp := binBufPool.Get().(*[]byte)
		buf := (*bp)[:0]
		frames := 0
		for rest := body; len(rest) > 0; {
			var f wire.Frame
			f, rest, err = wire.Split(rest)
			if err != nil {
				putBinBuf(bp, buf)
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if f.Kind != allowed {
				putBinBuf(bp, buf)
				writeError(w, http.StatusBadRequest, fmt.Errorf("%s frame on the %s endpoint", f.Kind, allowed))
				return
			}
			if frames++; frames > opts.MaxBinBatch {
				putBinBuf(bp, buf)
				writeError(w, http.StatusBadRequest, fmt.Errorf("batch exceeds %d frames", opts.MaxBinBatch))
				return
			}
			switch allowed {
			case wire.KindWindowReq:
				buf = serveBinWindow(reg, buf, f)
			default:
				buf = serveBinNext(reg, buf, f)
			}
		}
		if frames == 0 {
			putBinBuf(bp, buf)
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch: the request body carried no frames"))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf)
		putBinBuf(bp, buf)
	}
}

// churnBinHandler serves POST /v1/bin/churn: the request body is a batch of
// churn-request frames and the response the matching churn-response (or
// in-position Error) frames. Consecutive-or-not requests for the same
// community are grouped and applied as one amortized ChurnBatch flush —
// per-community order is the arrival order, which is the only order the
// protocol promises (edits to distinct communities are independent). Each
// frame is validated up front (unknown community → 404, out-of-range edit →
// 400, both as in-position Error frames), so a bad edit fails alone and the
// grouped batches it is excluded from stay all-or-nothing only against
// journal failures (→ 500 on every edit of the failed flush). Framing
// violations fail the whole request with a JSON 400, exactly like the other
// binary endpoints.
func churnBinHandler(reg *Registry, opts HandlerOptions) http.HandlerFunc {
	type group struct {
		c     *Community
		edits []core.Edit
		pos   []int // slot index of each edit, for positional responses
	}
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxFrame))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read binary request body: %w", err))
			return
		}
		var slots []binChurnSlot
		var order []*group
		groups := make(map[*Community]*group)
		frames := 0
		for rest := body; len(rest) > 0; {
			var f wire.Frame
			f, rest, err = wire.Split(rest)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if f.Kind != wire.KindChurnReq {
				writeError(w, http.StatusBadRequest, fmt.Errorf("%s frame on the %s endpoint", f.Kind, wire.KindChurnReq))
				return
			}
			if frames++; frames > opts.MaxBinBatch {
				writeError(w, http.StatusBadRequest, fmt.Errorf("batch exceeds %d frames", opts.MaxBinBatch))
				return
			}
			op, id, u, v, err := f.ChurnReq()
			if err != nil {
				slots = append(slots, binChurnSlot{status: http.StatusBadRequest, msg: err.Error()})
				continue
			}
			c, ok := reg.Get(id)
			if !ok {
				slots = append(slots, binChurnSlot{status: http.StatusNotFound, msg: fmt.Sprintf("no community %q", id)})
				continue
			}
			// Validate now, against the current family count: families only
			// grow, so the edit stays valid at flush time and one bad edit
			// can never sink its groupmates' batch.
			if err := validEdge(c.Families(), u, v); err != nil {
				slots = append(slots, binChurnSlot{status: http.StatusBadRequest, msg: err.Error()})
				continue
			}
			g := groups[c]
			if g == nil {
				g = &group{c: c}
				groups[c] = g
				order = append(order, g)
			}
			g.edits = append(g.edits, core.Edit{Op: core.EditOp(op), U: u, V: v})
			g.pos = append(g.pos, len(slots))
			slots = append(slots, binChurnSlot{})
		}
		if frames == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch: the request body carried no frames"))
			return
		}
		// One flush per community touched, in first-touch order. Validation
		// above means a flush can only fail on the journal — an error every
		// edit of the flush shares.
		for _, g := range order {
			res := make([]core.EditResult, len(g.edits))
			if _, err := g.c.ChurnBatch(g.edits, res); err != nil {
				for _, p := range g.pos {
					slots[p] = binChurnSlot{status: http.StatusInternalServerError, msg: err.Error()}
				}
				continue
			}
			for i, p := range g.pos {
				slots[p] = binChurnSlot{ok: true, res: res[i]}
			}
		}
		bp := binBufPool.Get().(*[]byte)
		buf := (*bp)[:0]
		for _, s := range slots {
			if s.ok {
				buf = wire.AppendChurnResp(buf, s.res.Applied, s.res.Recolored)
			} else {
				buf = wire.AppendError(buf, s.status, s.msg)
			}
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf)
		putBinBuf(bp, buf)
	}
}

// binChurnSlot is one positional outcome of a binary churn batch: either a
// per-edit result or the Error frame that will stand in its place.
type binChurnSlot struct {
	ok     bool
	res    core.EditResult
	status int
	msg    string
}

// serveBinWindow answers one window-request frame, streaming the packed
// bitmap rows straight from the community's frozen schedule into dst: the
// response header is emitted once the family count is known, then one
// ⌈n/64⌉-word row per holiday — no []int row and no JSON on this path.
// Errors mirror the JSON endpoint's statuses (404 unknown community, 400
// invalid query).
func serveBinWindow(reg *Registry, dst []byte, f wire.Frame) []byte {
	id, from, to, err := f.WindowReq()
	if err != nil {
		return wire.AppendError(dst, http.StatusBadRequest, err.Error())
	}
	c, ok := reg.Get(id)
	if !ok {
		return wire.AppendError(dst, http.StatusNotFound, fmt.Sprintf("no community %q", id))
	}
	werr := c.WindowBits(from, to,
		func(n int) { dst = wire.AppendWindowRespHeader(dst, n, from, int(to-from+1)) },
		func(t int64, row graph.Bitset) { dst = row.AppendBytes(dst) })
	if werr != nil {
		// WindowBits validates before emitting, so dst holds no partial
		// response; the error frame is the query's whole answer.
		return wire.AppendError(dst, http.StatusBadRequest, werr.Error())
	}
	return dst
}

// serveBinNext answers one next-request frame; statuses mirror the JSON
// endpoint (404 for unknown community or family).
func serveBinNext(reg *Registry, dst []byte, f wire.Frame) []byte {
	id, v, from, err := f.NextReq()
	if err != nil {
		return wire.AppendError(dst, http.StatusBadRequest, err.Error())
	}
	c, ok := reg.Get(id)
	if !ok {
		return wire.AppendError(dst, http.StatusNotFound, fmt.Sprintf("no community %q", id))
	}
	next, err := c.NextHappy(v, from)
	if err != nil {
		return wire.AppendError(dst, http.StatusNotFound, err.Error())
	}
	return wire.AppendNextResp(dst, next)
}

// binBufPool recycles the response buffers of the binary endpoints — the
// bitmap rows are appended straight into these, so steady-state binary
// serving allocates neither rows nor staging buffers.
var binBufPool = sync.Pool{New: func() any { return new([]byte) }}

// binBufMax caps the buffers binBufPool retains, the same policy PR 4
// applied to the JSON window pool's Happy capacity: a rare maximal batch of
// MaxWindow-row bitmap responses must not pin its multi-megabyte buffer
// forever.
const binBufMax = 1 << 20

// putBinBuf returns a binary response buffer to the pool unless retaining
// it would pin too much memory (see retainBinBuf).
func putBinBuf(bp *[]byte, buf []byte) {
	if !retainBinBuf(buf) {
		return
	}
	*bp = buf[:0]
	binBufPool.Put(bp)
}

// retainBinBuf reports whether a binary response buffer is cheap enough to
// pool.
func retainBinBuf(buf []byte) bool { return cap(buf) <= binBufMax }

// createRequest is the POST /communities body.
type createRequest struct {
	ID       string   `json:"id"`
	Families int      `json:"families"`
	Edges    [][2]int `json:"edges"`
	Code     string   `json:"code"`
}

// edgeRequest is the POST /communities/{id}/edges body.
type edgeRequest struct {
	U int `json:"u"`
	V int `json:"v"`
}

// churnOpRequest is one element of the POST /communities/{id}/churn array.
type churnOpRequest struct {
	Op string `json:"op"` // "marry" or "divorce"
	U  int    `json:"u"`
	V  int    `json:"v"`
}

// churnOpResult is one element of the churn response's results array.
type churnOpResult struct {
	Applied   bool `json:"applied"`
	Recolored bool `json:"recolored"`
}

// churnResponse is the POST /communities/{id}/churn answer: per-edit
// outcomes plus batch totals. Applied counts edits that changed the edge
// set; Recolorings counts §6 recoloring events the batch triggered.
type churnResponse struct {
	Community   string          `json:"community"`
	Applied     int             `json:"applied"`
	Recolorings int             `json:"recolorings"`
	Results     []churnOpResult `json:"results"`
}

// windowResponse is the GET window answer.
type windowResponse struct {
	Community string       `json:"community"`
	From      int64        `json:"from"`
	To        int64        `json:"to"`
	Holidays  []HolidayRow `json:"holidays"`
}

// windowPool recycles window responses, rows included, across requests.
var windowPool = sync.Pool{New: func() any { return new(windowResponse) }}

// windowPoolMaxRows caps the row slices the pool retains: a rare MaxWindow
// query over a dense community should not pin its multi-megabyte response
// forever (same policy as encodeBufMax). Typical windows are ≤ one year.
const windowPoolMaxRows = 512

// windowPoolMaxHappy caps the total happy-set ints a pooled response may
// retain across all of its row slots. The row cap alone is not enough: a
// 512-row response over a huge dense community stays under windowPoolMaxRows
// while pinning every row's Happy backing array — megabytes per pooled
// response — forever. 1<<15 ints (256 KiB of int64) comfortably covers a
// year-long window over communities with hundreds of happy families per
// holiday.
const windowPoolMaxHappy = 1 << 15

// putWindowResponse returns a response to the pool unless it retains it
// would pin too much memory (see retainWindowResponse).
func putWindowResponse(wr *windowResponse) {
	if retainWindowResponse(wr) {
		windowPool.Put(wr)
	}
}

// retainWindowResponse reports whether a response is cheap enough to pool:
// its row slice is under the row cap and the Happy buffers of every slot —
// including spare slots beyond the last response's length, which keep their
// buffers for reuse — total under the happy cap.
func retainWindowResponse(wr *windowResponse) bool {
	if cap(wr.Holidays) > windowPoolMaxRows {
		return false
	}
	total := 0
	for _, row := range wr.Holidays[:cap(wr.Holidays)] {
		total += cap(row.Happy)
		if total > windowPoolMaxHappy {
			return false
		}
	}
	return true
}

// nextResponse is the GET next answer.
type nextResponse struct {
	Community string `json:"community"`
	Family    int    `json:"family"`
	From      int64  `json:"from"`
	// Next is the first holiday ≥ from at which the family is happy.
	Next int64 `json:"next"`
}

// withCommunity resolves {id} or responds 404.
func withCommunity(reg *Registry, fn func(http.ResponseWriter, *http.Request, *Community)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c, ok := reg.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no community %q", r.PathValue("id")))
			return
		}
		fn(w, r, c)
	}
}

// queryInt64 parses an optional integer query parameter.
func queryInt64(r *http.Request, key string, def int64) (int64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query param %q must be an integer, got %q", key, s)
	}
	return v, nil
}

// encodeBufPool recycles the JSON staging buffers of writeJSON.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeBufMax caps the buffers the pool retains; a rare giant response
// (e.g. a MaxWindow query over a dense community) should not pin its buffer
// forever.
const encodeBufMax = 1 << 20

// writeJSON renders v with the given status. Encoding stages through a
// pooled buffer: one Write to the connection, a Content-Length header for
// clients, and no per-response buffer allocations on the hot path.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Encoding failures are programming errors (all payloads are plain
		// structs); degrade to an opaque 500 rather than a torn body.
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		encodeBufPool.Put(buf)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= encodeBufMax {
		encodeBufPool.Put(buf)
	}
}

// writeError renders an error payload.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
