package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wire"
)

// HandlerOpts configures NewHandler. Owner is the only required field; the
// zero values of the rest give a standalone single-node handler.
type HandlerOpts struct {
	// Owner is the node's community store (required).
	Owner *Owner

	// Router, when set, makes the handler cluster-aware: writes for
	// communities placed on other nodes are forwarded to their owner once
	// (421 not_owner if a forwarded request is still misplaced — stale
	// topologies must not loop), and reads for communities absent locally
	// are forwarded instead of answering 404.
	Router *Router

	// Node is this node's id, reported by /v1/status and stamped on
	// forwarded requests. Defaults to Router.Self when a router is set.
	Node string

	// MaxBinBatch caps the frames one /v1/bin request body may carry (and
	// the edits one JSON churn batch may carry); 0 means DefaultMaxBinBatch.
	// Batches beyond the cap fail with 400 before any query is served.
	MaxBinBatch int

	// Churn, when set, routes the single-op churn endpoints (marry and
	// divorce) through the coalescer, so independent concurrent writers
	// share write-lock acquisitions and journal group-commits. The batch
	// churn endpoints amortize within each request themselves and never
	// consult it.
	Churn *Coalescer

	// Lag, when set, reports per-community replication lag (owner seq minus
	// locally applied seq) for communities this node follows; surfaced by
	// /v1/status.
	Lag func() map[string]uint64

	// Handoff, when set, serves POST /v1/handoff: stream the named community
	// to the node the offered table assigns it to, install the table, and
	// report the cut sequence and write-pause the move cost. Daemons wire it
	// to cluster.Handoff; without it the endpoint answers 501.
	Handoff func(community string, table Placement) (cutSeq uint64, pause time.Duration, err error)
}

// HandlerOptions is the pre-cluster options struct of NewHandlerOpts.
//
// Deprecated: use HandlerOpts with NewHandler.
type HandlerOptions struct {
	// MaxBinBatch caps the frames one /v1/bin request body may carry.
	MaxBinBatch int
	// Churn routes single-op churn through the coalescer.
	Churn *Coalescer
}

// DefaultMaxBinBatch is the frames-per-request cap of the binary endpoints
// when HandlerOpts does not override it.
const DefaultMaxBinBatch = 1024

// forwardHeader marks a request as having been routed once. A node
// receiving a marked request it still does not own answers 421 not_owner
// rather than forwarding again, so disagreeing topologies degrade to an
// error instead of a forwarding loop.
const forwardHeader = "X-Holiday-Forwarded"

// epochHeader carries the sender's placement epoch on forwarded requests
// and on epoch-refusal responses. A node receiving a write stamped with a
// newer epoch than its own table knows its placement is stale — serving
// could double-own a community it has already lost — so it answers 421
// not_owner and lets the placement gossip catch it up.
const epochHeader = "X-Holiday-Epoch"

// legacyDeprecation is the Deprecation header (RFC 9745) the unversioned
// route aliases carry: the date the /v1 prefix replaced them.
const legacyDeprecation = "@1786147200" // 2026-08-08T00:00:00Z

// NewHandler exposes an owner — and, with a Router, its cluster — over
// HTTP. JSON routes live under /v1/ (the unversioned originals remain as
// deprecated aliases answering identically plus a Deprecation header):
//
//	POST   /v1/communities                          create {id, families, edges, code}
//	GET    /v1/communities                          list ids
//	GET    /v1/communities/{id}                     stats
//	DELETE /v1/communities/{id}                     unregister
//	POST   /v1/communities/{id}/families            append a family → {family}
//	POST   /v1/communities/{id}/edges               marry {u, v} → {recolored}
//	DELETE /v1/communities/{id}/edges?u=U&v=V       divorce → {removed, recolored}
//	POST   /v1/communities/{id}/churn               batched churn [{op, u, v}, ...]
//	GET    /v1/communities/{id}/window?from=F&to=T  schedule window
//	GET    /v1/communities/{id}/families/{v}/next?from=F  next happy holiday
//	GET    /v1/status                               node role, epoch, per-community seq
//	GET    /v1/placement                            the installed placement table
//	POST   /v1/placement                            offer a table; installed iff it supersedes
//	POST   /v1/handoff                              stream a community to its new owner {community, table}
//	POST   /v1/promote                              take ownership of a community {community}
//	POST   /v1/bin/window                           batched binary windows
//	POST   /v1/bin/next                             batched binary next queries
//	POST   /v1/bin/churn                            batched binary churn
//	GET    /healthz                                 liveness
//
// Window and next queries answer from the community's cached frozen
// schedule; churn endpoints route through the §6 dynamic recoloring. The
// /v1/bin endpoint family speaks the internal/wire binary format (DESIGN.md
// §9): the request body is a batch of length-prefixed frames, the response
// the matching frames in order, and window answers are word-packed happy
// bitmaps emitted straight from the closed-form periodic schedules.
//
// Every failure, JSON or binary, carries the {code, message} envelope (see
// ErrCode). With a Router, JSON writes are forwarded to the placed owner;
// binary frames are never forwarded — a misplaced frame answers an
// in-position not_owner Error and the client re-routes.
func NewHandler(h HandlerOpts) http.Handler {
	if h.Owner == nil {
		panic("service: NewHandler requires an Owner")
	}
	if h.MaxBinBatch < 1 {
		h.MaxBinBatch = DefaultMaxBinBatch
	}
	if h.Node == "" && h.Router != nil {
		h.Node = h.Router.Self()
	}
	a := &apiHandler{HandlerOpts: h, client: &http.Client{}}
	if h.Router != nil {
		// Every installed table reconciles local fences: communities the
		// table moved elsewhere stop taking writes, and explicit assignments
		// to this node promote their fenced replicas. Ring-derived placement
		// never auto-promotes — only an explicit assignment (published by a
		// handoff, failover election, or promote) lifts a fence.
		h.Router.OnChange(func(Placement) { syncFences(h.Owner, h.Router) })
	}
	mux := http.NewServeMux()
	// route registers fn at its /v1 path and at the legacy unversioned
	// alias, which answers identically but advertises its deprecation.
	route := func(method, path string, fn http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+path, fn)
		mux.HandleFunc(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", legacyDeprecation)
			fn(w, r)
		})
	}
	mux.HandleFunc("POST /v1/bin/window", a.binHandler(wire.KindWindowReq))
	mux.HandleFunc("POST /v1/bin/next", a.binHandler(wire.KindNextReq))
	mux.HandleFunc("POST /v1/bin/churn", a.churnBinHandler())
	mux.HandleFunc("GET /v1/status", a.serveStatus)
	mux.HandleFunc("GET /v1/placement", a.servePlacementGet)
	mux.HandleFunc("POST /v1/placement", a.servePlacementSet)
	mux.HandleFunc("POST /v1/handoff", a.serveHandoff)
	mux.HandleFunc("POST /v1/promote", a.servePromote)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	route("POST", "/communities", a.serveCreate)
	route("GET", "/communities", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"communities": a.Owner.List()})
	})
	route("GET", "/communities/{id}", a.read(func(w http.ResponseWriter, r *http.Request, c *Community) {
		writeJSON(w, http.StatusOK, c.Stats())
	}))
	route("DELETE", "/communities/{id}", a.write(a.serveDelete))
	route("POST", "/communities/{id}/families", a.write(a.withCommunity(a.serveAddFamily)))
	route("POST", "/communities/{id}/edges", a.write(a.withCommunity(a.serveMarry)))
	route("DELETE", "/communities/{id}/edges", a.write(a.withCommunity(a.serveDivorce)))
	route("POST", "/communities/{id}/churn", a.write(a.withCommunity(a.serveChurn)))
	route("GET", "/communities/{id}/window", a.read(a.serveWindow))
	route("GET", "/communities/{id}/families/{v}/next", a.read(a.serveNext))
	return mux
}

// NewHandlerOpts is the pre-cluster constructor.
//
// Deprecated: use NewHandler(HandlerOpts{...}).
func NewHandlerOpts(reg *Owner, opts HandlerOptions) http.Handler {
	return NewHandler(HandlerOpts{Owner: reg, MaxBinBatch: opts.MaxBinBatch, Churn: opts.Churn})
}

// apiHandler carries the handler configuration and the forwarding client.
type apiHandler struct {
	HandlerOpts
	client *http.Client
}

// misplaced reports whether a request for community id must not be served
// locally, and if so answers it (forwarding once, then failing closed with
// 421 not_owner). Reads pass present=true when the community exists locally
// — replicas serve reads regardless of placement.
func (a *apiHandler) misplaced(w http.ResponseWriter, r *http.Request, id string, present bool) bool {
	if a.Router == nil || present {
		return false
	}
	node := a.Router.Place(id)
	if node == a.Router.Self() {
		return false
	}
	if r.Header.Get(forwardHeader) != "" {
		writeError(w, http.StatusMisdirectedRequest,
			Errf(CodeNotOwner, "community %q is owned by node %q, not %q", id, node, a.Node))
		return true
	}
	a.forward(w, r, node, nil)
	return true
}

// forward proxies the request to a peer node, stamping the loop guard. body
// replaces r.Body when the handler already consumed it.
func (a *apiHandler) forward(w http.ResponseWriter, r *http.Request, node string, body []byte) {
	addr, ok := a.Router.Addr(node)
	if !ok {
		writeError(w, http.StatusServiceUnavailable,
			Errf(CodeUnavailable, "owner node %q has no address in the topology", node))
		return
	}
	var rd io.Reader = r.Body
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, addr+r.URL.RequestURI(), rd)
	if err != nil {
		writeError(w, http.StatusInternalServerError, Errf(CodeInternal, "forward to %q: %v", node, err))
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardHeader, a.Node)
	req.Header.Set(epochHeader, strconv.FormatUint(a.Router.Epoch(), 10))
	resp, err := a.client.Do(req)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, Errf(CodeUnavailable, "forward to %q: %v", node, err))
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// staleEpoch answers a write stamped with a placement epoch newer than
// this node's table: the sender provably holds a table this node has not
// seen, so serving could take a write for a community this node already
// lost. 421 not_owner, carrying the local epoch for diagnostics; the
// placement gossip closes the gap.
func (a *apiHandler) staleEpoch(w http.ResponseWriter, r *http.Request) bool {
	if a.Router == nil {
		return false
	}
	he := r.Header.Get(epochHeader)
	if he == "" {
		return false
	}
	remote, err := strconv.ParseUint(he, 10, 64)
	local := a.Router.Epoch()
	if err != nil || remote <= local {
		return false
	}
	w.Header().Set(epochHeader, strconv.FormatUint(local, 10))
	writeError(w, http.StatusMisdirectedRequest, Errf(CodeNotOwner,
		"node %q placement epoch %d is stale; request carries epoch %d", a.Node, local, remote))
	return true
}

// write wraps a mutating {id} endpoint with placement routing: misplaced
// requests are forwarded to the owner, local ones proceed (and fencing
// inside Owner backstops any disagreement).
func (a *apiHandler) write(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if a.staleEpoch(w, r) {
			return
		}
		if a.misplaced(w, r, r.PathValue("id"), false) {
			return
		}
		fn(w, r)
	}
}

// read wraps a read-only {id} endpoint: a community present locally serves
// (replicas included); an absent one placed elsewhere forwards.
func (a *apiHandler) read(fn func(http.ResponseWriter, *http.Request, *Community)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		c, ok := a.Owner.Get(id)
		if !ok {
			if a.misplaced(w, r, id, false) {
				return
			}
			writeError(w, http.StatusNotFound, Errf(CodeNotFound, "no community %q", id))
			return
		}
		fn(w, r, c)
	}
}

// withCommunity resolves {id} locally or responds 404 — for write endpoints
// whose routing the write wrapper already settled.
func (a *apiHandler) withCommunity(fn func(http.ResponseWriter, *http.Request, *Community)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c, ok := a.Owner.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, Errf(CodeNotFound, "no community %q", r.PathValue("id")))
			return
		}
		fn(w, r, c)
	}
}

func (a *apiHandler) serveCreate(w http.ResponseWriter, r *http.Request) {
	// The community id decides placement and lives in the body, so buffer it
	// before deciding whether this create is ours to serve.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxFrame))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read request body: %w", err))
		return
	}
	var req createRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if a.staleEpoch(w, r) {
		return
	}
	if a.Router != nil && !a.Router.IsLocal(req.ID) {
		node := a.Router.Place(req.ID)
		if r.Header.Get(forwardHeader) != "" {
			writeError(w, http.StatusMisdirectedRequest,
				Errf(CodeNotOwner, "community %q is owned by node %q, not %q", req.ID, node, a.Node))
			return
		}
		a.forward(w, r, node, body)
		return
	}
	c, err := a.Owner.CreateSpec(CreateSpec{
		ID: req.ID, Families: req.Families, Edges: req.Edges, Code: req.Code,
		Kind: req.Kind, Demands: req.Demands, DefaultDemand: req.DefaultDemand,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, c.Stats())
}

func (a *apiHandler) serveDelete(w http.ResponseWriter, r *http.Request) {
	ok, err := a.Owner.Delete(r.PathValue("id"))
	if err != nil {
		// A journal failure means the deletion is not durable; the community
		// stays registered and the client must not believe it gone.
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, Errf(CodeNotFound, "no community %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
}

func (a *apiHandler) serveAddFamily(w http.ResponseWriter, r *http.Request, c *Community) {
	fam, err := c.AddFamily()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"family": fam})
}

func (a *apiHandler) serveMarry(w http.ResponseWriter, r *http.Request, c *Community) {
	var req edgeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	var recolored bool
	var err error
	if a.Churn != nil {
		var res core.EditResult
		res, err = a.Churn.Churn(c, core.Edit{Op: core.EditInsert, U: req.U, V: req.V, Demand: req.Demand})
		recolored = res.Recolored
	} else {
		recolored, err = c.MarryDemand(req.U, req.V, req.Demand)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"recolored": recolored})
}

func (a *apiHandler) serveDivorce(w http.ResponseWriter, r *http.Request, c *Community) {
	u, errU := strconv.Atoi(r.URL.Query().Get("u"))
	v, errV := strconv.Atoi(r.URL.Query().Get("v"))
	if errU != nil || errV != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("query params u and v must be integers"))
		return
	}
	var removed, recolored bool
	var err error
	if a.Churn != nil {
		var res core.EditResult
		res, err = a.Churn.Churn(c, core.Edit{Op: core.EditDelete, U: u, V: v})
		removed, recolored = res.Applied, res.Recolored
	} else {
		removed, recolored, err = c.Divorce(u, v)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"removed": removed, "recolored": recolored})
}

func (a *apiHandler) serveChurn(w http.ResponseWriter, r *http.Request, c *Community) {
	var reqs []churnOpRequest
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty churn batch"))
		return
	}
	if len(reqs) > a.MaxBinBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch exceeds %d edits", a.MaxBinBatch))
		return
	}
	edits := make([]core.Edit, len(reqs))
	for i, q := range reqs {
		switch q.Op {
		case "marry":
			edits[i] = core.Edit{Op: core.EditInsert, U: q.U, V: q.V, Demand: q.Demand}
		case "divorce":
			edits[i] = core.Edit{Op: core.EditDelete, U: q.U, V: q.V}
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("edit %d: op %q is not \"marry\" or \"divorce\"", i, q.Op))
			return
		}
	}
	res := make([]core.EditResult, len(edits))
	recolorings, err := c.ChurnBatch(edits, res)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := churnResponse{
		Community:   c.ID(),
		Seq:         c.Seq(),
		Recolorings: recolorings,
		Results:     make([]churnOpResult, len(res)),
	}
	for i, r := range res {
		if r.Applied {
			resp.Applied++
		}
		resp.Results[i] = churnOpResult{Applied: r.Applied, Recolored: r.Recolored}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *apiHandler) serveWindow(w http.ResponseWriter, r *http.Request, c *Community) {
	from, err := queryInt64(r, "from", 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Reject from beyond the servable horizon before deriving the
	// default end: from+51 overflows int64 for from near the maximum,
	// which used to surface as a baffling "window [..,..] is empty".
	if from > core.MaxHoliday {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("window start %d beyond last servable holiday %d", from, core.MaxHoliday))
		return
	}
	defTo := from + 51 // default: one year of weekly holidays
	if defTo > core.MaxHoliday {
		defTo = core.MaxHoliday
	}
	to, err := queryInt64(r, "to", defTo)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The response rows (and their happy-set buffers) are pooled: the
	// window endpoint is the serving hot path and steady-state queries
	// should not allocate per row. AppendWindow overwrites the reused
	// slots, and writeJSON finishes encoding before the rows go back.
	wr := windowPool.Get().(*windowResponse)
	wr.Holidays, err = c.AppendWindow(wr.Holidays[:0], from, to)
	if err != nil {
		putWindowResponse(wr)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wr.Community, wr.From, wr.To = c.ID(), from, to
	writeJSON(w, http.StatusOK, wr)
	putWindowResponse(wr)
}

func (a *apiHandler) serveNext(w http.ResponseWriter, r *http.Request, c *Community) {
	v, err := strconv.Atoi(r.PathValue("v"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("family id %q is not an integer", r.PathValue("v")))
		return
	}
	from, err := queryInt64(r, "from", 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	next, err := c.NextHappy(v, from)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, nextResponse{Community: c.ID(), Family: v, From: from, Next: next})
}

// communityStatus is one community's row in the /v1/status answer.
type communityStatus struct {
	ID string `json:"id"`
	// Kind is the community's scheduling kind ("classic" or "poly").
	Kind string `json:"kind,omitempty"`
	// Role is "owner" for communities this node takes writes for and
	// "follower" for fenced replicas.
	Role string `json:"role"`
	// Placed is the node the topology places the community on (only with a
	// router).
	Placed string `json:"placed,omitempty"`
	// Seq is the last journal sequence applied locally.
	Seq uint64 `json:"seq"`
	// Lag is the owner's sequence minus Seq for followed communities.
	Lag uint64 `json:"lag,omitempty"`
}

// statusResponse is the GET /v1/status answer.
type statusResponse struct {
	Node        string            `json:"node,omitempty"`
	Epoch       uint64            `json:"epoch"`
	Nodes       []Node            `json:"nodes,omitempty"`
	Overrides   map[string]string `json:"overrides,omitempty"`
	Communities []communityStatus `json:"communities"`
}

func (a *apiHandler) serveStatus(w http.ResponseWriter, r *http.Request) {
	resp := statusResponse{Node: a.Node, Communities: []communityStatus{}}
	if a.Router != nil {
		resp.Epoch = a.Router.Epoch()
		resp.Nodes = a.Router.Nodes()
		if ov := a.Router.Overrides(); len(ov) > 0 {
			resp.Overrides = ov
		}
	}
	var lag map[string]uint64
	if a.Lag != nil {
		lag = a.Lag()
	}
	for _, id := range a.Owner.List() {
		c, ok := a.Owner.Get(id)
		if !ok {
			continue
		}
		cs := communityStatus{ID: id, Kind: c.Kind(), Role: "owner", Seq: c.Seq()}
		if c.Fenced() {
			cs.Role = "follower"
			cs.Lag = lag[id]
		}
		if a.Router != nil {
			cs.Placed = a.Router.Place(id)
		}
		resp.Communities = append(resp.Communities, cs)
	}
	writeJSON(w, http.StatusOK, resp)
}

// promoteRequest is the POST /v1/promote body.
type promoteRequest struct {
	Community string `json:"community"`
}

// servePromote takes ownership of a community this node replicates: the
// router publishes an epoch-bumped table pinning the community here and
// the fence lifts (rebasing the replica into the local journal's sequence
// space), so writes land locally from the next request on. The break-glass
// failover path for when the automatic election cannot run; normal
// failovers promote without any operator call.
func (a *apiHandler) servePromote(w http.ResponseWriter, r *http.Request) {
	if a.Router == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("this node is not in a cluster"))
		return
	}
	var req promoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	c, ok := a.Owner.Get(req.Community)
	if !ok {
		writeError(w, http.StatusNotFound, Errf(CodeNotFound, "no community %q on this node", req.Community))
		return
	}
	if err := a.Router.Override(req.Community, a.Router.Self()); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	a.Owner.TakeOwnership(req.Community)
	writeJSON(w, http.StatusOK, map[string]any{
		"community": req.Community, "node": a.Node, "seq": c.Seq(), "epoch": a.Router.Epoch(),
	})
}

// servePlacementGet answers with the installed placement table.
func (a *apiHandler) servePlacementGet(w http.ResponseWriter, r *http.Request) {
	if a.Router == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("this node is not in a cluster"))
		return
	}
	writeJSON(w, http.StatusOK, a.Router.Placement())
}

// servePlacementSet offers a table to this node: installed iff it
// supersedes the current one (higher epoch; fingerprint breaks same-epoch
// ties), so republication and stale gossip are harmless. The response
// reports the decision and the epoch now in force.
func (a *apiHandler) servePlacementSet(w http.ResponseWriter, r *http.Request) {
	if a.Router == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("this node is not in a cluster"))
		return
	}
	var p Placement
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	installed, err := a.Router.SetPlacement(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"installed": installed, "epoch": a.Router.Epoch(),
	})
}

// handoffRequest is the POST /v1/handoff body: move community to the node
// table assigns it to, and install table cluster-wide as the new epoch.
type handoffRequest struct {
	Community string    `json:"community"`
	Table     Placement `json:"table"`
}

// serveHandoff runs one live handoff from this node (the community's
// current owner) via the wired Handoff hook and reports what it cost.
func (a *apiHandler) serveHandoff(w http.ResponseWriter, r *http.Request) {
	if a.Router == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("this node is not in a cluster"))
		return
	}
	if a.Handoff == nil {
		writeError(w, http.StatusNotImplemented, Errf(CodeUnavailable, "this node does not serve handoffs"))
		return
	}
	var req handoffRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if req.Community == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("handoff request names no community"))
		return
	}
	cut, pause, err := a.Handoff(req.Community, req.Table)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"community": req.Community,
		"node":      req.Table.Assign[req.Community],
		"epoch":     req.Table.Epoch,
		"cut_seq":   cut,
		"pause_us":  pause.Microseconds(),
	})
}

// syncFences reconciles local ownership with the installed table after
// every placement change. Communities this node holds unfenced but the
// table places elsewhere are fenced (fail closed: a node that lost a
// community must stop taking writes the moment it learns). Fenced replicas
// the table explicitly assigns to this node are promoted — explicit
// assignments are only ever published by handoffs, elections, and the
// promote endpoint, so ring-derived placement alone never lifts a fence.
func syncFences(o *Owner, rt *Router) {
	self := rt.Self()
	if self == "" {
		return
	}
	assign := rt.Overrides()
	for _, id := range o.List() {
		c, ok := o.Get(id)
		if !ok {
			continue
		}
		if assign[id] == self {
			if c.Fenced() {
				o.TakeOwnership(id)
			}
		} else if !c.Fenced() && rt.Place(id) != self {
			o.Fence(id)
		}
	}
}

// binHandler serves one binary endpoint: the request body is a batch of
// length-prefixed wire frames, all of the allowed kind, and the response
// body is the matching batch in order — per-query failures arrive as Error
// frames in position, so a batch with one bad query still answers the rest.
// Protocol violations (malformed framing, a frame of the wrong kind, an
// empty or over-long batch) fail the whole request with a JSON 400: the
// client spoke the protocol wrong and no per-frame correspondence exists.
func (a *apiHandler) binHandler(allowed wire.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxFrame))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read binary request body: %w", err))
			return
		}
		bp := binBufPool.Get().(*[]byte)
		buf := (*bp)[:0]
		frames := 0
		for rest := body; len(rest) > 0; {
			var f wire.Frame
			f, rest, err = wire.Split(rest)
			if err != nil {
				putBinBuf(bp, buf)
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if f.Kind != allowed {
				putBinBuf(bp, buf)
				writeError(w, http.StatusBadRequest, fmt.Errorf("%s frame on the %s endpoint", f.Kind, allowed))
				return
			}
			if frames++; frames > a.MaxBinBatch {
				putBinBuf(bp, buf)
				writeError(w, http.StatusBadRequest, fmt.Errorf("batch exceeds %d frames", a.MaxBinBatch))
				return
			}
			switch allowed {
			case wire.KindWindowReq:
				buf = a.serveBinWindow(buf, f)
			default:
				buf = a.serveBinNext(buf, f)
			}
		}
		if frames == 0 {
			putBinBuf(bp, buf)
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch: the request body carried no frames"))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf)
		putBinBuf(bp, buf)
	}
}

// binNotFound answers a binary query for a community absent locally: 404 —
// or, with a router placing it elsewhere, an in-band not_owner Error so the
// client re-routes the frame itself (binary frames are never forwarded).
func (a *apiHandler) binNotFound(dst []byte, id string) []byte {
	if a.Router != nil {
		if node := a.Router.Place(id); node != a.Router.Self() {
			return appendWireError(dst, http.StatusMisdirectedRequest,
				Errf(CodeNotOwner, "community %q is owned by node %q, not %q", id, node, a.Node))
		}
	}
	return appendWireError(dst, http.StatusNotFound, Errf(CodeNotFound, "no community %q", id))
}

// churnBinHandler serves POST /v1/bin/churn: the request body is a batch of
// churn-request frames and the response the matching churn-response (or
// in-position Error) frames. Consecutive-or-not requests for the same
// community are grouped and applied as one amortized ChurnBatch flush —
// per-community order is the arrival order, which is the only order the
// protocol promises (edits to distinct communities are independent). Each
// frame is validated up front (unknown community → 404, misplaced community
// → 421 not_owner, out-of-range edit → 400, all as in-position Error
// frames), so a bad edit fails alone and the grouped batches it is excluded
// from stay all-or-nothing only against journal failures (→ 500 on every
// edit of the failed flush). Framing violations fail the whole request with
// a JSON 400, exactly like the other binary endpoints.
func (a *apiHandler) churnBinHandler() http.HandlerFunc {
	type group struct {
		c     *Community
		edits []core.Edit
		pos   []int // slot index of each edit, for positional responses
	}
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxFrame))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read binary request body: %w", err))
			return
		}
		var slots []binChurnSlot
		var order []*group
		groups := make(map[*Community]*group)
		frames := 0
		for rest := body; len(rest) > 0; {
			var f wire.Frame
			f, rest, err = wire.Split(rest)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if f.Kind != wire.KindChurnReq {
				writeError(w, http.StatusBadRequest, fmt.Errorf("%s frame on the %s endpoint", f.Kind, wire.KindChurnReq))
				return
			}
			if frames++; frames > a.MaxBinBatch {
				writeError(w, http.StatusBadRequest, fmt.Errorf("batch exceeds %d frames", a.MaxBinBatch))
				return
			}
			op, id, u, v, err := f.ChurnReq()
			if err != nil {
				slots = append(slots, binChurnSlot{status: http.StatusBadRequest, err: err})
				continue
			}
			if a.Router != nil && !a.Router.IsLocal(id) {
				node := a.Router.Place(id)
				slots = append(slots, binChurnSlot{status: http.StatusMisdirectedRequest,
					err: Errf(CodeNotOwner, "community %q is owned by node %q, not %q", id, node, a.Node)})
				continue
			}
			c, ok := a.Owner.Get(id)
			if !ok {
				slots = append(slots, binChurnSlot{status: http.StatusNotFound, err: Errf(CodeNotFound, "no community %q", id)})
				continue
			}
			// Validate now, against the current family count: families only
			// grow, so the edit stays valid at flush time and one bad edit
			// can never sink its groupmates' batch.
			if err := validEdge(c.Families(), u, v); err != nil {
				slots = append(slots, binChurnSlot{status: http.StatusBadRequest, err: err})
				continue
			}
			g := groups[c]
			if g == nil {
				g = &group{c: c}
				groups[c] = g
				order = append(order, g)
			}
			g.edits = append(g.edits, core.Edit{Op: core.EditOp(op), U: u, V: v})
			g.pos = append(g.pos, len(slots))
			slots = append(slots, binChurnSlot{})
		}
		if frames == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch: the request body carried no frames"))
			return
		}
		// One flush per community touched, in first-touch order. Validation
		// above means a flush can only fail on the journal or the fence — an
		// error every edit of the flush shares.
		for _, g := range order {
			res := make([]core.EditResult, len(g.edits))
			if _, err := g.c.ChurnBatch(g.edits, res); err != nil {
				for _, p := range g.pos {
					slots[p] = binChurnSlot{status: http.StatusInternalServerError, err: err}
				}
				continue
			}
			for i, p := range g.pos {
				slots[p] = binChurnSlot{ok: true, res: res[i]}
			}
		}
		bp := binBufPool.Get().(*[]byte)
		buf := (*bp)[:0]
		for _, s := range slots {
			if s.ok {
				buf = wire.AppendChurnResp(buf, s.res.Applied, s.res.Recolored)
			} else {
				buf = appendWireError(buf, s.status, s.err)
			}
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf)
		putBinBuf(bp, buf)
	}
}

// binChurnSlot is one positional outcome of a binary churn batch: either a
// per-edit result or the Error frame that will stand in its place.
type binChurnSlot struct {
	ok     bool
	res    core.EditResult
	status int
	err    error
}

// appendWireError appends a binary Error frame carrying the same {code,
// message} envelope writeError renders as JSON.
func appendWireError(dst []byte, status int, err error) []byte {
	status, ae := envelope(status, err)
	return wire.AppendError(dst, status, ae.Code.Num(), ae.Message)
}

// serveBinWindow answers one window-request frame, streaming the packed
// bitmap rows straight from the community's frozen schedule into dst: the
// response header is emitted once the family count is known, then one
// ⌈n/64⌉-word row per holiday — no []int row and no JSON on this path.
// Errors mirror the JSON endpoint's statuses (404 unknown community, 400
// invalid query, 421 misplaced).
func (a *apiHandler) serveBinWindow(dst []byte, f wire.Frame) []byte {
	id, from, to, err := f.WindowReq()
	if err != nil {
		return appendWireError(dst, http.StatusBadRequest, err)
	}
	c, ok := a.Owner.Get(id)
	if !ok {
		return a.binNotFound(dst, id)
	}
	werr := c.WindowBits(from, to,
		func(n int) { dst = wire.AppendWindowRespHeader(dst, n, from, int(to-from+1)) },
		func(t int64, row graph.Bitset) { dst = row.AppendBytes(dst) })
	if werr != nil {
		// WindowBits validates before emitting, so dst holds no partial
		// response; the error frame is the query's whole answer.
		return appendWireError(dst, http.StatusBadRequest, werr)
	}
	return dst
}

// serveBinNext answers one next-request frame; statuses mirror the JSON
// endpoint (404 for unknown community or family).
func (a *apiHandler) serveBinNext(dst []byte, f wire.Frame) []byte {
	id, v, from, err := f.NextReq()
	if err != nil {
		return appendWireError(dst, http.StatusBadRequest, err)
	}
	c, ok := a.Owner.Get(id)
	if !ok {
		return a.binNotFound(dst, id)
	}
	next, err := c.NextHappy(v, from)
	if err != nil {
		return appendWireError(dst, http.StatusNotFound, err)
	}
	return wire.AppendNextResp(dst, next)
}

// binBufPool recycles the response buffers of the binary endpoints — the
// bitmap rows are appended straight into these, so steady-state binary
// serving allocates neither rows nor staging buffers.
var binBufPool = sync.Pool{New: func() any { return new([]byte) }}

// binBufMax caps the buffers binBufPool retains, the same policy PR 4
// applied to the JSON window pool's Happy capacity: a rare maximal batch of
// MaxWindow-row bitmap responses must not pin its multi-megabyte buffer
// forever.
const binBufMax = 1 << 20

// putBinBuf returns a binary response buffer to the pool unless retaining
// it would pin too much memory (see retainBinBuf).
func putBinBuf(bp *[]byte, buf []byte) {
	if !retainBinBuf(buf) {
		return
	}
	*bp = buf[:0]
	binBufPool.Put(bp)
}

// retainBinBuf reports whether a binary response buffer is cheap enough to
// pool.
func retainBinBuf(buf []byte) bool { return cap(buf) <= binBufMax }

// createRequest is the POST /v1/communities body. Kind selects the
// scheduling problem ("" or "classic" = gathering, "poly" = polyamorous
// edge scheduling); demands and default_demand apply to poly only.
type createRequest struct {
	ID            string   `json:"id"`
	Families      int      `json:"families"`
	Edges         [][2]int `json:"edges"`
	Code          string   `json:"code"`
	Kind          string   `json:"kind"`
	Demands       []int64  `json:"demands"`
	DefaultDemand int64    `json:"default_demand"`
}

// edgeRequest is the POST /v1/communities/{id}/edges body. Demand is the
// poly per-edge demand (0 = community default); classic ignores it.
type edgeRequest struct {
	U      int   `json:"u"`
	V      int   `json:"v"`
	Demand int64 `json:"demand"`
}

// churnOpRequest is one element of the POST /v1/communities/{id}/churn
// array. Demand applies to poly marries only (0 = community default).
type churnOpRequest struct {
	Op     string `json:"op"` // "marry" or "divorce"
	U      int    `json:"u"`
	V      int    `json:"v"`
	Demand int64  `json:"demand"`
}

// churnOpResult is one element of the churn response's results array.
type churnOpResult struct {
	Applied   bool `json:"applied"`
	Recolored bool `json:"recolored"`
}

// churnResponse is the POST /v1/communities/{id}/churn answer: per-edit
// outcomes plus batch totals. Applied counts edits that changed the edge
// set; Recolorings counts §6 recoloring events the batch triggered. Seq is
// the community's journal sequence after the batch — the read-your-writes
// token a client hands to followers.
type churnResponse struct {
	Community   string          `json:"community"`
	Seq         uint64          `json:"seq"`
	Applied     int             `json:"applied"`
	Recolorings int             `json:"recolorings"`
	Results     []churnOpResult `json:"results"`
}

// windowResponse is the GET window answer.
type windowResponse struct {
	Community string       `json:"community"`
	From      int64        `json:"from"`
	To        int64        `json:"to"`
	Holidays  []HolidayRow `json:"holidays"`
}

// windowPool recycles window responses, rows included, across requests.
var windowPool = sync.Pool{New: func() any { return new(windowResponse) }}

// windowPoolMaxRows caps the row slices the pool retains: a rare MaxWindow
// query over a dense community should not pin its multi-megabyte response
// forever (same policy as encodeBufMax). Typical windows are ≤ one year.
const windowPoolMaxRows = 512

// windowPoolMaxHappy caps the total happy-set ints a pooled response may
// retain across all of its row slots. The row cap alone is not enough: a
// 512-row response over a huge dense community stays under windowPoolMaxRows
// while pinning every row's Happy backing array — megabytes per pooled
// response — forever. 1<<15 ints (256 KiB of int64) comfortably covers a
// year-long window over communities with hundreds of happy families per
// holiday.
const windowPoolMaxHappy = 1 << 15

// putWindowResponse returns a response to the pool unless it retains it
// would pin too much memory (see retainWindowResponse).
func putWindowResponse(wr *windowResponse) {
	if retainWindowResponse(wr) {
		windowPool.Put(wr)
	}
}

// retainWindowResponse reports whether a response is cheap enough to pool:
// its row slice is under the row cap and the Happy buffers of every slot —
// including spare slots beyond the last response's length, which keep their
// buffers for reuse — total under the happy cap.
func retainWindowResponse(wr *windowResponse) bool {
	if cap(wr.Holidays) > windowPoolMaxRows {
		return false
	}
	total := 0
	for _, row := range wr.Holidays[:cap(wr.Holidays)] {
		total += cap(row.Happy)
		if total > windowPoolMaxHappy {
			return false
		}
	}
	return true
}

// nextResponse is the GET next answer.
type nextResponse struct {
	Community string `json:"community"`
	Family    int    `json:"family"`
	From      int64  `json:"from"`
	// Next is the first holiday ≥ from at which the family is happy.
	Next int64 `json:"next"`
}

// queryInt64 parses an optional integer query parameter.
func queryInt64(r *http.Request, key string, def int64) (int64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query param %q must be an integer, got %q", key, s)
	}
	return v, nil
}

// encodeBufPool recycles the JSON staging buffers of writeJSON.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeBufMax caps the buffers the pool retains; a rare giant response
// (e.g. a MaxWindow query over a dense community) should not pin its buffer
// forever.
const encodeBufMax = 1 << 20

// writeJSON renders v with the given status. Encoding stages through a
// pooled buffer: one Write to the connection, a Content-Length header for
// clients, and no per-response buffer allocations on the hot path.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Encoding failures are programming errors (all payloads are plain
		// structs); degrade to an opaque 500 rather than a torn body.
		http.Error(w, `{"code":"internal","message":"response encoding failed"}`, http.StatusInternalServerError)
		encodeBufPool.Put(buf)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= encodeBufMax {
		encodeBufPool.Put(buf)
	}
}

// writeError renders the {code, message} envelope. Enveloped errors (the
// *Error type) carry their own code and status; anything else is classified
// by the status the call site chose.
func writeError(w http.ResponseWriter, status int, err error) {
	status, ae := envelope(status, err)
	writeJSON(w, status, ae)
}
