package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
)

// NewHandler exposes a registry over HTTP/JSON:
//
//	POST   /communities                          create {id, families, edges, code}
//	GET    /communities                          list ids
//	GET    /communities/{id}                     stats
//	DELETE /communities/{id}                     unregister
//	POST   /communities/{id}/families            append a family → {family}
//	POST   /communities/{id}/edges               marry {u, v} → {recolored}
//	DELETE /communities/{id}/edges?u=U&v=V       divorce → {removed, recolored}
//	GET    /communities/{id}/window?from=F&to=T  schedule window
//	GET    /communities/{id}/families/{v}/next?from=F  next happy holiday
//	GET    /healthz                              liveness
//
// Window and next queries answer from the community's cached frozen
// schedule; churn endpoints route through the §6 dynamic recoloring.
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /communities", func(w http.ResponseWriter, r *http.Request) {
		var req createRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return
		}
		c, err := reg.Create(req.ID, req.Families, req.Edges, req.Code)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, c.Stats())
	})
	mux.HandleFunc("GET /communities", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"communities": reg.List()})
	})
	mux.HandleFunc("GET /communities/{id}", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		writeJSON(w, http.StatusOK, c.Stats())
	}))
	mux.HandleFunc("DELETE /communities/{id}", func(w http.ResponseWriter, r *http.Request) {
		ok, err := reg.Delete(r.PathValue("id"))
		if err != nil {
			// A journal failure means the deletion is not durable; the
			// community stays registered and the client must not believe
			// it gone.
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no community %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
	})
	mux.HandleFunc("POST /communities/{id}/families", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		fam, err := c.AddFamily()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]int{"family": fam})
	}))
	mux.HandleFunc("POST /communities/{id}/edges", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		var req edgeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return
		}
		recolored, err := c.Marry(req.U, req.V)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"recolored": recolored})
	}))
	mux.HandleFunc("DELETE /communities/{id}/edges", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		u, errU := strconv.Atoi(r.URL.Query().Get("u"))
		v, errV := strconv.Atoi(r.URL.Query().Get("v"))
		if errU != nil || errV != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query params u and v must be integers"))
			return
		}
		removed, recolored, err := c.Divorce(u, v)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"removed": removed, "recolored": recolored})
	}))
	mux.HandleFunc("GET /communities/{id}/window", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		from, err := queryInt64(r, "from", 1)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Reject from beyond the servable horizon before deriving the
		// default end: from+51 overflows int64 for from near the maximum,
		// which used to surface as a baffling "window [..,..] is empty".
		if from > core.MaxHoliday {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("window start %d beyond last servable holiday %d", from, core.MaxHoliday))
			return
		}
		defTo := from + 51 // default: one year of weekly holidays
		if defTo > core.MaxHoliday {
			defTo = core.MaxHoliday
		}
		to, err := queryInt64(r, "to", defTo)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// The response rows (and their happy-set buffers) are pooled: the
		// window endpoint is the serving hot path and steady-state queries
		// should not allocate per row. AppendWindow overwrites the reused
		// slots, and writeJSON finishes encoding before the rows go back.
		wr := windowPool.Get().(*windowResponse)
		wr.Holidays, err = c.AppendWindow(wr.Holidays[:0], from, to)
		if err != nil {
			putWindowResponse(wr)
			writeError(w, http.StatusBadRequest, err)
			return
		}
		wr.Community, wr.From, wr.To = c.ID(), from, to
		writeJSON(w, http.StatusOK, wr)
		putWindowResponse(wr)
	}))
	mux.HandleFunc("GET /communities/{id}/families/{v}/next", withCommunity(reg, func(w http.ResponseWriter, r *http.Request, c *Community) {
		v, err := strconv.Atoi(r.PathValue("v"))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("family id %q is not an integer", r.PathValue("v")))
			return
		}
		from, err := queryInt64(r, "from", 1)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		next, err := c.NextHappy(v, from)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, nextResponse{Community: c.ID(), Family: v, From: from, Next: next})
	}))
	return mux
}

// createRequest is the POST /communities body.
type createRequest struct {
	ID       string   `json:"id"`
	Families int      `json:"families"`
	Edges    [][2]int `json:"edges"`
	Code     string   `json:"code"`
}

// edgeRequest is the POST /communities/{id}/edges body.
type edgeRequest struct {
	U int `json:"u"`
	V int `json:"v"`
}

// windowResponse is the GET window answer.
type windowResponse struct {
	Community string       `json:"community"`
	From      int64        `json:"from"`
	To        int64        `json:"to"`
	Holidays  []HolidayRow `json:"holidays"`
}

// windowPool recycles window responses, rows included, across requests.
var windowPool = sync.Pool{New: func() any { return new(windowResponse) }}

// windowPoolMaxRows caps the row slices the pool retains: a rare MaxWindow
// query over a dense community should not pin its multi-megabyte response
// forever (same policy as encodeBufMax). Typical windows are ≤ one year.
const windowPoolMaxRows = 512

// windowPoolMaxHappy caps the total happy-set ints a pooled response may
// retain across all of its row slots. The row cap alone is not enough: a
// 512-row response over a huge dense community stays under windowPoolMaxRows
// while pinning every row's Happy backing array — megabytes per pooled
// response — forever. 1<<15 ints (256 KiB of int64) comfortably covers a
// year-long window over communities with hundreds of happy families per
// holiday.
const windowPoolMaxHappy = 1 << 15

// putWindowResponse returns a response to the pool unless it retains it
// would pin too much memory (see retainWindowResponse).
func putWindowResponse(wr *windowResponse) {
	if retainWindowResponse(wr) {
		windowPool.Put(wr)
	}
}

// retainWindowResponse reports whether a response is cheap enough to pool:
// its row slice is under the row cap and the Happy buffers of every slot —
// including spare slots beyond the last response's length, which keep their
// buffers for reuse — total under the happy cap.
func retainWindowResponse(wr *windowResponse) bool {
	if cap(wr.Holidays) > windowPoolMaxRows {
		return false
	}
	total := 0
	for _, row := range wr.Holidays[:cap(wr.Holidays)] {
		total += cap(row.Happy)
		if total > windowPoolMaxHappy {
			return false
		}
	}
	return true
}

// nextResponse is the GET next answer.
type nextResponse struct {
	Community string `json:"community"`
	Family    int    `json:"family"`
	From      int64  `json:"from"`
	// Next is the first holiday ≥ from at which the family is happy.
	Next int64 `json:"next"`
}

// withCommunity resolves {id} or responds 404.
func withCommunity(reg *Registry, fn func(http.ResponseWriter, *http.Request, *Community)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c, ok := reg.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no community %q", r.PathValue("id")))
			return
		}
		fn(w, r, c)
	}
}

// queryInt64 parses an optional integer query parameter.
func queryInt64(r *http.Request, key string, def int64) (int64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query param %q must be an integer, got %q", key, s)
	}
	return v, nil
}

// encodeBufPool recycles the JSON staging buffers of writeJSON.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeBufMax caps the buffers the pool retains; a rare giant response
// (e.g. a MaxWindow query over a dense community) should not pin its buffer
// forever.
const encodeBufMax = 1 << 20

// writeJSON renders v with the given status. Encoding stages through a
// pooled buffer: one Write to the connection, a Content-Length header for
// clients, and no per-response buffer allocations on the hot path.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Encoding failures are programming errors (all payloads are plain
		// structs); degrade to an opaque 500 rather than a torn body.
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		encodeBufPool.Put(buf)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= encodeBufMax {
		encodeBufPool.Put(buf)
	}
}

// writeError renders an error payload.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
