package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// DefaultChurnFlushInterval is the coalescer's default time bound: a lone
// churn op waits at most this long for company before its batch flushes.
const DefaultChurnFlushInterval = 2 * time.Millisecond

// ChurnBatch applies K marriages and divorces as one write operation: one
// write-lock acquisition, one write-ahead journal append (group-committed
// when the journal implements BatchJournal), one core.ApplyBatch repair
// pass, and at most one cache invalidation — against up to K of each under
// one-at-a-time churn. Readers keep serving the pre-flush frozen schedule
// for the whole batch: in-flight queries hold immutable snapshots, and the
// cache is dropped once at the end only if the batch recolored anybody.
//
// Every edit is validated before anything is journaled or applied, so an
// invalid batch is all-or-nothing. Edits that would not change the edge set
// (re-marrying a married couple, divorcing strangers) are applied as no-ops
// and — like their single-op counterparts — excluded from the journal, so
// replay stays minimal. Batch application is byte-identical to sequential
// application by construction (see core.ApplyBatch), which is what lets WAL
// replay apply the same records one at a time.
//
// out, when non-nil, must have one slot per edit and receives what each
// edit did.
func (c *Community) ChurnBatch(edits []core.Edit, out []core.EditResult) (recolorings int, err error) {
	if out != nil && len(out) != len(edits) {
		return 0, fmt.Errorf("service: community %q: batch has %d edits but %d result slots", c.id, len(edits), len(out))
	}
	if len(edits) == 0 {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.fencedErrLocked(); err != nil {
		return 0, err
	}
	n := c.be.N()
	for i, e := range edits {
		if e.Op != core.EditInsert && e.Op != core.EditDelete {
			return 0, fmt.Errorf("service: community %q: batch edit %d has unknown op %d", c.id, i, e.Op)
		}
		if err := validEdge(n, e.U, e.V); err != nil {
			return 0, fmt.Errorf("service: community %q: batch edit %d: %w", c.id, i, err)
		}
	}
	// Write-ahead: journal before applying. Which edits are effective (will
	// change the edge set) is predicted by replaying the batch against
	// current adjacency plus an in-batch overlay — the same rule ApplyBatch
	// uses — so only effective edits are logged, without applying first.
	if c.reg != nil && c.reg.getJournal() != nil {
		if err := c.logBatchLocked(c.effectiveRecords(edits)); err != nil {
			return 0, err
		}
	}
	res := out
	if res == nil {
		res = make([]core.EditResult, len(edits))
	}
	recolorings, err = c.be.ApplyBatch(edits, res)
	if err != nil {
		// Unreachable: the batch was validated above. Surface rather than
		// swallow if core's rules ever drift.
		return recolorings, fmt.Errorf("service: community %q: %w", c.id, err)
	}
	// The cache is dropped at most once per flush, but version must advance
	// exactly as one-at-a-time churn would have advanced it — one tick per
	// invalidating edit (recolorings for classic, applied edits for poly) —
	// because version is persisted and WAL replay (which applies the
	// flush's records individually) must land on the same value.
	if events := countInvalidating(c.be, res); events > 0 {
		c.cached = nil
		c.version += int64(events)
	}
	return recolorings, nil
}

// countInvalidating counts the edits of a batch whose outcome invalidates
// the kind's cached schedule.
func countInvalidating(be backend, res []core.EditResult) int {
	n := 0
	for _, r := range res {
		if be.Invalidates(r) {
			n++
		}
	}
	return n
}

// effectiveRecords returns journal records for exactly the edits that will
// change the edge set when the (already validated) batch is applied in
// order. The overlay map carries in-batch edge state so e.g. a divorce
// following an in-batch marriage of the same couple is correctly effective.
// Caller holds c.mu.
func (c *Community) effectiveRecords(edits []core.Edit) []Record {
	recs := make([]Record, 0, len(edits))
	overlay := make(map[[2]int]bool, len(edits))
	for _, e := range edits {
		k := [2]int{min(e.U, e.V), max(e.U, e.V)}
		present, seen := overlay[k]
		if !seen {
			present = c.be.HasEdge(e.U, e.V)
		}
		switch {
		case e.Op == core.EditInsert && !present:
			recs = append(recs, Record{Op: OpMarry, ID: c.id, U: e.U, V: e.V, Demand: e.Demand})
			overlay[k] = true
		case e.Op == core.EditDelete && present:
			recs = append(recs, Record{Op: OpDivorce, ID: c.id, U: e.U, V: e.V})
			overlay[k] = false
		default:
			overlay[k] = present
		}
	}
	return recs
}

// logBatchLocked write-ahead logs a flush's effective records, in one append
// when the journal supports it, and advances the community's sequence to the
// last record's. Caller holds c.mu.
func (c *Community) logBatchLocked(recs []Record) error {
	if len(recs) == 0 || c.reg == nil {
		return nil
	}
	j := c.reg.getJournal()
	if j == nil {
		return nil
	}
	if bj, ok := j.(BatchJournal); ok {
		seq, err := bj.LogBatch(recs)
		if err != nil {
			return fmt.Errorf("service: community %q: journal: %w", c.id, err)
		}
		c.seq = seq
		return nil
	}
	for _, rec := range recs {
		seq, err := j.Log(rec)
		if err != nil {
			return fmt.Errorf("service: community %q: journal: %w", c.id, err)
		}
		c.seq = seq
	}
	return nil
}

// Coalescer turns independent single churn ops into per-community
// ChurnBatch flushes: ops enqueue under a registry-wide mutex, and a batch
// flushes when it reaches maxBatch ops or when its oldest op has waited
// flushEvery. Callers block until their op's flush completes — the flush
// journals before anyone is acknowledged, so the write-ahead durability
// contract is exactly that of unbatched churn, with the fsync cost shared
// K ways.
//
// The zero value is not usable; construct with NewCoalescer. Safe for
// concurrent use.
type Coalescer struct {
	maxBatch   int
	flushEvery time.Duration

	mu      sync.Mutex
	pending map[*Community]*pendingChurn
	closed  bool

	enqueued atomic.Int64 // ops accepted into batches (or run directly)
	flushes  atomic.Int64 // ChurnBatch calls issued
}

// pendingChurn is one community's open batch.
type pendingChurn struct {
	c     *Community
	edits []core.Edit
	done  []chan churnOutcome
	timer *time.Timer
}

type churnOutcome struct {
	res core.EditResult
	err error
}

// NewCoalescer returns a coalescer flushing at maxBatch ops or flushEvery,
// whichever comes first. maxBatch < 2 degenerates to direct single-op
// batches (no queuing, no timer); flushEvery ≤ 0 uses
// DefaultChurnFlushInterval.
func NewCoalescer(maxBatch int, flushEvery time.Duration) *Coalescer {
	if flushEvery <= 0 {
		flushEvery = DefaultChurnFlushInterval
	}
	return &Coalescer{
		maxBatch:   maxBatch,
		flushEvery: flushEvery,
		pending:    make(map[*Community]*pendingChurn),
	}
}

// Churn enqueues one edit for c and blocks until the batch containing it has
// been journaled and applied, returning what the edit did. Edits that are
// invalid against the current family count fail fast without joining a
// batch. After Close, ops run as direct single-op batches.
func (co *Coalescer) Churn(c *Community, e core.Edit) (core.EditResult, error) {
	if e.Op != core.EditInsert && e.Op != core.EditDelete {
		return core.EditResult{}, fmt.Errorf("service: community %q: unknown churn op %d", c.ID(), e.Op)
	}
	// Families only ever grow, so an edit valid here is still valid at
	// flush time: one caller's bad op can never fail a batch of valid ones.
	if err := validEdge(c.Families(), e.U, e.V); err != nil {
		return core.EditResult{}, fmt.Errorf("service: community %q: %w", c.ID(), err)
	}
	co.enqueued.Add(1)
	co.mu.Lock()
	if co.closed || co.maxBatch < 2 {
		co.mu.Unlock()
		return co.direct(c, e)
	}
	b := co.pending[c]
	if b == nil {
		b = &pendingChurn{c: c}
		co.pending[c] = b
		// The timer captures the batch pointer: if the batch flushes by
		// size first, the fired timer finds pending[c] != b and walks away.
		b.timer = time.AfterFunc(co.flushEvery, func() { co.flushTimed(c, b) })
	}
	b.edits = append(b.edits, e)
	ch := make(chan churnOutcome, 1)
	b.done = append(b.done, ch)
	var full *pendingChurn
	if len(b.edits) >= co.maxBatch {
		delete(co.pending, c)
		b.timer.Stop()
		full = b
	}
	co.mu.Unlock()
	if full != nil {
		co.flush(full)
	}
	out := <-ch
	return out.res, out.err
}

// Stats reports ops accepted and flushes issued — enqueued/flushes is the
// realized amortization factor.
func (co *Coalescer) Stats() (enqueued, flushes int64) {
	return co.enqueued.Load(), co.flushes.Load()
}

// Close flushes every open batch and switches the coalescer to direct
// (unbatched) operation. Call after the HTTP server has stopped accepting
// requests and before closing the journal, so no acknowledged op is lost.
func (co *Coalescer) Close() {
	co.mu.Lock()
	co.closed = true
	var open []*pendingChurn
	for c, b := range co.pending {
		b.timer.Stop()
		delete(co.pending, c)
		open = append(open, b)
	}
	co.mu.Unlock()
	for _, b := range open {
		co.flush(b)
	}
}

// flushTimed is the timer path: flush b unless a size-trigger got there
// first.
func (co *Coalescer) flushTimed(c *Community, b *pendingChurn) {
	co.mu.Lock()
	if co.pending[c] != b {
		co.mu.Unlock()
		return
	}
	delete(co.pending, c)
	co.mu.Unlock()
	co.flush(b)
}

// flush runs one ChurnBatch and delivers per-edit outcomes to the waiters.
func (co *Coalescer) flush(b *pendingChurn) {
	co.flushes.Add(1)
	res := make([]core.EditResult, len(b.edits))
	_, err := b.c.ChurnBatch(b.edits, res)
	for i, ch := range b.done {
		ch <- churnOutcome{res: res[i], err: err}
	}
}

// direct applies one edit as a single-op batch, preserving ChurnBatch's
// validation and journaling semantics.
func (co *Coalescer) direct(c *Community, e core.Edit) (core.EditResult, error) {
	co.flushes.Add(1)
	var res [1]core.EditResult
	_, err := c.ChurnBatch([]core.Edit{e}, res[:])
	return res[0], err
}
