package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestShardedEquivalencePoly extends the routing-split property test to
// kind=poly communities: a random demand-carrying op stream applied through
// a router over three owner shards must answer every window and next-happy
// query byte-identically to the same stream applied to one single-process
// registry. Poly's extra moving parts — per-edge demands, slot reuse,
// relayering rebuilds — must all be invisible to placement.
func TestShardedEquivalencePoly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rt := mustRouter(t, RouterOpts{Nodes: testNodes("a", "b", "c")})
	shards := map[string]*Owner{"a": New(Opts{}), "b": New(Opts{}), "c": New(Opts{})}
	single := New(Opts{})
	shardFor := func(id string) *Owner { return shards[rt.Place(id)] }

	const nCommunities = 8
	codes := []string{"layering", "bucketed"}
	ids := make([]string, nCommunities)
	for i := range ids {
		ids[i] = fmt.Sprintf("poly-%d", i)
		spec := CreateSpec{
			ID:            ids[i],
			Families:      4 + rng.Intn(8),
			Kind:          KindPoly,
			Code:          codes[i%len(codes)],
			DefaultDemand: int64(8) << rng.Intn(4),
		}
		if _, err := shardFor(ids[i]).CreateSpec(spec); err != nil {
			t.Fatalf("sharded create: %v", err)
		}
		if _, err := single.CreateSpec(spec); err != nil {
			t.Fatalf("single create: %v", err)
		}
	}

	for step := 0; step < 1500; step++ {
		id := ids[rng.Intn(len(ids))]
		sc, _ := shardFor(id).Get(id)
		uc, _ := single.Get(id)
		n := sc.Families()
		switch op := rng.Intn(10); {
		case op == 0:
			sn, err1 := sc.AddFamily()
			un, err2 := uc.AddFamily()
			if (err1 == nil) != (err2 == nil) || sn != un {
				t.Fatalf("AddFamily diverged: (%v,%v) vs (%v,%v)", sn, err1, un, err2)
			}
		case op < 6:
			u, v := rng.Intn(n), rng.Intn(n)
			var demand int64
			if rng.Intn(2) == 0 {
				demand = int64(4) << rng.Intn(6)
			}
			r1, err1 := sc.MarryDemand(u, v, demand)
			r2, err2 := uc.MarryDemand(u, v, demand)
			if (err1 == nil) != (err2 == nil) || r1 != r2 {
				t.Fatalf("MarryDemand(%d,%d,%d) diverged: (%v,%v) vs (%v,%v)", u, v, demand, r1, err1, r2, err2)
			}
		default:
			u, v := rng.Intn(n), rng.Intn(n)
			rm1, rc1, err1 := sc.Divorce(u, v)
			rm2, rc2, err2 := uc.Divorce(u, v)
			if (err1 == nil) != (err2 == nil) || rm1 != rm2 || rc1 != rc2 {
				t.Fatalf("Divorce(%d,%d) diverged", u, v)
			}
		}
	}

	for _, id := range ids {
		sc, _ := shardFor(id).Get(id)
		uc, _ := single.Get(id)
		sw, err := sc.Window(1, 300)
		if err != nil {
			t.Fatalf("sharded window: %v", err)
		}
		uw, err := uc.Window(1, 300)
		if err != nil {
			t.Fatalf("single window: %v", err)
		}
		sb, _ := json.Marshal(sw)
		ub, _ := json.Marshal(uw)
		if string(sb) != string(ub) {
			t.Fatalf("window diverged for %s:\nsharded %s\nsingle  %s", id, sb, ub)
		}
		// The entity space is edge slots; both sides must agree on its size
		// and on every slot's next answer from several alignments.
		slots, uslots := 0, 0
		if err := sc.WindowBits(1, 1, func(n int) { slots = n }, func(int64, graph.Bitset) {}); err != nil {
			t.Fatalf("sharded slots: %v", err)
		}
		if err := uc.WindowBits(1, 1, func(n int) { uslots = n }, func(int64, graph.Bitset) {}); err != nil {
			t.Fatalf("single slots: %v", err)
		}
		if slots != uslots {
			t.Fatalf("slot counts diverged for %s: %d vs %d", id, slots, uslots)
		}
		for v := 0; v < slots; v++ {
			for _, from := range []int64{1, 97, 1 << 30} {
				sn, err1 := sc.NextHappy(v, from)
				un, err2 := uc.NextHappy(v, from)
				if (err1 == nil) != (err2 == nil) || sn != un {
					t.Fatalf("next diverged for %s slot %d from %d: (%v,%v) vs (%v,%v)", id, v, from, sn, err1, un, err2)
				}
			}
		}
		// And the poly stats blocks — density, gap ratio, relayering count —
		// must match exactly.
		sp, ok1 := sc.PolyStats()
		up, ok2 := uc.PolyStats()
		if !ok1 || !ok2 || sp != up {
			t.Fatalf("poly stats diverged for %s: %+v vs %+v", id, sp, up)
		}
	}
}
