package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// newTestServer returns a handler over a fresh registry plus a helper that
// performs a request and decodes the JSON response into out.
func newTestServer(t *testing.T) (*httptest.Server, func(method, path, body string, wantStatus int, out any)) {
	t.Helper()
	srv := httptest.NewServer(NewHandler(HandlerOpts{Owner: New(Opts{})}))
	t.Cleanup(srv.Close)
	do := func(method, path, body string, wantStatus int, out any) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			var raw map[string]any
			_ = json.NewDecoder(resp.Body).Decode(&raw)
			t.Fatalf("%s %s: status %d, want %d (body %v)", method, path, resp.StatusCode, wantStatus, raw)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("%s %s: bad JSON: %v", method, path, err)
			}
		}
	}
	return srv, do
}

// star9 is the create body for a 9-family star (center 0), the paper's
// running example shape.
const star9 = `{"id":"demo","families":9,"edges":[[0,1],[0,2],[0,3],[0,4],[0,5],[0,6],[0,7],[0,8]]}`

func TestHTTPLifecycleAndWindow(t *testing.T) {
	_, do := newTestServer(t)

	var created Stats
	do("POST", "/communities", star9, http.StatusCreated, &created)
	if created.ID != "demo" || created.Families != 9 || created.Marriages != 8 {
		t.Fatalf("created = %+v", created)
	}
	do("POST", "/communities", star9, http.StatusBadRequest, nil) // duplicate

	var listed struct {
		Communities []string `json:"communities"`
	}
	do("GET", "/communities", "", http.StatusOK, &listed)
	if len(listed.Communities) != 1 || listed.Communities[0] != "demo" {
		t.Fatalf("list = %v", listed.Communities)
	}

	var win windowResponse
	do("GET", "/communities/demo/window?from=1&to=52", "", http.StatusOK, &win)
	if win.From != 1 || win.To != 52 || len(win.Holidays) != 52 {
		t.Fatalf("window = %+v", win)
	}
	// The leaves (color 1, omega codeword "0") host every other holiday;
	// the center hosts on its own residue. Every row's happy set must be
	// non-adjacent, i.e. never the center together with a leaf.
	for _, row := range win.Holidays {
		hasCenter, hasLeaf := false, false
		for _, v := range row.Happy {
			if v == 0 {
				hasCenter = true
			} else {
				hasLeaf = true
			}
		}
		if hasCenter && hasLeaf {
			t.Fatalf("holiday %d: center and leaf both happy: %v", row.Holiday, row.Happy)
		}
	}

	var next nextResponse
	do("GET", "/communities/demo/families/3/next?from=10", "", http.StatusOK, &next)
	if next.Next < 10 {
		t.Fatalf("next = %+v", next)
	}
	// The answer must be consistent with the window at that holiday.
	var at windowResponse
	do("GET", fmt.Sprintf("/communities/demo/window?from=%d&to=%d", next.Next, next.Next), "", http.StatusOK, &at)
	found := false
	for _, v := range at.Holidays[0].Happy {
		if v == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("family 3 not happy at reported next holiday %d (%v)", next.Next, at.Holidays[0].Happy)
	}

	var stats Stats
	do("GET", "/communities/demo", "", http.StatusOK, &stats)
	if stats.CacheMisses != 1 || stats.CacheHits < 2 {
		t.Fatalf("stats after cached queries = %+v", stats)
	}

	do("DELETE", "/communities/demo", "", http.StatusOK, nil)
	do("GET", "/communities/demo", "", http.StatusNotFound, nil)
}

func TestHTTPChurn(t *testing.T) {
	_, do := newTestServer(t)
	do("POST", "/communities", `{"id":"c","families":4,"edges":[[0,1],[1,2]]}`, http.StatusCreated, nil)

	var marry struct {
		Recolored bool `json:"recolored"`
	}
	do("POST", "/communities/c/edges", `{"u":2,"v":3}`, http.StatusOK, &marry)
	if !marry.Recolored {
		t.Fatal("marrying same-colored families should recolor")
	}
	var divorce struct {
		Removed   bool `json:"removed"`
		Recolored bool `json:"recolored"`
	}
	do("DELETE", "/communities/c/edges?u=2&v=3", "", http.StatusOK, &divorce)
	if !divorce.Removed {
		t.Fatal("edge should have been removed")
	}
	var fam struct {
		Family int `json:"family"`
	}
	do("POST", "/communities/c/families", "", http.StatusCreated, &fam)
	if fam.Family != 4 {
		t.Fatalf("new family id = %d, want 4", fam.Family)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, do := newTestServer(t)
	do("POST", "/communities", `{"id":"c","families":4}`, http.StatusCreated, nil)

	do("GET", "/communities/nope/window", "", http.StatusNotFound, nil)
	do("GET", "/communities/c/window?from=0&to=5", "", http.StatusBadRequest, nil)
	do("GET", "/communities/c/window?from=9&to=3", "", http.StatusBadRequest, nil)
	do("GET", fmt.Sprintf("/communities/c/window?from=1&to=%d", MaxWindow+2), "", http.StatusBadRequest, nil)
	// Near-MaxInt64 bounds pass the span check but must be rejected before
	// the closed-form arithmetic can wrap.
	do("GET", "/communities/c/window?from=9223372036854775800&to=9223372036854775807", "", http.StatusBadRequest, nil)
	do("GET", "/communities/c/window?from=x&to=5", "", http.StatusBadRequest, nil)
	do("GET", "/communities/c/families/99/next", "", http.StatusNotFound, nil)
	do("GET", "/communities/c/families/x/next", "", http.StatusBadRequest, nil)
	do("POST", "/communities/c/edges", `{"u":0,"v":0}`, http.StatusBadRequest, nil)
	do("POST", "/communities/c/edges", `not json`, http.StatusBadRequest, nil)
	do("DELETE", "/communities/c/edges?u=a&v=1", "", http.StatusBadRequest, nil)
	do("POST", "/communities", `{"id":"bad","families":3,"code":"morse"}`, http.StatusBadRequest, nil)
	do("DELETE", "/communities/nope", "", http.StatusNotFound, nil)
	do("GET", "/healthz", "", http.StatusOK, nil)
}

// TestHTTPConcurrentWindows serves parallel window queries against one
// cached schedule — with -race this pins the serving path race-clean.
func TestHTTPConcurrentWindows(t *testing.T) {
	srv, do := newTestServer(t)
	do("POST", "/communities", star9, http.StatusCreated, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				from := 1 + (i*13+w)%300
				resp, err := srv.Client().Get(fmt.Sprintf("%s/communities/demo/window?from=%d&to=%d", srv.URL, from, from+20))
				if err != nil {
					t.Error(err)
					return
				}
				var win windowResponse
				err = json.NewDecoder(resp.Body).Decode(&win)
				resp.Body.Close()
				if err != nil || len(win.Holidays) != 21 {
					t.Errorf("bad window response: %v (%d rows)", err, len(win.Holidays))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var stats Stats
	do("GET", "/communities/demo", "", http.StatusOK, &stats)
	if stats.CacheMisses != 1 {
		t.Fatalf("concurrent cached queries froze %d schedules, want 1", stats.CacheMisses)
	}
}
