package service

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// randomBatch draws k edits over n families, mixing inserts, deletes, and
// likely no-ops.
func randomBatch(r *rand.Rand, n, k int) []core.Edit {
	edits := make([]core.Edit, k)
	for i := range edits {
		u := r.IntN(n)
		v := r.IntN(n - 1)
		if v >= u {
			v++
		}
		op := core.EditInsert
		if r.IntN(10) < 4 {
			op = core.EditDelete
		}
		edits[i] = core.Edit{Op: op, U: u, V: v}
	}
	return edits
}

// answerKey condenses a community's externally observable schedule: window
// rows plus next-happy answers. Equal keys mean byte-identical responses.
func answerKey(t *testing.T, c *Community) string {
	t.Helper()
	rows, err := c.Window(1, 96)
	if err != nil {
		t.Fatal(err)
	}
	s := ""
	for _, r := range rows {
		s += fmt.Sprintf("%d:%v;", r.Holiday, r.Happy)
	}
	for v := 0; v < c.Families(); v++ {
		n, err := c.NextHappy(v, 5)
		if err != nil {
			t.Fatal(err)
		}
		s += fmt.Sprintf("n%d=%d;", v, n)
	}
	return s
}

// TestChurnBatchMatchesSingleOps is the serving-layer half of the
// differential acceptance test: the same edit stream applied via ChurnBatch
// and via one-at-a-time Marry/Divorce must produce byte-identical window and
// next-happy answers after every flush, identical per-edit outcomes, and —
// with journals attached — an identical record stream (so replaying a
// batch-written WAL reconstructs the same state one record at a time).
func TestChurnBatchMatchesSingleOps(t *testing.T) {
	regB, regS := NewRegistry(), NewRegistry()
	jB, jS := &memJournal{}, &memJournal{}
	regB.SetJournal(jB)
	regS.SetJournal(jS)
	const n = 28
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}}
	batched, err := regB.Create("c", n, edges, "")
	if err != nil {
		t.Fatal(err)
	}
	single, err := regS.Create("c", n, edges, "")
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewPCG(21, 5))
	for round := 0; round < 40; round++ {
		edits := randomBatch(r, n, 1+r.IntN(32))
		res := make([]core.EditResult, len(edits))
		if _, err := batched.ChurnBatch(edits, res); err != nil {
			t.Fatal(err)
		}
		for i, e := range edits {
			if e.Op == core.EditInsert {
				recolored, err := single.Marry(e.U, e.V)
				if err != nil {
					t.Fatal(err)
				}
				if res[i].Recolored != recolored {
					t.Fatalf("round %d edit %d: batch recolored=%v, single %v", round, i, res[i].Recolored, recolored)
				}
			} else {
				removed, recolored, err := single.Divorce(e.U, e.V)
				if err != nil {
					t.Fatal(err)
				}
				if res[i].Applied != removed || res[i].Recolored != recolored {
					t.Fatalf("round %d edit %d: batch %+v, single removed=%v recolored=%v", round, i, res[i], removed, recolored)
				}
			}
		}
		if kb, ks := answerKey(t, batched), answerKey(t, single); kb != ks {
			t.Fatalf("round %d: batch and single-op answers diverged", round)
		}
	}
	if !reflect.DeepEqual(jB.recs, jS.recs) {
		t.Fatalf("journal streams diverged:\n batch:  %d recs\n single: %d recs", len(jB.recs), len(jS.recs))
	}

	// The batch path's journal stream replays into the same answers.
	regR := NewRegistry()
	for i, rec := range jB.recs {
		if err := regR.Apply(uint64(i+1), rec); err != nil {
			t.Fatal(err)
		}
	}
	replayed, ok := regR.Get("c")
	if !ok {
		t.Fatal("replayed registry lost the community")
	}
	if answerKey(t, replayed) != answerKey(t, batched) {
		t.Fatal("replaying the batch-written journal produced different answers")
	}
}

// TestChurnBatchJournalsOnlyEffectiveEdits: no-op edits (including in-batch
// cancellations) never reach the journal.
func TestChurnBatchJournalsOnlyEffectiveEdits(t *testing.T) {
	reg := NewRegistry()
	j := &memJournal{}
	reg.SetJournal(j)
	c, err := reg.Create("c", 6, [][2]int{{0, 1}}, "")
	if err != nil {
		t.Fatal(err)
	}
	j.recs = nil
	res := make([]core.EditResult, 6)
	if _, err := c.ChurnBatch([]core.Edit{
		{Op: core.EditInsert, U: 0, V: 1}, // no-op: already married
		{Op: core.EditDelete, U: 2, V: 3}, // no-op: strangers
		{Op: core.EditInsert, U: 2, V: 3}, // effective
		{Op: core.EditDelete, U: 2, V: 3}, // effective: cancels in-batch
		{Op: core.EditInsert, U: 4, V: 5}, // effective
		{Op: core.EditInsert, U: 4, V: 5}, // no-op: duplicate of in-batch insert
	}, res); err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Op: OpMarry, ID: "c", U: 2, V: 3},
		{Op: OpDivorce, ID: "c", U: 2, V: 3},
		{Op: OpMarry, ID: "c", U: 4, V: 5},
	}
	if !reflect.DeepEqual(j.recs, want) {
		t.Fatalf("journal saw %+v, want %+v", j.recs, want)
	}
	wantApplied := []bool{false, false, true, true, true, false}
	for i, w := range wantApplied {
		if res[i].Applied != w {
			t.Errorf("edit %d applied=%v, want %v", i, res[i].Applied, w)
		}
	}
}

// TestChurnBatchWriteAhead: a journal failure aborts the whole batch before
// anything is applied.
func TestChurnBatchWriteAhead(t *testing.T) {
	reg := NewRegistry()
	j := &memJournal{}
	reg.SetJournal(j)
	c, err := reg.Create("c", 4, [][2]int{{0, 1}}, "")
	if err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	j.fail = errors.New("disk full")
	if _, err := c.ChurnBatch([]core.Edit{
		{Op: core.EditInsert, U: 1, V: 2},
		{Op: core.EditDelete, U: 0, V: 1},
	}, nil); err == nil {
		t.Fatal("batch acked despite journal failure")
	}
	if got := c.Stats(); got != before {
		t.Fatalf("journal failure mutated state: %+v -> %+v", before, got)
	}
	// A batch of pure no-ops has nothing to journal and succeeds even while
	// the journal is failing.
	if _, err := c.ChurnBatch([]core.Edit{{Op: core.EditDelete, U: 1, V: 3}}, nil); err != nil {
		t.Fatalf("no-op batch: %v", err)
	}
}

// TestChurnBatchValidation: one invalid edit fails the batch with nothing
// applied or journaled.
func TestChurnBatchValidation(t *testing.T) {
	reg := NewRegistry()
	j := &memJournal{}
	reg.SetJournal(j)
	c, err := reg.Create("c", 4, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	n := len(j.recs)
	bad := [][]core.Edit{
		{{Op: core.EditInsert, U: 0, V: 1}, {Op: core.EditInsert, U: 1, V: 9}},
		{{Op: core.EditInsert, U: 0, V: 1}, {Op: core.EditInsert, U: 2, V: 2}},
		{{Op: core.EditInsert, U: 0, V: 1}, {Op: core.EditOp(7), U: 0, V: 2}},
	}
	for i, edits := range bad {
		if _, err := c.ChurnBatch(edits, nil); err == nil {
			t.Fatalf("bad batch %d: expected error", i)
		}
	}
	if len(j.recs) != n {
		t.Fatal("invalid batch reached the journal")
	}
	if c.Stats().Marriages != 0 {
		t.Fatal("invalid batch mutated state")
	}
	if _, err := c.ChurnBatch([]core.Edit{{Op: core.EditInsert, U: 0, V: 1}}, make([]core.EditResult, 2)); err == nil {
		t.Fatal("mismatched result-slot count must error")
	}
}

// batchingJournal counts LogBatch calls to prove the batch fast path is
// taken when offered.
type batchingJournal struct {
	memJournal
	batches int
}

func (j *batchingJournal) LogBatch(recs []Record) (uint64, error) {
	if j.fail != nil {
		return 0, j.fail
	}
	j.batches++
	for _, rec := range recs {
		j.seq++
		j.recs = append(j.recs, rec)
	}
	return j.seq, nil
}

// TestChurnBatchUsesBatchJournal: a journal implementing BatchJournal gets
// one LogBatch call per flush, not K Log calls.
func TestChurnBatchUsesBatchJournal(t *testing.T) {
	reg := NewRegistry()
	j := &batchingJournal{}
	reg.SetJournal(j)
	c, err := reg.Create("c", 8, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ChurnBatch([]core.Edit{
		{Op: core.EditInsert, U: 0, V: 1},
		{Op: core.EditInsert, U: 2, V: 3},
		{Op: core.EditInsert, U: 4, V: 5},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if j.batches != 1 {
		t.Fatalf("LogBatch called %d times, want 1", j.batches)
	}
	if len(j.recs) != 4 { // create + 3 marries
		t.Fatalf("journal has %d records, want 4", len(j.recs))
	}
	if c.journalSeq() != j.seq {
		t.Fatalf("community seq %d, journal seq %d", c.journalSeq(), j.seq)
	}
}

// TestCoalescerBatchesConcurrentChurn: concurrent single ops coalesce into
// far fewer flushes, every op is answered correctly, and the community stays
// consistent.
func TestCoalescerBatchesConcurrentChurn(t *testing.T) {
	reg := NewRegistry()
	j := &batchingJournal{}
	reg.SetJournal(j)
	const n = 128
	c, err := reg.Create("c", n, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	// A long time bound makes the size trigger do the work: 256 ops on one
	// community fill exactly 16 batches of 16, so the flush count is a
	// deterministic amortization proof rather than a scheduling race.
	co := NewCoalescer(16, 250*time.Millisecond)
	defer co.Close()

	const ops = 256
	var wg sync.WaitGroup
	errs := make([]error, ops)
	applied := make([]bool, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct edges: op i marries (2i, 2i+1) mod n... ensure u != v.
			u := (2 * i) % n
			v := (2*i + 1) % n
			res, err := co.Churn(c, core.Edit{Op: core.EditInsert, U: u, V: v})
			errs[i] = err
			applied[i] = res.Applied
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// ops span each distinct edge exactly ops/ (n/2)=... every (u,v) pair
	// repeats ops/(n/2) = 4 times; exactly n/2 ops were first.
	firsts := 0
	for _, a := range applied {
		if a {
			firsts++
		}
	}
	if firsts != n/2 {
		t.Fatalf("%d ops reported Applied, want %d (one per distinct edge)", firsts, n/2)
	}
	if got := c.Stats().Marriages; got != n/2 {
		t.Fatalf("community has %d marriages, want %d", got, n/2)
	}
	enq, flushes := co.Stats()
	if enq != ops {
		t.Fatalf("coalescer enqueued %d, want %d", enq, ops)
	}
	if flushes > ops/4 {
		t.Fatalf("coalescer flushed %d times for %d ops: batching is not amortizing", flushes, ops)
	}
	// The journal saw only effective records, batched.
	marries := 0
	for _, rec := range j.recs {
		if rec.Op == OpMarry {
			marries++
		}
	}
	if marries != n/2 {
		t.Fatalf("journal has %d marry records, want %d", marries, n/2)
	}
}

// TestCoalescerTimerFlush: a lone op below the size trigger still completes
// within the time bound.
func TestCoalescerTimerFlush(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.Create("c", 4, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoalescer(1024, 2*time.Millisecond)
	defer co.Close()
	start := time.Now()
	res, err := co.Churn(c, core.Edit{Op: core.EditInsert, U: 0, V: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied {
		t.Fatal("op not applied")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timer flush took %v", d)
	}
}

// TestCoalescerCloseFlushesPending: Close drains open batches, and later
// ops fall back to direct application.
func TestCoalescerCloseFlushesPending(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.Create("c", 4, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoalescer(1024, time.Hour)
	done := make(chan error, 1)
	go func() {
		_, err := co.Churn(c, core.Edit{Op: core.EditInsert, U: 0, V: 1})
		done <- err
	}()
	// Wait for the op to be enqueued before closing.
	for i := 0; ; i++ {
		if enq, _ := co.Stats(); enq == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("op never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	co.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if c.Stats().Marriages != 1 {
		t.Fatal("pending op lost by Close")
	}
	// Post-close ops still work (direct path).
	if res, err := co.Churn(c, core.Edit{Op: core.EditInsert, U: 2, V: 3}); err != nil || !res.Applied {
		t.Fatalf("post-close churn: res=%+v err=%v", res, err)
	}
	// Invalid ops fail fast without joining a batch.
	if _, err := co.Churn(c, core.Edit{Op: core.EditInsert, U: 0, V: 99}); err == nil {
		t.Fatal("invalid edit must fail")
	}
}
