package service

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"unsafe"
)

// TestAppendWindowEmptyHolidayMarshalsArray: holidays nobody hosts must
// marshal "happy":[] — never null — whether the row slot is fresh or
// pooled/reused (the wire format must not depend on pool history).
func TestAppendWindowEmptyHolidayMarshalsArray(t *testing.T) {
	reg := NewRegistry()
	// A triangle has colors {1,2,3} → periods up to 8; some holidays in
	// [1,8] have an empty happy set.
	c, err := reg.Create("c", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, "")
	if err != nil {
		t.Fatal(err)
	}
	check := func(rows []HolidayRow) {
		t.Helper()
		sawEmpty := false
		for _, r := range rows {
			if len(r.Happy) == 0 {
				sawEmpty = true
				if r.Happy == nil {
					t.Fatalf("holiday %d has nil Happy", r.Holiday)
				}
			}
		}
		if !sawEmpty {
			t.Fatal("window had no empty holiday; widen the test window")
		}
		data, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "null") {
			t.Fatalf("marshaled window contains null: %s", data)
		}
	}
	rows, err := c.AppendWindow(nil, 1, 8) // fresh slots
	if err != nil {
		t.Fatal(err)
	}
	check(rows)
	rows, err = c.AppendWindow(rows[:0], 1, 8) // reused slots
	if err != nil {
		t.Fatal(err)
	}
	check(rows)
}

// TestAppendWindowMatchesWindow: the reusing path returns exactly the rows
// of the allocating path, appended after any existing prefix.
func TestAppendWindowMatchesWindow(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.Create("c", 12, ringEdges(12), "")
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Window(5, 30)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []HolidayRow{{Holiday: -1, Happy: []int{99}}}
	got, err := c.AppendWindow(prefix, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prefix)+len(want) {
		t.Fatalf("appended %d rows, want %d after prefix", len(got)-len(prefix), len(want))
	}
	if got[0].Holiday != -1 || len(got[0].Happy) != 1 || got[0].Happy[0] != 99 {
		t.Fatalf("prefix row clobbered: %+v", got[0])
	}
	if !reflect.DeepEqual(got[1:], want) {
		t.Fatalf("AppendWindow rows differ from Window:\n got %v\nwant %v", got[1:], want)
	}
}

// TestAppendWindowReusesBuffers: handing the previous response back reuses
// the row slice and the happy-set backing arrays — the steady state the
// HTTP handler and the load generator rely on for allocation-free serving.
func TestAppendWindowReusesBuffers(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.Create("c", 16, ringEdges(16), "")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.AppendWindow(nil, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	rowsPtr := unsafe.SliceData(rows)
	happyPtr := unsafe.SliceData(rows[0].Happy)
	if happyPtr == nil {
		t.Fatal("first row has no happy families; pick a denser window")
	}
	again, err := c.AppendWindow(rows[:0], 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if unsafe.SliceData(again) != rowsPtr {
		t.Error("row slice was reallocated on reuse")
	}
	if unsafe.SliceData(again[0].Happy) != happyPtr {
		t.Error("happy backing array was reallocated on reuse")
	}
	// Validation failures must not lose the caller's buffer.
	kept, err := c.AppendWindow(again[:0], 0, 10)
	if err == nil {
		t.Fatal("want error for from < 1")
	}
	if cap(kept) != cap(again) {
		t.Error("failed query dropped the reusable buffer")
	}

	if raceEnabled {
		return // sync.Pool drops items under the race detector
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		rows, err = c.AppendWindow(rows[:0], 1, 40)
		if err != nil {
			t.Fatal(err)
		}
	})
	// Steady-state window serving allocates no row or scratch buffers; the
	// two remaining allocations are the visit closure and its captured
	// variable cell (~50 bytes), down from one slice per holiday row.
	if allocs > 2 {
		t.Errorf("steady-state AppendWindow allocates %.1f/op, want ≤ 2", allocs)
	}
}

// TestNextHappyValidation: the single-lock fast path still rejects unknown
// families and out-of-range holidays.
func TestNextHappyValidation(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.Create("c", 8, ringEdges(8), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NextHappy(-1, 1); err == nil {
		t.Error("want error for negative family")
	}
	if _, err := c.NextHappy(8, 1); err == nil {
		t.Error("want error for family beyond community")
	}
	next, err := c.NextHappy(3, 1)
	if err != nil || next < 1 {
		t.Fatalf("NextHappy(3,1) = %d, %v", next, err)
	}
	// A family added after the snapshot is queryable: AddFamily invalidates
	// the cache, so the next query freezes a snapshot that covers it.
	id, err := c.AddFamily()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NextHappy(id, 1); err != nil {
		t.Errorf("new family %d not servable: %v", id, err)
	}
}
