package service

import (
	"errors"
	"fmt"
	"net/http"
)

// ErrCode names an API failure class. It is the one error vocabulary of the
// serving layer: JSON endpoints answer {code, message} envelopes carrying
// the string form, binary endpoints carry the numeric form in Error frames
// (wire.AppendError), and both decode back to the same enum — a client
// switching transports never re-learns error handling.
type ErrCode string

const (
	// CodeBadRequest: the request was malformed or semantically invalid
	// (bad JSON, out-of-range window, unknown op).
	CodeBadRequest ErrCode = "bad_request"
	// CodeNotFound: the community (or family) does not exist on this node
	// and the topology places it nowhere else.
	CodeNotFound ErrCode = "not_found"
	// CodeConflict: the request contradicts existing state (duplicate
	// community id).
	CodeConflict ErrCode = "conflict"
	// CodeNotOwner: the request is a write for a community this node does
	// not own — it was misrouted, or ownership moved. The message names the
	// owner when the topology knows it; clients re-resolve placement and
	// retry there.
	CodeNotOwner ErrCode = "not_owner"
	// CodeInternal: the node failed the request (journal error, encoding
	// failure).
	CodeInternal ErrCode = "internal"
	// CodeUnavailable: the node could not reach the responsible peer
	// (forwarding failed, owner missing from the topology).
	CodeUnavailable ErrCode = "unavailable"
)

// codeTable fixes each code's wire number and default HTTP status. Numbers
// are part of wire format v2 and must never be reused or renumbered.
var codeTable = map[ErrCode]struct {
	num    uint16
	status int
}{
	CodeBadRequest:  {1, http.StatusBadRequest},
	CodeNotFound:    {2, http.StatusNotFound},
	CodeConflict:    {3, http.StatusConflict},
	CodeNotOwner:    {4, http.StatusMisdirectedRequest},
	CodeInternal:    {5, http.StatusInternalServerError},
	CodeUnavailable: {6, http.StatusServiceUnavailable},
}

// Num returns the code's wire number (the u16 of binary Error frames).
// Unknown codes map to CodeInternal's number.
func (c ErrCode) Num() uint16 {
	if e, ok := codeTable[c]; ok {
		return e.num
	}
	return codeTable[CodeInternal].num
}

// HTTPStatus returns the code's default HTTP status.
func (c ErrCode) HTTPStatus() int {
	if e, ok := codeTable[c]; ok {
		return e.status
	}
	return http.StatusInternalServerError
}

// CodeFromNum maps a wire number back to its code; unknown numbers decode
// as CodeInternal (a newer peer spoke a code this build does not know).
func CodeFromNum(n uint16) ErrCode {
	for c, e := range codeTable {
		if e.num == n {
			return c
		}
	}
	return CodeInternal
}

// codeForStatus classifies a bare HTTP status into the enum — the adapter
// for call sites that still report errors as (status, error) pairs.
func codeForStatus(status int) ErrCode {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusMisdirectedRequest:
		return CodeNotOwner
	case http.StatusServiceUnavailable, http.StatusBadGateway:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// Error is the API error envelope — the one body every failing endpoint
// answers, JSON or binary. It implements error so service methods can
// return it directly and handlers can surface it without translation.
type Error struct {
	Code    ErrCode `json:"code"`
	Message string  `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// Errf builds an enveloped error.
func Errf(code ErrCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// envelope normalizes any error to the envelope: enveloped errors pass
// through (wrapped or not), everything else is classified by the status the
// call site chose.
func envelope(status int, err error) (int, *Error) {
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Code.HTTPStatus(), ae
	}
	return status, &Error{Code: codeForStatus(status), Message: err.Error()}
}
