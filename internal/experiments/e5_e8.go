package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prefixcode"
	"repro/internal/stats"
)

// E5CauchySums charts the Theorem 4.1 feasibility frontier: partial sums
// Σ 1/f(c) at growing checkpoints for each candidate period function. A
// valid color→period guarantee needs Σ ≤ 1; f(c) = c fails instantly,
// φ(c) diverges at iterated-log speed (the lower bound), and the realized
// omega periods 2^ρ(c) stay within budget forever.
func E5CauchySums(cfg Config) *stats.Table {
	funcs := core.StandardGrowthFuncs()
	cols := []string{"N"}
	for _, f := range funcs {
		cols = append(cols, "sum 1/"+f.Name)
	}
	tb := stats.NewTable("E5: Cauchy condensation partial sums (Theorem 4.1)", cols...)
	tb.Note = "Claim: feasible period functions keep the sum ≤ 1; f below the phi frontier cross it."
	maxExp := cfg.pick(22, 16)
	var checkpoints []uint64
	for e := 4; e <= maxExp; e += 4 {
		checkpoints = append(checkpoints, 1<<uint(e))
	}
	sums := make([][]float64, len(funcs))
	forEachIndex(len(funcs), func(i int) {
		sums[i] = core.PartialSums(funcs[i].F, checkpoints)
	})
	for k, n := range checkpoints {
		cells := []any{n}
		for i := range funcs {
			cells = append(cells, sums[i][k])
		}
		tb.AddRow(cells...)
	}
	return tb
}

// forEachIndex runs fn(0..n-1) concurrently.
func forEachIndex(n int, fn func(i int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// E6Rounds measures the distributed costs the paper cites: initialization
// rounds of the (deg+1)-coloring (Theorem 3.1's O(log Δ + …) term), the O(1)
// per-holiday rounds of phased greedy, and the phase count of the §5.2
// distributed slot assignment (⌈log(Δ+1)⌉+1 phases).
func E6Rounds(cfg Config) *stats.Table {
	tb := stats.NewTable("E6: distributed round complexity",
		"n", "maxdeg", "init rounds", "init msgs", "rounds/holiday", "5.2 phases", "5.2 rounds", "phases ≤ log(Δ+1)+1")
	tb.Note = "Claim: init is O(log Δ + 2^O(√log log n)) rounds, each holiday O(1); §5.2 runs ⌈log(Δ+1)⌉+1 phases."
	sizes := []int{128, 256, 512}
	if !cfg.Quick {
		sizes = append(sizes, 1024, 2048)
	}
	type result struct{ cells []any }
	results := make([]result, len(sizes))
	forEachIndex(len(sizes), func(i int) {
		n := sizes[i]
		g := graph.GNP(n, 12/float64(n), cfg.Seed+uint64(n))
		_, colStats, err := coloring.DistributedDelta1(g, cfg.Seed+uint64(i))
		if err != nil {
			panic(fmt.Sprintf("E6 n=%d: %v", n, err))
		}
		pg, err := core.NewPhasedGreedy(g, greedyColoringOf(g))
		if err != nil {
			panic(err)
		}
		_, distStats, err := core.NewDegreeBoundDistributed(g, cfg.Seed+uint64(i)+99)
		if err != nil {
			panic(err)
		}
		phaseBound := 1
		for (1 << uint(phaseBound-1)) < g.MaxDegree()+1 {
			phaseBound++
		}
		results[i] = result{[]any{n, g.MaxDegree(), colStats.Rounds, colStats.Messages,
			pg.RoundsPerHoliday(), distStats.Phases, distStats.Rounds,
			boolCell(distStats.Phases <= phaseBound+1)}}
	})
	for _, r := range results {
		tb.AddRow(r.cells...)
	}
	return tb
}

// E7FirstGrab validates the §1 fair-share analysis of the chaotic process:
// the empirical happiness frequency matches 1/(d+1) and the mean gap
// matches d+1 across degree classes.
func E7FirstGrab(cfg Config) *stats.Table {
	tb := stats.NewTable("E7: first-come-first-grab fair share (§1)",
		"family", "degree", "nodes", "P[happy] measured", "1/(d+1)", "mean gap", "d+1", "rel err")
	tb.Note = "Claim: P[happy] = 1/(deg+1); expected wait deg+1."
	fams := []family{
		{"clique16", graph.Clique(16)},
		{"star33", graph.Star(33)},
		{"gnp", graph.GNP(cfg.pick(400, 100), 0.02, cfg.Seed+8)},
	}
	horizon := int64(cfg.pick(40000, 8000))
	type rowGroup [][]any
	groups := make([]rowGroup, len(fams))
	forEach(fams, func(i int, f family) {
		fg := core.NewFirstGrab(f.g, cfg.Seed+uint64(i))
		rep := analyze(fg, f.g, horizon)
		// Aggregate by degree class.
		type agg struct {
			nodes  int
			happy  int64
			gapSum float64
			gapN   int
		}
		byDeg := make(map[int]*agg)
		for _, nr := range rep.Nodes {
			a := byDeg[nr.Degree]
			if a == nil {
				a = &agg{}
				byDeg[nr.Degree] = a
			}
			a.nodes++
			a.happy += nr.HappyCount
			if nr.MeanGap > 0 {
				a.gapSum += nr.MeanGap
				a.gapN++
			}
		}
		for _, d := range sortedDegrees(f.g) {
			a := byDeg[d]
			pHat := float64(a.happy) / float64(int64(a.nodes)*horizon)
			want := 1 / float64(d+1)
			meanGap := 0.0
			if a.gapN > 0 {
				meanGap = a.gapSum / float64(a.gapN)
			}
			relErr := (pHat - want) / want
			if relErr < 0 {
				relErr = -relErr
			}
			groups[i] = append(groups[i], []any{f.name, d, a.nodes, pHat, want, meanGap, d + 1, relErr})
		}
	})
	for _, g := range groups {
		for _, r := range g {
			tb.AddRow(r...)
		}
	}
	return tb
}

// E8Dynamic stresses the §6 dynamic setting: batches of w random marriages
// (plus interleaved divorces) hit a running DynamicColorBound schedule; the
// coloring must stay proper throughout, and after quiescence every node
// hosts within one current period, itself below the φ-bound for color
// c ≤ deg+1.
func E8Dynamic(cfg Config) *stats.Table {
	tb := stats.NewTable("E8: dynamic setting under churn (§6)",
		"w events", "recolorings", "proper throughout", "max recovery", "max period", "recovery ≤ period", "period ≤ phi-bound")
	tb.Note = "Claim: insertion recoloring keeps the schedule valid; post-quiescence wait ≤ current period ≤ φ(d+1)·2^{log*(d+1)+1}."
	n := cfg.pick(256, 64)
	for _, w := range []int{1, 8, 64} {
		g := graph.GNP(n, 4/float64(n), cfg.Seed+uint64(w))
		dc, err := core.NewDynamicColorBound(g, prefixcode.Omega{})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(w)+13, 7))
		properOK := true
		// Interleave: churn events spread over holidays.
		for k := 0; k < w; k++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			if rng.Float64() < 0.75 {
				if _, err := dc.AddEdge(u, v); err != nil {
					panic(err)
				}
			} else {
				dc.RemoveEdge(u, v)
			}
			dc.Next()
			if dc.VerifyProper() != nil {
				properOK = false
			}
		}
		// Quiescence: measure recovery.
		maxPeriod := int64(0)
		phiOK := true
		for v := 0; v < dc.N(); v++ {
			p := dc.CurrentPeriod(v)
			if p > maxPeriod {
				maxPeriod = p
			}
			if float64(p) > prefixcode.PeriodUpperBound(uint64(dc.Degree(v)+1))*(1+1e-9) {
				phiOK = false
			}
		}
		start := dc.Holiday()
		lastHosted := make([]int64, dc.N())
		hostedCount := 0
		hosted := make([]bool, dc.N())
		for dc.Holiday() < start+maxPeriod && hostedCount < dc.N() {
			for _, v := range dc.Next() {
				if !hosted[v] {
					hosted[v] = true
					hostedCount++
					lastHosted[v] = dc.Holiday() - start
				}
			}
		}
		maxRecovery := int64(0)
		for v := 0; v < dc.N(); v++ {
			if !hosted[v] {
				maxRecovery = maxPeriod + 1 // violation marker
				break
			}
			if lastHosted[v] > maxRecovery {
				maxRecovery = lastHosted[v]
			}
		}
		tb.AddRow(w, dc.Recolorings, boolCell(properOK), maxRecovery, maxPeriod,
			boolCell(maxRecovery <= maxPeriod), boolCell(phiOK))
	}
	return tb
}
