package experiments

import (
	"repro/internal/chairman"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prefixcode"
	"repro/internal/stats"
)

// E15Chairman compares the gathering schedulers against Tijdeman's chairman
// assignment (§1.3 related work) on cliques — the single shared resource
// where the two problems coincide. The chairman scheduler hits the exact
// period n; the paper's degree-bound scheduler pays the power-of-two
// rounding 2^⌈log n⌉ (its price for handling general graphs periodically),
// and phased greedy matches n without periodicity.
func E15Chairman(cfg Config) *stats.Table {
	tb := stats.NewTable("E15: clique scheduling vs chairman assignment (§1.3)",
		"n", "chairman max gap", "chairman deviation", "phased-greedy max gap", "degree-bound period", "2^ceil/exact ratio")
	tb.Note = "Claim: on K_n the exact fair period is n; power-of-two periodicity costs ≤ 2×."
	for _, n := range []int{4, 6, 9, 16, 23, 32} {
		gaps, err := chairman.MaxGap(uniformWeights(n), 64*n)
		if err != nil {
			panic(err)
		}
		chairGap := int64(0)
		for _, g := range gaps {
			if g > chairGap {
				chairGap = g
			}
		}
		cs := chairman.Uniform(n)
		cs.Run(64 * n)

		g := graph.Clique(n)
		pg, err := core.NewPhasedGreedy(g, greedyColoringOf(g))
		if err != nil {
			panic(err)
		}
		rep := analyze(pg, g, int64(16*n))
		pgGap := int64(0)
		for _, nr := range rep.Nodes {
			if nr.MaxGap > pgGap {
				pgGap = nr.MaxGap
			}
		}
		db := core.NewDegreeBoundSequential(g)
		tb.AddRow(n, chairGap, cs.MaxDeviation(), pgGap, db.Period(0),
			float64(db.Period(0))/float64(n))
	}
	return tb
}

func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// E16ColoringQuality ablates the coloring feeding the §4 scheduler: the
// scheduler is correct over ANY proper coloring, but period quality tracks
// the colors used — an optimal (chromatic) coloring gives the shortest
// periods, smallest-last and DSATUR come close, and a bad greedy order pays
// the price. This quantifies the paper's remark that §4 "works for any
// graph coloring, including the (possibly difficult to obtain) optimal one".
func E16ColoringQuality(cfg Config) *stats.Table {
	tb := stats.NewTable("E16: coloring quality ablation for the §4 scheduler",
		"graph", "coloring", "colors", "max period", "max run measured", "violations")
	tb.Note = "Claim: the color-bound scheduler is valid for every proper coloring; periods shrink with better colorings."
	cases := []family{
		{"petersen", petersenGraph()},
		{"C9", graph.Cycle(9)},
		{"crown8", crownGraph(8)},
		{"gnp(18,.3)", graph.GNP(18, 0.3, cfg.Seed+41)},
	}
	horizon := int64(cfg.pick(8192, 2048))
	for _, f := range cases {
		colorings := []struct {
			name string
			col  coloring.Coloring
		}{
			{"greedy-adversarial", coloring.Greedy(f.g, interleavedOrder(f.g.N()))},
			{"greedy-id", coloring.Greedy(f.g, coloring.IdentityOrder(f.g.N()))},
			{"smallest-last", coloring.SmallestLast(f.g)},
			{"dsatur", coloring.DSATUR(f.g)},
			{"optimal", optimalColoring(f.g)},
		}
		for _, c := range colorings {
			cb, err := core.NewColorBound(f.g, c.col, prefixcode.Omega{})
			if err != nil {
				panic(err)
			}
			maxPeriod := int64(0)
			for v := 0; v < f.g.N(); v++ {
				if cb.Period(v) > maxPeriod {
					maxPeriod = cb.Period(v)
				}
			}
			rep := analyze(cb, f.g, horizon)
			maxRun := int64(0)
			for _, nr := range rep.Nodes {
				if nr.MaxUnhappyRun > maxRun {
					maxRun = nr.MaxUnhappyRun
				}
			}
			tb.AddRow(f.name, c.name, c.col.CountColors(), maxPeriod, maxRun, rep.IndependenceViolations)
		}
	}
	return tb
}

// optimalColoring returns a χ(G)-coloring via the exact solver.
func optimalColoring(g *graph.Graph) coloring.Coloring {
	chi := coloring.ChromaticNumber(g)
	col, ok := coloring.KColoring(g, chi)
	if !ok {
		panic("experiments: chromatic number unrealizable")
	}
	return col
}

// crownGraph returns K_{n,n} minus a perfect matching: χ = 2, yet greedy
// coloring in the interleaved order 0, n, 1, n+1, … is forced to n colors —
// the textbook witness that coloring quality, not the scheduler, drives the
// §4 periods.
func crownGraph(n int) *graph.Graph {
	b := graph.NewBuilder(2 * n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(i, n+j)
			}
		}
	}
	return b.Graph()
}

// interleavedOrder returns 0, n/2, 1, n/2+1, … — adversarial for crown
// graphs, harmless elsewhere.
func interleavedOrder(n int) []int {
	half := n / 2
	out := make([]int, 0, n)
	for i := 0; i < half; i++ {
		out = append(out, i, half+i)
	}
	for v := 2 * half; v < n; v++ {
		out = append(out, v)
	}
	return out
}

// petersenGraph builds the Petersen graph (χ = 3, Δ = 3).
func petersenGraph() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
		b.AddEdge(5+i, 5+(i+2)%5)
		b.AddEdge(i, 5+i)
	}
	return b.Graph()
}
