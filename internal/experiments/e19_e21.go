package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/poly"
	"repro/internal/stats"
)

// polyDemands assigns each edge of g a reproducible power-of-two demand from
// the given menu, returning edges in g's canonical order.
func polyDemands(g *graph.Graph, menu []int64, seed uint64) ([]graph.Edge, []int64) {
	rng := rand.New(rand.NewPCG(seed, 17))
	edges := g.Edges()
	demands := make([]int64, len(edges))
	for i := range edges {
		demands[i] = menu[rng.IntN(len(menu))]
	}
	return edges, demands
}

// buildPoly schedules g's edges with the named approximation algorithm.
func buildPoly(g *graph.Graph, code string, edges []graph.Edge, demands []int64) *poly.Dyn {
	d, err := poly.New(g.N(), code)
	if err != nil {
		panic(err)
	}
	for i, e := range edges {
		d.AddEdge(e.U, e.V, demands[i])
	}
	return d
}

// E19PolySchedulers validates the two Polyamorous Scheduling approximation
// algorithms (arXiv 2411.06292 via internal/poly): on every family, both
// the global layering scheduler and the frequency-bucketed scheduler must
// produce a matching-per-slot schedule whose per-edge maximum gap respects
// that edge's demand (max gap ratio ≤ 1) while keeping dyadic density ≤ 1.
func E19PolySchedulers(cfg Config) *stats.Table {
	tb := stats.NewTable("E19: poly approximation schedulers meet every edge demand (arXiv 2411.06292)",
		"instance", "code", "edges", "layers", "density", "demand density", "max gap ratio", "fairness", "demands met")
	tb.Note = "Edge-scheduling: each timeslot is a matching; per-edge gap ≤ demand on every family, for both schedulers."
	n := cfg.pick(128, 48)
	menu := []int64{16, 32, 64, 128, 256}
	// All of a star's edges share the hub, so they all need distinct layers:
	// feasibility demands Σ 1/demand ≤ 1, which the default menu breaks at
	// full size. The hub menu keeps the instance feasible at any n here.
	hubMenu := []int64{128, 256, 512, 1024}
	families := []struct {
		name string
		g    *graph.Graph
		menu []int64
	}{
		{"cycle", graph.Cycle(n), menu},
		{"star", graph.Star(n / 2), hubMenu},
		{"gnp sparse", graph.GNP(n, 3.0/float64(n), cfg.Seed), menu},
		{"clique", graph.Clique(cfg.pick(16, 10)), menu},
		{"random tree", graph.RandomTree(n, cfg.Seed+1), menu},
	}
	for _, f := range families {
		edges, demands := polyDemands(f.g, f.menu, cfg.Seed+uint64(len(f.name)))
		for _, code := range poly.Codes() {
			d := buildPoly(f.g, code, edges, demands)
			if err := d.Verify(); err != nil {
				panic(fmt.Sprintf("E19 %s/%s: %v", f.name, code, err))
			}
			st := d.Stats()
			ok := st.MaxGapRatio <= 1 && st.Density <= 1+1e-9
			tb.AddRow(f.name, code, st.Edges, st.Layers,
				fmt.Sprintf("%.3f", st.Density), fmt.Sprintf("%.3f", st.DemandDensity),
				fmt.Sprintf("%.2f", st.MaxGapRatio), fmt.Sprintf("%.3f", st.Fairness), boolCell(ok))
		}
	}
	return tb
}

// slotPeriod reads an edge slot's firing period off the frozen schedule:
// the distance between its first two firings (0 for never-happy slots).
func slotPeriod(ps *poly.Schedule, slot int) int64 {
	t1 := ps.NextHappy(slot, 1)
	if t1 == 0 {
		return 0
	}
	return ps.NextHappy(slot, t1+1) - t1
}

// unionGap returns the maximum gap of the union of two arithmetic
// progressions t ≡ o mod p — the service an edge receives under a *node*
// schedule, where either endpoint's gathering covers the pair.
func unionGap(pu, ou, pv, ov int64) int64 {
	span := pu
	if pv > span {
		span = pv
	}
	var last, worst int64
	for t := int64(0); t <= 2*span; t++ {
		if t%pu == ou%pu || t%pv == ov%pv {
			if t-last > worst {
				worst = t - last
			}
			last = t
		}
	}
	return worst
}

// E20NodeVsEdge compares node-scheduling (the paper's degree-bound
// gathering schedule: a firing family hosts its whole neighborhood) with
// edge-scheduling (poly: a firing is one pairwise meeting) on the same
// uniform per-pair demand. Two prices are measured: the worst gap any pair
// sees, and the attendance cost rate — family-slots spent per timeslot,
// (deg+1)/period summed over nodes vs 2/period summed over edges. Node
// schedules over-serve (shorter gaps, every gathering drags the whole
// neighborhood); edge schedules meet each demand exactly at a fraction of
// the attendance cost — decisively so on hub-heavy families, where every
// leaf's period-2 firing bills the hub.
func E20NodeVsEdge(cfg Config) *stats.Table {
	tb := stats.NewTable("E20: node- vs edge-scheduling on uniform pairwise demands",
		"instance", "demand", "pair gap (node)", "pair gap (edge)", "cost/slot (node)", "cost/slot (edge)", "cost winner", "edge demands met")
	tb.Note = "Attendance cost = family-slots per timeslot; node gatherings over-serve, edge meetings pay only the pair."
	families := []struct {
		name   string
		g      *graph.Graph
		demand int64
	}{
		{"star", graph.Star(cfg.pick(64, 24)), 64},
		{"clique", graph.Clique(cfg.pick(12, 8)), 32},
		{"cycle", graph.Cycle(cfg.pick(96, 32)), 8},
		{"gnp sparse", graph.GNP(cfg.pick(96, 40), 0.06, cfg.Seed), 64},
	}
	for _, f := range families {
		db := core.NewDegreeBoundSequential(f.g)
		edges := f.g.Edges()
		demands := make([]int64, len(edges))
		for i := range demands {
			demands[i] = f.demand
		}
		d := buildPoly(f.g, poly.CodeLayering, edges, demands)
		ps := d.FrozenSchedule()

		var nodeGap, edgeGap int64
		for slot, e := range edges {
			if g := unionGap(db.Period(e.U), db.Offset(e.U), db.Period(e.V), db.Offset(e.V)); g > nodeGap {
				nodeGap = g
			}
			if p := slotPeriod(ps, slot); p > edgeGap {
				edgeGap = p
			}
		}
		nodeCost, edgeCost := 0.0, 0.0
		for v := 0; v < f.g.N(); v++ {
			nodeCost += float64(f.g.Degree(v)+1) / float64(db.Period(v))
		}
		for slot := range edges {
			if p := slotPeriod(ps, slot); p > 0 {
				edgeCost += 2 / float64(p)
			}
		}
		winner := "edge"
		if nodeCost < edgeCost {
			winner = "node"
		}
		tb.AddRow(f.name, f.demand, nodeGap, edgeGap,
			fmt.Sprintf("%.2f", nodeCost), fmt.Sprintf("%.2f", edgeCost),
			winner, boolCell(edgeGap <= f.demand))
	}
	return tb
}

// E21PolyChurn stresses the incremental repair path: sustained random
// marry/divorce churn against both poly schedulers, verifying the full
// matching/disjointness invariant and demand satisfaction after the run,
// and counting how often the escape-hatch relayering fired. Demands are
// drawn sparse enough to stay feasible, so a gap ratio above 1 or an
// invariant break is a repair bug, not an overloaded instance.
func E21PolyChurn(cfg Config) *stats.Table {
	tb := stats.NewTable("E21: poly incremental repair under marry/divorce churn",
		"code", "events", "marries", "divorces", "relayerings", "edges", "density", "max gap ratio", "demands met")
	tb.Note = "Churn maps to edge insert/delete; repair stays local, with full relayering only as the escape hatch."
	n := cfg.pick(96, 40)
	events := cfg.pick(3000, 600)
	menu := []int64{32, 64, 128, 256}
	for _, code := range poly.Codes() {
		d, err := poly.New(n, code)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewPCG(cfg.Seed+21, uint64(len(code))))
		marries, divorces := 0, 0
		for k := 0; k < events; k++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			if rng.Float64() < 0.65 {
				if applied, _ := d.AddEdge(u, v, menu[rng.IntN(len(menu))]); applied {
					marries++
				}
			} else if d.RemoveEdge(u, v) {
				divorces++
			}
		}
		if err := d.Verify(); err != nil {
			panic(fmt.Sprintf("E21 %s: %v", code, err))
		}
		st := d.Stats()
		ok := st.MaxGapRatio <= 1 && st.Density <= 1+1e-9
		tb.AddRow(code, events, marries, divorces, st.Relayerings, st.Edges,
			fmt.Sprintf("%.3f", st.Density), fmt.Sprintf("%.2f", st.MaxGapRatio), boolCell(ok))
	}
	return tb
}
