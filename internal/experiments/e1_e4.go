package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/prefixcode"
	"repro/internal/stats"
)

// E1PhasedGreedy validates Theorem 3.1: under Phased Greedy Coloring, every
// node of degree d is happy at least once within every d+1 consecutive
// holidays (longest unhappy run ≤ d). One row per graph family; the "slack"
// column is max over nodes of (run − d) and must never be positive.
func E1PhasedGreedy(cfg Config) *stats.Table {
	tb := stats.NewTable("E1: Phased Greedy (Theorem 3.1)",
		"family", "n", "m", "maxdeg", "horizon", "max run", "worst run-d", "violations", "bound holds")
	tb.Note = "Claim: longest unhappy run ≤ deg(v) for every node; happy sets independent."
	fams := standardFamilies(cfg)
	rows := make([][]any, len(fams))
	forEach(fams, func(i int, f family) {
		pg, err := core.NewPhasedGreedy(f.g, greedyColoringOf(f.g))
		if err != nil {
			panic(fmt.Sprintf("E1 %s: %v", f.name, err))
		}
		horizon := int64(4 * (f.g.MaxDegree() + 2))
		rep := analyze(pg, f.g, horizon)
		maxRun, slack := maxRunStats(rep, func(nr core.NodeReport) int64 { return int64(nr.Degree) })
		rows[i] = []any{f.name, f.g.N(), f.g.M(), f.g.MaxDegree(), horizon,
			maxRun, slack, rep.IndependenceViolations, boolCell(slack <= 0 && rep.IndependenceViolations == 0)}
	})
	for _, r := range rows {
		tb.AddRow(r...)
	}
	return tb
}

// E2ColorBound validates Theorem 4.2 in closed form and by simulation: the
// omega schedule's period for color c is exactly 2^ρ(c) and never exceeds
// 2^{1+log* c}·φ(c). One row per representative color.
func E2ColorBound(cfg Config) *stats.Table {
	tb := stats.NewTable("E2: Omega color-bound periods (Theorem 4.2)",
		"color", "rho", "period 2^rho", "bound 2^{1+log*c}·phi(c)", "ratio", "within bound")
	tb.Note = "Claim: period(c) = 2^rho(c) ≤ 2^{1+log* c}·phi(c) for every color."
	colors := []uint64{1, 2, 3, 4, 5, 8, 9, 16, 17, 64, 256, 1024, 4096, 65536}
	if !cfg.Quick {
		colors = append(colors, 1<<20)
	}
	for _, c := range colors {
		rho := prefixcode.Rho(c)
		period := float64(int64(1) << uint(rho))
		bound := prefixcode.PeriodUpperBound(c)
		tb.AddRow(c, rho, period, bound, period/bound, boolCell(period <= bound*(1+1e-9)))
	}
	// Simulation cross-check on one family: measured max gap equals the
	// closed-form period for every node whose period fits the horizon.
	g := sparseGNPFamily(cfg)
	cb, err := core.NewColorBound(g, greedyColoringOf(g), prefixcode.Omega{})
	if err != nil {
		panic(err)
	}
	horizon := int64(cfg.pick(4096, 1024))
	rep := analyze(cb, g, horizon)
	mismatch := 0
	for _, nr := range rep.Nodes {
		p := cb.Period(nr.Node)
		if 2*p <= horizon && nr.MaxGap != p {
			mismatch++
		}
	}
	tb.AddRow("sim-check", "-", "-", "-",
		fmt.Sprintf("%d gap mismatches", mismatch), boolCell(mismatch == 0 && rep.IndependenceViolations == 0))
	return tb
}

// E3DegreeBound validates Theorem 5.3 and Lemmas 5.1/5.2 for both the
// sequential and the distributed constructions: period exactly
// 2^⌈log(d+1)⌉ ≤ 2d, zero conflicts.
func E3DegreeBound(cfg Config) *stats.Table {
	tb := stats.NewTable("E3: Degree-bound scheduler (Theorem 5.3)",
		"family", "variant", "n", "maxdeg", "max period", "max period/2d", "conflicts", "violations", "dist rounds", "bound holds")
	tb.Note = "Claim: period(v) = 2^ceil(log(deg+1)) ≤ 2·deg for deg ≥ 1; adjacent nodes never collide."
	fams := standardFamilies(cfg)
	type row struct{ cells []any }
	rows := make([][]row, len(fams))
	forEach(fams, func(i int, f family) {
		for _, variant := range []string{"sequential", "distributed"} {
			var db *core.DegreeBound
			distRounds := "-"
			if variant == "sequential" {
				db = core.NewDegreeBoundSequential(f.g)
			} else {
				var st core.DistStats
				var err error
				db, st, err = core.NewDegreeBoundDistributed(f.g, cfg.Seed+uint64(i))
				if err != nil {
					panic(fmt.Sprintf("E3 %s: %v", f.name, err))
				}
				distRounds = fmt.Sprint(st.Rounds)
			}
			conflicts := 0
			if err := db.VerifyNoConflicts(); err != nil {
				conflicts = 1
			}
			maxPeriod, worstRatio := int64(0), 0.0
			for v := 0; v < f.g.N(); v++ {
				if db.Period(v) > maxPeriod {
					maxPeriod = db.Period(v)
				}
				if d := f.g.Degree(v); d >= 1 {
					if r := float64(db.Period(v)) / float64(2*d); r > worstRatio {
						worstRatio = r
					}
				}
			}
			rep := analyze(db, f.g, int64(cfg.pick(2048, 512)))
			rows[i] = append(rows[i], row{[]any{f.name, variant, f.g.N(), f.g.MaxDegree(),
				maxPeriod, worstRatio, conflicts, rep.IndependenceViolations, distRounds,
				boolCell(conflicts == 0 && worstRatio <= 1 && rep.IndependenceViolations == 0)}})
		}
	})
	for _, rs := range rows {
		for _, r := range rs {
			tb.AddRow(r.cells...)
		}
	}
	return tb
}

// E4SchedulerComparison is the paper's locality story as a figure: on a
// "clan" graph — one tightly intermarried clique of k families, each with a
// tail of pendant single-child families — the worst wait of each degree
// class under each scheduler. The clique forces any proper coloring to use
// k colors, so round-robin charges even degree-1 families the global price
// k−1, while the paper's schedulers charge local prices (1 for a leaf).
// One row per degree, one column per scheduler.
func E4SchedulerComparison(cfg Config) *stats.Table {
	g := clanGraph(cfg.pick(24, 10), 4)
	names := []string{"round-robin", "phased-greedy", "color-bound/omega", "degree-bound", "first-grab", "greedy-mis"}
	tb := stats.NewTable("E4: worst unhappy run by degree (clan graph: clique + pendant leaves)",
		append([]string{"degree", "nodes"}, names...)...)
	tb.Note = "Figure: local schedulers bound low-degree waits; round-robin charges the chromatic number globally."
	col := greedyColoringOf(g)
	horizon := int64(cfg.pick(4096, 1024))
	reports := make([]*core.Report, len(names))
	schedulers := []core.Scheduler{}
	rr, err := core.NewRoundRobin(g, col)
	if err != nil {
		panic(err)
	}
	pg, err := core.NewPhasedGreedy(g, col)
	if err != nil {
		panic(err)
	}
	cb, err := core.NewColorBound(g, col, prefixcode.Omega{})
	if err != nil {
		panic(err)
	}
	schedulers = append(schedulers, rr, pg, cb,
		core.NewDegreeBoundSequential(g), core.NewFirstGrab(g, cfg.Seed+77),
		core.NewGreedyMIS(g, cfg.Seed+78))
	engine.ForEach(len(schedulers), 0, func(i int) {
		reports[i] = analyze(schedulers[i], g, horizon)
	})
	byDeg := make([]map[int]int64, len(reports))
	for i, rep := range reports {
		byDeg[i] = rep.MaxUnhappyRunByDegree()
	}
	degCount := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		degCount[g.Degree(v)]++
	}
	for _, d := range sortedDegrees(g) {
		cells := []any{d, degCount[d]}
		for i := range reports {
			cells = append(cells, byDeg[i][d])
		}
		tb.AddRow(cells...)
	}
	return tb
}

// clanGraph builds a clique of k families where clan member u also has
// u mod (maxLeaves+1) pendant single-child in-laws: the archetypal graph
// where the global chromatic number (k) dwarfs most nodes' local degree,
// with a spread of clan degrees for the per-degree series.
func clanGraph(k, maxLeaves int) *graph.Graph {
	b := graph.NewBuilder(k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(u, v)
		}
	}
	next := k
	for u := 0; u < k; u++ {
		for l := 0; l < u%(maxLeaves+1); l++ {
			b.AddEdge(u, next)
			next++
		}
	}
	return b.Graph()
}
