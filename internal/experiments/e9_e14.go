package experiments

import (
	"fmt"
	"time"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/prefixcode"
	"repro/internal/radio"
	"repro/internal/stats"
)

// E9Satisfaction validates Theorem A.2: the linear-time peeling algorithm
// attains the Hopcroft–Karp optimum (and the closed form n − acyclic
// components) while running asymptotically faster.
func E9Satisfaction(cfg Config) *stats.Table {
	tb := stats.NewTable("E9: maximum satisfaction (Appendix A.3)",
		"family", "n", "m", "satisfied", "optimal", "linear (ms)", "hopcroft-karp (ms)", "speedup")
	tb.Note = "Claim: linear-time peeling = Hopcroft–Karp optimum = n − #acyclic components."
	n := cfg.pick(1<<15, 1<<11)
	fams := []family{
		{"tree", graph.RandomTree(n, cfg.Seed+21)},
		{"gnp sparse", graph.GNP(n, 2/float64(n), cfg.Seed+22)},
		{"gnp super", graph.GNP(n/4, 12/float64(n/4), cfg.Seed+23)},
		{"bipartite", graph.RandomBipartite(n/2, n/2, 3/float64(n/2), cfg.Seed+24)},
		{"cycle", graph.Cycle(n)},
	}
	type rowT struct{ cells []any }
	rows := make([]rowT, len(fams))
	forEach(fams, func(i int, f family) {
		t0 := time.Now()
		res := matching.MaxSatisfaction(f.g)
		linMS := float64(time.Since(t0).Microseconds()) / 1000

		t1 := time.Now()
		hk := matching.MaxSatisfactionHK(f.g)
		hkMS := float64(time.Since(t1).Microseconds()) / 1000

		formula := matching.MaxSatisfactionFormula(f.g)
		speedup := 0.0
		if linMS > 0 {
			speedup = hkMS / linMS
		}
		rows[i] = rowT{[]any{f.name, f.g.N(), f.g.M(), res.Count,
			boolCell(res.Count == hk && res.Count == formula), linMS, hkMS, speedup}}
	})
	for _, r := range rows {
		tb.AddRow(r.cells...)
	}
	return tb
}

// E10MIS charts the Appendix A.1/A.2 hardness landscape: exact MIS (maximum
// single-holiday happiness) vs the greedy heuristic vs the fair-share sum
// Σ 1/(d+1) that the paper adopts as the practical landmark.
func E10MIS(cfg Config) *stats.Table {
	tb := stats.NewTable("E10: single-holiday happiness maximization (Appendix A)",
		"p", "n", "exact MIS", "greedy", "greedy/exact", "fair share Σ1/(d+1)", "fair/exact")
	tb.Note = "Claim: maximizing happiness is MIS (MAXSNP-hard); greedy and the fair share trail the optimum."
	n := cfg.pick(28, 18)
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		g := graph.GNP(n, p, cfg.Seed+uint64(p*100))
		exact := len(mis.Exact(g))
		greedy := len(mis.Greedy(g))
		fair := 0.0
		for v := 0; v < g.N(); v++ {
			fair += 1 / float64(g.Degree(v)+1)
		}
		tb.AddRow(p, n, exact, greedy,
			float64(greedy)/float64(exact), fair, fair/float64(exact))
	}
	return tb
}

// E11Codes is the §4.2 ablation: the same colored graph scheduled with each
// prefix-free code. All codes are correct (prefix-freeness ⇒ independence);
// they differ only in how the period grows with the color.
func E11Codes(cfg Config) *stats.Table {
	tb := stats.NewTable("E11: prefix-code ablation (§4.2)",
		"code", "period(c=4)", "period(c=64)", "period(c=1024)", "max run measured", "violations")
	tb.Note = "Claim: any prefix-free code yields a valid schedule; omega's iterated-log length is near-optimal asymptotically."
	g := graph.GNP(cfg.pick(256, 96), 0.05, cfg.Seed+31)
	col := greedyColoringOf(g)
	horizon := int64(cfg.pick(4096, 1024))
	codes := prefixcode.All()
	type rowT struct{ cells []any }
	rows := make([]rowT, len(codes))
	forEachIndex(len(codes), func(i int) {
		code := codes[i]
		period := func(c uint64) any {
			l := code.Len(c)
			if l > 62 {
				return "2^" + fmt.Sprint(l)
			}
			return int64(1) << uint(l)
		}
		cb, err := core.NewColorBound(g, col, code)
		if err != nil {
			// Unary on large colors can overflow; report and skip simulation.
			rows[i] = rowT{[]any{code.Name(), period(4), period(64), period(1024), "overflow", "-"}}
			return
		}
		rep := analyze(cb, g, horizon)
		maxRun := int64(0)
		for _, nr := range rep.Nodes {
			if nr.MaxUnhappyRun > maxRun {
				maxRun = nr.MaxUnhappyRun
			}
		}
		rows[i] = rowT{[]any{code.Name(), period(4), period(64), period(1024), maxRun, rep.IndependenceViolations}}
	})
	for _, r := range rows {
		tb.AddRow(r.cells...)
	}
	return tb
}

// E12Separation probes the paper's closing conjecture: perfect periodicity
// costs something. For each small graph it reports whether the exact d+1
// period vector admits a conflict-free offset assignment, whether the §5
// power-of-two relaxation does (it always must), and the minimal uniform
// period (= chromatic number).
func E12Separation(cfg Config) *stats.Table {
	tb := stats.NewTable("E12: periodic vs non-periodic separation (§6 conjecture)",
		"graph", "d+1 periods feasible", "2^ceil periods feasible", "min uniform period", "maxdeg+1")
	tb.Note = "Conjecture: some graphs admit no perfectly periodic schedule at the non-periodic d+1 rate."
	cases := []family{
		{"K4", graph.Clique(4)},
		{"K6", graph.Clique(6)},
		{"star4 (even ctr period)", graph.Star(4)},
		{"star5 (odd ctr period)", graph.Star(5)},
		{"star9", graph.Star(9)},
		{"C5", graph.Cycle(5)},
		{"C6", graph.Cycle(6)},
		{"C7", graph.Cycle(7)},
		{"P5", graph.Path(5)},
		{"K33", graph.CompleteBipartite(3, 3)},
		{"grid3x3", graph.Grid(3, 3)},
	}
	type rowT struct{ cells []any }
	rows := make([]rowT, len(cases))
	forEach(cases, func(i int, f family) {
		_, dPlus1 := core.FeasibleOffsets(f.g, core.DegreePlusOnePeriods(f.g))
		_, pow2 := core.FeasibleOffsets(f.g, core.PowerOfTwoPeriods(f.g))
		minU := core.MinUniformPeriod(f.g, int64(f.g.N())+1)
		rows[i] = rowT{[]any{f.name, boolCell(dPlus1), boolCell(pow2), minU, f.g.MaxDegree() + 1}}
	})
	for _, r := range rows {
		tb.AddRow(r.cells...)
	}
	return tb
}

// E13Bipartite reproduces the intro's intergroup-marriage example: with a
// bipartite 2-coloring, the color-bound schedule keeps every family's wait
// constant no matter how many children it has, while the degree-bound
// schedule must still charge 2^⌈log(d+1)⌉.
func E13Bipartite(cfg Config) *stats.Table {
	tb := stats.NewTable("E13: bipartite society (§1 example)",
		"side size", "maxdeg", "color-bound max run", "degree-bound max run", "color beats degree")
	tb.Note = "Claim: a 2-colorable society gathers every O(1) years regardless of degree."
	for _, a := range []int{4, 16, cfg.pick(64, 32)} {
		g := graph.CompleteBipartite(a, a)
		col, err := coloring.Bipartite(g)
		if err != nil {
			panic(err)
		}
		cb, err := core.NewColorBound(g, col, prefixcode.Omega{})
		if err != nil {
			panic(err)
		}
		horizon := int64(8 * (2*a + 2))
		cbRep := analyze(cb, g, horizon)
		dbRep := analyze(core.NewDegreeBoundSequential(g), g, horizon)
		cbMax, _ := maxRunStats(cbRep, func(nr core.NodeReport) int64 { return 1 << 62 })
		dbMax, _ := maxRunStats(dbRep, func(nr core.NodeReport) int64 { return 1 << 62 })
		tb.AddRow(a, g.MaxDegree(), cbMax, dbMax, boolCell(cbMax < dbMax || a <= 4))
	}
	return tb
}

// E14Radio evaluates the motivating application: unit-disk radio networks
// under increasing density. Periodic schedules transmit collision-free while
// sleeping between slots; the non-periodic phased greedy must stay awake;
// round-robin is fair in absolute rate but unfair relative to local
// interference.
func E14Radio(cfg Config) *stats.Table {
	tb := stats.NewTable("E14: radio slot scheduling (§1 application)",
		"radius", "maxdeg", "scheduler", "collisions", "jain fairness", "awake/tx", "min throughput")
	tb.Note = "Claim: periodic schedules give collision-free TDMA with energy ∝ transmissions and locally fair rates."
	n := cfg.pick(256, 96)
	slots := int64(cfg.pick(4096, 1024))
	for _, radius := range []float64{0.06, 0.12, 0.2} {
		nw := radio.NewNetwork(n, radius, cfg.Seed+uint64(radius*1000))
		col := greedyColoringOf(nw.G)
		rr, err := core.NewRoundRobin(nw.G, col)
		if err != nil {
			panic(err)
		}
		pg, err := core.NewPhasedGreedy(nw.G, col)
		if err != nil {
			panic(err)
		}
		scheds := []core.Scheduler{core.NewDegreeBoundSequential(nw.G), rr, pg}
		reports := make([]*radio.Report, len(scheds))
		forEachIndex(len(scheds), func(i int) {
			reports[i] = nw.Run(scheds[i], slots)
		})
		for _, rep := range reports {
			minTp := 1.0
			for _, tp := range rep.Throughput {
				if tp < minTp {
					minTp = tp
				}
			}
			tb.AddRow(radius, nw.G.MaxDegree(), rep.Scheduler, rep.Collisions,
				rep.Fairness, rep.MeanAwakePerTx, minTp)
		}
	}
	return tb
}
