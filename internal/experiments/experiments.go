// Package experiments implements the reproduction harness: one function per
// experiment in DESIGN.md §5 (E1–E18), each regenerating the table or data
// series that validates a theorem, lemma, or claim of the paper. The paper
// is pure theory with no measured tables of its own, so these experiments
// are its claims rendered as empirical artifacts: the measured quantity must
// respect the proven bound, and baselines must lose where the paper says
// they must.
//
// Every experiment takes a Config and returns a stats.Table; All runs the
// full battery concurrently. Config.Quick shrinks workloads for CI and
// benchmarks while keeping every assertion meaningful.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Config controls workload sizes and reproducibility.
type Config struct {
	// Quick shrinks instance sizes by roughly an order of magnitude.
	Quick bool
	// Seed makes all randomized workloads reproducible.
	Seed uint64
}

// pick returns full or quick depending on the configuration.
func (c Config) pick(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Experiment couples an id to its runner.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Config) *stats.Table
}

// Registry lists every experiment in DESIGN.md order.
func Registry() []Experiment {
	return []Experiment{
		{"E1", "Theorem 3.1: phased greedy waits ≤ deg+1", E1PhasedGreedy},
		{"E2", "Theorem 4.2: omega color-bound period ≤ 2^{1+log*c}·φ(c)", E2ColorBound},
		{"E3", "Theorem 5.3: degree-bound period 2^⌈log(d+1)⌉ ≤ 2d", E3DegreeBound},
		{"E4", "Locality figure: per-degree worst wait across schedulers", E4SchedulerComparison},
		{"E5", "Theorem 4.1: Cauchy condensation feasibility frontier", E5CauchySums},
		{"E6", "Round complexity of distributed initialization", E6Rounds},
		{"E7", "First-grab process: P[happy] = 1/(d+1)", E7FirstGrab},
		{"E8", "§6 dynamic setting: recovery under edge churn", E8Dynamic},
		{"E9", "Appendix A.3: maximum satisfaction, linear time vs Hopcroft–Karp", E9Satisfaction},
		{"E10", "Appendix A.1/A.2: happiness maximization hardness gap", E10MIS},
		{"E11", "Prefix-code ablation: unary/gamma/delta/omega periods", E11Codes},
		{"E12", "§6 conjecture: periodic vs non-periodic separation", E12Separation},
		{"E13", "§1 bipartite special case: 2-periodic regardless of degree", E13Bipartite},
		{"E14", "Radio application: collisions, fairness, energy", E14Radio},
		{"E15", "§1.3 related work: clique scheduling vs Tijdeman's chairman assignment", E15Chairman},
		{"E16", "§4 ablation: coloring quality drives color-bound periods", E16ColoringQuality},
		{"E17", "§1.3 LOCAL model: deterministic Cole–Vishkin ring pipeline in O(log* n) rounds", E17ColeVishkin},
		{"E18", "§6 open problem: dynamic degree-bound maintenance under churn", E18DynamicDegreeBound},
		{"E19", "arXiv 2411.06292: poly approximation schedulers meet every edge demand", E19PolySchedulers},
		{"E20", "node- vs edge-scheduling: pair gaps and attendance cost on uniform demands", E20NodeVsEdge},
		{"E21", "poly incremental repair under marry/divorce churn", E21PolyChurn},
	}
}

// All runs every experiment across the engine's worker pool and returns the
// tables in registry order.
func All(cfg Config) []*stats.Table {
	reg := Registry()
	tables := make([]*stats.Table, len(reg))
	engine.ForEach(len(reg), 0, func(i int) {
		tables[i] = reg[i].Run(cfg)
	})
	return tables
}

// family is a named workload graph.
type family struct {
	name string
	g    *graph.Graph
}

// standardFamilies returns the graph families used by the scheduler-facing
// experiments, sized by the configuration.
func standardFamilies(cfg Config) []family {
	n := cfg.pick(1024, 128)
	return []family{
		{"clique", graph.Clique(cfg.pick(64, 16))},
		{"cycle", graph.Cycle(n)},
		{"star", graph.Star(cfg.pick(256, 32))},
		{"grid", graph.Grid(cfg.pick(32, 8), cfg.pick(32, 8))},
		{fmt.Sprintf("gnp(%d,sparse)", n), graph.GNP(n, 8/float64(n), cfg.Seed+1)},
		{fmt.Sprintf("gnp(%d,dense)", n/2), graph.GNP(n/2, 32/float64(n/2), cfg.Seed+2)},
		{"tree", graph.RandomTree(n, cfg.Seed+3)},
		{"regular8", graph.RandomRegular(cfg.pick(512, 64), 8, cfg.Seed+4)},
		{"powerlaw", graph.PreferentialAttachment(n, 3, cfg.Seed+5)},
		{"bipartite", graph.RandomBipartite(n/4, n/4, 8/float64(n/4), cfg.Seed+6)},
	}
}

// forEach runs fn over the families on the engine's worker pool, preserving
// order of results via the index.
func forEach(fams []family, fn func(i int, f family)) {
	engine.ForEach(len(fams), 0, func(i int) { fn(i, fams[i]) })
}

// analyze routes every experiment's scheduler run through the engine's
// bitset hot path (the engine adapts the scheduler to its random-access or
// replay Schedule internally). The harness already saturates the cores with the
// experiment×family fan-out (All and forEach run on the engine pool), so
// each individual run stays single-threaded — horizon sharding is for
// standalone large analyses (holiday.AnalyzeParallel, cmd/holiday,
// cmd/holidayd) where it is the only parallel axis. Reports are
// byte-identical to core.Analyze (see internal/engine tests).
func analyze(s core.Scheduler, g *graph.Graph, horizon int64) *core.Report {
	return engine.Analyze(s, g, horizon, engine.Options{Workers: 1})
}

// boolCell renders a pass/fail cell.
func boolCell(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// maxRunStats extracts the worst unhappy run and the worst slack
// (run − bound) from a report.
func maxRunStats(rep *core.Report, bound func(core.NodeReport) int64) (maxRun, worstSlack int64) {
	worstSlack = -1 << 62
	for _, nr := range rep.Nodes {
		if nr.MaxUnhappyRun > maxRun {
			maxRun = nr.MaxUnhappyRun
		}
		if s := nr.MaxUnhappyRun - bound(nr); s > worstSlack {
			worstSlack = s
		}
	}
	return maxRun, worstSlack
}

// greedyColoringOf is the default coloring for color-driven schedulers.
func greedyColoringOf(g *graph.Graph) coloring.Coloring {
	return coloring.Greedy(g, coloring.IdentityOrder(g.N()))
}

// sortedDegrees returns the distinct degrees present in g, ascending.
func sortedDegrees(g *graph.Graph) []int {
	seen := make(map[int]bool)
	for v := 0; v < g.N(); v++ {
		seen[g.Degree(v)] = true
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// sparseGNPFamily returns the sparse G(n,p) workload by construction,
// avoiding brittle positional coupling to standardFamilies.
func sparseGNPFamily(cfg Config) *graph.Graph {
	n := cfg.pick(1024, 128)
	return graph.GNP(n, 8/float64(n), cfg.Seed+1)
}
