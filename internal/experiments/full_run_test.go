package experiments

import "testing"

// TestPolyExperimentsFullSize runs E19–E21 at full (non-quick) workload
// sizes: the bench and report paths use the full configuration, so a
// panic or bound violation that only appears at scale must fail here.
func TestPolyExperimentsFullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size experiment run")
	}
	cfg := Config{Seed: 7}
	requireNoFailCell(t, E19PolySchedulers(cfg))
	requireNoFailCell(t, E20NodeVsEdge(cfg))
	requireNoFailCell(t, E21PolyChurn(cfg))
}
