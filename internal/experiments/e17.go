package experiments

import (
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prefixcode"
	"repro/internal/stats"
)

// E17ColeVishkin runs the fully deterministic pipeline on rings: the
// Cole–Vishkin 3-coloring (O(log* n) LOCAL rounds — the same log* that
// appears in Theorem 4.2's bound) feeding the §4 omega scheduler. Every
// family on a cycle of any size hosts at least every 2^ρ(3) = 8 holidays,
// and the initialization cost barely moves from C_64 to C_65536. The
// randomized Johansson coloring is shown alongside for comparison.
func E17ColeVishkin(cfg Config) *stats.Table {
	tb := stats.NewTable("E17: deterministic ring pipeline (Cole–Vishkin + §4)",
		"n", "log*(n)", "CV rounds", "CV colors", "max period", "max run", "violations",
		"randomized rounds", "randomized colors")
	tb.Note = "Claim: O(log* n)-round deterministic 3-coloring gives every ring family a period ≤ 8."
	sizes := []int{8, 64, 1024}
	if !cfg.Quick {
		sizes = append(sizes, 16384, 65536)
	}
	type rowT struct{ cells []any }
	rows := make([]rowT, len(sizes))
	forEachIndex(len(sizes), func(i int) {
		n := sizes[i]
		g := graph.Cycle(n)
		col, cvStats, err := coloring.ColeVishkinCycle(g, n)
		if err != nil {
			panic(err)
		}
		cb, err := core.NewColorBound(g, col, prefixcode.Omega{})
		if err != nil {
			panic(err)
		}
		maxPeriod := int64(0)
		for v := 0; v < n; v++ {
			if cb.Period(v) > maxPeriod {
				maxPeriod = cb.Period(v)
			}
		}
		rep := analyze(cb, g, 64)
		maxRun := int64(0)
		for _, nr := range rep.Nodes {
			if nr.MaxUnhappyRun > maxRun {
				maxRun = nr.MaxUnhappyRun
			}
		}
		randCol, randStats, err := coloring.DistributedDelta1(g, cfg.Seed+uint64(n))
		if err != nil {
			panic(err)
		}
		rows[i] = rowT{[]any{n, prefixcode.LogStar(float64(n)), cvStats.Rounds, col.CountColors(),
			maxPeriod, maxRun, rep.IndependenceViolations,
			randStats.Rounds, randCol.CountColors()}}
	})
	for _, r := range rows {
		tb.AddRow(r.cells...)
	}
	return tb
}
