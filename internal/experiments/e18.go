package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
)

// E18DynamicDegreeBound explores the paper's main open problem (§6):
// maintaining the degree-bound schedule on a dynamic graph. The §5
// construction depends on assigning high-degree nodes first, so naive
// maintenance can be blocked by earlier low-degree assignments (the parity
// trap: two period-2 neighbors on opposite parities saturate every
// modulus). The experiment churns random graphs and reports how often each
// repair tier fires — local repick, cascade into neighbors, or a full
// rebuild — and how far the maintained periods drift above the static
// 2^⌈log(d+1)⌉ target.
func E18DynamicDegreeBound(cfg Config) *stats.Table {
	tb := stats.NewTable("E18: dynamic degree-bound maintenance (§6 open problem)",
		"density", "events", "local repairs", "cascade steps", "rebuilds", "period inflation", "invariant held")
	tb.Note = "Open problem: the schedule survives churn, but repairs cascade exactly where §6 predicts."
	n := cfg.pick(200, 64)
	events := cfg.pick(2000, 400)
	for _, avgDeg := range []float64{2, 6, 12} {
		g := graph.GNP(n, avgDeg/float64(n), cfg.Seed+uint64(avgDeg))
		dd := core.NewDynamicDegreeBound(g)
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(avgDeg)+101, 3))
		ok := true
		for k := 0; k < events; k++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			if rng.Float64() < 0.7 {
				if err := dd.AddEdge(u, v); err != nil {
					panic(err)
				}
			} else {
				dd.RemoveEdge(u, v)
			}
			if dd.VerifyNoConflicts() != nil {
				ok = false
			}
		}
		tb.AddRow(fmt.Sprintf("avg deg %.0f", avgDeg), events,
			dd.LocalRepairs, dd.CascadeSteps, dd.Rebuilds, dd.Inflation(), boolCell(ok))
	}
	return tb
}
