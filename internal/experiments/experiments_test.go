package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// quickCfg is the fast configuration used across the experiment tests.
var quickCfg = Config{Quick: true, Seed: 7}

// requireNoFailCell asserts that no cell in the table reads "NO" — the
// harness renders violated bounds as "NO".
func requireNoFailCell(t *testing.T, tb *stats.Table) {
	t.Helper()
	for ri, row := range tb.Rows {
		for ci, cell := range row {
			if cell == "NO" {
				t.Errorf("%s: row %d column %q reports a bound violation:\n%s",
					tb.Title, ri, tb.Columns[ci], tb.String())
			}
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 21 {
		t.Fatalf("registry has %d experiments, want 21 (E1–E21)", len(reg))
	}
	seen := make(map[string]bool)
	for _, e := range reg {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Desc == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestE1(t *testing.T) {
	tb := E1PhasedGreedy(quickCfg)
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	requireNoFailCell(t, tb)
}

func TestE2(t *testing.T) {
	tb := E2ColorBound(quickCfg)
	requireNoFailCell(t, tb)
	if !strings.Contains(tb.String(), "65536") {
		t.Error("expected the representative color sweep")
	}
}

func TestE3(t *testing.T) {
	tb := E3DegreeBound(quickCfg)
	requireNoFailCell(t, tb)
	if len(tb.Rows) < 10 {
		t.Errorf("expected sequential+distributed rows per family, got %d", len(tb.Rows))
	}
}

func TestE4(t *testing.T) {
	tb := E4SchedulerComparison(quickCfg)
	if len(tb.Columns) != 8 {
		t.Fatalf("columns = %v, want degree+nodes+6 schedulers", tb.Columns)
	}
	if len(tb.Rows) < 3 {
		t.Error("expected multiple degree rows on the clan graph")
	}
	// The locality story: degree-1 leaves wait O(1) under degree-bound but
	// pay the global chromatic price under round-robin.
	leafRow := tb.Rows[0]
	if leafRow[0] != "1" {
		t.Fatalf("first row should be degree 1, got %v", leafRow)
	}
}

func TestE5(t *testing.T) {
	tb := E5CauchySums(quickCfg)
	if len(tb.Rows) < 3 {
		t.Fatal("expected several checkpoints")
	}
	// The harmonic column must exceed 1 at the last checkpoint; the omega
	// column must stay below 1.
	last := tb.Rows[len(tb.Rows)-1]
	if !(last[1] > last[len(last)-1]) {
		t.Logf("table:\n%s", tb)
	}
}

func TestE6(t *testing.T) {
	tb := E6Rounds(quickCfg)
	requireNoFailCell(t, tb)
}

func TestE7(t *testing.T) {
	tb := E7FirstGrab(quickCfg)
	if len(tb.Rows) < 4 {
		t.Fatal("expected rows per degree class")
	}
}

func TestE8(t *testing.T) {
	tb := E8Dynamic(quickCfg)
	requireNoFailCell(t, tb)
	if len(tb.Rows) != 3 {
		t.Errorf("expected 3 churn levels, got %d", len(tb.Rows))
	}
}

func TestE9(t *testing.T) {
	tb := E9Satisfaction(quickCfg)
	requireNoFailCell(t, tb)
}

func TestE10(t *testing.T) {
	tb := E10MIS(quickCfg)
	if len(tb.Rows) != 5 {
		t.Fatalf("expected 5 density rows, got %d", len(tb.Rows))
	}
}

func TestE11(t *testing.T) {
	tb := E11Codes(quickCfg)
	if len(tb.Rows) != 4 {
		t.Fatalf("expected 4 codes, got %d rows", len(tb.Rows))
	}
}

func TestE12(t *testing.T) {
	tb := E12Separation(quickCfg)
	// The odd star must witness the separation; the §5 relaxation must
	// always be feasible.
	foundSeparation := false
	for _, row := range tb.Rows {
		if row[2] == "NO" {
			t.Errorf("power-of-two periods infeasible on %s (contradicts Theorem 5.3)", row[0])
		}
		if row[1] == "NO" {
			foundSeparation = true
		}
	}
	if !foundSeparation {
		t.Error("expected at least one graph (odd star) where d+1 periods are periodically infeasible")
	}
}

func TestE13(t *testing.T) {
	tb := E13Bipartite(quickCfg)
	requireNoFailCell(t, tb)
}

func TestE14(t *testing.T) {
	tb := E14Radio(quickCfg)
	for _, row := range tb.Rows {
		if row[3] != "0" {
			t.Errorf("scheduler %s at radius %s caused %s collisions", row[2], row[0], row[3])
		}
	}
}

func TestE15(t *testing.T) {
	tb := E15Chairman(quickCfg)
	if len(tb.Rows) < 4 {
		t.Fatal("expected several clique sizes")
	}
	// Chairman deviation must stay below 1 on every clique size.
	for _, row := range tb.Rows {
		if row[2] >= "1" && len(row[2]) == 1 {
			t.Errorf("chairman deviation %s ≥ 1 on K_%s", row[2], row[0])
		}
	}
}

func TestE16(t *testing.T) {
	tb := E16ColoringQuality(quickCfg)
	if len(tb.Rows) != 20 {
		t.Fatalf("expected 4 graphs x 5 colorings = 20 rows, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[len(row)-1] != "0" {
			t.Errorf("%s/%s: independence violations %s", row[0], row[1], row[len(row)-1])
		}
	}
}

func TestAllRunsConcurrently(t *testing.T) {
	tables := All(quickCfg)
	if len(tables) != 21 {
		t.Fatalf("All returned %d tables, want 21", len(tables))
	}
	for i, tb := range tables {
		if tb == nil || len(tb.Rows) == 0 {
			t.Errorf("experiment %d returned an empty table", i+1)
		}
	}
}

func TestE17(t *testing.T) {
	tb := E17ColeVishkin(quickCfg)
	if len(tb.Rows) < 3 {
		t.Fatal("expected several ring sizes")
	}
	for _, row := range tb.Rows {
		if row[6] != "0" {
			t.Errorf("C_%s: independence violations %s", row[0], row[6])
		}
		if row[3] != "3" && row[3] != "2" {
			t.Errorf("C_%s: Cole-Vishkin used %s colors, want 2 or 3", row[0], row[3])
		}
	}
}

func TestE18(t *testing.T) {
	tb := E18DynamicDegreeBound(quickCfg)
	requireNoFailCell(t, tb)
	if len(tb.Rows) != 3 {
		t.Fatalf("expected 3 density rows, got %d", len(tb.Rows))
	}
}

func TestE19(t *testing.T) {
	tb := E19PolySchedulers(quickCfg)
	requireNoFailCell(t, tb)
	if len(tb.Rows) != 10 {
		t.Fatalf("expected 5 families × 2 codes = 10 rows, got %d", len(tb.Rows))
	}
}

func TestE20(t *testing.T) {
	tb := E20NodeVsEdge(quickCfg)
	requireNoFailCell(t, tb)
	star := tb.Rows[0]
	if star[0] != "star" {
		t.Fatalf("row 0 is %q, want the star family", star[0])
	}
	// The headline claim: on hub-heavy families edge-scheduling meets the
	// same demand at a fraction of the attendance cost.
	if winner := star[6]; winner != "edge" {
		t.Errorf("star cost winner = %q, want edge (leaf gatherings bill the hub)", winner)
	}
}

func TestE21(t *testing.T) {
	tb := E21PolyChurn(quickCfg)
	requireNoFailCell(t, tb)
	if len(tb.Rows) != 2 {
		t.Fatalf("expected one row per scheduler code, got %d", len(tb.Rows))
	}
}
