package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// recordNext replays a fresh scheduler sequentially and records the happy
// set of every holiday in [1, horizon] (index t-1).
func recordNext(s Scheduler, horizon int64) [][]int {
	out := make([][]int, horizon)
	for t := int64(1); t <= horizon; t++ {
		out[t-1] = append([]int(nil), s.Next()...)
	}
	return out
}

// sameSet compares two happy sets treating nil and empty as equal.
func sameSet(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// periodicCases builds the three perfectly periodic schedulers over g.
func periodicCases(t *testing.T, g *graph.Graph) map[string]func() Scheduler {
	t.Helper()
	return map[string]func() Scheduler{
		"degree-bound": func() Scheduler { return NewDegreeBoundSequential(g) },
		"color-bound": func() Scheduler {
			s, err := NewColorBound(g, greedyColoring(g), prefixcode.Omega{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"round-robin": func() Scheduler {
			s, err := NewRoundRobin(g, greedyColoring(g))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

// TestPeriodicScheduleMatchesNext: the closed-form schedule must reproduce
// the live Next sequence exactly — HappySet, every Window alignment, and
// NextHappy — across the graph zoo.
func TestPeriodicScheduleMatchesNext(t *testing.T) {
	const horizon = 160
	for gname, g := range testZoo() {
		for name, mk := range periodicCases(t, g) {
			want := recordNext(mk(), horizon)
			sched := ScheduleOf(mk(), g.N())
			if !sched.RandomAccess() {
				t.Fatalf("%s/%s: periodic schedule must be random access", gname, name)
			}
			for t0 := int64(1); t0 <= horizon; t0 += 37 {
				if got := sched.HappySet(t0); !sameSet(got, want[t0-1]) {
					t.Fatalf("%s/%s: HappySet(%d) = %v, want %v", gname, name, t0, got, want[t0-1])
				}
			}
			for _, w := range [][2]int64{{1, horizon}, {2, 5}, {7, 7}, {97, 160}, {horizon, horizon}} {
				seen := w[0]
				sched.Window(w[0], w[1], func(tt int64, happy []int) {
					if tt != seen {
						t.Fatalf("%s/%s: window [%d,%d] visited %d, want %d", gname, name, w[0], w[1], tt, seen)
					}
					if !sameSet(happy, want[tt-1]) {
						t.Fatalf("%s/%s: Window happy at %d = %v, want %v", gname, name, tt, happy, want[tt-1])
					}
					seen++
				})
				if seen != w[1]+1 {
					t.Fatalf("%s/%s: window [%d,%d] stopped at %d", gname, name, w[0], w[1], seen)
				}
			}
			for v := 0; v < g.N(); v += 7 {
				for _, from := range []int64{1, 3, 50} {
					got := sched.NextHappy(v, from)
					wantNext := int64(0)
					for tt := from; tt <= 4*horizon; tt++ {
						if HappyAt(mk().(Periodic), v, tt) {
							wantNext = tt
							break
						}
					}
					if got != wantNext {
						t.Fatalf("%s/%s: NextHappy(%d, %d) = %d, want %d", gname, name, v, from, got, wantNext)
					}
				}
			}
		}
	}
}

// TestScheduleOfLeavesPeriodicUnadvanced: snapshotting must not call Next.
func TestScheduleOfLeavesPeriodicUnadvanced(t *testing.T) {
	g := graph.GNP(40, 0.1, 5)
	db := NewDegreeBoundSequential(g)
	sched := ScheduleOf(db, g.N())
	sched.Window(1, 100, func(int64, []int) {})
	sched.HappySet(31)
	if db.Holiday() != 0 {
		t.Fatalf("closed-form queries advanced the scheduler to holiday %d", db.Holiday())
	}
}

// TestReplayScheduleWindowMatchesNext: the replay cursor must agree with
// sequential Next replay for windows at arbitrary alignments, including
// backward seeks served from the memo and full rewinds through the factory.
func TestReplayScheduleWindowMatchesNext(t *testing.T) {
	g := graph.GNP(60, 0.08, 7)
	cases := map[string]func() Scheduler{
		"phased-greedy": func() Scheduler {
			s, err := NewPhasedGreedy(g, greedyColoring(g))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"first-grab": func() Scheduler { return NewFirstGrab(g, 11) },
		"greedy-mis": func() Scheduler { return NewGreedyMIS(g, 12) },
	}
	const horizon = DefaultReplayMemo + 600 // force ring wraparound
	for name, mk := range cases {
		want := recordNext(mk(), horizon)
		sched := NewReplaySchedule(mk(), func() (Scheduler, error) { return mk(), nil })
		if sched.RandomAccess() {
			t.Fatalf("%s: replay schedule must not claim random access", name)
		}
		check := func(from, to int64) {
			t.Helper()
			next := from
			sched.Window(from, to, func(tt int64, happy []int) {
				if tt != next {
					t.Fatalf("%s: window [%d,%d] visited %d, want %d", name, from, to, tt, next)
				}
				if !sameSet(happy, want[tt-1]) {
					t.Fatalf("%s: happy at %d = %v, want %v", name, tt, happy, want[tt-1])
				}
				next++
			})
		}
		check(40, 80)                   // forward past start
		check(50, 60)                   // inside memo
		check(1, 30)                    // backward within memo (cursor 80)
		check(horizon-100, horizon)     // deep forward, wraps the ring
		check(1, 50)                    // rewind through the factory
		check(horizon-200, horizon-150) // forward again after rewind
		if got := sched.HappySet(5); !sameSet(got, want[4]) {
			t.Fatalf("%s: HappySet(5) = %v, want %v", name, got, want[4])
		}
	}
}

// TestReplayNextHappy: the scan must find the first occurrence at or after
// from, agreeing with the recorded sequence.
func TestReplayNextHappy(t *testing.T) {
	g := graph.Cycle(9)
	mk := func() Scheduler {
		s, err := NewPhasedGreedy(g, greedyColoring(g))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	const horizon = 64
	want := recordNext(mk(), horizon)
	sched := NewReplaySchedule(mk(), func() (Scheduler, error) { return mk(), nil })
	for v := 0; v < g.N(); v++ {
		for _, from := range []int64{1, 5, 20} {
			wantNext := int64(0)
			for tt := from; tt <= horizon; tt++ {
				for _, u := range want[tt-1] {
					if u == v {
						wantNext = tt
						break
					}
				}
				if wantNext != 0 {
					break
				}
			}
			if wantNext == 0 {
				continue // beyond the recorded horizon; skip
			}
			if got := sched.NextHappy(v, from); got != wantNext {
				t.Fatalf("NextHappy(%d, %d) = %d, want %d", v, from, got, wantNext)
			}
		}
	}
}

// TestForwardOnlyReplayPanicsOnRewind: ScheduleOf over a stateful scheduler
// has no factory, so a seek before the memo window must fail loudly rather
// than silently return wrong holidays.
func TestForwardOnlyReplayPanicsOnRewind(t *testing.T) {
	g := graph.Cycle(6)
	sched := ScheduleOf(NewFirstGrab(g, 3), g.N())
	sched.Window(1, DefaultReplayMemo+10, func(int64, []int) {})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on rewind past memo without a factory")
		}
	}()
	sched.HappySet(1)
}

// TestScheduleOverflowGuards: queries near the int64 edge must not wrap
// into negative holidays (the closed form adds up to a full period to
// from). Beyond MaxHoliday nothing is served; at the boundary the answers
// stay exact and non-negative.
func TestScheduleOverflowGuards(t *testing.T) {
	g := graph.Star(8)
	sched := ScheduleOf(NewDegreeBoundSequential(g), g.N())
	visits := 0
	sched.Window(math.MaxInt64-7, math.MaxInt64, func(int64, []int) { visits++ })
	if visits != 0 {
		t.Fatalf("window beyond MaxHoliday served %d holidays, want 0", visits)
	}
	if got := sched.NextHappy(0, math.MaxInt64-1); got != 0 {
		t.Fatalf("NextHappy beyond MaxHoliday = %d, want 0", got)
	}
	sched.Window(MaxHoliday-3, math.MaxInt64, func(tt int64, happy []int) {
		if tt < MaxHoliday-3 || tt > MaxHoliday {
			t.Fatalf("boundary window visited holiday %d", tt)
		}
		visits++
	})
	if visits != 4 {
		t.Fatalf("boundary window served %d holidays, want 4", visits)
	}
	if got := sched.NextHappy(0, MaxHoliday-16); got < MaxHoliday-16 {
		t.Fatalf("NextHappy near MaxHoliday wrapped to %d", got)
	}
}

// TestNewFixedPeriodicValidates pins the snapshot constructor's input checks.
func TestNewFixedPeriodicValidates(t *testing.T) {
	if _, err := NewFixedPeriodic("x", []int64{2, 2}, []int64{0}); err == nil {
		t.Fatal("want error on length mismatch")
	}
	if _, err := NewFixedPeriodic("x", []int64{0}, []int64{0}); err == nil {
		t.Fatal("want error on period < 1")
	}
	if _, err := NewFixedPeriodic("x", []int64{4}, []int64{4}); err == nil {
		t.Fatal("want error on offset ≥ period")
	}
	sched, err := NewFixedPeriodic("fixed", []int64{4, 2}, []int64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.HappySet(2); !sameSet(got, []int{1}) {
		t.Fatalf("HappySet(2) = %v, want [1]", got)
	}
	if got := sched.NextHappy(0, 2); got != 5 {
		t.Fatalf("NextHappy(0, 2) = %d, want 5", got)
	}
}

// TestDynamicFrozenSchedule: the frozen snapshot must match the live closed
// form at freeze time and stay fixed while the dynamic scheduler churns.
func TestDynamicFrozenSchedule(t *testing.T) {
	g := graph.GNP(30, 0.12, 9)
	dc, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := dc.FrozenSchedule()
	if err != nil {
		t.Fatal(err)
	}
	want := recordNext(dc, 64)
	for tt := int64(1); tt <= 64; tt++ {
		if got := frozen.HappySet(tt); !sameSet(got, want[tt-1]) {
			t.Fatalf("frozen HappySet(%d) = %v, want %v", tt, got, want[tt-1])
		}
	}
	// Churn the live scheduler; the frozen snapshot must not move.
	before := frozen.HappySet(3)
	for v := 1; v < 10; v++ {
		if _, err := dc.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := frozen.HappySet(3); !sameSet(got, before) {
		t.Fatalf("frozen schedule moved under churn: %v → %v", before, got)
	}
}
