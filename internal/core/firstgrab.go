package core

import (
	"math/rand/v2"

	"repro/internal/graph"
)

// FirstGrab is the chaotic "first come first grab" process from §1: every
// holiday, parents wake at i.i.d. random times and grab the couples still
// available. A parent gets all its children exactly when it wakes before
// every in-law, so P[happy] = 1/(deg+1) and the expected wait between happy
// holidays is deg+1 — the paper's fair-share landmark. The process is
// memoryless, non-periodic, and serves as the fairness baseline (E7).
type FirstGrab struct {
	g   *graph.Graph
	rng *rand.Rand
	t   int64
	// wake is scratch space for per-holiday wake-up times.
	wake []float64
}

// NewFirstGrab builds the process with a deterministic seed.
func NewFirstGrab(g *graph.Graph, seed uint64) *FirstGrab {
	return &FirstGrab{
		g:    g,
		rng:  rand.New(rand.NewPCG(seed, 0xfeed)),
		wake: make([]float64, g.N()),
	}
}

// Name implements Scheduler.
func (fg *FirstGrab) Name() string { return "first-grab" }

// Holiday implements Scheduler.
func (fg *FirstGrab) Holiday() int64 { return fg.t }

// Next implements Scheduler: draw wake-up times and report the local minima,
// which form an independent set (two adjacent nodes cannot both precede each
// other).
func (fg *FirstGrab) Next() []int {
	fg.t++
	for v := range fg.wake {
		fg.wake[v] = fg.rng.Float64()
	}
	var happy []int
	for v := 0; v < fg.g.N(); v++ {
		first := true
		for _, u := range fg.g.Neighbors(v) {
			if fg.wake[u] <= fg.wake[v] {
				first = false
				break
			}
		}
		if first {
			happy = append(happy, v)
		}
	}
	return happy
}

// HappyProbability returns the closed-form per-holiday happiness probability
// 1/(deg(v)+1) that the Monte-Carlo run is compared against.
func (fg *FirstGrab) HappyProbability(v int) float64 {
	return 1 / float64(fg.g.Degree(v)+1)
}
