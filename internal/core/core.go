// Package core implements the paper's contribution: schedulers for the
// Family Holiday Gathering Problem. Given a conflict graph G, a scheduler
// emits an infinite sequence of independent sets ("happy" parents per
// holiday) while minimizing each node's maximum unhappiness interval as a
// function of local properties (degree or color).
//
// Schedulers provided:
//
//   - PhasedGreedy (§3): non-periodic, wait ≤ deg+1 between happy holidays.
//   - ColorBound (§4.2): perfectly periodic, driven by any prefix-free code
//     over any proper coloring; with the Elias omega code the period is
//     2^ρ(c) ≤ 2^{1+log* c}·φ(c) (Theorem 4.2).
//   - DegreeBound (§5.1, §5.2): perfectly periodic with period
//     2^⌈log(d+1)⌉ ≤ 2d, in sequential and distributed variants.
//   - RoundRobin: the global Δ+1 baseline from §1.
//   - FirstGrab: the chaotic "first come first grab" process from §1.
//   - DynamicColorBound (§6): color-bound scheduling under edge churn.
//
// The Analyzer measures realized unhappiness intervals and verifies that
// every emitted happy set is independent; Reduction extracts a proper
// coloring from any bounded-gap schedule (§1, "Connection to coloring").
//
// Schedule lifts a scheduler from a one-way cursor to a random-access
// value: HappySet(t), Window(from, to), and NextHappy(v, t) answer in
// closed form for the perfectly periodic algorithms and through a bounded
// replay/memo cursor for the stateful ones. The analysis engine shards over
// Schedule.Window, and the serving layer caches frozen schedules per
// community.
package core

// Scheduler produces the infinite gathering sequence, one holiday at a time.
// Holidays are numbered 1, 2, 3, ….
type Scheduler interface {
	// Name identifies the algorithm for reports.
	Name() string
	// Next advances to the next holiday and returns the set of happy nodes
	// (always an independent set of the conflict graph).
	Next() []int
	// Holiday returns the index of the holiday most recently produced by
	// Next, or 0 if Next has not been called.
	Holiday() int64
}

// Periodic is a perfectly periodic scheduler: node v is happy exactly at the
// holidays t with t ≡ Offset(v) (mod Period(v)). The paper's lightweight
// algorithms (§4, §5) are Periodic; §3 is not.
type Periodic interface {
	Scheduler
	// Period returns v's hosting period (≥ 1).
	Period(v int) int64
	// Offset returns v's hosting phase in [0, Period(v)).
	Offset(v int) int64
}

// HappyAt reports whether node v is happy at holiday t under a periodic
// scheduler, without advancing any state.
func HappyAt(p Periodic, v int, t int64) bool {
	return t%p.Period(v) == p.Offset(v)
}

// ceilLog2 returns the smallest j ≥ 0 with 2^j ≥ x (x ≥ 1).
func ceilLog2(x int) int {
	j := 0
	for int64(1)<<uint(j) < int64(x) {
		j++
	}
	return j
}
