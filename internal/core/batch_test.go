package core

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// randomEdits draws k edits over n nodes, biased toward insertions so the
// graph actually grows, with deletions drawn from anywhere (often no-ops).
func randomEdits(r *rand.Rand, n, k int) []Edit {
	edits := make([]Edit, k)
	for i := range edits {
		u := r.IntN(n)
		v := r.IntN(n - 1)
		if v >= u {
			v++
		}
		op := EditInsert
		if r.IntN(10) < 4 {
			op = EditDelete
		}
		edits[i] = Edit{Op: op, U: u, V: v}
	}
	return edits
}

// TestApplyBatchMatchesSequential is the differential proof behind the batch
// write path: applying an edit stream in batches must leave the scheduler in
// the exact state — coloring, recoloring counter, and therefore every window
// and next-happy answer — that one-at-a-time application produces. WAL
// replay applies churn records individually, so any divergence here would
// break the byte-identical crash-recovery guarantee.
func TestApplyBatchMatchesSequential(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := graph.GNP(40, 0.08, seed)
			batched, err := NewDynamicColorBound(g, prefixcode.Omega{})
			if err != nil {
				t.Fatal(err)
			}
			sequential, err := NewDynamicColorBound(g, prefixcode.Omega{})
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewPCG(seed, 77))
			for round := 0; round < 30; round++ {
				edits := randomEdits(r, 40, 1+r.IntN(48))
				res := make([]EditResult, len(edits))
				rec, err := batched.ApplyBatchResults(edits, res)
				if err != nil {
					t.Fatal(err)
				}
				seqRec := 0
				for i, e := range edits {
					var applied, recolored bool
					if e.Op == EditInsert {
						had := sequential.HasEdge(e.U, e.V)
						recolored, err = sequential.AddEdge(e.U, e.V)
						if err != nil {
							t.Fatal(err)
						}
						applied = !had
					} else {
						before := sequential.Recolorings
						applied = sequential.RemoveEdge(e.U, e.V)
						recolored = sequential.Recolorings != before
					}
					if recolored {
						seqRec++
					}
					if res[i] != (EditResult{Applied: applied, Recolored: recolored}) {
						t.Fatalf("round %d edit %d: batch result %+v, sequential applied=%v recolored=%v",
							round, i, res[i], applied, recolored)
					}
				}
				if rec != seqRec {
					t.Fatalf("round %d: batch reported %d recolorings, sequential %d", round, rec, seqRec)
				}
				if err := batched.VerifyProper(); err != nil {
					t.Fatalf("round %d: batch state improper: %v", round, err)
				}
				if !reflect.DeepEqual(batched.Coloring(), sequential.Coloring()) {
					t.Fatalf("round %d: batch coloring diverged from sequential", round)
				}
			}
			// Identical colorings must produce identical window and
			// next-happy answers from the frozen schedules.
			bs, err := batched.FrozenSchedule()
			if err != nil {
				t.Fatal(err)
			}
			ss, err := sequential.FrozenSchedule()
			if err != nil {
				t.Fatal(err)
			}
			var bw, sw [][]int
			bs.Window(1, 64, func(_ int64, happy []int) { bw = append(bw, append([]int(nil), happy...)) })
			ss.Window(1, 64, func(_ int64, happy []int) { sw = append(sw, append([]int(nil), happy...)) })
			if !reflect.DeepEqual(bw, sw) {
				t.Fatal("batch and sequential schedules answer windows differently")
			}
			for v := 0; v < 40; v++ {
				if bs.NextHappy(v, 7) != ss.NextHappy(v, 7) {
					t.Fatalf("NextHappy(%d) differs between batch and sequential schedules", v)
				}
			}
		})
	}
}

// TestInterleavedSingleAndBatchChurn interleaves single-op churn with
// batches on the same scheduler — the shape the serving layer produces when
// the coalescer flushes between direct ops — asserting the §6 invariant
// after every flush.
func TestInterleavedSingleAndBatchChurn(t *testing.T) {
	g := graph.GNP(32, 0.1, 3)
	dc, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(9, 9))
	apply := func(edits []Edit, batch bool) {
		if batch {
			if _, err := dc.ApplyBatch(edits); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, e := range edits {
				if e.Op == EditInsert {
					if _, err := dc.AddEdge(e.U, e.V); err != nil {
						t.Fatal(err)
					}
				} else {
					dc.RemoveEdge(e.U, e.V)
				}
			}
		}
		for _, e := range edits {
			if e.Op == EditInsert {
				if _, err := mirror.AddEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
			} else {
				mirror.RemoveEdge(e.U, e.V)
			}
		}
	}
	for round := 0; round < 60; round++ {
		k := 1
		batch := r.IntN(2) == 0
		if batch {
			k = 1 + r.IntN(24)
		}
		apply(randomEdits(r, 32, k), batch)
		if err := dc.VerifyProper(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(dc.Coloring(), mirror.Coloring()) {
			t.Fatalf("round %d: interleaved state diverged from sequential mirror", round)
		}
	}
	if dc.Recolorings != mirror.Recolorings {
		t.Fatalf("recolorings %d != sequential mirror %d", dc.Recolorings, mirror.Recolorings)
	}
}

// TestApplyBatchValidation: a batch with any invalid edit must change
// nothing.
func TestApplyBatchValidation(t *testing.T) {
	g := graph.Path(4)
	dc, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	before := dc.Coloring()
	m := dc.M()
	bad := [][]Edit{
		{{Op: EditInsert, U: 0, V: 2}, {Op: EditInsert, U: 1, V: 1}},  // self-marriage
		{{Op: EditInsert, U: 0, V: 2}, {Op: EditInsert, U: 0, V: 4}},  // out of range
		{{Op: EditInsert, U: 0, V: 2}, {Op: EditDelete, U: -1, V: 2}}, // negative node
		{{Op: EditInsert, U: 0, V: 2}, {Op: EditOp(9), U: 0, V: 3}},   // unknown op
	}
	for i, edits := range bad {
		if _, err := dc.ApplyBatch(edits); err == nil {
			t.Fatalf("bad batch %d: expected error", i)
		}
		if dc.M() != m || !reflect.DeepEqual(dc.Coloring(), before) {
			t.Fatalf("bad batch %d mutated state", i)
		}
	}
	if _, err := dc.ApplyBatchResults([]Edit{{Op: EditInsert, U: 0, V: 2}}, make([]EditResult, 2)); err == nil {
		t.Fatal("mismatched result-slot count must error")
	}
	if _, err := dc.ApplyBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestApplyBatchNoOpEdits: duplicate inserts and absent deletes report
// Applied=false and leave the edge count alone.
func TestApplyBatchNoOpEdits(t *testing.T) {
	g := graph.Path(3) // edges {0,1}, {1,2}
	dc, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	res := make([]EditResult, 4)
	rec, err := dc.ApplyBatchResults([]Edit{
		{Op: EditInsert, U: 0, V: 1}, // already married
		{Op: EditDelete, U: 0, V: 2}, // never married
		{Op: EditDelete, U: 0, V: 1}, // real divorce
		{Op: EditDelete, U: 0, V: 1}, // now absent again
	}, res)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, false}
	for i, w := range want {
		if res[i].Applied != w {
			t.Errorf("edit %d applied = %v, want %v", i, res[i].Applied, w)
		}
	}
	if dc.M() != 1 {
		t.Errorf("M = %d, want 1", dc.M())
	}
	if rec < 0 {
		t.Errorf("negative recolorings %d", rec)
	}
	if !dc.HasEdge(1, 2) || dc.HasEdge(0, 1) {
		t.Error("edge set does not match applied edits")
	}
	if dc.HasEdge(-1, 0) || dc.HasEdge(0, 3) || dc.HasEdge(2, 2) {
		t.Error("HasEdge must report false for invalid endpoints")
	}
}
