package core

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/graph"
)

// ExtractColoring realizes the §1 "Connection to coloring" reduction: if a
// schedule makes every node happy within some window of w consecutive
// holidays, then observing w holidays and coloring each node by its first
// hosting holiday yields a proper w-coloring (each color class is a subset
// of one holiday's independent set). Errors if some node is never happy in
// the window, i.e. the schedule's gap exceeds w.
func ExtractColoring(s Scheduler, g *graph.Graph, w int64) (coloring.Coloring, error) {
	col := make(coloring.Coloring, g.N())
	colored := 0
	for t := int64(1); t <= w && colored < g.N(); t++ {
		happy := s.Next()
		for _, v := range happy {
			if col[v] == 0 {
				col[v] = int(t)
				colored++
			}
		}
	}
	if colored < g.N() {
		for v := 0; v < g.N(); v++ {
			if col[v] == 0 {
				return nil, fmt.Errorf("core: node %d was never happy within %d holidays; no %d-coloring extractable", v, w, w)
			}
		}
	}
	if err := coloring.Verify(g, col); err != nil {
		return nil, fmt.Errorf("core: extracted coloring is improper (scheduler emitted a dependent set): %w", err)
	}
	return col, nil
}

// ScheduleFromColoring is the converse direction of the §1 reduction: a
// proper c-coloring yields a schedule with every node happy every c
// holidays. It is exactly the RoundRobin scheduler; this constructor exists
// to make the equivalence explicit.
func ScheduleFromColoring(g *graph.Graph, col coloring.Coloring) (Scheduler, error) {
	return NewRoundRobin(g, col)
}
