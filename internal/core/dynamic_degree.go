package core

import (
	"fmt"

	"repro/internal/graph"
)

// DynamicDegreeBound explores the paper's main open problem (§6): can the
// §5 degree-bound schedule survive a dynamic graph? The obstruction the
// paper identifies is order: §5 assigns high-degree nodes first, and
// low-degree nodes grabbing slots early can exhaust a later-growing node's
// modulus — e.g. two period-2 neighbors on opposite parities block every
// slot of any modulus (Σ 1/period = 1), no matter how much the period
// doubles, forcing a cascading reassignment of neighbors.
//
// This implementation maintains the §5 invariant (adjacent slots differ
// modulo the smaller period) under edge insertion and deletion with a
// three-tier repair strategy, and counts how often each tier fires:
//
//	LocalRepairs     — the affected node repicks a slot in its modulus;
//	CascadeSteps     — a blocking neighbor had to be repicked recursively;
//	Rebuilds         — repair exceeded its budget; full §5.1 reassignment.
//
// Period quality is tracked too: Inflation reports max period(v) /
// 2^⌈log(deg v+1)⌉, which stays 1 when the schedule is as good as the
// static construction.
type DynamicDegreeBound struct {
	d       *graph.Dynamic
	periods []int64
	offsets []int64
	t       int64

	LocalRepairs int64
	CascadeSteps int64
	Rebuilds     int64
}

// NewDynamicDegreeBound starts from a static graph with the §5.1
// assignment.
func NewDynamicDegreeBound(g *graph.Graph) *DynamicDegreeBound {
	db := NewDegreeBoundSequential(g)
	return &DynamicDegreeBound{
		d:       graph.DynamicFrom(g),
		periods: append([]int64(nil), db.periods...),
		offsets: append([]int64(nil), db.offsets...),
	}
}

// Name implements Scheduler.
func (dd *DynamicDegreeBound) Name() string { return "degree-bound/dynamic" }

// Holiday implements Scheduler.
func (dd *DynamicDegreeBound) Holiday() int64 { return dd.t }

// Next implements Scheduler against the current assignment.
func (dd *DynamicDegreeBound) Next() []int {
	dd.t++
	var happy []int
	for v := 0; v < dd.d.N(); v++ {
		if dd.t%dd.periods[v] == dd.offsets[v] {
			happy = append(happy, v)
		}
	}
	return happy
}

// Period returns v's current hosting period.
func (dd *DynamicDegreeBound) Period(v int) int64 { return dd.periods[v] }

// Offset returns v's current slot.
func (dd *DynamicDegreeBound) Offset(v int) int64 { return dd.offsets[v] }

// N returns the number of families.
func (dd *DynamicDegreeBound) N() int { return dd.d.N() }

// Degree returns v's current degree.
func (dd *DynamicDegreeBound) Degree(v int) int { return dd.d.Degree(v) }

// requiredPeriod is the §5 target 2^⌈log(deg+1)⌉.
func (dd *DynamicDegreeBound) requiredPeriod(v int) int64 {
	return int64(1) << uint(ceilLog2(dd.d.Degree(v)+1))
}

// Inflation returns max over nodes of period / requiredPeriod: 1.0 means
// the dynamic schedule matches the static construction's quality.
func (dd *DynamicDegreeBound) Inflation() float64 {
	worst := 1.0
	for v := 0; v < dd.d.N(); v++ {
		if r := float64(dd.periods[v]) / float64(dd.requiredPeriod(v)); r > worst {
			worst = r
		}
	}
	return worst
}

// AddEdge inserts a marriage and repairs the assignment. It reports an
// error only if even a full rebuild cannot restore the invariant (which
// cannot happen: the static construction always exists).
func (dd *DynamicDegreeBound) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("core: self-marriage at node %d", u)
	}
	if !dd.d.AddEdge(u, v) {
		return nil
	}
	// Degrees grew: periods may need to grow to stay ≥ deg+1.
	for _, p := range [2]int{u, v} {
		if dd.periods[p] < dd.requiredPeriod(p) {
			dd.periods[p] = dd.requiredPeriod(p)
		}
	}
	if dd.conflict(u, v) {
		// Repair the endpoint with the larger period (more slots to
		// choose from), falling back to its partner and then a rebuild.
		first, second := u, v
		if dd.periods[v] > dd.periods[u] {
			first, second = v, u
		}
		if !dd.repair(first, 0) && !dd.repair(second, 0) {
			dd.rebuild()
		}
	}
	return nil
}

// RemoveEdge deletes a marriage, shrinking periods back toward the §5
// target when a valid slot exists in the smaller modulus.
func (dd *DynamicDegreeBound) RemoveEdge(u, v int) bool {
	if !dd.d.RemoveEdge(u, v) {
		return false
	}
	for _, p := range [2]int{u, v} {
		target := dd.requiredPeriod(p)
		for dd.periods[p] > target {
			if x, ok := dd.freeSlot(p, dd.periods[p]/2); ok {
				dd.periods[p] /= 2
				dd.offsets[p] = x
				dd.LocalRepairs++
			} else {
				break
			}
		}
	}
	return true
}

// conflict reports whether edge (u,v) violates the Lemma 5.1 condition.
func (dd *DynamicDegreeBound) conflict(u, v int) bool {
	m := dd.periods[u]
	if dd.periods[v] < m {
		m = dd.periods[v]
	}
	return dd.offsets[u]%m == dd.offsets[v]%m
}

// freeSlot searches [0, m) for a slot for p compatible with every current
// neighbor (p's own period taken as m).
func (dd *DynamicDegreeBound) freeSlot(p int, m int64) (int64, bool) {
	forbidden := make(map[int64]bool)
	for _, q := range dd.d.Neighbors(p) {
		mod := m
		if dd.periods[q] < mod {
			mod = dd.periods[q]
		}
		r := dd.offsets[q] % mod
		// Every slot x with x ≡ r (mod mod) is blocked.
		for x := r; x < m; x += mod {
			forbidden[x] = true
		}
	}
	for x := int64(0); x < m; x++ {
		if !forbidden[x] {
			return x, true
		}
	}
	return 0, false
}

// repair restores all of p's edges by repicking p's slot; when p's modulus
// is saturated it recursively repairs the smallest-period blocking
// neighbor (the cascade the §6 discussion predicts). Depth-limited; false
// means the caller should escalate.
func (dd *DynamicDegreeBound) repair(p int, depth int) bool {
	const maxDepth = 8
	if depth > maxDepth {
		return false
	}
	if x, ok := dd.freeSlot(p, dd.periods[p]); ok {
		dd.offsets[p] = x
		if depth == 0 {
			dd.LocalRepairs++
		} else {
			dd.CascadeSteps++
		}
		return true
	}
	// Saturated: find the blocking neighbor with the smallest period and
	// move it out of the way, then retry.
	best := -1
	for _, q := range dd.d.Neighbors(p) {
		if best == -1 || dd.periods[q] < dd.periods[best] {
			best = q
		}
	}
	if best == -1 {
		return false
	}
	dd.CascadeSteps++
	// Move the blocking neighbor out of the way first.
	if !dd.relocateNeighbor(best, depth+1) {
		return false
	}
	if x, ok := dd.freeSlot(p, dd.periods[p]); ok {
		dd.offsets[p] = x
		return true
	}
	return dd.repair(p, depth+1)
}

// relocateNeighbor repicks q's slot to any value other than its current
// one, compatibly with all of q's neighbors; used during cascades to free
// the residue q was occupying.
func (dd *DynamicDegreeBound) relocateNeighbor(q, depth int) bool {
	const maxDepth = 8
	if depth > maxDepth {
		return false
	}
	if x, ok := dd.freeSlotExcluding(q, dd.periods[q], dd.offsets[q]); ok {
		dd.offsets[q] = x
		return true
	}
	return false
}

// freeSlotExcluding is freeSlot but skips one designated slot value.
func (dd *DynamicDegreeBound) freeSlotExcluding(p int, m, exclude int64) (int64, bool) {
	forbidden := make(map[int64]bool)
	forbidden[exclude] = true
	for _, q := range dd.d.Neighbors(p) {
		mod := m
		if dd.periods[q] < mod {
			mod = dd.periods[q]
		}
		r := dd.offsets[q] % mod
		for x := r; x < m; x += mod {
			forbidden[x] = true
		}
	}
	for x := int64(0); x < m; x++ {
		if !forbidden[x] {
			return x, true
		}
	}
	return 0, false
}

// rebuild reruns the static §5.1 construction on the current graph.
func (dd *DynamicDegreeBound) rebuild() {
	dd.Rebuilds++
	db := NewDegreeBoundSequential(dd.d.Snapshot())
	dd.periods = append(dd.periods[:0], db.periods...)
	dd.offsets = append(dd.offsets[:0], db.offsets...)
}

// VerifyNoConflicts checks the Lemma 5.1 invariant over every current edge
// plus the rate requirement period(v) ≥ deg(v)+1.
func (dd *DynamicDegreeBound) VerifyNoConflicts() error {
	for v := 0; v < dd.d.N(); v++ {
		if dd.periods[v] < int64(dd.d.Degree(v)+1) {
			return fmt.Errorf("core: dynamic degree-bound node %d period %d below deg+1 = %d",
				v, dd.periods[v], dd.d.Degree(v)+1)
		}
		for _, u := range dd.d.Neighbors(v) {
			if v < u && dd.conflict(v, u) {
				return fmt.Errorf("core: dynamic degree-bound conflict on edge (%d,%d)", v, u)
			}
		}
	}
	return nil
}
