package core

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/graph"
)

// RoundRobin is the §1 baseline: given a proper coloring with k colors,
// holiday t makes color ((t−1) mod k)+1 happy. Every node waits exactly k
// holidays — a global bound (Δ+1 with a greedy coloring, |P| with the
// trivial sequential coloring), which is exactly the un-local behaviour the
// paper's schedulers improve on: a single-child family waits for the whole
// graph's worst color.
type RoundRobin struct {
	g       *graph.Graph
	colors  coloring.Coloring
	classes [][]int
	k       int64
	t       int64
}

// NewRoundRobin builds the baseline over any proper coloring.
func NewRoundRobin(g *graph.Graph, col coloring.Coloring) (*RoundRobin, error) {
	if err := coloring.Verify(g, col); err != nil {
		return nil, fmt.Errorf("core: round-robin needs a proper coloring: %w", err)
	}
	k := col.MaxColor()
	if k == 0 {
		k = 1 // edgeless graph: everyone hosts every holiday
	}
	rr := &RoundRobin{g: g, colors: col, classes: make([][]int, k+1), k: int64(k)}
	for v, c := range col {
		rr.classes[c] = append(rr.classes[c], v)
	}
	return rr, nil
}

// Name implements Scheduler.
func (rr *RoundRobin) Name() string { return "round-robin" }

// Holiday implements Scheduler.
func (rr *RoundRobin) Holiday() int64 { return rr.t }

// Next implements Scheduler.
func (rr *RoundRobin) Next() []int {
	rr.t++
	c := (rr.t-1)%rr.k + 1
	return rr.classes[c]
}

// Period implements Periodic: the same global k for every node.
func (rr *RoundRobin) Period(v int) int64 { return rr.k }

// Offset implements Periodic: color c hosts at t ≡ c (mod k).
func (rr *RoundRobin) Offset(v int) int64 {
	return int64(rr.colors[v]) % rr.k
}

var _ Periodic = (*RoundRobin)(nil)
