package core

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Schedule is random access into a scheduler's infinite happy-set sequence.
// Where Scheduler is a cursor (one Next per holiday, state advances), a
// Schedule is a value: any holiday, window, or per-node query can be
// answered without disturbing other queries. For the paper's perfectly
// periodic algorithms (§4, §5) every answer is closed-form arithmetic over
// Period/Offset; stateful algorithms (§3, the baselines) are served through
// a bounded replay/memo cursor.
//
// All implementations in this package are safe for concurrent use: the
// closed-form schedules are immutable, and the replay cursor serializes
// internally.
type Schedule interface {
	// Name identifies the underlying algorithm for reports.
	Name() string
	// HappySet returns the happy families at holiday t ≥ 1, in increasing
	// node order, as a fresh slice.
	HappySet(t int64) []int
	// Window streams holidays from..to (inclusive, from ≥ 1, to at most
	// MaxHoliday) in order, calling visit once per holiday. The happy slice
	// is in increasing node order and only valid for the duration of the
	// callback — implementations reuse buffers. visit must not call back
	// into the same Schedule: replay cursors hold their lock across the
	// callback, so a reentrant query self-deadlocks.
	Window(from, to int64, visit func(t int64, happy []int))
	// NextHappy returns the first holiday ≥ from at which family v is happy,
	// or 0 if none exists within the implementation's search bound (periodic
	// schedules always succeed; replay cursors scan at most
	// MaxNextHappyScan holidays).
	NextHappy(v int, from int64) int64
	// RandomAccess reports whether HappySet and Window cost is independent
	// of the query position — true for the closed-form periodic schedules,
	// false for replay cursors, which pay for every holiday between their
	// current position and the query. Random-access schedules can be
	// sharded: engine workers query disjoint windows concurrently.
	RandomAccess() bool
}

// NodeCounter is the optional interface of schedules that know how many
// families they cover (the closed-form periodic snapshots do; replay cursors
// do not). The serving layer uses it to bounds-check family ids against the
// frozen snapshot it already holds instead of re-locking the live community.
type NodeCounter interface {
	Nodes() int
}

// BitWindower is the optional interface of schedules that can stream a
// window as word-packed happy bitmaps — one ⌈n/64⌉-word graph.Bitset row per
// holiday — without materializing []int rows. The closed-form periodic
// schedules implement it by walking each node's arithmetic progression and
// OR-ing bits straight into the row block, which is what the binary wire
// format (internal/wire) serializes. The row passed to visit is only valid
// for the duration of the callback.
type BitWindower interface {
	WindowBits(from, to int64, visit func(t int64, row graph.Bitset))
}

// WindowBits streams s's window [from, to] as packed bitmap rows over n
// nodes, using the schedule's native bitmap emission when it has one
// (BitWindower) and packing the []int rows of Window otherwise. The row is
// reused across holidays: it is only valid during visit.
func WindowBits(s Schedule, n int, from, to int64, visit func(t int64, row graph.Bitset)) {
	if bw, ok := s.(BitWindower); ok {
		bw.WindowBits(from, to, visit)
		return
	}
	row := graph.NewBitset(n)
	s.Window(from, to, func(t int64, happy []int) {
		row.Reset()
		for _, v := range happy {
			row.Set(v)
		}
		visit(t, row)
	})
}

// windowBlock is the number of holidays a Window call buckets at a time,
// bounding working memory regardless of window length.
const windowBlock = 4096

// MaxHoliday is the largest holiday index a Schedule serves. Periods are at
// most 2^62 (codewords are capped at 62 bits), so closed-form arithmetic on
// holidays ≤ 2^62 cannot overflow int64; queries beyond it return nothing
// (Window) or 0 (NextHappy) instead of wrapping.
const MaxHoliday = int64(1) << 62

// MaxNextHappyScan bounds how many holidays a replay-cursor NextHappy scans
// before giving up. The paper's schedulers wait at most O(deg) holidays, so
// the bound only bites for adversarial queries on pathological schedulers.
const MaxNextHappyScan = 1 << 16

// periodicSchedule answers every query in closed form from a snapshot of
// per-node periods and offsets. The assignment is immutable after
// construction; scratch only holds reusable Window working buffers.
type periodicSchedule struct {
	name       string
	periods    []int64
	offsets    []int64
	scratch    sync.Pool // *windowScratch, see Window
	bitScratch sync.Pool // *bitWindowScratch, see WindowBits
}

// windowScratch is the per-Window working set (next-event cursor per node
// plus one block of happy-set buckets), pooled per schedule so concurrent
// window queries against a cached schedule allocate nothing in steady state.
type windowScratch struct {
	next    []int64
	happyAt [][]int
}

// newPeriodicSchedule takes ownership of the slices without copying or
// re-validating — for construction sites whose assignments are valid by
// construction (e.g. DynamicColorBound.FrozenSchedule, which rebuilds on
// every cache invalidation of the serving layer).
func newPeriodicSchedule(name string, periods, offsets []int64) *periodicSchedule {
	return &periodicSchedule{name: name, periods: periods, offsets: offsets}
}

// NewPeriodicSchedule snapshots a perfectly periodic scheduler's closed form
// (Period/Offset for each of the n nodes) into an immutable random-access
// Schedule. The scheduler is never advanced — the Periodic contract
// guarantees the snapshot reproduces Next exactly.
func NewPeriodicSchedule(p Periodic, n int) Schedule {
	periods := make([]int64, n)
	offsets := make([]int64, n)
	for v := 0; v < n; v++ {
		periods[v] = p.Period(v)
		offsets[v] = p.Offset(v)
	}
	return &periodicSchedule{name: p.Name(), periods: periods, offsets: offsets}
}

// NewFixedPeriodic builds a random-access Schedule directly from per-node
// periods and offsets (period ≥ 1, 0 ≤ offset < period). This is the
// snapshot form the serving layer caches: a frozen copy of a dynamic
// scheduler's current assignment that stays valid while the live coloring
// churns on.
func NewFixedPeriodic(name string, periods, offsets []int64) (Schedule, error) {
	if len(periods) != len(offsets) {
		return nil, fmt.Errorf("core: %d periods but %d offsets", len(periods), len(offsets))
	}
	ps := &periodicSchedule{
		name:    name,
		periods: append([]int64(nil), periods...),
		offsets: append([]int64(nil), offsets...),
	}
	for v := range ps.periods {
		if ps.periods[v] < 1 {
			return nil, fmt.Errorf("core: node %d has period %d < 1", v, ps.periods[v])
		}
		if ps.offsets[v] < 0 || ps.offsets[v] >= ps.periods[v] {
			return nil, fmt.Errorf("core: node %d has offset %d outside [0, %d)", v, ps.offsets[v], ps.periods[v])
		}
	}
	return ps, nil
}

// Name implements Schedule.
func (ps *periodicSchedule) Name() string { return ps.name }

// Nodes returns the number of families the closed-form snapshot covers. It
// is not part of the Schedule interface (replay cursors do not know their
// node count); callers holding a frozen periodic schedule discover it via
// the NodeCounter optional interface.
func (ps *periodicSchedule) Nodes() int { return len(ps.periods) }

// RandomAccess implements Schedule: closed-form queries cost O(1) per node.
func (ps *periodicSchedule) RandomAccess() bool { return true }

// HappySet implements Schedule.
func (ps *periodicSchedule) HappySet(t int64) []int {
	var happy []int
	for v := range ps.periods {
		if t%ps.periods[v] == ps.offsets[v] {
			happy = append(happy, v)
		}
	}
	return happy
}

// NextHappy implements Schedule: the smallest t ≥ max(from, 1) with
// t ≡ offset (mod period), or 0 when the query exceeds MaxHoliday.
func (ps *periodicSchedule) NextHappy(v int, from int64) int64 {
	if v < 0 || v >= len(ps.periods) || from > MaxHoliday {
		return 0
	}
	if from < 1 {
		from = 1
	}
	p := ps.periods[v]
	return from + ((ps.offsets[v]-from)%p+p)%p
}

// Window implements Schedule by walking every node's arithmetic progression
// through the window in windowBlock-sized chunks: each block buckets the
// progressions per holiday with one reused bucket array, so memory stays
// O(n + block) and work is O(n + window + happiness events) — never a scan
// of the holidays before from. The working buffers are pooled per schedule,
// so steady-state serving (many concurrent windows against one cached
// schedule) does not allocate them per query.
func (ps *periodicSchedule) Window(from, to int64, visit func(t int64, happy []int)) {
	if to > MaxHoliday {
		to = MaxHoliday
	}
	if from < 1 || to < from {
		return
	}
	n := len(ps.periods)
	ws, _ := ps.scratch.Get().(*windowScratch)
	if ws == nil {
		ws = &windowScratch{}
	}
	defer ps.scratch.Put(ws)
	if cap(ws.next) < n {
		ws.next = make([]int64, n)
	}
	next := ws.next[:n]
	for v := 0; v < n; v++ {
		next[v] = ps.NextHappy(v, from)
	}
	blockLen := to - from + 1
	if blockLen > windowBlock {
		blockLen = windowBlock
	}
	if int64(cap(ws.happyAt)) < blockLen {
		grown := make([][]int, blockLen)
		copy(grown, ws.happyAt[:cap(ws.happyAt)])
		ws.happyAt = grown
	}
	happyAt := ws.happyAt[:blockLen]
	for blo := from; blo <= to; blo += blockLen {
		bhi := blo + blockLen - 1
		if bhi > to {
			bhi = to
		}
		for i := range happyAt[:bhi-blo+1] {
			happyAt[i] = happyAt[i][:0]
		}
		for v := 0; v < n; v++ {
			t := next[v]
			for ; t <= bhi; t += ps.periods[v] {
				happyAt[t-blo] = append(happyAt[t-blo], v)
			}
			next[v] = t
		}
		for t := blo; t <= bhi; t++ {
			visit(t, happyAt[t-blo])
		}
	}
}

// bitWindowScratch is the per-WindowBits working set: the per-node
// next-event cursor plus one block of packed rows as a flat word slice,
// pooled per schedule like windowScratch so steady-state binary serving
// allocates nothing.
type bitWindowScratch struct {
	next []int64
	rows []uint64
}

// WindowBits implements BitWindower in closed form: each node's arithmetic
// progression is walked through the window in windowBlock-sized chunks,
// OR-ing the node's bit straight into the packed row of every holiday it
// hosts — no []int row is ever materialized. Work is O(n + window·⌈n/64⌉
// word clears + happiness events), memory O(n + block·⌈n/64⌉).
func (ps *periodicSchedule) WindowBits(from, to int64, visit func(t int64, row graph.Bitset)) {
	if to > MaxHoliday {
		to = MaxHoliday
	}
	if from < 1 || to < from {
		return
	}
	n := len(ps.periods)
	words := (n + 63) / 64
	ws, _ := ps.bitScratch.Get().(*bitWindowScratch)
	if ws == nil {
		ws = &bitWindowScratch{}
	}
	defer ps.bitScratch.Put(ws)
	if cap(ws.next) < n {
		ws.next = make([]int64, n)
	}
	next := ws.next[:n]
	for v := 0; v < n; v++ {
		next[v] = ps.NextHappy(v, from)
	}
	blockLen := to - from + 1
	if blockLen > windowBlock {
		blockLen = windowBlock
	}
	need := int(blockLen) * words
	if cap(ws.rows) < need {
		ws.rows = make([]uint64, need)
	}
	rows := ws.rows[:need]
	for blo := from; blo <= to; blo += blockLen {
		bhi := blo + blockLen - 1
		if bhi > to {
			bhi = to
		}
		cnt := int(bhi - blo + 1)
		clear(rows[:cnt*words])
		for v := 0; v < n; v++ {
			t := next[v]
			wv, bit := v>>6, uint64(1)<<uint(v&63)
			for ; t <= bhi; t += ps.periods[v] {
				rows[int(t-blo)*words+wv] |= bit
			}
			next[v] = t
		}
		for t := blo; t <= bhi; t++ {
			i := int(t-blo) * words
			visit(t, graph.Bitset(rows[i:i+words]))
		}
	}
}

// replaySchedule adapts a stateful Scheduler to the Schedule interface with
// a bounded memo: the last memoCap happy sets stay cached, repeated and
// overlapping queries inside that window are served without re-simulation,
// and a seek before the memo reconstructs a fresh scheduler via the factory
// and replays from holiday 1.
type replaySchedule struct {
	name    string // captured at construction: Name must not race with rewind
	mu      sync.Mutex
	factory func() (Scheduler, error) // nil: forward-only cursor
	s       Scheduler
	cursor  int64   // last holiday produced by s.Next
	memo    [][]int // ring: holiday t at memo[t%memoCap], valid for cursor-memoCap < t ≤ cursor
	memoCap int64
}

// DefaultReplayMemo is the number of recent holidays a replay Schedule keeps
// cached for backward queries that do not warrant a full re-simulation.
const DefaultReplayMemo = 1024

// NewReplaySchedule wraps a stateful scheduler as a Schedule. s must be
// fresh (no Next calls yet). factory reconstructs an identical fresh
// scheduler — it is invoked when a query seeks before the memo window and
// must be deterministic (same graph, algorithm, and seed) for the replay to
// reproduce the original sequence. A nil factory yields a forward-only
// cursor: queries that would rewind past the memo panic.
func NewReplaySchedule(s Scheduler, factory func() (Scheduler, error)) Schedule {
	return &replaySchedule{
		name:    s.Name(),
		factory: factory,
		s:       s,
		memo:    make([][]int, DefaultReplayMemo),
		memoCap: DefaultReplayMemo,
	}
}

// Name implements Schedule.
func (rs *replaySchedule) Name() string { return rs.name }

// RandomAccess implements Schedule: a replay cursor pays for every holiday
// between its position and the query.
func (rs *replaySchedule) RandomAccess() bool { return false }

// advance steps the underlying scheduler one holiday, memoizing the result,
// and returns the memo slot (valid until the slot is overwritten).
func (rs *replaySchedule) advance() []int {
	happy := rs.s.Next()
	rs.cursor++
	slot := rs.cursor % rs.memoCap
	rs.memo[slot] = append(rs.memo[slot][:0], happy...)
	return rs.memo[slot]
}

// rewind discards the cursor and restarts from a fresh scheduler.
func (rs *replaySchedule) rewind() {
	if rs.factory == nil {
		panic(fmt.Sprintf("core: schedule %q cannot seek before holiday %d: built without a factory (use NewReplaySchedule with one for full random access)",
			rs.s.Name(), rs.cursor-rs.memoCap+1))
	}
	s, err := rs.factory()
	if err != nil {
		panic(fmt.Sprintf("core: schedule %q factory failed on rewind: %v", rs.s.Name(), err))
	}
	rs.s = s
	rs.cursor = 0
}

// happyAt returns the happy set at t without copying, seeking as needed.
// Caller holds rs.mu; the slice is valid until the next advance overwrites
// its ring slot.
func (rs *replaySchedule) happyAt(t int64) []int {
	if t <= rs.cursor-rs.memoCap {
		rs.rewind()
	}
	if t <= rs.cursor {
		return rs.memo[t%rs.memoCap]
	}
	for rs.cursor < t-1 {
		rs.advance()
	}
	return rs.advance()
}

// HappySet implements Schedule.
func (rs *replaySchedule) HappySet(t int64) []int {
	if t < 1 || t > MaxHoliday {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]int(nil), rs.happyAt(t)...)
}

// Window implements Schedule: memoized holidays are served from the ring,
// the remainder by advancing the cursor.
func (rs *replaySchedule) Window(from, to int64, visit func(t int64, happy []int)) {
	if to > MaxHoliday {
		to = MaxHoliday
	}
	if from < 1 || to < from {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for t := from; t <= to; t++ {
		visit(t, rs.happyAt(t))
	}
}

// NextHappy implements Schedule: scan forward from max(from, 1) until v
// appears, giving up (returning 0) after MaxNextHappyScan holidays.
func (rs *replaySchedule) NextHappy(v int, from int64) int64 {
	if from > MaxHoliday {
		return 0
	}
	if from < 1 {
		from = 1
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for t := from; t < from+MaxNextHappyScan; t++ {
		for _, u := range rs.happyAt(t) {
			if u == v {
				return t
			}
		}
	}
	return 0
}

// ScheduleOf adapts a scheduler to the Schedule interface over n nodes.
// Perfectly periodic schedulers become immutable closed-form schedules
// (RandomAccess true, s never advanced); anything else becomes a
// forward-only replay cursor around s itself — sufficient for a single
// in-order sweep such as analysis, but seeks before the memo window panic.
// Use NewReplaySchedule with a factory when full random access over a
// stateful scheduler is needed.
func ScheduleOf(s Scheduler, n int) Schedule {
	if p, ok := s.(Periodic); ok {
		return NewPeriodicSchedule(p, n)
	}
	return NewReplaySchedule(s, nil)
}
