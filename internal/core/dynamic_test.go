package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
	"repro/internal/prefixcode"
)

func TestDynamicStartsProper(t *testing.T) {
	g := graph.GNP(60, 0.1, 90)
	dc, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.VerifyProper(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicAddEdgeRecolorsOnConflict(t *testing.T) {
	g := graph.Empty(2)
	dc, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	// Both isolated nodes start with color 1; marrying them must recolor one.
	recolored, err := dc.AddEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !recolored {
		t.Fatal("same-colored endpoints must trigger a recoloring")
	}
	if dc.Color(0) == dc.Color(1) {
		t.Fatal("edge endpoints still share a color")
	}
	if err := dc.VerifyProper(); err != nil {
		t.Fatal(err)
	}
	if dc.Recolorings != 1 {
		t.Errorf("recolorings = %d, want 1", dc.Recolorings)
	}
}

func TestDynamicAddEdgeNoConflictNoRecolor(t *testing.T) {
	g := graph.Path(2) // greedy init assigns colors 2, 1
	dc, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	if dc.Color(0) == dc.Color(1) {
		t.Fatal("precondition: endpoints differ")
	}
	id := dc.AddNode()
	// New node gets color 1; connect it to the color-2 endpoint: no conflict.
	other := 0
	if dc.Color(0) == 1 {
		other = 1
	}
	recolored, err := dc.AddEdge(id, other)
	if err != nil {
		t.Fatal(err)
	}
	if recolored {
		t.Error("differently-colored endpoints must not recolor")
	}
}

func TestDynamicRemoveEdgeShrinksDisproportionateColors(t *testing.T) {
	// Build a star, then divorce everyone: the center's color must drop to
	// keep its hosting rate proportional to its (now zero) degree.
	g := graph.Star(6)
	dc, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 6; v++ {
		if !dc.RemoveEdge(0, v) {
			t.Fatalf("edge (0,%d) should exist", v)
		}
		if err := dc.VerifyProper(); err != nil {
			t.Fatalf("after removing (0,%d): %v", v, err)
		}
	}
	if dc.Color(0) != 1 {
		t.Errorf("isolated center has color %d, want 1", dc.Color(0))
	}
	if dc.CurrentPeriod(0) != 2 {
		t.Errorf("isolated center period %d, want 2 (omega code of color 1)", dc.CurrentPeriod(0))
	}
}

func TestDynamicScheduleStaysIndependent(t *testing.T) {
	g := graph.GNP(40, 0.08, 91)
	dc, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(92, 0))
	for step := 0; step < 400; step++ {
		// Interleave holidays with random churn.
		happy := dc.Next()
		if !dc.Graph().IsIndependent(happy) {
			t.Fatalf("step %d: dependent happy set", step)
		}
		u, v := rng.IntN(dc.N()), rng.IntN(dc.N())
		if u == v {
			continue
		}
		if rng.Float64() < 0.5 {
			if _, err := dc.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			dc.RemoveEdge(u, v)
		}
		if err := dc.VerifyProper(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// §6: after quiescence the affected node hosts within its new period,
// bounded by φ(d)·2^{log* d + 1} for its degree-bounded color.
func TestDynamicRecoveryWithinBound(t *testing.T) {
	g := graph.GNP(50, 0.1, 93)
	dc, err := NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	// Churn: add a batch of edges.
	rng := rand.New(rand.NewPCG(94, 0))
	for k := 0; k < 30; k++ {
		u, v := rng.IntN(50), rng.IntN(50)
		if u != v {
			if _, err := dc.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	// After quiescence every node must host within one current period,
	// and that period obeys the color bound with c ≤ d+1.
	deadline := make([]int64, dc.N())
	for v := 0; v < dc.N(); v++ {
		deadline[v] = dc.Holiday() + dc.CurrentPeriod(v)
		bound := prefixcode.PeriodUpperBound(uint64(dc.Degree(v) + 1))
		if float64(dc.CurrentPeriod(v)) > bound*(1+1e-9) {
			t.Errorf("node %d (deg %d): period %d exceeds φ-bound %g",
				v, dc.Degree(v), dc.CurrentPeriod(v), bound)
		}
	}
	hosted := make([]bool, dc.N())
	maxDeadline := int64(0)
	for _, d := range deadline {
		if d > maxDeadline {
			maxDeadline = d
		}
	}
	for dc.Holiday() < maxDeadline {
		for _, v := range dc.Next() {
			hosted[v] = true
		}
	}
	for v := 0; v < dc.N(); v++ {
		if !hosted[v] {
			t.Errorf("node %d did not host within its period %d after quiescence", v, dc.CurrentPeriod(v))
		}
	}
}

func TestDynamicSelfLoopRejected(t *testing.T) {
	g := graph.Empty(2)
	dc, _ := NewDynamicColorBound(g, prefixcode.Omega{})
	if _, err := dc.AddEdge(1, 1); err == nil {
		t.Fatal("self-marriage must be rejected")
	}
}

func TestDynamicDuplicateEdgeIgnored(t *testing.T) {
	g := graph.Path(2)
	dc, _ := NewDynamicColorBound(g, prefixcode.Omega{})
	recolored, err := dc.AddEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if recolored {
		t.Error("re-adding an existing edge must be a no-op")
	}
}
