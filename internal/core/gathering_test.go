package core

import (
	"testing"

	"repro/internal/graph"
)

func TestGatheringOrientAndHappy(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	o := NewGathering(g)
	if err := o.Orient(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.Orient(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if !o.IsHappy(1) {
		t.Error("node 1 with both couples home must be happy")
	}
	if o.IsHappy(0) || o.IsHappy(2) {
		t.Error("nodes 0 and 2 sent their couples away")
	}
	if !o.IsSatisfied(1) {
		t.Error("happy implies satisfied")
	}
	if o.IsSatisfied(0) {
		t.Error("node 0 hosts nothing")
	}
}

func TestGatheringIsolatedNodeIsHappy(t *testing.T) {
	g := graph.Empty(2)
	o := NewGathering(g)
	if !o.IsHappy(0) {
		t.Error("a parent with no married children is vacuously happy")
	}
	if o.IsSatisfied(0) {
		t.Error("a parent with no married children hosts no couple")
	}
}

func TestGatheringOrientErrors(t *testing.T) {
	g := graph.Path(3)
	o := NewGathering(g)
	if err := o.Orient(0, 1, 2); err == nil {
		t.Error("host must be an endpoint")
	}
	if err := o.Orient(0, 2, 0); err == nil {
		t.Error("non-edges cannot be oriented")
	}
	if h := o.Host(0, 1); h != -1 {
		t.Errorf("unassigned host = %d, want -1", h)
	}
}

func TestHappySetIsIndependent(t *testing.T) {
	g := graph.Cycle(6)
	o := NewGathering(g)
	// Orient alternately: even nodes host everything they touch.
	for _, e := range g.Edges() {
		host := e.U
		if e.V%2 == 0 {
			host = e.V
		}
		if err := o.Orient(e.U, e.V, host); err != nil {
			t.Fatal(err)
		}
	}
	happy := o.HappySet()
	if !g.IsIndependent(happy) {
		t.Fatalf("happy set %v must be independent (Definition 2.1)", happy)
	}
	if len(happy) != 3 {
		t.Errorf("alternating orientation on C6 gives %d happy, want 3", len(happy))
	}
}

func TestFromHappySet(t *testing.T) {
	g := graph.Cycle(6)
	o, err := FromHappySet(g, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 2, 4} {
		if !o.IsHappy(v) {
			t.Errorf("node %d must be happy", v)
		}
	}
	got := o.HappySet()
	if len(got) != 3 {
		t.Errorf("happy set = %v, want exactly {0,2,4}", got)
	}
}

func TestFromHappySetRejectsDependentSet(t *testing.T) {
	g := graph.Cycle(6)
	if _, err := FromHappySet(g, []int{0, 1}); err == nil {
		t.Fatal("adjacent in-laws cannot both be happy")
	}
	if _, err := FromHappySet(g, []int{99}); err == nil {
		t.Fatal("out-of-range node must be rejected")
	}
}
