package core

import (
	"repro/internal/graph"
)

// AnalyzePeriodic produces the same per-node report as Analyze for a
// perfectly periodic scheduler, but in closed form — O(n + m + Σ H/period)
// instead of O(H·n) simulation. The paper's point that periodic schedules
// need no bookkeeping ("a parent knows in advance the years in which it
// will be happy") is exactly what makes this arithmetic possible.
//
// Field semantics match Analyze with one documented difference:
// IndependenceViolations counts conflicting *edges* (pairs whose periodic
// slots collide by CRT) rather than conflicting holidays; both are zero for
// a correct scheduler.
func AnalyzePeriodic(p Periodic, g *graph.Graph, horizon int64) *Report {
	n := g.N()
	rep := &Report{Scheduler: p.Name(), Horizon: horizon, Nodes: make([]NodeReport, n)}
	covered := make([]bool, horizon+1)
	for v := 0; v < n; v++ {
		period, offset := p.Period(v), p.Offset(v)
		nr := &rep.Nodes[v]
		nr.Node, nr.Degree = v, g.Degree(v)
		first := offset
		if first == 0 {
			first = period
		}
		if first > horizon {
			nr.MaxUnhappyRun = horizon
			continue
		}
		count := (horizon-first)/period + 1
		last := first + (count-1)*period
		nr.FirstHappy = first
		nr.HappyCount = count
		nr.MaxUnhappyRun = first - 1
		if run := horizon - last; run > nr.MaxUnhappyRun {
			nr.MaxUnhappyRun = run
		}
		if count >= 2 {
			if period-1 > nr.MaxUnhappyRun {
				nr.MaxUnhappyRun = period - 1
			}
			nr.MaxGap = period
			nr.MeanGap = float64(period)
		}
		for t := first; t <= horizon; t += period {
			covered[t] = true
		}
	}
	for t := int64(1); t <= horizon; t++ {
		if !covered[t] {
			rep.EmptyHolidays++
		}
	}
	for _, e := range g.Edges() {
		if !OffsetsCompatible(p.Period(e.U), p.Offset(e.U), p.Period(e.V), p.Offset(e.V)) {
			rep.IndependenceViolations++
		}
	}
	return rep
}
