package core

import (
	"testing"

	"repro/internal/graph"
)

func TestGreedyMISIndependentAndMaximal(t *testing.T) {
	g := graph.GNP(80, 0.08, 60)
	gm := NewGreedyMIS(g, 61)
	for step := 0; step < 200; step++ {
		happy := gm.Next()
		if !g.IsIndependent(happy) {
			t.Fatalf("step %d: dependent happy set", step)
		}
		// Maximality: every unhappy node has a happy neighbor.
		in := make([]bool, g.N())
		for _, v := range happy {
			in[v] = true
		}
		for v := 0; v < g.N(); v++ {
			if in[v] {
				continue
			}
			blocked := false
			for _, u := range g.Neighbors(v) {
				if in[u] {
					blocked = true
					break
				}
			}
			if !blocked && g.Degree(v) > 0 {
				t.Fatalf("step %d: node %d could have joined (set not maximal)", step, v)
			}
			if !blocked && g.Degree(v) == 0 {
				t.Fatalf("step %d: isolated node %d must always be happy", step, v)
			}
		}
	}
}

// GreedyMIS dominates FirstGrab in expectation: with the same number of
// holidays everyone is happy at least as often as the 1/(d+1) landmark.
func TestGreedyMISBeatsFairShare(t *testing.T) {
	g := graph.GNP(60, 0.1, 62)
	gm := NewGreedyMIS(g, 63)
	horizon := int64(20000)
	rep := Analyze(gm, g, horizon)
	for _, nr := range rep.Nodes {
		landmark := float64(horizon) / float64(nr.Degree+1)
		if float64(nr.HappyCount) < 0.95*landmark {
			t.Errorf("node %d (deg %d): happy %d times, below fair share %.0f",
				nr.Node, nr.Degree, nr.HappyCount, landmark)
		}
	}
}

func TestGreedyMISMoreHappinessThanFirstGrab(t *testing.T) {
	g := graph.GNP(60, 0.1, 64)
	horizon := int64(3000)
	gmRep := Analyze(NewGreedyMIS(g, 65), g, horizon)
	fgRep := Analyze(NewFirstGrab(g, 65), g, horizon)
	var gmTotal, fgTotal int64
	for v := range gmRep.Nodes {
		gmTotal += gmRep.Nodes[v].HappyCount
		fgTotal += fgRep.Nodes[v].HappyCount
	}
	if gmTotal <= fgTotal {
		t.Errorf("greedy MIS total happiness %d should exceed first-grab %d", gmTotal, fgTotal)
	}
}
