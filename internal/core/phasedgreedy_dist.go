package core

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/localsim"
)

// PhasedGreedyDistributed executes the §3 algorithm as a real message-
// passing protocol on the LOCAL-model simulator, demonstrating Theorem
// 3.1's "O(1) rounds per holiday" claim concretely. Each holiday costs
// exactly three synchronous rounds:
//
//  1. nodes whose color equals the holiday number announce themselves
//     (they are happy) and query their neighbors;
//  2. queried neighbors reply with their current colors;
//  3. the happy nodes greedily pick the smallest future color absent from
//     the replies.
//
// Given the same initial coloring it reproduces the centralized
// PhasedGreedy schedule exactly (see the equivalence test).
type PhasedGreedyDistributed struct {
	g     *graph.Graph
	net   *localsim.Network
	nodes []*pgNode
	t     int64
}

type pgQuery struct{}

type pgReply struct{ color int64 }

// pgNode is the per-node state machine of the three-round protocol.
type pgNode struct {
	col       int64
	lastHappy int64
}

func (n *pgNode) Init(ctx *localsim.Context) {}

func (n *pgNode) Round(ctx *localsim.Context, inbox []localsim.Inbound) {
	r := int64(ctx.Round())
	t := (r-1)/3 + 1
	switch (r - 1) % 3 {
	case 0: // announce & query
		if n.col == t {
			n.lastHappy = t
			ctx.Broadcast(pgQuery{})
		}
	case 1: // reply with color
		for _, m := range inbox {
			if _, ok := m.Payload.(pgQuery); ok {
				ctx.Send(m.From, pgReply{n.col})
			}
		}
	case 2: // recolor from replies
		if n.lastHappy != t {
			return
		}
		taken := make(map[int64]bool, len(inbox))
		for _, m := range inbox {
			if rep, ok := m.Payload.(pgReply); ok {
				taken[rep.color] = true
			}
		}
		j := t + 1
		for taken[j] {
			j++
		}
		n.col = j
	}
}

// NewPhasedGreedyDistributed builds the protocol over a proper
// degree-bounded initial coloring (same contract as NewPhasedGreedy).
func NewPhasedGreedyDistributed(g *graph.Graph, initial coloring.Coloring) (*PhasedGreedyDistributed, error) {
	if err := coloring.VerifyDegreeBounded(g, initial); err != nil {
		return nil, fmt.Errorf("core: distributed phased greedy needs a degree-bounded proper coloring: %w", err)
	}
	p := &PhasedGreedyDistributed{g: g, nodes: make([]*pgNode, g.N())}
	p.net = localsim.New(g, func(v int) localsim.Algorithm {
		p.nodes[v] = &pgNode{col: int64(initial[v])}
		return p.nodes[v]
	})
	return p, nil
}

// Name implements Scheduler.
func (p *PhasedGreedyDistributed) Name() string { return "phased-greedy/distributed" }

// Holiday implements Scheduler.
func (p *PhasedGreedyDistributed) Holiday() int64 { return p.t }

// RoundsPerHoliday returns the constant LOCAL cost of one holiday.
func (p *PhasedGreedyDistributed) RoundsPerHoliday() int { return 3 }

// Messages returns the total messages exchanged so far.
func (p *PhasedGreedyDistributed) Messages() int64 { return p.net.Messages() }

// Next implements Scheduler by driving three protocol rounds.
func (p *PhasedGreedyDistributed) Next() []int {
	p.t++
	for k := 0; k < 3; k++ {
		p.net.RunRound()
	}
	var happy []int
	for v, n := range p.nodes {
		if n.lastHappy == p.t {
			happy = append(happy, v)
		}
	}
	return happy
}
