package core

import (
	"fmt"

	"repro/internal/graph"
)

// This file explores the paper's closing conjecture (§6): that perfectly
// periodic schedules cannot in general match the non-periodic d+1 guarantee
// — the best periodic bound should be d + ω(1). A per-node period/offset
// assignment {(p_v, o_v)} is conflict-free iff for every edge (u,v):
// o_u ≢ o_v (mod gcd(p_u, p_v)) — by CRT this is exactly the condition that
// t ≡ o_u (mod p_u) and t ≡ o_v (mod p_v) share no solution.

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// OffsetsCompatible reports whether two (period, offset) pairs never host
// the same holiday.
func OffsetsCompatible(p1, o1, p2, o2 int64) bool {
	g := gcd64(p1, p2)
	return o1%g != o2%g
}

// FeasibleOffsets searches for offsets realizing the given per-node periods
// by backtracking (nodes in decreasing-degree order). It returns the offsets
// and true on success, or nil and false if no conflict-free assignment
// exists. Exponential in the worst case: intended for the small instances of
// experiment E12.
func FeasibleOffsets(g *graph.Graph, periods []int64) ([]int64, bool) {
	if len(periods) != g.N() {
		panic(fmt.Sprintf("core: %d periods for %d nodes", len(periods), g.N()))
	}
	for _, p := range periods {
		if p < 1 {
			panic("core: periods must be >= 1")
		}
	}
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	// Decreasing degree: most constrained first.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && g.Degree(order[j]) > g.Degree(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	offsets := make([]int64, g.N())
	assigned := make([]bool, g.N())
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			return true
		}
		v := order[k]
		for o := int64(0); o < periods[v]; o++ {
			ok := true
			for _, u := range g.Neighbors(v) {
				if assigned[u] && !OffsetsCompatible(periods[v], o, periods[u], offsets[u]) {
					ok = false
					break
				}
			}
			if ok {
				offsets[v] = o
				assigned[v] = true
				if rec(k + 1) {
					return true
				}
				assigned[v] = false
			}
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	return offsets, true
}

// VerifyPeriodAssignment checks an assignment against every edge.
func VerifyPeriodAssignment(g *graph.Graph, periods, offsets []int64) error {
	for _, e := range g.Edges() {
		if !OffsetsCompatible(periods[e.U], offsets[e.U], periods[e.V], offsets[e.V]) {
			return fmt.Errorf("core: periodic conflict on edge (%d,%d): (%d,%d) vs (%d,%d)",
				e.U, e.V, periods[e.U], offsets[e.U], periods[e.V], offsets[e.V])
		}
	}
	return nil
}

// DegreePlusOnePeriods returns the conjecture's target vector: period
// deg(v)+1 for every node.
func DegreePlusOnePeriods(g *graph.Graph) []int64 {
	out := make([]int64, g.N())
	for v := 0; v < g.N(); v++ {
		out[v] = int64(g.Degree(v) + 1)
	}
	return out
}

// PowerOfTwoPeriods returns the §5 construction's vector: period
// 2^⌈log(deg+1)⌉ for every node — always feasible (Theorem 5.3), serving as
// the known-good reference point in E12.
func PowerOfTwoPeriods(g *graph.Graph) []int64 {
	out := make([]int64, g.N())
	for v := 0; v < g.N(); v++ {
		out[v] = int64(1) << uint(ceilLog2(g.Degree(v)+1))
	}
	return out
}

// MinUniformPeriod returns the smallest B ≤ maxB such that giving every node
// period B admits a conflict-free offset assignment, or 0 if none exists up
// to maxB. With a uniform period the compatibility condition degenerates to
// "adjacent offsets differ", so the answer equals the chromatic number —
// the §1 equivalence between schedules and colorings, found by search.
func MinUniformPeriod(g *graph.Graph, maxB int64) int64 {
	for b := int64(1); b <= maxB; b++ {
		periods := make([]int64, g.N())
		for i := range periods {
			periods[i] = b
		}
		if _, ok := FeasibleOffsets(g, periods); ok {
			return b
		}
	}
	return 0
}
