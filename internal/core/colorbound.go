package core

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// ColorBound is the §4 lightweight perfectly periodic scheduler. Node v with
// color c hosts exactly at the holidays t whose ⍴-low bits spell the
// prefix-free codeword of c (read LSB first): t ≡ offset (mod 2^len).
// Prefix-freeness guarantees that two different colors never host together,
// so every holiday's happy set is one color class — an independent set.
// With the Elias omega code the period is 2^ρ(c) ≤ 2^{1+log* c}·φ(c)
// (Theorem 4.2).
type ColorBound struct {
	g       *graph.Graph
	code    prefixcode.Code
	colors  coloring.Coloring
	periods []int64
	offsets []int64
	t       int64
}

// NewColorBound builds the scheduler over any proper coloring and any
// prefix-free code (the paper's choice is the omega code). Errors if the
// coloring is not proper or some codeword exceeds 62 bits (period overflow).
func NewColorBound(g *graph.Graph, col coloring.Coloring, code prefixcode.Code) (*ColorBound, error) {
	if err := coloring.Verify(g, col); err != nil {
		return nil, fmt.Errorf("core: color-bound scheduler needs a proper coloring: %w", err)
	}
	cb := &ColorBound{
		g:       g,
		code:    code,
		colors:  col,
		periods: make([]int64, g.N()),
		offsets: make([]int64, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		enc := code.Encode(uint64(col[v]))
		if enc.Len() > 62 {
			return nil, fmt.Errorf("core: codeword of color %d is %d bits; period overflows int64", col[v], enc.Len())
		}
		cb.periods[v] = int64(1) << uint(enc.Len())
		cb.offsets[v] = int64(enc.Value())
	}
	return cb, nil
}

// Name implements Scheduler.
func (cb *ColorBound) Name() string { return "color-bound/" + cb.code.Name() }

// Holiday implements Scheduler.
func (cb *ColorBound) Holiday() int64 { return cb.t }

// Next implements Scheduler.
func (cb *ColorBound) Next() []int {
	cb.t++
	var happy []int
	for v := 0; v < cb.g.N(); v++ {
		if cb.t%cb.periods[v] == cb.offsets[v] {
			happy = append(happy, v)
		}
	}
	return happy
}

// Period implements Periodic: exactly 2^len(code(col(v))).
func (cb *ColorBound) Period(v int) int64 { return cb.periods[v] }

// Offset implements Periodic.
func (cb *ColorBound) Offset(v int) int64 { return cb.offsets[v] }

// Color returns the color driving v's schedule.
func (cb *ColorBound) Color(v int) int { return cb.colors[v] }

var _ Periodic = (*ColorBound)(nil)
