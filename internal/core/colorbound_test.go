package core

import (
	"math"
	"testing"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// Theorem 4.2: under the omega-code schedule, a node with color c hosts with
// period exactly 2^ρ(c) ≤ 2^{1+log* c}·φ(c), and no two colors ever host
// together.
func TestTheorem42OnZoo(t *testing.T) {
	for name, g := range testZoo() {
		col := greedyColoring(g)
		cb, err := NewColorBound(g, col, prefixcode.Omega{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := 0; v < g.N(); v++ {
			c := uint64(col[v])
			if got, want := cb.Period(v), int64(1)<<uint(prefixcode.Rho(c)); got != want {
				t.Errorf("%s: node %d period %d, want 2^rho = %d", name, v, got, want)
			}
			if float64(cb.Period(v)) > prefixcode.PeriodUpperBound(c)*(1+1e-9) {
				t.Errorf("%s: node %d period %d exceeds Theorem 4.2 bound %g",
					name, v, cb.Period(v), prefixcode.PeriodUpperBound(c))
			}
		}
		rep := Analyze(cb, g, 600)
		if rep.IndependenceViolations != 0 {
			t.Errorf("%s: %d independence violations", name, rep.IndependenceViolations)
		}
	}
}

func TestColorBoundPeriodicityExact(t *testing.T) {
	g := graph.GNP(60, 0.1, 50)
	cb, err := NewColorBound(g, greedyColoring(g), prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPeriodicity(cb, g, 512); err != nil {
		t.Fatal(err)
	}
}

func TestColorBoundMatchesPaperExample(t *testing.T) {
	// A node with color 1 has omega codeword "0": period 2, offset 0 — it
	// hosts every even holiday. A node with color 2 ("100") has period 8,
	// offset 1 — holidays 1, 9, 17, ….
	g := graph.Path(2)
	cb, err := NewColorBound(g, coloring.Coloring{1, 2}, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	if cb.Period(0) != 2 || cb.Offset(0) != 0 {
		t.Errorf("color 1: (period,offset) = (%d,%d), want (2,0)", cb.Period(0), cb.Offset(0))
	}
	if cb.Period(1) != 8 || cb.Offset(1) != 1 {
		t.Errorf("color 2: (period,offset) = (%d,%d), want (8,1)", cb.Period(1), cb.Offset(1))
	}
	for tt := int64(1); tt <= 32; tt++ {
		happy := cb.Next()
		for _, v := range happy {
			switch v {
			case 0:
				if tt%2 != 0 {
					t.Errorf("color-1 node happy at odd holiday %d", tt)
				}
			case 1:
				if tt%8 != 1 {
					t.Errorf("color-2 node happy at holiday %d, want ≡1 mod 8", tt)
				}
			}
		}
	}
}

// All four prefix codes must yield valid (independent) schedules; only the
// periods differ. This is the E11 ablation's correctness core.
func TestColorBoundAllCodes(t *testing.T) {
	g := graph.GNP(70, 0.08, 51)
	col := greedyColoring(g)
	for _, code := range prefixcode.All() {
		cb, err := NewColorBound(g, col, code)
		if err != nil {
			t.Fatalf("%s: %v", code.Name(), err)
		}
		rep := Analyze(cb, g, 400)
		if rep.IndependenceViolations != 0 {
			t.Errorf("%s: independence violated", code.Name())
		}
		for v := 0; v < g.N(); v++ {
			want := int64(1) << uint(code.Len(uint64(col[v])))
			if cb.Period(v) != want {
				t.Errorf("%s: node %d period %d, want %d", code.Name(), v, cb.Period(v), want)
			}
		}
	}
}

func TestColorBoundBipartiteTwoYearCycle(t *testing.T) {
	// The intro's intergroup-marriage example: a bipartite society with the
	// 2-coloring hosts every family every other year, regardless of degree.
	g := graph.CompleteBipartite(8, 8)
	col, err := coloring.Bipartite(g)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewColorBound(g, col, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(cb, g, 64)
	// Color 1 ("0") has period 2; color 2 ("100") has period 8: the omega
	// encoding penalizes the second class. The max run must still be ≤ 7.
	if err := rep.CheckBound(func(nr NodeReport) int64 { return 7 }); err != nil {
		t.Errorf("bipartite schedule: %v", err)
	}
	if rep.IndependenceViolations != 0 {
		t.Error("independence violated")
	}
}

func TestColorBoundUnhappyRunsMatchPeriods(t *testing.T) {
	g := graph.GNP(50, 0.15, 52)
	cb, err := NewColorBound(g, greedyColoring(g), prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	maxPeriod := int64(0)
	for v := 0; v < g.N(); v++ {
		if cb.Period(v) > maxPeriod {
			maxPeriod = cb.Period(v)
		}
	}
	rep := Analyze(cb, g, 4*maxPeriod)
	for _, nr := range rep.Nodes {
		if p := cb.Period(nr.Node); nr.MaxUnhappyRun != p-1 {
			t.Errorf("node %d: unhappy run %d, want period-1 = %d", nr.Node, nr.MaxUnhappyRun, p-1)
		}
		if nr.MaxGap != cb.Period(nr.Node) && nr.HappyCount > 1 {
			t.Errorf("node %d: max gap %d, want exact period %d", nr.Node, nr.MaxGap, cb.Period(nr.Node))
		}
	}
}

func TestColorBoundRejectsImproperColoring(t *testing.T) {
	g := graph.Path(2)
	if _, err := NewColorBound(g, coloring.Coloring{1, 1}, prefixcode.Omega{}); err == nil {
		t.Fatal("improper coloring must be rejected")
	}
}

func TestColorBoundRejectsOverflowingColors(t *testing.T) {
	// A unary codeword of length 400 would need period 2^400.
	g := graph.Empty(1)
	if _, err := NewColorBound(g, coloring.Coloring{400}, prefixcode.Unary{}); err == nil {
		t.Fatal("overflowing period must be rejected")
	}
}

// The schedule realizes Kraft's inequality: summed hosting rates of the
// color classes cannot exceed 1, with equality only for complete codes.
func TestColorBoundRateBudget(t *testing.T) {
	g := graph.Clique(12)
	col := greedyColoring(g) // colors 1..12
	cb, err := NewColorBound(g, col, prefixcode.Omega{})
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.0
	for v := 0; v < g.N(); v++ {
		rate += 1 / float64(cb.Period(v))
	}
	if rate > 1+1e-12 {
		t.Errorf("total hosting rate %v exceeds 1 on a clique (two nodes would collide)", rate)
	}
	if math.IsNaN(rate) || rate <= 0 {
		t.Errorf("nonsensical rate %v", rate)
	}
}
