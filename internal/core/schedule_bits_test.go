package core

import (
	"testing"

	"repro/internal/graph"
)

// bitWindows are the alignments the packed-emission tests sweep: block
// boundaries, interior starts, and single holidays.
var bitWindows = [][2]int64{
	{1, 1}, {1, 64}, {2, 5}, {7, 7}, {37, 211}, {97, 160},
	{windowBlock - 3, windowBlock + 9}, // crosses the block boundary
	{500, 500},
}

// TestWindowBitsMatchesWindow: for every scheduler of the zoo, the packed
// bitmap emission must agree bit-for-bit with the []int rows of Window at
// every alignment — the core layer of the binary-protocol differential
// proof.
func TestWindowBitsMatchesWindow(t *testing.T) {
	for gname, g := range testZoo() {
		for name, mk := range periodicCases(t, g) {
			sched := ScheduleOf(mk(), g.N())
			if _, ok := sched.(BitWindower); !ok {
				t.Fatalf("%s/%s: closed-form schedule does not implement BitWindower", gname, name)
			}
			checkWindowBits(t, gname+"/"+name, sched, g.N())
		}
	}
}

// TestWindowBitsFallbackMatchesWindow: schedules without native bitmap
// emission (replay cursors over stateful schedulers) must serve identical
// packed rows through the WindowBits fallback packing.
func TestWindowBitsFallbackMatchesWindow(t *testing.T) {
	g := graph.GNP(70, 0.08, 11)
	mk := func() (Scheduler, error) { return NewFirstGrab(g, 5), nil }
	s, _ := mk()
	sched := NewReplaySchedule(s, mk)
	if _, ok := sched.(BitWindower); ok {
		t.Fatal("replay schedule unexpectedly implements BitWindower; the fallback path is untested")
	}
	checkWindowBits(t, "replay/first-grab", sched, g.N())
}

// checkWindowBits compares WindowBits against Window on every alignment of
// bitWindows. Window is recorded first (the replay cursor serializes
// internally, so interleaving the two would deadlock on reentrancy).
func checkWindowBits(t *testing.T, label string, sched Schedule, n int) {
	t.Helper()
	for _, w := range bitWindows {
		var want [][]int
		sched.Window(w[0], w[1], func(_ int64, happy []int) {
			want = append(want, append([]int(nil), happy...))
		})
		ref := graph.NewBitset(n)
		i := 0
		WindowBits(sched, n, w[0], w[1], func(tt int64, row graph.Bitset) {
			if tt != w[0]+int64(i) {
				t.Fatalf("%s: window [%d,%d] visited holiday %d at position %d", label, w[0], w[1], tt, i)
			}
			if len(row) != (n+63)/64 {
				t.Fatalf("%s: holiday %d row has %d words, want ⌈%d/64⌉", label, tt, len(row), n)
			}
			ref.Reset()
			for _, v := range want[i] {
				ref.Set(v)
			}
			for wi := range row {
				if row[wi] != ref[wi] {
					t.Fatalf("%s: holiday %d word %d = %x, want %x (happy %v)", label, tt, wi, row[wi], ref[wi], want[i])
				}
			}
			i++
		})
		if i != len(want) {
			t.Fatalf("%s: window [%d,%d] emitted %d bitmap rows, Window produced %d", label, w[0], w[1], i, len(want))
		}
	}
}

// TestWindowBitsOutOfRange: out-of-range windows must emit nothing, exactly
// like Window.
func TestWindowBitsOutOfRange(t *testing.T) {
	g := graph.Star(9)
	sched := ScheduleOf(NewDegreeBoundSequential(g), g.N())
	for _, w := range [][2]int64{{0, 5}, {-3, -1}, {9, 3}, {MaxHoliday + 1, MaxHoliday + 2}} {
		WindowBits(sched, g.N(), w[0], w[1], func(tt int64, _ graph.Bitset) {
			t.Fatalf("window [%d,%d] visited holiday %d", w[0], w[1], tt)
		})
	}
}

// BenchmarkWindowBits measures the packed closed-form emission against the
// []int path of BenchmarkWindowRandomAccess-style queries.
func BenchmarkWindowBits(b *testing.B) {
	g := graph.GNP(1024, 0.01, 7)
	sched := ScheduleOf(NewDegreeBoundSequential(g), g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := int64(1 + (i*97)%100000)
		WindowBits(sched, g.N(), from, from+51, func(int64, graph.Bitset) {})
	}
}
