package core

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/graph"
)

// DegreeBound is the §5 perfectly periodic degree-bound scheduler: a node of
// degree d hosts exactly every 2^⌈log(d+1)⌉ ≤ 2d holidays. Each node owns a
// slot x in [0, 2^j) with j = ⌈log(d+1)⌉ such that no two adjacent nodes
// collide modulo the smaller of their two moduli (Lemmas 5.1/5.2), and hosts
// at holidays t ≡ x (mod 2^j).
type DegreeBound struct {
	g       *graph.Graph
	name    string
	periods []int64
	offsets []int64
	t       int64
}

// Name implements Scheduler.
func (db *DegreeBound) Name() string { return db.name }

// Holiday implements Scheduler.
func (db *DegreeBound) Holiday() int64 { return db.t }

// Next implements Scheduler.
func (db *DegreeBound) Next() []int {
	db.t++
	var happy []int
	for v := 0; v < db.g.N(); v++ {
		if db.t%db.periods[v] == db.offsets[v] {
			happy = append(happy, v)
		}
	}
	return happy
}

// Period implements Periodic: exactly 2^⌈log(deg(v)+1)⌉.
func (db *DegreeBound) Period(v int) int64 { return db.periods[v] }

// Offset implements Periodic.
func (db *DegreeBound) Offset(v int) int64 { return db.offsets[v] }

var _ Periodic = (*DegreeBound)(nil)

// NewDegreeBoundSequential runs the §5.1 greedy slot assignment: nodes in
// decreasing-degree order pick the smallest x ∈ [0, 2^j) that avoids every
// already-assigned neighbor's slot modulo 2^j. A free slot always exists
// because at most deg(v) < 2^j residues are forbidden.
func NewDegreeBoundSequential(g *graph.Graph) *DegreeBound {
	db := &DegreeBound{
		g:       g,
		name:    "degree-bound/sequential",
		periods: make([]int64, g.N()),
		offsets: make([]int64, g.N()),
	}
	assigned := make([]bool, g.N())
	for _, v := range coloring.ByDecreasingDegree(g) {
		j := ceilLog2(g.Degree(v) + 1)
		m := int64(1) << uint(j)
		forbidden := make(map[int64]bool, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if assigned[u] {
				// Earlier nodes have deg(u) ≥ deg(v), hence period ≥ m;
				// the Lemma 5.1 conflict condition reduces to equality of
				// residues mod m.
				forbidden[db.offsets[u]%m] = true
			}
		}
		x := int64(0)
		for forbidden[x] {
			x++
		}
		if x >= m {
			panic(fmt.Sprintf("core: no free slot for node %d: %d forbidden in modulus %d", v, len(forbidden), m))
		}
		db.periods[v] = m
		db.offsets[v] = x
		assigned[v] = true
	}
	return db
}

// VerifyNoConflicts checks the Lemma 5.1/5.2 invariant directly: for every
// edge, the two slots differ modulo the smaller modulus, so the endpoints
// never host the same holiday.
func (db *DegreeBound) VerifyNoConflicts() error {
	for _, e := range db.g.Edges() {
		m := db.periods[e.U]
		if db.periods[e.V] < m {
			m = db.periods[e.V]
		}
		if db.offsets[e.U]%m == db.offsets[e.V]%m {
			return fmt.Errorf("core: degree-bound conflict on edge (%d,%d): offsets %d,%d agree mod %d",
				e.U, e.V, db.offsets[e.U], db.offsets[e.V], m)
		}
	}
	return nil
}
