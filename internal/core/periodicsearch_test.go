package core

import (
	"testing"

	"repro/internal/graph"
)

func TestOffsetsCompatible(t *testing.T) {
	// Same period: compatible iff offsets differ.
	if OffsetsCompatible(4, 1, 4, 1) {
		t.Error("identical (4,1) pairs collide")
	}
	if !OffsetsCompatible(4, 1, 4, 2) {
		t.Error("(4,1) vs (4,2) never collide")
	}
	// Coprime periods always collide somewhere (CRT).
	if OffsetsCompatible(2, 0, 3, 1) {
		t.Error("coprime periods always share a holiday")
	}
	// gcd 2: compatible iff offsets differ mod 2.
	if !OffsetsCompatible(4, 0, 6, 1) {
		t.Error("(4,0) vs (6,1): parities differ, never collide")
	}
	if OffsetsCompatible(4, 0, 6, 2) {
		t.Error("(4,0) vs (6,2): both even, collide at t ≡ 0 mod 12... (e.g. 12)")
	}
}

// On a clique the d+1 target (all periods = n) is feasible: round robin.
func TestDegreePlusOneFeasibleOnClique(t *testing.T) {
	g := graph.Clique(6)
	offsets, ok := FeasibleOffsets(g, DegreePlusOnePeriods(g))
	if !ok {
		t.Fatal("K6 must admit the round-robin period-6 assignment")
	}
	if err := VerifyPeriodAssignment(g, DegreePlusOnePeriods(g), offsets); err != nil {
		t.Fatal(err)
	}
}

// §6 conjecture material: on a star with an even center degree (odd period
// d+1), leaves of period 2 are incompatible with the odd-period center —
// gcd is 1 and every pair of residues collides. The d+1 target is
// infeasible, while the §5 power-of-two relaxation always works.
func TestDegreePlusOneInfeasibleOnOddStar(t *testing.T) {
	g := graph.Star(5) // center degree 4 -> period 5 (odd); leaves period 2
	if _, ok := FeasibleOffsets(g, DegreePlusOnePeriods(g)); ok {
		t.Fatal("period-5 center with period-2 leaves must be infeasible (gcd 1)")
	}
	offsets, ok := FeasibleOffsets(g, PowerOfTwoPeriods(g))
	if !ok {
		t.Fatal("the Theorem 5.3 power-of-two periods must be feasible")
	}
	if err := VerifyPeriodAssignment(g, PowerOfTwoPeriods(g), offsets); err != nil {
		t.Fatal(err)
	}
}

func TestDegreePlusOneFeasibleOnEvenStar(t *testing.T) {
	g := graph.Star(4) // center degree 3 -> period 4; leaves period 2: parity split works
	offsets, ok := FeasibleOffsets(g, DegreePlusOnePeriods(g))
	if !ok {
		t.Fatal("even-period center with period-2 leaves is feasible")
	}
	if err := VerifyPeriodAssignment(g, DegreePlusOnePeriods(g), offsets); err != nil {
		t.Fatal(err)
	}
}

func TestPowerOfTwoPeriodsAlwaysFeasibleOnZoo(t *testing.T) {
	for name, g := range testZoo() {
		if g.N() > 40 {
			continue // keep the backtracking search small
		}
		periods := PowerOfTwoPeriods(g)
		offsets, ok := FeasibleOffsets(g, periods)
		if !ok {
			t.Errorf("%s: power-of-two periods must be feasible (Theorem 5.3)", name)
			continue
		}
		if err := VerifyPeriodAssignment(g, periods, offsets); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// With a uniform period the search reduces to proper coloring, so the
// minimal uniform period is the chromatic number (§1 equivalence).
func TestMinUniformPeriodIsChromaticNumber(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		chi  int64
	}{
		{"K5", graph.Clique(5), 5},
		{"C6", graph.Cycle(6), 2},
		{"C7", graph.Cycle(7), 3},
		{"P4", graph.Path(4), 2},
		{"K33", graph.CompleteBipartite(3, 3), 2},
		{"singleton", graph.Empty(1), 1},
	}
	for _, tc := range cases {
		if got := MinUniformPeriod(tc.g, 8); got != tc.chi {
			t.Errorf("%s: min uniform period = %d, want χ = %d", tc.name, got, tc.chi)
		}
	}
}

func TestMinUniformPeriodUnreachable(t *testing.T) {
	if got := MinUniformPeriod(graph.Clique(5), 3); got != 0 {
		t.Errorf("K5 within budget 3: got %d, want 0 (infeasible)", got)
	}
}
