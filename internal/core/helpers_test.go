package core

import (
	"repro/internal/coloring"
	"repro/internal/graph"
)

// testZoo returns the graph families shared by the core tests.
func testZoo() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"clique10":  graph.Clique(10),
		"cycle9":    graph.Cycle(9),
		"cycle12":   graph.Cycle(12),
		"star16":    graph.Star(16),
		"star17":    graph.Star(17),
		"path20":    graph.Path(20),
		"grid6x6":   graph.Grid(6, 6),
		"gnp120":    graph.GNP(120, 0.06, 31),
		"tree80":    graph.RandomTree(80, 32),
		"regular4":  graph.RandomRegular(80, 4, 33),
		"powerlaw":  graph.PreferentialAttachment(150, 2, 34),
		"bipartite": graph.RandomBipartite(25, 35, 0.15, 35),
		"edgeless":  graph.Empty(9),
	}
}

// greedyColoring returns a proper degree-bounded coloring for scheduler
// construction in tests.
func greedyColoring(g *graph.Graph) coloring.Coloring {
	return coloring.Greedy(g, coloring.IdentityOrder(g.N()))
}
