package core

import (
	"fmt"

	"repro/internal/graph"
)

// Partial accumulates the per-node gap statistics of Analyze over a
// contiguous holiday range [Lo, Hi]. Partials over adjacent ranges merge
// associatively, which is what lets the analysis engine split a horizon
// across workers: each shard observes its own holidays, then the shards are
// merged left-to-right and finalized into a Report that is byte-identical
// to a single sequential pass.
type Partial struct {
	// Lo and Hi delimit the inclusive holiday range this partial covers.
	Lo, Hi int64

	nodes      []partialNode
	empty      int64 // holidays in range with no happy node
	violations int64 // holidays in range whose happy set induced an edge
}

// partialNode is one node's statistics restricted to the partial's range.
type partialNode struct {
	happyCount int64
	firstHappy int64 // first happy holiday in range, 0 if none
	lastHappy  int64 // last happy holiday in range, 0 if none
	innerRun   int64 // longest unhappy run strictly between in-range happy holidays
	maxGap     int64
	sumGaps    int64
	numGaps    int64
}

// NewPartial returns an empty partial for n nodes over holidays [lo, hi].
func NewPartial(n int, lo, hi int64) *Partial {
	return &Partial{Lo: lo, Hi: hi, nodes: make([]partialNode, n)}
}

// Observe records one holiday's happy set. t must progress strictly
// upward within [Lo, Hi] across calls; indep is the independence check
// (Graph.IsIndependent or a bitset-backed equivalent).
func (p *Partial) Observe(t int64, happy []int, indep func([]int) bool) {
	if len(happy) == 0 {
		p.empty++
	}
	if !indep(happy) {
		p.violations++
	}
	for _, v := range happy {
		pn := &p.nodes[v]
		if pn.happyCount > 0 {
			gap := t - pn.lastHappy
			if gap > pn.maxGap {
				pn.maxGap = gap
			}
			if run := gap - 1; run > pn.innerRun {
				pn.innerRun = run
			}
			pn.sumGaps += gap
			pn.numGaps++
		} else {
			pn.firstHappy = t
		}
		pn.happyCount++
		pn.lastHappy = t
	}
}

// Merge absorbs next, which must cover the range immediately following p
// (next.Lo == p.Hi+1) over the same node count. Gaps that straddle the
// boundary are accounted for here, so merging is exactly equivalent to
// having observed both ranges in one pass.
func (p *Partial) Merge(next *Partial) error {
	if next.Lo != p.Hi+1 {
		return fmt.Errorf("core: merging non-adjacent partials [%d,%d] and [%d,%d]",
			p.Lo, p.Hi, next.Lo, next.Hi)
	}
	if len(next.nodes) != len(p.nodes) {
		return fmt.Errorf("core: merging partials over %d and %d nodes",
			len(p.nodes), len(next.nodes))
	}
	for v := range p.nodes {
		a, b := &p.nodes[v], &next.nodes[v]
		switch {
		case b.happyCount == 0:
			// Nothing to bridge; a already holds the combined statistics.
		case a.happyCount == 0:
			*a = *b
		default:
			gap := b.firstHappy - a.lastHappy
			if gap > a.maxGap {
				a.maxGap = gap
			}
			if b.maxGap > a.maxGap {
				a.maxGap = b.maxGap
			}
			run := gap - 1
			if b.innerRun > run {
				run = b.innerRun
			}
			if run > a.innerRun {
				a.innerRun = run
			}
			a.sumGaps += gap + b.sumGaps
			a.numGaps += 1 + b.numGaps
			a.happyCount += b.happyCount
			a.lastHappy = b.lastHappy
		}
	}
	p.empty += next.empty
	p.violations += next.violations
	p.Hi = next.Hi
	return nil
}

// Finalize converts the partial into a full Report. The partial must cover
// a complete horizon starting at holiday 1; the leading and trailing
// partial runs of unhappiness are added here.
func (p *Partial) Finalize(scheduler string, g *graph.Graph) (*Report, error) {
	if p.Lo != 1 {
		return nil, fmt.Errorf("core: finalizing partial starting at holiday %d, want 1", p.Lo)
	}
	if len(p.nodes) != g.N() {
		return nil, fmt.Errorf("core: partial over %d nodes, graph has %d", len(p.nodes), g.N())
	}
	rep := &Report{
		Scheduler:              scheduler,
		Horizon:                p.Hi,
		Nodes:                  make([]NodeReport, len(p.nodes)),
		EmptyHolidays:          p.empty,
		IndependenceViolations: p.violations,
	}
	for v := range p.nodes {
		pn := &p.nodes[v]
		nr := &rep.Nodes[v]
		nr.Node, nr.Degree = v, g.Degree(v)
		nr.HappyCount = pn.happyCount
		nr.FirstHappy = pn.firstHappy
		nr.MaxGap = pn.maxGap
		nr.MaxUnhappyRun = pn.innerRun
		if lead := pn.firstHappy - 1; pn.happyCount > 0 && lead > nr.MaxUnhappyRun {
			nr.MaxUnhappyRun = lead
		}
		if trail := p.Hi - pn.lastHappy; trail > nr.MaxUnhappyRun {
			nr.MaxUnhappyRun = trail // lastHappy is 0 when never happy: run = Hi
		}
		if pn.numGaps > 0 {
			nr.MeanGap = float64(pn.sumGaps) / float64(pn.numGaps)
		}
	}
	return rep, nil
}
