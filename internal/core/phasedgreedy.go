package core

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/graph"
)

// PhasedGreedy is the §3 non-periodic degree-bound algorithm. Starting from
// a proper coloring with col(v) ≤ deg(v)+1 (the BEPS guarantee), at holiday
// i the nodes colored i are happy and immediately recolor themselves with
// the smallest color j > i not present in their neighborhood. Theorem 3.1:
// every node of degree d is happy at least once in every d+1 consecutive
// holidays; each holiday costs O(1) communication rounds.
type PhasedGreedy struct {
	g       *graph.Graph
	col     []int64
	buckets map[int64][]int
	t       int64
}

// NewPhasedGreedy builds the scheduler from an initial coloring, which must
// be proper and degree-bounded (col(v) ≤ deg(v)+1); both properties are
// checked. Use coloring.DistributedDelta1 for the paper's distributed
// initialization or any sequential greedy coloring.
func NewPhasedGreedy(g *graph.Graph, initial coloring.Coloring) (*PhasedGreedy, error) {
	if err := coloring.VerifyDegreeBounded(g, initial); err != nil {
		return nil, fmt.Errorf("core: phased greedy needs a degree-bounded proper coloring: %w", err)
	}
	p := &PhasedGreedy{g: g, col: make([]int64, g.N()), buckets: make(map[int64][]int)}
	for v, c := range initial {
		p.col[v] = int64(c)
		p.buckets[int64(c)] = append(p.buckets[int64(c)], v)
	}
	return p, nil
}

// Name implements Scheduler.
func (p *PhasedGreedy) Name() string { return "phased-greedy" }

// Holiday implements Scheduler.
func (p *PhasedGreedy) Holiday() int64 { return p.t }

// RoundsPerHoliday returns the LOCAL communication cost of executing one
// holiday: a constant (each recoloring node exchanges colors with its
// neighbors once and announces its new color once).
func (p *PhasedGreedy) RoundsPerHoliday() int { return 2 }

// Next implements Scheduler: the nodes whose current color equals the new
// holiday number are happy, then greedily recolor into the future.
func (p *PhasedGreedy) Next() []int {
	p.t++
	happy := p.buckets[p.t]
	delete(p.buckets, p.t)
	// The happy set is a color class, hence independent; recoloring each
	// member only consults its (unchanged) neighbors, so order is
	// irrelevant.
	for _, v := range happy {
		taken := make(map[int64]bool, p.g.Degree(v))
		for _, u := range p.g.Neighbors(v) {
			taken[p.col[u]] = true
		}
		// Smallest j > t absent from the neighborhood; at most deg(v)
		// colors are taken, so j ≤ t + deg(v) + 1.
		j := p.t + 1
		for taken[j] {
			j++
		}
		p.col[v] = j
		p.buckets[j] = append(p.buckets[j], v)
	}
	return happy
}

// Color returns v's current color (its next scheduled hosting holiday).
func (p *PhasedGreedy) Color(v int) int64 { return p.col[v] }

// VerifyProper checks the internal invariant that the evolving coloring
// remains proper; exposed for tests and failure injection.
func (p *PhasedGreedy) VerifyProper() error {
	for v := 0; v < p.g.N(); v++ {
		for _, u := range p.g.Neighbors(v) {
			if p.col[u] == p.col[v] {
				return fmt.Errorf("core: phased greedy coloring violated on edge (%d,%d): both %d", v, u, p.col[v])
			}
		}
	}
	return nil
}
