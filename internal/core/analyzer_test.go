package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// scriptedScheduler replays a fixed sequence of happy sets for analyzer
// tests.
type scriptedScheduler struct {
	script [][]int
	t      int64
}

func (s *scriptedScheduler) Name() string { return "scripted" }
func (s *scriptedScheduler) Next() []int {
	s.t++
	if int(s.t) <= len(s.script) {
		return s.script[s.t-1]
	}
	return nil
}
func (s *scriptedScheduler) Holiday() int64 { return s.t }

func TestAnalyzeGapAccounting(t *testing.T) {
	g := graph.Empty(2)
	s := &scriptedScheduler{script: [][]int{
		{0},    // t=1
		{},     // t=2
		{},     // t=3
		{0, 1}, // t=4
		{},     // t=5
	}}
	rep := Analyze(s, g, 5)
	n0 := rep.Nodes[0]
	if n0.FirstHappy != 1 || n0.HappyCount != 2 {
		t.Errorf("node 0: first=%d count=%d, want 1, 2", n0.FirstHappy, n0.HappyCount)
	}
	if n0.MaxGap != 3 {
		t.Errorf("node 0: max gap = %d, want 3 (happy at 1 and 4)", n0.MaxGap)
	}
	// Runs for node 0: before t=1 none; t=2..3 (len 2); t=5 trailing (len 1).
	if n0.MaxUnhappyRun != 2 {
		t.Errorf("node 0: max unhappy run = %d, want 2", n0.MaxUnhappyRun)
	}
	n1 := rep.Nodes[1]
	// Node 1 first happy at t=4: leading run of 3, trailing run of 1.
	if n1.MaxUnhappyRun != 3 || n1.FirstHappy != 4 {
		t.Errorf("node 1: run=%d first=%d, want 3, 4", n1.MaxUnhappyRun, n1.FirstHappy)
	}
	if rep.EmptyHolidays != 3 {
		t.Errorf("empty holidays = %d, want 3", rep.EmptyHolidays)
	}
}

func TestAnalyzeNeverHappyNode(t *testing.T) {
	g := graph.Empty(1)
	s := &scriptedScheduler{script: [][]int{{}, {}, {}}}
	rep := Analyze(s, g, 3)
	if rep.Nodes[0].MaxUnhappyRun != 3 {
		t.Errorf("never-happy run = %d, want the whole horizon 3", rep.Nodes[0].MaxUnhappyRun)
	}
	if rep.Nodes[0].FirstHappy != 0 {
		t.Errorf("never-happy FirstHappy = %d, want 0", rep.Nodes[0].FirstHappy)
	}
}

func TestAnalyzeDetectsIndependenceViolation(t *testing.T) {
	g := graph.Path(2)
	s := &scriptedScheduler{script: [][]int{{0, 1}}}
	rep := Analyze(s, g, 1)
	if rep.IndependenceViolations != 1 {
		t.Fatalf("violations = %d, want 1", rep.IndependenceViolations)
	}
}

func TestCheckBound(t *testing.T) {
	g := graph.Empty(1)
	s := &scriptedScheduler{script: [][]int{{}, {0}}}
	rep := Analyze(s, g, 2)
	if err := rep.CheckBound(func(nr NodeReport) int64 { return 1 }); err != nil {
		t.Errorf("bound 1 should pass for run of 1: %v", err)
	}
	if err := rep.CheckBound(func(nr NodeReport) int64 { return 0 }); err == nil {
		t.Error("bound 0 should fail for run of 1")
	}
}

func TestMaxUnhappyRunByDegree(t *testing.T) {
	g := graph.Star(4)
	db := NewDegreeBoundSequential(g)
	rep := Analyze(db, g, 100)
	byDeg := rep.MaxUnhappyRunByDegree()
	if byDeg[1] >= byDeg[3] {
		t.Errorf("leaves (deg 1) should wait less than the center (deg 3): %v", byDeg)
	}
}

// Failure injection: a deliberately non-prefix-free code makes adjacent
// colors collide, and the analyzer's per-holiday independence verifier must
// catch it.
func TestAnalyzerCatchesBrokenCode(t *testing.T) {
	g := graph.Path(2)
	cb, err := NewColorBound(g, greedyColoring(g), brokenCode{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(cb, g, 16)
	if rep.IndependenceViolations == 0 {
		t.Fatal("a non-prefix-free code must produce detectable violations")
	}
}

// brokenCode maps every value to the codeword "0": all colors share period 2
// and offset 0, violating the prefix-freeness the §4 scheduler relies on.
type brokenCode struct{}

func (brokenCode) Name() string                  { return "broken" }
func (brokenCode) Encode(uint64) prefixcode.Bits { return prefixcode.MustParse("0") }
func (brokenCode) Len(uint64) int                { return 1 }
func (brokenCode) Decode(prefixcode.BitReader) (uint64, error) {
	return 1, nil
}
