package core

import (
	"fmt"

	"repro/internal/graph"
)

// NodeReport summarizes one node's experience over an analyzed horizon.
type NodeReport struct {
	Node       int
	Degree     int
	HappyCount int64
	FirstHappy int64 // holiday of first happiness, 0 if never
	// MaxUnhappyRun is the paper's mul(p): the length of the longest run of
	// consecutive holidays with no happiness, counting the partial runs at
	// the start and end of the horizon.
	MaxUnhappyRun int64
	// MaxGap is the largest difference between consecutive happy holidays
	// (0 when the node was happy fewer than twice).
	MaxGap int64
	// MeanGap is the average difference between consecutive happy holidays.
	MeanGap float64
}

// Report is the result of analyzing a scheduler run.
type Report struct {
	Scheduler string
	Horizon   int64
	Nodes     []NodeReport
	// IndependenceViolations counts holidays whose happy set induced an
	// edge; always 0 for a correct scheduler.
	IndependenceViolations int64
	// EmptyHolidays counts holidays with no happy node at all.
	EmptyHolidays int64
}

// Analyze runs s for the given number of holidays over conflict graph g,
// verifying the independence invariant every holiday and collecting per-node
// gap statistics.
func Analyze(s Scheduler, g *graph.Graph, horizon int64) *Report {
	n := g.N()
	rep := &Report{Scheduler: s.Name(), Horizon: horizon, Nodes: make([]NodeReport, n)}
	lastHappy := make([]int64, n)
	var sumGaps []int64 = make([]int64, n)
	var numGaps []int64 = make([]int64, n)
	for v := 0; v < n; v++ {
		rep.Nodes[v] = NodeReport{Node: v, Degree: g.Degree(v)}
	}
	for t := int64(1); t <= horizon; t++ {
		happy := s.Next()
		if len(happy) == 0 {
			rep.EmptyHolidays++
		}
		if !g.IsIndependent(happy) {
			rep.IndependenceViolations++
		}
		for _, v := range happy {
			nr := &rep.Nodes[v]
			run := t - lastHappy[v] - 1 // unhappy holidays since last happiness
			if run > nr.MaxUnhappyRun {
				nr.MaxUnhappyRun = run
			}
			if nr.HappyCount > 0 {
				gap := t - lastHappy[v]
				if gap > nr.MaxGap {
					nr.MaxGap = gap
				}
				sumGaps[v] += gap
				numGaps[v]++
			} else {
				nr.FirstHappy = t
			}
			nr.HappyCount++
			lastHappy[v] = t
		}
	}
	for v := 0; v < n; v++ {
		nr := &rep.Nodes[v]
		// Trailing partial run of unhappiness.
		if run := horizon - lastHappy[v]; run > nr.MaxUnhappyRun {
			nr.MaxUnhappyRun = run
		}
		if numGaps[v] > 0 {
			nr.MeanGap = float64(sumGaps[v]) / float64(numGaps[v])
		}
	}
	return rep
}

// MaxUnhappyRunByDegree aggregates the worst unhappy run observed at each
// degree value, the series plotted by experiment E4.
func (r *Report) MaxUnhappyRunByDegree() map[int]int64 {
	out := make(map[int]int64)
	for _, nr := range r.Nodes {
		if nr.MaxUnhappyRun > out[nr.Degree] {
			out[nr.Degree] = nr.MaxUnhappyRun
		}
	}
	return out
}

// CheckBound verifies bound(v) ≥ MaxUnhappyRun for every node, returning a
// descriptive error for the first violation. Experiments use it to assert
// the paper's per-node guarantees.
func (r *Report) CheckBound(bound func(nr NodeReport) int64) error {
	for _, nr := range r.Nodes {
		if b := bound(nr); nr.MaxUnhappyRun > b {
			return fmt.Errorf("core: node %d (degree %d) has unhappy run %d exceeding bound %d",
				nr.Node, nr.Degree, nr.MaxUnhappyRun, b)
		}
	}
	return nil
}

// VerifyPeriodicity checks that a Periodic scheduler's emitted happy sets
// over the horizon match its closed form exactly.
func VerifyPeriodicity(p Periodic, g *graph.Graph, horizon int64) error {
	for t := int64(1); t <= horizon; t++ {
		happy := p.Next()
		inSet := make(map[int]bool, len(happy))
		for _, v := range happy {
			inSet[v] = true
		}
		for v := 0; v < g.N(); v++ {
			want := HappyAt(p, v, t)
			if want != inSet[v] {
				return fmt.Errorf("core: %s: node %d at holiday %d: closed form says %v, Next says %v",
					p.Name(), v, t, want, inSet[v])
			}
		}
	}
	return nil
}
