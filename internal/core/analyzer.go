package core

import (
	"fmt"

	"repro/internal/graph"
)

// NodeReport summarizes one node's experience over an analyzed horizon.
type NodeReport struct {
	Node       int
	Degree     int
	HappyCount int64
	FirstHappy int64 // holiday of first happiness, 0 if never
	// MaxUnhappyRun is the paper's mul(p): the length of the longest run of
	// consecutive holidays with no happiness, counting the partial runs at
	// the start and end of the horizon.
	MaxUnhappyRun int64
	// MaxGap is the largest difference between consecutive happy holidays
	// (0 when the node was happy fewer than twice).
	MaxGap int64
	// MeanGap is the average difference between consecutive happy holidays.
	MeanGap float64
}

// Report is the result of analyzing a scheduler run.
type Report struct {
	Scheduler string
	Horizon   int64
	Nodes     []NodeReport
	// IndependenceViolations counts holidays whose happy set induced an
	// edge; always 0 for a correct scheduler.
	IndependenceViolations int64
	// EmptyHolidays counts holidays with no happy node at all.
	EmptyHolidays int64
}

// Analyze runs s for the given number of holidays over conflict graph g,
// verifying the independence invariant every holiday and collecting per-node
// gap statistics.
func Analyze(s Scheduler, g *graph.Graph, horizon int64) *Report {
	return AnalyzeChecked(s, g, horizon, g.IsIndependent)
}

// AnalyzeChecked is Analyze with a pluggable independence check: indep must
// agree with g.IsIndependent but may be faster (the engine passes a
// word-packed graph.AdjacencyBits checker). The accumulation runs through
// the same Partial machinery the parallel engine shards, so every analysis
// path produces identical Reports.
func AnalyzeChecked(s Scheduler, g *graph.Graph, horizon int64, indep func([]int) bool) *Report {
	p := NewPartial(g.N(), 1, horizon)
	for t := int64(1); t <= horizon; t++ {
		p.Observe(t, s.Next(), indep)
	}
	rep, err := p.Finalize(s.Name(), g)
	if err != nil {
		panic(err) // unreachable: the partial covers [1, horizon] over g's nodes
	}
	return rep
}

// MaxUnhappyRunByDegree aggregates the worst unhappy run observed at each
// degree value, the series plotted by experiment E4.
func (r *Report) MaxUnhappyRunByDegree() map[int]int64 {
	out := make(map[int]int64)
	for _, nr := range r.Nodes {
		if nr.MaxUnhappyRun > out[nr.Degree] {
			out[nr.Degree] = nr.MaxUnhappyRun
		}
	}
	return out
}

// CheckBound verifies bound(v) ≥ MaxUnhappyRun for every node, returning a
// descriptive error for the first violation. Experiments use it to assert
// the paper's per-node guarantees.
func (r *Report) CheckBound(bound func(nr NodeReport) int64) error {
	for _, nr := range r.Nodes {
		if b := bound(nr); nr.MaxUnhappyRun > b {
			return fmt.Errorf("core: node %d (degree %d) has unhappy run %d exceeding bound %d",
				nr.Node, nr.Degree, nr.MaxUnhappyRun, b)
		}
	}
	return nil
}

// VerifyPeriodicity checks that a Periodic scheduler's emitted happy sets
// over the horizon match its closed form exactly.
func VerifyPeriodicity(p Periodic, g *graph.Graph, horizon int64) error {
	for t := int64(1); t <= horizon; t++ {
		happy := p.Next()
		inSet := make(map[int]bool, len(happy))
		for _, v := range happy {
			inSet[v] = true
		}
		for v := 0; v < g.N(); v++ {
			want := HappyAt(p, v, t)
			if want != inSet[v] {
				return fmt.Errorf("core: %s: node %d at holiday %d: closed form says %v, Next says %v",
					p.Name(), v, t, want, inSet[v])
			}
		}
	}
	return nil
}
