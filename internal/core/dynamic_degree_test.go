package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func TestDynamicDegreeBoundStartsValid(t *testing.T) {
	g := graph.GNP(60, 0.08, 70)
	dd := NewDynamicDegreeBound(g)
	if err := dd.VerifyNoConflicts(); err != nil {
		t.Fatal(err)
	}
	if dd.Inflation() != 1 {
		t.Errorf("fresh schedule inflation %v, want 1", dd.Inflation())
	}
}

func TestDynamicDegreeBoundInvariantUnderChurn(t *testing.T) {
	g := graph.GNP(50, 0.06, 71)
	dd := NewDynamicDegreeBound(g)
	rng := rand.New(rand.NewPCG(72, 0))
	for step := 0; step < 600; step++ {
		u, v := rng.IntN(dd.N()), rng.IntN(dd.N())
		if u == v {
			continue
		}
		if rng.Float64() < 0.6 {
			if err := dd.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			dd.RemoveEdge(u, v)
		}
		if err := dd.VerifyNoConflicts(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		happy := dd.Next()
		if !dd.d.Snapshot().IsIndependent(happy) {
			t.Fatalf("step %d: dependent happy set", step)
		}
	}
}

// The §6 obstruction, constructed: a node whose two period-2 neighbors sit
// on opposite parities blocks every modulus (Σ 1/period = 1), so a new
// conflicting edge must trigger a cascade (or rebuild), never silently
// corrupt the schedule.
func TestDynamicDegreeBoundParityTrapCascades(t *testing.T) {
	// Path 1-0-2 : node 0 has two degree-1 neighbors.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	dd := NewDynamicDegreeBound(g)
	if err := dd.VerifyNoConflicts(); err != nil {
		t.Fatal(err)
	}
	// Force the trap: make the leaves take opposite parities by hand.
	dd.offsets[1] = (dd.offsets[0] + 1) % 2
	dd.offsets[2] = dd.offsets[0] // deliberately conflicting with 0
	// Now node 0 conflicts with node 2 and has no free slot at any modulus;
	// repair must cascade (move a leaf) or rebuild, and end valid.
	if !dd.repair(0, 0) {
		dd.rebuild()
	}
	if err := dd.VerifyNoConflicts(); err != nil {
		t.Fatalf("after repair: %v", err)
	}
	if dd.CascadeSteps == 0 && dd.Rebuilds == 0 {
		t.Error("expected the parity trap to need a cascade or rebuild")
	}
}

func TestDynamicDegreeBoundPeriodShrinksOnDivorce(t *testing.T) {
	g := graph.Star(9) // center degree 8: period 16
	dd := NewDynamicDegreeBound(g)
	if dd.Period(0) != 16 {
		t.Fatalf("center period %d, want 16", dd.Period(0))
	}
	for leaf := 1; leaf < 9; leaf++ {
		dd.RemoveEdge(0, leaf)
		if err := dd.VerifyNoConflicts(); err != nil {
			t.Fatal(err)
		}
	}
	if dd.Period(0) != 1 {
		t.Errorf("isolated center period %d, want 1", dd.Period(0))
	}
	if dd.Inflation() != 1 {
		t.Errorf("inflation %v after full divorce, want 1", dd.Inflation())
	}
}

func TestDynamicDegreeBoundGrowthKeepsRate(t *testing.T) {
	// Grow a star one marriage at a time: the center's period must track
	// 2^ceil(log(d+1)) without ever dropping below deg+1.
	g := graph.Empty(40)
	dd := NewDynamicDegreeBound(g)
	for leaf := 1; leaf < 40; leaf++ {
		if err := dd.AddEdge(0, leaf); err != nil {
			t.Fatal(err)
		}
		if err := dd.VerifyNoConflicts(); err != nil {
			t.Fatalf("after %d marriages: %v", leaf, err)
		}
		d := dd.Degree(0)
		want := int64(1) << uint(ceilLog2(d+1))
		if dd.Period(0) != want {
			t.Fatalf("degree %d: center period %d, want %d", d, dd.Period(0), want)
		}
	}
}
