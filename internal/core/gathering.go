package core

import (
	"fmt"

	"repro/internal/graph"
)

// Gathering is one holiday's edge orientation (Definition 2.1): every couple
// (edge) visits exactly one of its two parent households. Toward[e] names
// the endpoint hosting couple e.
type Gathering struct {
	g      *graph.Graph
	toward map[graph.Edge]int
}

// NewGathering creates an orientation with all couples initially unassigned;
// use Orient or FromHappySet to direct them.
func NewGathering(g *graph.Graph) *Gathering {
	return &Gathering{g: g, toward: make(map[graph.Edge]int, g.M())}
}

// Orient directs edge {u, v} toward host, which must be one of u, v.
func (o *Gathering) Orient(u, v, host int) error {
	if host != u && host != v {
		return fmt.Errorf("core: host %d is not an endpoint of (%d,%d)", host, u, v)
	}
	if !o.g.Adjacent(u, v) {
		return fmt.Errorf("core: (%d,%d) is not an edge", u, v)
	}
	o.toward[graph.Edge{U: u, V: v}.Canon()] = host
	return nil
}

// Host returns the endpoint hosting couple {u, v}, or -1 if unassigned.
func (o *Gathering) Host(u, v int) int {
	if h, ok := o.toward[(graph.Edge{U: u, V: v}).Canon()]; ok {
		return h
	}
	return -1
}

// IsHappy reports whether p is a sink: every incident couple visits p
// (Definition 2.1). Nodes with no children are vacuously happy hosts.
func (o *Gathering) IsHappy(p int) bool {
	for _, u := range o.g.Neighbors(p) {
		if o.Host(p, u) != p {
			return false
		}
	}
	return true
}

// IsSatisfied reports whether at least one couple visits p (Definition A.1).
func (o *Gathering) IsSatisfied(p int) bool {
	for _, u := range o.g.Neighbors(p) {
		if o.Host(p, u) == p {
			return true
		}
	}
	return false
}

// HappySet returns all happy nodes, which always form an independent set.
func (o *Gathering) HappySet() []int {
	var happy []int
	for v := 0; v < o.g.N(); v++ {
		if o.IsHappy(v) {
			happy = append(happy, v)
		}
	}
	return happy
}

// FromHappySet builds the orientation realizing a given independent set:
// every couple with a happy parent visits it; couples between two unhappy
// parents go to the lower-numbered one (arbitrary). Errors if the set is
// not independent — both in-laws cannot host the same couple.
func FromHappySet(g *graph.Graph, happy []int) (*Gathering, error) {
	isHappy := make([]bool, g.N())
	for _, v := range happy {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("core: node %d out of range", v)
		}
		isHappy[v] = true
	}
	o := NewGathering(g)
	for _, e := range g.Edges() {
		switch {
		case isHappy[e.U] && isHappy[e.V]:
			return nil, fmt.Errorf("core: happy set contains adjacent nodes %d and %d", e.U, e.V)
		case isHappy[e.U]:
			o.toward[e] = e.U
		case isHappy[e.V]:
			o.toward[e] = e.V
		default:
			o.toward[e] = e.U
		}
	}
	return o, nil
}
