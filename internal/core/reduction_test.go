package core

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/graph"
)

// §1 "Connection to coloring": observing w holidays of a schedule whose gaps
// are ≤ w yields a proper w-coloring.
func TestExtractColoringFromPhasedGreedy(t *testing.T) {
	g := graph.GNP(60, 0.1, 80)
	pg, err := NewPhasedGreedy(g, greedyColoring(g))
	if err != nil {
		t.Fatal(err)
	}
	w := int64(g.MaxDegree() + 1)
	col, err := ExtractColoring(pg, g, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, col); err != nil {
		t.Fatal(err)
	}
	if int64(col.MaxColor()) > w {
		t.Errorf("extracted coloring uses %d colors, want ≤ %d", col.MaxColor(), w)
	}
}

func TestExtractColoringFromDegreeBound(t *testing.T) {
	g := graph.Grid(5, 5)
	db := NewDegreeBoundSequential(g)
	// Every node hosts within its period ≤ 2Δ ≤ 8.
	col, err := ExtractColoring(db, g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, col); err != nil {
		t.Fatal(err)
	}
}

func TestExtractColoringWindowTooShort(t *testing.T) {
	g := graph.Clique(8)
	pg, err := NewPhasedGreedy(g, greedyColoring(g))
	if err != nil {
		t.Fatal(err)
	}
	// On K8 each holiday makes exactly one node happy: 3 holidays cannot
	// cover 8 nodes.
	if _, err := ExtractColoring(pg, g, 3); err == nil {
		t.Fatal("short window must fail to produce a coloring")
	}
}

func TestScheduleFromColoringRoundTrip(t *testing.T) {
	// coloring -> schedule -> coloring: the extracted coloring is proper
	// and uses no more colors than the schedule's cycle.
	g := graph.Cycle(9)
	col := greedyColoring(g)
	s, err := ScheduleFromColoring(g, col)
	if err != nil {
		t.Fatal(err)
	}
	col2, err := ExtractColoring(s, g, int64(col.MaxColor()))
	if err != nil {
		t.Fatal(err)
	}
	if col2.CountColors() > col.CountColors() {
		t.Errorf("round trip inflated colors: %d -> %d", col.CountColors(), col2.CountColors())
	}
}
