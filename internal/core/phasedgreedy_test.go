package core

import (
	"testing"
	"testing/quick"

	"repro/internal/coloring"
	"repro/internal/graph"
)

// Theorem 3.1: under Phased Greedy every node of degree d is happy at least
// once within every d+1 consecutive holidays, i.e. its longest unhappy run
// is at most d.
func TestTheorem31DegreeBoundOnZoo(t *testing.T) {
	for name, g := range testZoo() {
		pg, err := NewPhasedGreedy(g, greedyColoring(g))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		horizon := int64(6 * (g.MaxDegree() + 2))
		rep := Analyze(pg, g, horizon)
		if rep.IndependenceViolations != 0 {
			t.Errorf("%s: %d independence violations", name, rep.IndependenceViolations)
		}
		if err := rep.CheckBound(func(nr NodeReport) int64 {
			return int64(nr.Degree) // run ≤ d ⟺ happy within every d+1 holidays
		}); err != nil {
			t.Errorf("%s: Theorem 3.1 violated: %v", name, err)
		}
	}
}

func TestPhasedGreedyWithDistributedInit(t *testing.T) {
	g := graph.GNP(150, 0.05, 41)
	col, stats, err := coloring.DistributedDelta1(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 {
		t.Error("distributed init should use rounds")
	}
	pg, err := NewPhasedGreedy(g, col)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(pg, g, 500)
	if rep.IndependenceViolations != 0 {
		t.Fatal("independence violated")
	}
	if err := rep.CheckBound(func(nr NodeReport) int64 { return int64(nr.Degree) }); err != nil {
		t.Errorf("Theorem 3.1 violated: %v", err)
	}
}

func TestPhasedGreedyColoringStaysProper(t *testing.T) {
	g := graph.GNP(80, 0.1, 43)
	pg, err := NewPhasedGreedy(g, greedyColoring(g))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 300; step++ {
		pg.Next()
		if err := pg.VerifyProper(); err != nil {
			t.Fatalf("after holiday %d: %v", pg.Holiday(), err)
		}
	}
}

func TestPhasedGreedyColorsMoveForward(t *testing.T) {
	g := graph.Clique(5)
	pg, err := NewPhasedGreedy(g, greedyColoring(g))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 100; step++ {
		happy := pg.Next()
		for _, v := range happy {
			if pg.Color(v) <= pg.Holiday() {
				t.Fatalf("node %d recolored to %d, not beyond holiday %d", v, pg.Color(v), pg.Holiday())
			}
			if pg.Color(v) > pg.Holiday()+int64(g.Degree(v))+1 {
				t.Fatalf("node %d recolored to %d, beyond holiday+deg+1 = %d",
					v, pg.Color(v), pg.Holiday()+int64(g.Degree(v))+1)
			}
		}
	}
}

func TestPhasedGreedyOnCliqueIsRoundRobinLike(t *testing.T) {
	// On K_n exactly one node is happy per holiday and each waits exactly n.
	g := graph.Clique(6)
	pg, err := NewPhasedGreedy(g, greedyColoring(g))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 6)
	for step := 0; step < 60; step++ {
		happy := pg.Next()
		if len(happy) != 1 {
			t.Fatalf("K6 holiday %d: %d happy nodes, want 1", pg.Holiday(), len(happy))
		}
		counts[happy[0]]++
	}
	for v, c := range counts {
		if c != 10 {
			t.Errorf("node %d hosted %d times in 60 holidays, want 10", v, c)
		}
	}
}

func TestPhasedGreedyRejectsBadColoring(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewPhasedGreedy(g, coloring.Coloring{1, 1, 2}); err == nil {
		t.Fatal("improper coloring must be rejected")
	}
	// Proper but not degree-bounded: middle node colored 5 > deg+1 = 3.
	if _, err := NewPhasedGreedy(g, coloring.Coloring{1, 5, 1}); err == nil {
		t.Fatal("degree-unbounded coloring must be rejected")
	}
}

func TestPhasedGreedyRoundsPerHoliday(t *testing.T) {
	g := graph.Cycle(5)
	pg, _ := NewPhasedGreedy(g, greedyColoring(g))
	if pg.RoundsPerHoliday() != 2 {
		t.Errorf("per-holiday rounds = %d, want the O(1) constant 2", pg.RoundsPerHoliday())
	}
}

// Property: Theorem 3.1 holds on random graphs with random seeds.
func TestTheorem31Quick(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%40)
		g := graph.GNP(n, 0.2, seed)
		pg, err := NewPhasedGreedy(g, greedyColoring(g))
		if err != nil {
			return false
		}
		rep := Analyze(pg, g, int64(5*(g.MaxDegree()+2)))
		return rep.IndependenceViolations == 0 &&
			rep.CheckBound(func(nr NodeReport) int64 { return int64(nr.Degree) }) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
