package core

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/graph"
)

// DistStats reports the distributed cost of the §5.2 slot assignment.
type DistStats struct {
	Phases   int
	Rounds   int
	Messages int64
}

// NewDegreeBoundDistributed runs the §5.2 distributed slot assignment: for
// i = ⌈log(Δ+1)⌉ down to 0, the class P_i = {p : ⌈log(deg p+1)⌉ = i} runs
// the randomized list-coloring with palettes restricted to the residues in
// [0, 2^i) not colliding (mod 2^i) with slots already picked by neighbors in
// earlier (higher-degree) phases. Each palette retains at least one residue
// because 2^i ≥ deg+1 exceeds the number of constraining neighbors.
func NewDegreeBoundDistributed(g *graph.Graph, seed uint64) (*DegreeBound, DistStats, error) {
	db := &DegreeBound{
		g:       g,
		name:    "degree-bound/distributed",
		periods: make([]int64, g.N()),
		offsets: make([]int64, g.N()),
	}
	var stats DistStats
	assigned := make([]bool, g.N())
	classOf := make([]int, g.N())
	maxClass := 0
	for v := 0; v < g.N(); v++ {
		classOf[v] = ceilLog2(g.Degree(v) + 1)
		if classOf[v] > maxClass {
			maxClass = classOf[v]
		}
	}
	for i := maxClass; i >= 0; i-- {
		m := int64(1) << uint(i)
		palettes := make([][]int, g.N())
		active := 0
		for v := 0; v < g.N(); v++ {
			if classOf[v] != i {
				continue
			}
			active++
			forbidden := make(map[int64]bool, g.Degree(v))
			for _, u := range g.Neighbors(v) {
				if assigned[u] {
					forbidden[db.offsets[u]%m] = true
				}
			}
			var pal []int
			for x := int64(0); x < m; x++ {
				if !forbidden[x] {
					pal = append(pal, int(x))
				}
			}
			if len(pal) == 0 {
				return nil, stats, fmt.Errorf("core: empty palette for node %d in phase %d", v, i)
			}
			palettes[v] = pal
		}
		if active == 0 {
			continue
		}
		out, runStats, err := coloring.DistributedList(g, palettes, seed+uint64(i)+1)
		stats.Phases++
		stats.Rounds += runStats.Rounds
		stats.Messages += runStats.Messages
		if err != nil {
			return nil, stats, fmt.Errorf("core: phase %d: %w", i, err)
		}
		for v := 0; v < g.N(); v++ {
			if classOf[v] != i {
				continue
			}
			db.periods[v] = m
			db.offsets[v] = int64(out[v])
			assigned[v] = true
		}
	}
	return db, stats, nil
}
