package core

import (
	"math/rand/v2"

	"repro/internal/graph"
)

// GreedyMIS strengthens the §1 first-grab baseline: instead of only the
// parents who woke before all their in-laws, the happy set is the full
// lexicographically-greedy maximal independent set of the random wake
// order — every parent not blocked by an earlier happy in-law is happy.
// It dominates FirstGrab pointwise (the local minima always survive), so
// P[happy] ≥ 1/(deg+1) per holiday, at the cost of the same heavyweight
// coordination the paper attributes to non-lightweight schemes.
type GreedyMIS struct {
	g    *graph.Graph
	rng  *rand.Rand
	t    int64
	perm []int
}

// NewGreedyMIS builds the process with a deterministic seed.
func NewGreedyMIS(g *graph.Graph, seed uint64) *GreedyMIS {
	perm := make([]int, g.N())
	for i := range perm {
		perm[i] = i
	}
	return &GreedyMIS{
		g:    g,
		rng:  rand.New(rand.NewPCG(seed, 0x6d15)),
		perm: perm,
	}
}

// Name implements Scheduler.
func (gm *GreedyMIS) Name() string { return "greedy-mis" }

// Holiday implements Scheduler.
func (gm *GreedyMIS) Holiday() int64 { return gm.t }

// Next implements Scheduler: shuffle the wake order and take the greedy
// maximal independent set along it.
func (gm *GreedyMIS) Next() []int {
	gm.t++
	gm.rng.Shuffle(len(gm.perm), func(i, j int) { gm.perm[i], gm.perm[j] = gm.perm[j], gm.perm[i] })
	blocked := make([]bool, gm.g.N())
	var happy []int
	for _, v := range gm.perm {
		if blocked[v] {
			continue
		}
		happy = append(happy, v)
		for _, u := range gm.g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return happy
}
