package core

import (
	"math"

	"repro/internal/prefixcode"
)

// GrowthFunc is a candidate period function f(c) for color-based schedules,
// used by the Theorem 4.1 lower-bound experiment (E5).
type GrowthFunc struct {
	Name string
	F    func(c float64) float64
}

// StandardGrowthFuncs returns the functions whose feasibility the E5
// experiment charts. Theorem 4.1 (via the Cauchy condensation test): a
// color-based schedule with period f(c) for color c requires Σ 1/f(c) ≤ 1,
// which fails for f(c) = c and for anything below the φ frontier, and holds
// for f(c) = c^{1+ε}, 2c·log²(c+1), 2^c, and the omega-code periods 2^ρ(c).
func StandardGrowthFuncs() []GrowthFunc {
	return []GrowthFunc{
		{"c", func(c float64) float64 { return c }},
		{"phi(c)", prefixcode.Phi},
		{"c^1.5", func(c float64) float64 { return math.Pow(c, 1.5) }},
		{"2c*log2(c+1)^2", func(c float64) float64 {
			l := math.Log2(c + 1)
			return 2 * c * l * l
		}},
		{"2^c", func(c float64) float64 {
			if c > 1000 {
				return math.Inf(1)
			}
			return math.Exp2(c)
		}},
		{"2^rho(c)", func(c float64) float64 {
			return math.Exp2(float64(prefixcode.Rho(uint64(c))))
		}},
	}
}

// PartialSums returns Σ_{c=1}^{N} 1/f(c) evaluated at each checkpoint N
// (checkpoints must be increasing).
func PartialSums(f func(float64) float64, checkpoints []uint64) []float64 {
	out := make([]float64, len(checkpoints))
	sum := 0.0
	c := uint64(1)
	for i, n := range checkpoints {
		for ; c <= n; c++ {
			v := f(float64(c))
			if v > 0 && !math.IsInf(v, 1) {
				sum += 1 / v
			}
		}
		out[i] = sum
	}
	return out
}

// FeasibleUpTo reports whether Σ_{c=1}^{N} 1/f(c) ≤ 1, the necessary
// condition of Theorem 4.1 for f to be a valid color→period guarantee.
func FeasibleUpTo(f func(float64) float64, n uint64) bool {
	sums := PartialSums(f, []uint64{n})
	return sums[0] <= 1
}
