package core

import (
	"testing"

	"repro/internal/prefixcode"
)

// The closed-form analyzer must agree with full simulation on every field
// for every periodic scheduler and graph family.
func TestAnalyzePeriodicMatchesSimulation(t *testing.T) {
	for name, g := range testZoo() {
		schedulers := []Periodic{
			NewDegreeBoundSequential(g),
		}
		if cb, err := NewColorBound(g, greedyColoring(g), prefixcode.Omega{}); err == nil {
			schedulers = append(schedulers, cb)
		}
		if rr, err := NewRoundRobin(g, greedyColoring(g)); err == nil {
			schedulers = append(schedulers, rr)
		}
		for _, p := range schedulers {
			horizon := int64(300)
			fast := AnalyzePeriodic(p, g, horizon)
			slow := Analyze(freshCopy(t, p, g), g, horizon)
			if fast.IndependenceViolations != 0 || slow.IndependenceViolations != 0 {
				t.Fatalf("%s/%s: unexpected violations", name, p.Name())
			}
			if fast.EmptyHolidays != slow.EmptyHolidays {
				t.Errorf("%s/%s: empty holidays %d (closed form) vs %d (simulated)",
					name, p.Name(), fast.EmptyHolidays, slow.EmptyHolidays)
			}
			for v := range fast.Nodes {
				f, s := fast.Nodes[v], slow.Nodes[v]
				if f != s {
					t.Fatalf("%s/%s: node %d closed form %+v != simulated %+v",
						name, p.Name(), v, f, s)
				}
			}
		}
	}
}

// freshCopy rebuilds an identical scheduler so the simulation starts from
// holiday 1 (Periodic schedulers are stateful iterators).
func freshCopy(t *testing.T, p Periodic, g interface {
	N() int
}) Scheduler {
	t.Helper()
	switch s := p.(type) {
	case *DegreeBound:
		db := &DegreeBound{g: s.g, name: s.name, periods: s.periods, offsets: s.offsets}
		return db
	case *ColorBound:
		cb := *s
		cb.t = 0
		return &cb
	case *RoundRobin:
		rr := *s
		rr.t = 0
		return &rr
	default:
		t.Fatalf("unknown periodic scheduler %T", p)
		return nil
	}
}

func TestAnalyzePeriodicNeverHappyNode(t *testing.T) {
	g := testZoo()["edgeless"]
	db := NewDegreeBoundSequential(g)
	// Isolated nodes have period 1: happy every holiday. Check horizon
	// accounting is exact anyway.
	rep := AnalyzePeriodic(db, g, 10)
	for _, nr := range rep.Nodes {
		if nr.HappyCount != 10 || nr.MaxUnhappyRun != 0 {
			t.Fatalf("isolated node report %+v", nr)
		}
	}
}
