package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Theorem 5.3: the degree-bound scheduler gives every node of degree d a
// period of exactly 2^⌈log(d+1)⌉ ≤ 2d (d ≥ 1), with no conflicts.
func TestTheorem53SequentialOnZoo(t *testing.T) {
	for name, g := range testZoo() {
		db := NewDegreeBoundSequential(g)
		if err := db.VerifyNoConflicts(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkDegreeBoundPeriods(t, name, g, db)
		rep := Analyze(db, g, 500)
		if rep.IndependenceViolations != 0 {
			t.Errorf("%s: %d independence violations", name, rep.IndependenceViolations)
		}
	}
}

func TestTheorem53DistributedOnZoo(t *testing.T) {
	for name, g := range testZoo() {
		db, stats, err := NewDegreeBoundDistributed(g, 61)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := db.VerifyNoConflicts(); err != nil {
			t.Fatalf("%s: Lemma 5.2 violated: %v", name, err)
		}
		checkDegreeBoundPeriods(t, name, g, db)
		if g.M() > 0 && stats.Phases == 0 {
			t.Errorf("%s: expected at least one phase", name)
		}
		rep := Analyze(db, g, 400)
		if rep.IndependenceViolations != 0 {
			t.Errorf("%s: %d independence violations", name, rep.IndependenceViolations)
		}
	}
}

func checkDegreeBoundPeriods(t *testing.T, name string, g *graph.Graph, db *DegreeBound) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		want := int64(1) << uint(ceilLog2(d+1))
		if db.Period(v) != want {
			t.Errorf("%s: node %d (deg %d) period %d, want %d", name, v, d, db.Period(v), want)
		}
		if d >= 1 && db.Period(v) > int64(2*d) {
			t.Errorf("%s: node %d (deg %d) period %d exceeds 2d = %d", name, v, d, db.Period(v), 2*d)
		}
		if db.Offset(v) < 0 || db.Offset(v) >= db.Period(v) {
			t.Errorf("%s: node %d offset %d outside [0,%d)", name, v, db.Offset(v), db.Period(v))
		}
	}
}

func TestDegreeBoundPeriodicityExact(t *testing.T) {
	g := graph.GNP(60, 0.1, 62)
	if err := VerifyPeriodicity(NewDegreeBoundSequential(g), g, 300); err != nil {
		t.Fatal(err)
	}
	db, _, err := NewDegreeBoundDistributed(g, 63)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPeriodicity(db, g, 300); err != nil {
		t.Fatal(err)
	}
}

// Lemma 5.1's worked structure: on a star, the center (degree n-1) takes a
// large power-of-two period while every leaf (degree 1) keeps period 2.
func TestDegreeBoundStarShape(t *testing.T) {
	g := graph.Star(17) // center degree 16 -> period 32; leaves period 2
	db := NewDegreeBoundSequential(g)
	if db.Period(0) != 32 {
		t.Errorf("center period = %d, want 32", db.Period(0))
	}
	for v := 1; v < 17; v++ {
		if db.Period(v) != 2 {
			t.Errorf("leaf %d period = %d, want 2", v, db.Period(v))
		}
	}
	// Every leaf must avoid the center's slot mod 2, so all leaves share
	// the opposite parity.
	parity := db.Offset(0) % 2
	for v := 1; v < 17; v++ {
		if db.Offset(v)%2 == parity {
			t.Errorf("leaf %d shares parity with the center", v)
		}
	}
}

func TestDegreeBoundLocalVsGlobal(t *testing.T) {
	// The paper's core motivation: a single-child family next to a huge
	// family should wait O(1), not O(Δ). Compare with round-robin.
	g := graph.Star(33)
	db := NewDegreeBoundSequential(g)
	rep := Analyze(db, g, 500)
	for _, nr := range rep.Nodes {
		if nr.Degree == 1 && nr.MaxUnhappyRun > 1 {
			t.Errorf("leaf %d unhappy run %d under degree-bound, want ≤ 1", nr.Node, nr.MaxUnhappyRun)
		}
	}
	rr, err := NewRoundRobin(g, greedyColoring(g))
	if err != nil {
		t.Fatal(err)
	}
	rrRep := Analyze(rr, g, 500)
	leafRun := int64(0)
	for _, nr := range rrRep.Nodes {
		if nr.Degree == 1 && nr.MaxUnhappyRun > leafRun {
			leafRun = nr.MaxUnhappyRun
		}
	}
	if leafRun < 1 {
		t.Errorf("round-robin leaf run = %d; expected the global-k penalty", leafRun)
	}
}

func TestDegreeBoundDistributedDeterministic(t *testing.T) {
	g := graph.GNP(100, 0.07, 64)
	a, _, err := NewDegreeBoundDistributed(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := NewDegreeBoundDistributed(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if a.Offset(v) != b.Offset(v) || a.Period(v) != b.Period(v) {
			t.Fatalf("node %d: distributed assignment differs across identical seeds", v)
		}
	}
}

// Property: Lemma 5.1 invariant on random graphs.
func TestDegreeBoundQuick(t *testing.T) {
	f := func(seed uint64) bool {
		n := 4 + int(seed%50)
		g := graph.GNP(n, 0.25, seed)
		db := NewDegreeBoundSequential(g)
		return db.VerifyNoConflicts() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for x, want := range cases {
		if got := ceilLog2(x); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", x, got, want)
		}
	}
}
