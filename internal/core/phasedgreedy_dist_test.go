package core

import (
	"testing"

	"repro/internal/graph"
)

// The distributed protocol must replay the centralized §3 schedule exactly:
// both implement "happy set = color class t; recolor to the least free
// color beyond t".
func TestPhasedGreedyDistributedMatchesCentralized(t *testing.T) {
	for name, g := range testZoo() {
		col := greedyColoring(g)
		central, err := NewPhasedGreedy(g, col)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dist, err := NewPhasedGreedyDistributed(g, col)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		horizon := 3 * (g.MaxDegree() + 2)
		for step := 0; step < horizon; step++ {
			a, b := central.Next(), dist.Next()
			if len(a) != len(b) {
				t.Fatalf("%s: holiday %d: centralized %v != distributed %v", name, step+1, a, b)
			}
			inB := make(map[int]bool, len(b))
			for _, v := range b {
				inB[v] = true
			}
			for _, v := range a {
				if !inB[v] {
					t.Fatalf("%s: holiday %d: centralized %v != distributed %v", name, step+1, a, b)
				}
			}
		}
	}
}

func TestPhasedGreedyDistributedBound(t *testing.T) {
	g := graph.GNP(100, 0.08, 55)
	dist, err := NewPhasedGreedyDistributed(g, greedyColoring(g))
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(dist, g, int64(4*(g.MaxDegree()+2)))
	if rep.IndependenceViolations != 0 {
		t.Fatal("independence violated")
	}
	if err := rep.CheckBound(func(nr NodeReport) int64 { return int64(nr.Degree) }); err != nil {
		t.Errorf("Theorem 3.1 violated by the distributed protocol: %v", err)
	}
}

// The protocol's message cost per holiday is proportional to the happy
// nodes' neighborhood sizes, not to the graph: an idle holiday (no node
// colored t) costs zero messages.
func TestPhasedGreedyDistributedMessageLocality(t *testing.T) {
	g := graph.Star(10) // center degree 9, leaves degree 1
	dist, err := NewPhasedGreedyDistributed(g, greedyColoring(g))
	if err != nil {
		t.Fatal(err)
	}
	prev := dist.Messages()
	var idleFound bool
	for step := 0; step < 20; step++ {
		happy := dist.Next()
		cost := dist.Messages() - prev
		prev = dist.Messages()
		if len(happy) == 0 {
			idleFound = true
			if cost != 0 {
				t.Fatalf("idle holiday cost %d messages, want 0", cost)
			}
		} else {
			// Announce+query is one broadcast per happy node, replies one
			// message back per neighbor: cost = 2 * sum of degrees.
			want := int64(0)
			for _, v := range happy {
				want += 2 * int64(g.Degree(v))
			}
			if cost != want {
				t.Fatalf("holiday with happy %v cost %d messages, want %d", happy, cost, want)
			}
		}
	}
	if !idleFound {
		t.Log("no idle holiday observed (acceptable, depends on coloring)")
	}
	if dist.RoundsPerHoliday() != 3 {
		t.Errorf("rounds per holiday = %d, want 3", dist.RoundsPerHoliday())
	}
}
