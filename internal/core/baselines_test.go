package core

import (
	"math"
	"testing"

	"repro/internal/coloring"
	"repro/internal/graph"
)

func TestRoundRobinGlobalPeriod(t *testing.T) {
	g := graph.Star(9)
	col := greedyColoring(g)
	rr, err := NewRoundRobin(g, col)
	if err != nil {
		t.Fatal(err)
	}
	k := int64(col.MaxColor())
	for v := 0; v < g.N(); v++ {
		if rr.Period(v) != k {
			t.Errorf("node %d period %d, want the global %d", v, rr.Period(v), k)
		}
	}
	rep := Analyze(rr, g, 10*k)
	if rep.IndependenceViolations != 0 {
		t.Error("round robin emitted a dependent set")
	}
	for _, nr := range rep.Nodes {
		if nr.MaxUnhappyRun != k-1 {
			t.Errorf("node %d unhappy run %d, want k-1 = %d", nr.Node, nr.MaxUnhappyRun, k-1)
		}
	}
}

func TestRoundRobinPeriodicityExact(t *testing.T) {
	g := graph.GNP(40, 0.2, 70)
	rr, err := NewRoundRobin(g, greedyColoring(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPeriodicity(rr, g, 200); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinEdgelessGraph(t *testing.T) {
	g := graph.Empty(4)
	col := coloring.Coloring{1, 1, 1, 1}
	rr, err := NewRoundRobin(g, col)
	if err != nil {
		t.Fatal(err)
	}
	happy := rr.Next()
	if len(happy) != 4 {
		t.Errorf("edgeless graph: %d happy, want all 4 every holiday", len(happy))
	}
}

func TestFirstGrabIndependence(t *testing.T) {
	g := graph.GNP(80, 0.1, 71)
	fg := NewFirstGrab(g, 72)
	rep := Analyze(fg, g, 2000)
	if rep.IndependenceViolations != 0 {
		t.Fatalf("first-grab emitted %d dependent sets", rep.IndependenceViolations)
	}
}

// §1: P[happy] = 1/(d+1). Verify the Monte-Carlo frequency against the
// closed form on a clique (all nodes symmetric, d+1 = n).
func TestFirstGrabProbabilityClique(t *testing.T) {
	g := graph.Clique(10)
	fg := NewFirstGrab(g, 73)
	trials := int64(30000)
	counts := make([]int64, g.N())
	for i := int64(0); i < trials; i++ {
		for _, v := range fg.Next() {
			counts[v]++
		}
	}
	want := 1.0 / 10
	for v, c := range counts {
		got := float64(c) / float64(trials)
		if math.Abs(got-want) > 0.015 {
			t.Errorf("node %d happy frequency %.4f, want %.4f ± 0.015", v, got, want)
		}
		if p := fg.HappyProbability(v); p != want {
			t.Errorf("closed form %v, want %v", p, want)
		}
	}
}

func TestFirstGrabProbabilityStar(t *testing.T) {
	g := graph.Star(6) // center degree 5, leaves degree 1
	fg := NewFirstGrab(g, 74)
	trials := int64(40000)
	counts := make([]int64, g.N())
	for i := int64(0); i < trials; i++ {
		for _, v := range fg.Next() {
			counts[v]++
		}
	}
	centerFreq := float64(counts[0]) / float64(trials)
	if math.Abs(centerFreq-1.0/6) > 0.01 {
		t.Errorf("center frequency %.4f, want %.4f", centerFreq, 1.0/6)
	}
	leafFreq := float64(counts[1]) / float64(trials)
	if math.Abs(leafFreq-0.5) > 0.01 {
		t.Errorf("leaf frequency %.4f, want 0.5", leafFreq)
	}
}

func TestFirstGrabExpectedWait(t *testing.T) {
	// Expected gap between happy holidays is d+1 (geometric with p=1/(d+1)).
	g := graph.Clique(5)
	fg := NewFirstGrab(g, 75)
	rep := Analyze(fg, g, 20000)
	for _, nr := range rep.Nodes {
		if nr.MeanGap == 0 {
			t.Fatalf("node %d never re-hosted", nr.Node)
		}
		if math.Abs(nr.MeanGap-5) > 0.3 {
			t.Errorf("node %d mean gap %.2f, want ≈ 5", nr.Node, nr.MeanGap)
		}
	}
}

func TestFirstGrabDeterministicWithSeed(t *testing.T) {
	g := graph.GNP(30, 0.2, 76)
	a, b := NewFirstGrab(g, 9), NewFirstGrab(g, 9)
	for i := 0; i < 50; i++ {
		ha, hb := a.Next(), b.Next()
		if len(ha) != len(hb) {
			t.Fatal("same seed must give identical runs")
		}
		for k := range ha {
			if ha[k] != hb[k] {
				t.Fatal("same seed must give identical happy sets")
			}
		}
	}
}
