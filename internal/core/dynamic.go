package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// DynamicColorBound is the §6 dynamic-setting scheduler: the color-bound
// schedule of §4 maintained under edge insertions (marriages) and deletions
// (divorces). On insertion, if the endpoints share a color, one endpoint
// greedily recolors — its palette has grown to deg+1, so a color ≤ deg+1
// always exists and the new periodic schedule follows from the prefix-free
// encoding of the new color. On deletion a node whose color has become
// disproportionate to its degree (color > deg+1) is recolored so its
// hosting rate tracks its current degree.
type DynamicColorBound struct {
	d    *graph.Dynamic
	code prefixcode.Code
	col  []int
	t    int64
	// Recolorings counts color changes triggered by edge churn, the
	// disruption measure of experiment E8.
	Recolorings int64
}

// NewDynamicColorBound starts from an existing graph, coloring it greedily,
// or from an empty n-node graph when g has no edges.
func NewDynamicColorBound(g *graph.Graph, code prefixcode.Code) (*DynamicColorBound, error) {
	dc := &DynamicColorBound{
		d:    graph.DynamicFrom(g),
		code: code,
		col:  make([]int, g.N()),
	}
	for v := range dc.col {
		dc.col[v] = 1
	}
	// Greedy pass to make the initial coloring proper.
	for v := 0; v < g.N(); v++ {
		dc.col[v] = dc.smallestFree(v)
	}
	if err := dc.VerifyProper(); err != nil {
		return nil, err
	}
	return dc, nil
}

// RestoreDynamicColorBound reconstructs a scheduler at an exact coloring —
// the durability path: a restored community must answer every window and
// next-happy query byte-identically to the process that snapshotted it, so
// the persisted coloring is adopted verbatim rather than re-derived by the
// greedy pass (which could legally pick different colors). The coloring is
// verified proper and degree-bounded before use; recolorings restores the
// E8 disruption counter.
func RestoreDynamicColorBound(g *graph.Graph, code prefixcode.Code, coloring []int, recolorings int64) (*DynamicColorBound, error) {
	if len(coloring) != g.N() {
		return nil, fmt.Errorf("core: restore has %d colors for %d nodes", len(coloring), g.N())
	}
	dc := &DynamicColorBound{
		d:           graph.DynamicFrom(g),
		code:        code,
		col:         append([]int(nil), coloring...),
		Recolorings: recolorings,
	}
	if err := dc.VerifyProper(); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	return dc, nil
}

// smallestFree returns the smallest color ≥ 1 unused in v's neighborhood.
func (dc *DynamicColorBound) smallestFree(v int) int {
	taken := make(map[int]bool, dc.d.Degree(v))
	for _, u := range dc.d.Neighbors(v) {
		taken[dc.col[u]] = true
	}
	c := 1
	for taken[c] {
		c++
	}
	return c
}

// AddNode appends an isolated parent and schedules it with color 1.
func (dc *DynamicColorBound) AddNode() int {
	id := dc.d.AddNode()
	dc.col = append(dc.col, 0)
	dc.col[id] = dc.smallestFree(id)
	return id
}

// AddEdge inserts a marriage. If the in-laws currently share a color the
// lower-degree endpoint recolors (§6: "p's palette should grow by one more
// color"). Reports whether a recoloring was needed.
func (dc *DynamicColorBound) AddEdge(u, v int) (recolored bool, err error) {
	if u == v {
		return false, fmt.Errorf("core: self-marriage at node %d", u)
	}
	if !dc.d.AddEdge(u, v) {
		return false, nil
	}
	if dc.col[u] != dc.col[v] {
		return false, nil
	}
	p := u
	if dc.d.Degree(v) < dc.d.Degree(u) {
		p = v
	}
	dc.col[p] = dc.smallestFree(p)
	dc.Recolorings++
	return true, nil
}

// RemoveEdge deletes a divorce. If an endpoint's color now exceeds its
// degree+1 (its hosting rate has become disproportionate to its shrunken
// palette, §6) it is recolored downward.
func (dc *DynamicColorBound) RemoveEdge(u, v int) bool {
	if !dc.d.RemoveEdge(u, v) {
		return false
	}
	for _, p := range [2]int{u, v} {
		if dc.col[p] > dc.d.Degree(p)+1 {
			dc.col[p] = dc.smallestFree(p)
			dc.Recolorings++
		}
	}
	return true
}

// Name implements Scheduler.
func (dc *DynamicColorBound) Name() string { return "dynamic-color-bound/" + dc.code.Name() }

// Holiday implements Scheduler.
func (dc *DynamicColorBound) Holiday() int64 { return dc.t }

// Next implements Scheduler against the current graph and coloring.
func (dc *DynamicColorBound) Next() []int {
	dc.t++
	var happy []int
	for v := 0; v < dc.d.N(); v++ {
		if dc.happyAt(v, dc.t) {
			happy = append(happy, v)
		}
	}
	return happy
}

// happyAt evaluates the §4 closed form for v's current color.
func (dc *DynamicColorBound) happyAt(v int, t int64) bool {
	enc := dc.code.Encode(uint64(dc.col[v]))
	period := int64(1) << uint(enc.Len())
	return t%period == int64(enc.Value())
}

// CurrentPeriod returns v's hosting period under its current color.
func (dc *DynamicColorBound) CurrentPeriod(v int) int64 {
	return int64(1) << uint(dc.code.Len(uint64(dc.col[v])))
}

// FrozenSchedule snapshots the current coloring's periodic assignment as an
// immutable random-access Schedule. The snapshot stays internally consistent
// (every happy set independent in the graph at freeze time) while the live
// scheduler keeps absorbing churn — this is the value the serving layer
// caches between recolorings. The assignment is valid by construction
// (period = 2^len ≥ 1 and offset = codeword value < 2^len), so the snapshot
// skips NewFixedPeriodic's copy-and-validate pass: rebuilds sit on the
// serving path after every recoloring.
func (dc *DynamicColorBound) FrozenSchedule() (Schedule, error) {
	periods := make([]int64, dc.d.N())
	offsets := make([]int64, dc.d.N())
	for v := range periods {
		enc := dc.code.Encode(uint64(dc.col[v]))
		if enc.Len() > 62 {
			return nil, fmt.Errorf("core: codeword of color %d is %d bits; period overflows int64", dc.col[v], enc.Len())
		}
		periods[v] = int64(1) << uint(enc.Len())
		offsets[v] = int64(enc.Value())
	}
	return newPeriodicSchedule(dc.Name(), periods, offsets), nil
}

// Color returns v's current color.
func (dc *DynamicColorBound) Color(v int) int { return dc.col[v] }

// Coloring returns a copy of the full current coloring, the state a
// durability snapshot must capture for RestoreDynamicColorBound.
func (dc *DynamicColorBound) Coloring() []int { return append([]int(nil), dc.col...) }

// Code returns the prefix code the scheduler encodes colors with.
func (dc *DynamicColorBound) Code() prefixcode.Code { return dc.code }

// Degree returns v's current degree.
func (dc *DynamicColorBound) Degree(v int) int { return dc.d.Degree(v) }

// N returns the current number of parents.
func (dc *DynamicColorBound) N() int { return dc.d.N() }

// M returns the current number of in-law edges.
func (dc *DynamicColorBound) M() int { return dc.d.M() }

// Graph snapshots the current conflict graph.
func (dc *DynamicColorBound) Graph() *graph.Graph { return dc.d.Snapshot() }

// VerifyProper checks that the maintained coloring is proper and
// degree-bounded — the invariant that keeps every happy set independent.
func (dc *DynamicColorBound) VerifyProper() error {
	for v := 0; v < dc.d.N(); v++ {
		if dc.col[v] < 1 {
			return fmt.Errorf("core: dynamic node %d uncolored", v)
		}
		if dc.col[v] > dc.d.Degree(v)+1 {
			return fmt.Errorf("core: dynamic node %d has color %d > deg+1 = %d", v, dc.col[v], dc.d.Degree(v)+1)
		}
		for _, u := range dc.d.Neighbors(v) {
			if dc.col[u] == dc.col[v] {
				return fmt.Errorf("core: dynamic edge (%d,%d) monochromatic with %d", v, u, dc.col[v])
			}
		}
	}
	return nil
}
