package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// DynamicColorBound is the §6 dynamic-setting scheduler: the color-bound
// schedule of §4 maintained under edge insertions (marriages) and deletions
// (divorces). On insertion, if the endpoints share a color, one endpoint
// greedily recolors — its palette has grown to deg+1, so a color ≤ deg+1
// always exists and the new periodic schedule follows from the prefix-free
// encoding of the new color. On deletion a node whose color has become
// disproportionate to its degree (color > deg+1) is recolored so its
// hosting rate tracks its current degree.
type DynamicColorBound struct {
	d    *graph.Dynamic
	code prefixcode.Code
	col  []int
	t    int64
	// Recolorings counts color changes triggered by edge churn, the
	// disruption measure of experiment E8.
	Recolorings int64
	// smallestFree scratch: mark[c] == markGen means color c was seen in
	// the neighborhood currently being scanned. One stamp array reused
	// across calls replaces the per-call hash set that used to dominate
	// recoloring cost on large communities.
	mark    []uint64
	markGen uint64
}

// NewDynamicColorBound starts from an existing graph, coloring it greedily,
// or from an empty n-node graph when g has no edges.
func NewDynamicColorBound(g *graph.Graph, code prefixcode.Code) (*DynamicColorBound, error) {
	dc := &DynamicColorBound{
		d:    graph.DynamicFrom(g),
		code: code,
		col:  make([]int, g.N()),
	}
	for v := range dc.col {
		dc.col[v] = 1
	}
	// Greedy pass to make the initial coloring proper.
	for v := 0; v < g.N(); v++ {
		dc.col[v] = dc.smallestFree(v)
	}
	if err := dc.VerifyProper(); err != nil {
		return nil, err
	}
	return dc, nil
}

// RestoreDynamicColorBound reconstructs a scheduler at an exact coloring —
// the durability path: a restored community must answer every window and
// next-happy query byte-identically to the process that snapshotted it, so
// the persisted coloring is adopted verbatim rather than re-derived by the
// greedy pass (which could legally pick different colors). The coloring is
// verified proper and degree-bounded before use; recolorings restores the
// E8 disruption counter.
func RestoreDynamicColorBound(g *graph.Graph, code prefixcode.Code, coloring []int, recolorings int64) (*DynamicColorBound, error) {
	if len(coloring) != g.N() {
		return nil, fmt.Errorf("core: restore has %d colors for %d nodes", len(coloring), g.N())
	}
	dc := &DynamicColorBound{
		d:           graph.DynamicFrom(g),
		code:        code,
		col:         append([]int(nil), coloring...),
		Recolorings: recolorings,
	}
	if err := dc.VerifyProper(); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	return dc, nil
}

// smallestFree returns the smallest color ≥ 1 unused in v's neighborhood.
func (dc *DynamicColorBound) smallestFree(v int) int {
	// The answer is at most deg(v)+1 (deg neighbors block at most deg
	// colors), so neighbor colors above that bound can never matter.
	bound := dc.d.Degree(v) + 1
	if len(dc.mark) < bound+1 {
		dc.mark = append(dc.mark, make([]uint64, bound+1-len(dc.mark))...)
	}
	dc.markGen++
	for _, u := range dc.d.Neighbors(v) {
		if c := dc.col[u]; c <= bound {
			dc.mark[c] = dc.markGen
		}
	}
	for c := 1; ; c++ {
		if dc.mark[c] != dc.markGen {
			return c
		}
	}
}

// AddNode appends an isolated parent and schedules it with color 1.
func (dc *DynamicColorBound) AddNode() int {
	id := dc.d.AddNode()
	dc.col = append(dc.col, 0)
	dc.col[id] = dc.smallestFree(id)
	return id
}

// AddEdge inserts a marriage. If the in-laws currently share a color the
// lower-degree endpoint recolors (§6: "p's palette should grow by one more
// color"). Reports whether a recoloring was needed.
func (dc *DynamicColorBound) AddEdge(u, v int) (recolored bool, err error) {
	if u == v {
		return false, fmt.Errorf("core: self-marriage at node %d", u)
	}
	if !dc.d.AddEdge(u, v) {
		return false, nil
	}
	if dc.col[u] != dc.col[v] {
		return false, nil
	}
	p := u
	if dc.d.Degree(v) < dc.d.Degree(u) {
		p = v
	}
	dc.col[p] = dc.smallestFree(p)
	dc.Recolorings++
	return true, nil
}

// RemoveEdge deletes a divorce. If an endpoint's color now exceeds its
// degree+1 (its hosting rate has become disproportionate to its shrunken
// palette, §6) it is recolored downward.
func (dc *DynamicColorBound) RemoveEdge(u, v int) bool {
	if !dc.d.RemoveEdge(u, v) {
		return false
	}
	for _, p := range [2]int{u, v} {
		if dc.col[p] > dc.d.Degree(p)+1 {
			dc.col[p] = dc.smallestFree(p)
			dc.Recolorings++
		}
	}
	return true
}

// EditOp selects the kind of one churn edit in a batch.
type EditOp uint8

const (
	// EditInsert adds an edge (a marriage).
	EditInsert EditOp = iota + 1
	// EditDelete removes an edge (a divorce).
	EditDelete
)

// Edit is one edge insertion or deletion inside a churn batch.
type Edit struct {
	Op   EditOp
	U, V int
	// Demand is the per-edge frequency demand of poly communities
	// (meet at least once every Demand slots); 0 means the community
	// default. The classic gathering kind ignores it.
	Demand int64
}

// EditResult reports what one edit of a batch did: whether it changed the
// edge set at all (Applied is false for inserting an existing marriage or
// deleting an absent one) and whether it triggered a recoloring.
type EditResult struct {
	Applied   bool
	Recolored bool
}

// ApplyBatch applies K edge edits as one operation and returns the number of
// recolorings they triggered. Every edit is validated up front, so a bad
// batch returns an error having changed nothing; after validation the edits
// are applied in order with exactly the per-edit repair rule of
// AddEdge/RemoveEdge, and the batch ends in a single VerifyProper-checkable
// state.
//
// The edits are deliberately NOT repaired by one deferred whole-batch
// recoloring sweep: smallestFree's choices depend on the neighbor colors in
// effect when each edit lands, so a deferred sweep can legally pick
// different (equally proper) colors than sequential application — and both
// WAL replay and the restored-community guarantee promise byte-identical
// window/next answers to the one-at-a-time history. The batch savings come
// from everything around the repairs instead: the caller takes one lock,
// writes one group-committed WAL append, invalidates the schedule cache at
// most once, verifies once, and the smallestFree scratch stays hot across
// the whole batch.
func (dc *DynamicColorBound) ApplyBatch(edits []Edit) (recolorings int, err error) {
	return dc.ApplyBatchResults(edits, nil)
}

// ApplyBatchResults is ApplyBatch with per-edit outcomes: when out is
// non-nil it must have one slot per edit and is filled with what each edit
// did.
func (dc *DynamicColorBound) ApplyBatchResults(edits []Edit, out []EditResult) (recolorings int, err error) {
	if out != nil && len(out) != len(edits) {
		return 0, fmt.Errorf("core: batch has %d edits but %d result slots", len(edits), len(out))
	}
	n := dc.d.N()
	for i, e := range edits {
		if e.Op != EditInsert && e.Op != EditDelete {
			return 0, fmt.Errorf("core: batch edit %d has unknown op %d", i, e.Op)
		}
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return 0, fmt.Errorf("core: batch edit %d touches a node outside [0,%d)", i, n)
		}
		if e.U == e.V {
			return 0, fmt.Errorf("core: batch edit %d is a self-marriage at node %d", i, e.U)
		}
	}
	start := dc.Recolorings
	for i, e := range edits {
		mBefore := dc.d.M()
		rBefore := dc.Recolorings
		if e.Op == EditInsert {
			if _, err := dc.AddEdge(e.U, e.V); err != nil {
				// Unreachable after validation; surface it rather than
				// swallow a future invariant break.
				return int(dc.Recolorings - start), err
			}
		} else {
			dc.RemoveEdge(e.U, e.V)
		}
		if out != nil {
			out[i] = EditResult{
				Applied:   dc.d.M() != mBefore,
				Recolored: dc.Recolorings != rBefore,
			}
		}
	}
	return int(dc.Recolorings - start), nil
}

// HasEdge reports whether the marriage {u, v} currently exists.
// Out-of-range endpoints report false.
func (dc *DynamicColorBound) HasEdge(u, v int) bool {
	n := dc.d.N()
	if u < 0 || u >= n || v < 0 || v >= n || u == v {
		return false
	}
	return dc.d.Adjacent(u, v)
}

// Name implements Scheduler.
func (dc *DynamicColorBound) Name() string { return "dynamic-color-bound/" + dc.code.Name() }

// Holiday implements Scheduler.
func (dc *DynamicColorBound) Holiday() int64 { return dc.t }

// Next implements Scheduler against the current graph and coloring.
func (dc *DynamicColorBound) Next() []int {
	dc.t++
	var happy []int
	for v := 0; v < dc.d.N(); v++ {
		if dc.happyAt(v, dc.t) {
			happy = append(happy, v)
		}
	}
	return happy
}

// happyAt evaluates the §4 closed form for v's current color.
func (dc *DynamicColorBound) happyAt(v int, t int64) bool {
	enc := dc.code.Encode(uint64(dc.col[v]))
	period := int64(1) << uint(enc.Len())
	return t%period == int64(enc.Value())
}

// CurrentPeriod returns v's hosting period under its current color.
func (dc *DynamicColorBound) CurrentPeriod(v int) int64 {
	return int64(1) << uint(dc.code.Len(uint64(dc.col[v])))
}

// FrozenSchedule snapshots the current coloring's periodic assignment as an
// immutable random-access Schedule. The snapshot stays internally consistent
// (every happy set independent in the graph at freeze time) while the live
// scheduler keeps absorbing churn — this is the value the serving layer
// caches between recolorings. The assignment is valid by construction
// (period = 2^len ≥ 1 and offset = codeword value < 2^len), so the snapshot
// skips NewFixedPeriodic's copy-and-validate pass: rebuilds sit on the
// serving path after every recoloring.
func (dc *DynamicColorBound) FrozenSchedule() (Schedule, error) {
	periods := make([]int64, dc.d.N())
	offsets := make([]int64, dc.d.N())
	for v := range periods {
		enc := dc.code.Encode(uint64(dc.col[v]))
		if enc.Len() > 62 {
			return nil, fmt.Errorf("core: codeword of color %d is %d bits; period overflows int64", dc.col[v], enc.Len())
		}
		periods[v] = int64(1) << uint(enc.Len())
		offsets[v] = int64(enc.Value())
	}
	return newPeriodicSchedule(dc.Name(), periods, offsets), nil
}

// Color returns v's current color.
func (dc *DynamicColorBound) Color(v int) int { return dc.col[v] }

// Coloring returns a copy of the full current coloring, the state a
// durability snapshot must capture for RestoreDynamicColorBound.
func (dc *DynamicColorBound) Coloring() []int { return append([]int(nil), dc.col...) }

// Code returns the prefix code the scheduler encodes colors with.
func (dc *DynamicColorBound) Code() prefixcode.Code { return dc.code }

// Degree returns v's current degree.
func (dc *DynamicColorBound) Degree(v int) int { return dc.d.Degree(v) }

// N returns the current number of parents.
func (dc *DynamicColorBound) N() int { return dc.d.N() }

// M returns the current number of in-law edges.
func (dc *DynamicColorBound) M() int { return dc.d.M() }

// Graph snapshots the current conflict graph.
func (dc *DynamicColorBound) Graph() *graph.Graph { return dc.d.Snapshot() }

// VerifyProper checks that the maintained coloring is proper and
// degree-bounded — the invariant that keeps every happy set independent.
func (dc *DynamicColorBound) VerifyProper() error {
	for v := 0; v < dc.d.N(); v++ {
		if dc.col[v] < 1 {
			return fmt.Errorf("core: dynamic node %d uncolored", v)
		}
		if dc.col[v] > dc.d.Degree(v)+1 {
			return fmt.Errorf("core: dynamic node %d has color %d > deg+1 = %d", v, dc.col[v], dc.d.Degree(v)+1)
		}
		for _, u := range dc.d.Neighbors(v) {
			if dc.col[u] == dc.col[v] {
				return fmt.Errorf("core: dynamic edge (%d,%d) monochromatic with %d", v, u, dc.col[v])
			}
		}
	}
	return nil
}
