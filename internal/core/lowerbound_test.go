package core

import (
	"math"
	"testing"

	"repro/internal/prefixcode"
)

// Theorem 4.1 (Cauchy condensation): Σ 1/f(c) must stay ≤ 1 for a valid
// color→period guarantee. f(c) = c blows through 1 almost immediately;
// f(c) = φ(c) diverges but only at iterated-log speed; f(c) = c^{1+ε} and
// the realized omega periods 2^ρ(c) stay feasible.
func TestTheorem41FeasibilityFrontier(t *testing.T) {
	n := uint64(1 << 20)
	if FeasibleUpTo(func(c float64) float64 { return c }, 4) {
		t.Error("f(c) = c must be infeasible already at 4 colors (1 + 1/2 + 1/3 + 1/4 > 1)")
	}
	if !FeasibleUpTo(func(c float64) float64 { return math.Exp2(float64(prefixcode.Rho(uint64(c)))) }, n) {
		t.Error("the omega-code periods 2^rho must satisfy the Kraft budget")
	}
	if !FeasibleUpTo(func(c float64) float64 {
		l := math.Log2(c + 1)
		return 2 * c * l * l
	}, n) {
		t.Error("2c log^2(c+1) must be feasible")
	}
}

func TestPhiSumsDivergeSlowly(t *testing.T) {
	checkpoints := []uint64{1 << 8, 1 << 12, 1 << 16, 1 << 20}
	sums := PartialSums(prefixcode.Phi, checkpoints)
	for i := 1; i < len(sums); i++ {
		if sums[i] <= sums[i-1] {
			t.Errorf("phi partial sums must increase: %v", sums)
		}
	}
	// Divergence is real but glacial: by 2^20 the sum is still small.
	if sums[len(sums)-1] > 3 {
		t.Errorf("phi partial sum at 2^20 = %v; expected tiny growth", sums[len(sums)-1])
	}
	// And strictly slower than the harmonic series.
	harmonic := PartialSums(func(c float64) float64 { return c }, checkpoints)
	if sums[len(sums)-1] >= harmonic[len(harmonic)-1] {
		t.Error("phi sums must grow slower than harmonic sums")
	}
}

func TestPartialSumsMonotoneCheckpoints(t *testing.T) {
	sums := PartialSums(func(c float64) float64 { return c * c }, []uint64{1, 2, 4})
	// 1, 1+1/4, 1+1/4+1/9+1/16
	want := []float64{1, 1.25, 1.25 + 1.0/9 + 1.0/16}
	for i := range want {
		if math.Abs(sums[i]-want[i]) > 1e-12 {
			t.Errorf("sum[%d] = %v, want %v", i, sums[i], want[i])
		}
	}
}

func TestStandardGrowthFuncs(t *testing.T) {
	funcs := StandardGrowthFuncs()
	if len(funcs) < 5 {
		t.Fatalf("expected the standard palette of growth functions, got %d", len(funcs))
	}
	for _, gf := range funcs {
		v := gf.F(16)
		if v <= 0 || math.IsNaN(v) {
			t.Errorf("%s(16) = %v; want positive", gf.Name, v)
		}
	}
}

// The infinite-sum form of Theorem 4.1's proof: for the omega code the total
// hosting rate over all colors equals the Kraft sum and never exceeds 1, so
// a gathering sequence can accommodate every color class.
func TestOmegaRateBudgetTight(t *testing.T) {
	sum := prefixcode.KraftSum(prefixcode.Omega{}, 1<<16)
	if sum > 1 {
		t.Errorf("omega Kraft sum %v exceeds 1", sum)
	}
	if sum < 0.5 {
		t.Errorf("omega Kraft sum %v suspiciously small; code should be near-complete", sum)
	}
}
