// Package chairman implements the Chairman Assignment Problem of Tijdeman
// (Discrete Mathematics 1980), the classical single-resource scheduling
// problem the paper positions itself against (§1.3): one chairman is chosen
// per year, states have weights, and each state's cumulative count must
// track its weight share as closely as possible. The holiday gathering
// problem restricted to a clique with uniform weights is exactly this
// problem, so the package serves as the exact comparator for experiment E15
// (cliques are where the paper's power-of-two periods pay their rounding
// cost).
package chairman

import (
	"fmt"
	"math"
)

// Scheduler assigns one chairman per step using the greedy largest-deficit
// rule, which keeps every state's discrepancy |count_i − w_i·t| below 1 —
// Tijdeman proved the optimal algorithm achieves 1 − 1/(2(n−1)), and the
// greedy rule stays within the same unit envelope.
type Scheduler struct {
	weights []float64
	counts  []int64
	t       int64
	maxDev  float64
}

// New builds a scheduler from positive weights, normalized to sum to 1.
func New(weights []float64) (*Scheduler, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("chairman: need at least one state")
	}
	sum := 0.0
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("chairman: weight %d is %v; weights must be positive and finite", i, w)
		}
		sum += w
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / sum
	}
	return &Scheduler{weights: norm, counts: make([]int64, len(weights))}, nil
}

// Uniform builds a scheduler over n states of equal weight: the clique
// special case of the gathering problem.
func Uniform(n int) *Scheduler {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	s, err := New(w)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the number of states.
func (s *Scheduler) N() int { return len(s.weights) }

// Weight returns state i's normalized weight.
func (s *Scheduler) Weight(i int) float64 { return s.weights[i] }

// Count returns how many times state i has chaired so far.
func (s *Scheduler) Count(i int) int64 { return s.counts[i] }

// Step returns the current number of completed steps.
func (s *Scheduler) Step() int64 { return s.t }

// Next selects the chairman of the next step: the state with the largest
// deficit w_i·(t+1) − count_i, ties broken by index. It also updates the
// running maximum discrepancy.
func (s *Scheduler) Next() int {
	s.t++
	best, bestDeficit := -1, math.Inf(-1)
	for i, w := range s.weights {
		d := w*float64(s.t) - float64(s.counts[i])
		if d > bestDeficit {
			best, bestDeficit = i, d
		}
	}
	s.counts[best]++
	for i, w := range s.weights {
		dev := math.Abs(float64(s.counts[i]) - w*float64(s.t))
		if dev > s.maxDev {
			s.maxDev = dev
		}
	}
	return best
}

// MaxDeviation returns the largest |count_i − w_i·t| observed so far. The
// greedy rule keeps it below 1.
func (s *Scheduler) MaxDeviation() float64 { return s.maxDev }

// Run executes steps assignments and returns the chairman sequence.
func (s *Scheduler) Run(steps int) []int {
	out := make([]int, steps)
	for k := range out {
		out[k] = s.Next()
	}
	return out
}

// MaxGap returns, for each state, the largest distance between consecutive
// chairing steps (counting from step 0) over a fresh simulation of the
// given horizon. For weight w the gap stays below ⌈2/w⌉.
func MaxGap(weights []float64, horizon int) ([]int64, error) {
	s, err := New(weights)
	if err != nil {
		return nil, err
	}
	last := make([]int64, s.N())
	gaps := make([]int64, s.N())
	for k := 0; k < horizon; k++ {
		i := s.Next()
		if g := s.t - last[i]; g > gaps[i] {
			gaps[i] = g
		}
		last[i] = s.t
	}
	return gaps, nil
}
