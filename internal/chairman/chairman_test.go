package chairman

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformIsRoundRobin(t *testing.T) {
	s := Uniform(4)
	seq := s.Run(12)
	// Largest-deficit with equal weights cycles through all states before
	// repeating any.
	seen := make(map[int]int)
	for k, c := range seq {
		seen[c]++
		if k%4 == 3 {
			for i := 0; i < 4; i++ {
				if seen[i] != k/4+1 {
					t.Fatalf("after %d steps state %d chaired %d times, want %d", k+1, i, seen[i], k/4+1)
				}
			}
		}
	}
	if s.MaxDeviation() >= 1 {
		t.Errorf("uniform deviation %.3f, want < 1", s.MaxDeviation())
	}
}

func TestWeightedSharesTracked(t *testing.T) {
	s, err := New([]float64{3, 2, 1}) // normalized to 1/2, 1/3, 1/6
	if err != nil {
		t.Fatal(err)
	}
	steps := 6000
	s.Run(steps)
	wants := []float64{0.5, 1.0 / 3, 1.0 / 6}
	for i, w := range wants {
		got := float64(s.Count(i)) / float64(steps)
		if math.Abs(got-w) > 0.001 {
			t.Errorf("state %d share %.4f, want %.4f", i, got, w)
		}
	}
	if s.MaxDeviation() >= 1 {
		t.Errorf("deviation %.4f, want < 1 (Tijdeman envelope)", s.MaxDeviation())
	}
}

func TestIrrationalWeights(t *testing.T) {
	// Golden-ratio weights: the classic hard case for discrepancy.
	phi := (math.Sqrt(5) - 1) / 2
	s, err := New([]float64{phi, 1 - phi})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10000)
	if s.MaxDeviation() >= 1 {
		t.Errorf("deviation %.4f, want < 1", s.MaxDeviation())
	}
}

func TestDeviationBoundQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		weights := make([]float64, 0, len(raw))
		for _, r := range raw {
			if r > 0 {
				weights = append(weights, float64(r))
			}
		}
		if len(weights) == 0 || len(weights) > 12 {
			return true
		}
		s, err := New(weights)
		if err != nil {
			return false
		}
		s.Run(2000)
		return s.MaxDeviation() < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaxGapBound(t *testing.T) {
	gaps, err := MaxGap([]float64{4, 2, 1, 1}, 8000)
	if err != nil {
		t.Fatal(err)
	}
	weights := []float64{0.5, 0.25, 0.125, 0.125}
	for i, g := range gaps {
		bound := int64(math.Ceil(2 / weights[i]))
		if g > bound {
			t.Errorf("state %d gap %d exceeds 2/w = %d", i, g, bound)
		}
	}
}

func TestNewRejectsBadWeights(t *testing.T) {
	for _, ws := range [][]float64{nil, {}, {0}, {-1, 2}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := New(ws); err == nil {
			t.Errorf("weights %v must be rejected", ws)
		}
	}
}

func TestCountsSumToSteps(t *testing.T) {
	s := Uniform(7)
	s.Run(100)
	total := int64(0)
	for i := 0; i < s.N(); i++ {
		total += s.Count(i)
	}
	if total != 100 || s.Step() != 100 {
		t.Errorf("counts sum %d at step %d, want 100", total, s.Step())
	}
}
