package localsim

import (
	"testing"

	"repro/internal/graph"
)

// floodAlgo computes BFS distance from node 0 by flooding: the classic
// sanity check that synchronous rounds behave like the LOCAL model.
type floodAlgo struct {
	dist int
}

func (f *floodAlgo) Init(ctx *Context) {
	if ctx.ID() == 0 {
		f.dist = 0
		ctx.Broadcast(1) // payload: my distance + 1
	} else {
		f.dist = -1
	}
}

func (f *floodAlgo) Round(ctx *Context, inbox []Inbound) {
	if f.dist >= 0 {
		ctx.Halt()
		return
	}
	best := -1
	for _, m := range inbox {
		d := m.Payload.(int)
		if best == -1 || d < best {
			best = d
		}
	}
	if best >= 0 {
		f.dist = best
		ctx.Broadcast(best + 1)
	}
}

func TestFloodComputesBFSDistances(t *testing.T) {
	g := graph.Path(6)
	algos := make([]*floodAlgo, g.N())
	net := New(g, func(v int) Algorithm {
		algos[v] = &floodAlgo{}
		return algos[v]
	})
	rounds, done := net.Run(100)
	if !done {
		t.Fatalf("flood did not converge in %d rounds", rounds)
	}
	for v := 0; v < g.N(); v++ {
		if algos[v].dist != v {
			t.Errorf("dist(%d) = %d, want %d", v, algos[v].dist, v)
		}
	}
	// Node 5 learns its distance in round 5 and halts in round 6.
	if rounds < 5 || rounds > 7 {
		t.Errorf("rounds = %d, want about diameter", rounds)
	}
}

func TestMessageCounting(t *testing.T) {
	g := graph.Star(5)
	net := New(g, func(v int) Algorithm { return &countingAlgo{} })
	net.Run(3)
	// Init: every node broadcasts once: center sends 4, each leaf sends 1
	// => 8 messages; all halt in round 1 without sending.
	if net.Messages() != 8 {
		t.Errorf("messages = %d, want 8", net.Messages())
	}
	if net.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0 without injection", net.Dropped())
	}
}

type countingAlgo struct{}

func (c *countingAlgo) Init(ctx *Context)                   { ctx.Broadcast("hi") }
func (c *countingAlgo) Round(ctx *Context, inbox []Inbound) { ctx.Halt() }

type recordingAlgo struct {
	got []int
}

func (r *recordingAlgo) Init(ctx *Context) {
	ctx.Broadcast(ctx.ID())
}

func (r *recordingAlgo) Round(ctx *Context, inbox []Inbound) {
	for _, m := range inbox {
		r.got = append(r.got, m.Payload.(int))
	}
	ctx.Halt()
}

func TestDropInjectionLosesMessages(t *testing.T) {
	g := graph.Clique(20)
	var total int
	for seed := uint64(0); seed < 5; seed++ {
		algos := make([]*recordingAlgo, g.N())
		net := New(g, func(v int) Algorithm {
			algos[v] = &recordingAlgo{}
			return algos[v]
		}, WithDropRate(0.5), WithSeed(seed))
		net.Run(2)
		for _, a := range algos {
			total += len(a.got)
		}
		if net.Dropped() == 0 {
			t.Errorf("seed %d: expected some drops at rate 0.5", seed)
		}
	}
	full := 5 * 20 * 19 // five trials of a full exchange
	if total >= full {
		t.Errorf("received %d messages, expected losses from %d", total, full)
	}
	if total == 0 {
		t.Error("expected some messages to survive at rate 0.5")
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	g := graph.GNP(200, 0.05, 3)
	run := func(workers int) []int {
		algos := make([]*randomPickAlgo, g.N())
		net := New(g, func(v int) Algorithm {
			algos[v] = &randomPickAlgo{}
			return algos[v]
		}, WithSeed(42), WithWorkers(workers))
		net.Run(10)
		out := make([]int, g.N())
		for v, a := range algos {
			out[v] = a.pick
		}
		return out
	}
	a, b, c := run(1), run(4), run(16)
	for v := range a {
		if a[v] != b[v] || a[v] != c[v] {
			t.Fatalf("node %d: picks differ across worker counts: %d %d %d", v, a[v], b[v], c[v])
		}
	}
}

type randomPickAlgo struct {
	pick int
}

func (r *randomPickAlgo) Init(ctx *Context) {}

func (r *randomPickAlgo) Round(ctx *Context, inbox []Inbound) {
	r.pick += ctx.Rand().IntN(1000)
	if ctx.Round() >= 5 {
		ctx.Halt()
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	g := graph.Path(3) // 0-1-2: nodes 0 and 2 are not adjacent
	defer func() {
		if recover() == nil {
			t.Fatal("send to non-neighbor must panic")
		}
	}()
	New(g, func(v int) Algorithm { return &badSender{} })
}

type badSender struct{}

func (b *badSender) Init(ctx *Context) {
	if ctx.ID() == 0 {
		ctx.Send(2, "illegal")
	}
}
func (b *badSender) Round(ctx *Context, inbox []Inbound) { ctx.Halt() }

func TestHaltedNodesReceiveNoRounds(t *testing.T) {
	g := graph.Clique(4)
	algos := make([]*haltCounter, g.N())
	net := New(g, func(v int) Algorithm {
		algos[v] = &haltCounter{}
		return algos[v]
	})
	rounds, done := net.Run(10)
	if !done {
		t.Fatal("network should halt")
	}
	if rounds != 1 {
		t.Errorf("rounds = %d, want 1", rounds)
	}
	for v, a := range algos {
		if a.roundCalls != 1 {
			t.Errorf("node %d got %d round calls, want 1", v, a.roundCalls)
		}
	}
}

type haltCounter struct {
	roundCalls int
}

func (h *haltCounter) Init(ctx *Context) {}
func (h *haltCounter) Round(ctx *Context, inbox []Inbound) {
	h.roundCalls++
	ctx.Halt()
}

func TestRunStopsAtMaxRounds(t *testing.T) {
	g := graph.Cycle(5)
	net := New(g, func(v int) Algorithm { return &neverHalt{} })
	rounds, done := net.Run(7)
	if done {
		t.Error("never-halting network must not report done")
	}
	if rounds != 7 {
		t.Errorf("rounds = %d, want 7", rounds)
	}
	if net.Rounds() != 7 {
		t.Errorf("Rounds() = %d, want 7", net.Rounds())
	}
}

type neverHalt struct{}

func (n *neverHalt) Init(ctx *Context)                   {}
func (n *neverHalt) Round(ctx *Context, inbox []Inbound) {}
