// Package localsim is a synchronous message-passing simulator of the LOCAL
// model of distributed computing (Linial; Peleg), the substrate on which the
// paper's distributed algorithms run: the BEPS-style randomized coloring used
// for initialization (§3, §5.2) and the per-holiday recoloring rounds.
//
// Execution proceeds in synchronous rounds. In every round each non-halted
// node observes the messages sent to it in the previous round and may send
// messages to neighbors. The simulator counts rounds and messages so that
// the paper's round-complexity claims (Theorem 3.1, §5.2) can be measured,
// and can inject message loss for failure testing.
package localsim

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Inbound is a message delivered to a node: the sending neighbor and an
// opaque payload.
type Inbound struct {
	From    int
	Payload any
}

// Algorithm is the per-node state machine. One instance runs at every node.
type Algorithm interface {
	// Init runs once before the first round; messages sent here are
	// delivered in round 1.
	Init(ctx *Context)
	// Round runs once per synchronous round with the messages delivered
	// this round. Call ctx.Halt() to stop participating.
	Round(ctx *Context, inbox []Inbound)
}

// Context is a node's handle to the network during Init or Round. It is
// only valid for the duration of the call that received it.
type Context struct {
	net    *Network
	id     int
	round  int
	outbox []outMsg
	halted bool
	rng    *rand.Rand
}

type outMsg struct {
	to      int
	payload any
}

// ID returns the node's identifier (its graph vertex).
func (c *Context) ID() int { return c.id }

// Round returns the current round number (0 during Init).
func (c *Context) Round() int { return c.round }

// Degree returns the node's degree in the conflict graph.
func (c *Context) Degree() int { return c.net.g.Degree(c.id) }

// Neighbors returns the node's neighbor list (shared; read-only).
func (c *Context) Neighbors() []int { return c.net.g.Neighbors(c.id) }

// Rand returns the node's private deterministic random source. Streams are
// independent across nodes and stable across runs and worker counts.
func (c *Context) Rand() *rand.Rand { return c.rng }

// Send queues a message to a neighbor for delivery next round. Sending to a
// non-neighbor panics: the LOCAL model only permits edge communication.
func (c *Context) Send(to int, payload any) {
	if !c.net.g.Adjacent(c.id, to) {
		panic(fmt.Sprintf("localsim: node %d cannot send to non-neighbor %d", c.id, to))
	}
	c.outbox = append(c.outbox, outMsg{to, payload})
}

// Broadcast queues a message to every neighbor for delivery next round.
func (c *Context) Broadcast(payload any) {
	for _, u := range c.net.g.Neighbors(c.id) {
		c.outbox = append(c.outbox, outMsg{u, payload})
	}
}

// Halt marks the node as finished; it receives no further Round calls.
func (c *Context) Halt() { c.halted = true }

// Network simulates one distributed execution over a fixed conflict graph.
type Network struct {
	g     *graph.Graph
	nodes []*nodeState

	seed     uint64
	dropRate float64
	dropRNG  *rand.Rand
	workers  int

	round    int
	messages int64
	dropped  int64
}

type nodeState struct {
	algo   Algorithm
	inbox  []Inbound
	next   []Inbound
	halted bool
	rng    *rand.Rand
}

// Option configures a Network.
type Option func(*Network)

// WithSeed sets the base seed for all node random streams (default 1).
func WithSeed(seed uint64) Option { return func(n *Network) { n.seed = seed } }

// WithDropRate makes every message be lost independently with probability p.
// Used for failure-injection tests; the default is 0 (reliable links).
func WithDropRate(p float64) Option { return func(n *Network) { n.dropRate = p } }

// WithWorkers sets the number of goroutines that execute node steps within a
// round (default: GOMAXPROCS). Results are identical for any worker count.
func WithWorkers(w int) Option { return func(n *Network) { n.workers = w } }

// New builds a network over g, instantiating an Algorithm per node.
func New(g *graph.Graph, makeAlgo func(v int) Algorithm, opts ...Option) *Network {
	n := &Network{g: g, seed: 1, workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(n)
	}
	if n.workers < 1 {
		n.workers = 1
	}
	n.dropRNG = rand.New(rand.NewPCG(n.seed, 0xd1a7))
	n.nodes = make([]*nodeState, g.N())
	for v := 0; v < g.N(); v++ {
		n.nodes[v] = &nodeState{
			algo: makeAlgo(v),
			rng:  rand.New(rand.NewPCG(n.seed, uint64(v)+0x9e3779b97f4a7c15)),
		}
	}
	n.init()
	return n
}

// init runs every node's Init and delivers the resulting messages into the
// round-1 inboxes.
func (n *Network) init() {
	n.parallelStep(func(v int, st *nodeState) []outMsg {
		ctx := &Context{net: n, id: v, round: 0, rng: st.rng}
		st.algo.Init(ctx)
		st.halted = ctx.halted
		return ctx.outbox
	})
	n.deliver()
}

// RunRound executes one synchronous round and reports whether every node has
// halted.
func (n *Network) RunRound() bool {
	n.round++
	n.parallelStep(func(v int, st *nodeState) []outMsg {
		if st.halted {
			st.inbox = nil
			return nil
		}
		ctx := &Context{net: n, id: v, round: n.round, rng: st.rng}
		inbox := st.inbox
		st.inbox = nil
		st.algo.Round(ctx, inbox)
		st.halted = ctx.halted
		return ctx.outbox
	})
	n.deliver()
	return n.AllHalted()
}

// Run executes rounds until every node halts or maxRounds is reached,
// returning the number of rounds executed and whether all nodes halted.
func (n *Network) Run(maxRounds int) (rounds int, done bool) {
	for r := 0; r < maxRounds; r++ {
		if n.RunRound() {
			return r + 1, true
		}
	}
	return maxRounds, n.AllHalted()
}

// parallelStep invokes step for every node, fanning out across workers, and
// stores the produced outboxes for delivery. Node order inside a round never
// affects results because sends are buffered.
func (n *Network) parallelStep(step func(v int, st *nodeState) []outMsg) {
	outs := make([][]outMsg, len(n.nodes))
	if n.workers == 1 || len(n.nodes) < 64 {
		for v, st := range n.nodes {
			outs[v] = step(v, st)
		}
	} else {
		var wg sync.WaitGroup
		chunk := (len(n.nodes) + n.workers - 1) / n.workers
		for w := 0; w < n.workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(n.nodes) {
				hi = len(n.nodes)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for v := lo; v < hi; v++ {
					outs[v] = step(v, n.nodes[v])
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	// Sequential delivery into 'next' keeps drop decisions deterministic.
	for v, msgs := range outs {
		for _, m := range msgs {
			n.messages++
			if n.dropRate > 0 && n.dropRNG.Float64() < n.dropRate {
				n.dropped++
				continue
			}
			dst := n.nodes[m.to]
			dst.next = append(dst.next, Inbound{From: v, Payload: m.payload})
		}
	}
}

// deliver moves the buffered messages into the visible inboxes.
func (n *Network) deliver() {
	for _, st := range n.nodes {
		st.inbox = st.next
		st.next = nil
	}
}

// AllHalted reports whether every node has halted.
func (n *Network) AllHalted() bool {
	for _, st := range n.nodes {
		if !st.halted {
			return false
		}
	}
	return true
}

// Rounds returns the number of rounds executed so far.
func (n *Network) Rounds() int { return n.round }

// Messages returns the number of messages sent (including dropped ones).
func (n *Network) Messages() int64 { return n.messages }

// Dropped returns the number of messages lost to failure injection.
func (n *Network) Dropped() int64 { return n.dropped }

// Graph returns the underlying conflict graph.
func (n *Network) Graph() *graph.Graph { return n.g }
