package poly

import (
	"reflect"
	"testing"

	"math/rand/v2"
)

// equalSets treats nil and empty happy sets as equal, mirroring the
// facade-level schedule property tests.
func equalSets(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestScheduleAccessPathsAgree is the differential harness of the ISSUE:
// across ≥ 100 seeded random instances × both schedulers × window
// alignments, Window, HappySet (the random-access path), and a NextHappy
// replay must answer byte-identically. HappySet(t) for every t is the
// ground truth; Window must visit exactly it, and per-slot NextHappy must
// name exactly the holidays where the slot appears.
func TestScheduleAccessPathsAgree(t *testing.T) {
	const horizon = int64(700)
	windows := [][2]int64{
		{1, horizon},           // full pass
		{1, 1},                 // single first holiday
		{37, 211},              // interior, not starting at 1
		{512, 600},             // crosses the block size boundary region
		{horizon - 5, horizon}, // tail
	}
	for seed := uint64(0); seed < 110; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x51ed))
		n, edges := randInstance(rng)
		for _, code := range Codes() {
			d := buildDyn(t, code, n, edges)
			// Churn a little so some instances carry vacant slots.
			for i := 0; i < len(edges)/4; i++ {
				e := edges[rng.IntN(len(edges))]
				d.RemoveEdge(e.u, e.v)
			}
			s := d.FrozenSchedule()

			want := make([][]int, horizon)
			for tt := int64(1); tt <= horizon; tt++ {
				want[tt-1] = s.HappySet(tt)
			}
			for _, w := range windows {
				next := w[0]
				s.Window(w[0], w[1], func(tt int64, happy []int) {
					if tt != next {
						t.Fatalf("seed %d %s: window [%d,%d] visited %d, want %d", seed, code, w[0], w[1], tt, next)
					}
					if !equalSets(happy, want[tt-1]) {
						t.Fatalf("seed %d %s: holiday %d: Window %v ≠ HappySet %v", seed, code, tt, happy, want[tt-1])
					}
					next++
				})
				if next != w[1]+1 {
					t.Fatalf("seed %d %s: window [%d,%d] ended at %d", seed, code, w[0], w[1], next)
				}
			}
			// Backward re-reads after the full pass (closed-form schedules
			// must not care about access order).
			for _, w := range [][2]int64{{3, 9}, {513, 516}} {
				s.Window(w[0], w[1], func(tt int64, happy []int) {
					if !equalSets(happy, want[tt-1]) {
						t.Fatalf("seed %d %s: re-read holiday %d: %v ≠ %v", seed, code, tt, happy, want[tt-1])
					}
				})
			}
			// NextHappy replay: walking next pointers from several
			// alignments must enumerate exactly the slot's appearances.
			for v := 0; v < s.Nodes(); v++ {
				for _, from := range []int64{1, 17, 150} {
					wantNext := int64(0)
					for tt := from; tt <= horizon; tt++ {
						for _, u := range want[tt-1] {
							if u == v {
								wantNext = tt
								break
							}
						}
						if wantNext != 0 {
							break
						}
					}
					got := s.NextHappy(v, from)
					if wantNext == 0 {
						// Vacant slots answer 0; live slots may simply have a
						// period beyond the horizon — then got > horizon.
						if got != 0 && got <= horizon {
							t.Fatalf("seed %d %s: NextHappy(%d, %d) = %d inside the horizon, replay saw nothing", seed, code, v, from, got)
						}
						continue
					}
					if got != wantNext {
						t.Fatalf("seed %d %s: NextHappy(%d, %d) = %d, want %d", seed, code, v, from, got, wantNext)
					}
				}
			}
		}
	}
}

// TestSchedulersDifferButBothSatisfy: the two schedulers genuinely differ
// (bucketed never mixes demand classes in one layer) while both satisfy
// the same demands — the point of having a differential pair.
func TestSchedulersDifferButBothSatisfy(t *testing.T) {
	// A star with mixed demands: layering can fold the high-demand spoke
	// edges into low-period layers opportunistically; bucketed cannot.
	mk := func(code string) *Dyn {
		d, err := New(8, code)
		if err != nil {
			t.Fatal(err)
		}
		d.AddEdge(0, 1, 16)
		d.AddEdge(2, 3, 16)
		d.AddEdge(4, 5, 64)
		d.AddEdge(6, 7, 64)
		return d
	}
	lay, buck := mk(CodeLayering), mk(CodeBucketed)
	if got := lay.Stats(); got.MaxGapRatio > 1 {
		t.Fatalf("layering misses a demand: %+v", got)
	}
	if got := buck.Stats(); got.MaxGapRatio > 1 {
		t.Fatalf("bucketed misses a demand: %+v", got)
	}
	// Layering folds all four vertex-disjoint edges into one period-16
	// layer; bucketed keeps the 64-demand pair in its own bucket.
	if l, b := lay.Stats().Layers, buck.Stats().Layers; l != 1 || b != 2 {
		t.Fatalf("layer counts (layering %d, bucketed %d), want 1 and 2", l, b)
	}
}
