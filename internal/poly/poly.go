// Package poly is the Polyamorous Scheduling core: pairwise meetings are
// scheduled on the *edges* of a graph, each edge carrying a frequency demand
// (meet at least once every d timeslots), and a timeslot's output must be a
// matching — no two scheduled meetings may share a person. This is the
// edge-scheduling sibling of the node-scheduling gathering problem
// (arXiv 2403.00465; approximation algorithms in arXiv 2411.06292), served
// through the exact same core.Schedule surface so the engine, the
// frozen-schedule cache, the word-packed window encoding, and both wire
// protocols work unchanged — the schedule's entities are edge slots instead
// of families.
//
// Both approximation algorithms reduce to the same two-stage shape:
//
//  1. Partition the edges into layers that are matchings, via greedy
//     (Misra–Gries-style) edge coloring. The "layering" scheduler colors
//     globally and lets a layer absorb any edge whose demand its period
//     respects; the "bucketed" scheduler first groups edges by
//     power-of-two demand and colors each bucket separately, so a layer
//     serves exactly one demand class.
//  2. Assign each layer a dyadic residue class t ≡ offset (mod period),
//     period a power of two at most the layer's demand, with all classes
//     pairwise disjoint — buddy allocation over the infinite binary tree
//     of residue classes. Disjointness means at most one layer fires per
//     timeslot, so every emitted happy set is a matching by construction,
//     and perfect periodicity makes each edge's maximum gap exactly its
//     layer's period.
//
// Classes are always allocated at the leftmost free position of the dyadic
// tree, layers and edge slots always reuse the lowest free index: every
// placement decision is a pure function of the current state, never of the
// operation history, which is what lets a community restored from a
// snapshot + WAL tail answer byte-identically to the process that wrote it.
//
// When the demand density Σ 1/p exceeds the unit capacity of the timeline
// (or churn has fragmented the tree), insertion falls back to a full
// relayering with the smallest uniform period inflation 2^g that packs —
// demands may then be missed, which Stats reports as MaxGapRatio > 1, but
// matching-validity and perfect periodicity are never given up.
package poly

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// Scheduler codes accepted by New. The empty code means CodeLayering.
const (
	// CodeLayering colors all edges globally; a layer absorbs any edge
	// whose demand its period already respects, so layers are shared
	// across demand classes (layer period = the creating edge's demand
	// rounded down to a power of two).
	CodeLayering = "layering"
	// CodeBucketed groups edges by power-of-two demand and colors each
	// bucket separately: a layer serves exactly one demand class, which
	// trades more layers for per-class periods that never under-serve.
	CodeBucketed = "bucketed"
)

// Codes lists the scheduler codes in the order help text shows them.
func Codes() []string { return []string{CodeLayering, CodeBucketed} }

// DefaultDemand is the per-edge demand used when a create or churn request
// does not name one: meet at least once every 64 slots. It leaves enough
// density headroom that communities of the serving layer's usual sizes
// schedule every edge at its demanded rate.
const DefaultDemand = 64

// maxPeriodLog caps layer periods at 2^30 slots: deep enough that inflated
// instances still pack (2^30 layers would be needed to fill the tree),
// shallow enough that closed-form window math stays far from int64 limits.
const maxPeriodLog = 30

// MaxPeriod is the largest period a layer is ever assigned.
const MaxPeriod = int64(1) << maxPeriodLog

// ClampDemand normalizes a requested demand: non-positive values take the
// default, and demands beyond MaxPeriod are capped (a gap of 2^30 slots is
// already "almost never").
func ClampDemand(d int64) int64 {
	if d <= 0 {
		return DefaultDemand
	}
	if d > MaxPeriod {
		return MaxPeriod
	}
	return d
}

// floorPow2 returns the largest power of two ≤ d, for d ≥ 1.
func floorPow2(d int64) int64 {
	return int64(1) << (bits.Len64(uint64(d)) - 1)
}

// edgeSlot is one edge entity of the schedule. Slots are stable: deleting
// an edge vacates its slot (present = false, never happy) and a later
// insert reuses the lowest vacant slot, so a community's entity count only
// grows and window bitmaps stay aligned across churn.
type edgeSlot struct {
	u, v    int // canonical u < v
	demand  int64
	layer   int32
	present bool
}

// layer is one matching with an allocated dyadic residue class. A dead
// layer (period 0) is an index placeholder left by churn; its class is
// free and the lowest dead index is reused first.
type layer struct {
	period int64 // allocated period (power of two); 0 = dead
	offset int64 // 0 ≤ offset < period
	target int64 // demanded period (power of two); period ≥ target after inflation
	count  int   // member edges
}

// Dyn is a dynamic Polyamorous Scheduling instance under edge churn, the
// poly counterpart of core.DynamicColorBound: the serving layer mutates it
// under the community write lock and snapshots FrozenSchedule into the
// read cache. The zero value is not usable; construct with New.
type Dyn struct {
	code       string
	n          int // family nodes
	slots      []edgeSlot
	byEdge     map[[2]int]int // canonical (u,v) → slot
	layers     []layer
	nodeLayers [][]int32 // per node: live layers it appears in (a matching ⇒ at most once each)
	edges      int       // live edge count
	relayered  int64     // full relayering rebuilds (the repair escape hatch)
}

// New creates an empty instance over n family nodes. An empty code means
// CodeLayering; unknown codes are rejected.
func New(n int, code string) (*Dyn, error) {
	if n < 0 {
		return nil, fmt.Errorf("poly: negative family count %d", n)
	}
	switch code {
	case "":
		code = CodeLayering
	case CodeLayering, CodeBucketed:
	default:
		return nil, fmt.Errorf("poly: unknown scheduler code %q (want %q or %q)", code, CodeLayering, CodeBucketed)
	}
	return &Dyn{
		code:       code,
		byEdge:     make(map[[2]int]int),
		nodeLayers: make([][]int32, n),
		n:          n,
	}, nil
}

// Code returns the scheduler code ("layering" or "bucketed").
func (d *Dyn) Code() string { return d.code }

// Name identifies the scheduler for reports and frozen schedules.
func (d *Dyn) Name() string { return "poly/" + d.code }

// N returns the number of family nodes.
func (d *Dyn) N() int { return d.n }

// M returns the number of live edges.
func (d *Dyn) M() int { return d.edges }

// Slots returns the schedule entity count: live edges plus vacant slots
// left by churn. Window bitmaps and NextHappy queries index this range.
func (d *Dyn) Slots() int { return len(d.slots) }

// Relayerings returns how many full relayering rebuilds churn has forced —
// the poly counterpart of the recoloring counter.
func (d *Dyn) Relayerings() int64 { return d.relayered }

// AddNode appends a family node and returns its index.
func (d *Dyn) AddNode() int {
	d.nodeLayers = append(d.nodeLayers, nil)
	d.n++
	return d.n - 1
}

// canon returns the canonical (min, max) key of an edge.
func canon(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// HasEdge reports whether the edge (u, v) is live.
func (d *Dyn) HasEdge(u, v int) bool {
	_, ok := d.byEdge[canon(u, v)]
	return ok
}

// Demand returns the live edge's demand, or 0 if the edge is absent.
func (d *Dyn) Demand(u, v int) int64 {
	if i, ok := d.byEdge[canon(u, v)]; ok {
		return d.slots[i].demand
	}
	return 0
}

// Edge returns the endpoints and demand of a slot, with ok = false for
// vacant or out-of-range slots.
func (d *Dyn) Edge(slot int) (u, v int, demand int64, ok bool) {
	if slot < 0 || slot >= len(d.slots) || !d.slots[slot].present {
		return 0, 0, 0, false
	}
	s := d.slots[slot]
	return s.u, s.v, s.demand, true
}

// inLayer reports whether node u already appears in layer li.
func (d *Dyn) inLayer(u int, li int32) bool {
	for _, l := range d.nodeLayers[u] {
		if l == li {
			return true
		}
	}
	return false
}

// dropNodeLayer removes layer li from node u's live-layer list.
func (d *Dyn) dropNodeLayer(u int, li int32) {
	ls := d.nodeLayers[u]
	for i, l := range ls {
		if l == li {
			d.nodeLayers[u] = append(ls[:i], ls[i+1:]...)
			return
		}
	}
}

// findClass searches the subtree rooted at class (q, o) for the leftmost
// free class of period p (descend-zero-bit-first), given the classes the
// live layers hold. It is a pure function of the layer set — no free
// lists — so a restored instance allocates exactly like the original.
func (d *Dyn) findClass(q, o, p int64) (int64, bool) {
	occupied := 0
	for i := range d.layers {
		l := &d.layers[i]
		if l.period == 0 {
			continue
		}
		if l.period <= q {
			if o%l.period == l.offset {
				return 0, false // an ancestor-or-equal class is allocated
			}
		} else if l.offset%q == o {
			occupied++ // an allocated class lives below this node
		}
	}
	if occupied == 0 {
		return o, true // whole subtree free: take offset o (zero-extended)
	}
	if q == p {
		return 0, false // need this exact class and it is not empty
	}
	if off, ok := d.findClass(q*2, o, p); ok {
		return off, ok
	}
	return d.findClass(q*2, o+q, p)
}

// allocClass returns the leftmost free dyadic class of period p, or
// ok = false when nothing of that period is free.
func (d *Dyn) allocClass(p int64) (int64, bool) {
	return d.findClass(1, 0, p)
}

// newLayerIndex returns the lowest dead layer index, growing the slice if
// every layer is live — canonical, so restore-then-churn matches.
func (d *Dyn) newLayerIndex() int32 {
	for i := range d.layers {
		if d.layers[i].period == 0 {
			return int32(i)
		}
	}
	d.layers = append(d.layers, layer{})
	return int32(len(d.layers) - 1)
}

// newSlotIndex returns the lowest vacant edge slot, growing if none.
func (d *Dyn) newSlotIndex() int {
	for i := range d.slots {
		if !d.slots[i].present {
			return i
		}
	}
	d.slots = append(d.slots, edgeSlot{})
	return len(d.slots) - 1
}

// joinable reports whether layer li can absorb an edge (u, v) with target
// period tp under the scheduler's join rule.
func (d *Dyn) joinable(li int32, u, v int, tp int64) bool {
	l := &d.layers[li]
	if l.period == 0 {
		return false
	}
	if d.code == CodeBucketed {
		if l.target != tp {
			return false
		}
	} else if l.period > tp {
		return false
	}
	return !d.inLayer(u, li) && !d.inLayer(v, li)
}

// attach places a live slot into layer li, updating membership indexes.
func (d *Dyn) attach(slot int, li int32) {
	s := &d.slots[slot]
	s.layer = li
	d.layers[li].count++
	d.nodeLayers[s.u] = append(d.nodeLayers[s.u], li)
	d.nodeLayers[s.v] = append(d.nodeLayers[s.v], li)
}

// AddEdge inserts the edge (u, v) with the given demand (ClampDemand is
// applied). It returns whether the edge set changed and whether the insert
// forced a full relayering. Inserting an existing edge is a no-op, even
// with a different demand — like re-marrying in the classic kind.
// Self-loops and out-of-range endpoints are a programming error: the
// serving layer validates before calling, mirroring DynamicColorBound.
func (d *Dyn) AddEdge(u, v int, demand int64) (applied, relayered bool) {
	if u == v || u < 0 || v < 0 || u >= d.n || v >= d.n {
		panic(fmt.Sprintf("poly: AddEdge(%d, %d) outside %d nodes", u, v, d.n))
	}
	key := canon(u, v)
	if _, ok := d.byEdge[key]; ok {
		return false, false
	}
	demand = ClampDemand(demand)
	tp := floorPow2(demand)
	slot := d.newSlotIndex()
	d.slots[slot] = edgeSlot{u: key[0], v: key[1], demand: demand, layer: -1, present: true}
	d.byEdge[key] = slot
	d.edges++

	for i := range d.layers {
		if d.joinable(int32(i), key[0], key[1], tp) {
			d.attach(slot, int32(i))
			return true, false
		}
	}
	if off, ok := d.allocClass(tp); ok {
		li := d.newLayerIndex()
		d.layers[li] = layer{period: tp, offset: off, target: tp}
		d.attach(slot, li)
		return true, false
	}
	// No compatible layer and no free class of the target period: the tree
	// is full or fragmented. Relayer everything from scratch, inflating
	// uniformly only as much as packing requires.
	d.rebuild()
	return true, true
}

// RemoveEdge deletes the edge (u, v), vacating its slot. Removing an
// absent edge is a no-op.
func (d *Dyn) RemoveEdge(u, v int) (applied bool) {
	key := canon(u, v)
	slot, ok := d.byEdge[key]
	if !ok {
		return false
	}
	s := &d.slots[slot]
	li := s.layer
	d.layers[li].count--
	d.dropNodeLayer(s.u, li)
	d.dropNodeLayer(s.v, li)
	if d.layers[li].count == 0 {
		d.layers[li] = layer{} // dead: its class is free again
	}
	*s = edgeSlot{}
	delete(d.byEdge, key)
	d.edges--
	return true
}

// rebuild relayers every live edge from scratch in slot order, then packs
// the layers into the dyadic tree smallest-period-first with the least
// uniform inflation 2^g that fits — the deterministic repair escape hatch
// for full or fragmented trees.
func (d *Dyn) rebuild() {
	d.relayered++
	type newLayer struct {
		target  int64
		members []int
	}
	var nls []newLayer
	nodeIn := make(map[[2]int32]bool) // (node, layer) membership during forming
	for slot := range d.slots {
		s := &d.slots[slot]
		if !s.present {
			continue
		}
		tp := floorPow2(s.demand)
		li := -1
		for i := range nls {
			ok := nls[i].target <= tp
			if d.code == CodeBucketed {
				ok = nls[i].target == tp
			}
			if ok && !nodeIn[[2]int32{int32(s.u), int32(i)}] && !nodeIn[[2]int32{int32(s.v), int32(i)}] {
				li = i
				break
			}
		}
		if li < 0 {
			nls = append(nls, newLayer{target: tp})
			li = len(nls) - 1
		}
		nls[li].members = append(nls[li].members, slot)
		nodeIn[[2]int32{int32(s.u), int32(li)}] = true
		nodeIn[[2]int32{int32(s.v), int32(li)}] = true
	}

	// Smallest uniform inflation 2^g with Σ 1/period ≤ 1 under the cap.
	period := func(target int64, g uint) int64 {
		if g >= 62 || target<<g > MaxPeriod || target<<g < target {
			return MaxPeriod
		}
		return target << g
	}
	g := uint(0)
	for ; g < 62; g++ {
		density := 0.0
		for i := range nls {
			density += 1 / float64(period(nls[i].target, g))
		}
		if density <= 1 {
			break
		}
	}

	// Pack smallest period first (stable on forming order): leftmost-free
	// buddy allocation in nondecreasing period order cannot fragment, so
	// it succeeds whenever the density fits.
	order := make([]int, len(nls))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort: stable, tiny inputs
		for j := i; j > 0 && period(nls[order[j]].target, g) < period(nls[order[j-1]].target, g); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	d.layers = d.layers[:0]
	for u := range d.nodeLayers {
		d.nodeLayers[u] = d.nodeLayers[u][:0]
	}
	for _, i := range order {
		p := period(nls[i].target, g)
		off, ok := d.allocClass(p)
		if !ok {
			panic(fmt.Sprintf("poly: relayering failed to pack %d layers at inflation 2^%d", len(nls), g))
		}
		li := int32(len(d.layers))
		d.layers = append(d.layers, layer{period: p, offset: off, target: nls[i].target})
		for _, slot := range nls[i].members {
			d.attach(slot, li)
		}
	}
}

// Apply performs one edit (the core.Edit vocabulary shared with the
// classic kind): EditInsert adds the edge with the edit's demand
// (ClampDemand applied, so 0 means DefaultDemand), EditDelete removes it.
// Applied reports an edge-set change; Recolored reports a relayering
// rebuild, the poly analog of a recoloring.
func (d *Dyn) Apply(e core.Edit) core.EditResult {
	switch e.Op {
	case core.EditInsert:
		a, r := d.AddEdge(e.U, e.V, e.Demand)
		return core.EditResult{Applied: a, Recolored: r}
	case core.EditDelete:
		return core.EditResult{Applied: d.RemoveEdge(e.U, e.V)}
	default:
		panic(fmt.Sprintf("poly: unknown edit op %d", e.Op))
	}
}

// ApplyBatchResults applies edits in order, one result per edit —
// byte-identical to one-at-a-time application by construction, the
// property WAL replay depends on.
func (d *Dyn) ApplyBatchResults(edits []core.Edit) []core.EditResult {
	results := make([]core.EditResult, len(edits))
	for i, e := range edits {
		results[i] = d.Apply(e)
	}
	return results
}

// Verify checks the structural invariants: every layer is a matching,
// layer classes are pairwise disjoint, periods are powers of two within
// range, and the membership indexes agree with the slots. Tests call it
// after churn storms; it is never on the serving path.
func (d *Dyn) Verify() error {
	for i := range d.layers {
		l := &d.layers[i]
		if l.period == 0 {
			if l.count != 0 {
				return fmt.Errorf("poly: dead layer %d has %d members", i, l.count)
			}
			continue
		}
		if l.period&(l.period-1) != 0 || l.period > MaxPeriod {
			return fmt.Errorf("poly: layer %d has period %d", i, l.period)
		}
		if l.offset < 0 || l.offset >= l.period {
			return fmt.Errorf("poly: layer %d has offset %d outside [0, %d)", i, l.offset, l.period)
		}
		for j := 0; j < i; j++ {
			m := &d.layers[j]
			if m.period == 0 {
				continue
			}
			p := l.period
			if m.period < p {
				p = m.period
			}
			if l.offset%p == m.offset%p {
				return fmt.Errorf("poly: layers %d and %d collide: (%d,%d) vs (%d,%d)",
					j, i, m.period, m.offset, l.period, l.offset)
			}
		}
	}
	counts := make([]int, len(d.layers))
	seen := make(map[[2]int32]bool) // (node, layer): matching check
	live := 0
	for slot := range d.slots {
		s := &d.slots[slot]
		if !s.present {
			continue
		}
		live++
		if s.u >= s.v || s.u < 0 || s.v >= d.n {
			return fmt.Errorf("poly: slot %d holds invalid edge (%d, %d)", slot, s.u, s.v)
		}
		if s.layer < 0 || int(s.layer) >= len(d.layers) || d.layers[s.layer].period == 0 {
			return fmt.Errorf("poly: slot %d references layer %d", slot, s.layer)
		}
		if d.layers[s.layer].period > s.demand {
			// Not an invariant violation — inflation may over-period edges —
			// but the membership must still be a matching; fall through.
			_ = s
		}
		for _, nd := range []int{s.u, s.v} {
			k := [2]int32{int32(nd), s.layer}
			if seen[k] {
				return fmt.Errorf("poly: node %d appears twice in layer %d", nd, s.layer)
			}
			seen[k] = true
			if !d.inLayer(nd, s.layer) {
				return fmt.Errorf("poly: node %d missing layer %d in its index", nd, s.layer)
			}
		}
		counts[s.layer]++
	}
	if live != d.edges {
		return fmt.Errorf("poly: %d live slots but edge count %d", live, d.edges)
	}
	for i, c := range counts {
		if d.layers[i].period != 0 && c != d.layers[i].count {
			return fmt.Errorf("poly: layer %d counts %d members, slots say %d", i, d.layers[i].count, c)
		}
	}
	return nil
}
