package poly

import (
	"math/bits"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
)

// randInstance generates a random poly instance over n ≤ 256 nodes whose
// demands leave enough density headroom that both schedulers can meet
// every per-edge bound: with max degree Δ, first-fit edge coloring uses at
// most 2Δ-1 layers per demand class, and demands drawn from {B, 2B, 4B,
// 8B} with B ≥ 8Δ keep Σ 1/period ≤ ½ for either scheduler.
type testEdge struct {
	u, v   int
	demand int64
}

func randInstance(rng *rand.Rand) (n int, edges []testEdge) {
	n = 2 + rng.IntN(255)
	m := rng.IntN(3*n + 1)
	deg := make([]int, n)
	seen := map[[2]int]bool{}
	type bare struct{ u, v int }
	var bareEdges []bare
	for i := 0; i < m; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || seen[canon(u, v)] {
			continue
		}
		seen[canon(u, v)] = true
		bareEdges = append(bareEdges, bare{u, v})
		deg[u]++
		deg[v]++
	}
	maxDeg := 1
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	base := int64(1) << (bits.Len(uint(maxDeg)) + 3) // ≥ 8·maxDeg, power of two
	for _, e := range bareEdges {
		edges = append(edges, testEdge{e.u, e.v, base << rng.IntN(4)})
	}
	return n, edges
}

func buildDyn(t *testing.T, code string, n int, edges []testEdge) *Dyn {
	t.Helper()
	d, err := New(n, code)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if applied, _ := d.AddEdge(e.u, e.v, e.demand); !applied {
			t.Fatalf("AddEdge(%d,%d) not applied", e.u, e.v)
		}
	}
	return d
}

// TestDemandBoundsOnRandomInstances is the approximation-guarantee half of
// the differential harness (ISSUE acceptance): on ≥ 100 seeded random
// instances, both schedulers must satisfy every per-edge demand bound —
// each edge's max gap (its layer period) is at most its demand — and every
// structural invariant must hold.
func TestDemandBoundsOnRandomInstances(t *testing.T) {
	const instances = 120
	for seed := uint64(0); seed < instances; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
		n, edges := randInstance(rng)
		for _, code := range Codes() {
			d := buildDyn(t, code, n, edges)
			if err := d.Verify(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, code, err)
			}
			st := d.Stats()
			if st.MaxGapRatio > 1 {
				t.Fatalf("seed %d %s: max gap ratio %v > 1 (a demand bound is missed)", seed, code, st.MaxGapRatio)
			}
			if st.Density > 1 {
				t.Fatalf("seed %d %s: schedule density %v > 1", seed, code, st.Density)
			}
			if st.Edges != len(edges) {
				t.Fatalf("seed %d %s: %d edges, want %d", seed, code, st.Edges, len(edges))
			}
			if st.Fairness <= 0 || st.Fairness > 1.0000001 {
				t.Fatalf("seed %d %s: Jain fairness %v outside (0, 1]", seed, code, st.Fairness)
			}
			// Per-edge, directly: the scheduled gap is the layer period.
			for slot := 0; slot < d.Slots(); slot++ {
				if _, _, demand, ok := d.Edge(slot); ok {
					if p := d.layers[d.slots[slot].layer].period; p > demand {
						t.Fatalf("seed %d %s: slot %d scheduled every %d slots against demand %d", seed, code, slot, p, demand)
					}
				}
			}
		}
	}
}

// TestMatchingEveryTimeslot: every emitted happy set must be a matching —
// no two edge slots meeting at the same holiday may share an endpoint —
// including on demand-infeasible instances, where periods inflate but
// matching-validity is never given up.
func TestMatchingEveryTimeslot(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewPCG(seed, 1))
		n, edges := randInstance(rng)
		// Half the runs squeeze demands to force inflation.
		if seed%2 == 1 {
			for i := range edges {
				edges[i].demand = 1 + int64(rng.IntN(4))
			}
		}
		for _, code := range Codes() {
			d := buildDyn(t, code, n, edges)
			if err := d.Verify(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, code, err)
			}
			assertMatchings(t, d, d.FrozenSchedule(), 1, 512)
		}
	}
}

// assertMatchings walks the window and fails on any shared endpoint.
func assertMatchings(t *testing.T, d *Dyn, s *Schedule, from, to int64) {
	t.Helper()
	used := make(map[int]int64, 16)
	s.Window(from, to, func(tt int64, happy []int) {
		clear(used)
		for _, slot := range happy {
			u, v, _, ok := d.Edge(slot)
			if !ok {
				t.Fatalf("holiday %d schedules vacant slot %d", tt, slot)
			}
			for _, nd := range []int{u, v} {
				if prev, dup := used[nd]; dup {
					t.Fatalf("holiday %d is not a matching: node %d in slots %d and %d", tt, nd, prev, slot)
				}
				used[nd] = tt
			}
		}
	})
}

// TestInfeasibleDemandsInflateFinitely: demands the timeline cannot carry
// force a relayering with uniform inflation; the result still packs, still
// verifies, and reports a finite MaxGapRatio > 1.
func TestInfeasibleDemandsInflateFinitely(t *testing.T) {
	d, err := New(6, CodeLayering)
	if err != nil {
		t.Fatal(err)
	}
	// A triangle demanding every-slot service: density 3 > 1.
	d.AddEdge(0, 1, 1)
	d.AddEdge(1, 2, 1)
	if _, relayered := d.AddEdge(0, 2, 1); !relayered {
		t.Fatal("third unit-demand edge did not force a relayering")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.MaxGapRatio <= 1 || st.MaxGapRatio > float64(MaxPeriod) {
		t.Fatalf("max gap ratio %v, want finite and > 1", st.MaxGapRatio)
	}
	if st.Relayerings == 0 {
		t.Fatal("relayerings counter did not move")
	}
}

// TestChurnKeepsInvariants drives sustained random insert/delete churn and
// verifies structure plus matching-validity after every phase.
func TestChurnKeepsInvariants(t *testing.T) {
	for _, code := range Codes() {
		rng := rand.New(rand.NewPCG(42, 7))
		const n = 64
		d, err := New(n, code)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 3000; step++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			if rng.Float64() < 0.6 {
				d.AddEdge(u, v, int64(1)<<(6+rng.IntN(4)))
			} else {
				d.RemoveEdge(u, v)
			}
			if step%500 == 499 {
				if err := d.Verify(); err != nil {
					t.Fatalf("%s step %d: %v", code, step, err)
				}
			}
		}
		if err := d.Verify(); err != nil {
			t.Fatalf("%s final: %v", code, err)
		}
		assertMatchings(t, d, d.FrozenSchedule(), 1, 1024)
	}
}

// TestVacantSlots: deleting an edge vacates its slot — never happy, next
// always 0 — and a later insert reuses the lowest vacant slot so the
// entity count only grows.
func TestVacantSlots(t *testing.T) {
	d, err := New(5, "")
	if err != nil {
		t.Fatal(err)
	}
	d.AddEdge(0, 1, 8)
	d.AddEdge(2, 3, 8)
	d.AddEdge(3, 4, 8)
	if !d.RemoveEdge(2, 3) {
		t.Fatal("delete not applied")
	}
	if d.Slots() != 3 || d.M() != 2 {
		t.Fatalf("slots %d edges %d, want 3 and 2", d.Slots(), d.M())
	}
	s := d.FrozenSchedule()
	if s.Nodes() != 3 {
		t.Fatalf("schedule covers %d slots, want 3", s.Nodes())
	}
	if next := s.NextHappy(1, 1); next != 0 {
		t.Fatalf("vacant slot answers next %d, want 0", next)
	}
	s.Window(1, 64, func(tt int64, happy []int) {
		for _, slot := range happy {
			if slot == 1 {
				t.Fatalf("vacant slot scheduled at %d", tt)
			}
		}
	})
	// Reinsert: lowest vacant slot (1) is reused.
	d.AddEdge(1, 2, 8)
	if d.Slots() != 3 || !d.slots[1].present {
		t.Fatalf("reinsert did not reuse slot 1 (slots %d)", d.Slots())
	}
}

// TestExportRestoreContinuesIdentically is the byte-identity contract WAL
// recovery depends on: export mid-churn, restore, apply the identical
// remaining edits to both, and require identical frozen schedules.
func TestExportRestoreContinuesIdentically(t *testing.T) {
	for _, code := range Codes() {
		rng := rand.New(rand.NewPCG(9, 9))
		const n = 48
		d, err := New(n, code)
		if err != nil {
			t.Fatal(err)
		}
		edit := func() core.Edit {
			u, v := rng.IntN(n), rng.IntN(n)
			for u == v {
				v = rng.IntN(n)
			}
			op := core.EditInsert
			if rng.Float64() < 0.35 {
				op = core.EditDelete
			}
			return core.Edit{Op: op, U: u, V: v, Demand: int64(1) << (5 + rng.IntN(5))}
		}
		for i := 0; i < 400; i++ {
			d.Apply(edit())
		}
		r, err := Restore(d.Export())
		if err != nil {
			t.Fatalf("%s: restore: %v", code, err)
		}
		for i := 0; i < 400; i++ {
			e := edit()
			if got, want := r.Apply(e), d.Apply(e); got != want {
				t.Fatalf("%s: edit %+v diverged after restore: %+v vs %+v", code, e, got, want)
			}
		}
		a, b := d.FrozenSchedule(), r.FrozenSchedule()
		if a.Nodes() != b.Nodes() {
			t.Fatalf("%s: slot counts diverged: %d vs %d", code, a.Nodes(), b.Nodes())
		}
		for v := 0; v < a.Nodes(); v++ {
			if a.periods[v] != b.periods[v] || a.offsets[v] != b.offsets[v] {
				t.Fatalf("%s: slot %d assignment diverged: (%d,%d) vs (%d,%d)",
					code, v, a.periods[v], a.offsets[v], b.periods[v], b.offsets[v])
			}
		}
		if d.Relayerings() != r.Relayerings() {
			t.Fatalf("%s: relayering counters diverged: %d vs %d", code, d.Relayerings(), r.Relayerings())
		}
	}
}

// TestRestoreRejectsCorruptState: hostile or torn states never restore.
func TestRestoreRejectsCorruptState(t *testing.T) {
	d, _ := New(4, "")
	d.AddEdge(0, 1, 8)
	d.AddEdge(2, 3, 8)
	good := d.Export()
	mutate := []func(*State){
		func(st *State) { st.Code = "elope" },
		func(st *State) { st.Edges[0].Slot = 99 },
		func(st *State) { st.Edges[0].V = st.Edges[0].U },
		func(st *State) { st.Edges[0].Demand = 0 },
		func(st *State) { st.Edges[0].Layer = 42 },
		func(st *State) { st.Edges = append(st.Edges, st.Edges[0]) },
		func(st *State) { st.Layers[0].Period = 3 }, // not a power of two
		func(st *State) { st.Slots = 1 },
		func(st *State) { // colliding classes
			st.Layers = append(st.Layers, st.Layers[0])
			st.Edges[1].Layer = int32(len(st.Layers) - 1)
		},
	}
	for i, f := range mutate {
		st := good
		st.Edges = append([]EdgeState(nil), good.Edges...)
		st.Layers = append([]LayerState(nil), good.Layers...)
		f(&st)
		if _, err := Restore(st); err == nil {
			t.Fatalf("corruption %d restored without error", i)
		}
	}
	if _, err := Restore(good); err != nil {
		t.Fatalf("pristine state rejected: %v", err)
	}
}

// TestUnknownCode: New rejects unknown scheduler codes.
func TestUnknownCode(t *testing.T) {
	if _, err := New(4, "elope"); err == nil {
		t.Fatal("unknown code accepted")
	}
	if d, err := New(4, ""); err != nil || d.Code() != CodeLayering {
		t.Fatalf("empty code: %v, %q", err, d.Code())
	}
}
