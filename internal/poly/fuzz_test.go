package poly

import (
	"sync"
	"sync/atomic"
	"testing"

	"math/rand/v2"

	"repro/internal/graph"
	"repro/internal/wire"
)

// polyWindowSeeds are the committed seed inputs of FuzzPolyWindowRoundTrip,
// run as a plain test too so the corpus is exercised on every `go test`.
var polyWindowSeeds = []struct {
	seed  uint64
	n     uint8
	m     uint8
	churn uint8
	from  int64
	span  uint8
}{
	{0, 16, 24, 0, 1, 64},
	{1, 2, 1, 0, 1, 1},
	{2, 64, 128, 40, 37, 200},
	{3, 8, 12, 200, 1 << 40, 16},
	{4, 255, 255, 64, 511, 130}, // crosses the 512 boundary region
	{5, 3, 3, 1, 1, 255},        // unit demands: inflated instance
}

// checkPolyWindowRoundTrip builds a deterministic churned instance from the
// fuzzed parameters, streams a window through the real wire encoding
// (WindowBits → WindowResp frame), decodes it, and requires it to match
// HappySet exactly — and every decoded row to be a matching.
func checkPolyWindowRoundTrip(t *testing.T, seed uint64, n8, m8, churn uint8, from int64, span8 uint8) {
	t.Helper()
	n := int(n8)%255 + 2
	rng := rand.New(rand.NewPCG(seed, 0xbadcafe))
	d, err := New(n, Codes()[int(seed)%len(Codes())])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(m8); i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v {
			d.AddEdge(u, v, int64(1)<<rng.IntN(10))
		}
	}
	for i := 0; i < int(churn); i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		if rng.Float64() < 0.5 {
			d.RemoveEdge(u, v)
		} else {
			d.AddEdge(u, v, int64(1)<<rng.IntN(10))
		}
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	s := d.FrozenSchedule()
	slots := s.Nodes()

	if from < 1 {
		from = 1
	}
	span := int64(span8)%256 + 1
	to := from + span - 1

	// Encode exactly as the binary serving path does.
	rows := 0
	buf := []byte(nil)
	s.WindowBits(from, to, func(tt int64, row graph.Bitset) { rows++ })
	buf = wire.AppendWindowRespHeader(buf, slots, from, rows)
	s.WindowBits(from, to, func(tt int64, row graph.Bitset) {
		buf = row.AppendBytes(buf)
	})

	fr, rest, err := wire.Split(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("Split of a fresh poly window failed: %v (%d rest)", err, len(rest))
	}
	wr, err := fr.WindowResp()
	if err != nil {
		t.Fatal(err)
	}
	if wr.N != slots || wr.From != from || wr.Rows != rows {
		t.Fatalf("header (n=%d from=%d rows=%d), want (%d, %d, %d)", wr.N, wr.From, wr.Rows, slots, from, rows)
	}
	var happy []int
	used := map[int]bool{}
	for i := 0; i < wr.Rows; i++ {
		tt := wr.Holiday(i)
		happy = wr.AppendHappy(happy[:0], i)
		if !equalSets(happy, s.HappySet(tt)) {
			t.Fatalf("holiday %d decoded %v, HappySet %v", tt, happy, s.HappySet(tt))
		}
		clear(used)
		for _, slot := range happy {
			u, v, _, ok := d.Edge(slot)
			if !ok {
				t.Fatalf("holiday %d decoded vacant slot %d", tt, slot)
			}
			if used[u] || used[v] {
				t.Fatalf("holiday %d decoded a non-matching row %v", tt, happy)
			}
			used[u], used[v] = true, true
		}
	}
}

// FuzzPolyWindowRoundTrip drives the poly window encode/decode round trip
// with fuzzed instance and window parameters: the packed frames a poly
// community serves must decode back to its HappySet exactly, and every
// row must be a matching.
func FuzzPolyWindowRoundTrip(f *testing.F) {
	for _, s := range polyWindowSeeds {
		f.Add(s.seed, s.n, s.m, s.churn, s.from, s.span)
	}
	f.Fuzz(func(t *testing.T, seed uint64, n8, m8, churn uint8, from int64, span8 uint8) {
		checkPolyWindowRoundTrip(t, seed, n8, m8, churn, from, span8)
	})
}

// TestPolyWindowRoundTripSeeds runs the committed fuzz corpus inline.
func TestPolyWindowRoundTripSeeds(t *testing.T) {
	for _, s := range polyWindowSeeds {
		checkPolyWindowRoundTrip(t, s.seed, s.n, s.m, s.churn, s.from, s.span)
	}
}

// TestConcurrentChurnAndFrozenReads is the race-detector leg of the
// matching property: a writer churns the live instance and republishes
// frozen snapshots (the serving layer's cache pattern) while readers
// window whatever snapshot is current, asserting matching-validity on
// every emitted timeslot. Under -race this proves frozen schedules are
// immutable and snapshot publication is clean.
func TestConcurrentChurnAndFrozenReads(t *testing.T) {
	const n = 48
	d, err := New(n, CodeLayering)
	if err != nil {
		t.Fatal(err)
	}
	type frozen struct {
		s   *Schedule
		dyn *Dyn // restored copy pinned to the snapshot, for Edge lookups
	}
	var cur atomic.Pointer[frozen]
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 60; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v {
			d.AddEdge(u, v, 64)
		}
	}
	pin, err := Restore(d.Export())
	if err != nil {
		t.Fatal(err)
	}
	cur.Store(&frozen{s: d.FrozenSchedule(), dyn: pin})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			used := make(map[int]bool, 8)
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := cur.Load()
				from := i%800 + 1
				f.s.Window(from, from+63, func(tt int64, happy []int) {
					clear(used)
					for _, slot := range happy {
						u, v, _, ok := f.dyn.Edge(slot)
						if !ok {
							t.Errorf("holiday %d schedules vacant slot %d", tt, slot)
							return
						}
						if used[u] || used[v] {
							t.Errorf("holiday %d is not a matching", tt)
							return
						}
						used[u], used[v] = true, true
					}
				})
			}
		}(r)
	}
	for step := 0; step < 600; step++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		if rng.Float64() < 0.55 {
			d.AddEdge(u, v, int64(1)<<(4+rng.IntN(6)))
		} else {
			d.RemoveEdge(u, v)
		}
		if step%10 == 0 {
			pin, err := Restore(d.Export())
			if err != nil {
				t.Fatal(err)
			}
			cur.Store(&frozen{s: d.FrozenSchedule(), dyn: pin})
		}
	}
	close(stop)
	wg.Wait()
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}
