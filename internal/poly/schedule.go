package poly

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// windowBlock mirrors core: Window and WindowBits bucket holidays in
// fixed-size chunks so working memory is bounded regardless of span.
const windowBlock = 4096

// Schedule is the frozen closed form of a poly instance: one (period,
// offset) pair per edge slot, with period 0 marking a vacant slot that is
// never happy — the one thing core.NewFixedPeriodic cannot express, which
// is why poly carries its own copy of the block-walking window math. It
// implements core.Schedule plus the NodeCounter and BitWindower optional
// interfaces, so the serving layer's frozen-schedule cache, AppendWindow
// row reuse, and packed WindowBits emission all work unchanged with edge
// slots as the entities.
type Schedule struct {
	name       string
	periods    []int64 // per edge slot; 0 = vacant
	offsets    []int64
	scratch    sync.Pool // *windowScratch
	bitScratch sync.Pool // *bitWindowScratch
}

type windowScratch struct {
	next    []int64
	happyAt [][]int
}

type bitWindowScratch struct {
	next []int64
	rows []uint64
}

var _ core.Schedule = (*Schedule)(nil)
var _ core.NodeCounter = (*Schedule)(nil)
var _ core.BitWindower = (*Schedule)(nil)

// FrozenSchedule snapshots the current layer assignment as an immutable
// random-access Schedule: slot s is happy exactly at t ≡ offset (mod
// period) of its layer. The snapshot stays valid while the live instance
// churns on — the serving layer's cache contract.
func (d *Dyn) FrozenSchedule() *Schedule {
	periods := make([]int64, len(d.slots))
	offsets := make([]int64, len(d.slots))
	for i := range d.slots {
		s := &d.slots[i]
		if !s.present {
			continue
		}
		l := &d.layers[s.layer]
		periods[i] = l.period
		offsets[i] = l.offset % l.period
	}
	return &Schedule{name: d.Name(), periods: periods, offsets: offsets}
}

// NewSchedule builds a Schedule directly from per-slot periods and
// offsets; period 0 marks a vacant slot. Used by tests and restore checks;
// the serving path goes through FrozenSchedule.
func NewSchedule(name string, periods, offsets []int64) *Schedule {
	return &Schedule{
		name:    name,
		periods: append([]int64(nil), periods...),
		offsets: append([]int64(nil), offsets...),
	}
}

// Name implements core.Schedule.
func (ps *Schedule) Name() string { return ps.name }

// Nodes implements core.NodeCounter: the entity count is edge slots.
func (ps *Schedule) Nodes() int { return len(ps.periods) }

// RandomAccess implements core.Schedule: every answer is closed form.
func (ps *Schedule) RandomAccess() bool { return true }

// HappySet implements core.Schedule: the edge slots meeting at holiday t,
// in increasing slot order. Disjoint layer classes guarantee the result is
// always a single layer — a matching.
func (ps *Schedule) HappySet(t int64) []int {
	var happy []int
	for v, p := range ps.periods {
		if p > 0 && t%p == ps.offsets[v] {
			happy = append(happy, v)
		}
	}
	return happy
}

// NextHappy implements core.Schedule: the smallest t ≥ max(from, 1) with
// t ≡ offset (mod period), or 0 for vacant slots and out-of-range queries.
func (ps *Schedule) NextHappy(v int, from int64) int64 {
	if v < 0 || v >= len(ps.periods) || from > core.MaxHoliday {
		return 0
	}
	p := ps.periods[v]
	if p == 0 {
		return 0
	}
	if from < 1 {
		from = 1
	}
	return from + ((ps.offsets[v]-from)%p+p)%p
}

// Window implements core.Schedule by walking every live slot's arithmetic
// progression through the window in windowBlock-sized chunks — the same
// O(n + window + events) shape as core's periodicSchedule, with vacant
// slots skipped up front.
func (ps *Schedule) Window(from, to int64, visit func(t int64, happy []int)) {
	if to > core.MaxHoliday {
		to = core.MaxHoliday
	}
	if from < 1 || to < from {
		return
	}
	n := len(ps.periods)
	ws, _ := ps.scratch.Get().(*windowScratch)
	if ws == nil {
		ws = &windowScratch{}
	}
	defer ps.scratch.Put(ws)
	if cap(ws.next) < n {
		ws.next = make([]int64, n)
	}
	next := ws.next[:n]
	for v := 0; v < n; v++ {
		next[v] = ps.NextHappy(v, from) // 0 for vacant slots
	}
	blockLen := to - from + 1
	if blockLen > windowBlock {
		blockLen = windowBlock
	}
	if int64(cap(ws.happyAt)) < blockLen {
		grown := make([][]int, blockLen)
		copy(grown, ws.happyAt[:cap(ws.happyAt)])
		ws.happyAt = grown
	}
	happyAt := ws.happyAt[:blockLen]
	for blo := from; blo <= to; blo += blockLen {
		bhi := blo + blockLen - 1
		if bhi > to {
			bhi = to
		}
		for i := range happyAt[:bhi-blo+1] {
			happyAt[i] = happyAt[i][:0]
		}
		for v := 0; v < n; v++ {
			t := next[v]
			if t == 0 {
				continue
			}
			for ; t <= bhi; t += ps.periods[v] {
				happyAt[t-blo] = append(happyAt[t-blo], v)
			}
			next[v] = t
		}
		for t := blo; t <= bhi; t++ {
			visit(t, happyAt[t-blo])
		}
	}
}

// WindowBits implements core.BitWindower: packed ⌈slots/64⌉-word rows
// OR-ed straight from the arithmetic progressions, vacant slots never set.
func (ps *Schedule) WindowBits(from, to int64, visit func(t int64, row graph.Bitset)) {
	if to > core.MaxHoliday {
		to = core.MaxHoliday
	}
	if from < 1 || to < from {
		return
	}
	n := len(ps.periods)
	words := (n + 63) / 64
	ws, _ := ps.bitScratch.Get().(*bitWindowScratch)
	if ws == nil {
		ws = &bitWindowScratch{}
	}
	defer ps.bitScratch.Put(ws)
	if cap(ws.next) < n {
		ws.next = make([]int64, n)
	}
	next := ws.next[:n]
	for v := 0; v < n; v++ {
		next[v] = ps.NextHappy(v, from)
	}
	blockLen := to - from + 1
	if blockLen > windowBlock {
		blockLen = windowBlock
	}
	need := int(blockLen) * words
	if cap(ws.rows) < need {
		ws.rows = make([]uint64, need)
	}
	rows := ws.rows[:need]
	for blo := from; blo <= to; blo += blockLen {
		bhi := blo + blockLen - 1
		if bhi > to {
			bhi = to
		}
		cnt := int(bhi - blo + 1)
		clear(rows[:cnt*words])
		for v := 0; v < n; v++ {
			t := next[v]
			if t == 0 {
				continue
			}
			wv, bit := v>>6, uint64(1)<<uint(v&63)
			for ; t <= bhi; t += ps.periods[v] {
				rows[int(t-blo)*words+wv] |= bit
			}
			next[v] = t
		}
		for t := blo; t <= bhi; t++ {
			i := int(t-blo) * words
			visit(t, graph.Bitset(rows[i:i+words]))
		}
	}
}
