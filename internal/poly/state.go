package poly

import (
	"fmt"

	"repro/internal/stats"
)

// EdgeState is one live edge in an exported instance, pinned to its slot
// so a restored schedule's bitmap rows stay byte-identical.
type EdgeState struct {
	Slot   int   `json:"slot"`
	U      int   `json:"u"`
	V      int   `json:"v"`
	Demand int64 `json:"demand"`
	Layer  int32 `json:"layer"`
}

// LayerState is one layer's residue class. Dead layers export as zero
// entries: they hold no class, but their indices must survive a round trip
// so the lowest-dead-index reuse rule picks the same slot after restore.
type LayerState struct {
	Period int64 `json:"period,omitempty"`
	Offset int64 `json:"offset,omitempty"`
	Target int64 `json:"target,omitempty"`
}

// State is the exact serialized form of a Dyn — everything churn replay
// needs to continue byte-identically. It rides inside the service layer's
// CommunityState for poly communities.
type State struct {
	N           int          `json:"n"`
	Code        string       `json:"code"`
	Slots       int          `json:"slots"`
	Edges       []EdgeState  `json:"edges,omitempty"`
	Layers      []LayerState `json:"layers,omitempty"`
	Relayerings int64        `json:"relayerings,omitempty"`
}

// Export snapshots the instance. The result shares nothing with the live
// instance.
func (d *Dyn) Export() State {
	st := State{
		N:           d.n,
		Code:        d.code,
		Slots:       len(d.slots),
		Layers:      make([]LayerState, len(d.layers)),
		Relayerings: d.relayered,
	}
	for i, l := range d.layers {
		st.Layers[i] = LayerState{Period: l.period, Offset: l.offset, Target: l.target}
	}
	for slot, s := range d.slots {
		if s.present {
			st.Edges = append(st.Edges, EdgeState{Slot: slot, U: s.u, V: s.v, Demand: s.demand, Layer: s.layer})
		}
	}
	return st
}

// Restore rebuilds an instance from an exported State, validating every
// structural invariant (Verify) before returning — corrupt or hostile
// snapshots are rejected, never half-applied.
func Restore(st State) (*Dyn, error) {
	d, err := New(st.N, st.Code)
	if err != nil {
		return nil, err
	}
	if st.Slots < 0 || st.Slots > (1<<31-1) || len(st.Edges) > st.Slots {
		return nil, fmt.Errorf("poly: state declares %d slots for %d edges", st.Slots, len(st.Edges))
	}
	d.slots = make([]edgeSlot, st.Slots)
	d.layers = make([]layer, len(st.Layers))
	for i, l := range st.Layers {
		d.layers[i] = layer{period: l.Period, offset: l.Offset, target: l.Target}
	}
	for _, e := range st.Edges {
		if e.Slot < 0 || e.Slot >= st.Slots || d.slots[e.Slot].present {
			return nil, fmt.Errorf("poly: edge (%d,%d) claims bad slot %d", e.U, e.V, e.Slot)
		}
		if e.U < 0 || e.V < 0 || e.U >= st.N || e.V >= st.N || e.U == e.V {
			return nil, fmt.Errorf("poly: state holds invalid edge (%d,%d)", e.U, e.V)
		}
		if e.Demand < 1 || e.Demand > MaxPeriod {
			return nil, fmt.Errorf("poly: edge (%d,%d) has demand %d", e.U, e.V, e.Demand)
		}
		if e.Layer < 0 || int(e.Layer) >= len(d.layers) {
			return nil, fmt.Errorf("poly: edge (%d,%d) references layer %d", e.U, e.V, e.Layer)
		}
		key := canon(e.U, e.V)
		if _, dup := d.byEdge[key]; dup {
			return nil, fmt.Errorf("poly: duplicate edge (%d,%d)", e.U, e.V)
		}
		d.slots[e.Slot] = edgeSlot{u: key[0], v: key[1], demand: e.Demand, present: true}
		d.byEdge[key] = e.Slot
		d.edges++
		d.attach(e.Slot, e.Layer)
	}
	d.relayered = st.Relayerings
	if err := d.Verify(); err != nil {
		return nil, err
	}
	return d, nil
}

// Stats summarizes an instance for reports and bench snapshots. All
// fields are finite for every instance, including the empty one.
type Stats struct {
	// Edges counts live edges.
	Edges int `json:"edges"`
	// Layers counts live layers (matchings with an allocated class).
	Layers int `json:"layers"`
	// Density is Σ 1/period over live layers (≤ 1 by construction).
	Density float64 `json:"density"`
	// DemandDensity is Σ 1/demand over live edges — the load demanded.
	DemandDensity float64 `json:"demand_density"`
	// MaxGapRatio is max over edges of period/demand; ≤ 1 iff every demand
	// is met.
	MaxGapRatio float64 `json:"max_gap_ratio"`
	// Fairness is Jain's index of per-edge service rates demand/period.
	Fairness float64 `json:"fairness"`
	// Relayerings counts full relayering rebuilds so far.
	Relayerings int64 `json:"relayerings"`
}

// Stats computes the instance summary.
func (d *Dyn) Stats() Stats {
	st := Stats{Edges: d.edges, Relayerings: d.relayered, Fairness: 1}
	for i := range d.layers {
		if d.layers[i].period > 0 {
			st.Layers++
			st.Density += 1 / float64(d.layers[i].period)
		}
	}
	var rates []float64
	for i := range d.slots {
		s := &d.slots[i]
		if !s.present {
			continue
		}
		st.DemandDensity += 1 / float64(s.demand)
		ratio := float64(d.layers[s.layer].period) / float64(s.demand)
		if ratio > st.MaxGapRatio {
			st.MaxGapRatio = ratio
		}
		rates = append(rates, 1/ratio)
	}
	if len(rates) > 0 {
		st.Fairness = stats.JainFairness(rates)
	}
	return st
}
