package coloring

import (
	"testing"

	"repro/internal/graph"
)

func TestDistributedDelta1OnZoo(t *testing.T) {
	for name, g := range zoo() {
		col, stats, err := DistributedDelta1(g, 77)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyDegreeBounded(g, col); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.N() > 0 && stats.Rounds == 0 && g.M() > 0 {
			t.Errorf("%s: expected at least one round", name)
		}
	}
}

func TestDistributedDelta1Deterministic(t *testing.T) {
	g := graph.GNP(150, 0.05, 4)
	a, _, err := DistributedDelta1(g, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := DistributedDelta1(g, 99)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d: colors differ across identical runs: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestDistributedDelta1DifferentSeedsDiffer(t *testing.T) {
	g := graph.GNP(150, 0.05, 4)
	a, _, _ := DistributedDelta1(g, 1)
	b, _, _ := DistributedDelta1(g, 2)
	same := true
	for v := range a {
		if a[v] != b[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical colorings (suspicious)")
	}
}

func TestDistributedListWithResiduePalettes(t *testing.T) {
	// Palettes may legitimately contain 0 (the §5.2 residue palettes do).
	g := graph.Clique(4)
	palettes := [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}}
	out, _, err := DistributedList(g, palettes, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for v, x := range out {
		if x < 0 || x > 3 {
			t.Fatalf("node %d got %d outside palette", v, x)
		}
		if seen[x] {
			t.Fatalf("clique nodes share value %d", x)
		}
		seen[x] = true
	}
}

func TestDistributedListInactiveNodes(t *testing.T) {
	g := graph.Path(5)
	palettes := make([][]int, 5)
	palettes[1] = []int{1, 2}
	palettes[3] = []int{1, 2}
	out, _, err := DistributedList(g, palettes, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 2, 4} {
		if out[v] != -1 {
			t.Errorf("inactive node %d got %d, want -1", v, out[v])
		}
	}
	for _, v := range []int{1, 3} {
		if out[v] != 1 && out[v] != 2 {
			t.Errorf("active node %d got %d, want palette entry", v, out[v])
		}
	}
}

func TestDistributedListPaletteSizeMismatch(t *testing.T) {
	g := graph.Path(3)
	if _, _, err := DistributedList(g, make([][]int, 2), 1); err == nil {
		t.Fatal("palette count mismatch must error")
	}
}

func TestDistributedListRespectsPalettes(t *testing.T) {
	// Adjacent nodes with disjoint palettes can decide in parallel.
	g := graph.CompleteBipartite(3, 3)
	palettes := [][]int{{10}, {10}, {10}, {20}, {20}, {20}}
	out, _, err := DistributedList(g, palettes, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if out[v] != 10 {
			t.Errorf("left node %d got %d, want 10", v, out[v])
		}
	}
	for v := 3; v < 6; v++ {
		if out[v] != 20 {
			t.Errorf("right node %d got %d, want 20", v, out[v])
		}
	}
}

func TestDistributedRoundsScaleGently(t *testing.T) {
	// With high probability the Johansson process finishes in O(log n)
	// iterations; allow a generous constant.
	g := graph.GNP(400, 0.02, 21)
	_, stats, err := DistributedDelta1(g, 22)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds > 200 {
		t.Errorf("distributed coloring took %d rounds on n=400; expected far fewer", stats.Rounds)
	}
}
