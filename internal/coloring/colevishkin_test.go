package coloring

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/prefixcode"
)

func TestColeVishkinProper3Coloring(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 7, 10, 33, 100, 1024, 4096} {
		g := graph.Cycle(n)
		col, stats, err := ColeVishkinCycle(g, n)
		if err != nil {
			t.Fatalf("C%d: %v", n, err)
		}
		if err := Verify(g, col); err != nil {
			t.Fatalf("C%d: %v", n, err)
		}
		if mc := col.MaxColor(); mc > 3 {
			t.Errorf("C%d: used color %d, want ≤ 3", n, mc)
		}
		if stats.Rounds == 0 || stats.Messages == 0 {
			t.Errorf("C%d: no distributed work recorded", n)
		}
	}
}

// The whole point: round complexity grows like log*, not log. Going from
// C_16 to C_4096 (256x the nodes) must add only a handful of rounds.
func TestColeVishkinLogStarRounds(t *testing.T) {
	rounds := func(n int) int {
		g := graph.Cycle(n)
		_, stats, err := ColeVishkinCycle(g, n)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Rounds
	}
	small, large := rounds(16), rounds(4096)
	if large > small+4 {
		t.Errorf("rounds grew from %d (C16) to %d (C4096); want log*-like growth", small, large)
	}
	if large > 20 {
		t.Errorf("C4096 took %d rounds; expected O(log* n) ≈ small constant", large)
	}
}

func TestColeVishkinRejectsNonCycles(t *testing.T) {
	if _, _, err := ColeVishkinCycle(graph.Star(5), 5); err == nil {
		t.Fatal("star must be rejected")
	}
	if _, _, err := ColeVishkinCycle(graph.Cycle(5), 4); err == nil {
		t.Fatal("size mismatch must be rejected")
	}
}

func TestCvStepAdjacentDistinct(t *testing.T) {
	// For any proper pair (a != b), step(a, b) != step(b, c) whenever the
	// triple a, b, c is properly colored: check exhaustively on small
	// values.
	for a := 0; a < 40; a++ {
		for b := 0; b < 40; b++ {
			if a == b {
				continue
			}
			for c := 0; c < 40; c++ {
				if b == c {
					continue
				}
				if cvStep(a, b) == cvStep(b, c) {
					t.Fatalf("cvStep collision: (%d,%d)->%d and (%d,%d)->%d",
						a, b, cvStep(a, b), b, c, cvStep(b, c))
				}
			}
		}
	}
}

func TestCvIterationsBudget(t *testing.T) {
	// Simulate the bound sequence directly: after cvIterations(n) steps of
	// B -> 2*bitlen(B-1), the strict color bound must be at most 6.
	for _, n := range []int{3, 7, 8, 100, 1 << 16, 1 << 30} {
		k := cvIterations(n)
		b := uint64(n)
		if b < 7 {
			b = 7
		}
		for i := 0; i < k && b > 6; i++ {
			nb := uint64(2 * bitsLen64(b-1))
			b = nb
		}
		if b > 6 {
			t.Errorf("n=%d: budget %d leaves bound %d > 6", n, k, b)
		}
	}
}

func bitsLen64(x uint64) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

// Deterministic end-to-end: Cole–Vishkin coloring feeding the §4 scheduler
// gives every node on any cycle a period of at most 2^rho(3) = 8, with no
// randomness anywhere.
func TestColeVishkinFeedsColorBound(t *testing.T) {
	n := 101
	g := graph.Cycle(n)
	col, _, err := ColeVishkinCycle(g, n)
	if err != nil {
		t.Fatal(err)
	}
	// Import cycle: core depends on coloring, so replicate the period
	// computation directly from the code lengths.
	for v := 0; v < n; v++ {
		if l := prefixcode.Rho(uint64(col[v])); l > 3 {
			t.Errorf("node %d color %d has omega length %d, want ≤ 3 (period ≤ 8)", v, col[v], l)
		}
	}
}
