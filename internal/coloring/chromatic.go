package coloring

import (
	"repro/internal/graph"
)

// ChromaticNumber computes χ(G) exactly by iterative-deepening backtracking
// (worst-case exponential; intended for small graphs). It bounds the search
// from below by a greedily grown clique and from above by smallest-last
// greedy coloring. The §1 reduction makes χ(G) exactly the best possible
// uniform schedule cycle, so experiment E12 cross-checks its periodic
// search against this.
func ChromaticNumber(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	if g.M() == 0 {
		return 1
	}
	lower := len(greedyClique(g))
	upperCol := SmallestLast(g)
	upper := upperCol.MaxColor()
	for k := lower; k < upper; k++ {
		if _, ok := KColoring(g, k); ok {
			return k
		}
	}
	return upper
}

// KColoring attempts to properly color g with colors 1..k, returning the
// coloring and true on success. Backtracking over nodes in smallest-last
// order with symmetry breaking (a node may open at most one new color).
func KColoring(g *graph.Graph, k int) (Coloring, bool) {
	n := g.N()
	col := make(Coloring, n)
	order := SmallestLastOrder(g)
	// Reverse: color high-degeneracy vertices first for stronger pruning.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	var rec func(idx, used int) bool
	rec = func(idx, used int) bool {
		if idx == n {
			return true
		}
		v := order[idx]
		limit := used + 1 // symmetry breaking: first unused color only
		if limit > k {
			limit = k
		}
		for c := 1; c <= limit; c++ {
			ok := true
			for _, u := range g.Neighbors(v) {
				if col[u] == c {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			col[v] = c
			nextUsed := used
			if c > used {
				nextUsed = c
			}
			if rec(idx+1, nextUsed) {
				return true
			}
			col[v] = 0
		}
		return false
	}
	if !rec(0, 0) {
		return nil, false
	}
	return col, true
}

// greedyClique grows a clique greedily from the highest-degree vertex,
// giving a cheap lower bound for the chromatic search.
func greedyClique(g *graph.Graph) []int {
	best := -1
	for v := 0; v < g.N(); v++ {
		if best == -1 || g.Degree(v) > g.Degree(best) {
			best = v
		}
	}
	if best == -1 {
		return nil
	}
	clique := []int{best}
	for _, u := range g.Neighbors(best) {
		inClique := true
		for _, w := range clique {
			if u != w && !g.Adjacent(u, w) {
				inClique = false
				break
			}
		}
		if inClique {
			clique = append(clique, u)
		}
	}
	return clique
}
