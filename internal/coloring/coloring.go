// Package coloring provides the graph-coloring substrate the paper's
// schedulers are built on: sequential greedy orders, DSATUR, smallest-last,
// bipartite 2-coloring, and a distributed Johansson-style randomized
// (Δ+1)-list-coloring running on the localsim LOCAL-model simulator — the
// black box inside the BEPS algorithm that the paper uses for initialization
// (§3) and for the restricted-palette phases of §5.2.
package coloring

import (
	"fmt"

	"repro/internal/graph"
)

// A Coloring assigns color col[v] >= 1 to every node; 0 means uncolored.
type Coloring []int

// MaxColor returns the largest color used (0 for an empty coloring).
func (c Coloring) MaxColor() int {
	max := 0
	for _, x := range c {
		if x > max {
			max = x
		}
	}
	return max
}

// CountColors returns the number of distinct colors used (ignoring 0).
func (c Coloring) CountColors() int {
	seen := make(map[int]bool)
	for _, x := range c {
		if x > 0 {
			seen[x] = true
		}
	}
	return len(seen)
}

// Verify checks that c is a proper, complete coloring of g: every node has a
// color >= 1 and no edge is monochromatic.
func Verify(g *graph.Graph, c Coloring) error {
	if len(c) != g.N() {
		return fmt.Errorf("coloring: have %d colors for %d nodes", len(c), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if c[v] < 1 {
			return fmt.Errorf("coloring: node %d is uncolored", v)
		}
		for _, u := range g.Neighbors(v) {
			if c[u] == c[v] {
				return fmt.Errorf("coloring: edge (%d,%d) is monochromatic with color %d", v, u, c[v])
			}
		}
	}
	return nil
}

// VerifyDegreeBounded checks Verify plus the BEPS/Johansson guarantee the
// paper relies on (§3): col(v) <= deg(v) + 1 for every node.
func VerifyDegreeBounded(g *graph.Graph, c Coloring) error {
	if err := Verify(g, c); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if c[v] > g.Degree(v)+1 {
			return fmt.Errorf("coloring: node %d has color %d > deg+1 = %d", v, c[v], g.Degree(v)+1)
		}
	}
	return nil
}
