package coloring

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/localsim"
)

// This file implements the Cole–Vishkin deterministic color reduction on
// oriented cycles: a 3-coloring in O(log* n) LOCAL rounds. The paper's
// related work (§1.3) centers on coloring in Linial's LOCAL model, and —
// pleasingly — Cole–Vishkin's round complexity is the very log* function
// that governs the paper's Theorem 4.2 period bound. On cycle-shaped
// communities it gives a deterministic 3-coloring, so the §4 scheduler
// hosts every family at least every 2^ρ(3) = 8 holidays with no randomness
// anywhere in the pipeline (experiment E17).
//
// Protocol, all nodes in lockstep (n is global knowledge):
//
//   - rounds 1..K (K precomputed from n): iterated bit reduction — each
//     node, knowing its successor's color, moves to 2i + bit_i(color)
//     where i is the lowest bit position differing from the successor.
//     After K rounds every color lies in {0,…,5}.
//   - rounds K+1..K+6: three shift-then-eliminate phases remove colors
//     5, 4, 3. Shifting (every node adopts its successor's color) makes
//     each color class independent with known neighbor colors, so the
//     eliminated class can safely pick from {0, 1, 2}.

// cvNode is the per-node state machine.
type cvNode struct {
	succ      int
	color     int
	succColor int
	prevColor int // our pre-shift color = predecessor's post-shift color
	k         int // reduction rounds
}

func (c *cvNode) Init(ctx *localsim.Context) {
	c.succ = cycleSuccessor(ctx)
	c.color = ctx.ID()
	ctx.Send(cyclePredecessor(ctx, c.succ), c.color)
}

func (c *cvNode) Round(ctx *localsim.Context, inbox []localsim.Inbound) {
	for _, m := range inbox {
		if m.From == c.succ {
			c.succColor = m.Payload.(int)
		}
	}
	r := ctx.Round()
	pred := cyclePredecessor(ctx, c.succ)
	switch {
	case r <= c.k:
		// Iterated Cole–Vishkin reduction step.
		c.color = cvStep(c.color, c.succColor)
		ctx.Send(pred, c.color)
	case (r-c.k)%2 == 1:
		// Shift: adopt the successor's color. Our predecessor adopts our
		// old color, so remember it.
		c.prevColor = c.color
		c.color = c.succColor
		ctx.Send(pred, c.color)
	default:
		// Eliminate the phase's target color (5, then 4, then 3).
		phase := (r - c.k - 1) / 2 // 0, 1, 2
		target := 5 - phase
		if c.color == target {
			for cand := 0; cand < 3; cand++ {
				if cand != c.succColor && cand != c.prevColor {
					c.color = cand
					break
				}
			}
		}
		if phase == 2 {
			ctx.Halt()
			return
		}
		ctx.Send(pred, c.color)
	}
}

// cvStep maps a (color, successor color) pair to 2i + bit_i(color) where i
// is the lowest differing bit position; adjacent results always differ.
func cvStep(color, succColor int) int {
	diff := color ^ succColor
	if diff == 0 {
		// Never happens on a properly colored cycle; keep the step total.
		return color
	}
	i := bits.TrailingZeros(uint(diff))
	return 2*i + (color>>uint(i))&1
}

// cvIterations returns a reduction-round budget guaranteeing that colors
// drop from {0,…,n−1} into {0,…,5}: iterate the strict bound
// B → 2·bitlen(B−1) until it fixes at 6, plus slack.
func cvIterations(n int) int {
	k := 0
	b := uint64(n)
	if b < 7 {
		b = 7
	}
	for b > 6 {
		b = 2 * uint64(bits.Len64(b-1))
		k++
	}
	return k + 2
}

// cycleSuccessor identifies the next node on the canonical cycle
// 0 → 1 → … → n−1 → 0 from the sorted neighbor list.
func cycleSuccessor(ctx *localsim.Context) int {
	id := ctx.ID()
	for _, u := range ctx.Neighbors() {
		if u == id+1 {
			return u
		}
	}
	return ctx.Neighbors()[0] // wrap-around for the largest id
}

// cyclePredecessor is the other neighbor.
func cyclePredecessor(ctx *localsim.Context, succ int) int {
	for _, u := range ctx.Neighbors() {
		if u != succ {
			return u
		}
	}
	return succ
}

// ColeVishkinCycle 3-colors the cycle C_n (as built by graph.Cycle: edges
// i—i+1 and n−1—0) deterministically in O(log* n) LOCAL rounds. Returns
// the coloring (colors 1..3) and run statistics.
func ColeVishkinCycle(g *graph.Graph, n int) (Coloring, RunStats, error) {
	if g.N() != n || n < 3 {
		return nil, RunStats{}, fmt.Errorf("coloring: cole-vishkin needs the cycle C_n, n >= 3")
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != 2 {
			return nil, RunStats{}, fmt.Errorf("coloring: node %d has degree %d; not a cycle", v, g.Degree(v))
		}
	}
	k := cvIterations(n)
	nodes := make([]*cvNode, n)
	net := localsim.New(g, func(v int) localsim.Algorithm {
		nodes[v] = &cvNode{k: k}
		return nodes[v]
	})
	rounds, done := net.Run(k + 7)
	stats := RunStats{Rounds: rounds, Messages: net.Messages()}
	if !done {
		return nil, stats, fmt.Errorf("coloring: cole-vishkin did not halt in %d rounds", k+7)
	}
	col := make(Coloring, n)
	for v, nd := range nodes {
		col[v] = nd.color + 1 // shift {0,1,2} to colors {1,2,3}
	}
	return col, stats, nil
}
