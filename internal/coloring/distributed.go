package coloring

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/localsim"
)

// RunStats reports the distributed cost of a coloring execution, the
// quantities Theorem 3.1 and §5.2 bound.
type RunStats struct {
	Rounds   int   // synchronous LOCAL rounds executed
	Messages int64 // total messages sent
}

// msgKind tags the two message types of the Johansson protocol.
type msgKind uint8

const (
	msgCandidate msgKind = iota
	msgDecided
)

type colorMsg struct {
	kind  msgKind
	color int
}

// johanssonNode runs the randomized list-coloring at one node: in odd rounds
// pick a uniform candidate from the remaining palette and broadcast it; in
// even rounds keep the candidate iff no conflicting candidate from a
// smaller-id undecided neighbor arrived, then broadcast the decision. A
// decided color is removed from every neighbor's palette. This is the simple
// distributed (deg+1)-coloring of Johansson [16], the black box inside BEPS
// [5]; with palettes of size deg(v)+1 it always terminates, using O(log n)
// iterations with high probability.
type johanssonNode struct {
	id           int
	palette      map[int]bool
	candidate    int
	hasCandidate bool
	decided      bool
	chosen       int
	failed       bool // palette exhausted (impossible for valid list sizes)
}

func (j *johanssonNode) Init(ctx *localsim.Context) {
	if len(j.palette) == 0 {
		// Inactive node (empty palette by construction): nothing to do.
		j.decided = true
		j.chosen = -1
		ctx.Halt()
	}
}

func (j *johanssonNode) Round(ctx *localsim.Context, inbox []localsim.Inbound) {
	// Process palette removals and conflicts from the previous round.
	conflict := false
	for _, m := range inbox {
		msg := m.Payload.(colorMsg)
		switch msg.kind {
		case msgDecided:
			delete(j.palette, msg.color)
		case msgCandidate:
			if j.hasCandidate && msg.color == j.candidate && m.From < j.id {
				conflict = true
			}
		}
	}
	if ctx.Round()%2 == 0 {
		// Resolution round: decide if our candidate survived.
		if j.hasCandidate && !conflict {
			j.decided = true
			j.chosen = j.candidate
			ctx.Broadcast(colorMsg{msgDecided, j.chosen})
			ctx.Halt()
		}
		j.hasCandidate = false
		return
	}
	// Candidate round: sample from what remains of the palette.
	if len(j.palette) == 0 {
		j.failed = true
		ctx.Halt()
		return
	}
	keys := make([]int, 0, len(j.palette))
	for c := range j.palette {
		keys = append(keys, c)
	}
	sort.Ints(keys) // deterministic iteration for reproducible sampling
	j.candidate = keys[ctx.Rand().IntN(len(keys))]
	j.hasCandidate = true
	ctx.Broadcast(colorMsg{msgCandidate, j.candidate})
}

// DistributedList runs the randomized list-coloring with an explicit palette
// per node. Nodes with nil palettes are inactive: they do not participate
// and receive assignment -1. For every active node the palette must exceed
// the number of its active neighbors, or the run may fail. Returns the
// assignment (chosen palette entries) and run statistics.
func DistributedList(g *graph.Graph, palettes [][]int, seed uint64) ([]int, RunStats, error) {
	if len(palettes) != g.N() {
		return nil, RunStats{}, fmt.Errorf("coloring: %d palettes for %d nodes", len(palettes), g.N())
	}
	nodes := make([]*johanssonNode, g.N())
	net := localsim.New(g, func(v int) localsim.Algorithm {
		pal := make(map[int]bool, len(palettes[v]))
		for _, c := range palettes[v] {
			pal[c] = true
		}
		nodes[v] = &johanssonNode{id: v, palette: pal}
		return nodes[v]
	}, localsim.WithSeed(seed))

	maxRounds := 4*g.N() + 16
	rounds, done := net.Run(maxRounds)
	stats := RunStats{Rounds: rounds, Messages: net.Messages()}
	if !done {
		return nil, stats, fmt.Errorf("coloring: distributed coloring did not converge in %d rounds", maxRounds)
	}
	out := make([]int, g.N())
	for v, node := range nodes {
		if node.failed {
			return nil, stats, fmt.Errorf("coloring: node %d exhausted its palette", v)
		}
		out[v] = node.chosen
	}
	return out, stats, nil
}

// DistributedDelta1 runs the distributed coloring with the standard palette
// {1, …, deg(v)+1} at every node. The result is a proper coloring with
// col(v) <= deg(v)+1 — the initialization the paper's Phased Greedy
// algorithm (§3) requires.
func DistributedDelta1(g *graph.Graph, seed uint64) (Coloring, RunStats, error) {
	palettes := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		pal := make([]int, g.Degree(v)+1)
		for i := range pal {
			pal[i] = i + 1
		}
		palettes[v] = pal
	}
	out, stats, err := DistributedList(g, palettes, seed)
	if err != nil {
		return nil, stats, err
	}
	return Coloring(out), stats, nil
}
