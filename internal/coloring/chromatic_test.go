package coloring

import (
	"testing"

	"repro/internal/graph"
)

func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
		b.AddEdge(5+i, 5+(i+2)%5)
		b.AddEdge(i, 5+i)
	}
	return b.Graph()
}

func TestChromaticNumberKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		chi  int
	}{
		{"empty", graph.Empty(4), 1},
		{"no nodes", graph.Empty(0), 0},
		{"K5", graph.Clique(5), 5},
		{"C6", graph.Cycle(6), 2},
		{"C7", graph.Cycle(7), 3},
		{"petersen", petersen(), 3},
		{"K34", graph.CompleteBipartite(3, 4), 2},
		{"grid4x4", graph.Grid(4, 4), 2},
		{"K222", graph.CompleteKPartite(2, 2, 2), 3},
		{"wheel5", wheel(5), 4}, // odd cycle + hub
		{"wheel6", wheel(6), 3}, // even cycle + hub
	}
	for _, tc := range cases {
		if got := ChromaticNumber(tc.g); got != tc.chi {
			t.Errorf("%s: χ = %d, want %d", tc.name, got, tc.chi)
		}
	}
}

// wheel returns C_n plus a hub adjacent to every rim vertex.
func wheel(n int) *graph.Graph {
	b := graph.NewBuilder(n + 1)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
		b.AddEdge(i, n)
	}
	return b.Graph()
}

func TestKColoringProducesProperColoring(t *testing.T) {
	g := petersen()
	col, ok := KColoring(g, 3)
	if !ok {
		t.Fatal("Petersen graph is 3-colorable")
	}
	if err := Verify(g, col); err != nil {
		t.Fatal(err)
	}
	if col.MaxColor() > 3 {
		t.Errorf("used %d colors, budget 3", col.MaxColor())
	}
	if _, ok := KColoring(g, 2); ok {
		t.Fatal("Petersen graph is not 2-colorable")
	}
}

func TestChromaticMatchesGreedyUpperBound(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := graph.GNP(14, 0.3, seed)
		chi := ChromaticNumber(g)
		greedy := SmallestLast(g).MaxColor()
		if chi > greedy {
			t.Fatalf("seed %d: χ = %d exceeds greedy %d", seed, chi, greedy)
		}
		if chi >= 1 {
			if col, ok := KColoring(g, chi); !ok || Verify(g, col) != nil {
				t.Fatalf("seed %d: χ-coloring with %d colors not realizable", seed, chi)
			}
		}
		if chi > 1 {
			if _, ok := KColoring(g, chi-1); ok {
				t.Fatalf("seed %d: graph colorable with χ-1 = %d colors", seed, chi-1)
			}
		}
	}
}
