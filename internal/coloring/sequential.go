package coloring

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Greedy colors nodes in the given order, assigning each the smallest color
// not used by an already-colored neighbor. Any order yields col(v) <=
// deg(v) + 1, the property the paper's §3 initialization needs.
func Greedy(g *graph.Graph, order []int) Coloring {
	col := make(Coloring, g.N())
	// used marks colors taken in the current node's neighborhood; stamped by
	// node index to avoid clearing between iterations.
	used := make([]int, g.N()+2)
	for i := range used {
		used[i] = -1
	}
	for stamp, v := range order {
		for _, u := range g.Neighbors(v) {
			if col[u] > 0 && col[u] < len(used) {
				used[col[u]] = stamp
			}
		}
		c := 1
		for used[c] == stamp {
			c++
		}
		col[v] = c
	}
	return col
}

// IdentityOrder returns 0..n-1.
func IdentityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// ByDecreasingDegree returns the nodes of g sorted by decreasing degree,
// ties broken by id — the processing order of the §5.1 sequential
// degree-bound algorithm.
func ByDecreasingDegree(g *graph.Graph) []int {
	order := IdentityOrder(g.N())
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order
}

// SmallestLastOrder returns a degeneracy ordering: repeatedly remove a
// minimum-degree node; the reverse removal order. Greedy coloring in this
// order uses at most degeneracy+1 colors.
func SmallestLastOrder(g *graph.Graph) []int {
	n := g.N()
	deg := g.Degrees()
	removed := make([]bool, n)
	// Bucket queue over degrees.
	buckets := make([][]int, n+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	order := make([]int, 0, n)
	cur := 0
	for len(order) < n {
		if cur > n {
			break
		}
		for cur <= n && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > n {
			break
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		order = append(order, v)
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < cur {
					cur = deg[u]
				}
			}
		}
	}
	// Reverse: color the last-removed (lowest residual degree) nodes last.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// SmallestLast colors g greedily in smallest-last (degeneracy) order.
func SmallestLast(g *graph.Graph) Coloring {
	return Greedy(g, SmallestLastOrder(g))
}

// DSATUR colors g with the DSATUR heuristic: repeatedly color the node with
// the most distinctly-colored neighbors (saturation), breaking ties by
// residual degree then id.
func DSATUR(g *graph.Graph) Coloring {
	n := g.N()
	col := make(Coloring, n)
	satSets := make([]map[int]bool, n)
	for v := range satSets {
		satSets[v] = make(map[int]bool)
	}
	for colored := 0; colored < n; colored++ {
		best, bestSat, bestDeg := -1, -1, -1
		for v := 0; v < n; v++ {
			if col[v] != 0 {
				continue
			}
			sat, deg := len(satSets[v]), g.Degree(v)
			if sat > bestSat || (sat == bestSat && deg > bestDeg) {
				best, bestSat, bestDeg = v, sat, deg
			}
		}
		c := 1
		for satSets[best][c] {
			c++
		}
		col[best] = c
		for _, u := range g.Neighbors(best) {
			if col[u] == 0 {
				satSets[u][c] = true
			}
		}
	}
	return col
}

// Bipartite returns the 2-coloring of a bipartite graph (colors 1 and 2), or
// an error if g contains an odd cycle. This realizes the intro's intergroup
// marriage example: with 2 colors every family is happy every other year.
func Bipartite(g *graph.Graph) (Coloring, error) {
	side, ok := g.Bipartition()
	if !ok {
		return nil, fmt.Errorf("coloring: graph is not bipartite")
	}
	col := make(Coloring, g.N())
	for v, s := range side {
		col[v] = s + 1
	}
	return col, nil
}
