package coloring

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/localsim"
)

// runJohanssonWithDrops executes the Johansson protocol over a lossy
// network. With message loss the protocol's safety argument breaks (a lost
// "decided" message lets a neighbor reuse the color), so the outcome must
// be treated as untrusted and run through Verify.
func runJohanssonWithDrops(t *testing.T, g *graph.Graph, drop float64, seed uint64) Coloring {
	t.Helper()
	nodes := make([]*johanssonNode, g.N())
	net := localsim.New(g, func(v int) localsim.Algorithm {
		pal := make(map[int]bool, g.Degree(v)+1)
		for c := 1; c <= g.Degree(v)+1; c++ {
			pal[c] = true
		}
		nodes[v] = &johanssonNode{id: v, palette: pal}
		return nodes[v]
	}, localsim.WithSeed(seed), localsim.WithDropRate(drop))
	net.Run(4*g.N() + 16)
	col := make(Coloring, g.N())
	for v, n := range nodes {
		col[v] = n.chosen
	}
	return col
}

// Failure injection: under heavy message loss the distributed coloring can
// emit improper or incomplete colorings — and the verifier must catch every
// such outcome rather than silently accepting it. (This is the test that
// justifies running Verify on every distributed result before building a
// scheduler on top of it.)
func TestVerifierCatchesLossyColorings(t *testing.T) {
	g := graph.Clique(12) // dense: every lost decision risks a collision
	sawFailure := false
	for seed := uint64(0); seed < 20; seed++ {
		col := runJohanssonWithDrops(t, g, 0.4, seed)
		if err := Verify(g, col); err != nil {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Error("expected at least one verification failure at 40% message loss on K12")
	}
}

// Sanity: with zero drop rate the same harness always verifies — the
// verifier only fires on real corruption.
func TestLossyHarnessCleanAtZeroDrop(t *testing.T) {
	g := graph.Clique(12)
	for seed := uint64(0); seed < 5; seed++ {
		col := runJohanssonWithDrops(t, g, 0, seed)
		if err := VerifyDegreeBounded(g, col); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
