package coloring

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// zoo returns the graph families used across coloring tests.
func zoo() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"clique8":   graph.Clique(8),
		"cycle9":    graph.Cycle(9),
		"cycle10":   graph.Cycle(10),
		"star20":    graph.Star(20),
		"path15":    graph.Path(15),
		"grid5x6":   graph.Grid(5, 6),
		"gnp100":    graph.GNP(100, 0.08, 7),
		"gnp200":    graph.GNP(200, 0.03, 8),
		"tree50":    graph.RandomTree(50, 9),
		"regular6":  graph.RandomRegular(60, 6, 10),
		"powerlaw":  graph.PreferentialAttachment(120, 3, 11),
		"bipartite": graph.RandomBipartite(30, 40, 0.2, 12),
		"kpartite":  graph.CompleteKPartite(4, 5, 6),
		"singleton": graph.Empty(1),
		"edgeless":  graph.Empty(12),
	}
}

func TestGreedyProperAndDegreeBounded(t *testing.T) {
	for name, g := range zoo() {
		col := Greedy(g, IdentityOrder(g.N()))
		if err := VerifyDegreeBounded(g, col); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGreedyDecreasingDegreeOrder(t *testing.T) {
	for name, g := range zoo() {
		col := Greedy(g, ByDecreasingDegree(g))
		if err := VerifyDegreeBounded(g, col); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSmallestLast(t *testing.T) {
	for name, g := range zoo() {
		col := SmallestLast(g)
		if err := VerifyDegreeBounded(g, col); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// A tree has degeneracy 1, so smallest-last uses at most 2 colors even
	// though the max degree can be large.
	tree := graph.RandomTree(200, 5)
	if c := SmallestLast(tree).MaxColor(); c > 2 {
		t.Errorf("smallest-last used %d colors on a tree, want <= 2", c)
	}
}

func TestDSATUR(t *testing.T) {
	for name, g := range zoo() {
		col := DSATUR(g)
		if err := VerifyDegreeBounded(g, col); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// DSATUR is exact on bipartite graphs.
	bip := graph.RandomBipartite(25, 25, 0.3, 3)
	if bip.M() > 0 {
		if c := DSATUR(bip).MaxColor(); c != 2 {
			t.Errorf("DSATUR used %d colors on a bipartite graph, want 2", c)
		}
	}
}

func TestBipartiteColoring(t *testing.T) {
	g := graph.CompleteBipartite(5, 9)
	col, err := Bipartite(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, col); err != nil {
		t.Fatal(err)
	}
	if col.MaxColor() != 2 || col.CountColors() != 2 {
		t.Errorf("bipartite coloring used %d colors, want 2", col.CountColors())
	}
	if _, err := Bipartite(graph.Cycle(5)); err == nil {
		t.Error("odd cycle must fail bipartite coloring")
	}
}

func TestByDecreasingDegreeOrdering(t *testing.T) {
	g := graph.Star(6)
	order := ByDecreasingDegree(g)
	if order[0] != 0 {
		t.Errorf("star center must come first, got %v", order)
	}
	for i := 1; i+1 < len(order); i++ {
		if g.Degree(order[i]) < g.Degree(order[i+1]) {
			t.Errorf("order not by decreasing degree: %v", order)
		}
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	g := graph.Path(3)
	if err := Verify(g, Coloring{1, 1, 2}); err == nil {
		t.Error("monochromatic edge must be caught")
	}
	if err := Verify(g, Coloring{1, 0, 1}); err == nil {
		t.Error("uncolored node must be caught")
	}
	if err := Verify(g, Coloring{1, 2}); err == nil {
		t.Error("length mismatch must be caught")
	}
	if err := VerifyDegreeBounded(g, Coloring{3, 2, 3}); err == nil {
		t.Error("color above deg+1 must be caught (endpoints have degree 1)")
	}
}

func TestColoringStats(t *testing.T) {
	c := Coloring{3, 1, 3, 2}
	if c.MaxColor() != 3 {
		t.Errorf("max color = %d, want 3", c.MaxColor())
	}
	if c.CountColors() != 3 {
		t.Errorf("count = %d, want 3", c.CountColors())
	}
	var empty Coloring
	if empty.MaxColor() != 0 || empty.CountColors() != 0 {
		t.Error("empty coloring stats must be 0")
	}
}

// Property: greedy stays proper and degree-bounded on random graphs and
// random orders.
func TestGreedyQuick(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%50)
		g := graph.GNP(n, 0.25, seed)
		col := Greedy(g, IdentityOrder(g.N()))
		return VerifyDegreeBounded(g, col) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
