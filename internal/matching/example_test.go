package matching_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matching"
)

// On a path of four families (three couples), three of the four parents
// can host at least one couple simultaneously — a tree always satisfies
// all but one.
func ExampleMaxSatisfaction() {
	g := graph.Path(4)
	res := matching.MaxSatisfaction(g)
	fmt.Println("satisfied:", res.Count, "of", g.N())
	fmt.Println("optimal:", res.Count == matching.MaxSatisfactionHK(g))
	// Output:
	// satisfied: 3 of 4
	// optimal: true
}

// Couples alternating between their two parent households keep every
// parent's unsatisfied streak at one year or less.
func ExampleMaxUnsatisfiedRun() {
	g := graph.Cycle(5)
	runs := matching.MaxUnsatisfiedRun(g, 10)
	worst := int64(0)
	for _, r := range runs {
		if r > worst {
			worst = r
		}
	}
	fmt.Println("worst unsatisfied streak:", worst)
	// Output:
	// worst unsatisfied streak: 1
}
