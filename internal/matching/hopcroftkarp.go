// Package matching implements Appendix A.3 of the paper: maximum
// satisfaction (every parent hosts at least one couple) via the general
// Hopcroft–Karp bipartite matching algorithm [15] and the paper's
// specialized linear-time peeling algorithm, plus the alternating schedule
// that bounds every parent's unsatisfied streak by one year.
package matching

// HopcroftKarp computes a maximum matching of a bipartite graph in
// O(√V · E). The graph is given as adjacency lists from the nLeft left
// vertices to right vertices in [0, nRight). It returns matchL (the right
// partner of each left vertex, or -1) and the matching size.
func HopcroftKarp(nLeft, nRight int, adj [][]int) (matchL []int, size int) {
	const inf = int(^uint(0) >> 1)
	matchL = make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return matchL, size
}

// VerifyMatching checks that matchL is a valid matching of the bipartite
// graph: partners are actual neighbors and no right vertex is reused.
func VerifyMatching(nRight int, adj [][]int, matchL []int) bool {
	usedR := make([]bool, nRight)
	for u, v := range matchL {
		if v == -1 {
			continue
		}
		if v < 0 || v >= nRight || usedR[v] {
			return false
		}
		ok := false
		for _, w := range adj[u] {
			if w == v {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
		usedR[v] = true
	}
	return true
}
