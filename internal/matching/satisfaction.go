package matching

import (
	"repro/internal/graph"
)

// SatResult is a maximum-satisfaction assignment: couple e = g.Edges()[i]
// visits parent CoupleHost[i] (or -1 if it may go anywhere), and Satisfied
// marks parents hosting at least one couple.
type SatResult struct {
	CoupleHost []int
	Satisfied  []bool
	Count      int
}

// MaxSatisfaction computes a maximum-satisfaction assignment with the
// paper's linear-time algorithm (Theorem A.2): repeatedly match single-child
// parents to their only remaining couple (after which the matched parent has
// no remaining couples, so the residue induced on unsatisfied parents has
// minimum degree ≥ 2); then every residual component contains a cycle —
// orient one cycle consistently so each cycle vertex hosts its predecessor
// edge, and grow outward assigning each newly reached parent the edge that
// reached it. Exactly n − (acyclic components) parents end satisfied, which
// is optimal: a tree of k parents has only k−1 couples to hand out.
func MaxSatisfaction(g *graph.Graph) SatResult {
	n := g.N()
	edges := g.Edges()
	res := SatResult{
		CoupleHost: make([]int, len(edges)),
		Satisfied:  make([]bool, n),
	}
	for i := range res.CoupleHost {
		res.CoupleHost[i] = -1
	}
	alive := make([]bool, len(edges))
	deg := make([]int, n)
	incident := make([][]int, n)
	for i, e := range edges {
		alive[i] = true
		deg[e.U]++
		deg[e.V]++
		incident[e.U] = append(incident[e.U], i)
		incident[e.V] = append(incident[e.V], i)
	}
	other := func(i, p int) int {
		if edges[i].U == p {
			return edges[i].V
		}
		return edges[i].U
	}
	assign := func(i, p int) {
		res.CoupleHost[i] = p
		res.Satisfied[p] = true
		res.Count++
		alive[i] = false
		deg[edges[i].U]--
		deg[edges[i].V]--
	}

	// Phase 1: peel single-child parents.
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if deg[v] == 1 {
			queue = append(queue, v)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		if res.Satisfied[p] || deg[p] != 1 {
			continue // stale entry: satisfied meanwhile or degree changed
		}
		for _, i := range incident[p] {
			if !alive[i] {
				continue
			}
			q := other(i, p)
			assign(i, p)
			if deg[q] == 1 && !res.Satisfied[q] {
				queue = append(queue, q)
			}
			break
		}
	}

	// Phase 2: the residue induced on unsatisfied parents has min degree ≥ 2
	// (phase-1 winners always end with zero alive couples), so each residual
	// component has a cycle.
	visited := make([]bool, n)
	for s := 0; s < n; s++ {
		if visited[s] || res.Satisfied[s] || deg[s] == 0 {
			continue
		}
		cycle := findResidualCycle(s, n, incident, alive, other)
		// Orient the cycle: vertex cycle[k+1] hosts the edge from cycle[k].
		for k, i := range cycle.edges {
			host := cycle.verts[(k+1)%len(cycle.verts)]
			assign(i, host)
		}
		// Grow outward from the satisfied cycle: any alive edge reaching an
		// unsatisfied parent is handed to it.
		grow := append([]int(nil), cycle.verts...)
		for _, v := range grow {
			visited[v] = true
		}
		for gi := 0; gi < len(grow); gi++ {
			v := grow[gi]
			for _, i := range incident[v] {
				if !alive[i] {
					continue
				}
				w := other(i, v)
				if !res.Satisfied[w] {
					assign(i, w)
					grow = append(grow, w)
					visited[w] = true
				}
			}
		}
	}
	return res
}

// residualCycle is a simple cycle in the residual graph: verts[k] and
// verts[k+1] are joined by edges[k], and edges[len-1] closes back to
// verts[0].
type residualCycle struct {
	verts []int
	edges []int
}

// findResidualCycle locates a simple cycle through the residual component of
// s via iterative DFS over alive edges (one must exist: min degree ≥ 2).
func findResidualCycle(s, n int, incident [][]int, alive []bool, other func(int, int) int) residualCycle {
	parentV := make([]int, n)
	parentE := make([]int, n)
	seen := make([]bool, n)
	for i := range parentV {
		parentV[i], parentE[i] = -1, -1
	}
	seen[s] = true
	stack := []int{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, i := range incident[v] {
			if !alive[i] || i == parentE[v] {
				continue
			}
			w := other(i, v)
			if !seen[w] {
				seen[w] = true
				parentV[w] = v
				parentE[w] = i
				stack = append(stack, w)
				continue
			}
			// Non-tree edge v—w closes a cycle: climb from v to the root
			// collecting its tree path, then climb from w until the first
			// vertex shared with that path (the meeting point m; the root s
			// is shared in the worst case, so the climb terminates).
			onPath := make([]int, n)
			for k := range onPath {
				onPath[k] = -1
			}
			pathV := []int{v}
			var pathE []int
			onPath[v] = 0
			for x := v; x != s; {
				pathE = append(pathE, parentE[x])
				x = parentV[x]
				onPath[x] = len(pathV)
				pathV = append(pathV, x)
			}
			wPathV := []int{w}
			var wPathE []int
			x := w
			for onPath[x] == -1 {
				wPathE = append(wPathE, parentE[x])
				x = parentV[x]
				wPathV = append(wPathV, x)
			}
			idx := onPath[x]
			// Assemble v → … → m (up v's path) → … → w (down w's path) → v.
			verts := append([]int(nil), pathV[:idx+1]...)
			es := append([]int(nil), pathE[:idx]...)
			for k := len(wPathV) - 2; k >= 0; k-- {
				verts = append(verts, wPathV[k])
			}
			for k := len(wPathE) - 1; k >= 0; k-- {
				es = append(es, wPathE[k])
			}
			es = append(es, i)
			return residualCycle{verts: verts, edges: es}
		}
	}
	panic("matching: residual component without a cycle (phase-1 invariant broken)")
}

// MaxSatisfactionHK computes the optimum satisfaction count via
// Hopcroft–Karp on the parent–couple incidence graph: parent p can be
// matched to any incident couple, and the matching size is the number of
// simultaneously satisfiable parents. It is the Appendix A.3 baseline used
// to validate the linear-time algorithm.
func MaxSatisfactionHK(g *graph.Graph) int {
	edges := g.Edges()
	adj := make([][]int, g.N())
	for i, e := range edges {
		adj[e.U] = append(adj[e.U], i)
		adj[e.V] = append(adj[e.V], i)
	}
	_, size := HopcroftKarp(g.N(), len(edges), adj)
	return size
}

// MaxSatisfactionFormula returns the closed-form optimum: n minus the number
// of acyclic components (isolated parents included). A component containing
// a cycle satisfies everyone; a tree component of k parents has only k−1
// couples and satisfies k−1.
func MaxSatisfactionFormula(g *graph.Graph) int {
	count := 0
	for _, comp := range g.Components() {
		inComp := make(map[int]bool, len(comp))
		for _, v := range comp {
			inComp[v] = true
		}
		edgesInside := 0
		for _, v := range comp {
			for _, u := range g.Neighbors(v) {
				if inComp[u] && v < u {
					edgesInside++
				}
			}
		}
		if edgesInside >= len(comp) {
			count += len(comp)
		} else {
			count += len(comp) - 1
		}
	}
	return count
}
