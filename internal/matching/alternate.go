package matching

import "repro/internal/graph"

// AlternatingHost implements the closing remark of Appendix A.3: each couple
// simply alternates between its two parent households, so every parent with
// at least one married child is satisfied at least every other year — no
// parent is unsatisfied for more than one consecutive year.
func AlternatingHost(e graph.Edge, year int64) int {
	e = e.Canon()
	if year%2 == 0 {
		return e.U
	}
	return e.V
}

// SatisfiedAt reports whether parent p hosts at least one couple in the
// alternating schedule at the given year.
func SatisfiedAt(g *graph.Graph, p int, year int64) bool {
	for _, u := range g.Neighbors(p) {
		if AlternatingHost(graph.Edge{U: p, V: u}, year) == p {
			return true
		}
	}
	return false
}

// MaxUnsatisfiedRun simulates the alternating schedule over the horizon and
// returns the longest unsatisfied streak of each parent. For every
// non-isolated parent this is at most 1.
func MaxUnsatisfiedRun(g *graph.Graph, horizon int64) []int64 {
	runs := make([]int64, g.N())
	current := make([]int64, g.N())
	for year := int64(1); year <= horizon; year++ {
		for p := 0; p < g.N(); p++ {
			if SatisfiedAt(g, p, year) {
				current[p] = 0
			} else {
				current[p]++
				if current[p] > runs[p] {
					runs[p] = current[p]
				}
			}
		}
	}
	return runs
}
