package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestHopcroftKarpPerfectMatching(t *testing.T) {
	// K(3,3): perfect matching of size 3.
	adj := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	matchL, size := HopcroftKarp(3, 3, adj)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	if !VerifyMatching(3, adj, matchL) {
		t.Fatal("invalid matching")
	}
}

func TestHopcroftKarpKnownSize(t *testing.T) {
	// Left 0 and 1 both only reach right 0: max matching 2 via 2->1.
	adj := [][]int{{0}, {0}, {0, 1}}
	_, size := HopcroftKarp(3, 2, adj)
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
}

func TestHopcroftKarpAugmentingPath(t *testing.T) {
	// Classic case that needs augmentation: greedy can match 0-0, blocking
	// 1; HK must find the alternating path.
	adj := [][]int{{0, 1}, {0}}
	matchL, size := HopcroftKarp(2, 2, adj)
	if size != 2 {
		t.Fatalf("size = %d, want 2 (needs augmenting path)", size)
	}
	if matchL[1] != 0 || matchL[0] != 1 {
		t.Errorf("matchL = %v, want [1 0]", matchL)
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	if _, size := HopcroftKarp(0, 0, nil); size != 0 {
		t.Error("empty graph has empty matching")
	}
	adj := make([][]int, 4)
	if _, size := HopcroftKarp(4, 3, adj); size != 0 {
		t.Error("edgeless graph has empty matching")
	}
}

func TestVerifyMatchingCatchesReuse(t *testing.T) {
	adj := [][]int{{0}, {0}}
	if VerifyMatching(1, adj, []int{0, 0}) {
		t.Error("right-vertex reuse must fail verification")
	}
	if VerifyMatching(2, [][]int{{0}, {0}}, []int{1, -1}) {
		t.Error("non-neighbor partner must fail verification")
	}
}

// Theorem A.2 cross-check: the linear-time algorithm, Hopcroft–Karp on the
// parent–couple incidence graph, and the closed-form count all agree.
func TestSatisfactionAgreesWithHKAndFormula(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path5":      graph.Path(5),
		"cycle6":     graph.Cycle(6),
		"cycle7":     graph.Cycle(7),
		"star9":      graph.Star(9),
		"clique7":    graph.Clique(7),
		"tree40":     graph.RandomTree(40, 1),
		"gnp sparse": graph.GNP(60, 0.03, 2),
		"gnp mid":    graph.GNP(60, 0.08, 3),
		"grid":       graph.Grid(5, 7),
		"two edges":  graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}),
		"edgeless":   graph.Empty(5),
		"triangle+tail": graph.MustFromEdges(5, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 4}}),
	}
	for name, g := range cases {
		res := MaxSatisfaction(g)
		hk := MaxSatisfactionHK(g)
		formula := MaxSatisfactionFormula(g)
		if res.Count != hk {
			t.Errorf("%s: linear-time %d != Hopcroft-Karp %d", name, res.Count, hk)
		}
		if res.Count != formula {
			t.Errorf("%s: linear-time %d != closed form %d", name, res.Count, formula)
		}
		validateSatAssignment(t, name, g, res)
	}
}

// validateSatAssignment checks structural validity: hosts are endpoints,
// each satisfied parent hosts >= 1 couple, count is consistent.
func validateSatAssignment(t *testing.T, name string, g *graph.Graph, res SatResult) {
	t.Helper()
	edges := g.Edges()
	hostedBy := make(map[int]int)
	for i, h := range res.CoupleHost {
		if h == -1 {
			continue
		}
		if h != edges[i].U && h != edges[i].V {
			t.Errorf("%s: couple %v assigned to non-endpoint %d", name, edges[i], h)
		}
		hostedBy[h]++
	}
	count := 0
	for p, sat := range res.Satisfied {
		if sat {
			count++
			if hostedBy[p] == 0 {
				t.Errorf("%s: parent %d marked satisfied but hosts nothing", name, p)
			}
		}
	}
	if count != res.Count {
		t.Errorf("%s: count %d != marked %d", name, res.Count, count)
	}
}

// Property: agreement holds on random graphs.
func TestSatisfactionQuick(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%40)
		g := graph.GNP(n, 0.15, seed)
		res := MaxSatisfaction(g)
		return res.Count == MaxSatisfactionHK(g) && res.Count == MaxSatisfactionFormula(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSatisfactionTreeLosesExactlyOne(t *testing.T) {
	g := graph.RandomTree(30, 7)
	res := MaxSatisfaction(g)
	if res.Count != 29 {
		t.Errorf("tree satisfaction = %d, want n-1 = 29", res.Count)
	}
}

func TestSatisfactionCycleSatisfiesAll(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 13} {
		g := graph.Cycle(n)
		res := MaxSatisfaction(g)
		if res.Count != n {
			t.Errorf("C%d satisfaction = %d, want all %d", n, res.Count, n)
		}
	}
}

func TestAlternatingScheduleBound(t *testing.T) {
	g := graph.GNP(50, 0.08, 11)
	runs := MaxUnsatisfiedRun(g, 50)
	for p := 0; p < g.N(); p++ {
		if g.Degree(p) == 0 {
			if runs[p] != 50 {
				t.Errorf("isolated parent %d run = %d, want never satisfied", p, runs[p])
			}
			continue
		}
		if runs[p] > 1 {
			t.Errorf("parent %d unsatisfied run = %d, want ≤ 1 (Appendix A.3)", p, runs[p])
		}
	}
}

func TestAlternatingHostFlips(t *testing.T) {
	e := graph.Edge{U: 3, V: 7}
	h0, h1 := AlternatingHost(e, 0), AlternatingHost(e, 1)
	if h0 == h1 {
		t.Fatal("consecutive years must alternate hosts")
	}
	if h0 != AlternatingHost(e, 2) {
		t.Fatal("period must be exactly 2")
	}
	if AlternatingHost(graph.Edge{U: 7, V: 3}, 0) != h0 {
		t.Fatal("orientation of the edge literal must not matter")
	}
}
