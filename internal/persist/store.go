// Package persist is the durability subsystem of the serving layer: a
// schema-versioned JSON snapshot of every community (graph, prefix code,
// exact coloring, cache version — enough to answer byte-identically after a
// restart) plus an append-only churn WAL of create/delete/add-family/
// marry/divorce records with fsync batching. Recovery loads the snapshot
// and replays only the WAL records newer than each community's snapshotted
// sequence, so a crash at any point — including between writing a snapshot
// and compacting the WAL, or mid-append (torn final record) — restores a
// consistent registry.
//
// Layout under the data directory:
//
//	snapshot.json — the latest registry snapshot (atomic tmp+rename)
//	wal.jsonl     — churn records since, one JSON object per line
//
// The write-ahead contract is service.Journal's: the registry logs every
// mutation before applying it, so an acknowledged op is in the WAL buffer
// before the client hears about it. With the default SyncBatch policy the
// buffer is fsynced at most SyncInterval later (group commit); SyncAlways
// fsyncs per record.
package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/service"
)

// SnapshotSchemaVersion identifies the snapshot.json layout; Load refuses
// snapshots written by an incompatible layout instead of misreading them.
// Version 2 added the poly-kind community fields (kind, default_demand,
// poly) — purely additive, so schema-1 snapshots (all-classic by
// construction) still read correctly.
const SnapshotSchemaVersion = 2

// minSnapshotSchema is the oldest snapshot layout this build still reads.
const minSnapshotSchema = 1

// DefaultSyncInterval is the group-commit window of the SyncBatch policy.
const DefaultSyncInterval = 5 * time.Millisecond

// snapshotFile and walFile name the two artifacts in the data directory.
const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.jsonl"
)

// Snapshot is the on-disk registry snapshot. Seq is the WAL cut-point the
// snapshot was taken at: every record at or below it (per community, via
// CommunityState.Seq) is reflected in Communities, so replay starts after
// it and compaction may drop everything up to it.
type Snapshot struct {
	Schema      int                      `json:"schema"`
	SavedAt     string                   `json:"saved_at"` // RFC3339
	Seq         uint64                   `json:"seq"`
	Communities []service.CommunityState `json:"communities"`
}

// Options tune a Store.
type Options struct {
	// Sync selects the WAL fsync policy; the zero value is SyncBatch.
	Sync SyncPolicy
	// SyncInterval is the SyncBatch group-commit window; ≤ 0 uses
	// DefaultSyncInterval.
	SyncInterval time.Duration
}

// Store is an open data directory: the WAL accepting appends plus the
// snapshot read at open time. One process owns a Store at a time.
type Store struct {
	dir  string
	opts Options
	wal  *WAL
	// mu serializes SaveSnapshot and Close: a periodic snapshot and the
	// shutdown snapshot may race in the daemon, and two writers sharing
	// snapshot.json.tmp would corrupt the file they rename in.
	mu   sync.Mutex
	snap *Snapshot // nil when the directory had none
	// pending holds the records scanned at Open so the first Load does not
	// re-read and re-parse the whole WAL; cleared after use. seqAtOpen
	// detects appends between Open and Load that would stale it.
	pending   []walRecord
	seqAtOpen uint64
}

// Open creates dir if needed, reads any existing snapshot, and opens the
// WAL for appending (recovering a torn tail). It does not touch a registry;
// call Load to build one.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create data dir: %w", err)
	}
	snap, err := readSnapshot(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	var minSeq uint64
	if snap != nil {
		minSeq = snap.Seq
		for _, st := range snap.Communities {
			if st.Seq > minSeq {
				minSeq = st.Seq
			}
		}
	}
	wal, recs, err := openWAL(filepath.Join(dir, walFile), opts.Sync, opts.SyncInterval, minSeq)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, opts: opts, wal: wal, snap: snap, pending: recs, seqAtOpen: wal.Seq()}, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Journal returns the WAL as the registry hook: pass it to
// Registry.SetJournal (Load already does).
func (s *Store) Journal() service.Journal { return s.wal }

// Load reconstructs a registry from the snapshot plus the WAL records newer
// than it, then attaches the WAL as the registry's journal so subsequent
// mutations are durable. Restored communities answer window and next-happy
// queries byte-identically to the process that persisted them: the exact
// coloring is restored, never re-derived.
func (s *Store) Load() (*service.Registry, error) {
	reg := service.NewRegistry()
	if s.snap != nil {
		for _, st := range s.snap.Communities {
			if _, err := reg.Restore(st); err != nil {
				return nil, err
			}
		}
	}
	// The records scanned at Open cover the whole file unless something was
	// appended since (possible only if the caller attached Journal() by
	// hand before Load); re-scan in that case rather than replay a stale
	// prefix.
	recs := s.pending
	s.pending = nil
	if s.wal.Seq() != s.seqAtOpen {
		if err := s.wal.Sync(); err != nil {
			return nil, err
		}
		var err error
		if recs, _, err = scanWAL(filepath.Join(s.dir, walFile)); err != nil {
			return nil, err
		}
	}
	for _, rec := range recs {
		if err := reg.Apply(rec.Seq, rec.Record); err != nil {
			return nil, err
		}
	}
	reg.SetJournal(s.wal)
	return reg, nil
}

// SaveSnapshot writes the registry's current state as the new snapshot and
// compacts the WAL down to the records the snapshot does not cover. The
// write is atomic (tmp+rename) and ordering makes every crash window safe:
// the cut-point sequence is read before any community is exported, so a
// record ≤ cutoff is either in its community's exported state or belongs
// to a community created-and-deleted before the export walk; records >
// cutoff survive compaction and replay idempotently over the snapshot.
func (s *Store) SaveSnapshot(reg *service.Registry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.wal.Sync(); err != nil {
		return err
	}
	cutoff := s.wal.Seq()
	ids := reg.List()
	states := make([]service.CommunityState, 0, len(ids))
	for _, id := range ids {
		c, ok := reg.Get(id)
		if !ok {
			continue // deleted while we walked; its delete record is > cutoff or reflected
		}
		states = append(states, c.Export())
	}
	snap := &Snapshot{
		Schema:      SnapshotSchemaVersion,
		SavedAt:     time.Now().UTC().Format(time.RFC3339),
		Seq:         cutoff,
		Communities: states,
	}
	if err := writeSnapshot(filepath.Join(s.dir, snapshotFile), snap); err != nil {
		return err
	}
	s.snap = snap
	// A crash before this compaction leaves stale records ≤ cutoff in the
	// WAL; replay skips them by sequence, so the snapshot is already the
	// recovery point the moment the rename lands.
	return s.wal.compactThrough(filepath.Join(s.dir, walFile), cutoff)
}

// Close syncs and closes the WAL, waiting out any in-flight SaveSnapshot.
// It does not snapshot; callers that want snapshot-on-shutdown call
// SaveSnapshot first (see cmd/holidayd).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Close()
}

// readSnapshot loads and validates a snapshot file; a missing file is not
// an error (fresh data directory).
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("persist: %s: %w", path, err)
	}
	if snap.Schema < minSnapshotSchema || snap.Schema > SnapshotSchemaVersion {
		return nil, fmt.Errorf("persist: %s has schema %d, this build reads %d through %d",
			path, snap.Schema, minSnapshotSchema, SnapshotSchemaVersion)
	}
	return &snap, nil
}

// writeSnapshot renders the snapshot and swaps it in atomically so a crash
// mid-write can never leave a torn snapshot.json.
func writeSnapshot(path string, snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: encode snapshot: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: swap snapshot: %w", err)
	}
	return nil
}
