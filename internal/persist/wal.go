package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/service"
)

// walRecord is one WAL entry on disk: a service journal record stamped with
// its sequence number, one JSON object per line. The sequence is strictly
// increasing within a file; replay and compaction key off it.
type walRecord struct {
	Seq uint64 `json:"seq"`
	service.Record
}

// SyncPolicy selects how the WAL trades durability for append latency.
type SyncPolicy int

const (
	// SyncBatch (the default) acknowledges appends once they are buffered
	// and fsyncs the batch at most every Options.SyncInterval — group
	// commit. A hard crash can lose at most the records of the current
	// interval; graceful shutdown and snapshots lose nothing. This keeps
	// fsync latency off the churn hot path (the bench gate prices it).
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs every append before acknowledging it: no
	// acknowledged record is ever lost, at ~one disk flush per mutation.
	SyncAlways
)

// WAL is the append-only churn log. It implements service.Journal, so
// attaching it to a registry (Registry.SetJournal) makes every mutation
// durable. Safe for concurrent Log calls.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	seq    uint64 // last assigned sequence
	dirty  bool   // buffered-but-unsynced records exist
	closed bool
	// failed fail-stops the WAL after a SyncAlways fsync error: the record
	// may or may not be durable while the caller was told it failed, so
	// accepting further appends would let memory and log diverge op after
	// op. A restart (which replays the log as truth) clears the condition.
	failed bool

	policy   SyncPolicy
	interval time.Duration
	stop     chan struct{} // closes the background flusher
	done     chan struct{}
}

// openWAL opens (or creates) the log at path for appending, recovering from
// a torn tail: a final record only partially written by a crashed process
// is truncated away, records before it are preserved. minSeq floors the
// next assigned sequence (the snapshot's cut-point survives WAL
// compaction, which can leave the file empty). The surviving records are
// returned so the caller's first replay does not re-read the file.
func openWAL(path string, policy SyncPolicy, interval time.Duration, minSeq uint64) (*WAL, []walRecord, error) {
	recs, end, err := scanWAL(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("persist: truncate torn WAL tail of %s: %w", path, err)
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	seq := minSeq
	if n := len(recs); n > 0 && recs[n-1].Seq > seq {
		seq = recs[n-1].Seq
	}
	if interval <= 0 {
		interval = DefaultSyncInterval
	}
	w := &WAL{
		f:        f,
		w:        bufio.NewWriter(f),
		seq:      seq,
		policy:   policy,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.flusher()
	return w, recs, nil
}

// scanWAL reads every complete record of a WAL file in order and returns
// them plus the byte offset where the valid prefix ends. A torn tail — a
// final line that is incomplete or fails to parse — ends the scan without
// error: it is the expected residue of a crash mid-append. A malformed
// record with more records after it is real corruption and errors.
func scanWAL(path string) ([]walRecord, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var recs []walRecord
	var end int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No terminating newline: a torn final record.
			break
		}
		line := data[off : off+nl]
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if off+nl+1 < len(data) {
				return nil, 0, fmt.Errorf("persist: %s: corrupt record at offset %d (not the final record): %w", path, off, err)
			}
			break // torn final record that happens to contain a newline-free prefix
		}
		if n := len(recs); n > 0 && rec.Seq <= recs[n-1].Seq {
			return nil, 0, fmt.Errorf("persist: %s: sequence regressed %d → %d at offset %d", path, recs[n-1].Seq, rec.Seq, off)
		}
		recs = append(recs, rec)
		off += nl + 1
		end = int64(off)
	}
	return recs, end, nil
}

// Log implements service.Journal: assign the next sequence, append the
// record, and — under SyncAlways — flush and fsync before acknowledging.
// Under SyncBatch the background flusher syncs the batch within
// Options.SyncInterval.
func (w *WAL) Log(rec service.Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("persist: WAL is closed")
	}
	if w.failed {
		return 0, fmt.Errorf("persist: WAL fail-stopped after an fsync error; restart to recover")
	}
	w.seq++
	line, err := json.Marshal(walRecord{Seq: w.seq, Record: rec})
	if err != nil {
		w.seq--
		return 0, fmt.Errorf("persist: encode WAL record: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.w.Write(line); err != nil {
		w.seq--
		return 0, fmt.Errorf("persist: append WAL record: %w", err)
	}
	w.dirty = true
	if w.policy == SyncAlways {
		if err := w.syncLocked(); err != nil {
			// The record is in the file or buffer but not known durable,
			// and the caller will treat the op as failed: fail-stop so the
			// divergence is bounded to this one record (replay resolves it
			// on restart).
			w.failed = true
			return 0, err
		}
	}
	return w.seq, nil
}

// LogBatch implements service.BatchJournal: assign K consecutive sequences
// and append all K records under one mutex acquisition, one buffered write,
// and — under SyncAlways — one fsync for the whole batch. This is the
// group-commit amortization the batched churn path is built on: a flush of K
// edits costs one disk round instead of K. Returns the sequence of the last
// record. Every record is marshaled before any byte is written, so an
// encoding error leaves the log untouched.
func (w *WAL) LogBatch(recs []service.Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("persist: WAL is closed")
	}
	if w.failed {
		return 0, fmt.Errorf("persist: WAL fail-stopped after an fsync error; restart to recover")
	}
	if len(recs) == 0 {
		return w.seq, nil
	}
	buf := make([]byte, 0, 96*len(recs))
	for i, rec := range recs {
		line, err := json.Marshal(walRecord{Seq: w.seq + uint64(i) + 1, Record: rec})
		if err != nil {
			return 0, fmt.Errorf("persist: encode WAL record %d of batch: %w", i, err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if _, err := w.w.Write(buf); err != nil {
		// Some prefix of the batch may sit in the buffer; the sequences were
		// never assigned (w.seq is untouched), so the next append would
		// regress the on-disk order. Fail-stop like a SyncAlways error and
		// let restart-time replay (which tolerates a torn tail) resolve it.
		w.failed = true
		return 0, fmt.Errorf("persist: append WAL batch: %w", err)
	}
	w.seq += uint64(len(recs))
	w.dirty = true
	if w.policy == SyncAlways {
		if err := w.syncLocked(); err != nil {
			w.failed = true
			return 0, err
		}
	}
	return w.seq, nil
}

// Seq returns the last assigned sequence number.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Sync flushes buffered records and fsyncs the file.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

// syncLocked flushes and fsyncs; the caller holds w.mu.
func (w *WAL) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("persist: flush WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: fsync WAL: %w", err)
	}
	w.dirty = false
	return nil
}

// flusher is the group-commit loop: under SyncBatch it syncs dirty batches
// every interval; under SyncAlways it has nothing to do but still exits
// cleanly on close.
func (w *WAL) flusher() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			if w.policy == SyncBatch {
				_ = w.Sync() // an I/O error here resurfaces on the next Log/Sync/Close
			}
		}
	}
}

// compactThrough drops every record with sequence ≤ cutoff — records a
// just-written snapshot already reflects — by rewriting the file with the
// survivors and atomically swapping it in. Appends are blocked for the
// duration; sequences keep increasing monotonically across the swap.
func (w *WAL) compactThrough(path string, cutoff uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("persist: WAL is closed")
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	recs, _, err := scanWAL(path)
	if err != nil {
		return err
	}
	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	for _, rec := range recs {
		if rec.Seq <= cutoff {
			continue
		}
		line, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			return fmt.Errorf("persist: compact: %w", err)
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			f.Close()
			return fmt.Errorf("persist: compact: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("persist: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: compact swap: %w", err)
	}
	old := w.f
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The swapped file is valid on disk but we lost our handle;
		// refuse further appends rather than write to the unlinked file.
		w.closed = true
		old.Close()
		return fmt.Errorf("persist: reopen compacted WAL: %w", err)
	}
	w.f = nf
	w.w = bufio.NewWriter(nf)
	w.dirty = false
	old.Close()
	return nil
}

// Close syncs outstanding records, stops the flusher, and closes the file.
// Further Log calls fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	err := w.syncLocked()
	w.closed = true
	cerr := w.f.Close()
	w.mu.Unlock()
	close(w.stop)
	<-w.done
	if err != nil {
		return err
	}
	return cerr
}
