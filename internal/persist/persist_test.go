package persist

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
)

// ringEdges returns the cycle C_n, a community whose every marriage
// matters to the coloring.
func ringEdges(n int) [][2]int {
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	return edges
}

// churn applies a deterministic mix of marriages, divorces, and family
// additions to a community, failing the test on any error.
func churn(t *testing.T, c *service.Community, seed uint64, ops int) {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, 42))
	for i := 0; i < ops; i++ {
		n := c.Families()
		u := r.IntN(n)
		v := r.IntN(n - 1)
		if v >= u {
			v++
		}
		switch r.IntN(10) {
		case 0:
			if _, err := c.AddFamily(); err != nil {
				t.Fatal(err)
			}
		case 1, 2, 3:
			if _, _, err := c.Divorce(u, v); err != nil {
				t.Fatal(err)
			}
		default:
			if _, err := c.Marry(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// frozenAnswers captures the externally observable schedule of a community:
// a window of holiday rows plus every family's next happy holiday from a
// few alignments. Two communities with equal answers serve byte-identical
// responses.
type frozenAnswers struct {
	Rows []service.HolidayRow
	Next map[int][]int64
}

func answersOf(t *testing.T, c *service.Community) frozenAnswers {
	t.Helper()
	rows, err := c.Window(1, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Window reuses row buffers; deep-copy for comparison.
	cp := make([]service.HolidayRow, len(rows))
	for i, r := range rows {
		cp[i] = service.HolidayRow{Holiday: r.Holiday, Happy: append([]int(nil), r.Happy...)}
	}
	next := make(map[int][]int64)
	for v := 0; v < c.Families(); v++ {
		for _, from := range []int64{1, 7, 1000, 1 << 40} {
			n, err := c.NextHappy(v, from)
			if err != nil {
				t.Fatal(err)
			}
			next[v] = append(next[v], n)
		}
	}
	return frozenAnswers{Rows: cp, Next: next}
}

// persistentStats strips the volatile cache counters (not persisted, by
// design) from a Stats value.
func persistentStats(st service.Stats) service.Stats {
	st.CacheHits, st.CacheMisses = 0, 0
	return st
}

// TestCrashRecoveryMidChurn is the ISSUE's flagship scenario: a registry is
// churned past its last snapshot and the process dies abruptly — no
// graceful shutdown, no final snapshot. Recovery must replay the WAL tail
// over the snapshot and serve byte-identical window and next-happy answers
// with identical stats.
func TestCrashRecoveryMidChurn(t *testing.T) {
	dir := t.TempDir()
	// SyncAlways so every acknowledged record is on disk the moment it is
	// acked — the in-process stand-in for "the machine lost power".
	store, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}

	a, err := reg.Create("alpha", 24, ringEdges(24), "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Create("beta", 12, ringEdges(12), "gamma")
	if err != nil {
		t.Fatal(err)
	}
	churn(t, a, 7, 200)
	churn(t, b, 11, 100)

	// Mid-run snapshot, then more churn that only the WAL captures.
	if err := store.SaveSnapshot(reg); err != nil {
		t.Fatal(err)
	}
	churn(t, a, 13, 150)
	churn(t, b, 17, 75)
	if ok, err := reg.Delete("beta"); !ok || err != nil {
		t.Fatalf("Delete(beta) = %v, %v", ok, err)
	}
	g, err := reg.Create("gamma-c", 8, ringEdges(8), "")
	if err != nil {
		t.Fatal(err)
	}
	churn(t, g, 19, 40)

	wantA, wantG := answersOf(t, a), answersOf(t, g)
	statsA, statsG := persistentStats(a.Stats()), persistentStats(g.Stats())

	// Crash: no SaveSnapshot, no graceful anything. Release the file
	// handle so the "new process" owns the directory alone.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	reg2, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ids := reg2.List(); !reflect.DeepEqual(ids, []string{"alpha", "gamma-c"}) {
		t.Fatalf("recovered communities = %v, want [alpha gamma-c]", ids)
	}
	a2, _ := reg2.Get("alpha")
	g2, _ := reg2.Get("gamma-c")
	if got := persistentStats(a2.Stats()); !reflect.DeepEqual(got, statsA) {
		t.Errorf("alpha stats diverged:\n got  %+v\n want %+v", got, statsA)
	}
	if got := persistentStats(g2.Stats()); !reflect.DeepEqual(got, statsG) {
		t.Errorf("gamma-c stats diverged:\n got  %+v\n want %+v", got, statsG)
	}
	if got := answersOf(t, a2); !reflect.DeepEqual(got, wantA) {
		t.Error("alpha window/next answers diverged after crash recovery")
	}
	if got := answersOf(t, g2); !reflect.DeepEqual(got, wantG) {
		t.Error("gamma-c window/next answers diverged after crash recovery")
	}
}

// TestGracefulRestartFromSnapshotOnly: snapshot-on-shutdown plus an empty
// (compacted) WAL restores identically with nothing to replay.
func TestGracefulRestartFromSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	c, err := reg.Create("c", 16, ringEdges(16), "")
	if err != nil {
		t.Fatal(err)
	}
	churn(t, c, 3, 120)
	want := answersOf(t, c)
	wantStats := persistentStats(c.Stats())
	if err := store.SaveSnapshot(reg); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// The snapshot compacted the WAL down to nothing.
	if data, err := os.ReadFile(filepath.Join(dir, walFile)); err != nil || len(data) != 0 {
		t.Fatalf("post-snapshot WAL = %d bytes, err %v; want empty", len(data), err)
	}

	store2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	reg2, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	c2, ok := reg2.Get("c")
	if !ok {
		t.Fatal("community not restored")
	}
	if got := persistentStats(c2.Stats()); !reflect.DeepEqual(got, wantStats) {
		t.Errorf("stats diverged:\n got  %+v\n want %+v", got, wantStats)
	}
	if got := answersOf(t, c2); !reflect.DeepEqual(got, want) {
		t.Error("answers diverged across graceful restart")
	}
	// New sequences must continue above the snapshot cut-point even though
	// the WAL file was empty at open.
	if _, err := c2.Marry(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := store2.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := scanWAL(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq <= store2.snap.Seq {
		t.Fatalf("post-restart record = %+v; want one record with seq > snapshot seq %d", recs, store2.snap.Seq)
	}
}

// TestWALTornTailTolerated: a crash mid-append leaves a partial final line;
// recovery must keep every complete record, drop the torn one, and keep
// appending after it.
func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	c, err := reg.Create("c", 10, ringEdges(10), "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Marry(i%10, (i+3)%10); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	recsBefore, _, err := scanWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record in half (strip its newline and some bytes).
	torn := data[:len(data)-7]
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("open with torn WAL tail: %v", err)
	}
	defer store2.Close()
	reg2, err := store2.Load()
	if err != nil {
		t.Fatalf("load with torn WAL tail: %v", err)
	}
	recsAfter, _, err := scanWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(recsBefore) - 1; len(recsAfter) != want {
		t.Fatalf("recovered %d records, want %d (torn final dropped)", len(recsAfter), want)
	}
	// The torn record's op is gone: one fewer marriage than pre-crash.
	c2, ok := reg2.Get("c")
	if !ok {
		t.Fatal("community not restored")
	}
	if c2.Stats().Marriages >= c.Stats().Marriages+1 {
		t.Fatal("torn record appears to have been applied")
	}
	// Appending continues with strictly increasing sequences.
	if _, err := c2.Marry(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := store2.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := scanWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if last.Seq != recsBefore[len(recsBefore)-1].Seq {
		t.Fatalf("next seq after torn recovery = %d, want %d (reuse of the torn record's slot)",
			last.Seq, recsBefore[len(recsBefore)-1].Seq)
	}
}

// TestReplayIdempotentAfterCompactionCrash: a crash between writing the
// snapshot and compacting the WAL leaves records the snapshot already
// reflects; replay must skip them by sequence instead of double-applying.
func TestReplayIdempotentAfterCompactionCrash(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	c, err := reg.Create("c", 10, ringEdges(10), "")
	if err != nil {
		t.Fatal(err)
	}
	churn(t, c, 5, 60)
	walPath := filepath.Join(dir, walFile)
	preCompaction, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	want := answersOf(t, c)
	wantStats := persistentStats(c.Stats())
	if err := store.SaveSnapshot(reg); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// Undo the compaction: pretend the process died after snapshot.json
	// landed but before the WAL rewrite.
	if err := os.WriteFile(walPath, preCompaction, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	reg2, err := store2.Load()
	if err != nil {
		t.Fatalf("load with stale WAL records: %v", err)
	}
	c2, ok := reg2.Get("c")
	if !ok {
		t.Fatal("community not restored")
	}
	if got := persistentStats(c2.Stats()); !reflect.DeepEqual(got, wantStats) {
		t.Errorf("stats diverged (stale records re-applied?):\n got  %+v\n want %+v", got, wantStats)
	}
	if got := answersOf(t, c2); !reflect.DeepEqual(got, want) {
		t.Error("answers diverged: stale pre-snapshot WAL records were re-applied")
	}
}

// TestCorruptMidFileRecordRejected: corruption before the final record is
// not a torn tail and must fail loudly, not silently drop data.
func TestCorruptMidFileRecordRejected(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, walFile)
	good := `{"seq":1,"op":"create","id":"c","families":2,"op_extra":0,"u":0,"v":0}` + "\n"
	bad := `{"seq":2,"op":` + "\n"
	tail := `{"seq":3,"op":"marry","id":"c","u":0,"v":1}` + "\n"
	if err := os.WriteFile(walPath, []byte(good+bad+tail), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("Open = %v, want corrupt-record error", err)
	}
}

// TestSnapshotSchemaRefused: a snapshot from an incompatible layout is
// refused instead of misread.
func TestSnapshotSchemaRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile),
		[]byte(`{"schema":99,"communities":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Open = %v, want schema error", err)
	}
}

// TestDeleteRecreateAcrossRestart: an id deleted and recreated with a
// different shape must restore to its latest incarnation.
func TestDeleteRecreateAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("c", 30, ringEdges(30), ""); err != nil {
		t.Fatal(err)
	}
	if ok, err := reg.Delete("c"); !ok || err != nil {
		t.Fatal("delete failed")
	}
	c, err := reg.Create("c", 5, nil, "delta")
	if err != nil {
		t.Fatal(err)
	}
	want := answersOf(t, c)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	reg2, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	c2, ok := reg2.Get("c")
	if !ok {
		t.Fatal("community not restored")
	}
	if got := c2.Stats(); got.Families != 5 || got.Scheduler != "dynamic-color-bound/delta" {
		t.Fatalf("restored the wrong incarnation: %+v", got)
	}
	if got := answersOf(t, c2); !reflect.DeepEqual(got, want) {
		t.Error("recreated community's answers diverged across restart")
	}
}

// TestBatchedChurnCrashRecovery: batched churn flushes through WAL.LogBatch
// (the registry discovers the BatchJournal fast path), a crash follows, and
// recovery replays the batch-written records one at a time into the same
// answers — the durability half of the batch ≡ sequential guarantee.
func TestBatchedChurnCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	c, err := reg.Create("alpha", 32, ringEdges(32), "")
	if err != nil {
		t.Fatal(err)
	}
	// Interleave single ops and batch flushes, snapshotting mid-stream so
	// replay crosses a batch boundary.
	r := rand.New(rand.NewPCG(31, 8))
	batch := func(k int) {
		edits := make([]core.Edit, k)
		for i := range edits {
			u := r.IntN(32)
			v := r.IntN(31)
			if v >= u {
				v++
			}
			op := core.EditInsert
			if r.IntN(10) < 4 {
				op = core.EditDelete
			}
			edits[i] = core.Edit{Op: op, U: u, V: v}
		}
		if _, err := c.ChurnBatch(edits, nil); err != nil {
			t.Fatal(err)
		}
	}
	batch(40)
	churn(t, c, 23, 30)
	if err := store.SaveSnapshot(reg); err != nil {
		t.Fatal(err)
	}
	batch(64)
	churn(t, c, 29, 20)
	batch(17)

	want := answersOf(t, c)
	stats := persistentStats(c.Stats())
	if err := store.Close(); err != nil { // crash: no final snapshot
		t.Fatal(err)
	}

	store2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	reg2, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	c2, ok := reg2.Get("alpha")
	if !ok {
		t.Fatal("community lost")
	}
	if got := persistentStats(c2.Stats()); !reflect.DeepEqual(got, stats) {
		t.Fatalf("stats diverged:\n got  %+v\n want %+v", got, stats)
	}
	if got := answersOf(t, c2); !reflect.DeepEqual(got, want) {
		t.Fatal("window/next answers diverged after batched-churn crash recovery")
	}
}

// TestWALLogBatchSequencesAndSync: LogBatch assigns consecutive sequences
// interleaved correctly with single Logs, writes every record durably under
// SyncAlways, and an empty batch is a no-op.
func TestWALLogBatchSequencesAndSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.jsonl")
	w, _, err := openWAL(path, SyncAlways, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := w.Log(service.Record{Op: service.OpMarry, ID: "c", U: 0, V: 1}); err != nil || seq != 1 {
		t.Fatalf("Log = %d, %v", seq, err)
	}
	last, err := w.LogBatch([]service.Record{
		{Op: service.OpMarry, ID: "c", U: 1, V: 2},
		{Op: service.OpDivorce, ID: "c", U: 0, V: 1},
		{Op: service.OpMarry, ID: "c", U: 2, V: 3},
	})
	if err != nil || last != 4 {
		t.Fatalf("LogBatch = %d, %v; want 4", last, err)
	}
	if last, err := w.LogBatch(nil); err != nil || last != 4 {
		t.Fatalf("empty LogBatch = %d, %v; want 4, nil", last, err)
	}
	if seq, err := w.Log(service.Record{Op: service.OpMarry, ID: "c", U: 3, V: 4}); err != nil || seq != 5 {
		t.Fatalf("Log after batch = %d, %v; want 5", seq, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := scanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("WAL has %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	if recs[2].Op != service.OpDivorce {
		t.Fatalf("record 3 op = %q, want divorce", recs[2].Op)
	}
}
