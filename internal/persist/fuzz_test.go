package persist

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/service"
)

// walSeedLines renders a small realistic WAL: a create, churn, and an
// add-family record, one JSON object per line.
func walSeedLines(t interface{ Fatal(...any) }) []byte {
	var buf bytes.Buffer
	for i, rec := range []service.Record{
		{Op: service.OpCreate, ID: "c", N: 4, Edges: [][2]int{{0, 1}}, Code: "omega"},
		{Op: service.OpMarry, ID: "c", U: 2, V: 3},
		{Op: service.OpDivorce, ID: "c", U: 2, V: 3},
		{Op: service.OpAddFamily, ID: "c"},
	} {
		line, err := json.Marshal(walRecord{Seq: uint64(i + 1), Record: rec})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// FuzzScanWAL throws arbitrary bytes at the torn-tail recovery scanner: it
// must never panic, and every accepted prefix must end on a newline
// boundary, rescan to the identical records, and carry strictly increasing
// sequences — the invariants boot-time replay relies on.
func FuzzScanWAL(f *testing.F) {
	seed := walSeedLines(f)
	f.Add(seed)                      // clean log
	f.Add(seed[:len(seed)-7])        // torn final record
	f.Add(seed[:0])                  // empty file
	f.Add([]byte("{\n"))             // torn junk
	f.Add([]byte("not json at all")) // no newline
	corrupt := append([]byte(nil), seed...)
	corrupt[5] ^= 0xff // corrupt a non-final record: must error, not truncate
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "churn.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, end, err := scanWAL(path)
		if err != nil {
			return // rejected as corruption; nothing to recover
		}
		if end < 0 || end > int64(len(data)) {
			t.Fatalf("valid prefix ends at %d of %d bytes", end, len(data))
		}
		if end > 0 && data[end-1] != '\n' {
			t.Fatalf("prefix end %d is not a record boundary", end)
		}
		if end == 0 && len(recs) != 0 {
			t.Fatalf("%d records recovered from an empty prefix", len(recs))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Seq <= recs[i-1].Seq {
				t.Fatalf("accepted sequence regression %d → %d", recs[i-1].Seq, recs[i].Seq)
			}
		}
		// Recovery is idempotent: the accepted prefix alone must rescan to
		// the same records (what openWAL's truncate leaves on disk).
		if err := os.WriteFile(path, data[:end], 0o644); err != nil {
			t.Fatal(err)
		}
		again, end2, err := scanWAL(path)
		if err != nil {
			t.Fatalf("accepted prefix rejected on rescan: %v", err)
		}
		if end2 != end || len(again) != len(recs) {
			t.Fatalf("rescan of the accepted prefix: %d records to offset %d, first scan %d to %d",
				len(again), end2, len(recs), end)
		}
	})
}

// TestScanWALSeeds runs the seed corpus inline so `go test` (without -fuzz)
// exercises the torn-tail invariants above.
func TestScanWALSeeds(t *testing.T) {
	seed := walSeedLines(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "churn.wal")
	if err := os.WriteFile(path, seed, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, end, err := scanWAL(path)
	if err != nil || len(recs) != 4 || end != int64(len(seed)) {
		t.Fatalf("clean log: %d records to %d (%v), want 4 to %d", len(recs), end, err, len(seed))
	}
	if err := os.WriteFile(path, seed[:len(seed)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, end, err = scanWAL(path)
	if err != nil || len(recs) != 3 {
		t.Fatalf("torn tail: %d records (%v), want the 3 complete ones", len(recs), err)
	}
	if seed[end-1] != '\n' {
		t.Fatalf("torn-tail end %d is not a record boundary", end)
	}
}
