package persist

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"math/rand/v2"

	"repro/internal/graph"
	"repro/internal/service"
)

// polyWALLines renders a deterministic poly-community WAL from fuzz
// parameters: a kind=poly create carrying per-edge demands, then churn
// records (marries with explicit and defaulted demands, divorces), one JSON
// object per line — exactly what the service layer journals.
func polyWALLines(t interface{ Fatal(...any) }, seed uint64, n int, ops int) []byte {
	rng := rand.New(rand.NewPCG(seed, 0x90125))
	recs := []service.Record{{
		Op: service.OpCreate, ID: "p", N: n, Kind: service.KindPoly, Code: "layering",
		Edges: [][2]int{{0, 1}}, Demands: []int64{32}, DefaultDemand: 64,
	}}
	live := map[[2]int]bool{{0, 1}: true}
	for i := 0; i < ops; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := [2]int{u, v}
		if live[k] {
			recs = append(recs, service.Record{Op: service.OpDivorce, ID: "p", U: u, V: v})
			delete(live, k)
			continue
		}
		rec := service.Record{Op: service.OpMarry, ID: "p", U: u, V: v}
		if rng.IntN(2) == 0 {
			rec.Demand = int64(8) << rng.IntN(5)
		}
		recs = append(recs, rec)
		live[k] = true
	}
	var buf bytes.Buffer
	for i, rec := range recs {
		line, err := json.Marshal(walRecord{Seq: uint64(i + 1), Record: rec})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// checkPolyWAL scans a (possibly torn or corrupt) poly WAL and replays
// whatever prefix the scanner accepts. When the log was only truncated
// (mutated=false), every accepted prefix must replay without error —
// recovery's prefix-closure invariant. When a byte was flipped
// (mutated=true), the flip can hide inside a JSON string and survive the
// scanner, so replay may reject the damaged record; it must still never
// panic, and whatever state was built before the rejection must survive an
// Export → Restore round trip byte-identically, which runs the poly core's
// full Verify.
func checkPolyWAL(t *testing.T, data []byte, mutated bool) {
	dir := t.TempDir()
	path := filepath.Join(dir, "churn.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, end, err := scanWAL(path)
	if err != nil {
		return // rejected as corruption; nothing to recover
	}
	if end > int64(len(data)) || (end > 0 && data[end-1] != '\n') {
		t.Fatalf("accepted prefix ends at %d of %d, not a record boundary", end, len(data))
	}
	reg := service.NewRegistry()
	for _, wr := range recs {
		if err := reg.Apply(wr.Seq, wr.Record); err != nil {
			if mutated {
				break // a surviving byte flip may make a record semantically invalid
			}
			t.Fatalf("replaying accepted record seq %d: %v", wr.Seq, err)
		}
	}
	c, ok := reg.Get("p")
	if !ok {
		return // the create itself was in the torn tail
	}
	st := c.Export()
	if !mutated && (st.Kind != service.KindPoly || st.Poly == nil) {
		t.Fatalf("replayed community exported kind %q (poly state %v)", st.Kind, st.Poly != nil)
	}
	reg2 := service.NewRegistry()
	c2, err := reg2.Restore(st)
	if err != nil {
		t.Fatalf("restoring the replayed export: %v", err)
	}
	st2 := c2.Export()
	b1, _ := json.Marshal(st)
	b2, _ := json.Marshal(st2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("export → restore → export drifted:\n%s\n%s", b1, b2)
	}
}

// FuzzPolyWAL drives poly WAL recovery with fuzzed churn histories and
// arbitrary truncation/corruption offsets.
func FuzzPolyWAL(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(12), uint16(0), false)
	f.Add(uint64(2), uint8(4), uint8(40), uint16(7), false)   // torn tail
	f.Add(uint64(3), uint8(16), uint8(64), uint16(1), true)   // corrupt byte
	f.Add(uint64(4), uint8(2), uint8(0), uint16(200), false)  // truncated create
	f.Add(uint64(5), uint8(32), uint8(200), uint16(0), false) // heavy churn
	f.Fuzz(func(t *testing.T, seed uint64, n8, ops uint8, cut uint16, corrupt bool) {
		n := int(n8)%64 + 2
		data := polyWALLines(t, seed, n, int(ops))
		if c := int(cut); c > 0 && c < len(data) {
			data = data[:len(data)-c]
		}
		if corrupt && len(data) > 0 {
			data = append([]byte(nil), data...)
			data[int(seed)%len(data)] ^= 0xff
		}
		checkPolyWAL(t, data, corrupt)
	})
}

// TestPolyWALSeeds runs the committed fuzz corpus inline, so `go test`
// (without -fuzz) exercises the recovery invariants above.
func TestPolyWALSeeds(t *testing.T) {
	for _, s := range []struct {
		seed    uint64
		n, ops  uint8
		cut     uint16
		corrupt bool
	}{
		{1, 8, 12, 0, false},
		{2, 4, 40, 7, false},
		{3, 16, 64, 1, true},
		{4, 2, 0, 200, false},
		{5, 32, 200, 0, false},
	} {
		n := int(s.n)%64 + 2
		data := polyWALLines(t, s.seed, n, int(s.ops))
		if c := int(s.cut); c > 0 && c < len(data) {
			data = data[:len(data)-c]
		}
		if s.corrupt && len(data) > 0 {
			data = append([]byte(nil), data...)
			data[int(s.seed)%len(data)] ^= 0xff
		}
		checkPolyWAL(t, data, s.corrupt)
	}
}

// polyAnswers captures the observable schedule of a poly community: the
// entities are edge slots, not families, so next-happy queries range over
// the slot count (learned from WindowBits' begin callback).
func polyAnswers(t *testing.T, c *service.Community) frozenAnswers {
	t.Helper()
	rows, err := c.Window(1, 128)
	if err != nil {
		t.Fatal(err)
	}
	cp := make([]service.HolidayRow, len(rows))
	for i, r := range rows {
		cp[i] = service.HolidayRow{Holiday: r.Holiday, Happy: append([]int(nil), r.Happy...)}
	}
	slots := 0
	err = c.WindowBits(1, 1, func(n int) { slots = n }, func(int64, graph.Bitset) {})
	if err != nil {
		t.Fatal(err)
	}
	next := make(map[int][]int64)
	for v := 0; v < slots; v++ {
		for _, from := range []int64{1, 7, 1000, 1 << 40} {
			n, err := c.NextHappy(v, from)
			if err != nil {
				t.Fatal(err)
			}
			next[v] = append(next[v], n)
		}
	}
	return frozenAnswers{Rows: cp, Next: next}
}

// TestPolyStoreRoundTrip crash-recovers a poly community through the full
// Store path (WAL replay, then snapshot + compaction) and requires the
// recovered schedule to answer byte-identically both times.
func TestPolyStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	c, err := reg.CreateSpec(service.CreateSpec{
		ID: "p", Families: 12, Kind: service.KindPoly, Code: "bucketed",
		Edges: [][2]int{{0, 1}, {2, 3}}, Demands: []int64{16, 0}, DefaultDemand: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	churn(t, c, 11, 120)
	want := polyAnswers(t, c)
	wantExport, _ := json.Marshal(c.Export())

	// Crash (no snapshot): WAL-only recovery.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, err = st.Load()
	if err != nil {
		t.Fatal(err)
	}
	c, ok := reg.Get("p")
	if !ok {
		t.Fatal("poly community lost across WAL-only restart")
	}
	if got := polyAnswers(t, c); !reflect.DeepEqual(got, want) {
		t.Fatal("WAL-replayed poly community answers differently")
	}
	gotExport, _ := json.Marshal(c.Export())
	if !bytes.Equal(wantExport, gotExport) {
		t.Fatalf("WAL-replayed export drifted:\n%s\n%s", wantExport, gotExport)
	}

	// Snapshot, then recover from snapshot alone.
	if err := st.SaveSnapshot(reg); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg, err = st.Load()
	if err != nil {
		t.Fatal(err)
	}
	c, ok = reg.Get("p")
	if !ok {
		t.Fatal("poly community lost across snapshot restart")
	}
	if got := polyAnswers(t, c); !reflect.DeepEqual(got, want) {
		t.Fatal("snapshot-restored poly community answers differently")
	}
}
