package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// SchemaVersion identifies the BENCH_*.json layout; bump it on breaking
// changes so Compare can refuse mismatched snapshots instead of misreading
// them. History:
//
//	1: initial layout (PR 3).
//	2: adds totals.bytes_per_node and totals.recolorings_per_churn_op plus
//	   the top-level churn_frac — all additive and omitted when zero, so
//	   readers accept schema 1 snapshots unchanged (see minSchemaVersion);
//	   the version records which fields a writer could have produced.
//	3: adds the top-level nodes count of sharded-cluster runs (the
//	   ClusterDriver); additive, omitted for single-target runs.
//	4: adds handoffs and handoff_pause_p99_us — the live-handoff count of a
//	   rotation run (-rotate-every) and the p99 write-unavailability window
//	   a moved community saw. Additive, omitted when placement stayed
//	   static; Compare refuses to mix rotation and static runs.
//	5: adds totals.edges and totals.max_gap_ratio of poly (edge-scheduling)
//	   scenarios — the live relationship count at run end and the worst
//	   period/demand ratio across poly communities (≤ 1 iff every demand
//	   was met). Additive, omitted for classic scenarios.
const SchemaVersion = 5

// minSchemaVersion is the oldest snapshot layout this build still reads.
const minSchemaVersion = 1

// Snapshot is one recorded benchmark run — the unit of the repo's
// performance trajectory. Snapshots are committed as BENCH_<rev>.json and
// compared across revisions by the CI bench-gate.
type Snapshot struct {
	Schema    int    `json:"schema"`
	Rev       string `json:"rev"`
	Timestamp string `json:"timestamp"` // RFC3339
	Scenario  string `json:"scenario"`
	Driver    string `json:"driver"`
	Workers   int    `json:"workers"`
	// QPSTarget is the requested rate; 0 means unthrottled (measure the
	// maximum the target sustains).
	QPSTarget   float64 `json:"qps_target"`
	DurationSec float64 `json:"duration_sec"`
	Seed        uint64  `json:"seed"`
	GoVersion   string  `json:"go_version"`
	Maxprocs    int     `json:"maxprocs"`
	// Persist records whether the durability subsystem (snapshot + churn
	// WAL) was active during the run — an in-proc run with persistence
	// prices the write-ahead hot path. Informational, not a comparison
	// gate: the bench-gate deliberately compares persistence-enabled runs
	// against the pre-durability baseline to bound the WAL's cost.
	Persist bool `json:"persist,omitempty"`
	// WALSyncAlways records that the WAL fsynced every append before
	// acknowledging it (holidayload -wal-sync-always) instead of group
	// committing on a timer. Unlike Persist it IS a comparison gate:
	// per-op-durable and timer-batched throughput differ by orders of
	// magnitude, so mixing them in a comparison is meaningless.
	WALSyncAlways bool `json:"wal_sync_always,omitempty"`
	// Proto names the wire protocol of an HTTP run ("binary" for the
	// /v1/bin packed-bitmap endpoints); empty means JSON (or in-process),
	// so pre-protocol baselines stay comparable.
	Proto string `json:"proto,omitempty"`
	// Batch is the ops-per-request grouping of a batched binary run; 0
	// means unbatched.
	Batch int `json:"batch,omitempty"`
	// Nodes is the member count of a sharded-cluster run (the
	// ClusterDriver): reads fan out across this many daemons. 0 for
	// single-target runs. Node counts must match for a comparison to be
	// meaningful, so Compare gates on it (schema ≥ 3).
	Nodes int `json:"nodes,omitempty"`
	// Handoffs counts the live community handoffs a rotation run triggered
	// mid-measurement (holidayload -rotate-every); 0 means placement stayed
	// static. Rotation perturbs throughput, so Compare refuses to gate a
	// rotation run against a static baseline (schema ≥ 4).
	Handoffs int `json:"handoffs,omitempty"`
	// HandoffPauseP99Micro is the p99 write-unavailability window (µs) a
	// moved community saw across the run's handoffs: the time from fencing
	// on the old owner to the new owner's ack, during which that one
	// community's writes fail or forward and every read still serves.
	HandoffPauseP99Micro float64 `json:"handoff_pause_p99_us,omitempty"`
	// ChurnFrac is the fraction of ops dedicated to churn when the
	// scenario's mix was derived via WithChurnFraction; 0 for hand-set
	// mixes. Differing fractions make throughput incomparable, so Compare
	// gates on it.
	ChurnFrac float64 `json:"churn_frac,omitempty"`
	// Note carries free-form context, e.g. before/after numbers of the
	// optimization a revision landed.
	Note   string             `json:"note,omitempty"`
	Totals Metrics            `json:"totals"`
	PerOp  map[string]OpStats `json:"per_op"`
}

// Metrics are the run-wide aggregates the regression gate inspects.
type Metrics struct {
	Ops    int64 `json:"ops"`
	Errors int64 `json:"errors"`
	// QPS is successfully served ops per second over the measured run —
	// the gated throughput metric. Errored ops are excluded so failing
	// fast never reads as throughput.
	QPS      float64 `json:"qps"`
	P50Micro float64 `json:"p50_us"`
	P95Micro float64 `json:"p95_us"`
	P99Micro float64 `json:"p99_us"`
	// CacheHitRatio is hits/(hits+misses) of the frozen-schedule cache
	// accumulated across the scenario's communities during the run.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// AllocsPerOp and BytesPerOp come from runtime.MemStats deltas and are
	// only meaningful for the in-process driver (they include load-generator
	// overhead on the HTTP driver).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// BytesPerNode is the live-heap cost of holding the scenario's
	// communities, measured as the GC-settled heap delta across Setup
	// divided by the total family count — the resident-memory metric the
	// mega family exists to track. In-process runs only; 0 when
	// unmeasurable (schema ≥ 2).
	BytesPerNode float64 `json:"bytes_per_node,omitempty"`
	// RecoloringsPerChurnOp is the §6 recoloring events the run triggered
	// per churn op served — the amortized repair cost the paper bounds.
	// Recorded when the driver reports recoloring counters and the mix
	// includes churn; 0 otherwise (schema ≥ 2).
	RecoloringsPerChurnOp float64 `json:"recolorings_per_churn_op,omitempty"`
	// Edges is the total live edge count across the scenario's poly
	// communities at run end; 0 for classic scenarios (schema ≥ 5).
	Edges int64 `json:"edges,omitempty"`
	// MaxGapRatio is the worst period/demand ratio across the scenario's
	// poly communities at run end: ≤ 1 iff every per-edge demand was still
	// met after the run's churn. 0 for classic scenarios (schema ≥ 5).
	MaxGapRatio float64 `json:"max_gap_ratio,omitempty"`
}

// OpStats is the per-op-kind latency breakdown.
type OpStats struct {
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	P50Micro float64 `json:"p50_us"`
	P95Micro float64 `json:"p95_us"`
	P99Micro float64 `json:"p99_us"`
}

// WriteFile writes the snapshot as indented JSON (stable key order via the
// struct layout) to path.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSnapshot reads and validates a snapshot file.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchkit: %s: %w", path, err)
	}
	if s.Schema < minSchemaVersion || s.Schema > SchemaVersion {
		return nil, fmt.Errorf("benchkit: %s has schema %d, this build reads %d..%d", path, s.Schema, minSchemaVersion, SchemaVersion)
	}
	if s.Totals.Ops <= 0 {
		return nil, fmt.Errorf("benchkit: %s records no completed ops", path)
	}
	return &s, nil
}

// Delta is one metric of a snapshot comparison. Pct is the relative change
// new vs old (positive = the number went up). Gated marks the metrics whose
// regression fails the comparison; the others are informational.
type Delta struct {
	Metric    string
	Old, New  float64
	Pct       float64
	Gated     bool
	Regressed bool
}

// Comparison is the verdict of comparing a new snapshot against an old one.
type Comparison struct {
	Deltas []Delta
	// Pass is false when a gated metric regressed beyond the threshold.
	Pass bool
	// Mismatch notes scenario/driver differences that make the numbers
	// incomparable; a mismatch fails the comparison outright.
	Mismatch string
}

// Compare evaluates new against old with the given regression threshold
// (0.25 = fail on >25% drop). Throughput (qps) is the gated metric — the
// threshold is deliberately generous so shared-runner noise does not flap
// the CI gate — while latency quantiles, cache hit ratio, and allocation
// counts are reported for trend reading.
func Compare(old, new *Snapshot, threshold float64) *Comparison {
	cmp := &Comparison{Pass: true}
	if old.Scenario != new.Scenario || old.Driver != new.Driver {
		cmp.Mismatch = fmt.Sprintf("scenario/driver mismatch: old ran %s on %s, new ran %s on %s",
			old.Scenario, old.Driver, new.Scenario, new.Driver)
		cmp.Pass = false
		return cmp
	}
	if old.Workers != new.Workers {
		cmp.Mismatch = fmt.Sprintf("worker-count mismatch: old ran %d workers, new ran %d — throughput is not comparable (rerun with -workers %d)",
			old.Workers, new.Workers, old.Workers)
		cmp.Pass = false
		return cmp
	}
	if old.Proto != new.Proto {
		cmp.Mismatch = fmt.Sprintf("protocol mismatch: old ran %s, new ran %s — binary and JSON throughput are not comparable",
			protoLabel(old.Proto), protoLabel(new.Proto))
		cmp.Pass = false
		return cmp
	}
	if old.Batch != new.Batch {
		cmp.Mismatch = fmt.Sprintf("batch mismatch: old grouped %d ops per request, new %d — rerun with -batch %d",
			max(old.Batch, 1), max(new.Batch, 1), max(old.Batch, 1))
		cmp.Pass = false
		return cmp
	}
	if old.Nodes != new.Nodes {
		cmp.Mismatch = fmt.Sprintf("cluster-size mismatch: old ran %d nodes, new ran %d — read fan-out makes throughput incomparable",
			old.Nodes, new.Nodes)
		cmp.Pass = false
		return cmp
	}
	if (old.Handoffs == 0) != (new.Handoffs == 0) {
		cmp.Mismatch = fmt.Sprintf("rotation mismatch: old ran %d mid-run handoffs, new ran %d — placement churn makes throughput incomparable",
			old.Handoffs, new.Handoffs)
		cmp.Pass = false
		return cmp
	}
	if old.ChurnFrac != new.ChurnFrac {
		cmp.Mismatch = fmt.Sprintf("churn-fraction mismatch: old ran %v, new ran %v — write-heavy and read-heavy throughput are not comparable",
			old.ChurnFrac, new.ChurnFrac)
		cmp.Pass = false
		return cmp
	}
	if old.WALSyncAlways != new.WALSyncAlways {
		cmp.Mismatch = fmt.Sprintf("WAL sync-policy mismatch: old ran sync-always=%v, new ran sync-always=%v — per-op-durable and group-committed throughput are not comparable",
			old.WALSyncAlways, new.WALSyncAlways)
		cmp.Pass = false
		return cmp
	}
	add := func(metric string, o, n float64, gated, lowerIsBetter bool) {
		d := Delta{Metric: metric, Old: o, New: n, Gated: gated}
		if o != 0 {
			d.Pct = (n - o) / o
		}
		if gated && o > 0 {
			if lowerIsBetter {
				d.Regressed = n > o*(1+threshold)
			} else {
				d.Regressed = n < o*(1-threshold)
			}
			if d.Regressed {
				cmp.Pass = false
			}
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	add("qps", old.Totals.QPS, new.Totals.QPS, true, false)
	add("p50_us", old.Totals.P50Micro, new.Totals.P50Micro, false, true)
	add("p95_us", old.Totals.P95Micro, new.Totals.P95Micro, false, true)
	add("p99_us", old.Totals.P99Micro, new.Totals.P99Micro, false, true)
	add("cache_hit_ratio", old.Totals.CacheHitRatio, new.Totals.CacheHitRatio, false, false)
	add("allocs_per_op", old.Totals.AllocsPerOp, new.Totals.AllocsPerOp, false, true)
	add("bytes_per_op", old.Totals.BytesPerOp, new.Totals.BytesPerOp, false, true)
	add("errors", float64(old.Totals.Errors), float64(new.Totals.Errors), false, true)
	if old.Totals.Edges != 0 || new.Totals.Edges != 0 {
		add("edges", float64(old.Totals.Edges), float64(new.Totals.Edges), false, false)
		add("max_gap_ratio", old.Totals.MaxGapRatio, new.Totals.MaxGapRatio, false, true)
	}
	return cmp
}

// Render prints the comparison as an aligned table plus verdict line
// ("BENCH PASS"/"BENCH FAIL", the strings the CI gate greps).
func (c *Comparison) Render(w io.Writer, threshold float64) {
	if c.Mismatch != "" {
		fmt.Fprintf(w, "BENCH FAIL: %s\n", c.Mismatch)
		return
	}
	fmt.Fprintf(w, "%-16s %14s %14s %9s  %s\n", "metric", "old", "new", "delta", "gate")
	for _, d := range c.Deltas {
		gate := ""
		if d.Gated {
			gate = fmt.Sprintf("±%.0f%%", threshold*100)
			if d.Regressed {
				gate += "  REGRESSED"
			}
		}
		fmt.Fprintf(w, "%-16s %14.2f %14.2f %+8.1f%%  %s\n", d.Metric, d.Old, d.New, d.Pct*100, gate)
	}
	if c.Pass {
		fmt.Fprintln(w, "BENCH PASS: no gated metric regressed beyond threshold")
	} else {
		fmt.Fprintln(w, "BENCH FAIL: gated metric regressed beyond threshold")
	}
}

// protoLabel names a snapshot's protocol field for messages (empty = JSON).
func protoLabel(p string) string {
	if p == "" {
		return "json"
	}
	return p
}

// opNames returns the per-op keys of a snapshot, sorted, for stable output.
func opNames(per map[string]OpStats) []string {
	names := make([]string, 0, len(per))
	for k := range per {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// RenderSnapshot prints a human-readable summary of one run.
func RenderSnapshot(w io.Writer, s *Snapshot) {
	fmt.Fprintf(w, "scenario %s on %s driver: %d workers, %.1fs, rev %s\n",
		s.Scenario, s.Driver, s.Workers, s.DurationSec, s.Rev)
	fmt.Fprintf(w, "  ops %d (errors %d)  qps %.0f  p50 %.0fµs  p95 %.0fµs  p99 %.0fµs\n",
		s.Totals.Ops, s.Totals.Errors, s.Totals.QPS, s.Totals.P50Micro, s.Totals.P95Micro, s.Totals.P99Micro)
	fmt.Fprintf(w, "  cache hit ratio %.4f  allocs/op %.1f  bytes/op %.0f\n",
		s.Totals.CacheHitRatio, s.Totals.AllocsPerOp, s.Totals.BytesPerOp)
	if s.Handoffs > 0 {
		fmt.Fprintf(w, "  handoffs %d  pause p99 %.0fµs\n", s.Handoffs, s.HandoffPauseP99Micro)
	}
	for _, k := range opNames(s.PerOp) {
		o := s.PerOp[k]
		fmt.Fprintf(w, "  %-8s count %-9d p50 %.0fµs  p95 %.0fµs  p99 %.0fµs\n",
			k, o.Count, o.P50Micro, o.P95Micro, o.P99Micro)
	}
}
