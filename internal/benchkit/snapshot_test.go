package benchkit

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sampleSnapshot builds a plausible recorded run for round-trip tests.
func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Schema:      SchemaVersion,
		Rev:         "abc1234",
		Timestamp:   "2026-07-29T12:00:00Z",
		Scenario:    "ci",
		Driver:      "inproc",
		Workers:     4,
		QPSTarget:   0,
		DurationSec: 2.01,
		Seed:        1,
		GoVersion:   "go1.24.0",
		Maxprocs:    4,
		Note:        "baseline",
		Totals: Metrics{
			Ops: 1_000_000, Errors: 2, QPS: 497_512.4,
			P50Micro: 1.2, P95Micro: 4.5, P99Micro: 9.8,
			CacheHitRatio: 0.996, AllocsPerOp: 2.7, BytesPerOp: 71,
		},
		PerOp: map[string]OpStats{
			"window": {Count: 700_000, P50Micro: 1.5, P95Micro: 5, P99Micro: 11},
			"next":   {Count: 200_000, P50Micro: 0.2, P95Micro: 0.4, P99Micro: 0.9},
		},
	}
}

// TestSnapshotRoundTrip: a written BENCH_*.json re-parses to the same value.
func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_abc1234.json")
	want := sampleSnapshot()
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != want.Rev || got.Scenario != want.Scenario || got.Driver != want.Driver ||
		got.Totals != want.Totals || got.Workers != want.Workers || got.Seed != want.Seed {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if len(got.PerOp) != len(want.PerOp) || got.PerOp["window"] != want.PerOp["window"] {
		t.Fatalf("per-op round trip mismatch: %+v", got.PerOp)
	}
}

// TestLoadSnapshotRejects: schema mismatches and empty runs fail to load.
func TestLoadSnapshotRejects(t *testing.T) {
	dir := t.TempDir()
	s := sampleSnapshot()
	s.Schema = SchemaVersion + 1
	bad := filepath.Join(dir, "bad_schema.json")
	if err := s.WriteFile(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}

	s = sampleSnapshot()
	s.Totals.Ops = 0
	empty := filepath.Join(dir, "empty.json")
	if err := s.WriteFile(empty); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(empty); err == nil {
		t.Fatal("want error for zero-op snapshot")
	}

	if _, err := LoadSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}

// TestCompareVerdicts is the table-driven gate-policy test: throughput is
// gated at the threshold, latency/alloc metrics are informational.
func TestCompareVerdicts(t *testing.T) {
	cases := []struct {
		name      string
		mutate    func(s *Snapshot)
		threshold float64
		wantPass  bool
	}{
		{"identical", func(*Snapshot) {}, 0.25, true},
		{"qps-up", func(s *Snapshot) { s.Totals.QPS *= 2 }, 0.25, true},
		{"qps-down-within", func(s *Snapshot) { s.Totals.QPS *= 0.80 }, 0.25, true},
		{"qps-down-beyond", func(s *Snapshot) { s.Totals.QPS *= 0.50 }, 0.25, false},
		{"qps-down-tight-threshold", func(s *Snapshot) { s.Totals.QPS *= 0.80 }, 0.10, false},
		// Latency and allocation regressions alone do not gate: they are
		// trend metrics, reported but not failed on (runner noise makes
		// them flappy at CI durations).
		{"p99-spike", func(s *Snapshot) { s.Totals.P99Micro *= 10 }, 0.25, true},
		{"allocs-spike", func(s *Snapshot) { s.Totals.AllocsPerOp *= 10 }, 0.25, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old, new := sampleSnapshot(), sampleSnapshot()
			tc.mutate(new)
			cmp := Compare(old, new, tc.threshold)
			if cmp.Pass != tc.wantPass {
				t.Fatalf("pass = %v, want %v (deltas %+v)", cmp.Pass, tc.wantPass, cmp.Deltas)
			}
			var rendered strings.Builder
			cmp.Render(&rendered, tc.threshold)
			wantWord := "BENCH PASS"
			if !tc.wantPass {
				wantWord = "BENCH FAIL"
			}
			if !strings.Contains(rendered.String(), wantWord) {
				t.Fatalf("rendered verdict missing %q:\n%s", wantWord, rendered.String())
			}
		})
	}
}

// TestCompareMismatch: snapshots of different scenarios or drivers are
// incomparable and fail outright.
func TestCompareMismatch(t *testing.T) {
	old, new := sampleSnapshot(), sampleSnapshot()
	new.Scenario = "mixed"
	if cmp := Compare(old, new, 0.25); cmp.Pass || cmp.Mismatch == "" {
		t.Fatalf("scenario mismatch should fail: %+v", cmp)
	}
	old, new = sampleSnapshot(), sampleSnapshot()
	new.Driver = "http"
	if cmp := Compare(old, new, 0.25); cmp.Pass || cmp.Mismatch == "" {
		t.Fatalf("driver mismatch should fail: %+v", cmp)
	}
	// Different worker counts make throughput incomparable: parallelism
	// headroom could mask a real serving regression.
	old, new = sampleSnapshot(), sampleSnapshot()
	new.Workers = old.Workers * 4
	new.Totals.QPS = old.Totals.QPS * 2
	if cmp := Compare(old, new, 0.25); cmp.Pass || cmp.Mismatch == "" {
		t.Fatalf("worker-count mismatch should fail: %+v", cmp)
	}
}

// TestHistQuantiles sanity-checks the geometric histogram against a known
// distribution: quantiles of uniform microsecond latencies land within the
// bucket resolution, and merging partial histograms equals recording into
// one.
func TestHistQuantiles(t *testing.T) {
	var whole Hist
	var parts [4]Hist
	for i := 0; i < 10_000; i++ {
		d := time.Duration(i%1000+1) * time.Microsecond
		whole.Record(d)
		parts[i%4].Record(d)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != whole {
		t.Fatal("merged histogram differs from directly recorded one")
	}
	for _, q := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Microsecond}, {0.95, 950 * time.Microsecond}, {0.99, 990 * time.Microsecond}} {
		got := whole.Quantile(q.q)
		if ratio := float64(got) / float64(q.want); ratio < 0.90 || ratio > 1.10 {
			t.Errorf("q%.2f = %v, want within 10%% of %v", q.q, got, q.want)
		}
	}
	var empty Hist
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram should report zero quantiles and mean")
	}
}
