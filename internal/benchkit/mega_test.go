package benchkit

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestWithChurnFraction: the derived mix dedicates the requested fraction of
// ops to churn while preserving the source's read and churn ratios.
func TestWithChurnFraction(t *testing.T) {
	base := &Scenario{
		Name:        "wcf",
		Communities: []CommunitySpec{{ID: "a", Spec: "cycle:n=32"}},
		Mix:         OpMix{Window: 3, Next: 1, Marry: 7, Divorce: 3},
		WindowSpan:  8,
		Horizon:     1 << 16,
	}
	cases := []struct {
		frac    float64
		wantMix OpMix
	}{
		{0, OpMix{Window: 750, Next: 250}},
		{0.2, OpMix{Window: 600, Next: 200, Marry: 140, Divorce: 60}},
		{0.5, OpMix{Window: 375, Next: 125, Marry: 350, Divorce: 150}},
		{1, OpMix{Marry: 700, Divorce: 300}},
	}
	for _, tc := range cases {
		d, err := base.WithChurnFraction(tc.frac)
		if err != nil {
			t.Fatalf("frac %v: %v", tc.frac, err)
		}
		if d.Mix != tc.wantMix {
			t.Errorf("frac %v: mix %+v, want %+v", tc.frac, d.Mix, tc.wantMix)
		}
		if d.ChurnFrac != tc.frac {
			t.Errorf("frac %v: ChurnFrac recorded as %v", tc.frac, d.ChurnFrac)
		}
	}
	// A read-only source gets the default 60:40 marry:divorce split.
	ro := *base
	ro.Mix = OpMix{Window: 1, Next: 1}
	d, err := ro.WithChurnFraction(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mix != (OpMix{Window: 350, Next: 350, Marry: 180, Divorce: 120}) {
		t.Errorf("read-only source: mix %+v", d.Mix)
	}
	// The source scenario must be left untouched.
	if base.Mix != (OpMix{Window: 3, Next: 1, Marry: 7, Divorce: 3}) || base.ChurnFrac != 0 {
		t.Errorf("WithChurnFraction mutated its receiver: %+v", base)
	}
	for _, bad := range []float64{-0.1, 1.01} {
		if _, err := base.WithChurnFraction(bad); err == nil {
			t.Errorf("fraction %v accepted", bad)
		}
	}
}

// TestOpGenZipfSkew: with a positive ZipfS the head community (listed first)
// is drawn with weight 1/1^s of the harmonic-like mass, and the empirical
// frequencies match the analytic weights. ZipfS == 0 stays uniform.
func TestOpGenZipfSkew(t *testing.T) {
	const n, samples, s = 8, 400_000, 1.1
	sc := &Scenario{
		Name:       "zipf",
		Mix:        OpMix{Window: 1},
		WindowSpan: 8,
		Horizon:    1 << 16,
		ZipfS:      s,
	}
	sizes := make([]int, n)
	for i := range sizes {
		sc.Communities = append(sc.Communities, CommunitySpec{ID: string(rune('a' + i)), Spec: "cycle:n=16"})
		sizes[i] = 16
	}
	gen := NewOpGen(sc, sizes, 5)
	var counts [n]int
	for i := 0; i < samples; i++ {
		counts[gen.Next().Community]++
	}
	var norm float64
	for i := 0; i < n; i++ {
		norm += math.Pow(float64(i+1), -s)
	}
	for i := 0; i < n; i++ {
		want := math.Pow(float64(i+1), -s) / norm
		got := float64(counts[i]) / samples
		if math.Abs(got-want) > 0.01 {
			t.Errorf("community %d: frequency %.4f, want %.4f ±0.01", i, got, want)
		}
	}
	if counts[0] <= counts[n-1]*3 {
		t.Errorf("head community drew %d vs tail %d: no visible skew", counts[0], counts[n-1])
	}

	// Determinism across generators (the zipf table must not perturb it).
	a, b := NewOpGen(sc, sizes, 9), NewOpGen(sc, sizes, 9)
	for i := 0; i < 2000; i++ {
		if opA, opB := a.Next(), b.Next(); opA != opB {
			t.Fatalf("op %d differs under equal seeds: %+v vs %+v", i, opA, opB)
		}
	}
}

// TestMegaScenarioShape: the mega family exists, is zipf-skewed toward its
// giant head communities, and carries the derived churn fraction.
func TestMegaScenarioShape(t *testing.T) {
	for _, name := range []string{"mega", "mega-ci"} {
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.ZipfS <= 0 {
			t.Errorf("%s: zipf exponent %v, want > 0", name, sc.ZipfS)
		}
		if sc.ChurnFrac != megaChurnFrac {
			t.Errorf("%s: churn fraction %v, want %v", name, sc.ChurnFrac, megaChurnFrac)
		}
		if sc.Mix.Marry == 0 || sc.Mix.Divorce == 0 {
			t.Errorf("%s: churn missing from mix %+v", name, sc.Mix)
		}
		if !strings.HasPrefix(sc.Communities[0].ID, "mega-big-") {
			t.Errorf("%s: first community %q is not a giant (zipf head must be the big ones)", name, sc.Communities[0].ID)
		}
	}
}

// TestRunMegaCIBatched drives the mega-ci scenario in process with batching
// and checks the schema-2 snapshot fields: bytes_per_node from the settled
// heap delta, recolorings_per_churn_op from the driver's counters, the
// churn fraction, and the reserved "batch" per-op key.
func TestRunMegaCIBatched(t *testing.T) {
	sc, err := ScenarioByName("mega-ci")
	if err != nil {
		t.Fatal(err)
	}
	short := *sc
	short.Duration = 250 * time.Millisecond
	d := NewInProcDriver(service.NewRegistry())
	snap, err := Run(&short, d, Options{Seed: 17, Workers: 2, Batch: 16, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, snap, "inproc")
	if snap.ChurnFrac != megaChurnFrac {
		t.Errorf("snapshot churn_frac %v, want %v", snap.ChurnFrac, megaChurnFrac)
	}
	if snap.Totals.BytesPerNode <= 0 {
		t.Errorf("bytes_per_node %v, want > 0 for an in-proc run", snap.Totals.BytesPerNode)
	}
	if snap.Totals.RecoloringsPerChurnOp < 0 || math.IsNaN(snap.Totals.RecoloringsPerChurnOp) {
		t.Errorf("recolorings_per_churn_op %v, want finite and >= 0", snap.Totals.RecoloringsPerChurnOp)
	}
	bat, ok := snap.PerOp["batch"]
	if !ok || bat.Count <= 0 {
		t.Fatalf("batched run did not record the \"batch\" per-op key: %+v", snap.PerOp)
	}
	// The raw batch round trip must dominate the amortized per-op p50.
	if bat.P50Micro < snap.Totals.P50Micro {
		t.Errorf("batch p50 %v below amortized per-op p50 %v", bat.P50Micro, snap.Totals.P50Micro)
	}
	// Churn must actually have flowed (the mix dedicates 20% to it) and
	// recolorings must have been observed on at least some edits.
	if snap.PerOp["marry"].Count == 0 || snap.PerOp["divorce"].Count == 0 {
		t.Errorf("mega-ci run generated no churn: %+v", snap.PerOp)
	}
}

// TestRunUnbatchedHasNoBatchKey: the reserved key only appears for Batch > 1.
func TestRunUnbatchedHasNoBatchKey(t *testing.T) {
	d := NewInProcDriver(service.NewRegistry())
	snap, err := Run(testScenario(), d, Options{Seed: 3, Workers: 2, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.PerOp["batch"]; ok {
		t.Fatalf("unbatched run recorded a \"batch\" per-op key: %+v", snap.PerOp)
	}
	// bytes_per_node is not asserted here: the test scenario is small
	// enough that the GC-settled heap delta can round to zero.
}

// TestLoadSnapshotSchema1Fallback: baselines committed before the schema-2
// fields still load (the additions are additive; old files simply omit
// them), while versions outside [1, current] are rejected.
func TestLoadSnapshotSchema1Fallback(t *testing.T) {
	dir := t.TempDir()
	s := sampleSnapshot()
	s.Schema = 1
	s.Totals.BytesPerNode = 0
	s.Totals.RecoloringsPerChurnOp = 0
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(dir, "BENCH_old.json")
	if err := os.WriteFile(old, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(old)
	if err != nil {
		t.Fatalf("schema 1 baseline must still load: %v", err)
	}
	if got.Totals.BytesPerNode != 0 || got.Totals.RecoloringsPerChurnOp != 0 {
		t.Fatalf("schema 1 baseline grew phantom metrics: %+v", got.Totals)
	}

	s.Schema = 0
	raw, _ = json.Marshal(s)
	zero := filepath.Join(dir, "BENCH_zero.json")
	if err := os.WriteFile(zero, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(zero); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema 0 should be rejected, got %v", err)
	}
}

// TestCompareChurnFracMismatch: runs with different churn fractions are
// different workloads and must refuse to gate.
func TestCompareChurnFracMismatch(t *testing.T) {
	old, new := sampleSnapshot(), sampleSnapshot()
	old.ChurnFrac, new.ChurnFrac = 0.2, 0.5
	if cmp := Compare(old, new, 0.25); cmp.Pass || !strings.Contains(cmp.Mismatch, "churn") {
		t.Fatalf("churn-fraction mismatch should fail: %+v", cmp)
	}
}

// TestInProcDoBatchMatchesSequential: the batched in-proc path must leave
// the service in the same state as per-op application of the same stream.
func TestInProcDoBatchMatchesSequential(t *testing.T) {
	sc := &Scenario{
		Name:        "eq",
		Communities: []CommunitySpec{{ID: "a", Spec: "cycle:n=48"}, {ID: "b", Spec: "gnp:n=32,p=0.1"}},
		Mix:         OpMix{Window: 2, Next: 1, Marry: 4, Divorce: 3},
		WindowSpan:  16,
		Horizon:     1 << 16,
	}
	run := func(batch int) (*InProcDriver, []error) {
		d := NewInProcDriver(service.NewRegistry())
		sizes, err := d.Setup(sc, 99)
		if err != nil {
			t.Fatal(err)
		}
		gen := NewOpGen(sc, sizes, 123)
		ops := make([]Op, 256)
		for i := range ops {
			ops[i] = gen.Next()
		}
		errs := make([]error, len(ops))
		if batch > 1 {
			for i := 0; i < len(ops); i += batch {
				j := min(i+batch, len(ops))
				if err := d.DoBatch(ops[i:j], errs[i:j]); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for i, op := range ops {
				errs[i] = d.Do(op)
			}
		}
		return d, errs
	}
	seq, seqErrs := run(1)
	bat, batErrs := run(16)
	for i := range seqErrs {
		if (seqErrs[i] == nil) != (batErrs[i] == nil) {
			t.Fatalf("op %d: sequential err %v vs batched err %v", i, seqErrs[i], batErrs[i])
		}
	}
	for ci := range seq.comms {
		s1, s2 := seq.comms[ci].Stats(), bat.comms[ci].Stats()
		if s1.Marriages != s2.Marriages || s1.Version != s2.Version || s1.Recolorings != s2.Recolorings {
			t.Fatalf("community %d diverged: sequential %+v vs batched %+v", ci, s1, s2)
		}
	}
	r1, err := seq.Recolorings()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := bat.Recolorings()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("recoloring counters diverged: sequential %d vs batched %d", r1, r2)
	}
}

// TestHTTPRecolorings: the HTTP driver's recoloring probe sums the stats
// endpoint across the scenario's communities.
func TestHTTPRecolorings(t *testing.T) {
	reg := service.NewRegistry()
	hs := httptest.NewServer(service.NewHandler(service.HandlerOpts{Owner: reg}))
	defer hs.Close()
	d := NewHTTPDriver(hs.URL, 1)
	sizes, err := d.Setup(testScenario(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	before, err := d.Recolorings()
	if err != nil {
		t.Fatal(err)
	}
	if before < 0 {
		t.Fatalf("negative recoloring count %d", before)
	}
	// Enough churn to force at least one recoloring somewhere.
	gen := NewOpGen(testScenario(), sizes, 31)
	churned := 0
	for churned < 200 {
		op := gen.Next()
		if op.Kind != OpMarry && op.Kind != OpDivorce {
			continue
		}
		if err := d.Do(op); err != nil {
			t.Fatal(err)
		}
		churned++
	}
	after, err := d.Recolorings()
	if err != nil {
		t.Fatal(err)
	}
	if after < before {
		t.Fatalf("recoloring counter went backwards: %d -> %d", before, after)
	}
}
