package benchkit

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// testScenario is a tiny mixed workload for end-to-end runner tests.
func testScenario() *Scenario {
	return &Scenario{
		Name: "test",
		Communities: []CommunitySpec{
			{ID: "gnp-t", Spec: "gnp:n=48,p=0.08"},
			{ID: "ring-t", Spec: "cycle:n=24"},
			{ID: "clique-t", Spec: "clique:n=8"},
		},
		Mix:        OpMix{Window: 60, Next: 25, Marry: 9, Divorce: 6},
		WindowSpan: 16,
		Horizon:    1 << 16,
		Duration:   150 * time.Millisecond,
	}
}

// checkSnapshot asserts the invariants every recorded run must satisfy.
func checkSnapshot(t *testing.T, s *Snapshot, wantDriver string) {
	t.Helper()
	if s.Schema != SchemaVersion {
		t.Errorf("schema %d, want %d", s.Schema, SchemaVersion)
	}
	if s.Driver != wantDriver {
		t.Errorf("driver %q, want %q", s.Driver, wantDriver)
	}
	if s.Totals.Ops <= 0 {
		t.Fatalf("no ops recorded: %+v", s.Totals)
	}
	if s.Totals.Errors != 0 {
		t.Errorf("%d op errors in a clean run", s.Totals.Errors)
	}
	if s.Totals.QPS <= 0 {
		t.Errorf("qps %f not positive", s.Totals.QPS)
	}
	if s.Totals.P50Micro <= 0 || s.Totals.P95Micro < s.Totals.P50Micro || s.Totals.P99Micro < s.Totals.P95Micro {
		t.Errorf("quantiles not ordered: p50 %f p95 %f p99 %f",
			s.Totals.P50Micro, s.Totals.P95Micro, s.Totals.P99Micro)
	}
	if s.Totals.CacheHitRatio <= 0 || s.Totals.CacheHitRatio > 1 {
		t.Errorf("cache hit ratio %f outside (0,1]", s.Totals.CacheHitRatio)
	}
	var perOpTotal int64
	for k, o := range s.PerOp {
		if o.Count <= 0 {
			t.Errorf("op %q recorded with zero count", k)
		}
		if k == "batch" {
			// Reserved key: counts whole-batch round trips, not ops.
			continue
		}
		perOpTotal += o.Count
	}
	if perOpTotal != s.Totals.Ops {
		t.Errorf("per-op counts sum to %d, totals say %d", perOpTotal, s.Totals.Ops)
	}
}

// TestRunInProc drives the in-process serving path end to end and checks
// the snapshot is internally consistent and survives a file round trip.
func TestRunInProc(t *testing.T) {
	reg := service.NewRegistry()
	d := NewInProcDriver(reg)
	snap, err := Run(testScenario(), d, Options{Seed: 3, Workers: 2, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, snap, "inproc")
	if got := reg.List(); len(got) != 0 {
		t.Errorf("driver left communities registered after Close: %v", got)
	}
	path := t.TempDir() + "/BENCH_test.json"
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if cmp := Compare(back, snap, 0.25); !cmp.Pass {
		t.Fatalf("run should not regress against its own snapshot: %+v", cmp.Deltas)
	}
}

// TestRunHTTP drives the full HTTP stack (handler, routing, JSON) through
// an httptest server and checks the communities are created and torn down.
func TestRunHTTP(t *testing.T) {
	reg := service.NewRegistry()
	srv := httptest.NewServer(service.NewHandler(service.HandlerOpts{Owner: reg}))
	defer srv.Close()
	d := NewHTTPDriver(srv.URL, 2)
	snap, err := Run(testScenario(), d, Options{Seed: 3, Workers: 2, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, snap, "http")
	if got := reg.List(); len(got) != 0 {
		t.Errorf("HTTP driver left communities on the server after Close: %v", got)
	}
}

// TestRunThrottled: a QPS target well below the unthrottled rate is honored
// within generous scheduling tolerance.
func TestRunThrottled(t *testing.T) {
	sc := testScenario()
	sc.Duration = 500 * time.Millisecond
	snap, err := Run(sc, NewInProcDriver(service.NewRegistry()), Options{Seed: 5, Workers: 2, QPS: 200})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Totals.QPS > 400 {
		t.Errorf("throttle at 200 qps measured %.0f qps", snap.Totals.QPS)
	}
	if snap.QPSTarget != 200 {
		t.Errorf("snapshot records qps target %f, want 200", snap.QPSTarget)
	}
}

// failingDriver serves window/next instantly but errors every churn op —
// a stand-in for a regression that breaks one op class.
type failingDriver struct {
	inner *InProcDriver
}

func (f *failingDriver) Name() string { return "inproc" }
func (f *failingDriver) Setup(sc *Scenario, seed uint64) ([]int, error) {
	return f.inner.Setup(sc, seed)
}
func (f *failingDriver) Do(op Op) error {
	if op.Kind == OpMarry || op.Kind == OpDivorce {
		return errTestChurnBroken
	}
	return f.inner.Do(op)
}
func (f *failingDriver) CacheStats() (int64, int64, error) { return f.inner.CacheStats() }
func (f *failingDriver) Close() error                      { return f.inner.Close() }

var errTestChurnBroken = &testError{"churn path broken"}

type testError struct{ msg string }

func (e *testError) Error() string { return e.msg }

// TestRunErrorsExcludedFromQPS: ops that fail must not count toward the
// gated throughput — failing fast never reads as a speedup.
func TestRunErrorsExcludedFromQPS(t *testing.T) {
	d := &failingDriver{inner: NewInProcDriver(service.NewRegistry())}
	snap, err := Run(testScenario(), d, Options{Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Totals.Errors == 0 {
		t.Fatal("scenario mixes churn ops; expected errors from the failing driver")
	}
	served := float64(snap.Totals.Ops - snap.Totals.Errors)
	wantQPS := served / snap.DurationSec
	if ratio := snap.Totals.QPS / wantQPS; ratio < 0.999 || ratio > 1.001 {
		t.Errorf("qps %.1f counts errored ops; want %.1f (served/elapsed)", snap.Totals.QPS, wantQPS)
	}
}

// TestRunRejectsInvalidScenario: structural problems surface before any
// community is created.
func TestRunRejectsInvalidScenario(t *testing.T) {
	sc := testScenario()
	sc.Mix = OpMix{}
	if _, err := Run(sc, NewInProcDriver(service.NewRegistry()), Options{}); err == nil {
		t.Fatal("want error for empty mix")
	}
	sc = testScenario()
	sc.Communities = nil
	if _, err := Run(sc, NewInProcDriver(service.NewRegistry()), Options{}); err == nil {
		t.Fatal("want error for no communities")
	}
	// Churn ops need two distinct families per community: a one-family
	// community must be rejected after setup, not panic a worker.
	sc = testScenario()
	sc.Communities = append(sc.Communities, CommunitySpec{ID: "solo", Spec: "empty:n=1"})
	if _, err := Run(sc, NewInProcDriver(service.NewRegistry()), Options{}); err == nil ||
		!strings.Contains(err.Error(), "solo") {
		t.Fatalf("want size error naming the one-family community, got %v", err)
	}
}
