package benchkit

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

// ClusterDriver drives a sharded holidayd cluster: writes route client-side
// to each community's placed owner (the same consistent-hash function the
// daemons compute, so no request pays a server-side forward hop) and reads
// fan out round-robin across every member — replicas serve window and next
// queries from their fenced copies, which is the read-scaling story the
// BENCH_<rev>_cluster.json snapshots record.
type ClusterDriver struct {
	nodes  []*HTTPDriver // index-aligned with router node order
	ids    []string      // node ids, index-aligned with nodes
	router *service.Router
	reads  atomic.Uint64

	// Proto selects the wire protocol for window/next queries, as on
	// HTTPDriver.
	Proto string

	// Rotation state: mid-run live handoffs and the write pauses they cost.
	rotMu  sync.Mutex
	rotIdx int
	pauses []time.Duration
}

// NewClusterDriver builds a driver over a cluster topology. Every member
// gets its own connection pool sized for workers concurrent streams.
func NewClusterDriver(topo service.Topology, workers int) (*ClusterDriver, error) {
	router, err := service.NewRouter(service.RouterOpts{Nodes: topo.Nodes})
	if err != nil {
		return nil, err
	}
	d := &ClusterDriver{router: router}
	for _, n := range router.Nodes() {
		d.nodes = append(d.nodes, NewHTTPDriver(n.Addr, workers))
		d.ids = append(d.ids, n.ID)
	}
	return d, nil
}

// Name implements Driver.
func (d *ClusterDriver) Name() string { return "cluster" }

// NodeCount reports the cluster size recorded in snapshots.
func (d *ClusterDriver) NodeCount() int { return len(d.nodes) }

// ProtoName implements the protocol label hook, as on HTTPDriver.
func (d *ClusterDriver) ProtoName() string {
	if d.Proto == ProtoBinary {
		return ProtoBinary
	}
	return ""
}

// ownerIdx resolves the node index owning a community (by scenario index).
func (d *ClusterDriver) ownerIdx(community int) int {
	placed := d.router.Place(d.nodes[0].ids[community])
	for i, id := range d.ids {
		if id == placed {
			return i
		}
	}
	return 0
}

// Setup implements Driver: communities are created through their placed
// owner directly. Every member driver shares the id list so any of them
// can serve reads for any community.
func (d *ClusterDriver) Setup(sc *Scenario, seed uint64) ([]int, error) {
	// Partition the scenario by placement and let each owner's HTTPDriver
	// create its own shard; then give every node driver the full id list
	// (Setup only appended its own).
	byNode := make([]Scenario, len(d.nodes))
	for _, cs := range sc.Communities {
		i := 0
		placed := d.router.Place(cs.ID)
		for j, id := range d.ids {
			if id == placed {
				i = j
			}
		}
		byNode[i].Communities = append(byNode[i].Communities, cs)
	}
	sizeByID := make(map[string]int, len(sc.Communities))
	for i := range d.nodes {
		d.nodes[i].Proto = d.Proto
		if len(byNode[i].Communities) == 0 {
			continue
		}
		// Seed must match the single-node run per community index in sc,
		// not per shard, or op streams would target different graphs:
		// create one community at a time with its scenario-global seed.
		for _, cs := range byNode[i].Communities {
			idx := indexOf(sc, cs.ID)
			one := Scenario{Communities: []CommunitySpec{cs}}
			sizes, err := d.nodes[i].Setup(&one, seed+uint64(idx))
			if err != nil {
				return nil, err
			}
			sizeByID[cs.ID] = sizes[0]
		}
	}
	ids := make([]string, len(sc.Communities))
	sizes := make([]int, len(sc.Communities))
	for i, cs := range sc.Communities {
		ids[i] = cs.ID
		sizes[i] = sizeByID[cs.ID]
	}
	for i := range d.nodes {
		d.nodes[i].ids = ids
	}
	return sizes, nil
}

// indexOf finds a community's index in the scenario.
func indexOf(sc *Scenario, id string) int {
	for i, cs := range sc.Communities {
		if cs.ID == id {
			return i
		}
	}
	return 0
}

// Do implements Driver: writes go to the owner, reads round-robin across
// the whole membership.
func (d *ClusterDriver) Do(op Op) error {
	return d.nodes[d.pick(op)].Do(op)
}

// pick routes one op to a node index.
func (d *ClusterDriver) pick(op Op) int {
	switch op.Kind {
	case OpWindow, OpNext:
		return int(d.reads.Add(1) % uint64(len(d.nodes)))
	default:
		return d.ownerIdx(op.Community)
	}
}

// DoBatch implements BatchDriver: ops are grouped per target node and each
// group goes out as one (or a few) batched requests on that node.
func (d *ClusterDriver) DoBatch(ops []Op, errs []error) error {
	if len(d.nodes) == 1 {
		return d.nodes[0].DoBatch(ops, errs)
	}
	groups := make([][]int, len(d.nodes))
	for i, op := range ops {
		n := d.pick(op)
		groups[n] = append(groups[n], i)
	}
	var firstErr error
	for n, idx := range groups {
		if len(idx) == 0 {
			continue
		}
		sub := make([]Op, len(idx))
		subErrs := make([]error, len(idx))
		for j, i := range idx {
			sub[j] = ops[i]
		}
		if err := d.nodes[n].DoBatch(sub, subErrs); err != nil && firstErr == nil {
			firstErr = err
		}
		for j, i := range idx {
			errs[i] = subErrs[j]
		}
	}
	return firstErr
}

// CacheStats implements Driver, summing the counters across members so
// replica-served reads are counted where they were served.
func (d *ClusterDriver) CacheStats() (hits, misses int64, err error) {
	for _, n := range d.nodes {
		h, m, err := n.localCacheStats()
		if err != nil {
			return 0, 0, err
		}
		hits += h
		misses += m
	}
	return hits, misses, nil
}

// Recolorings sums the recoloring counters via each community's owner.
func (d *ClusterDriver) Recolorings() (int64, error) {
	var total int64
	for i := range d.nodes[0].ids {
		n, err := d.nodes[d.ownerIdx(i)].recoloringsOf(i)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Rotate performs one live community handoff while the workload runs: the
// next community in round-robin order moves from its current owner to the
// next member in id order, via the same /v1/handoff path holidayctl uses.
// The driver's client-side router re-learns the published table, so writes
// follow the community to its new owner; the write pause the move cost is
// recorded for the snapshot's handoff_pause_p99_us.
func (d *ClusterDriver) Rotate(ctx context.Context) error {
	if len(d.nodes) < 2 {
		return fmt.Errorf("benchkit: rotation needs at least two nodes")
	}
	ids := d.nodes[0].ids
	if len(ids) == 0 {
		return fmt.Errorf("benchkit: rotation before Setup")
	}
	d.rotMu.Lock()
	community := ids[d.rotIdx%len(ids)]
	d.rotIdx++
	d.rotMu.Unlock()

	fromIdx := 0
	from := d.router.Place(community)
	for j, id := range d.ids {
		if id == from {
			fromIdx = j
		}
	}
	to := d.ids[(fromIdx+1)%len(d.ids)]

	rb := &cluster.Rebalancer{}
	mv, err := rb.MoveCommunity(ctx, d.nodes[fromIdx].base, community, to)
	if err != nil {
		return fmt.Errorf("benchkit: rotate %q %s→%s: %w", community, from, to, err)
	}
	// Re-learn the table from the old owner (the handoff installed it on
	// both ends) so the next write routes to the new owner, not through a
	// 421 retry.
	p, err := rb.FetchPlacement(ctx, d.nodes[fromIdx].base)
	if err != nil {
		return fmt.Errorf("benchkit: rotate %q: refresh table: %w", community, err)
	}
	d.router.SetPlacement(p)

	d.rotMu.Lock()
	d.pauses = append(d.pauses, mv.Pause)
	d.rotMu.Unlock()
	return nil
}

// HandoffPauses returns the write pauses recorded by Rotate so far.
func (d *ClusterDriver) HandoffPauses() []time.Duration {
	d.rotMu.Lock()
	defer d.rotMu.Unlock()
	return append([]time.Duration(nil), d.pauses...)
}

// PauseP99 reports the nearest-rank 99th-percentile pause in microseconds
// (0 for an empty set) — the snapshot's handoff_pause_p99_us.
func PauseP99(pauses []time.Duration) float64 {
	if len(pauses) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), pauses...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (99*len(sorted)+99)/100 - 1
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Microsecond)
}

// VerifyReadYourWrites checks the replication contract the cluster bench
// relies on: a write acknowledged by a community's owner (with its journal
// sequence) becomes visible on every replica — same sequence, then
// byte-identical window — within the deadline.
func (d *ClusterDriver) VerifyReadYourWrites(community string, deadline time.Duration) error {
	ownerIdx := 0
	placed := d.router.Place(community)
	for j, id := range d.ids {
		if id == placed {
			ownerIdx = j
		}
	}
	owner := d.nodes[ownerIdx]

	// One churn op through the owner; its response carries the journal
	// sequence the batch landed at.
	body := `[{"op":"marry","u":0,"v":1},{"op":"divorce","u":0,"v":1}]`
	resp, err := owner.client.Post(owner.base+"/v1/communities/"+url.PathEscape(community)+"/churn",
		"application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	var ack struct {
		Seq uint64 `json:"seq"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("benchkit: churn ack: %w", err)
	}
	if ack.Seq == 0 {
		return fmt.Errorf("benchkit: owner acked churn without a sequence")
	}

	want, err := owner.fetchWindow(community, 1, 60)
	if err != nil {
		return err
	}
	limit := time.Now().Add(deadline)
	for i, n := range d.nodes {
		if i == ownerIdx {
			continue
		}
		for {
			seq, err := n.communitySeq(community)
			if err == nil && seq >= ack.Seq {
				break
			}
			if time.Now().After(limit) {
				return fmt.Errorf("benchkit: node %s never reached seq %d for %q (last: %d, %v)",
					d.ids[i], ack.Seq, community, seq, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		got, err := n.fetchWindow(community, 1, 60)
		if err != nil {
			return err
		}
		if string(got) != string(want) {
			return fmt.Errorf("benchkit: node %s window diverges from owner for %q", d.ids[i], community)
		}
	}
	return nil
}

// Close implements Driver: communities are deleted once, via their owners.
func (d *ClusterDriver) Close() error {
	var firstErr error
	for i := range d.nodes {
		// Restrict each node driver's Close to nothing (ids cleared) except
		// node 0, which deletes through forwarding.
		if i == 0 {
			if err := d.nodes[i].Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		d.nodes[i].ids = nil
		if err := d.nodes[i].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
