package benchkit

import (
	"math"
	"time"
)

// Hist is a geometric-bucket latency histogram: bucket i covers
// [histBase·histRatio^i, histBase·histRatio^(i+1)) nanoseconds, giving
// ~9% relative quantile error from 100ns to beyond 100s with a few hundred
// buckets and O(1) lock-free recording per sample (each worker owns one Hist
// and they merge after the run).
type Hist struct {
	counts [histBuckets]int64
	n      int64
	sum    int64 // total nanoseconds, for Mean
	min    int64
	max    int64
}

const (
	histBase    = 100.0 // ns: everything faster lands in bucket 0
	histRatio   = 1.09
	histBuckets = 256
)

// histLogRatio caches 1/ln(histRatio) for bucket indexing.
var histLogRatio = 1 / math.Log(histRatio)

// bucketOf maps a latency in nanoseconds to its bucket.
func bucketOf(ns int64) int {
	if ns < histBase {
		return 0
	}
	b := int(math.Log(float64(ns)/histBase) * histLogRatio)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketValue returns the representative latency (geometric midpoint) of a
// bucket, in nanoseconds.
func bucketValue(b int) int64 {
	return int64(histBase * math.Pow(histRatio, float64(b)+0.5))
}

// Record adds one sample.
func (h *Hist) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)]++
	h.sum += ns
	if h.n == 0 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.n++
}

// Merge folds another histogram into h.
func (h *Hist) Merge(o *Hist) {
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.n }

// Mean returns the average sample.
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as a duration, clamped to the
// observed min/max so tiny sample counts do not report bucket-boundary
// artifacts. Returns 0 when empty.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketValue(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}
