package benchkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/persist"
	"repro/internal/service"
	"repro/internal/wire"
)

// Protocol labels for HTTPDriver.Proto and Snapshot.Proto.
const (
	// ProtoJSON drives the JSON endpoints (the default; snapshots omit it
	// for compatibility with pre-protocol baselines).
	ProtoJSON = "json"
	// ProtoBinary drives window and next queries through the /v1/bin
	// endpoints in the internal/wire packed-bitmap format. Batched binary
	// runs also send churn through /v1/bin/churn (where the server groups
	// each community's edits into one amortized flush); unbatched churn
	// stays on the JSON API.
	ProtoBinary = "binary"
)

// BatchDriver is the optional Driver extension for batched requests: one
// DoBatch call carries len(ops) queries and fills errs (len(errs) ==
// len(ops)) with per-op outcomes. The returned error is a transport-level
// failure of the whole batch.
type BatchDriver interface {
	DoBatch(ops []Op, errs []error) error
}

// Driver executes generated ops against a target. Implementations must be
// safe for concurrent Do calls: the runner issues them from every worker.
type Driver interface {
	// Name tags the snapshot ("inproc" or "http").
	Name() string
	// Setup creates the scenario's communities on the target and returns
	// their family counts, which seed the op generators.
	Setup(sc *Scenario, seed uint64) (sizes []int, err error)
	// Do executes one op, returning an error only for genuine failures
	// (benign outcomes like divorcing a couple that never married count as
	// served traffic).
	Do(op Op) error
	// CacheStats sums the frozen-schedule cache counters across the
	// scenario's communities.
	CacheStats() (hits, misses int64, err error)
	// Close releases the scenario's communities.
	Close() error
}

// InProcDriver drives a service.Registry in the same process — the
// lowest-overhead view of the serving path, and the one whose allocation
// counts are meaningful.
type InProcDriver struct {
	reg     *service.Registry
	comms   []*service.Community
	rows    sync.Pool // *[]service.HolidayRow window buffers, reused across ops
	batches sync.Pool // *churnBatches grouping state, reused across DoBatch calls

	// ForcePersist enables the durability subsystem even for scenarios
	// that don't set Persist themselves — how the CI bench-gate runs the
	// canonical "ci" scenario with WAL cost priced in while staying
	// name-comparable to the committed baseline.
	ForcePersist bool
	// SyncEveryOp opens the WAL with per-record fsync (persist.SyncAlways)
	// instead of timer-based group commit: every acknowledged churn op is
	// durable. This is the regime where batch size matters most — a flush
	// of K coalesced edits is one fsync instead of K — so the committed
	// churn baselines are recorded under it.
	SyncEveryOp bool
	store       *persist.Store
	persistDir  string
}

// NewInProcDriver wraps a registry (usually a fresh one).
func NewInProcDriver(reg *service.Registry) *InProcDriver {
	return &InProcDriver{
		reg:     reg,
		rows:    sync.Pool{New: func() any { return new([]service.HolidayRow) }},
		batches: sync.Pool{New: func() any { return new(churnBatches) }},
	}
}

// Name implements Driver.
func (d *InProcDriver) Name() string { return "inproc" }

// Persistent reports whether the durability subsystem is active for the
// current run (see Snapshot.Persist).
func (d *InProcDriver) Persistent() bool { return d.store != nil }

// WALSyncAlways reports whether the run's WAL acknowledged records only
// after fsync (see Snapshot.WALSyncAlways).
func (d *InProcDriver) WALSyncAlways() bool { return d.store != nil && d.SyncEveryOp }

// Setup implements Driver. For persistence-enabled runs (Scenario.Persist
// or ForcePersist) it opens a durability store in a fresh temporary data
// directory and attaches its WAL before creating the communities, so
// creation and every churn op of the run pay the real write-ahead cost.
func (d *InProcDriver) Setup(sc *Scenario, seed uint64) ([]int, error) {
	if sc.Persist || d.ForcePersist {
		dir, err := os.MkdirTemp("", "benchkit-persist-*")
		if err != nil {
			return nil, fmt.Errorf("benchkit: persist dir: %w", err)
		}
		popts := persist.Options{}
		if d.SyncEveryOp {
			popts.Sync = persist.SyncAlways
		}
		store, err := persist.Open(dir, popts)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		d.store, d.persistDir = store, dir
		d.reg.SetJournal(store.Journal())
	}
	sizes := make([]int, len(sc.Communities))
	for i, cs := range sc.Communities {
		g, err := graph.ParseSpec(cs.Spec, seed+uint64(i))
		if err != nil {
			d.Close() // the runner only closes after a successful Setup
			return nil, fmt.Errorf("benchkit: community %q: %w", cs.ID, err)
		}
		var c *service.Community
		if cs.Kind == service.KindPoly {
			edges := make([][2]int, 0, g.M())
			for _, e := range g.Edges() {
				edges = append(edges, [2]int{e.U, e.V})
			}
			c, err = d.reg.CreateSpec(service.CreateSpec{
				ID: cs.ID, Families: g.N(), Edges: edges,
				Kind: service.KindPoly, Code: cs.Code, DefaultDemand: cs.DefaultDemand,
			})
		} else {
			c, err = d.reg.CreateFromGraph(cs.ID, g, cs.Code)
		}
		if err != nil {
			d.Close()
			return nil, err
		}
		d.comms = append(d.comms, c)
		sizes[i] = g.N()
	}
	return sizes, nil
}

// Do implements Driver.
func (d *InProcDriver) Do(op Op) error {
	c := d.comms[op.Community]
	switch op.Kind {
	case OpWindow:
		buf := d.rows.Get().(*[]service.HolidayRow)
		rows, err := c.AppendWindow((*buf)[:0], op.From, op.To)
		if err == nil && int64(len(rows)) != op.To-op.From+1 {
			err = fmt.Errorf("benchkit: window [%d,%d] returned %d rows", op.From, op.To, len(rows))
		}
		*buf = rows
		d.rows.Put(buf)
		return err
	case OpNext:
		_, err := c.NextHappy(op.U, op.From)
		return err
	case OpMarry:
		_, err := c.Marry(op.U, op.V)
		return err
	case OpDivorce:
		_, _, err := c.Divorce(op.U, op.V)
		return err
	default:
		return fmt.Errorf("benchkit: unknown op kind %d", op.Kind)
	}
}

// DoBatch implements BatchDriver: the batch's churn ops are grouped per
// community and applied through Community.ChurnBatch — one write-lock
// acquisition, one journal group-commit, at most one cache invalidation per
// community per batch — while read ops are served individually (reads have
// no batched form in-process; the lock they share is the read lock). This is
// the amortized write path the -churn-batch flag of cmd/holidayload drives.
func (d *InProcDriver) DoBatch(ops []Op, errs []error) error {
	if len(errs) != len(ops) {
		return fmt.Errorf("benchkit: DoBatch needs len(errs) == len(ops), got %d and %d", len(errs), len(ops))
	}
	b := d.batches.Get().(*churnBatches)
	defer d.batches.Put(b)
	b.reset(len(d.comms))
	for i, op := range ops {
		switch op.Kind {
		case OpMarry:
			b.add(op.Community, i, core.Edit{Op: core.EditInsert, U: op.U, V: op.V})
		case OpDivorce:
			b.add(op.Community, i, core.Edit{Op: core.EditDelete, U: op.U, V: op.V})
		default:
			errs[i] = d.Do(op)
		}
	}
	for _, ci := range b.order {
		g := &b.perComm[ci]
		if cap(b.res) < len(g.edits) {
			b.res = make([]core.EditResult, len(g.edits))
		}
		if _, err := d.comms[ci].ChurnBatch(g.edits, b.res[:len(g.edits)]); err != nil {
			for _, i := range g.idx {
				errs[i] = err
			}
		}
	}
	return nil
}

// churnBatches is the reusable per-call grouping state of InProcDriver
// batches, pooled so steady-state batched driving does not re-allocate the
// group slices every request.
type churnBatches struct {
	perComm []churnGroup
	order   []int
	res     []core.EditResult
}

// churnGroup is one community's slice of a batch.
type churnGroup struct {
	edits []core.Edit
	idx   []int
}

// reset prepares the state for a batch over nComms communities: the groups
// the previous batch touched are cleared (every populated group is in
// order), then the slice is sized for the new community count.
func (b *churnBatches) reset(nComms int) {
	for _, ci := range b.order {
		b.perComm[ci].edits = b.perComm[ci].edits[:0]
		b.perComm[ci].idx = b.perComm[ci].idx[:0]
	}
	b.order = b.order[:0]
	if cap(b.perComm) < nComms {
		b.perComm = make([]churnGroup, nComms)
	}
	b.perComm = b.perComm[:nComms]
}

// add appends op i's edit to community ci's group.
func (b *churnBatches) add(ci, i int, e core.Edit) {
	g := &b.perComm[ci]
	if len(g.idx) == 0 {
		b.order = append(b.order, ci)
	}
	g.edits = append(g.edits, e)
	g.idx = append(g.idx, i)
}

// CacheStats implements Driver.
func (d *InProcDriver) CacheStats() (hits, misses int64, err error) {
	for _, c := range d.comms {
		st := c.Stats()
		hits += st.CacheHits
		misses += st.CacheMisses
	}
	return hits, misses, nil
}

// Recolorings sums the §6 recoloring counters across the scenario's
// communities (see Snapshot recolorings_per_churn_op).
func (d *InProcDriver) Recolorings() (int64, error) {
	var n int64
	for _, c := range d.comms {
		n += c.Stats().Recolorings
	}
	return n, nil
}

// PolyStats sums live edges and takes the worst max-gap ratio across the
// scenario's poly communities (see Snapshot edges and max_gap_ratio); edges
// is 0 when the scenario has no poly communities.
func (d *InProcDriver) PolyStats() (edges int64, maxGap float64, err error) {
	for _, c := range d.comms {
		if ps, ok := c.PolyStats(); ok {
			edges += int64(ps.Edges)
			if ps.MaxGapRatio > maxGap {
				maxGap = ps.MaxGapRatio
			}
		}
	}
	return edges, maxGap, nil
}

// Close implements Driver: the scenario's communities are unregistered so a
// registry can be reused across runs, and a persistence-enabled run's
// journal is detached, closed, and its temporary data directory removed.
func (d *InProcDriver) Close() error {
	var firstErr error
	for _, c := range d.comms {
		if _, err := d.reg.Delete(c.ID()); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.comms = nil
	if d.store != nil {
		d.reg.SetJournal(nil)
		if err := d.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		os.RemoveAll(d.persistDir)
		d.store, d.persistDir = nil, ""
	}
	return firstErr
}

// HTTPDriver drives a live holidayd over its HTTP API, measuring the full
// stack: routing, handler, response encoding, and the network path to the
// target. Allocation counts in its snapshots include client-side cost.
//
// With Proto set to ProtoBinary, window and next queries go through the
// /v1/bin endpoints in the internal/wire format — single-frame per Do, or
// many frames per request via DoBatch — while churn ops stay on the JSON
// API. Responses are framing-checked and error frames surface as op errors,
// but rows are not decoded: decoding on the load generator would dominate
// the measurement, same as the JSON path's drain-don't-decode policy.
type HTTPDriver struct {
	base   string // no trailing slash
	client *http.Client
	ids    []string

	// Proto selects the wire protocol for window/next queries: ProtoJSON
	// (or empty) for the JSON endpoints, ProtoBinary for /v1/bin. Set it
	// before the run starts; it must not change mid-run.
	Proto string

	// bufs pools the per-call encode/decode state of the binary path.
	bufs sync.Pool
}

// binBufs is the reusable encode/decode state of one binary request.
type binBufs struct {
	req  []byte
	resp bytes.Buffer
	// win, next, and churn index into a DoBatch ops slice, preserving op
	// order within each endpoint's batch.
	win, next, churn []int
}

// NewHTTPDriver targets a base URL such as "http://127.0.0.1:8080". The
// connection pool is sized for workers concurrent streams.
func NewHTTPDriver(base string, workers int) *HTTPDriver {
	if workers < 1 {
		workers = 1
	}
	tr := &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
		IdleConnTimeout:     30 * time.Second,
	}
	return &HTTPDriver{
		base:   trimTrailingSlash(base),
		client: &http.Client{Transport: tr, Timeout: 30 * time.Second},
		bufs:   sync.Pool{New: func() any { return new(binBufs) }},
	}
}

// ProtoName reports the protocol label recorded in snapshots: empty for
// JSON (keeping new snapshots comparable to pre-protocol baselines) and
// ProtoBinary for binary runs.
func (d *HTTPDriver) ProtoName() string {
	if d.Proto == ProtoBinary {
		return ProtoBinary
	}
	return ""
}

// trimTrailingSlash normalizes the base URL.
func trimTrailingSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// Name implements Driver.
func (d *HTTPDriver) Name() string { return "http" }

// Setup implements Driver: each community is deleted if present (leftovers
// of an aborted run) and recreated from its spec's edge list.
func (d *HTTPDriver) Setup(sc *Scenario, seed uint64) ([]int, error) {
	sizes := make([]int, len(sc.Communities))
	for i, cs := range sc.Communities {
		g, err := graph.ParseSpec(cs.Spec, seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("benchkit: community %q: %w", cs.ID, err)
		}
		req, err := http.NewRequest(http.MethodDelete, d.base+"/communities/"+url.PathEscape(cs.ID), nil)
		if err != nil {
			return nil, err
		}
		if resp, err := d.client.Do(req); err == nil {
			drain(resp)
		}
		edges := make([][2]int, 0, g.M())
		for _, e := range g.Edges() {
			edges = append(edges, [2]int{e.U, e.V})
		}
		create := map[string]any{
			"id": cs.ID, "families": g.N(), "edges": edges,
		}
		if cs.Kind != "" {
			create["kind"] = cs.Kind
		}
		if cs.Code != "" {
			create["code"] = cs.Code
		}
		if cs.DefaultDemand != 0 {
			create["default_demand"] = cs.DefaultDemand
		}
		body, err := json.Marshal(create)
		if err != nil {
			return nil, err
		}
		resp, err := d.client.Post(d.base+"/communities", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("benchkit: create %q: %w", cs.ID, err)
		}
		if err := drainExpect(resp, http.StatusCreated); err != nil {
			return nil, fmt.Errorf("benchkit: create %q: %w", cs.ID, err)
		}
		d.ids = append(d.ids, cs.ID)
		sizes[i] = g.N()
	}
	return sizes, nil
}

// Do implements Driver. Responses are drained (a requirement for connection
// reuse) and status-checked, not decoded — decoding on the load generator
// would dominate the measurement.
func (d *HTTPDriver) Do(op Op) error {
	if d.Proto == ProtoBinary && (op.Kind == OpWindow || op.Kind == OpNext) {
		return d.doBin(op)
	}
	id := url.PathEscape(d.ids[op.Community])
	switch op.Kind {
	case OpWindow:
		resp, err := d.client.Get(d.base + "/communities/" + id + "/window?from=" +
			strconv.FormatInt(op.From, 10) + "&to=" + strconv.FormatInt(op.To, 10))
		if err != nil {
			return err
		}
		return drainExpect(resp, http.StatusOK)
	case OpNext:
		resp, err := d.client.Get(d.base + "/communities/" + id + "/families/" +
			strconv.Itoa(op.U) + "/next?from=" + strconv.FormatInt(op.From, 10))
		if err != nil {
			return err
		}
		return drainExpect(resp, http.StatusOK)
	case OpMarry:
		body, _ := json.Marshal(map[string]int{"u": op.U, "v": op.V})
		resp, err := d.client.Post(d.base+"/communities/"+id+"/edges", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		return drainExpect(resp, http.StatusOK)
	case OpDivorce:
		req, err := http.NewRequest(http.MethodDelete, d.base+"/communities/"+id+"/edges?u="+
			strconv.Itoa(op.U)+"&v="+strconv.Itoa(op.V), nil)
		if err != nil {
			return err
		}
		resp, err := d.client.Do(req)
		if err != nil {
			return err
		}
		return drainExpect(resp, http.StatusOK)
	default:
		return fmt.Errorf("benchkit: unknown op kind %d", op.Kind)
	}
}

// doBin serves one window or next query over the binary endpoint.
func (d *HTTPDriver) doBin(op Op) error {
	b := d.bufs.Get().(*binBufs)
	defer d.bufs.Put(b)
	b.req = d.appendBinReq(b.req[:0], op)
	body, err := d.postBin(binPath(op.Kind), b)
	if err != nil {
		return err
	}
	f, rest, err := wire.Split(body)
	if err != nil {
		return fmt.Errorf("benchkit: binary response framing: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("benchkit: %d stray bytes after a single-frame response", len(rest))
	}
	return frameErr(f)
}

// DoBatch implements BatchDriver for binary runs: window, next, and churn
// frames each travel as one batched request to their endpoint (responses
// are positional, so per-op failures land in errs). The churn endpoint
// additionally groups each community's edits server-side into one amortized
// ChurnBatch flush — the batched write path this revision exists to price.
func (d *HTTPDriver) DoBatch(ops []Op, errs []error) error {
	if d.Proto != ProtoBinary {
		return fmt.Errorf("benchkit: batched requests need the binary protocol (set Proto = %q)", ProtoBinary)
	}
	if len(errs) != len(ops) {
		return fmt.Errorf("benchkit: DoBatch needs len(errs) == len(ops), got %d and %d", len(errs), len(ops))
	}
	b := d.bufs.Get().(*binBufs)
	defer d.bufs.Put(b)
	b.win, b.next, b.churn = b.win[:0], b.next[:0], b.churn[:0]
	for i, op := range ops {
		switch op.Kind {
		case OpWindow:
			b.win = append(b.win, i)
		case OpNext:
			b.next = append(b.next, i)
		case OpMarry, OpDivorce:
			b.churn = append(b.churn, i)
		default:
			errs[i] = d.Do(op)
		}
	}
	if err := d.doBinBatch(ops, b.win, errs, b); err != nil {
		return err
	}
	if err := d.doBinBatch(ops, b.next, errs, b); err != nil {
		return err
	}
	return d.doBinBatch(ops, b.churn, errs, b)
}

// doBinBatch posts the ops selected by idx as one frame batch and maps the
// positional responses back into errs.
func (d *HTTPDriver) doBinBatch(ops []Op, idx []int, errs []error, b *binBufs) error {
	if len(idx) == 0 {
		return nil
	}
	b.req = b.req[:0]
	for _, i := range idx {
		b.req = d.appendBinReq(b.req, ops[i])
	}
	body, err := d.postBin(binPath(ops[idx[0]].Kind), b)
	if err != nil {
		return err
	}
	for _, i := range idx {
		var f wire.Frame
		f, body, err = wire.Split(body)
		if err != nil {
			return fmt.Errorf("benchkit: binary batch framing: %w", err)
		}
		errs[i] = frameErr(f)
	}
	if len(body) != 0 {
		return fmt.Errorf("benchkit: %d stray bytes after a %d-frame batch", len(body), len(idx))
	}
	return nil
}

// appendBinReq encodes one op as a wire request frame.
func (d *HTTPDriver) appendBinReq(dst []byte, op Op) []byte {
	id := d.ids[op.Community]
	switch op.Kind {
	case OpWindow:
		return wire.AppendWindowReq(dst, id, op.From, op.To)
	case OpMarry:
		return wire.AppendChurnReq(dst, wire.ChurnInsert, id, op.U, op.V)
	case OpDivorce:
		return wire.AppendChurnReq(dst, wire.ChurnDelete, id, op.U, op.V)
	default:
		return wire.AppendNextReq(dst, id, op.U, op.From)
	}
}

// binPath maps an op kind to its binary endpoint.
func binPath(k OpKind) string {
	switch k {
	case OpWindow:
		return "/v1/bin/window"
	case OpMarry, OpDivorce:
		return "/v1/bin/churn"
	default:
		return "/v1/bin/next"
	}
}

// postBin posts b.req to a binary endpoint and returns the response bytes,
// staged in b.resp so steady-state binary driving reuses both buffers.
func (d *HTTPDriver) postBin(path string, b *binBufs) ([]byte, error) {
	resp, err := d.client.Post(d.base+path, "application/octet-stream", bytes.NewReader(b.req))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		// A non-200 means the whole batch was refused (protocol violation);
		// per-query failures arrive as in-band error frames instead.
		return nil, drainExpect(resp, http.StatusOK)
	}
	b.resp.Reset()
	_, err = b.resp.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	return b.resp.Bytes(), nil
}

// frameErr converts an in-band error frame to an op error; any other frame
// kind counts as served traffic (rows are deliberately not decoded).
func frameErr(f wire.Frame) error {
	if f.Kind != wire.KindError {
		return nil
	}
	status, code, msg, err := f.ErrorResp()
	if err != nil {
		return fmt.Errorf("benchkit: malformed error frame: %w", err)
	}
	return fmt.Errorf("benchkit: binary query failed: status %d (%s): %s", status, service.CodeFromNum(code), msg)
}

// CacheStats implements Driver via the per-community stats endpoint.
func (d *HTTPDriver) CacheStats() (hits, misses int64, err error) {
	for _, id := range d.ids {
		// An error payload would decode into all-zero Stats; statsOf fails
		// the run instead of silently zeroing the cache ratio.
		st, err := d.statsOf(id)
		if err != nil {
			return 0, 0, err
		}
		hits += st.CacheHits
		misses += st.CacheMisses
	}
	return hits, misses, nil
}

// Recolorings sums the recoloring counters across the scenario's communities
// via the stats endpoint (see Snapshot recolorings_per_churn_op).
func (d *HTTPDriver) Recolorings() (int64, error) {
	var n int64
	for _, id := range d.ids {
		st, err := d.statsOf(id)
		if err != nil {
			return 0, err
		}
		n += st.Recolorings
	}
	return n, nil
}

// PolyStats sums live edges and takes the worst max-gap ratio across the
// scenario's poly communities via the stats endpoint; edges is 0 when the
// scenario has no poly communities.
func (d *HTTPDriver) PolyStats() (edges int64, maxGap float64, err error) {
	for _, id := range d.ids {
		st, err := d.statsOf(id)
		if err != nil {
			return 0, 0, err
		}
		if st.Poly != nil {
			edges += int64(st.Poly.Edges)
			if st.Poly.MaxGapRatio > maxGap {
				maxGap = st.Poly.MaxGapRatio
			}
		}
	}
	return edges, maxGap, nil
}

// Close implements Driver: the scenario's communities are deleted from the
// target so repeated runs start clean.
func (d *HTTPDriver) Close() error {
	var firstErr error
	for _, id := range d.ids {
		req, err := http.NewRequest(http.MethodDelete, d.base+"/communities/"+url.PathEscape(id), nil)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		resp, err := d.client.Do(req)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		drain(resp)
	}
	d.ids = nil
	d.client.CloseIdleConnections()
	return firstErr
}

// localCacheStats sums cache counters for the scenario communities held
// locally on this node (owner or fenced replica), per /v1/status. Skipping
// absent communities keeps cluster-wide sums double-count-free: a stats GET
// for an absent community would be forwarded and count its owner twice.
func (d *HTTPDriver) localCacheStats() (hits, misses int64, err error) {
	local, err := d.localCommunities()
	if err != nil {
		return 0, 0, err
	}
	for _, id := range d.ids {
		if _, ok := local[id]; !ok {
			continue
		}
		st, err := d.statsOf(id)
		if err != nil {
			return 0, 0, err
		}
		hits += st.CacheHits
		misses += st.CacheMisses
	}
	return hits, misses, nil
}

// recoloringsOf reads one community's recoloring counter.
func (d *HTTPDriver) recoloringsOf(community int) (int64, error) {
	st, err := d.statsOf(d.ids[community])
	if err != nil {
		return 0, err
	}
	return st.Recolorings, nil
}

// statsOf fetches one community's stats.
func (d *HTTPDriver) statsOf(id string) (service.Stats, error) {
	resp, err := d.client.Get(d.base + "/communities/" + url.PathEscape(id))
	if err != nil {
		return service.Stats{}, err
	}
	if resp.StatusCode != http.StatusOK {
		err := drainExpect(resp, http.StatusOK)
		return service.Stats{}, fmt.Errorf("benchkit: stats for %q: %w", id, err)
	}
	var st service.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return service.Stats{}, fmt.Errorf("benchkit: stats for %q: %w", id, err)
	}
	return st, nil
}

// localCommunities returns the ids held on this node with their applied
// journal sequence, from /v1/status (which never forwards).
func (d *HTTPDriver) localCommunities() (map[string]uint64, error) {
	resp, err := d.client.Get(d.base + "/v1/status")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := drainExpect(resp, http.StatusOK)
		return nil, fmt.Errorf("benchkit: status: %w", err)
	}
	var st struct {
		Communities []struct {
			ID  string `json:"id"`
			Seq uint64 `json:"seq"`
		} `json:"communities"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("benchkit: status: %w", err)
	}
	out := make(map[string]uint64, len(st.Communities))
	for _, c := range st.Communities {
		out[c.ID] = c.Seq
	}
	return out, nil
}

// communitySeq reads the applied journal sequence of one community on this
// node, or 0 if the node doesn't hold it yet.
func (d *HTTPDriver) communitySeq(id string) (uint64, error) {
	local, err := d.localCommunities()
	if err != nil {
		return 0, err
	}
	return local[id], nil
}

// fetchWindow returns one community's JSON window response body verbatim,
// for byte-identity checks across replicas.
func (d *HTTPDriver) fetchWindow(id string, from, to int64) ([]byte, error) {
	resp, err := d.client.Get(d.base + "/v1/communities/" + url.PathEscape(id) + "/window?from=" +
		strconv.FormatInt(from, 10) + "&to=" + strconv.FormatInt(to, 10))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("benchkit: window for %q: status %d", id, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// drain consumes and closes a response body so the connection can be reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// drainExpect drains the body and errors unless the status matches.
func drainExpect(resp *http.Response, want int) error {
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return fmt.Errorf("benchkit: %s %s: status %d (want %d): %s",
			resp.Request.Method, resp.Request.URL.Path, resp.StatusCode, want, bytes.TrimSpace(msg))
	}
	drain(resp)
	return nil
}
