package benchkit

import (
	"math"
	"testing"
)

// TestScenariosValidate checks every built-in workload is runnable and that
// its communities parse (Setup exercises the specs in runner_test.go; here
// we only need structural validity).
func TestScenariosValidate(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %q: %v", sc.Name, err)
		}
		if sc.Duration <= 0 {
			t.Errorf("scenario %q has no default duration", sc.Name)
		}
		ids := map[string]bool{}
		for _, cs := range sc.Communities {
			if ids[cs.ID] {
				t.Errorf("scenario %q reuses community id %q", sc.Name, cs.ID)
			}
			ids[cs.ID] = true
		}
	}
	if !seen["ci"] {
		t.Fatal("the bench-gate scenario \"ci\" must exist")
	}
}

func TestScenarioByNameUnknown(t *testing.T) {
	if _, err := ScenarioByName("no-such-workload"); err == nil {
		t.Fatal("want error for unknown scenario")
	}
}

// TestOpGenDeterministic: two generators with equal (scenario, sizes, seed)
// yield identical op streams; a different seed diverges.
func TestOpGenDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		sizes := make([]int, len(sc.Communities))
		for i := range sizes {
			sizes[i] = 64 + i
		}
		a := NewOpGen(sc, sizes, 42)
		b := NewOpGen(sc, sizes, 42)
		c := NewOpGen(sc, sizes, 43)
		diverged := false
		for i := 0; i < 5000; i++ {
			opA, opB := a.Next(), b.Next()
			if opA != opB {
				t.Fatalf("scenario %q: op %d differs under equal seeds: %+v vs %+v", sc.Name, i, opA, opB)
			}
			if opA != c.Next() {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("scenario %q: seeds 42 and 43 generated identical streams", sc.Name)
		}
	}
}

// TestOpGenMixRatios: over a large sample the generated kind frequencies
// honor the scenario's weights within a small tolerance, for a table of
// mixes including one-sided and disabled kinds.
func TestOpGenMixRatios(t *testing.T) {
	cases := []struct {
		name string
		mix  OpMix
	}{
		{"ci-like", OpMix{Window: 70, Next: 20, Marry: 6, Divorce: 4}},
		{"read-only", OpMix{Window: 75, Next: 25}},
		{"churn-heavy", OpMix{Window: 35, Next: 15, Marry: 30, Divorce: 20}},
		{"window-only", OpMix{Window: 1}},
		{"even", OpMix{Window: 1, Next: 1, Marry: 1, Divorce: 1}},
	}
	const samples = 200_000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := &Scenario{
				Name:        tc.name,
				Communities: []CommunitySpec{{ID: "a", Spec: "cycle:n=32"}, {ID: "b", Spec: "clique:n=8"}},
				Mix:         tc.mix,
				WindowSpan:  52,
				Horizon:     1 << 20,
			}
			if err := sc.Validate(); err != nil {
				t.Fatal(err)
			}
			gen := NewOpGen(sc, []int{32, 8}, 7)
			var counts [numOpKinds]int
			for i := 0; i < samples; i++ {
				counts[gen.Next().Kind]++
			}
			total := float64(tc.mix.total())
			for k, w := range tc.mix.weights() {
				want := float64(w) / total
				got := float64(counts[k]) / samples
				if w == 0 {
					if counts[k] != 0 {
						t.Errorf("%v: weight 0 but %d ops generated", OpKind(k), counts[k])
					}
					continue
				}
				if math.Abs(got-want) > 0.01 {
					t.Errorf("%v: frequency %.4f, want %.4f ±0.01", OpKind(k), got, want)
				}
			}
		})
	}
}

// TestOpGenBounds: generated parameters stay inside the scenario's bounds
// and community sizes for every op kind.
func TestOpGenBounds(t *testing.T) {
	sc := &Scenario{
		Name:        "bounds",
		Communities: []CommunitySpec{{ID: "a", Spec: "cycle:n=9"}, {ID: "b", Spec: "cycle:n=3"}},
		Mix:         OpMix{Window: 1, Next: 1, Marry: 1, Divorce: 1},
		WindowSpan:  13,
		Horizon:     1000,
	}
	sizes := []int{9, 3}
	gen := NewOpGen(sc, sizes, 11)
	for i := 0; i < 50_000; i++ {
		op := gen.Next()
		if op.Community < 0 || op.Community >= len(sizes) {
			t.Fatalf("op %d: community %d out of range", i, op.Community)
		}
		n := sizes[op.Community]
		switch op.Kind {
		case OpWindow:
			if op.From < 1 || op.From > sc.Horizon {
				t.Fatalf("op %d: window from %d outside [1,%d]", i, op.From, sc.Horizon)
			}
			if span := op.To - op.From + 1; span < 1 || span > int64(sc.WindowSpan) {
				t.Fatalf("op %d: window span %d outside [1,%d]", i, span, sc.WindowSpan)
			}
		case OpNext:
			if op.U < 0 || op.U >= n {
				t.Fatalf("op %d: next family %d outside [0,%d)", i, op.U, n)
			}
			if op.From < 1 || op.From > sc.Horizon {
				t.Fatalf("op %d: next from %d outside [1,%d]", i, op.From, sc.Horizon)
			}
		case OpMarry, OpDivorce:
			if op.U < 0 || op.U >= n || op.V < 0 || op.V >= n {
				t.Fatalf("op %d: couple (%d,%d) outside [0,%d)", i, op.U, op.V, n)
			}
			if op.U == op.V {
				t.Fatalf("op %d: self-marriage at %d", i, op.U)
			}
		}
	}
}
