package benchkit

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// testPolyScenario is a tiny poly-kind workload for end-to-end runner tests.
// Every community starts with m ≥ n edges so next-happy ops stay in slot
// range (see CommunitySpec).
func testPolyScenario() *Scenario {
	return &Scenario{
		Name: "poly-test",
		Communities: []CommunitySpec{
			{ID: "poly-gnp-t", Spec: "gnp:n=48,p=0.08", Kind: "poly", DefaultDemand: 64},
			{ID: "poly-ring-t", Spec: "cycle:n=24", Kind: "poly", Code: "bucketed", DefaultDemand: 32},
			{ID: "poly-clique-t", Spec: "clique:n=8", Kind: "poly", DefaultDemand: 128},
		},
		Mix:        OpMix{Window: 55, Next: 25, Marry: 12, Divorce: 8},
		WindowSpan: 16,
		Horizon:    1 << 16,
		Duration:   150 * time.Millisecond,
	}
}

// checkPolySnapshot extends checkSnapshot with the schema-5 poly fields.
func checkPolySnapshot(t *testing.T, s *Snapshot, wantDriver string) {
	t.Helper()
	checkSnapshot(t, s, wantDriver)
	if s.Totals.Edges <= 0 {
		t.Errorf("poly run recorded %d edges, want positive", s.Totals.Edges)
	}
	if !(s.Totals.MaxGapRatio > 0) || s.Totals.MaxGapRatio > 1 {
		t.Errorf("poly run recorded max gap ratio %v, want in (0,1] (demands met)", s.Totals.MaxGapRatio)
	}
}

// TestRunPolyInProc drives the poly edge-scheduling path through the
// in-process driver: the run must complete error-free, record the schema-5
// edges/max_gap_ratio totals, and self-compare cleanly.
func TestRunPolyInProc(t *testing.T) {
	reg := service.NewRegistry()
	d := NewInProcDriver(reg)
	snap, err := Run(testPolyScenario(), d, Options{Seed: 3, Workers: 2, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	checkPolySnapshot(t, snap, "inproc")
	if got := reg.List(); len(got) != 0 {
		t.Errorf("driver left communities registered after Close: %v", got)
	}
	path := t.TempDir() + "/BENCH_poly_test.json"
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Totals.Edges != snap.Totals.Edges || back.Totals.MaxGapRatio != snap.Totals.MaxGapRatio {
		t.Fatalf("poly totals did not survive the file round trip: %+v vs %+v", back.Totals, snap.Totals)
	}
	if cmp := Compare(back, snap, 0.25); !cmp.Pass {
		t.Fatalf("run should not regress against its own snapshot: %+v", cmp.Deltas)
	}
}

// TestRunPolyHTTP drives the poly workload through the full HTTP stack:
// kind-dispatching creates, slot-indexed reads, demand-default churn, and
// the stats-endpoint poly probe.
func TestRunPolyHTTP(t *testing.T) {
	reg := service.NewRegistry()
	srv := httptest.NewServer(service.NewHandler(service.HandlerOpts{Owner: reg}))
	defer srv.Close()
	d := NewHTTPDriver(srv.URL, 2)
	snap, err := Run(testPolyScenario(), d, Options{Seed: 3, Workers: 2, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	checkPolySnapshot(t, snap, "http")
	if got := reg.List(); len(got) != 0 {
		t.Errorf("HTTP driver left communities on the server after Close: %v", got)
	}
}
