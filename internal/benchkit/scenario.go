// Package benchkit is the load-generation and performance-tracking
// subsystem: it synthesizes multi-community workloads (configurable mixes of
// window, next-happy, and churn marry/divorce operations over G(n,p), ring,
// and clique communities at several scales), drives them either in-process
// against a service.Registry or over HTTP against a live holidayd, and
// records latency quantiles, throughput, cache hit ratio, and allocation
// counts into versioned BENCH_<rev>.json snapshots that successive revisions
// compare against (see Compare and cmd/holidayload).
//
// Scenario op streams are deterministic under a fixed seed: each worker of
// a run draws from its own OpGen seeded by a fixed function of the run seed
// and worker index (see Run), so two runs of the same scenario and seed
// request identical work and differ only in timing.
package benchkit

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// OpKind enumerates the request types a scenario mixes.
type OpKind int

const (
	// OpWindow is a closed-form schedule window query (the read hot path).
	OpWindow OpKind = iota
	// OpNext is a family's next-happy-holiday query.
	OpNext
	// OpMarry inserts an in-law edge, possibly forcing a §6 recoloring and a
	// cache invalidation.
	OpMarry
	// OpDivorce removes an in-law edge.
	OpDivorce
	numOpKinds
)

// String names the op kind as it appears in snapshots.
func (k OpKind) String() string {
	switch k {
	case OpWindow:
		return "window"
	case OpNext:
		return "next"
	case OpMarry:
		return "marry"
	case OpDivorce:
		return "divorce"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// OpMix weights the four op kinds. Weights are relative (they need not sum
// to anything particular); a zero weight disables the kind.
type OpMix struct {
	Window  int `json:"window"`
	Next    int `json:"next"`
	Marry   int `json:"marry"`
	Divorce int `json:"divorce"`
}

// weights returns the mix as an indexable array.
func (m OpMix) weights() [numOpKinds]int {
	return [numOpKinds]int{m.Window, m.Next, m.Marry, m.Divorce}
}

// total sums the weights.
func (m OpMix) total() int { return m.Window + m.Next + m.Marry + m.Divorce }

// CommunitySpec names one community of a scenario and the graph it starts
// from (a graph.ParseSpec string, e.g. "gnp:n=256,p=0.03").
type CommunitySpec struct {
	ID   string `json:"id"`
	Spec string `json:"spec"`
}

// Scenario is a named synthetic workload: a set of communities at chosen
// scales and an op mix drawn over them.
type Scenario struct {
	Name        string
	Desc        string
	Communities []CommunitySpec
	Mix         OpMix
	// WindowSpan is the maximum holidays one window query covers.
	WindowSpan int
	// Horizon bounds the holiday range queries are drawn from.
	Horizon int64
	// Duration is the default run length (overridable per run).
	Duration time.Duration
	// Persist enables the durability subsystem on the in-process driver:
	// the registry journals every churn op to a WAL in a temporary data
	// directory, so the run prices the write-ahead hot-path cost. The HTTP
	// driver ignores it (a live holidayd's durability is its own -data-dir
	// configuration).
	Persist bool
}

// Scenarios returns the built-in named workloads, in presentation order.
// "ci" is deliberately small: it is the workload the bench-gate CI job runs
// on every PR; "ci-persist" is the identical workload derived with the
// durability WAL enabled, so the two can never drift apart.
func Scenarios() []*Scenario {
	ci := &Scenario{
		Name: "ci",
		Desc: "small mixed read/churn workload sized for the CI regression gate",
		Communities: []CommunitySpec{
			{ID: "gnp-s", Spec: "gnp:n=128,p=0.05"},
			{ID: "ring-s", Spec: "cycle:n=64"},
			{ID: "clique-s", Spec: "clique:n=16"},
		},
		Mix:        OpMix{Window: 70, Next: 20, Marry: 6, Divorce: 4},
		WindowSpan: 52,
		Horizon:    1 << 20,
		Duration:   2 * time.Second,
	}
	ciPersist := *ci
	ciPersist.Name = "ci-persist"
	ciPersist.Desc = "the ci workload with the durability WAL enabled (prices the write-ahead hot path)"
	ciPersist.Persist = true
	return []*Scenario{
		ci,
		&ciPersist,
		{
			Name: "read",
			Desc: "read-only window/next traffic over mid-size communities (pure cache-hit path)",
			Communities: []CommunitySpec{
				{ID: "gnp-m", Spec: "gnp:n=1024,p=0.01"},
				{ID: "ring-m", Spec: "cycle:n=512"},
				{ID: "clique-m", Spec: "clique:n=32"},
			},
			Mix:        OpMix{Window: 75, Next: 25},
			WindowSpan: 52,
			Horizon:    1 << 30,
			Duration:   10 * time.Second,
		},
		{
			Name: "churn",
			Desc: "marriage/divorce heavy traffic stressing §6 recoloring and cache invalidation",
			Communities: []CommunitySpec{
				{ID: "gnp-m", Spec: "gnp:n=512,p=0.02"},
				{ID: "ring-m", Spec: "cycle:n=256"},
				{ID: "clique-s", Spec: "clique:n=24"},
			},
			Mix:        OpMix{Window: 35, Next: 15, Marry: 30, Divorce: 20},
			WindowSpan: 26,
			Horizon:    1 << 20,
			Duration:   10 * time.Second,
		},
		{
			Name: "mixed",
			Desc: "mixed read/churn traffic across small-to-large communities",
			Communities: []CommunitySpec{
				{ID: "gnp-s", Spec: "gnp:n=256,p=0.03"},
				{ID: "gnp-l", Spec: "gnp:n=4096,p=0.002"},
				{ID: "ring-l", Spec: "cycle:n=2048"},
				{ID: "clique-m", Spec: "clique:n=48"},
			},
			Mix:        OpMix{Window: 60, Next: 25, Marry: 9, Divorce: 6},
			WindowSpan: 52,
			Horizon:    1 << 30,
			Duration:   15 * time.Second,
		},
		{
			Name: "large",
			Desc: "window scans over one large sparse community (allocation pressure path)",
			Communities: []CommunitySpec{
				{ID: "gnp-xl", Spec: "gnp:n=16384,p=0.0005"},
			},
			Mix:        OpMix{Window: 90, Next: 10},
			WindowSpan: 365,
			Horizon:    1 << 40,
			Duration:   15 * time.Second,
		},
	}
}

// ScenarioByName resolves a named workload.
func ScenarioByName(name string) (*Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("benchkit: unknown scenario %q (known: %s)", name, scenarioNames())
}

// scenarioNames joins the known scenario names for error messages.
func scenarioNames() string {
	s := ""
	for i, sc := range Scenarios() {
		if i > 0 {
			s += ", "
		}
		s += sc.Name
	}
	return s
}

// Validate checks a scenario is runnable: at least one community, a positive
// mix, and sane bounds.
func (sc *Scenario) Validate() error {
	if len(sc.Communities) == 0 {
		return fmt.Errorf("benchkit: scenario %q has no communities", sc.Name)
	}
	if sc.Mix.total() <= 0 {
		return fmt.Errorf("benchkit: scenario %q has an empty op mix", sc.Name)
	}
	if sc.Mix.Window < 0 || sc.Mix.Next < 0 || sc.Mix.Marry < 0 || sc.Mix.Divorce < 0 {
		return fmt.Errorf("benchkit: scenario %q has a negative op weight", sc.Name)
	}
	if sc.WindowSpan < 1 {
		return fmt.Errorf("benchkit: scenario %q has window span %d < 1", sc.Name, sc.WindowSpan)
	}
	if sc.Horizon < 1 {
		return fmt.Errorf("benchkit: scenario %q has horizon %d < 1", sc.Name, sc.Horizon)
	}
	return nil
}

// ValidateSizes checks the created communities can serve the mix: every
// community has at least one family, and at least two when churn ops are
// enabled (a couple needs two distinct families).
func (sc *Scenario) ValidateSizes(sizes []int) error {
	churn := sc.Mix.Marry > 0 || sc.Mix.Divorce > 0
	for i, n := range sizes {
		if n < 1 {
			return fmt.Errorf("benchkit: scenario %q community %d has %d families", sc.Name, i, n)
		}
		if churn && n < 2 {
			return fmt.Errorf("benchkit: scenario %q mixes marry/divorce ops but community %q has only %d family",
				sc.Name, sc.Communities[i].ID, n)
		}
	}
	return nil
}

// Op is one generated request. Community indexes the scenario's community
// list; U/V are family ids (U the queried family for OpNext, the couple for
// churn ops); From/To bound OpWindow and OpNext queries.
type Op struct {
	Kind      OpKind
	Community int
	U, V      int
	From, To  int64
}

// OpGen deterministically generates a scenario's op stream. sizes gives the
// current family count of each community (as created by the driver); two
// generators with equal (scenario, sizes, seed) yield identical streams.
type OpGen struct {
	sc      *Scenario
	sizes   []int
	r       *rand.Rand
	weights [numOpKinds]int
	total   int
}

// NewOpGen builds a generator for the scenario over communities of the given
// sizes. It panics if sizes does not match the scenario's community list or
// a community is too small for the mix — the runner pre-checks both via
// ValidateSizes, so the panics only fire on direct misuse.
func NewOpGen(sc *Scenario, sizes []int, seed uint64) *OpGen {
	if len(sizes) != len(sc.Communities) {
		panic(fmt.Sprintf("benchkit: %d sizes for %d communities", len(sizes), len(sc.Communities)))
	}
	if err := sc.ValidateSizes(sizes); err != nil {
		panic(err.Error())
	}
	return &OpGen{
		sc:      sc,
		sizes:   append([]int(nil), sizes...),
		r:       rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		weights: sc.Mix.weights(),
		total:   sc.Mix.total(),
	}
}

// Next returns the following op of the stream.
func (g *OpGen) Next() Op {
	ci := g.r.IntN(len(g.sizes))
	n := g.sizes[ci]
	op := Op{Community: ci, Kind: g.kind()}
	switch op.Kind {
	case OpWindow:
		span := int64(1 + g.r.IntN(g.sc.WindowSpan))
		op.From = 1 + g.r.Int64N(g.sc.Horizon)
		op.To = op.From + span - 1
	case OpNext:
		op.U = g.r.IntN(n)
		op.From = 1 + g.r.Int64N(g.sc.Horizon)
	case OpMarry, OpDivorce:
		// Distinct couple; ValidateSizes guarantees n ≥ 2 when churn ops
		// are enabled, so the draw below cannot degenerate.
		op.U = g.r.IntN(n)
		op.V = g.r.IntN(n - 1)
		if op.V >= op.U {
			op.V++
		}
	}
	return op
}

// kind draws an op kind by mix weight.
func (g *OpGen) kind() OpKind {
	x := g.r.IntN(g.total)
	for k, w := range g.weights {
		if x < w {
			return OpKind(k)
		}
		x -= w
	}
	return OpWindow // unreachable: weights sum to total
}
